// Figure 9: fast.com speed tests by the recruited Prolific testers —
// download / upload / latency per SNO and per continent.
//
// Also hosts the sharded-runtime throughput check: the M-Lab campaign at
// 4x the standard volume_scale on 8 threads against the serial run at
// the standard scale.
#include <algorithm>
#include <chrono>

#include "bench/bench_common.hpp"
#include "io/golden.hpp"
#include "prolific/addon.hpp"
#include "prolific/census.hpp"

namespace {

using namespace satnet;

// The figure table lives in io::fig9_speedtest_report so the golden
// regression suite (tests/golden_test.cpp) can pin it byte-for-byte;
// the throughput check below stays here because its timings are
// inherently machine-dependent.
void print_fig9() {
  std::fputs(io::fig9_speedtest_report(bench::world()).c_str(), stdout);
}

double campaign_wall_ms(double volume_scale, unsigned threads, std::size_t* n_records) {
  mlab::CampaignConfig cfg;
  cfg.volume_scale = volume_scale;
  cfg.min_tests_per_sno = 30;
  cfg.threads = threads;
  cfg.retry = runtime::degrade_under_faults();
  // satlint:allow(nondet-source): throughput timing printed alongside, never in, results
  const auto t0 = std::chrono::steady_clock::now();
  const auto ds = mlab::run_campaign(bench::world(), cfg);
  // satlint:allow(nondet-source): throughput timing printed alongside, never in, results
  const auto t1 = std::chrono::steady_clock::now();
  *n_records = ds.size();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void print_campaign_throughput() {
  bench::header("Campaign throughput",
                "sharded M-Lab campaign: 4x volume vs the serial baseline");
  // Best-of-two per configuration: a single run's wall-clock swings with
  // host load, and the budget verdict should not.
  std::size_t n_serial = 0, n_sharded = 0;
  const double serial_ms = std::min(campaign_wall_ms(0.002, 1, &n_serial),
                                    campaign_wall_ms(0.002, 1, &n_serial));
  const double sharded_ms = std::min(campaign_wall_ms(0.008, 8, &n_sharded),
                                     campaign_wall_ms(0.008, 8, &n_sharded));
  const double serial_per_rec = serial_ms / static_cast<double>(n_serial);
  const double sharded_per_rec = sharded_ms / static_cast<double>(n_sharded);
  std::printf("  %-34s %8zu records %10.0f ms  %6.1f rec/s\n",
              "serial,  volume_scale 0.002:", n_serial, serial_ms,
              1000.0 * static_cast<double>(n_serial) / serial_ms);
  std::printf("  %-34s %8zu records %10.0f ms  %6.1f rec/s\n",
              "8 threads, volume_scale 0.008:", n_sharded, sharded_ms,
              1000.0 * static_cast<double>(n_sharded) / sharded_ms);
  // Machine-independent check: sharding must not tax the per-record cost
  // by more than 25% even with zero parallel headroom (a 1-core host);
  // on multi-core hosts the wall-clock ratio drops toward 4/ncores.
  const double overhead = sharded_per_rec / serial_per_rec;
  std::printf("  4x volume at %.2fx the serial wall-clock; "
              "sharding overhead %.2fx per record (%s)\n",
              sharded_ms / serial_ms, overhead,
              overhead <= 1.25 ? "within budget" : "OVER budget");
}

void BM_speedtest_run(benchmark::State& state) {
  prolific::TesterPool pool;
  const auto* tester = pool.recruitable("starlink", 1).front();
  stats::Rng rng(9);
  for (auto _ : state) {
    const auto r = prolific::run_addon_once(bench::world(), *tester, 0.0, rng);
    benchmark::DoNotOptimize(r.speedtest.down_mbps);
  }
}
BENCHMARK(BM_speedtest_run)->Unit(benchmark::kMillisecond);

void print_all() {
  print_fig9();
  print_campaign_throughput();
}

}  // namespace

SATNET_BENCH_MAIN(print_all)
