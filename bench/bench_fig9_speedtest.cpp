// Figure 9: fast.com speed tests by the recruited Prolific testers —
// download / upload / latency per SNO and per continent.
#include <map>

#include "bench/bench_common.hpp"
#include "prolific/addon.hpp"
#include "stats/summary.hpp"
#include "prolific/census.hpp"

namespace {

using namespace satnet;

const std::vector<prolific::AddonRunReport>& reports() {
  static const auto r = [] {
    prolific::TesterPool pool;
    return prolific::run_addon_study(bench::world(), pool);
  }();
  return r;
}

void print_fig9() {
  bench::header("Figure 9", "fast.com speedtest per SNO and continent");
  struct Key {
    std::string sno;
    std::string continent;
    bool operator<(const Key& o) const {
      return std::tie(sno, continent) < std::tie(o.sno, o.continent);
    }
  };
  std::map<Key, std::vector<const prolific::AddonRunReport*>> groups;
  for (const auto& r : reports()) {
    if (r.speedtest.down_mbps <= 0) continue;  // outage run
    groups[{r.sno, std::string(geo::to_string(r.continent))}].push_back(&r);
  }

  std::printf("  %-10s %-14s %5s %10s %9s %9s\n", "SNO", "continent", "runs",
              "down Mbps", "up Mbps", "RTT ms");
  for (const auto& [key, rs] : groups) {
    std::vector<double> down, up, lat;
    for (const auto* r : rs) {
      down.push_back(r->speedtest.down_mbps);
      up.push_back(r->speedtest.up_mbps);
      lat.push_back(r->speedtest.latency_ms);
    }
    std::printf("  %-10s %-14s %5zu %10.1f %9.1f %9.1f\n", key.sno.c_str(),
                key.continent.c_str(), rs.size(), stats::median(down),
                stats::median(up), stats::median(lat));
  }
  bench::note("paper: Starlink 70-150/6-21 Mbps (EU fastest: 150/21); "
              "Viasat 10-40/3; HughesNet <3/3");
  bench::note("paper latencies: Starlink 35 (NA), 38 (EU), 49 (NZ); "
              "Viasat ~600; HughesNet ~720");
}

void BM_speedtest_run(benchmark::State& state) {
  prolific::TesterPool pool;
  const auto* tester = pool.recruitable("starlink", 1).front();
  stats::Rng rng(9);
  for (auto _ : state) {
    const auto r = prolific::run_addon_once(bench::world(), *tester, 0.0, rng);
    benchmark::DoNotOptimize(r.speedtest.down_mbps);
  }
}
BENCHMARK(BM_speedtest_run)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig9)
