// Figure 11: YouTube streaming per SNO — download speed, buffer health,
// and dropped frames as a function of the achieved video quality
// (megapixels), from the addon's 60-second sessions.
#include <map>

#include "bench/bench_common.hpp"
#include "prolific/addon.hpp"
#include "stats/summary.hpp"
#include "prolific/census.hpp"

namespace {

using namespace satnet;

const std::vector<prolific::AddonRunReport>& reports() {
  static const auto r = [] {
    prolific::TesterPool pool;
    prolific::StudyConfig cfg;
    cfg.runs_per_tester = 8;  // extra sessions for the quality scatter
    return prolific::run_addon_study(bench::world(), pool, cfg);
  }();
  return r;
}

void print_fig11() {
  bench::header("Figure 11", "YouTube sessions: quality vs speed/buffer/drops");
  std::printf("  %-10s %6s | per-session: megapixels, download Mbps, buffer s, "
              "dropped %%\n",
              "SNO", "runs");
  std::map<std::string, std::vector<const prolific::AddonRunReport*>> by_sno;
  for (const auto& r : reports()) {
    if (r.youtube.median_megapixels > 0) by_sno[r.sno].push_back(&r);
  }
  for (const auto& [sno, rs] : by_sno) {
    std::vector<double> mp, speed, buffer, drops;
    int stalled_runs = 0;
    for (const auto* r : rs) {
      mp.push_back(r->youtube.median_megapixels);
      speed.push_back(r->youtube.mean_download_mbps);
      buffer.push_back(r->youtube.mean_buffer_sec);
      drops.push_back(r->youtube.dropped_frame_frac * 100.0);
      if (r->youtube.n_stalls > 0) ++stalled_runs;
    }
    std::printf("  %-10s %6zu   median MP=%.2f  speed=%.1f Mbps  buffer=%.0f s  "
                "drops=%.1f%%  runs with stalls=%d\n",
                sno.c_str(), rs.size(), stats::median(mp), stats::median(speed),
                stats::median(buffer), stats::median(drops), stalled_runs);
  }
  bench::note("paper: only Starlink reaches >=2 MP (1080p+); HughesNet/Viasat "
              "stuck around 0.5 MP; buffers 40-65 s; 4 of 56 testers stalled");

  // Quality scatter: megapixels achieved per run, binned.
  std::printf("\n  quality distribution (megapixel bins):\n");
  for (const auto& [sno, rs] : by_sno) {
    std::map<int, int> bins;  // floor(mp * 2) bins
    for (const auto* r : rs) {
      ++bins[static_cast<int>(r->youtube.median_megapixels * 2.0)];
    }
    std::printf("  %-10s", sno.c_str());
    for (const auto& [bin, n] : bins) {
      std::printf(" [%.1f-%.1f):%d", bin / 2.0, (bin + 1) / 2.0, n);
    }
    std::printf("\n");
  }
}

void BM_abr_session_leo(benchmark::State& state) {
  transport::PathProfile p;
  p.base_rtt_ms = 55;
  p.bottleneck_mbps = 80;
  p.handoff_rate_hz = 0.05;
  p.handoff_spike_ms = 30;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(seed++);
    benchmark::DoNotOptimize(video::play_session(p, rng).median_megapixels);
  }
}
BENCHMARK(BM_abr_session_leo)->Unit(benchmark::kMicrosecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig11)
