// Figure 2: KDE curves of access latency per SNO/ASN — the validation
// view that exposes AS27277 (Starlink corporate, terrestrial), the hybrid
// SES ASN, and TelAlaska's intra-ASN wireline/satellite mix.
#include "bench/bench_common.hpp"
#include "snoid/validation.hpp"
#include "stats/kde.hpp"

namespace {

using namespace satnet;

void print_fig2() {
  bench::header("Figure 2", "Per-ASN latency KDE curves and verdicts");
  const auto& ds = bench::mlab_dataset();
  const auto by_asn = ds.by_asn();

  // The ASNs the paper's figure shows, with their expected character.
  struct Entry {
    bgp::Asn asn;
    const char* label;
    const char* paper_note;
  };
  const Entry entries[] = {
      {14593, "starlink AS14593", "LEO, median ~56 ms"},
      {27277, "starlink AS27277", "corporate wireline outlier"},
      {800, "oneweb AS800", "LEO, median ~154 ms"},
      {60725, "o3b AS60725", "MEO, ~280 ms"},
      {201554, "ses AS201554", "hybrid MEO+GEO (+ terrestrial anomaly)"},
      {12684, "ses AS12684", "GEO, ~700 ms"},
      {10538, "telalaska AS10538", "GEO with terrestrial low-latency peak"},
  };

  for (const auto& e : entries) {
    const auto it = by_asn.find(e.asn);
    if (it == by_asn.end()) {
      std::printf("  %-20s (no data)\n", e.label);
      continue;
    }
    const auto lat = ds.field(it->second, &mlab::NdtRecord::latency_p5_ms);
    const stats::Kde kde(lat);
    std::printf("  %-20s n=%-6zu peaks:", e.label, lat.size());
    for (const auto& p : kde.peaks()) {
      if (p.mass < 0.03) continue;
      std::printf(" %.0fms(mass %.2f)", p.location, p.mass);
    }
    std::printf("   [paper: %s]\n", e.paper_note);
  }

  bench::note("sparkline of the Starlink vs TelAlaska KDE (density vs latency):");
  for (const bgp::Asn asn : {bgp::Asn{14593}, bgp::Asn{10538}}) {
    const auto lat = ds.field(by_asn.at(asn), &mlab::NdtRecord::latency_p5_ms);
    const auto curve = stats::Kde(lat).curve(64);
    double y_max = 0;
    for (const double y : curve.y) y_max = std::max(y_max, y);
    std::printf("  AS%-6u |", asn);
    const char* shades = " .:-=+*#";
    for (const double y : curve.y) {
      std::printf("%c", shades[static_cast<int>(7.99 * y / (y_max + 1e-12))]);
    }
    std::printf("| %.0f..%.0f ms\n", curve.x.front(), curve.x.back());
  }
}

void BM_kde_fit(benchmark::State& state) {
  const auto& ds = bench::mlab_dataset();
  const auto by_asn = ds.by_asn();
  const auto lat = ds.field(by_asn.at(14593), &mlab::NdtRecord::latency_p5_ms);
  for (auto _ : state) {
    const stats::Kde kde(lat);
    benchmark::DoNotOptimize(kde.peaks().size());
  }
  state.counters["samples"] = static_cast<double>(lat.size());
}
BENCHMARK(BM_kde_fit)->Unit(benchmark::kMillisecond);

void BM_asn_classification(benchmark::State& state) {
  const auto& ds = bench::mlab_dataset();
  const auto by_asn = ds.by_asn();
  const auto lat = ds.field(by_asn.at(14593), &mlab::NdtRecord::latency_p5_ms);
  const snoid::TechWindow leo{35.0, 320.0, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(snoid::classify_asn(14593, lat, leo).cls);
  }
}
BENCHMARK(BM_asn_classification)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig2)
