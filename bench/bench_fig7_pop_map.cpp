// Figure 7: probe <-> PoP geography. For each validated probe, the PoPs
// it used over the year: the currently-active association ("green line")
// and the superseded ones ("red dotted lines"), with rDNS names.
#include <map>

#include "bench/bench_common.hpp"
#include "snoid/pop_analysis.hpp"

namespace {

using namespace satnet;

void print_fig7() {
  bench::header("Figure 7", "Probe-PoP associations (active and historical)");
  const auto& ds = bench::atlas_dataset();
  const auto assoc = snoid::pop_association_history(ds);

  // Group by probe; the latest association is the active one.
  std::map<int, std::vector<const snoid::PopAssociation*>> by_probe;
  for (const auto& a : assoc) by_probe[a.probe_id].push_back(&a);

  std::size_t multi_pop_probes = 0;
  for (const auto& [probe_id, list] : by_probe) {
    if (list.size() < 2) continue;  // print only the interesting ones
    ++multi_pop_probes;
    std::printf("  probe %d (%s):\n", probe_id, list.front()->country.c_str());
    for (std::size_t i = 0; i < list.size(); ++i) {
      const bool active = i + 1 == list.size();
      std::printf("    %s customer.%s.pop.starlinkisp.net  days %.0f-%.0f (%zu traces)\n",
                  active ? "ACTIVE " : "retired", list[i]->pop_name.c_str(),
                  list[i]->first_day, list[i]->last_day, list[i]->n_traceroutes);
    }
  }
  std::printf("  probes with PoP changes: %zu\n", multi_pop_probes);
  bench::note("paper: NZ Sydney->Auckland; NL Frankfurt->London; "
              "NV LA->Denver->LA; AK fixed to Seattle; PH fixed to Tokyo");

  // Verify the fixed anomalies explicitly.
  std::map<std::string, std::map<std::string, std::size_t>> country_pops;
  std::map<int, std::string> country_of;
  for (const auto& p : ds.probes) country_of[p.id] = p.country;
  for (const auto& a : assoc) country_pops[a.country][a.pop_name] += a.n_traceroutes;
  for (const char* cc : {"PH", "NZ", "CL"}) {
    std::printf("  %s PoPs:", cc);
    for (const auto& [pop, n] : country_pops[cc]) std::printf(" %s(%zu)", pop.c_str(), n);
    std::printf("\n");
  }
}

void BM_association_history(benchmark::State& state) {
  const auto& ds = bench::atlas_dataset();
  for (auto _ : state) {
    const auto assoc = snoid::pop_association_history(ds);
    benchmark::DoNotOptimize(assoc.size());
  }
}
BENCHMARK(BM_association_history)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig7)
