// Figure 4: cross-orbit performance —
//  (a) daily median access latency over the window, per major SNO;
//  (b) jitter-variability CDFs per orbit (+ absolute-jitter inset);
//  (c) retransmission CDFs: LEO / MEO / GEO(PEP) / GEO(others),
//      plus a PEP on/off ablation of the transport model.
#include "bench/bench_common.hpp"
#include "snoid/analysis.hpp"
#include "stats/cdf.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace satnet;

void print_fig4a() {
  bench::header("Figure 4a", "Daily median latency per SNO over the window");
  const auto& ds = bench::mlab_dataset();
  const auto& result = bench::pipeline();
  for (const char* name : {"starlink", "oneweb", "o3b/ses", "hughesnet", "viasat"}) {
    const auto series = snoid::daily_latency_series(ds, result, name);
    if (series.empty()) continue;
    std::vector<double> medians;
    for (const auto& b : series) medians.push_back(b.median);
    const auto s = stats::summarize(medians);
    const double var = stats::daily_variation_p95(series);
    std::printf("  %-10s days=%-4zu median-of-daily-medians=%7.1f ms "
                "p95 daily variation=%5.1f%%\n",
                name, series.size(), s.p50, var * 100.0);
  }
  bench::note("paper: Starlink/Viasat stable (3.1%/7.2%); O3b 41.4%; "
              "HughesNet up to 72%; OneWeb up to 120%");
}

void print_fig4b() {
  bench::header("Figure 4b", "Jitter variability (jitter_p95/latency_p5) CDF per orbit");
  const auto& ds = bench::mlab_dataset();
  const auto groups = snoid::retained_by_orbit(bench::pipeline());
  for (const auto& [orbit_class, subset] : groups) {
    if (subset.empty()) continue;
    const stats::Cdf cdf(snoid::jitter_variability(ds, subset));
    std::printf("  %-4s %s\n", orbit::to_string(orbit_class).c_str(),
                stats::describe_cdf(cdf).c_str());
  }
  bench::note("paper: LEO median 0.5 vs GEO 0.28; MEO like GEO with a heavy tail");

  std::printf("\n  inset: absolute jitter (ms)\n");
  for (const auto& [orbit_class, subset] : groups) {
    if (subset.empty()) continue;
    const stats::Cdf cdf(ds.field(subset, &mlab::NdtRecord::jitter_p95_ms));
    std::printf("  %-4s %s  P(jitter>100ms)=%.2f\n",
                orbit::to_string(orbit_class).c_str(), stats::describe_cdf(cdf).c_str(),
                1.0 - cdf.at(100.0));
  }
  bench::note("paper inset: >80% of GEO tests above 100 ms jitter; <20% for LEO");
}

void print_fig4c() {
  bench::header("Figure 4c", "Retransmitted-byte fraction CDFs");
  const auto& ds = bench::mlab_dataset();
  const auto g = snoid::retransmission_groups(ds, bench::pipeline());
  const std::pair<const char*, const std::vector<double>*> series[] = {
      {"LEO", &g.leo}, {"MEO", &g.meo}, {"GEO (PEP)", &g.geo_pep},
      {"GEO (others)", &g.geo_others}};
  for (const auto& [label, values] : series) {
    if (values->empty()) continue;
    const stats::Cdf cdf(*values);
    std::printf("  %-12s median=%.3f %s\n", label, cdf.quantile(0.5),
                stats::describe_cdf(cdf).c_str());
  }
  bench::note("paper: GEO(others) median 8.74%; GEO(PEP) close to LEO");

  // Ablation: the same GEO path with the PEP force-toggled.
  std::printf("\n  ablation: one GEO path, PEP on/off (20 flows each)\n");
  for (const bool pep : {false, true}) {
    transport::PathProfile p;
    p.base_rtt_ms = 620;
    p.jitter_ms = 40;
    p.bottleneck_mbps = 15;
    p.buffer_bdp = 0.8;
    p.sat_loss = pep ? 0.018 : 0.004;
    p.spurious_rto_prob = pep ? 0.004 : 0.12;
    p.pep = pep;
    std::vector<double> retrans, goodput;
    for (int i = 0; i < 20; ++i) {
      transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(100 + i));
      const auto r = flow.run_for(10000);
      retrans.push_back(r.retrans_fraction);
      goodput.push_back(r.goodput_mbps);
    }
    std::printf("  PEP=%-3s median retrans=%.3f median goodput=%.2f Mbps\n",
                pep ? "on" : "off", stats::median(retrans), stats::median(goodput));
  }
}

void print_fig4() {
  print_fig4a();
  print_fig4b();
  print_fig4c();
}

void BM_ndt_flow_geo(benchmark::State& state) {
  transport::PathProfile p;
  p.base_rtt_ms = 620;
  p.bottleneck_mbps = 15;
  p.spurious_rto_prob = 0.12;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(seed++));
    benchmark::DoNotOptimize(flow.run_for(10000).goodput_mbps);
  }
}
BENCHMARK(BM_ndt_flow_geo)->Unit(benchmark::kMicrosecond);

void BM_ndt_flow_leo(benchmark::State& state) {
  transport::PathProfile p;
  p.base_rtt_ms = 50;
  p.bottleneck_mbps = 100;
  p.handoff_rate_hz = 0.05;
  p.handoff_loss_frac = 0.12;
  p.handoff_spike_ms = 30;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(seed++));
    benchmark::DoNotOptimize(flow.run_for(10000).goodput_mbps);
  }
}
BENCHMARK(BM_ndt_flow_leo)->Unit(benchmark::kMicrosecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig4)
