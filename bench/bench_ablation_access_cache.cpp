// Ablation: the access-interval visibility index (orbit/access_index).
// Re-runs two representative workloads with the index enabled and
// disabled, asserts the outputs are byte-identical, and reports the
// speedup:
//  * a handoff census — measure_handoffs over a fleet of terminals, the
//    epoch-densest consumer of serving-satellite selection;
//  * the standard M-Lab NDT campaign at the benches' usual scale.
// The cache is a pure accelerator: any fingerprint divergence here is a
// bug (exit 1), backstopping the golden and determinism suites.
//
// Writes BENCH_access_cache.json (cwd) with the timings, speedups, and
// cache hit/miss counters for CI trend tracking. The bench toggles the
// cache itself, so --no-access-cache has no effect on this binary.
//
// Since the epoch timeline landed (orbit/timeline), campaigns replay
// precomputed access state and the index only serves timeline misses.
// This ablation disables the timeline for its A/B rows so the index is
// actually on the hot path being measured; bench_timeline owns the
// timeline-vs-on-demand comparison.
#include "bench/bench_common.hpp"

#include <bit>
#include <cstdint>

#include "orbit/access.hpp"

namespace {

using namespace satnet;

/// Fleet of terminals across the Starlink service area: dense North
/// America plus the paper's anomaly regions (Alaska, Oceania, South
/// America) — enough geographic spread that slab candidate lists are
/// built for many distinct ground cells, not one hot cell.
const geo::GeoPoint kFleet[] = {
    {47.61, -122.33, 0},  // seattle
    {61.22, -149.90, 0},  // anchorage
    {34.05, -118.24, 0},  // los angeles
    {40.71, -74.01, 0},   // new york
    {29.76, -95.37, 0},   // houston
    {45.50, -73.57, 0},   // montreal
    {19.43, -99.13, 0},   // mexico city
    {51.51, -0.13, 0},    // london
    {48.86, 2.35, 0},     // paris
    {52.52, 13.40, 0},    // berlin
    {-33.87, 151.21, 0},  // sydney
    {-36.85, 174.76, 0},  // auckland
    {-23.55, -46.63, 0},  // sao paulo
    {-33.45, -70.67, 0},  // santiago
    {35.68, 139.69, 0},   // tokyo
    {14.60, 120.98, 0},   // manila
};

const orbit::AccessNetwork& starlink() {
  static const orbit::AccessNetwork net =
      orbit::make_starlink_access(bench::world().starlink_constellation());
  return net;
}

/// FNV-1a over the raw bits of every HandoffStats field — byte-level
/// fingerprint of the census output.
struct Fingerprint {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
};

/// The census: every terminal scans an hour of reconfiguration epochs
/// through sample_with_handoff — the jitter-model entry point, which
/// needs both the current and the previous epoch's serving satellite.
/// Uncached that is two full constellation sweeps per epoch; with the
/// index the previous epoch is a memo hit and the current one an
/// interval lookup. Four terminals per city share a ground cell, so
/// slab candidate lists amortize across the metro fleet like they do in
/// a real campaign.
std::uint64_t handoff_census() {
  Fingerprint fp;
  for (const auto& city : kFleet) {
    for (int j = 0; j < 4; ++j) {
      const geo::GeoPoint user{city.lat_deg + 0.05 * j, city.lon_deg + 0.07 * j, 0};
      for (int e = 1; e <= 240; ++e) {
        const auto s = starlink().sample_with_handoff(user, 15.0 * e);
        fp.mix(static_cast<std::uint64_t>(s.reachable));
        if (!s.reachable) continue;
        fp.mix(s.one_way_ms);
        fp.mix(static_cast<std::uint64_t>(s.handoff));
        fp.mix(static_cast<std::uint64_t>(s.gateway_index));
        fp.mix(static_cast<std::uint64_t>(s.pop_index));
      }
    }
  }
  return fp.h;
}

std::uint64_t mlab_hash() {
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.002;
  cfg.min_tests_per_sno = 30;
  cfg.threads = bench::threads();
  return mlab::run_campaign(bench::world(), cfg).hash();
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// Runs `work` cache-off then cache-on (cold), requiring identical
/// fingerprints. Returns {uncached_ms, cached_ms, fingerprint}.
struct AblationRow {
  double uncached_ms = 0;
  double cached_ms = 0;
  std::uint64_t fingerprint = 0;
};

template <typename Work>
AblationRow run_ablation(const char* label, Work work) {
  AblationRow row;
  orbit::set_access_cache_enabled(false);
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  auto t0 = std::chrono::steady_clock::now();
  row.fingerprint = work();
  row.uncached_ms = wall_ms_since(t0);

  orbit::set_access_cache_enabled(true);
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  t0 = std::chrono::steady_clock::now();
  const std::uint64_t cached = work();
  row.cached_ms = wall_ms_since(t0);

  if (cached != row.fingerprint) {
    std::fprintf(stderr,
                 "FATAL: %s output diverges with the access cache enabled "
                 "(uncached %016llx, cached %016llx) — the index broke its "
                 "byte-identity contract\n",
                 label, static_cast<unsigned long long>(row.fingerprint),
                 static_cast<unsigned long long>(cached));
    std::exit(1);
  }
  return row;
}

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

void print_ablation() {
  bench::header("Ablation: access-interval index",
                "same campaigns, cache on vs off (cone-prefilter sweep)");

  // Ablate the timeline for the whole A/B: with replay active the index
  // never runs and both rows would measure the same binary searches.
  const bool timeline_was_enabled = orbit::timeline_enabled();
  orbit::set_timeline_enabled(false);

  const std::uint64_t hits0 = counter_value("access.cache.hit");
  const std::uint64_t misses0 = counter_value("access.cache.miss");

  const AblationRow census = run_ablation("handoff census", handoff_census);
  const AblationRow campaign = run_ablation("mlab campaign", mlab_hash);

  const std::uint64_t hits = counter_value("access.cache.hit") - hits0;
  const std::uint64_t misses = counter_value("access.cache.miss") - misses0;
  const double hit_ratio =
      hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                        : 0.0;
  const double census_speedup =
      census.cached_ms > 0 ? census.uncached_ms / census.cached_ms : 0.0;
  const double campaign_speedup =
      campaign.cached_ms > 0 ? campaign.uncached_ms / campaign.cached_ms : 0.0;

  std::printf("  %-16s %12s %12s %9s\n", "workload", "uncached ms", "cached ms",
              "speedup");
  std::printf("  %-16s %12.1f %12.1f %8.2fx\n", "handoff census", census.uncached_ms,
              census.cached_ms, census_speedup);
  std::printf("  %-16s %12.1f %12.1f %8.2fx\n", "mlab campaign", campaign.uncached_ms,
              campaign.cached_ms, campaign_speedup);
  std::printf("  cache: %llu hits / %llu misses (%.1f%% hit ratio)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_ratio * 100.0);
  std::printf("  outputs byte-identical cache on/off: yes (asserted)\n");
  std::printf("  handoff-census speedup target >= 2x: %s\n",
              census_speedup >= 2.0 ? "met" : "NOT MET");
  bench::note("mlab campaign is transport-simulation-bound; orbit sampling is a "
              "small slice there, so the index mostly rides along");

  std::FILE* out = std::fopen("BENCH_access_cache.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_access_cache.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_ablation_access_cache\",\n"
               "  \"handoff_census\": {\"uncached_ms\": %.1f, \"cached_ms\": %.1f, "
               "\"speedup\": %.2f},\n"
               "  \"mlab_campaign\": {\"uncached_ms\": %.1f, \"cached_ms\": %.1f, "
               "\"speedup\": %.2f},\n"
               "  \"cache\": {\"hits\": %llu, \"misses\": %llu, \"hit_ratio\": %.4f},\n"
               "  \"outputs_identical\": true\n"
               "}\n",
               census.uncached_ms, census.cached_ms, census_speedup,
               campaign.uncached_ms, campaign.cached_ms, campaign_speedup,
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses), hit_ratio);
  std::fclose(out);
  bench::note("wrote BENCH_access_cache.json");
  orbit::set_timeline_enabled(timeline_was_enabled);
}

void BM_sample_cached(benchmark::State& state) {
  orbit::set_access_cache_enabled(true);
  double t = 0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(starlink().sample(kFleet[0], t));
  }
}
BENCHMARK(BM_sample_cached)->Unit(benchmark::kMicrosecond);

void BM_sample_sweep(benchmark::State& state) {
  orbit::set_access_cache_enabled(false);
  double t = 0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(starlink().sample(kFleet[0], t));
  }
  orbit::set_access_cache_enabled(true);
}
BENCHMARK(BM_sample_sweep)->Unit(benchmark::kMicrosecond);

void BM_measure_handoffs_cached(benchmark::State& state) {
  orbit::set_access_cache_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        orbit::measure_handoffs(starlink(), kFleet[0], 0.0, 3600.0));
  }
}
BENCHMARK(BM_measure_handoffs_cached)->Unit(benchmark::kMillisecond);

void BM_measure_handoffs_sweep(benchmark::State& state) {
  orbit::set_access_cache_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        orbit::measure_handoffs(starlink(), kFleet[0], 0.0, 3600.0));
  }
  orbit::set_access_cache_enabled(true);
}
BENCHMARK(BM_measure_handoffs_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_ablation)
