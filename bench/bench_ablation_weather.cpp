// Ablation: rain fade. Related measurement work (the paper's §2) reports
// strong weather sensitivity of satellite access; this bench quantifies
// it in the reproduction by re-running the NDT campaign with the weather
// overlay enabled and splitting results by sky condition and orbit.
#include "bench/bench_common.hpp"
#include "io/golden.hpp"
#include "weather/weather.hpp"

namespace {

using namespace satnet;

// The table lives in io::ablation_weather_report so the golden
// regression suite (tests/golden_test.cpp) can pin it byte-for-byte.
void print_weather() { std::fputs(io::ablation_weather_report().c_str(), stdout); }

void BM_weather_field(benchmark::State& state) {
  const weather::WeatherField field;
  double t = 0;
  for (auto _ : state) {
    t += 3600.0;
    benchmark::DoNotOptimize(field.at({40.0, -100.0, 0}, t));
  }
}
BENCHMARK(BM_weather_field);

}  // namespace

SATNET_BENCH_MAIN(print_weather)
