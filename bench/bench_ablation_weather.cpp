// Ablation: rain fade. Related measurement work (the paper's §2) reports
// strong weather sensitivity of satellite access; this bench quantifies
// it in the reproduction by re-running the NDT campaign with the weather
// overlay enabled and splitting results by sky condition and orbit.
#include <map>

#include "bench/bench_common.hpp"
#include "stats/summary.hpp"
#include "transport/tcp.hpp"
#include "weather/weather.hpp"

namespace {

using namespace satnet;

void print_weather() {
  bench::header("Ablation", "Rain fade: throughput/latency by sky condition");

  synth::WorldConfig cfg;
  cfg.enable_weather = true;
  const synth::World world(cfg);
  const weather::WeatherField field(cfg.weather);
  stats::Rng rng(17);

  // Sample NDT-style flows per (orbit, condition).
  struct Cell {
    std::vector<double> goodput_frac;  ///< goodput / plan
    std::vector<double> retrans;
    int outages = 0;
    int n = 0;
  };
  std::map<std::pair<orbit::OrbitClass, weather::Condition>, Cell> cells;

  std::map<orbit::OrbitClass, int> sampled;
  for (const auto& sub : world.subscribers()) {
    if (sub.tech != synth::AccessTech::satellite) continue;
    if (++sampled[sub.orbit] > 150) continue;  // per-orbit quota
    for (int k = 0; k < 4; ++k) {
      const double t = k * 86400.0 * 13 + 3600.0 * k;
      const weather::Condition sky = field.at(sub.location, t);
      auto& cell = cells[{sub.orbit, sky}];
      ++cell.n;
      const auto path = world.sample_path(sub, t, rng);
      if (!path.ok) {
        ++cell.outages;
        continue;
      }
      transport::TcpFlow flow(path.download, transport::TcpOptions{},
                              rng.fork(sub.ip.value() + k));
      const auto r = flow.run_for(8000.0);
      cell.goodput_frac.push_back(r.goodput_mbps / sub.plan_down_mbps);
      cell.retrans.push_back(r.retrans_fraction);
    }
  }

  std::printf("  %-5s %-11s %5s %18s %14s %8s\n", "orbit", "sky", "n",
              "goodput/plan (med)", "retrans (med)", "outages");
  for (const auto& [key, cell] : cells) {
    if (cell.goodput_frac.empty() && cell.outages == 0) continue;
    std::printf("  %-5s %-11s %5d %18.2f %14.3f %8d\n",
                orbit::to_string(key.first).c_str(),
                std::string(weather::to_string(key.second)).c_str(), cell.n,
                cell.goodput_frac.empty() ? 0.0 : stats::median(cell.goodput_frac),
                cell.retrans.empty() ? 0.0 : stats::median(cell.retrans),
                cell.outages);
  }
  bench::note("expected shape (per Kassem/Ma et al.): GEO capacity collapses "
              "under rain; LEO degrades mildly; only GEO heavy rain causes "
              "outages");
}

void BM_weather_field(benchmark::State& state) {
  const weather::WeatherField field;
  double t = 0;
  for (auto _ : state) {
    t += 3600.0;
    benchmark::DoNotOptimize(field.at({40.0, -100.0, 0}, t));
  }
}
BENCHMARK(BM_weather_field);

}  // namespace

SATNET_BENCH_MAIN(print_weather)
