// Figure 6: Starlink through RIPE Atlas, rest of the world —
//  (a) probe -> PoP (CGNAT) RTT per country,
//  (b) RTT to the 13 DNS roots per country,
//  (c) hop counts to the roots.
#include "bench/bench_common.hpp"
#include "snoid/pop_analysis.hpp"

namespace {

using namespace satnet;

void print_fig6() {
  const auto& ds = bench::atlas_dataset();

  bench::header("Figure 6a", "RTT between non-US probes and their Starlink PoP");
  for (const auto& r : snoid::pop_rtt_by_country(ds, /*us_only=*/false)) {
    std::printf("  %-4s %s\n", r.key.c_str(), stats::to_string(r.rtt).c_str());
  }
  bench::note("paper: NZ/CL ~33 ms; Europe 35-40; CA/AU ~45; PH 80 (Tokyo PoP)");

  bench::header("Figure 6b", "RTT between non-US probes and the DNS roots");
  for (const auto& r : snoid::root_rtt_by_country(ds)) {
    std::printf("  %-4s %s\n", r.key.c_str(), stats::to_string(r.rtt).c_str());
  }
  bench::note("paper: Europe 40-49 (ES 58); CL +10-20 over its PoP RTT; "
              "NZ/AU 100-150 for most; PH ~200");

  bench::header("Figure 6c", "Traceroute hop counts to the roots");
  for (const auto& [country, hops] : snoid::root_hops_by_country(ds)) {
    std::printf("  %-4s hops: min=%.0f p25=%.0f median=%.0f p75=%.0f max=%.0f\n",
                country.c_str(), hops.min, hops.p25, hops.p50, hops.p75, hops.max);
  }
  bench::note("paper: 5 hops to local instances (CL to L-root) up to 20+ "
              "(no regional instance)");
}

void BM_pop_rtt_analysis(benchmark::State& state) {
  const auto& ds = bench::atlas_dataset();
  for (auto _ : state) {
    const auto rows = snoid::pop_rtt_by_country(ds, false);
    benchmark::DoNotOptimize(rows.size());
  }
  state.counters["traceroutes"] = static_cast<double>(ds.traceroutes.size());
}
BENCHMARK(BM_pop_rtt_analysis)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig6)
