// Matrix bench: the seeded scenario generator + invariant harness
// (synth/worldgen, matrix/invariants). Generates a sweep of worlds from
// consecutive seeds and runs the full five-invariant catalog on each —
// the exact work `verify.sh --matrix` buys per world — and reports
// worlds/sec so the ledger catches the sweep getting slower.
//
// SATNET_BENCH_MATRIX_WORLDS overrides the sweep size (default 25, the
// verify gate's floor). Writes BENCH_matrix.json (cwd) with the timings,
// the throughput, and an `invariants_ok` flag the ratios-only ledger
// gate holds at 1 — a generated world failing its own catalog is a
// regression no matter how fast it ran.
#include "bench/bench_common.hpp"

#include <cstdint>
#include <cstdlib>

#include "matrix/invariants.hpp"
#include "orbit/access.hpp"
#include "synth/worldgen.hpp"

namespace {

using namespace satnet;

// Distinct from the matrix_test sweep stride so the bench exercises
// fresh seeds rather than re-checking the tested ones.
std::uint64_t bench_seed(std::size_t i) { return 2000003ull * (i + 1) + 29ull; }

std::size_t env_worlds(std::size_t fallback) {
  const char* env = std::getenv("SATNET_BENCH_MATRIX_WORLDS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return fallback;
  return static_cast<std::size_t>(v);
}

// The bench's only clock read; phase timings are deltas of this.
double wall_ms() {
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch()).count();
}

void print_matrix_bench() {
  const std::size_t n_worlds = env_worlds(25);
  const std::string caption = "generate " + std::to_string(n_worlds) +
                              " seeded worlds, run all five invariants on each";
  bench::header("Scenario matrix: worldgen + invariant catalog", caption.c_str());

  // Generation alone first: the spec is a pure value, so this isolates
  // the generator from the (much heavier) evaluation it feeds.
  const double gen_t0 = wall_ms();
  std::vector<synth::ScenarioSpec> specs;
  specs.reserve(n_worlds);
  std::size_t satellites = 0, terminals = 0, faults = 0;
  for (std::size_t i = 0; i < n_worlds; ++i) {
    specs.push_back(synth::generate_scenario(bench_seed(i)));
    satellites += specs.back().total_satellites();
    terminals += specs.back().terminals.size();
    faults += specs.back().faults.events().size();
  }
  const double gen_ms = wall_ms() - gen_t0;

  // The sweep itself: full catalog per world (1/2/8 threads, ablation,
  // conservation, two widening rounds, finite metrics). Sequential by
  // contract — check_spec installs fault hooks and ablation switches.
  const double check_t0 = wall_ms();
  std::size_t violations = 0;
  for (const auto& spec : specs) {
    const auto v = matrix::check_spec(spec);
    if (v.has_value()) {
      ++violations;
      const std::string line = "VIOLATION seed " + std::to_string(spec.seed) + ": " +
                               v->invariant + ": " + v->detail;
      bench::note(line.c_str());
    }
    // Drop each world's precomputed timeline so the sweep's footprint
    // stays one world, matching the harness.
    orbit::EpochTimeline::clear_installed();
  }
  const double check_ms = wall_ms() - check_t0;
  const double mean_world_ms = check_ms / static_cast<double>(n_worlds);
  const double worlds_per_s = check_ms > 0 ? 1e3 * static_cast<double>(n_worlds) / check_ms : 0;

  std::printf("  %-34s %10zu\n", "worlds", n_worlds);
  std::printf("  %-34s %10zu\n", "satellites (total)", satellites);
  std::printf("  %-34s %10zu\n", "terminals (total)", terminals);
  std::printf("  %-34s %10zu\n", "fault events (total)", faults);
  std::printf("  %-34s %10.1f\n", "generate wall ms", gen_ms);
  std::printf("  %-34s %10.1f\n", "check wall ms", check_ms);
  std::printf("  %-34s %10.1f\n", "mean ms / world", mean_world_ms);
  std::printf("  %-34s %10.1f\n", "worlds / sec", worlds_per_s);
  std::printf("  invariant violations: %zu (%s)\n", violations,
              violations == 0 ? "all worlds clean" : "SWEEP FAILED");

  std::FILE* out = std::fopen("BENCH_matrix.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_matrix.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_matrix\",\n"
               "  \"matrix\": {\"worlds\": %zu, \"satellites\": %zu, \"terminals\": %zu, "
               "\"fault_events\": %zu, \"generate_ms\": %.1f, \"check_ms\": %.1f, "
               "\"mean_world_ms\": %.1f, \"worlds_per_s\": %.2f, \"violations\": %zu},\n"
               "  \"invariants_ok\": %s\n"
               "}\n",
               n_worlds, satellites, terminals, faults, gen_ms, check_ms, mean_world_ms,
               worlds_per_s, violations, violations == 0 ? "true" : "false");
  std::fclose(out);
  bench::note("wrote BENCH_matrix.json");
  if (violations > 0) std::exit(1);
}

// Microbench: one spec generated end to end — the unit the sweep scales.
void BM_generate_scenario(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::generate_scenario(bench_seed(i++ % 64)));
  }
}
BENCHMARK(BM_generate_scenario);

}  // namespace

SATNET_BENCH_MAIN(print_matrix_bench)
