// Shared state and helpers for the figure/table benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the reproduced rows (with the paper's reported values alongside
// where the paper gives numbers) and then times its computational kernels
// with google-benchmark. Heavy inputs (world, campaigns, pipeline) are
// built once per binary and shared.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mlab/campaign.hpp"
#include "ripe/atlas.hpp"
#include "runtime/thread_pool.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"

namespace satnet::bench {

/// Worker threads for campaign construction (--threads N; 0 = one per
/// hardware thread). Output is identical for every value — the knob only
/// moves wall-clock.
inline unsigned& threads() {
  static unsigned t = 0;
  return t;
}

/// Strips "--threads N" from argv (google-benchmark rejects unknown
/// flags) and stores the value behind threads().
inline void parse_threads_flag(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      threads() = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return;
    }
  }
}

/// The world every bench shares.
inline const synth::World& world() {
  static const synth::World w;
  return w;
}

/// M-Lab campaign at the benches' standard scale (0.2% of the paper's
/// 11.9M tests; the long tail keeps its absolute volumes).
inline const mlab::NdtDataset& mlab_dataset() {
  static const mlab::NdtDataset ds = [] {
    mlab::CampaignConfig cfg;
    cfg.volume_scale = 0.002;
    cfg.min_tests_per_sno = 30;
    cfg.threads = threads();
    return mlab::run_campaign(world(), cfg);
  }();
  return ds;
}

/// Pipeline result over the standard dataset.
inline const snoid::PipelineResult& pipeline() {
  static const snoid::PipelineResult r = [] {
    snoid::PipelineConfig cfg;
    cfg.threads = threads();
    return snoid::run_pipeline(mlab_dataset(), cfg);
  }();
  return r;
}

/// Full-year RIPE Atlas campaign (8-hour built-in cadence).
inline const ripe::AtlasDataset& atlas_dataset() {
  static const ripe::AtlasDataset ds = [] {
    ripe::AtlasConfig cfg;
    cfg.duration_days = 366.0;
    cfg.round_interval_hours = 8.0;
    cfg.threads = threads();
    return ripe::run_atlas_campaign(cfg);
  }();
  return ds;
}

inline void header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

inline void note(const char* text) { std::printf("  %s\n", text); }

}  // namespace satnet::bench

/// Prints the figure, then runs the registered benchmark kernels.
#define SATNET_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                      \
    ::satnet::bench::parse_threads_flag(&argc, argv);    \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    print_fn();                                          \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }
