// Shared state and helpers for the figure/table benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the reproduced rows (with the paper's reported values alongside
// where the paper gives numbers) and then times its computational kernels
// with google-benchmark. Heavy inputs (world, campaigns, pipeline) are
// built once per binary and shared.
//
// Observability: every bench accepts --metrics-out PATH and
// --trace-out PATH ("-" = stdout). When either is given, the binary
// writes the export at exit and prints a human-readable metrics
// summary; --trace-out also enables span collection for the run.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/hook.hpp"
#include "io/timeline_io.hpp"
#include "mlab/campaign.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "orbit/access_index.hpp"
#include "orbit/timeline.hpp"
#include "ripe/atlas.hpp"
#include "runtime/thread_pool.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"

namespace satnet::bench {

/// Worker threads for campaign construction (--threads N; 0 = one per
/// hardware thread). Output is identical for every value — the knob only
/// moves wall-clock.
inline unsigned& threads() {
  static unsigned t = 0;
  return t;
}

/// Removes every occurrence of `--name value` / `--name=value` from
/// argv (google-benchmark rejects unknown flags). Returns 1 when found
/// (last occurrence's value wins, stored in *value), 0 when absent, -1
/// when the flag is present with no value.
inline int strip_flag(int* argc, char** argv, const char* name, std::string* value) {
  const std::size_t name_len = std::strlen(name);
  int found = 0;
  for (int i = 1; i < *argc;) {
    const char* arg = argv[i];
    int consumed = 0;
    if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= *argc) return -1;  // trailing flag, no value
      *value = argv[i + 1];
      consumed = 2;
    } else if (std::strncmp(arg, name, name_len) == 0 && arg[name_len] == '=') {
      *value = arg + name_len + 1;
      consumed = 1;
    }
    if (consumed == 0) {
      ++i;
      continue;
    }
    for (int j = i; j + consumed < *argc; ++j) argv[j] = argv[j + consumed];
    *argc -= consumed;
    found = 1;  // keep scanning: strip every occurrence
  }
  return found;
}

/// Removes every occurrence of the valueless flag `name` from argv.
/// Returns true when it appeared at least once.
inline bool strip_bare_flag(int* argc, char** argv, const char* name) {
  bool found = false;
  for (int i = 1; i < *argc;) {
    if (std::strcmp(argv[i], name) != 0) {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
    --*argc;
    found = true;
  }
  return found;
}

/// Strips --no-access-cache; when present the run ablates the access
/// index and every sample falls back to the cone-prefilter sweep.
/// Output is identical either way — the golden suite enforces it.
inline void parse_access_cache_flag(int* argc, char** argv) {
  if (strip_bare_flag(argc, argv, "--no-access-cache")) {
    orbit::set_access_cache_enabled(false);
  }
}

/// Parses and strips --threads. Accepts "--threads N" and
/// "--threads=N"; a non-numeric or missing value is a hard error.
inline void parse_threads_flag(int* argc, char** argv) {
  std::string raw;
  const int found = strip_flag(argc, argv, "--threads", &raw);
  if (found == 0) return;
  char* end = nullptr;
  const unsigned long n = found < 0 ? 0 : std::strtoul(raw.c_str(), &end, 10);
  if (found < 0 || end == raw.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: --threads expects a non-negative integer, got '%s'\n",
                 argv[0], raw.c_str());
    std::exit(2);
  }
  threads() = static_cast<unsigned>(n);
}

struct ObsSession {
  std::string tool;
  std::string command;
  std::string metrics_out;
  std::string trace_out;
  std::string recorder_out;
  std::string fault_plan_path;
  std::string fault_plan_summary;
  std::string timeline_out;
  std::chrono::steady_clock::time_point start;
};

inline ObsSession& obs_session() {
  static ObsSession s;
  return s;
}

/// Captures the command line (before flags are stripped) and starts the
/// wall clock for the run manifest. Call first in main().
inline void obs_init(int argc, char** argv) {
  ObsSession& s = obs_session();
  // satlint:allow(nondet-source): run-manifest wall-clock; results never read it
  s.start = std::chrono::steady_clock::now();
  const char* slash = std::strrchr(argv[0], '/');
  s.tool = slash ? slash + 1 : argv[0];
  for (int i = 0; i < argc; ++i) {
    if (i > 0) s.command += ' ';
    s.command += argv[i];
  }
}

/// Strips --metrics-out / --trace-out; --trace-out enables the tracer.
inline void parse_obs_flags(int* argc, char** argv) {
  ObsSession& s = obs_session();
  if (strip_flag(argc, argv, "--metrics-out", &s.metrics_out) < 0 ||
      strip_flag(argc, argv, "--trace-out", &s.trace_out) < 0) {
    std::fprintf(stderr, "%s: --metrics-out/--trace-out expect a path ('-' = stdout)\n",
                 argv[0]);
    std::exit(2);
  }
  if (!s.trace_out.empty()) obs::Tracer::global().set_enabled(true);
}

/// Strips the flight-recorder and watchdog flags:
///   --recorder-out PATH   enable the recorder; drain events to PATH as
///                         JSONL at exit ("-" = stdout). Crash dumps go
///                         to PATH.postmortem.
///   --recorder-ring N     per-shard ring capacity (default 512)
///   --watchdog-ms N       pool watchdog poll interval (0 = off)
///   --watchdog-threshold-ms X  flag tasks running longer than X ms
inline void parse_recorder_flags(int* argc, char** argv) {
  ObsSession& s = obs_session();
  std::string ring, poll, threshold;
  if (strip_flag(argc, argv, "--recorder-out", &s.recorder_out) < 0 ||
      strip_flag(argc, argv, "--recorder-ring", &ring) < 0 ||
      strip_flag(argc, argv, "--watchdog-ms", &poll) < 0 ||
      strip_flag(argc, argv, "--watchdog-threshold-ms", &threshold) < 0) {
    std::fprintf(stderr,
                 "%s: --recorder-out/--recorder-ring/--watchdog-ms/"
                 "--watchdog-threshold-ms expect a value\n",
                 argv[0]);
    std::exit(2);
  }
  if (!s.recorder_out.empty()) {
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.set_enabled(true);
    if (s.recorder_out != "-") {
      rec.set_postmortem_path(s.recorder_out + ".postmortem");
    }
  }
  if (!ring.empty()) {
    obs::FlightRecorder::global().set_ring_capacity(
        static_cast<std::size_t>(std::strtoul(ring.c_str(), nullptr, 10)));
  }
  if (!poll.empty() || !threshold.empty()) {
    runtime::set_pool_watchdog(
        poll.empty() ? 0u
                     : static_cast<unsigned>(
                           std::strtoul(poll.c_str(), nullptr, 10)),
        threshold.empty() ? 0.0 : std::strtod(threshold.c_str(), nullptr));
  }
}

/// Strips --fault-plan PATH and installs the plan for the whole run.
/// A malformed plan (or unreadable file) is a hard error.
inline void parse_fault_flag(int* argc, char** argv) {
  ObsSession& s = obs_session();
  const int found = strip_flag(argc, argv, "--fault-plan", &s.fault_plan_path);
  if (found == 0) return;
  if (found < 0) {
    std::fprintf(stderr, "%s: --fault-plan expects a path\n", argv[0]);
    std::exit(2);
  }
  try {
    fault::FaultPlan plan = fault::FaultPlan::load_file(s.fault_plan_path);
    s.fault_plan_summary = plan.summary();
    fault::Hook::install(std::move(plan));
    std::printf("fault plan %s: %s\n", s.fault_plan_path.c_str(),
                s.fault_plan_summary.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    std::exit(2);
  }
}

/// Strips the timeline flags shared with satnetctl: --no-timeline
/// ablates the epoch-timeline precompute (on-demand oracle path),
/// --timeline-in PATH warm-starts from a saved file (a rejected file
/// prints one diagnostic and the run builds in memory), and
/// --timeline-out PATH saves the built timeline at exit. Output is
/// byte-identical in every mode — the golden suite enforces it.
inline void parse_timeline_flags(int* argc, char** argv) {
  if (strip_bare_flag(argc, argv, "--no-timeline")) {
    orbit::set_timeline_enabled(false);
  }
  ObsSession& s = obs_session();
  std::string timeline_in;
  if (strip_flag(argc, argv, "--timeline-in", &timeline_in) < 0 ||
      strip_flag(argc, argv, "--timeline-out", &s.timeline_out) < 0) {
    std::fprintf(stderr, "%s: --timeline-in/--timeline-out expect a path\n", argv[0]);
    std::exit(2);
  }
  if (timeline_in.empty()) return;
  io::TimelineFileInfo info;
  const std::string err = io::load_timelines(timeline_in, &info);
  if (err.empty()) {
    std::printf("timeline %s: %zu networks, %zu bytes\n", timeline_in.c_str(),
                info.networks, info.bytes);
  } else {
    std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
  }
}

/// Writes requested exports and prints the metrics summary. The
/// timeline save + roll-up line run regardless of obs flags.
inline void obs_finish() {
  const ObsSession& s = obs_session();
  if (!s.timeline_out.empty()) {
    const std::string err = io::save_timelines(s.timeline_out, s.command);
    if (!err.empty()) {
      std::fprintf(stderr, "%s: %s\n", s.tool.c_str(), err.c_str());
    } else {
      std::printf("saved timeline to %s\n", s.timeline_out.c_str());
    }
  }
  const std::string tl = orbit::timeline_summary_line();
  if (!tl.empty()) std::printf("%s\n", tl.c_str());
  if (s.metrics_out.empty() && s.trace_out.empty() && s.recorder_out.empty()) return;
  obs::RunManifest manifest;
  manifest.tool = s.tool;
  manifest.command = s.command;
  manifest.threads = runtime::resolve_threads(threads());
  if (!s.fault_plan_path.empty()) {
    manifest.notes.emplace_back("fault_plan", s.fault_plan_path);
    manifest.notes.emplace_back("fault_events", s.fault_plan_summary);
  }
  manifest.wall_ms = std::chrono::duration<double, std::milli>(
                         // satlint:allow(nondet-source): run-manifest wall-clock; results never read it
                         std::chrono::steady_clock::now() - s.start)
                         .count();
  const obs::Snapshot snap = obs::MetricsRegistry::global().scrape();
  if (!s.metrics_out.empty()) obs::write_metrics_file(s.metrics_out, snap, manifest);
  // Drain once: the event stream goes to --recorder-out when given and
  // also rides --trace-out so one file can hold the whole story.
  std::vector<obs::ResolvedEvent> events;
  if (obs::FlightRecorder::global().enabled()) {
    events = obs::FlightRecorder::global().drain();
  }
  if (!s.trace_out.empty()) {
    obs::write_trace_file(s.trace_out, snap, obs::Tracer::global().drain(),
                          events, manifest);
  }
  if (!s.recorder_out.empty()) {
    std::FILE* f = s.recorder_out == "-" ? stdout
                                         : std::fopen(s.recorder_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s\n", s.tool.c_str(),
                   s.recorder_out.c_str());
    } else {
      std::fprintf(f, "%s\n", obs::manifest_json(manifest).c_str());
      std::fputs(obs::events_jsonl(events).c_str(), f);
      if (f != stdout) std::fclose(f);
    }
  }
  std::fputs(obs::summary_text(snap, manifest).c_str(), stdout);
}

/// The world every bench shares.
inline const synth::World& world() {
  static const synth::World w;
  return w;
}

/// M-Lab campaign at the benches' standard scale (0.2% of the paper's
/// 11.9M tests; the long tail keeps its absolute volumes).
inline const mlab::NdtDataset& mlab_dataset() {
  static const mlab::NdtDataset ds = [] {
    mlab::CampaignConfig cfg;
    cfg.volume_scale = 0.002;
    cfg.min_tests_per_sno = 30;
    cfg.threads = threads();
    cfg.retry = runtime::degrade_under_faults();
    return mlab::run_campaign(world(), cfg);
  }();
  return ds;
}

/// Pipeline result over the standard dataset.
inline const snoid::PipelineResult& pipeline() {
  static const snoid::PipelineResult r = [] {
    snoid::PipelineConfig cfg;
    cfg.threads = threads();
    cfg.retry = runtime::degrade_under_faults();
    return snoid::run_pipeline(mlab_dataset(), cfg);
  }();
  return r;
}

/// Full-year RIPE Atlas campaign (8-hour built-in cadence).
inline const ripe::AtlasDataset& atlas_dataset() {
  static const ripe::AtlasDataset ds = [] {
    ripe::AtlasConfig cfg;
    cfg.duration_days = 366.0;
    cfg.round_interval_hours = 8.0;
    cfg.threads = threads();
    cfg.retry = runtime::degrade_under_faults();
    return ripe::run_atlas_campaign(cfg);
  }();
  return ds;
}

inline void header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

inline void note(const char* text) { std::printf("  %s\n", text); }

}  // namespace satnet::bench

/// Prints the figure, then runs the registered benchmark kernels, then
/// emits observability exports when requested.
#define SATNET_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                      \
    ::satnet::bench::obs_init(argc, argv);               \
    ::satnet::bench::parse_threads_flag(&argc, argv);    \
    ::satnet::bench::parse_obs_flags(&argc, argv);       \
    ::satnet::bench::parse_recorder_flags(&argc, argv);  \
    ::satnet::bench::parse_fault_flag(&argc, argv);      \
    ::satnet::bench::parse_access_cache_flag(&argc, argv); \
    ::satnet::bench::parse_timeline_flags(&argc, argv);  \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    print_fn();                                          \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    ::satnet::bench::obs_finish();                       \
    return 0;                                            \
  }
