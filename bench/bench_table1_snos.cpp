// Table 1: the SNOs identified in the M-Lab dataset and their test
// volumes. The reproduction runs the full identification pipeline on the
// scaled campaign and reports retained test counts per operator next to
// the paper's absolute volumes (the bench runs at 0.2% volume).
#include <algorithm>
#include <vector>

#include "bench/bench_common.hpp"
#include "synth/catalog.hpp"

namespace {

using namespace satnet;

void print_table1() {
  bench::header("Table 1", "Filtered SNOs and access counts per operator");
  const auto& result = bench::pipeline();

  struct Row {
    std::string name;
    std::size_t retained;
    std::uint64_t paper;
    std::string orbit;
  };
  std::vector<Row> rows;
  for (const auto& op : result.operators) {
    if (!op.identified()) continue;
    std::uint64_t paper = 0;
    for (const auto& spec : synth::catalog()) {
      if (spec.name == op.name) paper = spec.mlab_tests;
    }
    rows.push_back({op.name, op.retained.size(), paper,
                    orbit::to_string(op.declared_orbit)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.retained > b.retained; });

  std::printf("  %-12s %-5s %12s %14s  %s\n", "SNO", "orbit", "retained",
              "paper count", "(bench runs at 0.2% volume)");
  for (const auto& r : rows) {
    std::printf("  %-12s %-5s %12zu %14llu\n", r.name.c_str(), r.orbit.c_str(), r.retained,
                static_cast<unsigned long long>(r.paper));
  }
  std::printf("  identified operators: %zu (paper: 18 — 2 LEO, 1 MEO, 15 GEO)\n",
              result.identified_operators);
  std::printf("  ground-truth scoring (reproduction extension):\n");
  for (const auto& op : result.operators) {
    if (!op.identified()) continue;
    std::printf("    %-12s precision=%.3f recall=%.3f\n", op.name.c_str(),
                op.precision(), op.recall());
  }
}

void BM_pipeline(benchmark::State& state) {
  const auto& ds = bench::mlab_dataset();
  snoid::PipelineConfig cfg;
  cfg.retry = runtime::degrade_under_faults();
  for (auto _ : state) {
    const auto result = snoid::run_pipeline(ds, cfg);
    benchmark::DoNotOptimize(result.identified_operators);
  }
  state.counters["records"] = static_cast<double>(ds.size());
}
BENCHMARK(BM_pipeline)->Unit(benchmark::kMillisecond);

void BM_campaign_small(benchmark::State& state) {
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.0001;
  cfg.min_tests_per_sno = 10;
  cfg.retry = runtime::degrade_under_faults();
  for (auto _ : state) {
    const auto ds = mlab::run_campaign(bench::world(), cfg);
    benchmark::DoNotOptimize(ds.size());
  }
}
BENCHMARK(BM_campaign_small)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_table1)
