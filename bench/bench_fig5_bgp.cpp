// Figures 5 & 12 + §4's coverage numbers: BGP peering neighborhoods of
// the SNOs (route-views 2023/1) and the geographic-coverage inference
// scored against the simulated ground-truth PoP footprints.
#include "bench/bench_common.hpp"
#include "bgp/coverage.hpp"
#include "bgp/routeviews.hpp"
#include "bgp/sno_world.hpp"
#include "snoid/analysis.hpp"

namespace {

using namespace satnet;

void print_fig5() {
  bench::header("Figure 5 / 12", "BGP peering of SNOs (route-views 2023/1)");
  const auto truth = bgp::sno_world_graph(2023);
  stats::Rng rng(1);
  const auto observed = bgp::observe_routeviews(truth, rng);

  for (const auto asn : {bgp::kStarlink, bgp::kOneWeb, bgp::kSes, bgp::kViasat,
                         bgp::kHughes, bgp::kKacific, bgp::kHellasSat, bgp::kUltiSat}) {
    std::printf("%s\n", bgp::describe_peering(observed, asn).c_str());
  }

  bench::header("§4 coverage", "Country-level PoP discovery from peering countries");
  for (const auto& fp : bgp::known_footprints()) {
    const auto report = bgp::infer_coverage(observed, fp.asn, fp.footprint);
    std::printf("  %-10s discovered %zu of %zu countries (%.0f%% of PoP cities)\n",
                fp.name, report.discovered.size(), report.truth_countries,
                report.city_coverage() * 100.0);
    std::printf("             inferred countries:");
    for (const auto& c : report.peer_countries) std::printf(" %s", c.c_str());
    std::printf("\n");
  }
  bench::note("paper: Starlink 10/30 (74% of cities), SES 7/22 (57%), "
              "Hellas-Sat 2/2 (100%)");

  bench::header("§4 consistency", "Per-country latency spread (peering explains it)");
  for (const char* op : {"starlink", "oneweb"}) {
    std::printf("  %-10s spread=%.2f\n", op,
                snoid::country_consistency_spread(bench::mlab_dataset(),
                                                  bench::pipeline(), op));
    for (const auto& [country, box] :
         snoid::latency_by_country(bench::mlab_dataset(), bench::pipeline(), op)) {
      std::printf("    %-4s median %.0f ms (n=%zu)\n", country.c_str(), box.median,
                  box.count);
    }
  }
  bench::note("paper (not shown there): Starlink consistent worldwide; OneWeb "
              "skewed North America vs the rest — its PoPs are US-only");
}

void BM_observe_routeviews(benchmark::State& state) {
  const auto truth = bgp::sno_world_graph(2023);
  stats::Rng rng(2);
  for (auto _ : state) {
    const auto g = bgp::observe_routeviews(truth, rng);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_observe_routeviews);

void BM_coverage_inference(benchmark::State& state) {
  const auto truth = bgp::sno_world_graph(2023);
  const auto footprints = bgp::known_footprints();
  for (auto _ : state) {
    const auto r = bgp::infer_coverage(truth, bgp::kStarlink, footprints[0].footprint);
    benchmark::DoNotOptimize(r.discovered.size());
  }
}
BENCHMARK(BM_coverage_inference);

}  // namespace

SATNET_BENCH_MAIN(print_fig5)
