// Figure 14 + §3.3: the Prolific census — prescreening funnel, open
// census with IP-based access control, and subscriber satisfaction.
#include "bench/bench_common.hpp"
#include "prolific/census.hpp"

namespace {

using namespace satnet;

void print_fig14() {
  bench::header("§3.3", "Prolific census funnel");
  prolific::TesterPool pool;
  stats::Rng rng(1);
  const auto out = pool.run_census(rng);
  std::printf("  prescreened as SNO subscribers: %zu   (paper: 160)\n",
              out.prescreen_claimed);
  std::printf("  survey respondents:             %zu   (paper: 30)\n",
              out.prescreen_responded);
  std::printf("  verified by source IP:          %zu   (paper: 20)\n",
              out.prescreen_verified);
  std::printf("  open-census participants:       %zu (paper: 14,371)\n",
              out.open_participants);
  std::printf("  actually connected via an SNO:  %zu   (paper: 57)\n",
              out.open_verified);
  for (const auto& [sno, n] : out.verified_by_sno) {
    std::printf("    %-10s %zu\n", sno.c_str(), n);
  }

  bench::header("Figure 14", "Satisfaction of verified SNO subscribers (1-5)");
  const char* labels[5] = {"very poor", "poor", "ok", "good", "very good"};
  for (const auto& [sno, hist] : pool.satisfaction_histogram()) {
    std::size_t total = 0;
    for (const auto v : hist) total += v;
    std::printf("  %-10s", sno.c_str());
    for (int s = 0; s < 5; ++s) {
      std::printf("  %s=%4.0f%%", labels[s],
                  total ? 100.0 * static_cast<double>(hist[static_cast<std::size_t>(s)]) /
                              static_cast<double>(total)
                        : 0.0);
    }
    std::printf("\n");
  }
  bench::note("paper: Starlink mostly good/very good (1 poor of 20); "
              "HughesNet peaks at 'ok' (55%); Viasat spread low");
}

void BM_census(benchmark::State& state) {
  prolific::TesterPool pool;
  stats::Rng rng(2);
  for (auto _ : state) {
    const auto out = pool.run_census(rng);
    benchmark::DoNotOptimize(out.open_verified);
  }
}
BENCHMARK(BM_census)->Unit(benchmark::kMillisecond);

void BM_pool_construction(benchmark::State& state) {
  for (auto _ : state) {
    prolific::TesterPool pool;
    benchmark::DoNotOptimize(pool.testers().size());
  }
}
BENCHMARK(BM_pool_construction)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig14)
