// Figure 13: historical evolution of SNO peering, 2021/1 -> 2023/1:
// Starlink's explosive growth, HughesNet's stagnation, Viasat's
// US-to-global expansion, and Marlink's tier-1 swap.
#include "bench/bench_common.hpp"
#include "bgp/routeviews.hpp"
#include "bgp/sno_world.hpp"

namespace {

using namespace satnet;

void print_fig13() {
  bench::header("Figure 13", "BGP peering evolution 2021 -> 2023");
  const struct {
    bgp::Asn asn;
    const char* name;
    const char* paper_note;
  } snos[] = {
      {bgp::kStarlink, "starlink", "explosive growth across the globe"},
      {bgp::kHughes, "hughesnet", "peering remained the same"},
      {bgp::kViasat, "viasat", "expanded from the US to non-US regions"},
      {bgp::kMarlink, "marlink", "US tier-1 changed Level3(3549) -> Cogent(174)"},
  };

  for (const auto& sno : snos) {
    std::printf("  %-10s", sno.name);
    for (const int year : {2021, 2022, 2023}) {
      const auto g = bgp::sno_world_graph(year);
      const auto countries = g.neighbor_countries(sno.asn);
      std::printf("  %d: degree=%-2zu countries=%-2zu", year, g.degree(sno.asn),
                  countries.size());
    }
    std::printf("\n             [paper: %s]\n", sno.paper_note);
  }

  // The Marlink swap, explicitly.
  for (const int year : {2021, 2022}) {
    const auto g = bgp::sno_world_graph(year);
    std::printf("  marlink %d neighbors:", year);
    for (const auto n : g.neighbors(bgp::kMarlink)) {
      std::printf(" AS%u(%s)", n, g.info(n).name.c_str());
    }
    std::printf("\n");
  }
}

void BM_snapshot_build(benchmark::State& state) {
  for (auto _ : state) {
    const auto g = bgp::sno_world_graph(2023);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_snapshot_build);

}  // namespace

SATNET_BENCH_MAIN(print_fig13)
