// Extension experiment: QUIC on satellite links (the paper's cited
// satcom-QUIC literature). Compares, on the same physical GEO and LEO
// links: raw TCP, TCP through the operator's PEP, and QUIC (which the
// PEP cannot split). Also measures web-object fetch times where QUIC's
// 1-RTT handshake matters most.
#include "bench/bench_common.hpp"
#include "stats/summary.hpp"
#include "transport/quic.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace satnet;
using transport::PathProfile;

PathProfile geo_link(bool pep_deployed) {
  PathProfile p;
  p.base_rtt_ms = 620;
  p.jitter_ms = 50;
  p.bottleneck_mbps = 20;
  p.buffer_bdp = 0.8;
  // Same physical satellite link; what differs is who recovers it.
  p.sat_loss = pep_deployed ? 0.018 : 0.006;
  p.spurious_rto_prob = pep_deployed ? 0.004 : 0.12;
  p.pep = pep_deployed;
  return p;
}

PathProfile leo_link() {
  PathProfile p;
  p.base_rtt_ms = 52;
  p.jitter_ms = 6;
  p.bottleneck_mbps = 100;
  p.buffer_bdp = 1.5;
  p.sat_loss = 0.00002;
  p.spurious_rto_prob = 0.0008;
  p.handoff_rate_hz = 0.08;
  p.handoff_loss_frac = 0.2;
  p.handoff_spike_ms = 70;
  return p;
}

void bulk_row(const char* label, const PathProfile& p, bool quic) {
  std::vector<double> goodput, retrans;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    transport::FlowResult r;
    if (quic) {
      transport::QuicFlow flow(p, transport::QuicOptions{}, stats::Rng(seed));
      r = flow.run_for(12000);
    } else {
      transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(seed));
      r = flow.run_for(12000);
    }
    goodput.push_back(r.goodput_mbps);
    retrans.push_back(r.retrans_fraction);
  }
  std::printf("  %-22s goodput=%6.2f Mbps  retrans=%.3f\n", label,
              stats::median(goodput), stats::median(retrans));
}

void fetch_row(const char* label, const PathProfile& p, bool quic,
               std::uint64_t bytes) {
  std::vector<double> times;
  stats::Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    times.push_back(quic ? transport::quic_fetch_time_ms(p, bytes, rng)
                         : transport::fetch_time_ms(p, bytes, 2.0, rng));
  }
  std::printf("  %-22s %8.0f ms\n", label, stats::median(times));
}

void print_quic() {
  bench::header("Extension", "QUIC vs TCP(+PEP) on satellite links");

  std::printf("  bulk transfer, GEO link (12 s):\n");
  bulk_row("TCP, no PEP", geo_link(false), false);
  bulk_row("TCP through PEP", geo_link(true), false);
  bulk_row("QUIC (PEP unusable)", geo_link(true), true);
  PathProfile clean_geo = geo_link(false);
  clean_geo.sat_loss = 0.0005;  // well-FEC'd link: timeouts dominate
  bulk_row("TCP, clean link", clean_geo, false);
  bulk_row("QUIC, clean link", clean_geo, true);
  bench::note("the satcom picture: on a lossy link both e2e transports "
              "collapse and only the PEP rescues TCP (QUIC cannot use it); "
              "on a clean link QUIC wins by avoiding TCP's spurious "
              "go-back-N timeouts");

  std::printf("\n  bulk transfer, LEO link (12 s):\n");
  bulk_row("TCP", leo_link(), false);
  bulk_row("QUIC", leo_link(), true);

  std::printf("\n  32 KB object fetch (handshake-dominated):\n");
  fetch_row("GEO TCP+TLS (2 RTT)", geo_link(true), false, 32 * 1024);
  fetch_row("GEO QUIC   (1 RTT)", geo_link(true), true, 32 * 1024);
  fetch_row("LEO TCP+TLS (2 RTT)", leo_link(), false, 32 * 1024);
  fetch_row("LEO QUIC   (1 RTT)", leo_link(), true, 32 * 1024);
  bench::note("QUIC's 1-RTT handshake saves ~620 ms per connection on GEO "
              "but only ~50 ms on LEO");
}

void BM_quic_flow_geo(benchmark::State& state) {
  const PathProfile p = geo_link(true);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    transport::QuicFlow flow(p, transport::QuicOptions{}, stats::Rng(seed++));
    benchmark::DoNotOptimize(flow.run_for(10000).goodput_mbps);
  }
}
BENCHMARK(BM_quic_flow_geo)->Unit(benchmark::kMicrosecond);

}  // namespace

SATNET_BENCH_MAIN(print_quic)
