// Tentpole bench: the campaign-scoped epoch timeline (orbit/timeline,
// io/timeline_io). Times the M-Lab campaign in all four modes —
// on-demand (--no-timeline oracle), cold build (precompute included),
// warm in-memory replay, and warm mmap replay from a saved file — and
// asserts every mode produces a byte-identical dataset.
//
// Two further workloads isolate what the timeline actually replaces:
//  * the campaign's own access schedule (planned_access_queries — the
//    exact (terminal, t) set the shards will ask for), replayed from the
//    warm snapshot vs derived on demand through the PR 5 index. This is
//    the ≥2x acceptance workload: the campaign end to end is
//    transport-simulation-bound (the TCP round loop dominates; see the
//    Amdahl row printed below), so the honest place to demand 2x is the
//    access layer the timeline removes from the hot path.
//  * the handoff census rehomed from the PR 5 access-cache ablation:
//    epoch-dense serving-satellite selection, the timeline's best case.
//
// Writes BENCH_timeline.json (cwd) with every timing, the speedups, the
// replay counters, and the saved file's size for CI trend tracking. The
// bench drives the timeline itself, so --no-timeline / --timeline-in /
// --timeline-out have no effect on this binary; the timeline file it
// saves (bench_timeline.tl, cwd) is a real warm-start artifact — CI's
// repeat job feeds it back through satnetctl --timeline-in.
#include "bench/bench_common.hpp"

#include <bit>
#include <cstdint>

#include "orbit/access.hpp"

namespace {

using namespace satnet;

constexpr const char* kTimelineFile = "bench_timeline.tl";

mlab::CampaignConfig campaign_config() {
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.002;
  cfg.min_tests_per_sno = 30;
  cfg.threads = bench::threads();
  cfg.retry = runtime::degrade_under_faults();
  return cfg;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// FNV-1a over raw sample bits — byte-level fingerprint of a workload.
struct Fingerprint {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
};

std::uint64_t mix_sample(Fingerprint& fp, const orbit::AccessSample& s) {
  fp.mix(static_cast<std::uint64_t>(s.reachable));
  if (s.reachable) {
    fp.mix(s.one_way_ms);
    fp.mix(static_cast<std::uint64_t>(s.handoff));
    fp.mix(static_cast<std::uint64_t>(s.gateway_index));
    fp.mix(static_cast<std::uint64_t>(s.pop_index));
  }
  return fp.h;
}

// ----------------------------------------------------------------- mlab

struct CampaignRound {
  double wall_ms = 0;
  std::uint64_t hash = 0;
  std::size_t records = 0;
};

/// One campaign run over a fresh world, so per-network index memos and
/// slab caches start cold and every mode pays its own honest cost.
CampaignRound run_campaign_round() {
  const synth::World world;
  const mlab::CampaignConfig cfg = campaign_config();
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  const auto t0 = std::chrono::steady_clock::now();
  const mlab::NdtDataset ds = mlab::run_campaign(world, cfg);
  CampaignRound round;
  round.wall_ms = wall_ms_since(t0);
  round.hash = ds.hash();
  round.records = ds.size();
  return round;
}

/// The campaign's access schedule, executed directly against the access
/// layer (sample_with_handoff — what sample_path calls per test).
struct ScheduleRound {
  double wall_ms = 0;
  std::uint64_t hash = 0;
  std::size_t queries = 0;
};

ScheduleRound run_schedule_round(const synth::World& world) {
  const auto plan = mlab::planned_access_queries(world, campaign_config());
  Fingerprint fp;
  ScheduleRound round;
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [net, queries] : plan) {
    for (const auto& q : queries) {
      mix_sample(fp, net->sample_with_handoff(q.terminal, q.t_sec));
      ++round.queries;
    }
  }
  round.wall_ms = wall_ms_since(t0);
  round.hash = fp.h;
  return round;
}

// --------------------------------------------------------------- census

/// Terminal fleet spanning the Starlink service area (the PR 5 census
/// fleet): four terminals per metro so ground cells are shared the way
/// a real campaign shares them.
const geo::GeoPoint kFleet[] = {
    {47.61, -122.33, 0}, {61.22, -149.90, 0}, {34.05, -118.24, 0},
    {40.71, -74.01, 0},  {29.76, -95.37, 0},  {45.50, -73.57, 0},
    {19.43, -99.13, 0},  {51.51, -0.13, 0},   {48.86, 2.35, 0},
    {52.52, 13.40, 0},   {-33.87, 151.21, 0}, {-36.85, 174.76, 0},
    {-23.55, -46.63, 0}, {-33.45, -70.67, 0}, {35.68, 139.69, 0},
    {14.60, 120.98, 0},
};

std::vector<orbit::TimelineQuery> census_queries() {
  std::vector<orbit::TimelineQuery> queries;
  for (const auto& city : kFleet) {
    for (int j = 0; j < 4; ++j) {
      const geo::GeoPoint user{city.lat_deg + 0.05 * j, city.lon_deg + 0.07 * j, 0};
      for (int e = 1; e <= 240; ++e) queries.push_back({user, 15.0 * e});
    }
  }
  return queries;
}

struct CensusRound {
  double wall_ms = 0;
  std::uint64_t hash = 0;
};

CensusRound run_census_round(const orbit::AccessNetwork& net) {
  Fingerprint fp;
  CensusRound round;
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& q : census_queries()) {
    mix_sample(fp, net.sample_with_handoff(q.terminal, q.t_sec));
  }
  round.wall_ms = wall_ms_since(t0);
  round.hash = fp.h;
  return round;
}

orbit::AccessNetwork fresh_starlink() {
  return orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
}

// ----------------------------------------------------------------- main

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

void die_on_divergence(const char* label, std::uint64_t expected, std::uint64_t got) {
  if (expected == got) return;
  std::fprintf(stderr,
               "FATAL: %s output diverges under timeline replay "
               "(expected %016llx, got %016llx) — the timeline broke its "
               "byte-identity contract\n",
               label, static_cast<unsigned long long>(expected),
               static_cast<unsigned long long>(got));
  std::exit(1);
}

void print_timeline_bench() {
  bench::header("Tentpole: epoch timeline",
                "precompute once, replay everywhere, persist for warm starts");

  // --- mlab campaign, four modes -----------------------------------
  orbit::EpochTimeline::clear_installed();
  orbit::set_timeline_enabled(false);
  const CampaignRound no_tl = run_campaign_round();

  orbit::set_timeline_enabled(true);
  const CampaignRound cold = run_campaign_round();  // build included
  const std::string save_err = io::save_timelines(kTimelineFile, "bench_timeline");
  if (!save_err.empty()) std::fprintf(stderr, "warning: %s\n", save_err.c_str());

  const CampaignRound warm = run_campaign_round();  // snapshot installed

  orbit::EpochTimeline::clear_installed();
  io::TimelineFileInfo file_info;
  const std::string load_err = io::load_timelines(kTimelineFile, &file_info);
  if (!load_err.empty()) {
    std::fprintf(stderr, "FATAL: cannot reload the timeline this bench just "
                         "saved: %s\n", load_err.c_str());
    std::exit(1);
  }
  const CampaignRound warm_mmap = run_campaign_round();

  die_on_divergence("mlab campaign (cold)", no_tl.hash, cold.hash);
  die_on_divergence("mlab campaign (warm)", no_tl.hash, warm.hash);
  die_on_divergence("mlab campaign (warm mmap)", no_tl.hash, warm_mmap.hash);

  const double e2e_speedup = warm_mmap.wall_ms > 0 ? no_tl.wall_ms / warm_mmap.wall_ms : 0;
  std::printf("  %-34s %10s %9s\n", "mlab campaign (end to end)", "wall ms", "speedup");
  std::printf("  %-34s %10.0f %8.2fx\n", "  on-demand (--no-timeline)", no_tl.wall_ms, 1.0);
  std::printf("  %-34s %10.0f %8.2fx\n", "  cold build (precompute incl.)", cold.wall_ms,
              cold.wall_ms > 0 ? no_tl.wall_ms / cold.wall_ms : 0);
  std::printf("  %-34s %10.0f %8.2fx\n", "  warm replay (in memory)", warm.wall_ms,
              warm.wall_ms > 0 ? no_tl.wall_ms / warm.wall_ms : 0);
  std::printf("  %-34s %10.0f %8.2fx\n", "  warm replay (mmap file)", warm_mmap.wall_ms,
              e2e_speedup);
  bench::note("end to end is transport-simulation-bound (the TCP round loop");
  bench::note("dominates), so the Amdahl ceiling caps this row well under the");
  bench::note("access-layer speedups below — same honest split as BENCH_access_cache");

  // --- the campaign's access schedule, replay vs on-demand ---------
  // Fresh worlds per mode: the on-demand round pays the index slab
  // builds a real campaign pays; the warm round replays the snapshot
  // the campaign rounds above installed (same network identity).
  orbit::set_timeline_enabled(false);
  const synth::World ondemand_world;
  const ScheduleRound sched_ondemand = run_schedule_round(ondemand_world);

  orbit::set_timeline_enabled(true);
  const std::uint64_t hits0 = counter_value("timeline.replay.hit");
  const synth::World warm_world;
  const ScheduleRound sched_warm = run_schedule_round(warm_world);
  const std::uint64_t sched_hits = counter_value("timeline.replay.hit") - hits0;

  die_on_divergence("mlab access schedule", sched_ondemand.hash, sched_warm.hash);
  const double sched_speedup =
      sched_warm.wall_ms > 0 ? sched_ondemand.wall_ms / sched_warm.wall_ms : 0;
  std::printf("  %-34s %10s %9s\n", "mlab access schedule", "wall ms", "speedup");
  std::printf("  %-34s %10.0f %8.2fx   (%zu queries)\n", "  on-demand (index)",
              sched_ondemand.wall_ms, 1.0, sched_ondemand.queries);
  std::printf("  %-34s %10.0f %8.2fx   (%llu replay hits)\n", "  warm replay",
              sched_warm.wall_ms, sched_speedup,
              static_cast<unsigned long long>(sched_hits));

  // --- handoff census, replay vs on-demand -------------------------
  orbit::set_timeline_enabled(false);
  const orbit::AccessNetwork census_ondemand_net = fresh_starlink();
  const CensusRound census_ondemand = run_census_round(census_ondemand_net);

  orbit::set_timeline_enabled(true);
  const orbit::AccessNetwork census_warm_net = fresh_starlink();
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  const auto build_t0 = std::chrono::steady_clock::now();
  orbit::EpochTimeline::ensure(census_warm_net, census_queries(), bench::threads());
  const double census_build_ms = wall_ms_since(build_t0);
  const CensusRound census_warm = run_census_round(census_warm_net);

  die_on_divergence("handoff census", census_ondemand.hash, census_warm.hash);
  const double census_speedup =
      census_warm.wall_ms > 0 ? census_ondemand.wall_ms / census_warm.wall_ms : 0;
  std::printf("  %-34s %10s %9s\n", "handoff census", "wall ms", "speedup");
  std::printf("  %-34s %10.0f %8.2fx\n", "  on-demand (index)", census_ondemand.wall_ms,
              1.0);
  std::printf("  %-34s %10.0f %8.2fx   (build %.0f ms amortized out)\n",
              "  warm replay", census_warm.wall_ms, census_speedup, census_build_ms);

  const bool target_met = sched_speedup >= 2.0;
  std::printf("  outputs byte-identical across all modes: yes (asserted)\n");
  std::printf("  warm-replay speedup target >= 2x (campaign access schedule): %s\n",
              target_met ? "met" : "NOT MET");
  std::printf("  timeline file: %zu networks, %zu bytes (%s)\n", file_info.networks,
              file_info.bytes, kTimelineFile);

  std::FILE* out = std::fopen("BENCH_timeline.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_timeline.json\n");
    return;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"bench_timeline\",\n"
      "  \"mlab_campaign\": {\"no_timeline_ms\": %.1f, \"cold_ms\": %.1f, "
      "\"warm_ms\": %.1f, \"warm_mmap_ms\": %.1f, \"warm_speedup\": %.2f, "
      "\"records\": %zu},\n"
      "  \"mlab_access_schedule\": {\"on_demand_ms\": %.1f, \"warm_ms\": %.1f, "
      "\"warm_replay_speedup\": %.2f, \"queries\": %zu, \"replay_hits\": %llu},\n"
      "  \"handoff_census\": {\"on_demand_ms\": %.1f, \"warm_ms\": %.1f, "
      "\"build_ms\": %.1f, \"speedup\": %.2f},\n"
      "  \"timeline_file\": {\"path\": \"%s\", \"networks\": %zu, \"bytes\": %zu},\n"
      "  \"outputs_identical\": true,\n"
      "  \"warm_speedup_target_2x_met\": %s\n"
      "}\n",
      no_tl.wall_ms, cold.wall_ms, warm.wall_ms, warm_mmap.wall_ms, e2e_speedup,
      no_tl.records, sched_ondemand.wall_ms, sched_warm.wall_ms, sched_speedup,
      sched_ondemand.queries, static_cast<unsigned long long>(sched_hits),
      census_ondemand.wall_ms, census_warm.wall_ms, census_build_ms, census_speedup,
      kTimelineFile, file_info.networks, file_info.bytes,
      target_met ? "true" : "false");
  std::fclose(out);
  bench::note("wrote BENCH_timeline.json");
}

// Microbenches: one covered access sample, replayed vs derived.

const orbit::AccessNetwork& kernel_net() {
  static const orbit::AccessNetwork net = [] {
    orbit::AccessNetwork n = fresh_starlink();
    orbit::set_timeline_enabled(true);
    orbit::EpochTimeline::ensure(n, census_queries(), bench::threads());
    return n;
  }();
  return net;
}

void BM_sample_replay(benchmark::State& state) {
  const orbit::AccessNetwork& net = kernel_net();
  orbit::set_timeline_enabled(true);
  int e = 0;
  for (auto _ : state) {
    e = e % 240 + 1;
    benchmark::DoNotOptimize(net.sample(kFleet[0], 15.0 * e));
  }
}
BENCHMARK(BM_sample_replay)->Unit(benchmark::kMicrosecond);

// The index's best case: every epoch already memoized for this user.
// Faster than the timeline's binary search per lookup, but the memo is
// per-network warm state a fresh campaign pays to fill — the schedule
// rows above price that honestly.
void BM_sample_index_hot(benchmark::State& state) {
  const orbit::AccessNetwork& net = kernel_net();
  orbit::set_timeline_enabled(false);
  int e = 0;
  for (auto _ : state) {
    e = e % 240 + 1;
    benchmark::DoNotOptimize(net.sample(kFleet[0], 15.0 * e));
  }
  orbit::set_timeline_enabled(true);
}
BENCHMARK(BM_sample_index_hot)->Unit(benchmark::kMicrosecond);

void BM_sample_sweep(benchmark::State& state) {
  const orbit::AccessNetwork& net = kernel_net();
  orbit::set_timeline_enabled(false);
  orbit::set_access_cache_enabled(false);
  int e = 0;
  for (auto _ : state) {
    e = e % 240 + 1;
    benchmark::DoNotOptimize(net.sample(kFleet[0], 15.0 * e));
  }
  orbit::set_access_cache_enabled(true);
  orbit::set_timeline_enabled(true);
}
BENCHMARK(BM_sample_sweep)->Unit(benchmark::kMicrosecond);

}  // namespace

SATNET_BENCH_MAIN(print_timeline_bench)
