// Extension experiment (the paper's §7 future work): deep TCP trace
// analysis. For NDT flows of each orbit/PEP class, classify the
// retransmission *mechanism* — clean, fast-recovery loss-driven, or
// timeout-driven (RTO + go-back-N) — and report episode statistics. This
// explains Fig 4c's fractions rather than just measuring them.
#include <map>

#include "bench/bench_common.hpp"
#include "snoid/tcptrace.hpp"
#include "stats/summary.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace satnet;

void print_tcptrace() {
  bench::header("Extension", "TCP retransmission mechanism per service class");

  const synth::World& world = bench::world();
  struct Group {
    int clean = 0, loss = 0, timeout = 0;
    std::vector<double> episode_bytes;
    std::vector<double> stall_ms;
  };
  std::map<std::string, Group> groups;
  stats::Rng rng(21);

  std::map<std::string, int> quota;
  for (const auto& sub : world.subscribers()) {
    if (sub.tech != synth::AccessTech::satellite) continue;
    const auto& spec = world.specs()[sub.spec_index];
    std::string key = std::string(orbit::to_string(sub.orbit));
    if (sub.orbit == orbit::OrbitClass::geo) {
      key += spec.pep ? " (PEP)" : " (others)";
    }
    if (++quota[key] > 60) continue;

    const auto path = world.sample_path(sub, 7200.0, rng);
    if (!path.ok) continue;
    transport::TcpFlow flow(path.download, transport::TcpOptions{},
                            rng.fork(sub.ip.value()));
    const auto result = flow.run_for(10000);
    const auto a = snoid::analyze_trace(result.snapshots);

    Group& g = groups[key];
    switch (a.profile) {
      case snoid::RetransProfile::clean: ++g.clean; break;
      case snoid::RetransProfile::loss_driven: ++g.loss; break;
      case snoid::RetransProfile::timeout_driven: ++g.timeout; break;
    }
    for (const auto& e : a.episodes) {
      g.episode_bytes.push_back(static_cast<double>(e.bytes));
    }
    g.stall_ms.push_back(a.longest_ack_stall_ms);
  }

  std::printf("  %-14s %6s %6s %8s %16s %14s\n", "class", "clean", "loss",
              "timeout", "ep. bytes (med)", "stall ms (med)");
  for (const auto& [key, g] : groups) {
    std::printf("  %-14s %6d %6d %8d %16.0f %14.0f\n", key.c_str(), g.clean,
                g.loss, g.timeout,
                g.episode_bytes.empty() ? 0.0 : stats::median(g.episode_bytes),
                g.stall_ms.empty() ? 0.0 : stats::median(g.stall_ms));
  }
  bench::note("expected: GEO(others) timeout-driven with long stalls and "
              "large go-back-N episodes; GEO(PEP) mostly clean; LEO mixed — "
              "handoff bursts recover via fast retransmit once the window is "
              "large, but an early-flow handoff still forces an RTO. This is "
              "the mechanism behind Fig 4c's fractions.");
}

void BM_trace_analysis(benchmark::State& state) {
  transport::PathProfile p;
  p.base_rtt_ms = 650;
  p.bottleneck_mbps = 8;
  p.spurious_rto_prob = 0.12;
  transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(1));
  const auto result = flow.run_for(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snoid::analyze_trace(result.snapshots).episodes.size());
  }
  state.counters["snapshots"] = static_cast<double>(result.snapshots.size());
}
BENCHMARK(BM_trace_analysis);

}  // namespace

SATNET_BENCH_MAIN(print_tcptrace)
