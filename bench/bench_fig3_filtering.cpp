// Figure 3: the prefix-filtering methodology —
//  (a) strict /24 filtering outcome per SNO,
//  (b) Viasat per-prefix latency distributions incl. the mixed
//      hybrid-backup prefix and the outlier-discarded prefix,
//  (c) access-latency boxplots per identified SNO.
#include "bench/bench_common.hpp"
#include "snoid/analysis.hpp"

namespace {

using namespace satnet;

void print_fig3() {
  const auto& ds = bench::mlab_dataset();
  const auto& result = bench::pipeline();

  bench::header("Figure 3a", "Strict prefix filtering: retained /24s per SNO");
  std::size_t covered = 0, retained_prefixes = 0;
  for (const auto& op : result.operators) {
    std::size_t kept = 0;
    for (const auto& p : op.prefixes) {
      if (p.retained_strict) ++kept;
    }
    retained_prefixes += kept;
    if (op.covered_by_strict) {
      ++covered;
      std::printf("  %-12s retained %zu of %zu prefixes (min latency %.1f ms)\n",
                  op.name.c_str(), kept, op.prefixes.size(), op.relax_threshold_ms);
    }
  }
  std::printf("  covered SNOs: %zu, retained /24s: %zu (paper: 6 SNOs, 25 /24s)\n",
              covered, retained_prefixes);

  bench::header("Figure 3b", "Viasat per-prefix latency distributions");
  for (const auto& op : result.operators) {
    if (op.name != "viasat") continue;
    for (const auto& p : op.prefixes) {
      std::printf("  %-18s n=%-5zu min=%7.1f med=%7.1f %s%s\n",
                  p.prefix.to_string().c_str(), p.n_tests, p.min_latency_ms,
                  p.median_latency_ms, p.retained_strict ? "RETAINED" : "dropped: ",
                  p.retained_strict ? "" : p.reason);
    }
    std::printf("  relaxation threshold: %.1f ms (paper: 548.9 ms for Viasat)\n",
                op.relax_threshold_ms);
  }

  bench::header("Figure 3c", "Access latency boxplots per SNO (sorted by median)");
  for (const auto& [name, box] : snoid::latency_boxplots(ds, result)) {
    std::printf("  %-12s %s\n", name.c_str(), stats::to_string(box).c_str());
  }
  bench::note("paper: LEO 56-154 ms; MEO 279 ms; GEO median 673.5 ms "
              "(best SSI 620.4, worst KVH 835.2)");
}

void BM_prefix_grouping(benchmark::State& state) {
  const auto& ds = bench::mlab_dataset();
  const auto all = ds.all();
  for (auto _ : state) {
    const auto groups = ds.by_prefix(all);
    benchmark::DoNotOptimize(groups.size());
  }
}
BENCHMARK(BM_prefix_grouping)->Unit(benchmark::kMillisecond);

void BM_boxplots(benchmark::State& state) {
  const auto& ds = bench::mlab_dataset();
  const auto& result = bench::pipeline();
  for (auto _ : state) {
    const auto boxes = snoid::latency_boxplots(ds, result);
    benchmark::DoNotOptimize(boxes.size());
  }
}
BENCHMARK(BM_boxplots)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig3)
