// Figure 8: Starlink in the United States —
//  (a) probe -> PoP RTT per state, grouped by region;
//  (b) RTT time series for the probes with PoP migrations.
#include <map>

#include "bench/bench_common.hpp"
#include "geo/places.hpp"
#include "snoid/pop_analysis.hpp"
#include "stats/timeseries.hpp"

namespace {

using namespace satnet;

void print_fig8a() {
  bench::header("Figure 8a", "RTT between US probes and Starlink PoPs, by state");
  const auto rows = snoid::pop_rtt_by_us_state(bench::atlas_dataset());
  // Regroup by the paper's regions.
  std::map<std::string, std::vector<const snoid::RttSummary*>> by_region;
  for (const auto& r : rows) {
    const auto state = geo::find_us_state(r.key);
    by_region[state ? std::string(state->region) : "?"].push_back(&r);
  }
  for (const auto& [region, states] : by_region) {
    std::printf("  [%s]\n", region.c_str());
    for (const auto* r : states) {
      std::printf("    %-3s %s\n", r->key.c_str(), stats::to_string(r->rtt).c_str());
    }
  }
  bench::note("paper: best states ~45 ms (OR WA VA NY PA); AZ up to 55; "
              "Alaska ~80 (75th pct 120)");
}

void print_fig8b() {
  bench::header("Figure 8b", "RTT over time for probes with PoP changes");
  const auto& ds = bench::atlas_dataset();
  const auto migrations = snoid::detect_pop_migrations(ds);
  for (const auto& m : migrations) {
    std::printf("  probe %d (%s) day %.0f: %s -> %s, median RTT %.1f -> %.1f ms\n",
                m.probe_id, m.country.c_str(), m.day, m.from_pop.c_str(),
                m.to_pop.c_str(), m.rtt_before_ms, m.rtt_after_ms);
  }
  bench::note("paper: NZ -20 ms (2022-07-12); NL -10 ms; NV 2x worse on "
              "LA->Denver, reverted ~1 month later");

  // Monthly series for the NZ probe (the clearest step).
  std::map<int, std::string> country_of;
  for (const auto& p : ds.probes) country_of[p.id] = p.country;
  std::vector<stats::Observation> nz;
  for (const auto& t : ds.traceroutes) {
    if (t.via_cgnat && country_of[t.probe_id] == "NZ") {
      nz.push_back({t.t_sec, t.cgnat_rtt_ms});
    }
  }
  std::sort(nz.begin(), nz.end(),
            [](const auto& a, const auto& b) { return a.t_sec < b.t_sec; });
  std::printf("\n  NZ probe monthly median PoP RTT:\n  ");
  for (const auto& b : stats::bucketize(nz, 30 * 86400.0)) {
    std::printf(" m%02.0f=%.0fms", b.t_start_sec / (30 * 86400.0), b.median);
  }
  std::printf("\n");
}

void print_fig8() {
  print_fig8a();
  print_fig8b();
}

void BM_migration_detection(benchmark::State& state) {
  const auto& ds = bench::atlas_dataset();
  for (auto _ : state) {
    const auto m = snoid::detect_pop_migrations(ds);
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_migration_detection)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig8)
