// Figure 10: Web browsing —
//  (a) jquery(.min).js download time via five CDNs per SNO,
//  (b) Akamai demo page load time, HTTP/1.1 vs HTTP/2,
//  (c) DNS lookup time CDFs.
#include <map>

#include "bench/bench_common.hpp"
#include "prolific/addon.hpp"
#include "stats/summary.hpp"
#include "prolific/census.hpp"
#include "stats/cdf.hpp"

namespace {

using namespace satnet;

const std::vector<prolific::AddonRunReport>& reports() {
  static const auto r = [] {
    prolific::TesterPool pool;
    prolific::StudyConfig cfg;
    cfg.runs_per_tester = 6;  // more runs for tighter CDN medians
    return prolific::run_addon_study(bench::world(), pool, cfg);
  }();
  return r;
}

void print_fig10() {
  bench::header("Figure 10a", "jquery.min.js download time per CDN (median ms)");
  std::map<std::string, std::map<std::string, std::vector<double>>> cdn_ms;
  std::map<std::string, std::map<std::string, std::vector<double>>> cdn_reg_ms;
  for (const auto& r : reports()) {
    for (const auto& c : r.cdn) {
      cdn_ms[r.sno][c.cdn].push_back(c.minified_ms);
      cdn_reg_ms[r.sno][c.cdn].push_back(c.regular_ms);
    }
  }
  std::printf("  %-10s", "SNO");
  for (const auto& p : http::cdn_providers()) {
    std::printf(" %11s", std::string(p.name).c_str());
  }
  std::printf("\n");
  for (const auto& [sno, cdns] : cdn_ms) {
    std::printf("  %-10s", sno.c_str());
    for (const auto& p : http::cdn_providers()) {
      std::printf(" %11.0f", stats::median(cdns.at(std::string(p.name))));
    }
    std::printf("\n");
  }
  bench::note("paper (min.js, Fastly): 127 ms Starlink / 950 HughesNet / 1036 Viasat;"
              " jsDelivr adds ~700 ms on HughesNet");
  std::printf("  regular jquery.js via fastly (median ms): ");
  for (const auto& [sno, cdns] : cdn_reg_ms) {
    std::printf(" %s=%.0f", sno.c_str(), stats::median(cdns.at("fastly")));
  }
  std::printf("\n  [paper: 190 Starlink / 1450 Viasat / 1620 HughesNet]\n");

  bench::header("Figure 10b", "Akamai demo page load time: H1 vs H2 (median s)");
  std::map<std::string, std::vector<double>> h1, h2;
  std::size_t timeouts = 0;
  for (const auto& r : reports()) {
    if (r.akamai.h1_plt_ms <= 0) continue;
    h1[r.sno].push_back(r.akamai.h1_plt_ms / 1e3);
    h2[r.sno].push_back(r.akamai.h2_plt_ms / 1e3);
    if (r.akamai.h1_timed_out) ++timeouts;
  }
  for (const auto& [sno, values] : h1) {
    std::printf("  %-10s H1=%6.1f s  H2=%6.1f s\n", sno.c_str(),
                stats::median(values), stats::median(h2[sno]));
  }
  std::printf("  H1 watchdog timeouts: %zu (paper: one HughesNet run at 62.6 s)\n",
              timeouts);
  bench::note("paper: H2 on GEO becomes comparable to H1 on Starlink");

  bench::header("Figure 10c", "DNS lookup time CDFs (uncached)");
  std::map<std::string, std::vector<double>> dns;
  for (const auto& r : reports()) {
    dns[r.sno].insert(dns[r.sno].end(), r.dns_lookup_ms.begin(), r.dns_lookup_ms.end());
  }
  for (const auto& [sno, values] : dns) {
    const stats::Cdf cdf(values);
    std::printf("  %-10s median=%6.0f ms  %s\n", sno.c_str(), cdf.quantile(0.5),
                stats::describe_cdf(cdf).c_str());
  }
  bench::note("paper medians: 130 Starlink / 755 HughesNet / 985 Viasat");
}

void BM_h1_page_load_geo(benchmark::State& state) {
  transport::PathProfile p;
  p.base_rtt_ms = 620;
  p.bottleneck_mbps = 20;
  p.pep = true;
  const http::WebPage page = http::akamai_demo_page();
  stats::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        http::load_page(page, http::HttpVersion::h1, p, rng).plt_ms);
  }
}
BENCHMARK(BM_h1_page_load_geo)->Unit(benchmark::kMillisecond);

void BM_h2_page_load_geo(benchmark::State& state) {
  transport::PathProfile p;
  p.base_rtt_ms = 620;
  p.bottleneck_mbps = 20;
  p.pep = true;
  const http::WebPage page = http::akamai_demo_page();
  stats::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        http::load_page(page, http::HttpVersion::h2, p, rng).plt_ms);
  }
}
BENCHMARK(BM_h2_page_load_geo)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_fig10)
