// Table 3 (Appendix B): the curated ASN-to-SNO map produced by the
// mapping stage (ASdb category query + HE BGP search + website curation).
#include <map>

#include "bench/bench_common.hpp"
#include "synth/asdb.hpp"

namespace {

using namespace satnet;

void print_table3() {
  bench::header("Table 3", "Curated ASN-to-SNO mapping (ASdb + HE + manual curation)");

  // Reproduce the mapping stage exactly as the pipeline runs it.
  std::set<bgp::Asn> candidates;
  for (const auto& row : synth::asdb_satellite_category()) candidates.insert(row.asn);
  const std::size_t from_asdb = candidates.size();
  for (const char* name : {"starlink", "viasat", "hughes", "oneweb", "ses",
                           "eutelsat", "intelsat", "telesat"}) {
    for (const auto asn : synth::he_bgp_search(name)) candidates.insert(asn);
  }

  std::map<std::string, std::vector<bgp::Asn>> curated;
  std::size_t dropped = 0;
  for (const auto asn : candidates) {
    const auto info = synth::ipinfo_lookup(asn);
    if (!info) continue;
    if (info->kind != synth::EntityKind::sno) {
      ++dropped;
      continue;
    }
    curated[info->organization].push_back(asn);
  }

  std::printf("  candidate ASNs: %zu from ASdb + %zu via HE search\n", from_asdb,
              candidates.size() - from_asdb);
  std::printf("  dropped by curation (cable TV / teleport / navigation / ...): %zu\n",
              dropped);
  std::printf("  curated operators: %zu (paper: 41 SNOs over 67 ASNs)\n\n",
              curated.size());
  std::printf("  %-14s ASNs\n", "SNO");
  for (const auto& [name, asns] : curated) {
    std::printf("  %-14s", name.c_str());
    for (const auto a : asns) std::printf(" %u", a);
    std::printf("\n");
  }
}

void BM_mapping_stage(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = synth::asdb_satellite_category();
    auto extra = synth::he_bgp_search("starlink");
    benchmark::DoNotOptimize(rows.size() + extra.size());
  }
}
BENCHMARK(BM_mapping_stage);

}  // namespace

SATNET_BENCH_MAIN(print_table3)
