// Ablation: PoP selection policy. The paper's §5 finding is that PoP
// assignment dominates Starlink latency (Manila-via-Tokyo, the NZ
// migration). This bench compares the scripted historical policy against
// a hypothetical always-nearest policy and a single-PoP-per-continent
// policy, for the RIPE probe locations.
#include <memory>

#include "bench/bench_common.hpp"
#include "ripe/probes.hpp"

namespace {

using namespace satnet;

orbit::AccessNetwork nearest_only_network() {
  auto net = orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
  orbit::AccessConfig cfg = net.config();
  cfg.overrides.clear();  // pure nearest-PoP assignment
  return orbit::AccessNetwork(std::move(cfg),
                              std::make_shared<orbit::Constellation>(
                                  orbit::starlink_shells()));
}

orbit::AccessNetwork sparse_pop_network() {
  // One PoP per continent: what a young deployment looks like.
  auto full = orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
  orbit::AccessConfig cfg = full.config();
  cfg.overrides.clear();
  std::vector<orbit::Pop> keep;
  std::vector<std::size_t> kept_idx;
  for (std::size_t i = 0; i < cfg.pops.size(); ++i) {
    const auto& p = cfg.pops[i];
    if (p.city == "seattle" || p.city == "frankfurt" || p.city == "sydney" ||
        p.city == "tokyo" || p.city == "santiago") {
      kept_idx.push_back(i);
      keep.push_back(p);
    }
  }
  // Remap gateway backhaul hints onto the surviving PoPs.
  for (auto& gw : cfg.gateways) {
    std::size_t best = 0;
    double best_km = 1e18;
    for (std::size_t k = 0; k < keep.size(); ++k) {
      const double km = geo::surface_distance_km(gw.location, keep[k].location);
      if (km < best_km) {
        best_km = km;
        best = k;
      }
    }
    gw.pop_index = best;
  }
  cfg.pops = std::move(keep);
  return orbit::AccessNetwork(std::move(cfg),
                              std::make_shared<orbit::Constellation>(
                                  orbit::starlink_shells()));
}

void print_ablation() {
  bench::header("Ablation", "PoP selection policy vs probe->PoP RTT");
  const auto historical = orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
  const auto nearest = nearest_only_network();
  const auto sparse = sparse_pop_network();

  std::printf("  %-14s %10s %10s %10s\n", "probe", "historical", "nearest",
              "sparse-PoPs");
  const struct {
    const char* label;
    geo::GeoPoint loc;
  } probes[] = {
      {"Seattle US", {47.6, -122.3, 0}},   {"Anchorage US", {61.2, -149.9, 0}},
      {"Amsterdam NL", {52.4, 4.9, 0}},    {"Auckland NZ", {-36.9, 174.8, 0}},
      {"Manila PH", {14.6, 121.0, 0}},     {"Santiago CL", {-33.5, -70.7, 0}},
      {"Madrid ES", {40.4, -3.7, 0}},
  };
  constexpr double kProbeDay = 300 * 86400.0;  // after all migrations
  for (const auto& probe : probes) {
    double rtts[3] = {0, 0, 0};
    const orbit::AccessNetwork* nets[3] = {&historical, &nearest, &sparse};
    for (int k = 0; k < 3; ++k) {
      double sum = 0;
      int n = 0;
      for (int i = 0; i < 20; ++i) {
        const auto s = nets[k]->sample(probe.loc, kProbeDay + i * 977.0);
        if (!s.reachable) continue;
        sum += 2.0 * s.one_way_ms;
        ++n;
      }
      rtts[k] = n ? sum / n : -1;
    }
    std::printf("  %-14s %9.1f ms %8.1f ms %8.1f ms\n", probe.label, rtts[0],
                rtts[1], rtts[2]);
  }
  bench::note("historical = the paper's scripted assignments. They mostly "
              "coincide with nearest-PoP: the big anomalies (Alaska, Manila) "
              "come from *absent local PoPs*, not misassignment. The sparse "
              "column shows what a young footprint costs (Auckland loses its "
              "PoP and pays the Sydney detour again).");
}

void BM_access_sample(benchmark::State& state) {
  const auto net = orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
  const geo::GeoPoint user{47.6, -122.3, 0};
  double t = 0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(net.sample(user, t).one_way_ms);
  }
}
BENCHMARK(BM_access_sample)->Unit(benchmark::kMicrosecond);

}  // namespace

SATNET_BENCH_MAIN(print_ablation)
