// Ablation: the identification pipeline's design choices.
//  (1) strict-only vs relaxed filtering: retained volume, operators
//      identified, precision/recall against the ground truth;
//  (2) sensitivity to the strict GEO threshold (the paper's 500 ms);
//  (3) sensitivity to the minimum-tests-per-prefix requirement.
#include "bench/bench_common.hpp"
#include "snoid/analysis.hpp"
#include "snoid/pipeline.hpp"

namespace {

using namespace satnet;

struct Score {
  std::size_t identified = 0;
  std::size_t retained = 0;
  std::size_t true_sat = 0;
  std::size_t truth_total = 0;
};

Score score(const snoid::PipelineResult& result) {
  Score s;
  s.identified = result.identified_operators;
  for (const auto& op : result.operators) {
    s.retained += op.retained.size();
    s.true_sat += op.retained_truly_satellite;
    s.truth_total += op.total_truly_satellite;
  }
  return s;
}

void print_row(const char* label, const Score& s) {
  const double precision =
      s.retained ? static_cast<double>(s.true_sat) / static_cast<double>(s.retained) : 0;
  const double recall =
      s.truth_total ? static_cast<double>(s.true_sat) / static_cast<double>(s.truth_total)
                    : 0;
  std::printf("  %-28s identified=%-3zu retained=%-7zu precision=%.3f recall=%.3f\n",
              label, s.identified, s.retained, precision, recall);
}

/// Strict-only variant: disable relaxation by keeping only tests inside
/// strict prefixes (emulated by raising the fallback so nothing passes
/// and measuring strict-prefix tests directly).
Score strict_only_score(const mlab::NdtDataset& ds, const snoid::PipelineResult& result) {
  Score s;
  std::map<std::string, std::size_t> truth_totals;
  for (const auto& rec : ds.records()) {
    if (rec.truth_satellite) ++truth_totals[rec.truth_operator];
  }
  for (const auto& op : result.operators) {
    s.truth_total += truth_totals.count(op.name) ? truth_totals[op.name] : 0;
    if (op.declared_orbit != orbit::OrbitClass::geo && !op.multi_orbit) {
      // LEO/MEO identification is ASN-level in both variants.
      s.retained += op.retained.size();
      s.true_sat += op.retained_truly_satellite;
      if (op.identified()) ++s.identified;
      continue;
    }
    std::set<net::Prefix24> strict;
    for (const auto& p : op.prefixes) {
      if (p.retained_strict) strict.insert(p.prefix);
    }
    if (strict.empty()) continue;
    ++s.identified;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const auto& rec = ds.records()[i];
      if (strict.count(rec.prefix)) {
        ++s.retained;
        if (rec.truth_satellite) ++s.true_sat;
      }
    }
  }
  return s;
}

void print_ablation() {
  bench::header("Ablation", "Strict-only vs relaxed filtering; threshold sweeps");
  const auto& ds = bench::mlab_dataset();

  print_row("full pipeline (paper)", score(bench::pipeline()));
  {
    const auto cm = snoid::confusion_matrix(ds, bench::pipeline());
    std::printf("  dataset-level confusion: TP=%zu FP=%zu FN=%zu TN=%zu "
                "(precision %.4f, recall %.4f, FPR %.4f)\n",
                cm.true_positive, cm.false_positive, cm.false_negative,
                cm.true_negative, cm.precision(), cm.recall(),
                cm.false_positive_rate());
  }
  print_row("strict prefixes only", strict_only_score(ds, bench::pipeline()));
  bench::note("the paper's motivation: strict filtering keeps <1% of tests "
              "and misses most GEO operators; relaxation recovers them");

  std::printf("\n  GEO strict-threshold sweep:\n");
  for (const double thr : {300.0, 400.0, 500.0, 600.0, 700.0}) {
    snoid::PipelineConfig cfg;
    cfg.retry = runtime::degrade_under_faults();
    cfg.geo_strict_ms = thr;
    char label[48];
    std::snprintf(label, sizeof(label), "geo_strict = %.0f ms", thr);
    print_row(label, score(snoid::run_pipeline(ds, cfg)));
  }

  std::printf("\n  min-tests-per-prefix sweep:\n");
  for (const std::size_t n : {3ul, 10ul, 30ul, 100ul}) {
    snoid::PipelineConfig cfg;
    cfg.retry = runtime::degrade_under_faults();
    cfg.min_tests_per_prefix = n;
    char label[48];
    std::snprintf(label, sizeof(label), "min tests per /24 = %zu", n);
    print_row(label, score(snoid::run_pipeline(ds, cfg)));
  }

  std::printf("\n  KDE-validation LEO floor sweep (corporate-ASN rejection):\n");
  for (const double floor_ms : {20.0, 35.0, 50.0, 80.0}) {
    snoid::PipelineConfig cfg;
    cfg.retry = runtime::degrade_under_faults();
    cfg.leo_min_peak_ms = floor_ms;
    const auto result = snoid::run_pipeline(ds, cfg);
    const snoid::OperatorResult* starlink = nullptr;
    for (const auto& op : result.operators) {
      if (op.name == "starlink") starlink = &op;
    }
    char label[48];
    std::snprintf(label, sizeof(label), "leo_min_peak = %.0f ms", floor_ms);
    Score s = score(result);
    print_row(label, s);
    if (starlink) {
      std::printf("    -> starlink precision=%.3f recall=%.3f\n",
                  starlink->precision(), starlink->recall());
    }
  }
}

void BM_pipeline_sweep(benchmark::State& state) {
  const auto& ds = bench::mlab_dataset();
  snoid::PipelineConfig cfg;
  cfg.retry = runtime::degrade_under_faults();
  cfg.geo_strict_ms = 400.0 + 100.0 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(snoid::run_pipeline(ds, cfg).identified_operators);
  }
}
BENCHMARK(BM_pipeline_sweep)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_ablation)
