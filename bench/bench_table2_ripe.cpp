// Table 2: the RIPE Atlas Starlink probe fleet — probes, start dates, and
// traceroute volumes per country over the one-year window.
#include <map>

#include "bench/bench_common.hpp"
#include "snoid/pop_analysis.hpp"

namespace {

using namespace satnet;

void print_table2() {
  bench::header("Table 2", "RIPE Atlas dataset: probes and traceroutes per country");
  const auto& ds = bench::atlas_dataset();
  const auto valid = ripe::validated_probe_ids(ds);
  const std::set<int> valid_set(valid.begin(), valid.end());

  std::map<std::string, int> probes;
  std::map<std::string, double> start_day;
  for (const auto& p : ds.probes) {
    if (!valid_set.count(p.id)) continue;
    ++probes[p.country];
    if (!start_day.count(p.country) || p.start_day < start_day[p.country]) {
      start_day[p.country] = p.start_day;
    }
  }
  std::map<std::string, std::size_t> traceroutes;
  std::map<int, std::string> country_of;
  for (const auto& p : ds.probes) country_of[p.id] = p.country;
  for (const auto& t : ds.traceroutes) {
    if (valid_set.count(t.probe_id) && t.via_cgnat) ++traceroutes[country_of[t.probe_id]];
  }

  // Paper traceroute volumes for comparison (millions).
  const std::map<std::string, double> paper = {
      {"AT", 0.24}, {"AU", 0.46}, {"BE", 0.07}, {"CA", 0.28}, {"CL", 0.05},
      {"DE", 0.71}, {"ES", 0.10}, {"FR", 0.35}, {"GB", 0.29}, {"IT", 0.12},
      {"NL", 0.38}, {"NZ", 0.22}, {"PH", 0.02}, {"PL", 0.06}, {"US", 3.08}};

  std::printf("  %-4s %7s %10s %13s %12s\n", "cc", "probes", "start_day",
              "traceroutes", "paper (M)");
  std::size_t total_probes = 0, total_traces = 0;
  for (const auto& [cc, n] : probes) {
    total_probes += static_cast<std::size_t>(n);
    total_traces += traceroutes[cc];
    std::printf("  %-4s %7d %10.0f %13zu %12.2f\n", cc.c_str(), n, start_day[cc],
                traceroutes[cc], paper.count(cc) ? paper.at(cc) : 0.0);
  }
  std::printf("  total: %zu probes (paper: 67), %zu traceroutes (paper: ~6M; "
              "bench cadence 8h)\n",
              total_probes, total_traces);
}

void BM_atlas_month(benchmark::State& state) {
  ripe::AtlasConfig cfg;
  cfg.duration_days = 30.0;
  cfg.round_interval_hours = 24.0;
  cfg.retry = runtime::degrade_under_faults();
  for (auto _ : state) {
    const auto ds = ripe::run_atlas_campaign(cfg);
    benchmark::DoNotOptimize(ds.traceroutes.size());
  }
}
BENCHMARK(BM_atlas_month)->Unit(benchmark::kMillisecond);

void BM_probe_validation(benchmark::State& state) {
  const auto& ds = bench::atlas_dataset();
  for (auto _ : state) {
    const auto valid = ripe::validated_probe_ids(ds);
    benchmark::DoNotOptimize(valid.size());
  }
}
BENCHMARK(BM_probe_validation)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_table2)
