// Tentpole bench: the propagation layer (orbit/propagator, orbit/sgp4).
// Times one epoch of whole-constellation ephemeris on a Starlink-sized
// Walker constellation two ways — per-satellite scalar position() calls
// vs one BatchPropagator::advance() pass over the SoA arrays — and
// asserts the two produce bit-identical geodetic frames. The batch
// speedup row is the PR's acceptance gate (>= 2x or the binary exits
// nonzero, which fails the ledger job).
//
// A second table prices the SGP4 backend against closed-form Walker on
// the same geometry (synthetic elements derived from the shells), both
// scalar and batched, so the ledger tracks what switching a matrix
// world to --orbit-model=sgp4 actually costs.
//
// Writes BENCH_propagate.json (cwd) with every timing and the speedups
// for CI trend tracking via benchreport.
#include "bench/bench_common.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "orbit/constellation.hpp"
#include "orbit/propagator.hpp"
#include "orbit/shell.hpp"

namespace {

using namespace satnet;

// 240 epochs at the Starlink reconfiguration cadence: a 1-hour horizon,
// the scale one matrix world or campaign slab sweep actually propagates.
constexpr int kEpochs = 240;
constexpr double kStepSec = 15.0;
// Each sweep runs kRepeats times and every epoch keeps its fastest
// repeat — ambient noise on a shared box inflates individual epochs
// far more than it moves their min, and the 2x gate should measure
// the kernel, not the neighbors.
constexpr int kRepeats = 5;

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  // satlint:allow(nondet-source): bench wall-clock; results never read it
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// FNV-1a over raw double bits — byte-level fingerprint of a frame set.
struct Fingerprint {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(double d) {
    const std::uint64_t v = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
};

struct EpochSweep {
  double wall_ms = 0;
  std::uint64_t hash = 0;
  std::size_t positions = 0;
  std::vector<double> epoch_ms;  ///< per-epoch wall time, for min-merge
};

/// Hash the epoch's frame — outside the timed region, so the gate
/// measures propagation, not fingerprinting (both paths produce the
/// same arrays; hashing them would just compress the ratio toward 1).
void mix_frame(Fingerprint& fp, const orbit::BatchFrame& frame) {
  for (std::size_t s = 0; s < frame.size(); ++s) {
    fp.mix(frame.lat_deg[s]);
    fp.mix(frame.lon_deg[s]);
    fp.mix(frame.alt_km[s]);
  }
}

/// Scalar baseline: the constellation propagated the way pre-batch
/// consumers did it — one Constellation::position(SatId) call per
/// satellite per epoch (SatId mapping and dispatch included, plus the
/// per-call shell-constant recomputation the scalar path has always
/// paid), stored into the same SoA layout a batch consumer reads.
EpochSweep run_scalar_once(const orbit::Constellation& con) {
  const std::size_t n = con.total_sats();
  Fingerprint fp;
  EpochSweep sweep;
  orbit::BatchFrame frame;
  frame.lat_deg.resize(n);
  frame.lon_deg.resize(n);
  frame.alt_km.resize(n);
  for (int e = 1; e <= kEpochs; ++e) {
    const double t = kStepSec * e;
    // satlint:allow(nondet-source): bench wall-clock; results never read it
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t f = 0; f < n; ++f) {
      const geo::GeoPoint p = con.position(con.sat_id_from_flat(f), t);
      frame.lat_deg[f] = p.lat_deg;
      frame.lon_deg[f] = p.lon_deg;
      frame.alt_km[f] = p.alt_km;
    }
    sweep.epoch_ms.push_back(wall_ms_since(t0));
    sweep.positions += n;
    mix_frame(fp, frame);
  }
  sweep.hash = fp.h;
  return sweep;
}

/// Batch path: one SoA advance() per epoch, frame reused (steady-state
/// epoch loops allocate nothing).
EpochSweep run_batch_once(const orbit::Constellation& con) {
  Fingerprint fp;
  EpochSweep sweep;
  orbit::BatchFrame frame;
  for (int e = 1; e <= kEpochs; ++e) {
    // satlint:allow(nondet-source): bench wall-clock; results never read it
    const auto t0 = std::chrono::steady_clock::now();
    con.propagator().batch().advance(kStepSec * e, /*unit_vectors=*/false, frame);
    sweep.epoch_ms.push_back(wall_ms_since(t0));
    sweep.positions += frame.size();
    mix_frame(fp, frame);
  }
  sweep.hash = fp.h;
  return sweep;
}

void die_on_divergence(const char* label, std::uint64_t expected, std::uint64_t got);

template <typename SweepFn>
EpochSweep best_of(const orbit::Constellation& con, SweepFn&& fn) {
  EpochSweep best = fn(con);
  for (int r = 1; r < kRepeats; ++r) {
    const EpochSweep s = fn(con);
    die_on_divergence("repeat", best.hash, s.hash);
    for (std::size_t e = 0; e < best.epoch_ms.size(); ++e) {
      best.epoch_ms[e] = std::min(best.epoch_ms[e], s.epoch_ms[e]);
    }
  }
  best.wall_ms = 0;
  for (const double ms : best.epoch_ms) best.wall_ms += ms;
  return best;
}

EpochSweep run_scalar(const orbit::Constellation& con) {
  return best_of(con, run_scalar_once);
}

EpochSweep run_batch(const orbit::Constellation& con) {
  return best_of(con, run_batch_once);
}

void die_on_divergence(const char* label, std::uint64_t expected, std::uint64_t got) {
  if (expected == got) return;
  std::fprintf(stderr,
               "FATAL: %s batch frame diverges from the scalar path "
               "(expected %016llx, got %016llx) — the batch kernel broke its "
               "bit-identity contract\n",
               label, static_cast<unsigned long long>(expected),
               static_cast<unsigned long long>(got));
  std::exit(1);
}

void print_row(const char* label, const EpochSweep& s, double baseline_ms) {
  std::printf("  %-34s %10.1f %8.2fx   (%zu positions)\n", label, s.wall_ms,
              s.wall_ms > 0 ? baseline_ms / s.wall_ms : 0, s.positions);
}

void print_propagate_bench() {
  bench::header("Tentpole: batched propagation",
                "SoA whole-constellation kernel vs per-satellite scalar");

  const std::vector<orbit::Shell> shells = orbit::starlink_shells();
  std::size_t n_sats = 0;
  for (const auto& sh : shells) n_sats += sh.total_sats();
  std::printf("  constellation: %zu shells, %zu satellites, %d epochs @ %gs\n",
              shells.size(), n_sats, kEpochs, kStepSec);

  // --- Walker: scalar vs batch (the acceptance gate) ----------------
  const orbit::Constellation walker(shells);
  const EpochSweep walker_scalar = run_scalar(walker);
  const EpochSweep walker_batch = run_batch(walker);
  die_on_divergence("walker", walker_scalar.hash, walker_batch.hash);

  const double walker_speedup =
      walker_batch.wall_ms > 0 ? walker_scalar.wall_ms / walker_batch.wall_ms : 0;
  std::printf("  %-34s %10s %9s\n", "walker (closed form)", "wall ms", "speedup");
  print_row("  scalar position() per sat", walker_scalar, walker_scalar.wall_ms);
  print_row("  batch advance() per epoch", walker_batch, walker_scalar.wall_ms);

  // --- SGP4 on the same geometry: scalar vs batch -------------------
  const orbit::Constellation sgp4(shells, orbit::OrbitModel::sgp4);
  const EpochSweep sgp4_scalar = run_scalar(sgp4);
  const EpochSweep sgp4_batch = run_batch(sgp4);
  die_on_divergence("sgp4", sgp4_scalar.hash, sgp4_batch.hash);

  const double sgp4_speedup =
      sgp4_batch.wall_ms > 0 ? sgp4_scalar.wall_ms / sgp4_batch.wall_ms : 0;
  const double sgp4_vs_walker =
      walker_batch.wall_ms > 0 ? sgp4_batch.wall_ms / walker_batch.wall_ms : 0;
  std::printf("  %-34s %10s %9s\n", "sgp4 (perturbed)", "wall ms", "speedup");
  print_row("  scalar position() per sat", sgp4_scalar, sgp4_scalar.wall_ms);
  print_row("  batch advance() per epoch", sgp4_batch, sgp4_scalar.wall_ms);
  bench::note("sgp4 runs the full perturbation series per satellite, so its");
  bench::note("batch pass hoists less than walker's — the honest comparison");
  bench::note("for --orbit-model=sgp4 is the cost ratio below, not a speedup");
  std::printf("  %-34s %9.2fx\n", "sgp4 batch cost vs walker batch", sgp4_vs_walker);

  const bool target_met = walker_speedup >= 2.0;
  std::printf("  frames bit-identical (scalar vs batch, both models): yes (asserted)\n");
  std::printf("  batch speedup target >= 2x (walker, Starlink-sized): %s\n",
              target_met ? "met" : "NOT MET");

  std::FILE* out = std::fopen("BENCH_propagate.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_propagate.json\n");
  } else {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"bench_propagate\",\n"
        "  \"constellation\": {\"shells\": %zu, \"satellites\": %zu, "
        "\"epochs\": %d, \"step_sec\": %g},\n"
        "  \"walker\": {\"scalar_ms\": %.1f, \"batch_ms\": %.1f, "
        "\"batch_speedup\": %.2f},\n"
        "  \"sgp4\": {\"scalar_ms\": %.1f, \"batch_ms\": %.1f, "
        "\"batch_speedup\": %.2f, \"batch_cost_vs_walker\": %.2f},\n"
        "  \"frames_identical\": true,\n"
        "  \"batch_speedup_target_2x_met\": %s\n"
        "}\n",
        shells.size(), n_sats, kEpochs, kStepSec, walker_scalar.wall_ms,
        walker_batch.wall_ms, walker_speedup, sgp4_scalar.wall_ms,
        sgp4_batch.wall_ms, sgp4_speedup, sgp4_vs_walker,
        target_met ? "true" : "false");
    std::fclose(out);
    bench::note("wrote BENCH_propagate.json");
  }

  // The ledger ratio gate (benchreport --check --ratios-only) is the
  // regression enforcement for this number; the hard exit below is a
  // structural backstop — a batch kernel that loses its hoisting (or
  // silently falls back to the scalar path) lands at 1.0-1.5x, far
  // under this line, while measurement noise on a busy box moves the
  // per-epoch-min ratio only a few percent around its ~2x ceiling
  // (the sin/asin/atan2 chain both paths must run bit-identically is
  // half the scalar cost, so 2x is the asymptote hoisting can reach).
  if (walker_speedup < 1.8) {
    std::fprintf(stderr,
                 "FATAL: batch propagation speedup %.2fx is far below the 2x "
                 "acceptance target on the Starlink-sized constellation — "
                 "the batch kernel lost its hoisting\n",
                 walker_speedup);
    std::exit(1);
  }
}

// Microbenches: one whole-constellation epoch per iteration.

const std::vector<orbit::Shell>& kernel_shells() {
  static const std::vector<orbit::Shell> shells = orbit::starlink_shells();
  return shells;
}

void BM_walker_batch_epoch(benchmark::State& state) {
  const orbit::WalkerPropagator prop(kernel_shells());
  orbit::BatchFrame frame;
  int e = 0;
  for (auto _ : state) {
    e = e % kEpochs + 1;
    prop.batch().advance(kStepSec * e, false, frame);
    benchmark::DoNotOptimize(frame.lat_deg.data());
  }
}
BENCHMARK(BM_walker_batch_epoch)->Unit(benchmark::kMicrosecond);

void BM_walker_scalar_epoch(benchmark::State& state) {
  const orbit::WalkerPropagator prop(kernel_shells());
  int e = 0;
  for (auto _ : state) {
    e = e % kEpochs + 1;
    for (std::size_t s = 0; s < prop.size(); ++s) {
      benchmark::DoNotOptimize(prop.position(s, kStepSec * e));
    }
  }
}
BENCHMARK(BM_walker_scalar_epoch)->Unit(benchmark::kMicrosecond);

void BM_sgp4_batch_epoch(benchmark::State& state) {
  const orbit::Sgp4Propagator prop(kernel_shells());
  orbit::BatchFrame frame;
  int e = 0;
  for (auto _ : state) {
    e = e % kEpochs + 1;
    prop.batch().advance(kStepSec * e, false, frame);
    benchmark::DoNotOptimize(frame.lat_deg.data());
  }
}
BENCHMARK(BM_sgp4_batch_epoch)->Unit(benchmark::kMillisecond);

}  // namespace

SATNET_BENCH_MAIN(print_propagate_bench)
