#include "geo/geodesy.hpp"

#include <algorithm>
#include <cmath>

namespace satnet::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double deg_to_rad(double deg) { return deg * kPi / 180.0; }
double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

Ecef to_ecef(const GeoPoint& p) {
  const double r = kEarthRadiusKm + p.alt_km;
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  return {r * std::cos(lat) * std::cos(lon), r * std::cos(lat) * std::sin(lon),
          r * std::sin(lat)};
}

double slant_range_km(const GeoPoint& a, const GeoPoint& b) {
  const Ecef ea = to_ecef(a);
  const Ecef eb = to_ecef(b);
  const double dx = ea.x - eb.x;
  const double dy = ea.y - eb.y;
  const double dz = ea.z - eb.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double surface_distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2);
  const double t = std::sin(dlon / 2);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double elevation_deg(const GeoPoint& ground, const GeoPoint& sat) {
  const Ecef g = to_ecef(GeoPoint{ground.lat_deg, ground.lon_deg, 0.0});
  const Ecef s = to_ecef(sat);
  // Vector from ground to satellite.
  const double vx = s.x - g.x, vy = s.y - g.y, vz = s.z - g.z;
  const double v_norm = std::sqrt(vx * vx + vy * vy + vz * vz);
  const double g_norm = std::sqrt(g.x * g.x + g.y * g.y + g.z * g.z);
  if (v_norm <= 0.0 || g_norm <= 0.0) return 90.0;
  // Elevation = angle between the local vertical (g) and v, minus 90 deg.
  const double cos_zenith = (g.x * vx + g.y * vy + g.z * vz) / (g_norm * v_norm);
  return 90.0 - rad_to_deg(std::acos(std::clamp(cos_zenith, -1.0, 1.0)));
}

double radio_delay_ms(double slant_km) {
  return slant_km / kLightSpeedKmPerSec * 1000.0;
}

double fiber_delay_ms(double surface_km, double stretch) {
  return surface_km * stretch / kFiberSpeedKmPerSec * 1000.0;
}

GeoPoint interpolate(const GeoPoint& a, const GeoPoint& b, double f) {
  f = std::clamp(f, 0.0, 1.0);
  double dlon = b.lon_deg - a.lon_deg;
  if (dlon > 180.0) dlon -= 360.0;
  if (dlon < -180.0) dlon += 360.0;
  double lon = a.lon_deg + f * dlon;
  if (lon > 180.0) lon -= 360.0;
  if (lon < -180.0) lon += 360.0;
  return {a.lat_deg + f * (b.lat_deg - a.lat_deg), lon,
          a.alt_km + f * (b.alt_km - a.alt_km)};
}

}  // namespace satnet::geo
