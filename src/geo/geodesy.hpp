// Spherical-Earth geodesy: great-circle distances, ECEF coordinates,
// satellite slant ranges, and propagation delays.
//
// All orbital latency in the reproduction derives from these primitives:
// user->satellite->gateway slant ranges over vacuum (c), terrestrial
// fiber segments at ~2/3 c.
#pragma once

namespace satnet::geo {

/// Mean Earth radius (spherical model), km.
inline constexpr double kEarthRadiusKm = 6371.0;
/// Speed of light in vacuum, km/s (satellite radio links).
inline constexpr double kLightSpeedKmPerSec = 299792.458;
/// Effective signal speed in optical fiber, km/s (refractive index ~1.47).
inline constexpr double kFiberSpeedKmPerSec = kLightSpeedKmPerSec * 0.68;
/// Geostationary orbit altitude, km.
inline constexpr double kGeoAltitudeKm = 35786.0;

double deg_to_rad(double deg);
double rad_to_deg(double rad);

/// A point on (or above) the Earth surface.
struct GeoPoint {
  double lat_deg = 0;
  double lon_deg = 0;
  double alt_km = 0;  ///< altitude above the surface
};

/// Cartesian Earth-centered Earth-fixed coordinates, km.
struct Ecef {
  double x = 0, y = 0, z = 0;
};

Ecef to_ecef(const GeoPoint& p);

/// Straight-line (chord) distance between two points, km. For two surface
/// points this under-estimates the surface path; use surface_distance_km
/// for terrestrial segments.
double slant_range_km(const GeoPoint& a, const GeoPoint& b);

/// Great-circle distance between two *surface* locations (altitudes
/// ignored), km.
double surface_distance_km(const GeoPoint& a, const GeoPoint& b);

/// Elevation angle (degrees above horizon) of `sat` as seen from surface
/// point `ground`. Negative when the satellite is below the horizon.
double elevation_deg(const GeoPoint& ground, const GeoPoint& sat);

/// One-way radio propagation delay across a vacuum slant path, ms.
double radio_delay_ms(double slant_km);

/// One-way fiber propagation delay along a terrestrial surface path, ms.
/// Applies a route-stretch factor (cables do not follow great circles).
double fiber_delay_ms(double surface_km, double stretch = 1.3);

/// Linear interpolation between two surface points at fraction f in
/// [0, 1], taking the short way around the antimeridian in longitude.
/// Good enough for waypoint tracks (ships, aircraft) at the scales the
/// scenario generator uses; altitude interpolates linearly too.
GeoPoint interpolate(const GeoPoint& a, const GeoPoint& b, double f);

}  // namespace satnet::geo
