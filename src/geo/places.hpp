// World place database: the cities, countries, and US states used to
// position PoPs, gateways, probes, testers, CDN edges, and DNS root
// instances. A small curated gazetteer is enough — the paper's analyses
// only reference a few dozen locations.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "geo/geodesy.hpp"

namespace satnet::geo {

enum class Continent {
  north_america,
  south_america,
  europe,
  asia,
  oceania,
  africa,
};

std::string_view to_string(Continent c);

/// ISO-3166-style country entry.
struct Country {
  std::string_view code;  ///< two-letter code, e.g. "NZ"
  std::string_view name;
  Continent continent;
};

/// A named city with coordinates.
struct City {
  std::string_view name;          ///< lowercase key, e.g. "auckland"
  std::string_view country_code;  ///< ISO code
  double lat_deg = 0;
  double lon_deg = 0;
};

/// US state entry with the paper's Figure 8a regional grouping.
struct UsState {
  std::string_view code;    ///< e.g. "WA"
  std::string_view name;
  std::string_view region;  ///< Northeast / Southeast / Central / ...
  double lat_deg = 0;       ///< representative population-weighted point
  double lon_deg = 0;
};

/// All known cities.
std::span<const City> cities();
/// All known countries.
std::span<const Country> countries();
/// All US states used in the study.
std::span<const UsState> us_states();

std::optional<City> find_city(std::string_view name);
std::optional<Country> find_country(std::string_view code);
std::optional<UsState> find_us_state(std::string_view code);

/// Coordinates of a city; throws std::out_of_range for unknown names so
/// topology-construction bugs fail loudly.
GeoPoint city_point(std::string_view name);

/// Continent of a country code; throws std::out_of_range when unknown.
Continent continent_of(std::string_view country_code);

}  // namespace satnet::geo
