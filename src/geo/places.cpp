#include "geo/places.hpp"

#include <array>
#include <stdexcept>

namespace satnet::geo {

std::string_view to_string(Continent c) {
  switch (c) {
    case Continent::north_america: return "North America";
    case Continent::south_america: return "South America";
    case Continent::europe: return "Europe";
    case Continent::asia: return "Asia";
    case Continent::oceania: return "Oceania";
    case Continent::africa: return "Africa";
  }
  return "?";
}

namespace {

constexpr std::array kCountries = {
    Country{"US", "United States", Continent::north_america},
    Country{"CA", "Canada", Continent::north_america},
    Country{"MX", "Mexico", Continent::north_america},
    Country{"CL", "Chile", Continent::south_america},
    Country{"BR", "Brazil", Continent::south_america},
    Country{"PE", "Peru", Continent::south_america},
    Country{"CO", "Colombia", Continent::south_america},
    Country{"GB", "United Kingdom", Continent::europe},
    Country{"DE", "Germany", Continent::europe},
    Country{"FR", "France", Continent::europe},
    Country{"NL", "Netherlands", Continent::europe},
    Country{"BE", "Belgium", Continent::europe},
    Country{"AT", "Austria", Continent::europe},
    Country{"ES", "Spain", Continent::europe},
    Country{"PT", "Portugal", Continent::europe},
    Country{"IT", "Italy", Continent::europe},
    Country{"PL", "Poland", Continent::europe},
    Country{"CZ", "Czech Republic", Continent::europe},
    Country{"GR", "Greece", Continent::europe},
    Country{"CY", "Cyprus", Continent::europe},
    Country{"NO", "Norway", Continent::europe},
    Country{"SE", "Sweden", Continent::europe},
    Country{"CH", "Switzerland", Continent::europe},
    Country{"IE", "Ireland", Continent::europe},
    Country{"LU", "Luxembourg", Continent::europe},
    Country{"JP", "Japan", Continent::asia},
    Country{"PH", "Philippines", Continent::asia},
    Country{"SG", "Singapore", Continent::asia},
    Country{"IN", "India", Continent::asia},
    Country{"TH", "Thailand", Continent::asia},
    Country{"AE", "United Arab Emirates", Continent::asia},
    Country{"TR", "Turkey", Continent::asia},
    Country{"AU", "Australia", Continent::oceania},
    Country{"NZ", "New Zealand", Continent::oceania},
    Country{"FJ", "Fiji", Continent::oceania},
    Country{"ZA", "South Africa", Continent::africa},
    Country{"NG", "Nigeria", Continent::africa},
    Country{"KE", "Kenya", Continent::africa},
    Country{"EG", "Egypt", Continent::africa},
    Country{"DO", "Dominican Republic", Continent::north_america},
    Country{"AR", "Argentina", Continent::south_america},
};

constexpr std::array kCities = {
    // --- North America (Starlink PoPs + probe/tester locations) ---
    City{"seattle", "US", 47.61, -122.33},
    City{"los angeles", "US", 34.05, -118.24},
    City{"san francisco", "US", 37.77, -122.42},
    City{"denver", "US", 39.74, -104.99},
    City{"dallas", "US", 32.78, -96.80},
    City{"chicago", "US", 41.88, -87.63},
    City{"atlanta", "US", 33.75, -84.39},
    City{"new york", "US", 40.71, -74.01},
    City{"ashburn", "US", 39.04, -77.49},
    City{"miami", "US", 25.76, -80.19},
    City{"kansas city", "US", 39.10, -94.58},
    City{"salt lake city", "US", 40.76, -111.89},
    City{"phoenix", "US", 33.45, -112.07},
    City{"anchorage", "US", 61.22, -149.90},
    City{"toronto", "CA", 43.65, -79.38},
    City{"vancouver", "CA", 49.28, -123.12},
    City{"montreal", "CA", 45.50, -73.57},
    City{"mexico city", "MX", 19.43, -99.13},
    // --- South America ---
    City{"santiago", "CL", -33.45, -70.67},
    City{"sao paulo", "BR", -23.55, -46.63},
    City{"lima", "PE", -12.05, -77.04},
    City{"bogota", "CO", 4.71, -74.07},
    // --- Europe ---
    City{"london", "GB", 51.51, -0.13},
    City{"manchester", "GB", 53.48, -2.24},
    City{"frankfurt", "DE", 50.11, 8.68},
    City{"berlin", "DE", 52.52, 13.41},
    City{"munich", "DE", 48.14, 11.58},
    City{"paris", "FR", 48.86, 2.35},
    City{"marseille", "FR", 43.30, 5.37},
    City{"amsterdam", "NL", 52.37, 4.90},
    City{"brussels", "BE", 50.85, 4.35},
    City{"vienna", "AT", 48.21, 16.37},
    City{"madrid", "ES", 40.42, -3.70},
    City{"lisbon", "PT", 38.72, -9.14},
    City{"milan", "IT", 45.46, 9.19},
    City{"rome", "IT", 41.90, 12.50},
    City{"warsaw", "PL", 52.23, 21.01},
    City{"prague", "CZ", 50.08, 14.44},
    City{"athens", "GR", 37.98, 23.73},
    City{"oslo", "NO", 59.91, 10.75},
    City{"stockholm", "SE", 59.33, 18.07},
    City{"zurich", "CH", 47.37, 8.54},
    City{"dublin", "IE", 53.35, -6.26},
    City{"luxembourg", "LU", 49.61, 6.13},
    // --- Asia ---
    City{"tokyo", "JP", 35.68, 139.69},
    City{"manila", "PH", 14.60, 120.98},
    City{"singapore", "SG", 1.35, 103.82},
    City{"mumbai", "IN", 19.08, 72.88},
    City{"bangkok", "TH", 13.76, 100.50},
    City{"dubai", "AE", 25.20, 55.27},
    City{"istanbul", "TR", 41.01, 28.98},
    // --- Oceania ---
    City{"sydney", "AU", -33.87, 151.21},
    City{"melbourne", "AU", -37.81, 144.96},
    City{"perth", "AU", -31.95, 115.86},
    City{"brisbane", "AU", -27.47, 153.03},
    City{"auckland", "NZ", -36.85, 174.76},
    City{"suva", "FJ", -18.12, 178.45},
    // --- Africa ---
    City{"johannesburg", "ZA", -26.20, 28.05},
    City{"lagos", "NG", 6.52, 3.38},
    City{"nairobi", "KE", -1.29, 36.82},
    City{"cairo", "EG", 30.04, 31.24},
    // --- Others referenced by the study ---
    City{"santo domingo", "DO", 18.49, -69.93},
    City{"buenos aires", "AR", -34.60, -58.38},
};

constexpr std::array kUsStates = {
    UsState{"ME", "Maine", "Northeast", 44.69, -69.38},
    UsState{"NH", "New Hampshire", "Northeast", 43.68, -71.58},
    UsState{"VT", "Vermont", "Northeast", 44.07, -72.67},
    UsState{"NY", "New York", "Northeast", 42.95, -75.53},
    UsState{"PA", "Pennsylvania", "Northeast", 40.88, -77.80},
    UsState{"NJ", "New Jersey", "Northeast", 40.19, -74.67},
    UsState{"VA", "Virginia", "Southeast", 37.52, -78.85},
    UsState{"NC", "North Carolina", "Southeast", 35.56, -79.39},
    UsState{"GA", "Georgia", "Southeast", 32.64, -83.44},
    UsState{"FL", "Florida", "Southeast", 28.63, -82.45},
    UsState{"TN", "Tennessee", "Southeast", 35.86, -86.35},
    UsState{"MO", "Missouri", "Central", 38.35, -92.46},
    UsState{"KS", "Kansas", "Central", 38.50, -98.38},
    UsState{"NE", "Nebraska", "Central", 41.54, -99.80},
    UsState{"IA", "Iowa", "Central", 42.08, -93.50},
    UsState{"MN", "Minnesota", "Central", 46.28, -94.31},
    UsState{"OH", "Ohio", "East North Central", 40.29, -82.79},
    UsState{"MI", "Michigan", "East North Central", 44.35, -85.41},
    UsState{"IN", "Indiana", "East North Central", 39.89, -86.28},
    UsState{"IL", "Illinois", "East North Central", 40.06, -89.20},
    UsState{"WI", "Wisconsin", "East North Central", 44.62, -89.99},
    UsState{"TX", "Texas", "South", 31.05, -97.56},
    UsState{"OK", "Oklahoma", "South", 35.58, -97.43},
    UsState{"AR", "Arkansas", "South", 34.89, -92.44},
    UsState{"LA", "Louisiana", "South", 31.05, -91.99},
    UsState{"AZ", "Arizona", "Southwest", 34.27, -111.66},
    UsState{"NM", "New Mexico", "Southwest", 34.41, -106.11},
    UsState{"NV", "Nevada", "Southwest", 39.33, -116.63},
    UsState{"UT", "Utah", "Southwest", 39.32, -111.67},
    UsState{"CA", "California", "West", 37.18, -119.47},
    UsState{"CO", "Colorado", "West", 38.99, -105.55},
    UsState{"WY", "Wyoming", "West", 42.99, -107.55},
    UsState{"MT", "Montana", "Northwest", 47.03, -109.64},
    UsState{"ID", "Idaho", "Northwest", 44.35, -114.61},
    UsState{"OR", "Oregon", "Northwest", 43.93, -120.56},
    UsState{"WA", "Washington", "Northwest", 47.38, -120.45},
    UsState{"AK", "Alaska", "Alaska", 61.22, -149.90},
};

}  // namespace

std::span<const City> cities() { return kCities; }
std::span<const Country> countries() { return kCountries; }
std::span<const UsState> us_states() { return kUsStates; }

std::optional<City> find_city(std::string_view name) {
  for (const auto& c : kCities) {
    if (c.name == name) return c;
  }
  return std::nullopt;
}

std::optional<Country> find_country(std::string_view code) {
  for (const auto& c : kCountries) {
    if (c.code == code) return c;
  }
  return std::nullopt;
}

std::optional<UsState> find_us_state(std::string_view code) {
  for (const auto& s : kUsStates) {
    if (s.code == code) return s;
  }
  return std::nullopt;
}

GeoPoint city_point(std::string_view name) {
  const auto c = find_city(name);
  if (!c) throw std::out_of_range("unknown city: " + std::string(name));
  return {c->lat_deg, c->lon_deg, 0.0};
}

Continent continent_of(std::string_view country_code) {
  const auto c = find_country(country_code);
  if (!c) throw std::out_of_range("unknown country: " + std::string(country_code));
  return c->continent;
}

}  // namespace satnet::geo
