// RIPE Atlas built-in measurement campaign over the Starlink access
// network: traceroutes to the 13 DNS roots and SSLCert-style public-IP
// harvesting, exactly the two built-ins the paper mines.
//
// Analyses derived from this dataset: probe->PoP RTT by country (Fig 6a),
// RTT/hops to the roots (Fig 6b/6c), probe-PoP geography and migrations
// (Fig 7, Fig 8b), US per-state RTT (Fig 8a), and Table 2's volumes.
#pragma once

#include <string>
#include <vector>

#include "dns/roots.hpp"
#include "net/route.hpp"
#include "orbit/access.hpp"
#include "ripe/probes.hpp"
#include "runtime/sharded.hpp"
#include "stats/rng.hpp"

namespace satnet::ripe {

/// Summary of one traceroute (full hop lists are rebuilt on demand with
/// build_traceroute; the campaign keeps summaries for memory's sake).
struct TracerouteRecord {
  int probe_id = 0;
  double t_sec = 0;
  char root = 'A';
  bool via_cgnat = false;      ///< 100.64.0.1 present on the path
  std::string pop_name;        ///< serving PoP (from rDNS), "" off-Starlink
  double cgnat_rtt_ms = 0;     ///< probe -> CGNAT gateway (the PoP RTT)
  double dest_rtt_ms = 0;
  int hop_count = 0;
  std::string instance_city;   ///< anycast instance that answered
};

/// One SSLCert built-in run: exposes the probe's public address.
struct SslCertRecord {
  int probe_id = 0;
  double t_sec = 0;
  net::Ipv4 src_addr;
};

struct AtlasDataset {
  std::vector<Probe> probes;  ///< all candidates (validation filters later)
  std::vector<TracerouteRecord> traceroutes;
  std::vector<SslCertRecord> sslcerts;
};

struct AtlasConfig {
  double duration_days = 365.0;
  double round_interval_hours = 12.0;  ///< one round = 13 root traceroutes
  std::uint64_t seed = 11;
  /// Worker threads for the sharded runtime; 0 = hardware_concurrency.
  /// The dataset is identical for every value (see src/runtime).
  unsigned threads = 0;
  /// Failure policy for the sharded runtime (retry/degrade).
  runtime::RetryPolicy retry;
};

/// Runs the campaign sharded per probe: each probe's schedule runs on its
/// own EventQueue with an Rng forked by the stable key (probe id), and
/// per-probe records merge in probe order. The Starlink access network is
/// built internally (make_starlink_access) so the scripted PoP
/// migrations apply. Deterministic in the seed — never in thread count.
AtlasDataset run_atlas_campaign(const AtlasConfig& config);

/// Public address a probe holds while attached to PoP `pop_index`
/// (Starlink reassigns addresses per PoP).
net::Ipv4 probe_public_ip(const Probe& probe, std::size_t pop_index);

/// Reverse DNS of a Starlink subscriber address:
/// "customer.<pop>.pop.starlinkisp.net". Empty for non-Starlink space.
std::string reverse_dns(net::Ipv4 ip, const orbit::AccessNetwork& starlink);

/// Full hop-by-hop traceroute (for examples/tests; the campaign stores
/// summaries). `root` is a root letter 'A'..'M'.
net::Route build_traceroute(const orbit::AccessNetwork& starlink, const Probe& probe,
                            double t_sec, char root, stats::Rng& rng);

/// The paper's validation: a probe counts as "on Starlink" only when the
/// CGNAT gateway appears on its routing paths. Returns ids of validated
/// probes (filters stale-ASN decoys; keeps multihomed probes whose
/// majority of paths cross Starlink).
std::vector<int> validated_probe_ids(const AtlasDataset& dataset);

}  // namespace satnet::ripe
