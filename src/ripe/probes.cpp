#include "ripe/probes.hpp"

#include <stdexcept>

#include "geo/places.hpp"
#include "stats/rng.hpp"

namespace satnet::ripe {

double start_day_for(const std::string& yymm) {
  // Campaign epoch: 2022-05-03. Month labels follow Table 2.
  if (yymm == "22/05") return 0;
  if (yymm == "22/06") return 30;
  if (yymm == "22/08") return 90;
  if (yymm == "22/10") return 150;
  if (yymm == "22/11") return 180;
  if (yymm == "23/01") return 245;
  if (yymm == "23/02") return 275;
  if (yymm == "23/03") return 305;
  throw std::invalid_argument("unknown start label: " + yymm);
}

namespace {

struct CountrySpec {
  const char* country;
  const char* anchor_city;
  int count;
  const char* start;
};

// Non-US rows of Table 2.
constexpr CountrySpec kWorldProbes[] = {
    {"AT", "vienna", 2, "22/05"},    {"AU", "sydney", 4, "22/05"},
    {"BE", "brussels", 1, "23/01"},  {"CA", "toronto", 2, "22/05"},
    {"CL", "santiago", 1, "23/02"},  {"DE", "frankfurt", 5, "22/05"},
    {"ES", "madrid", 2, "22/06"},    {"FR", "paris", 4, "22/11"},
    {"GB", "london", 5, "22/08"},    {"IT", "milan", 1, "22/10"},
    {"NL", "amsterdam", 3, "22/05"}, {"NZ", "auckland", 1, "22/05"},
    {"PH", "manila", 1, "23/03"},    {"PL", "warsaw", 1, "23/01"},
};

struct StateSpec {
  const char* state;
  int count;
};

// 33 US probes spread over the states of Figure 8a.
constexpr StateSpec kUsProbes[] = {
    {"NY", 1}, {"PA", 2}, {"NJ", 1}, {"VA", 2}, {"NC", 1}, {"FL", 1}, {"GA", 1},
    {"TN", 1}, {"MO", 1}, {"KS", 1}, {"IA", 1}, {"MN", 1}, {"WI", 1}, {"MI", 1},
    {"OH", 1}, {"IL", 1}, {"TX", 2}, {"OK", 1}, {"AZ", 1}, {"NM", 1}, {"NV", 2},
    {"UT", 1}, {"CA", 1}, {"CO", 1}, {"MT", 1}, {"ID", 1}, {"OR", 1}, {"WA", 1},
    {"AK", 1},
};

}  // namespace

std::vector<Probe> starlink_probe_candidates() {
  std::vector<Probe> probes;
  stats::Rng rng(0x41a5u);  // fixed: probe placement is part of the scenario
  int next_id = 1000;

  for (const auto& spec : kWorldProbes) {
    const geo::GeoPoint anchor = geo::city_point(spec.anchor_city);
    for (int i = 0; i < spec.count; ++i) {
      Probe p;
      p.id = next_id++;
      p.country = spec.country;
      p.location = {anchor.lat_deg + rng.uniform(-0.8, 0.8),
                    anchor.lon_deg + rng.uniform(-0.8, 0.8), 0.0};
      p.start_day = start_day_for(spec.start);
      probes.push_back(std::move(p));
    }
  }

  for (const auto& spec : kUsProbes) {
    const auto state = geo::find_us_state(spec.state);
    for (int i = 0; i < spec.count; ++i) {
      Probe p;
      p.id = next_id++;
      p.country = "US";
      p.us_state = spec.state;
      if (std::string_view(spec.state) == "NV") {
        // One Nevada probe sits in Reno (inside the scripted Denver
        // override region); the other in Las Vegas.
        p.location = i == 0 ? geo::GeoPoint{39.53, -119.81, 0.0}
                            : geo::GeoPoint{36.17, -115.14, 0.0};
      } else {
        p.location = {state->lat_deg + rng.uniform(-0.8, 0.8),
                      state->lon_deg + rng.uniform(-0.8, 0.8), 0.0};
      }
      p.start_day = 0;  // Table 2: all US probes active from 22/05
      probes.push_back(std::move(p));
    }
  }

  // Decoys: metadata claims Starlink but traceroutes say otherwise.
  {
    Probe p;
    p.id = next_id++;
    p.country = "US";
    p.us_state = "TX";
    p.location = {30.3, -97.7, 0.0};
    p.start_day = 0;
    p.stale_asn = true;  // user switched to cable; probes table not updated
    probes.push_back(std::move(p));
  }
  {
    Probe p;
    p.id = next_id++;
    p.country = "DE";
    p.location = {51.2, 6.8, 0.0};
    p.start_day = 0;
    p.stale_asn = true;
    probes.push_back(std::move(p));
  }
  // The fifth French probe is genuine but multihomed: an LTE failover
  // carries a share of its traffic off-Starlink. It must survive the
  // majority-vote validation (it counts toward Table 2's 67 probes).
  {
    Probe p;
    p.id = next_id++;
    p.country = "FR";
    p.location = {45.76, 4.84, 0.0};
    p.start_day = start_day_for("22/11");
    p.lte_failover = true;
    probes.push_back(std::move(p));
  }

  return probes;
}

}  // namespace satnet::ripe
