// The RIPE Atlas Starlink probe fleet (paper Table 2).
//
// 67 probes across 15 countries, activated at different dates within the
// May 2022 - May 2023 window, plus a few decoys that carry a stale
// Starlink ASN in their metadata or are multihomed with an LTE failover —
// the data-quality traps §3.1 describes, which the CGNAT-gateway check
// must catch.
#pragma once

#include <string>
#include <vector>

#include "geo/geodesy.hpp"

namespace satnet::ripe {

struct Probe {
  int id = 0;
  std::string country;   ///< ISO code
  std::string us_state;  ///< two-letter code, US probes only
  geo::GeoPoint location;
  double start_day = 0;  ///< activation day, campaign epoch = 2022-05-03
  /// Metadata quirks (ground truth; the validation step must discover
  /// them from traceroute contents, not from these flags).
  bool stale_asn = false;   ///< probes table still says Starlink, user moved ISP
  bool lte_failover = false;  ///< multihomed; some traceroutes bypass Starlink
};

/// All probe candidates whose metadata says "AS14593" (67 valid + decoys).
std::vector<Probe> starlink_probe_candidates();

/// Activation-date helper: days since 2022-05-03 for a "YY/MM" label.
double start_day_for(const std::string& yymm);

}  // namespace satnet::ripe
