#include "ripe/atlas.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>

#include "geo/places.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orbit/timeline.hpp"
#include "runtime/sharded.hpp"
#include "sim/event_queue.hpp"

namespace satnet::ripe {

namespace {

/// Starlink customer public space in the simulation: 98.97.<pop>.0/24.
constexpr std::uint8_t kStarlinkPublicA = 98;
constexpr std::uint8_t kStarlinkPublicB = 97;

net::Ipv4 root_server_ip(char root) {
  // Synthetic but stable per-letter addresses in the real roots' style.
  return net::Ipv4(198, 41, static_cast<std::uint8_t>(root - 'A'), 4);
}

double lte_rtt_ms(stats::Rng& rng) { return rng.uniform(28.0, 60.0); }

/// One scheduled measurement round of a probe: when it fires and the
/// stream it draws from. A probe's whole schedule is a pure function of
/// (seed, probe id) — fork_stable for the probe stream, fork(t) per
/// round — so the timeline pre-pass below can enumerate it without
/// advancing anything the shard bodies will draw.
struct ProbeRound {
  double jittered = 0;
  stats::Rng round_rng;
};

std::vector<ProbeRound> probe_schedule(const stats::Rng& master, const Probe& probe,
                                       double horizon_sec, double interval_sec) {
  std::vector<ProbeRound> rounds;
  stats::Rng probe_rng = master.fork_stable(static_cast<std::uint64_t>(probe.id));
  for (double t = probe.start_day * 86400.0; t < horizon_sec; t += interval_sec) {
    // Stagger rounds so probes do not fire in lockstep.
    const double jittered = t + probe_rng.uniform(0.0, interval_sec * 0.5);
    if (jittered >= horizon_sec) break;
    rounds.push_back({jittered, probe_rng.fork(static_cast<std::uint64_t>(t))});
  }
  return rounds;
}

}  // namespace

net::Ipv4 probe_public_ip(const Probe& probe, std::size_t pop_index) {
  return net::Ipv4(kStarlinkPublicA, kStarlinkPublicB,
                   static_cast<std::uint8_t>(pop_index & 0xff),
                   static_cast<std::uint8_t>(1 + probe.id % 250));
}

std::string reverse_dns(net::Ipv4 ip, const orbit::AccessNetwork& starlink) {
  const std::uint32_t v = ip.value();
  if (((v >> 24) & 0xff) != kStarlinkPublicA || ((v >> 16) & 0xff) != kStarlinkPublicB) {
    return "";
  }
  const std::size_t pop = (v >> 8) & 0xff;
  if (pop >= starlink.config().pops.size()) return "";
  return "customer." + starlink.config().pops[pop].name + ".pop.starlinkisp.net";
}

net::Route build_traceroute(const orbit::AccessNetwork& starlink, const Probe& probe,
                            double t_sec, char root, stats::Rng& rng) {
  net::Route route;
  const auto& roots = dns::root_servers();
  const auto& root_spec = roots[static_cast<std::size_t>(root - 'A')];

  const orbit::AccessSample access = starlink.sample(probe.location, t_sec);
  if (!access.reachable) {
    // Outage: the probe's first hops answer, everything beyond is silent.
    route.hops.push_back({1, "cpe.lan", net::Ipv4(192, 168, 1, 1),
                          rng.uniform(0.4, 2.0), true});
    for (int ttl = 2; ttl <= 5; ++ttl) route.hops.push_back({ttl, "", {}, 0.0, false});
    return route;
  }

  const auto& pop = starlink.config().pops[access.pop_index];
  const double pop_rtt = 2.0 * access.one_way_ms + std::abs(rng.normal(0.0, 2.0));

  route.hops.push_back(
      {1, "cpe.lan", net::Ipv4(192, 168, 1, 1), rng.uniform(0.4, 2.0), true});
  route.hops.push_back({2, "", net::kCgnatGateway, pop_rtt, true});
  route.hops.push_back({3, pop.name + ".pop.starlinkisp.net",
                        net::Ipv4(149, 19, static_cast<std::uint8_t>(access.pop_index), 1),
                        pop_rtt + rng.uniform(0.2, 1.0), true});

  const dns::InstanceChoice instance = dns::nearest_instance(root_spec, pop.location);
  net::Backbone backbone;
  auto transit = backbone.build(pop.location, instance.location, pop_rtt, 4, rng);
  const int last_ttl = transit.empty() ? 4 : transit.back().ttl + 1;
  const double dest_rtt = (transit.empty() ? pop_rtt : transit.back().rtt_ms) +
                          std::abs(rng.normal(0.6, 0.4));
  for (auto& h : transit) route.hops.push_back(std::move(h));
  route.hops.push_back({last_ttl, std::string(1, static_cast<char>(std::tolower(root))) +
                                      ".root-servers.net",
                        root_server_ip(root), dest_rtt, true});
  return route;
}

AtlasDataset run_atlas_campaign(const AtlasConfig& config) {
  AtlasDataset dataset;
  dataset.probes = starlink_probe_candidates();

  const orbit::AccessNetwork starlink =
      orbit::make_starlink_access(std::make_shared<orbit::Constellation>(
          orbit::starlink_shells()));
  const net::Backbone backbone;
  const stats::Rng master(config.seed);
  const double horizon = config.duration_days * 86400.0;
  const double interval = config.round_interval_hours * 3600.0;

  // One shard per probe: a probe's whole schedule is a pure function of
  // (seed, probe id), so shards can run on any worker in any order.
  struct ProbeRecords {
    std::vector<TracerouteRecord> traceroutes;
    std::vector<SslCertRecord> sslcerts;
  };
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& probes_simulated =
      reg.counter("ripe.probes_simulated", "Atlas probes whose schedule ran");
  obs::Counter& traceroutes_total =
      reg.counter("ripe.traceroutes", "traceroute records produced");
  obs::Counter& hops_total =
      reg.counter("ripe.traceroute_hops", "hops across all traceroutes");
  obs::Counter& sslcerts_total =
      reg.counter("ripe.sslcerts", "SSLCert built-in runs recorded");

  // Timeline pre-pass: replay every probe's round schedule (peeking the
  // off-Starlink decision on a *copy* of the round stream, so the shard
  // draws are untouched) and precompute the access state those rounds
  // will query. The shards' sample_with_handoff calls then replay.
  if (orbit::timeline_enabled()) {
    std::vector<orbit::TimelineQuery> queries;
    for (const Probe& probe : dataset.probes) {
      for (const ProbeRound& round : probe_schedule(master, probe, horizon, interval)) {
        stats::Rng peek = round.round_rng;
        const bool off_starlink =
            probe.stale_asn || (probe.lte_failover && peek.chance(0.35));
        if (!off_starlink) queries.push_back({probe.location, round.jittered});
      }
    }
    orbit::EpochTimeline::ensure(starlink, std::move(queries), config.threads);
  }

  runtime::ShardedCampaign<ProbeRecords> campaign(
      dataset.probes.size(),
      [&](std::size_t probe_index) {
    const Probe& probe = dataset.probes[probe_index];
    obs::ScopedSpan span("ripe.probe", "probe-" + std::to_string(probe.id),
                         static_cast<std::uint64_t>(probe_index));
    ProbeRecords local;
    sim::EventQueue queue;
    for (ProbeRound& round : probe_schedule(master, probe, horizon, interval)) {
      queue.schedule_at(round.jittered, [&, probe,
                                         round_rng = round.round_rng](sim::Time now) mutable {
        // Decoys: stale-ASN probes are not on Starlink at all; the LTE
        // failover probe bypasses Starlink on a fraction of rounds.
        const bool off_starlink =
            probe.stale_asn || (probe.lte_failover && round_rng.chance(0.35));

        const orbit::AccessSample access =
            off_starlink ? orbit::AccessSample{}
                         : starlink.sample_with_handoff(probe.location, now);

        // SSLCert built-in runs each round and exposes the public IP.
        if (access.reachable) {
          local.sslcerts.push_back(
              {probe.id, now, probe_public_ip(probe, access.pop_index)});
        }

        const auto& pops = starlink.config().pops;
        for (const auto& root_spec : dns::root_servers()) {
          TracerouteRecord rec;
          rec.probe_id = probe.id;
          rec.t_sec = now;
          rec.root = root_spec.letter;
          if (off_starlink) {
            // Terrestrial/LTE path: no CGNAT hop.
            rec.via_cgnat = false;
            const double base = lte_rtt_ms(round_rng);
            const dns::InstanceChoice inst =
                dns::nearest_instance(root_spec, probe.location);
            rec.dest_rtt_ms = base + 2.0 * geo::fiber_delay_ms(inst.surface_km);
            rec.hop_count = 2 + backbone.expected_hops(inst.surface_km) + 1;
            rec.instance_city = std::string(inst.city);
          } else if (!access.reachable) {
            rec.via_cgnat = false;  // outage: traceroute dies at the CPE
            rec.hop_count = 1;
          } else {
            const auto& pop = pops[access.pop_index];
            rec.via_cgnat = true;
            rec.pop_name = pop.name;
            rec.cgnat_rtt_ms =
                2.0 * access.one_way_ms + std::abs(round_rng.normal(0.0, 2.5));
            const dns::InstanceChoice inst =
                dns::nearest_instance(root_spec, pop.location);
            rec.dest_rtt_ms = rec.cgnat_rtt_ms +
                              2.0 * geo::fiber_delay_ms(inst.surface_km) +
                              std::abs(round_rng.normal(1.0, 1.2));
            rec.hop_count = 3 + backbone.expected_hops(inst.surface_km) + 1;
            rec.instance_city = std::string(inst.city);
          }
          local.traceroutes.push_back(std::move(rec));
        }
      });
    }
    queue.run();
    probes_simulated.add(1);
    traceroutes_total.add(local.traceroutes.size());
    std::uint64_t hops = 0;
    for (const auto& t : local.traceroutes) {
      hops += static_cast<std::uint64_t>(t.hop_count);
    }
    hops_total.add(hops);
    sslcerts_total.add(local.sslcerts.size());
    return local;
  },
      "ripe.atlas");

  // Canonical merge: probe order, event-time order within a probe.
  for (auto& piece : campaign.run_with_report(config.threads, config.retry, nullptr)) {
    dataset.traceroutes.insert(dataset.traceroutes.end(),
                               std::make_move_iterator(piece.traceroutes.begin()),
                               std::make_move_iterator(piece.traceroutes.end()));
    dataset.sslcerts.insert(dataset.sslcerts.end(),
                            std::make_move_iterator(piece.sslcerts.begin()),
                            std::make_move_iterator(piece.sslcerts.end()));
  }
  return dataset;
}

std::vector<int> validated_probe_ids(const AtlasDataset& dataset) {
  std::map<int, std::pair<std::size_t, std::size_t>> counts;  // id -> (cgnat, total)
  for (const auto& t : dataset.traceroutes) {
    auto& c = counts[t.probe_id];
    if (t.via_cgnat) ++c.first;
    ++c.second;
  }
  std::vector<int> out;
  for (const auto& [id, c] : counts) {
    if (c.second > 0 && static_cast<double>(c.first) / static_cast<double>(c.second) > 0.5) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace satnet::ripe
