#include "prolific/census.hpp"

#include <algorithm>

#include "geo/places.hpp"

namespace satnet::prolific {

namespace {

struct SnoTesterPlan {
  const char* sno;
  std::size_t verified_count;   ///< how many pool members truly connect via it
  std::size_t listed_count;     ///< of those, how many prescreening knows about
  std::size_t willing_count;    ///< accept the addon job (paper: 10/5/5)
  /// Satisfaction weights for scores 1..5 (Fig 14's shapes: Starlink
  /// skews good/very good, HughesNet peaks at "ok", Viasat spreads low).
  std::array<double, 5> satisfaction;
  std::vector<std::pair<const char*, const char*>> homes;  ///< (city, country)
};

const std::vector<SnoTesterPlan>& plans() {
  static const std::vector<SnoTesterPlan> kPlans = {
      {"starlink", 22, 8, 10,
       {0.02, 0.03, 0.15, 0.45, 0.35},
       {{"seattle", "US"}, {"denver", "US"}, {"dallas", "US"}, {"atlanta", "US"},
        {"auckland", "NZ"}, {"chicago", "US"}, {"milan", "IT"}, {"london", "GB"},
        {"amsterdam", "NL"}, {"prague", "CZ"}, {"kansas city", "US"},
        {"toronto", "CA"}}},
      {"hughesnet", 17, 6, 5,
       {0.15, 0.25, 0.55, 0.05, 0.00},
       {{"atlanta", "US"}, {"dallas", "US"}, {"kansas city", "US"}}},
      {"viasat", 18, 6, 5,
       {0.20, 0.30, 0.18, 0.22, 0.10},
       {{"denver", "US"}, {"dallas", "US"}, {"atlanta", "US"}}},
  };
  return kPlans;
}

}  // namespace

TesterPool::TesterPool(PoolConfig config) {
  stats::Rng rng(config.seed);
  int next_id = 1;

  // Genuine SNO subscribers first.
  for (const auto& plan : plans()) {
    for (std::size_t i = 0; i < plan.verified_count; ++i) {
      Tester t;
      t.id = next_id++;
      t.sno = plan.sno;
      const auto& home = plan.homes[i % plan.homes.size()];
      const geo::GeoPoint anchor = geo::city_point(home.first);
      t.location = {anchor.lat_deg + rng.uniform(-1.0, 1.0),
                    anchor.lon_deg + rng.uniform(-1.0, 1.0), 0.0};
      t.country = home.second;
      t.connects_via_sno = true;
      t.prescreen_listed = i < plan.listed_count;
      t.accepts_jobs = i < plan.willing_count;
      t.satisfaction = 1 + static_cast<int>(rng.weighted_index(
                               {plan.satisfaction.begin(), plan.satisfaction.end()}));
      testers_.push_back(std::move(t));
    }
  }

  // Prescreening false positives: Prolific lists them as SNO subscribers
  // but their traffic arrives from terrestrial addresses.
  std::size_t listed_real = 0;
  for (const auto& plan : plans()) listed_real += plan.listed_count;
  const std::size_t false_listed = 160 - listed_real;
  for (std::size_t i = 0; i < false_listed; ++i) {
    Tester t;
    t.id = next_id++;
    t.sno = "";
    t.country = "US";
    t.location = geo::city_point("chicago");
    t.prescreen_listed = true;
    testers_.push_back(std::move(t));
  }

  // The anonymous rest of the census population.
  while (testers_.size() < config.population) {
    Tester t;
    t.id = next_id++;
    t.country = "US";
    testers_.push_back(std::move(t));
  }
}

CensusOutcome TesterPool::run_census(stats::Rng& rng) const {
  CensusOutcome out;
  out.open_participants = testers_.size();
  for (const auto& t : testers_) {
    if (t.prescreen_listed) {
      ++out.prescreen_claimed;
      // Genuine subscribers respond eagerly to an SNO survey; the
      // false-listed respond at the platform's base rate.
      const bool responds = t.connects_via_sno || rng.chance(0.075);
      if (responds) {
        ++out.prescreen_responded;
        if (t.connects_via_sno) ++out.prescreen_verified;
      }
    }
    if (t.connects_via_sno) {
      ++out.open_verified;
      ++out.verified_by_sno[t.sno];
    }
  }
  return out;
}

std::map<std::string, std::array<std::size_t, 5>> TesterPool::satisfaction_histogram()
    const {
  std::map<std::string, std::array<std::size_t, 5>> out;
  for (const auto& t : testers_) {
    if (!t.connects_via_sno) continue;
    auto& hist = out[t.sno];
    ++hist[static_cast<std::size_t>(std::clamp(t.satisfaction, 1, 5) - 1)];
  }
  return out;
}

std::vector<const Tester*> TesterPool::recruitable(const std::string& sno,
                                                   std::size_t max_count) const {
  std::vector<const Tester*> out;
  for (const auto& t : testers_) {
    if (t.sno == sno && t.connects_via_sno && t.accepts_jobs) {
      out.push_back(&t);
      if (out.size() >= max_count) break;
    }
  }
  return out;
}

}  // namespace satnet::prolific
