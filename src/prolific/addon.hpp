// The Chromium-addon experiment suite run by recruited Prolific testers
// (paper §6.1): fast.com speed test, CDN fetches of jquery(.min).js,
// Akamai H1/H2 demo-page loads, DNS lookups, and a 60-second YouTube
// session. One AddonRunReport corresponds to one weekly run of one
// tester; Figures 9-11 aggregate them.
#pragma once

#include <string>
#include <vector>

#include "geo/places.hpp"
#include "http/cdn.hpp"
#include "http/loader.hpp"
#include "prolific/census.hpp"
#include "synth/world.hpp"
#include "video/abr_player.hpp"

namespace satnet::prolific {

struct SpeedtestResult {
  double down_mbps = 0;
  double up_mbps = 0;
  double latency_ms = 0;  ///< fast.com's idle RTT to its nearest server
};

struct CdnResult {
  std::string cdn;
  double minified_ms = 0;  ///< jquery.min.js download time
  double regular_ms = 0;   ///< jquery.js download time
};

struct AkamaiResult {
  double h1_plt_ms = 0;
  double h2_plt_ms = 0;
  bool h1_timed_out = false;
};

struct AddonRunReport {
  int tester_id = 0;
  std::string sno;
  std::string country;
  geo::Continent continent = geo::Continent::north_america;
  SpeedtestResult speedtest;
  std::vector<CdnResult> cdn;  ///< one entry per provider
  AkamaiResult akamai;
  std::vector<double> dns_lookup_ms;  ///< uncached lookups only
  video::SessionStats youtube;
};

struct StudyConfig {
  std::size_t starlink_testers = 10;
  std::size_t hughesnet_testers = 5;
  std::size_t viasat_testers = 5;
  std::size_t runs_per_tester = 4;  ///< once a week for a month
  std::uint64_t seed = 31;
};

/// Executes one full addon run for a tester at time `t_sec`.
AddonRunReport run_addon_once(const synth::World& world, const Tester& tester,
                              double t_sec, stats::Rng& rng);

/// Recruits testers from the pool per the paper's quotas and runs the
/// month-long study.
std::vector<AddonRunReport> run_addon_study(const synth::World& world,
                                            const TesterPool& pool,
                                            const StudyConfig& config = StudyConfig{});

}  // namespace satnet::prolific
