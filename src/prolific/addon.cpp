#include "prolific/addon.hpp"

#include <cmath>

#include "dns/resolver.hpp"
#include "transport/tcp.hpp"

namespace satnet::prolific {

namespace {

/// Operator resolver deployments (verified via test.nextdns.io in the
/// paper): Starlink hands out Cloudflare at the PoP; HughesNet and Viasat
/// run their own recursive resolvers, Viasat's being markedly slower.
dns::ResolverConfig resolver_for(const std::string& sno) {
  if (sno == "starlink") return {true, 60.0, 0.35, 300.0};
  if (sno == "hughesnet") return {false, 80.0, 0.30, 300.0};
  return {false, 330.0, 0.30, 300.0};  // viasat
}

/// fast.com discards the slow-start ramp and reports the stable rate, so
/// the measurement is the delivery rate over the test's final quarter.
double stable_rate_mbps(const transport::FlowResult& r) {
  if (r.snapshots.size() < 8) return r.goodput_mbps;
  const auto& last = r.snapshots.back();
  const auto& anchor = r.snapshots[r.snapshots.size() * 3 / 4];
  const double dt_ms = last.t_ms - anchor.t_ms;
  if (dt_ms <= 0) return r.goodput_mbps;
  return static_cast<double>(last.bytes_acked - anchor.bytes_acked) * 8.0 /
         (dt_ms * 1e3);
}

SpeedtestResult run_speedtest(const synth::PathSample& path, stats::Rng& rng) {
  SpeedtestResult out;
  transport::TcpOptions tcp;
  transport::TcpFlow down(path.download, tcp, rng.fork("fast-down"));
  out.down_mbps = stable_rate_mbps(down.run_for(8000.0));
  transport::TcpFlow up(path.upload, tcp, rng.fork("fast-up"));
  out.up_mbps = stable_rate_mbps(up.run_for(8000.0));
  // fast.com reports the idle RTT to the serving edge, which is colocated
  // with the PoP (the paper infers this from the match with RIPE PoP
  // RTTs) — so the extra M-Lab-style server leg does not apply here.
  out.latency_ms = 2.0 * path.access_one_way_ms + std::abs(rng.normal(1.0, 2.0));
  return out;
}

}  // namespace

AddonRunReport run_addon_once(const synth::World& world, const Tester& tester,
                              double t_sec, stats::Rng& rng) {
  AddonRunReport report;
  report.tester_id = tester.id;
  report.sno = tester.sno;
  report.country = tester.country;
  report.continent = geo::continent_of(tester.country);

  stats::Rng sub_rng = rng.fork(tester.id);
  const synth::Subscriber sub =
      world.make_subscriber(tester.sno, tester.location, tester.country, sub_rng);
  synth::PathSample path = world.sample_path(sub, t_sec, sub_rng);
  if (!path.ok) {
    // Brief outage: the addon retries a minute later.
    path = world.sample_path(sub, t_sec + 60.0, sub_rng);
    if (!path.ok) return report;
  }

  // 1. Warm-up + speedtest (fast.com).
  report.speedtest = run_speedtest(path, sub_rng);

  // 2. CDN measurements: jquery.min.js then jquery.js through each
  //    provider (a DNS-primer fetch is discarded, as in the addon).
  for (const auto& provider : http::cdn_providers()) {
    CdnResult r;
    r.cdn = std::string(provider.name);
    r.minified_ms =
        http::cdn_fetch_ms(provider, http::JqueryVariant::minified, path.download, sub_rng);
    r.regular_ms =
        http::cdn_fetch_ms(provider, http::JqueryVariant::regular, path.download, sub_rng);
    report.cdn.push_back(std::move(r));
  }

  // 3. Akamai demo page over HTTP/1.1 and HTTP/2.
  const http::WebPage demo = http::akamai_demo_page();
  const auto h1 = http::load_page(demo, http::HttpVersion::h1, path.download, sub_rng);
  const auto h2 = http::load_page(demo, http::HttpVersion::h2, path.download, sub_rng);
  report.akamai = {h1.plt_ms, h2.plt_ms, h1.timed_out};

  // 4. DNS lookups against unpopular short-TTL domains; cached entries
  //    are filtered like the paper filters sub-RTT lookups.
  dns::Resolver resolver(resolver_for(tester.sno), sub_rng.fork("dns"));
  const char* domains[] = {"demo.akamai.example",  "census.ourserver.example",
                           "h2demo.akamai.example", "img.akamai.example",
                           "stats.ourserver.example", "cdn.probe.example"};
  for (const char* domain : domains) {
    const auto r = resolver.lookup(domain, t_sec, path.download.base_rtt_ms);
    if (!r.cache_hit) report.dns_lookup_ms.push_back(r.time_ms);
  }

  // 5. 60-second YouTube session.
  report.youtube = video::play_session(path.download, sub_rng);
  return report;
}

std::vector<AddonRunReport> run_addon_study(const synth::World& world,
                                            const TesterPool& pool,
                                            const StudyConfig& config) {
  std::vector<AddonRunReport> reports;
  stats::Rng rng(config.seed);

  const std::pair<std::string, std::size_t> quotas[] = {
      {"starlink", config.starlink_testers},
      {"hughesnet", config.hughesnet_testers},
      {"viasat", config.viasat_testers},
  };
  for (const auto& [sno, quota] : quotas) {
    for (const Tester* tester : pool.recruitable(sno, quota)) {
      for (std::size_t run = 0; run < config.runs_per_tester; ++run) {
        // Weekly runs on random days/times across a month.
        const double t = (static_cast<double>(run) * 7.0 + rng.uniform(0.0, 5.0)) * 86400.0;
        reports.push_back(run_addon_once(world, *tester, t, rng));
      }
    }
  }
  return reports;
}

}  // namespace satnet::prolific
