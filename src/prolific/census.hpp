// Prolific tester pool, prescreening, and the census funnel (paper §3.3,
// Figure 14).
//
// Prolific's ISP prescreening is only partially reliable: testers sign up
// at home but answer surveys from work or a phone. The pool models that
// gap, and the census reproduces the paper's two campaigns:
//  (1) prescreened: 160 claimed SNO subscribers -> 30 survey respondents
//      -> 20 verified by source IP;
//  (2) open census with IP-based access control: 14,371 participants ->
//      57 actually connected via Starlink / HughesNet / Viasat.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "stats/rng.hpp"

namespace satnet::prolific {

struct Tester {
  int id = 0;
  std::string sno;       ///< "starlink" / "hughesnet" / "viasat" / "" (none)
  std::string country;
  geo::GeoPoint location;
  int satisfaction = 3;  ///< 1 (very poor) .. 5 (very good)
  bool prescreen_listed = false;  ///< Prolific's prescreening flags them
  bool connects_via_sno = false;  ///< source IP verifies the SNO
  bool accepts_jobs = false;      ///< willing to install the addon
};

struct PoolConfig {
  std::size_t population = 14371;  ///< census participants (paper's volume)
  std::uint64_t seed = 23;
};

/// Funnel counters for both recruitment strategies.
struct CensusOutcome {
  std::size_t prescreen_claimed = 0;    ///< 160 in the paper
  std::size_t prescreen_responded = 0;  ///< 30
  std::size_t prescreen_verified = 0;   ///< 20
  std::size_t open_participants = 0;    ///< 14,371
  std::size_t open_verified = 0;        ///< 57
  std::map<std::string, std::size_t> verified_by_sno;
};

class TesterPool {
 public:
  explicit TesterPool(PoolConfig config = PoolConfig{});

  const std::vector<Tester>& testers() const { return testers_; }

  /// Runs both recruitment funnels.
  CensusOutcome run_census(stats::Rng& rng) const;

  /// Satisfaction histogram per SNO over verified subscribers
  /// (Figure 14): counts indexed 0..4 for scores 1..5.
  std::map<std::string, std::array<std::size_t, 5>> satisfaction_histogram() const;

  /// Verified + willing testers of one SNO — the addon-study recruits.
  std::vector<const Tester*> recruitable(const std::string& sno,
                                         std::size_t max_count) const;

 private:
  std::vector<Tester> testers_;
};

}  // namespace satnet::prolific
