#include "snoid/tcptrace.hpp"

#include <algorithm>

#include "stats/summary.hpp"

namespace satnet::snoid {

std::string_view to_string(RetransProfile p) {
  switch (p) {
    case RetransProfile::clean: return "clean";
    case RetransProfile::loss_driven: return "loss-driven";
    case RetransProfile::timeout_driven: return "timeout-driven";
  }
  return "?";
}

TraceAnalysis analyze_trace(std::span<const transport::TcpInfoSnapshot> snapshots,
                            const TraceAnalysisOptions& opt) {
  TraceAnalysis out;
  if (snapshots.size() < 2) return out;

  const auto& last = snapshots.back();
  out.total_retrans_bytes = last.bytes_retrans;
  out.retrans_fraction =
      last.bytes_sent > 0
          ? static_cast<double>(last.bytes_retrans) / static_cast<double>(last.bytes_sent)
          : 0.0;
  out.goodput_mbps =
      last.t_ms > 0 ? static_cast<double>(last.bytes_acked) * 8.0 / (last.t_ms * 1e3)
                    : 0.0;

  // Pass 1: maximal intervals with no ack progress ("stalls"). During an
  // RTO the sender idles, so the snapshots following the retransmission
  // delta are flat in bytes_acked.
  struct Stall {
    double t_start_ms;
    double t_end_ms;
  };
  std::vector<Stall> stalls;
  {
    double stall_start = snapshots.front().t_ms;
    std::uint64_t last_acked = snapshots.front().bytes_acked;
    for (std::size_t i = 1; i < snapshots.size(); ++i) {
      if (snapshots[i].bytes_acked > last_acked) {
        if (snapshots[i].t_ms - stall_start > 0) {
          stalls.push_back({stall_start, snapshots[i].t_ms});
        }
        last_acked = snapshots[i].bytes_acked;
        stall_start = snapshots[i].t_ms;
      }
    }
    stalls.push_back({stall_start, snapshots.back().t_ms});
    for (const auto& s : stalls) {
      out.longest_ack_stall_ms =
          std::max(out.longest_ack_stall_ms, s.t_end_ms - s.t_start_ms);
    }
  }

  // Pass 2: group consecutive retransmitting snapshot intervals into
  // episodes. Counters can already be nonzero at the first poll
  // (retransmissions before snapshotting caught up); a leading episode
  // owns those bytes so episode bytes always sum to the trace total.
  if (snapshots.front().bytes_retrans > 0) {
    out.episodes.push_back(
        {snapshots.front().t_ms, snapshots.front().t_ms, snapshots.front().bytes_retrans,
         false});
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    const std::uint64_t d_retrans =
        snapshots[i].bytes_retrans - snapshots[i - 1].bytes_retrans;
    if (d_retrans == 0) continue;
    if (!out.episodes.empty() &&
        out.episodes.back().t_end_ms >= snapshots[i - 1].t_ms) {
      out.episodes.back().t_end_ms = snapshots[i].t_ms;
      out.episodes.back().bytes += d_retrans;
    } else {
      out.episodes.push_back({snapshots[i - 1].t_ms, snapshots[i].t_ms, d_retrans, false});
    }
  }

  // Pass 3: an episode is timeout-like when a long stall overlaps or
  // immediately follows it (the sender goes quiet for the RTO around the
  // go-back-N burst). "Long" scales with the path RTT: on a 650 ms GEO
  // path an ordinary ack round already takes ~650 ms, so only gaps well
  // beyond one smoothed RTT count as timeouts.
  double srtt_med = 0;
  {
    std::vector<double> srtts;
    for (const auto& s : snapshots) {
      if (s.rtt_ms > 0) srtts.push_back(s.rtt_ms);
    }
    if (!srtts.empty()) srtt_med = stats::median(srtts);
  }
  const double stall_threshold =
      std::max(opt.stall_threshold_ms, 1.8 * srtt_med + 200.0);
  for (auto& e : out.episodes) {
    for (const auto& s : stalls) {
      const double overlap_start = std::max(e.t_start_ms, s.t_start_ms);
      const double overlap_end =
          std::min(e.t_end_ms + stall_threshold + 200.0, s.t_end_ms);
      if (overlap_end > overlap_start &&
          s.t_end_ms - s.t_start_ms >= stall_threshold) {
        e.timeout_like = true;
        break;
      }
    }
  }

  // Classification.
  if (out.retrans_fraction < opt.clean_fraction) {
    out.profile = RetransProfile::clean;
    return out;
  }
  std::uint64_t timeout_bytes = 0, episode_bytes = 0;
  for (const auto& e : out.episodes) {
    episode_bytes += e.bytes;
    if (e.timeout_like) timeout_bytes += e.bytes;
  }
  const double share = episode_bytes > 0 ? static_cast<double>(timeout_bytes) /
                                               static_cast<double>(episode_bytes)
                                         : 0.0;
  out.profile = share >= opt.timeout_share ? RetransProfile::timeout_driven
                                           : RetransProfile::loss_driven;
  return out;
}

}  // namespace satnet::snoid
