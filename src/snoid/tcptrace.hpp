// In-depth TCP trace analysis (the paper's §7 future work: "a more
// in-depth analysis of TCP traces to thoroughly examine retransmission
// rates").
//
// Works on the TCP_Info snapshot sequences the M-Lab server records:
// reconstructs retransmission episodes, distinguishes fast-recovery
// (loss-driven) from timeout-driven behaviour via the ack-progress
// stalls around each episode, and classifies a flow's retransmission
// profile. Applied per orbit, this separates *why* GEO links retransmit
// (RTO/go-back-N) from why LEO links do (handoff loss bursts).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "transport/tcp.hpp"

namespace satnet::snoid {

/// One contiguous burst of retransmissions in a trace.
struct RetransEpisode {
  double t_start_ms = 0;
  double t_end_ms = 0;
  std::uint64_t bytes = 0;
  /// True when ack progress stalled around the episode for at least an
  /// RTO's worth of time — the signature of timeout recovery.
  bool timeout_like = false;
};

/// Flow-level retransmission character.
enum class RetransProfile {
  clean,           ///< negligible retransmissions
  loss_driven,     ///< many small fast-recovery episodes
  timeout_driven,  ///< few large episodes with ack stalls (RTO/go-back-N)
};

std::string_view to_string(RetransProfile p);

struct TraceAnalysis {
  std::vector<RetransEpisode> episodes;
  std::uint64_t total_retrans_bytes = 0;
  double retrans_fraction = 0;     ///< of bytes sent over the whole trace
  double longest_ack_stall_ms = 0; ///< longest window with no ack progress
  double goodput_mbps = 0;
  RetransProfile profile = RetransProfile::clean;
};

struct TraceAnalysisOptions {
  /// Ack stalls at least this long mark an episode timeout-like.
  double stall_threshold_ms = 900.0;
  /// Flows below this retransmitted-byte fraction are "clean".
  double clean_fraction = 0.005;
  /// A profile is timeout_driven when at least this share of
  /// retransmitted bytes sits in timeout-like episodes.
  double timeout_share = 0.5;
};

/// Analyzes one snapshot sequence (must be time-ordered, as TcpFlow
/// produces them).
TraceAnalysis analyze_trace(std::span<const transport::TcpInfoSnapshot> snapshots,
                            const TraceAnalysisOptions& options = TraceAnalysisOptions{});

}  // namespace satnet::snoid
