// Step 3 of the pipeline: per-ASN latency-profile validation via KDE.
//
// An ASN claiming LEO service whose density peaks at terrestrial
// latencies (Starlink's corporate AS27277) is incompatible; an ASN whose
// density has significant mass both in and out of the declared window
// (TelAlaska's urban wireline + rural satellite) is mixed and goes to
// prefix filtering; everything else is clean.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bgp/as_graph.hpp"
#include "orbit/shell.hpp"

namespace satnet::snoid {

enum class AsnClass {
  clean,         ///< latency profile matches the declared technology
  mixed,         ///< technology-compatible mass plus foreign mass
  incompatible,  ///< profile contradicts the declared technology
  no_data,       ///< too few tests to judge
};

std::string to_string(AsnClass c);

struct AsnVerdict {
  bgp::Asn asn = 0;
  AsnClass cls = AsnClass::no_data;
  std::size_t n_tests = 0;
  double main_peak_ms = 0;      ///< tallest KDE peak location
  double in_window_mass = 0;    ///< probability mass inside the tech window
  bool multimodal = false;
};

/// Classifies one ASN's latency sample against a declared technology.
/// Window semantics: [min_peak, window_max) for LEO; [meo_min, meo_max)
/// for MEO; [geo_min, inf) for GEO; for multi-orbit operators the union
/// of the MEO and GEO windows.
struct TechWindow {
  double lo_ms = 0;
  double hi_ms = 1e9;
  double lo2_ms = 0;  ///< second window (multi-orbit); 0 width disables
  double hi2_ms = 0;

  bool contains(double v) const {
    return (v >= lo_ms && v < hi_ms) || (hi2_ms > lo2_ms && v >= lo2_ms && v < hi2_ms);
  }
};

AsnVerdict classify_asn(bgp::Asn asn, std::span<const double> latencies,
                        const TechWindow& window, std::size_t min_tests = 10,
                        double clean_mass = 0.9, double incompatible_mass = 0.5);

}  // namespace satnet::snoid
