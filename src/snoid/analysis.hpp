// Cross-orbit analytics over pipeline-retained tests (paper §4):
// latency boxplots per SNO (Fig 3c), daily latency series (Fig 4a),
// jitter variability per orbit (Fig 4b), and retransmission groups
// including the PEP split (Fig 4c).
#pragma once

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mlab/dataset.hpp"
#include "snoid/pipeline.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace satnet::snoid {

/// Operators known (from datasheets, as in the paper's footnote 1) to
/// deploy Performance Enhancing Proxies.
std::span<const std::string_view> pep_operators();
bool is_pep_operator(std::string_view name);

/// Record indices retained by the pipeline, grouped by declared orbit.
std::map<orbit::OrbitClass, std::vector<std::size_t>> retained_by_orbit(
    const PipelineResult& result);

/// The paper's jitter-variability metric per record:
/// jitter_p95 / latency_p5.
std::vector<double> jitter_variability(const mlab::NdtDataset& dataset,
                                       const std::vector<std::size_t>& subset);

/// Retransmission fractions split the way Figure 4c groups them.
struct RetransmissionGroups {
  std::vector<double> leo;
  std::vector<double> meo;
  std::vector<double> geo_pep;     ///< HughesNet, Viasat, Eutelsat, Avanti
  std::vector<double> geo_others;
};
RetransmissionGroups retransmission_groups(const mlab::NdtDataset& dataset,
                                           const PipelineResult& result);

/// Per-operator latency boxplots over retained tests, ordered by median
/// (Fig 3c's layout).
std::vector<std::pair<std::string, stats::Boxplot>> latency_boxplots(
    const mlab::NdtDataset& dataset, const PipelineResult& result);

/// Daily median latency for one operator (Fig 4a's series).
std::vector<stats::Bucket> daily_latency_series(const mlab::NdtDataset& dataset,
                                                const PipelineResult& result,
                                                const std::string& operator_name);

/// Latency boxplots per client country for one operator's retained tests
/// — the paper's §4 consistency observation: Starlink performs uniformly
/// worldwide while OneWeb is skewed toward North America.
std::vector<std::pair<std::string, stats::Boxplot>> latency_by_country(
    const mlab::NdtDataset& dataset, const PipelineResult& result,
    const std::string& operator_name, std::size_t min_tests = 5);

/// Dataset-level confusion matrix of the pipeline viewed as a binary
/// classifier ("this speed test crossed a satellite"): a record is
/// predicted positive when any operator retained it. The paper could not
/// compute this for lack of ground truth (§3.4).
struct ConfusionMatrix {
  std::size_t true_positive = 0;   ///< retained, truly satellite
  std::size_t false_positive = 0;  ///< retained, actually terrestrial
  std::size_t false_negative = 0;  ///< satellite test the pipeline dropped
  std::size_t true_negative = 0;   ///< terrestrial test correctly dropped

  double precision() const {
    const auto d = true_positive + false_positive;
    return d ? static_cast<double>(true_positive) / static_cast<double>(d) : 0.0;
  }
  double recall() const {
    const auto d = true_positive + false_negative;
    return d ? static_cast<double>(true_positive) / static_cast<double>(d) : 0.0;
  }
  double false_positive_rate() const {
    const auto d = false_positive + true_negative;
    return d ? static_cast<double>(false_positive) / static_cast<double>(d) : 0.0;
  }
};

ConfusionMatrix confusion_matrix(const mlab::NdtDataset& dataset,
                                 const PipelineResult& result);

/// Cross-country consistency score: the interquartile range of the
/// per-country medians divided by the operator's global median (robust to
/// single-country outliers like Starlink's Philippines detour). Lower is
/// more consistent.
double country_consistency_spread(const mlab::NdtDataset& dataset,
                                  const PipelineResult& result,
                                  const std::string& operator_name);

}  // namespace satnet::snoid
