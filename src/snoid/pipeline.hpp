// The paper's core contribution: identifying SNO measurements in public
// datasets (Figure 1's pipeline).
//
//   step 1   ASdb "Satellite Communication" category  -> candidate ASNs
//   step 1b  HE BGP search for well-known operator names (fills ASdb's
//            gaps: Starlink, Viasat)
//   step 2   IPInfo + website curation -> ASN-to-SNO map with declared
//            access technology (drops cable TV / teleport / navigation
//            look-alikes)
//   step 3   KDE validation of per-ASN latency profiles against the
//            declared technology (drops AS27277-style corporate networks,
//            flags mixed-access ASNs)
//   step 3b  strict /24 prefix filtering (MEO > 200 ms, GEO > 500 ms, at
//            least 10 tests, *every* test within the filter)
//   step 3c  relaxation: per-operator minimum-latency threshold learned
//            from the strict prefixes (fallback: the minimum across
//            covered operators)
//   step 4   final accumulation per operator
//
// Because the dataset is synthetic with known ground truth, every
// operator result also carries precision/recall of the retained tests —
// the evaluation the paper itself could not run (§3.4 "lack of ground
// truth").
#pragma once

#include <string>
#include <vector>

#include "mlab/dataset.hpp"
#include "orbit/shell.hpp"
#include "runtime/sharded.hpp"
#include "snoid/validation.hpp"

namespace satnet::snoid {

struct PipelineConfig {
  /// Step-3 KDE plausibility: minimum main-peak latency per technology.
  double leo_min_peak_ms = 35.0;
  double meo_min_peak_ms = 170.0;
  double geo_min_peak_ms = 430.0;
  /// LEO/MEO retention windows once an ASN is validated.
  double leo_window_max_ms = 320.0;
  double meo_window_min_ms = 180.0;
  double meo_window_max_ms = 480.0;
  /// Step-3b strict prefix filters (the paper's 200 / 500 ms).
  double meo_strict_ms = 200.0;
  double geo_strict_ms = 500.0;
  std::size_t min_tests_per_prefix = 10;
  /// KDE settings for validation.
  std::size_t kde_grid_points = 256;
  /// Worker threads for the per-operator validation/filtering shards;
  /// 0 = hardware_concurrency. Results are identical for every value.
  unsigned threads = 0;
  /// Failure policy for the sharded runtime (retry/degrade).
  runtime::RetryPolicy retry;
};

/// Decision about one /24 during strict filtering.
struct PrefixDecision {
  net::Prefix24 prefix;
  std::size_t n_tests = 0;
  double min_latency_ms = 0;
  double median_latency_ms = 0;
  bool retained_strict = false;
  const char* reason = "";  ///< why it was dropped, for reporting
};

/// Final outcome for one operator.
struct OperatorResult {
  std::string name;
  orbit::OrbitClass declared_orbit = orbit::OrbitClass::geo;
  bool multi_orbit = false;
  std::vector<AsnVerdict> asn_verdicts;
  std::vector<PrefixDecision> prefixes;
  bool covered_by_strict = false;
  double relax_threshold_ms = 0;    ///< latency floor used in relaxation
  std::vector<std::size_t> retained;  ///< record indices in the dataset
  // Ground-truth scoring (the reproduction's extension).
  std::size_t retained_truly_satellite = 0;
  std::size_t total_truly_satellite = 0;

  bool identified() const { return !retained.empty(); }
  double precision() const {
    return retained.empty() ? 0.0
                            : static_cast<double>(retained_truly_satellite) /
                                  static_cast<double>(retained.size());
  }
  double recall() const {
    return total_truly_satellite == 0
               ? 0.0
               : static_cast<double>(retained_truly_satellite) /
                     static_cast<double>(total_truly_satellite);
  }
};

struct PipelineResult {
  std::vector<OperatorResult> operators;  ///< curated operators, all steps
  std::size_t asdb_category_asns = 0;     ///< step-1 candidate count
  std::size_t he_added_asns = 0;
  std::size_t curated_operators = 0;      ///< after manual curation (41-ish)
  std::size_t identified_operators = 0;   ///< with retained tests (18-ish)
  double fallback_threshold_ms = 0;       ///< relaxation fallback (527-ish)
};

/// Runs the full pipeline over an M-Lab-style dataset. The per-ASN KDE
/// validation and per-/24 strict filtering (steps 3/3b) are independent
/// per operator and run sharded on the runtime thread pool; the
/// cross-operator relaxation (step 3c) stays serial. Deterministic in
/// the dataset — never in thread count.
PipelineResult run_pipeline(const mlab::NdtDataset& dataset,
                            const PipelineConfig& config = PipelineConfig{});

/// Renders the per-operator outcome as a Table-1-style text block.
std::string describe(const PipelineResult& result);

}  // namespace satnet::snoid
