// Starlink infrastructure analytics over the RIPE Atlas dataset
// (paper §5): per-country PoP RTT (Fig 6a, 8a), RTT/hops to the DNS
// roots (Fig 6b/6c), probe->PoP association history (Fig 7), and
// PoP-migration detection from RTT time series (Fig 8b).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ripe/atlas.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace satnet::snoid {

/// Summary of one probe's (or country's/state's) RTT sample.
struct RttSummary {
  std::string key;  ///< country code or state code
  stats::Boxplot rtt;
};

/// Probe->PoP (CGNAT) RTT grouped by country, validated probes only,
/// optionally restricted to (or excluding) the US.
std::vector<RttSummary> pop_rtt_by_country(const ripe::AtlasDataset& dataset,
                                           bool us_only);

/// US probes grouped by state (Fig 8a).
std::vector<RttSummary> pop_rtt_by_us_state(const ripe::AtlasDataset& dataset);

/// Destination RTT / hop count to the roots, by country (Fig 6b/6c).
std::vector<RttSummary> root_rtt_by_country(const ripe::AtlasDataset& dataset);
std::map<std::string, stats::Summary> root_hops_by_country(
    const ripe::AtlasDataset& dataset);

/// One probe's PoP association interval (Fig 7's green/red links).
struct PopAssociation {
  int probe_id = 0;
  std::string country;
  std::string pop_name;
  double first_day = 0;
  double last_day = 0;
  std::size_t n_traceroutes = 0;
};
std::vector<PopAssociation> pop_association_history(const ripe::AtlasDataset& dataset);

/// A detected PoP migration: an RTT mean shift co-occurring with a PoP
/// name change (Fig 8b's events).
struct PopMigration {
  int probe_id = 0;
  std::string country;
  double day = 0;
  std::string from_pop;
  std::string to_pop;
  double rtt_before_ms = 0;
  double rtt_after_ms = 0;
};
std::vector<PopMigration> detect_pop_migrations(const ripe::AtlasDataset& dataset);

}  // namespace satnet::snoid
