#include "snoid/analysis.hpp"

#include <algorithm>
#include <array>

namespace satnet::snoid {

namespace {
constexpr std::array<std::string_view, 4> kPepOperators = {"hughesnet", "viasat",
                                                           "eutelsat", "avanti"};

const OperatorResult* find_operator(const PipelineResult& result,
                                    const std::string& name) {
  for (const auto& op : result.operators) {
    if (op.name == name) return &op;
  }
  return nullptr;
}
}  // namespace

std::span<const std::string_view> pep_operators() { return kPepOperators; }

bool is_pep_operator(std::string_view name) {
  return std::find(kPepOperators.begin(), kPepOperators.end(), name) !=
         kPepOperators.end();
}

std::map<orbit::OrbitClass, std::vector<std::size_t>> retained_by_orbit(
    const PipelineResult& result) {
  std::map<orbit::OrbitClass, std::vector<std::size_t>> out;
  for (const auto& op : result.operators) {
    auto& bucket = out[op.declared_orbit];
    bucket.insert(bucket.end(), op.retained.begin(), op.retained.end());
  }
  return out;
}

std::vector<double> jitter_variability(const mlab::NdtDataset& dataset,
                                       const std::vector<std::size_t>& subset) {
  std::vector<double> out;
  out.reserve(subset.size());
  for (const std::size_t i : subset) {
    const auto& r = dataset.records()[i];
    if (r.latency_p5_ms > 0) out.push_back(r.jitter_p95_ms / r.latency_p5_ms);
  }
  return out;
}

RetransmissionGroups retransmission_groups(const mlab::NdtDataset& dataset,
                                           const PipelineResult& result) {
  RetransmissionGroups g;
  for (const auto& op : result.operators) {
    std::vector<double>* dst = nullptr;
    switch (op.declared_orbit) {
      case orbit::OrbitClass::leo: dst = &g.leo; break;
      case orbit::OrbitClass::meo:
        dst = op.multi_orbit ? &g.meo : &g.meo;
        break;
      case orbit::OrbitClass::geo:
        dst = is_pep_operator(op.name) ? &g.geo_pep : &g.geo_others;
        break;
    }
    for (const std::size_t i : op.retained) {
      dst->push_back(dataset.records()[i].retrans_frac);
    }
  }
  return g;
}

std::vector<std::pair<std::string, stats::Boxplot>> latency_boxplots(
    const mlab::NdtDataset& dataset, const PipelineResult& result) {
  std::vector<std::pair<std::string, stats::Boxplot>> out;
  for (const auto& op : result.operators) {
    if (op.retained.empty()) continue;
    const auto lat = dataset.field(op.retained, &mlab::NdtRecord::latency_p5_ms);
    out.emplace_back(op.name, stats::boxplot(lat));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.median < b.second.median;
  });
  return out;
}

ConfusionMatrix confusion_matrix(const mlab::NdtDataset& dataset,
                                 const PipelineResult& result) {
  std::vector<bool> retained(dataset.size(), false);
  for (const auto& op : result.operators) {
    for (const std::size_t i : op.retained) retained[i] = true;
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const bool truth = dataset.records()[i].truth_satellite;
    if (retained[i] && truth) ++cm.true_positive;
    else if (retained[i] && !truth) ++cm.false_positive;
    else if (!retained[i] && truth) ++cm.false_negative;
    else ++cm.true_negative;
  }
  return cm;
}

std::vector<std::pair<std::string, stats::Boxplot>> latency_by_country(
    const mlab::NdtDataset& dataset, const PipelineResult& result,
    const std::string& operator_name, std::size_t min_tests) {
  std::vector<std::pair<std::string, stats::Boxplot>> out;
  const OperatorResult* op = find_operator(result, operator_name);
  if (!op) return out;
  std::map<std::string, std::vector<double>> by_country;
  for (const std::size_t i : op->retained) {
    const auto& r = dataset.records()[i];
    by_country[r.country].push_back(r.latency_p5_ms);
  }
  for (auto& [country, values] : by_country) {
    if (values.size() < min_tests) continue;
    out.emplace_back(country, stats::boxplot(values));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.median < b.second.median;
  });
  return out;
}

double country_consistency_spread(const mlab::NdtDataset& dataset,
                                  const PipelineResult& result,
                                  const std::string& operator_name) {
  const auto rows = latency_by_country(dataset, result, operator_name, 3);
  if (rows.size() < 2) return 0.0;
  std::vector<double> medians;
  medians.reserve(rows.size());
  for (const auto& [country, box] : rows) medians.push_back(box.median);
  const OperatorResult* op = find_operator(result, operator_name);
  const auto all = dataset.field(op->retained, &mlab::NdtRecord::latency_p5_ms);
  const double global_median = stats::median(all);
  if (global_median <= 0) return 0.0;
  return (stats::percentile(medians, 75) - stats::percentile(medians, 25)) /
         global_median;
}

std::vector<stats::Bucket> daily_latency_series(const mlab::NdtDataset& dataset,
                                                const PipelineResult& result,
                                                const std::string& operator_name) {
  const OperatorResult* op = find_operator(result, operator_name);
  if (!op) return {};
  std::vector<stats::Observation> obs;
  obs.reserve(op->retained.size());
  for (const std::size_t i : op->retained) {
    const auto& r = dataset.records()[i];
    obs.push_back({r.t_sec, r.latency_p5_ms});
  }
  std::sort(obs.begin(), obs.end(),
            [](const auto& a, const auto& b) { return a.t_sec < b.t_sec; });
  return stats::bucketize(obs, 86400.0);
}

}  // namespace satnet::snoid
