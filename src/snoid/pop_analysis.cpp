#include "snoid/pop_analysis.hpp"

#include <algorithm>
#include <set>

namespace satnet::snoid {

namespace {

/// Probe lookup and validation set, shared by all analyses.
struct Context {
  std::map<int, const ripe::Probe*> probes;
  std::set<int> validated;

  explicit Context(const ripe::AtlasDataset& dataset) {
    for (const auto& p : dataset.probes) probes[p.id] = &p;
    for (const int id : ripe::validated_probe_ids(dataset)) validated.insert(id);
  }
  const ripe::Probe* probe(int id) const {
    const auto it = probes.find(id);
    return it == probes.end() ? nullptr : it->second;
  }
  bool valid(int id) const { return validated.count(id) > 0; }
};

std::vector<RttSummary> summarize_groups(std::map<std::string, std::vector<double>> groups) {
  std::vector<RttSummary> out;
  for (auto& [key, values] : groups) {
    if (values.empty()) continue;
    out.push_back({key, stats::boxplot(values)});
  }
  std::sort(out.begin(), out.end(), [](const RttSummary& a, const RttSummary& b) {
    return a.rtt.median < b.rtt.median;
  });
  return out;
}

}  // namespace

std::vector<RttSummary> pop_rtt_by_country(const ripe::AtlasDataset& dataset,
                                           bool us_only) {
  const Context ctx(dataset);
  std::map<std::string, std::vector<double>> groups;
  for (const auto& t : dataset.traceroutes) {
    if (!t.via_cgnat || !ctx.valid(t.probe_id)) continue;
    const ripe::Probe* p = ctx.probe(t.probe_id);
    if (!p || (p->country == "US") != us_only) continue;
    groups[p->country].push_back(t.cgnat_rtt_ms);
  }
  return summarize_groups(std::move(groups));
}

std::vector<RttSummary> pop_rtt_by_us_state(const ripe::AtlasDataset& dataset) {
  const Context ctx(dataset);
  std::map<std::string, std::vector<double>> groups;
  for (const auto& t : dataset.traceroutes) {
    if (!t.via_cgnat || !ctx.valid(t.probe_id)) continue;
    const ripe::Probe* p = ctx.probe(t.probe_id);
    if (!p || p->country != "US" || p->us_state.empty()) continue;
    groups[p->us_state].push_back(t.cgnat_rtt_ms);
  }
  return summarize_groups(std::move(groups));
}

std::vector<RttSummary> root_rtt_by_country(const ripe::AtlasDataset& dataset) {
  const Context ctx(dataset);
  std::map<std::string, std::vector<double>> groups;
  for (const auto& t : dataset.traceroutes) {
    if (!t.via_cgnat || !ctx.valid(t.probe_id)) continue;
    const ripe::Probe* p = ctx.probe(t.probe_id);
    if (!p || p->country == "US") continue;  // Fig 6b is rest-of-world
    groups[p->country].push_back(t.dest_rtt_ms);
  }
  return summarize_groups(std::move(groups));
}

std::map<std::string, stats::Summary> root_hops_by_country(
    const ripe::AtlasDataset& dataset) {
  const Context ctx(dataset);
  std::map<std::string, std::vector<double>> groups;
  for (const auto& t : dataset.traceroutes) {
    if (!t.via_cgnat || !ctx.valid(t.probe_id)) continue;
    const ripe::Probe* p = ctx.probe(t.probe_id);
    if (!p || p->country == "US") continue;
    groups[p->country].push_back(static_cast<double>(t.hop_count));
  }
  std::map<std::string, stats::Summary> out;
  for (auto& [key, values] : groups) out[key] = stats::summarize(values);
  return out;
}

std::vector<PopAssociation> pop_association_history(const ripe::AtlasDataset& dataset) {
  const Context ctx(dataset);
  // (probe, pop) -> [first, last, count]
  std::map<std::pair<int, std::string>, PopAssociation> assoc;
  for (const auto& t : dataset.traceroutes) {
    if (!t.via_cgnat || !ctx.valid(t.probe_id) || t.pop_name.empty()) continue;
    const double day = t.t_sec / 86400.0;
    auto& a = assoc[{t.probe_id, t.pop_name}];
    if (a.n_traceroutes == 0) {
      a.probe_id = t.probe_id;
      const ripe::Probe* p = ctx.probe(t.probe_id);
      a.country = p ? p->country : "?";
      a.pop_name = t.pop_name;
      a.first_day = day;
      a.last_day = day;
    }
    a.first_day = std::min(a.first_day, day);
    a.last_day = std::max(a.last_day, day);
    ++a.n_traceroutes;
  }
  std::vector<PopAssociation> out;
  out.reserve(assoc.size());
  for (auto& [key, a] : assoc) out.push_back(std::move(a));
  std::sort(out.begin(), out.end(), [](const PopAssociation& a, const PopAssociation& b) {
    if (a.probe_id != b.probe_id) return a.probe_id < b.probe_id;
    return a.first_day < b.first_day;
  });
  return out;
}

std::vector<PopMigration> detect_pop_migrations(const ripe::AtlasDataset& dataset) {
  const Context ctx(dataset);
  // Build per-probe PoP-RTT time series, sorted by time.
  struct Sample {
    double t_sec;
    double rtt;
    std::string pop;
  };
  std::map<int, std::vector<Sample>> series;
  for (const auto& t : dataset.traceroutes) {
    if (!t.via_cgnat || !ctx.valid(t.probe_id) || t.pop_name.empty()) continue;
    series[t.probe_id].push_back({t.t_sec, t.cgnat_rtt_ms, t.pop_name});
  }

  std::vector<PopMigration> out;
  for (auto& [probe_id, samples] : series) {
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.t_sec < b.t_sec; });
    // PoP change epochs directly from the name sequence; the RTT shift is
    // read from windows on either side.
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].pop == samples[i - 1].pop) continue;
      constexpr std::size_t kWin = 20;
      const std::size_t lo = i >= kWin ? i - kWin : 0;
      const std::size_t hi = std::min(samples.size(), i + kWin);
      std::vector<double> before, after;
      for (std::size_t k = lo; k < i; ++k) before.push_back(samples[k].rtt);
      for (std::size_t k = i; k < hi; ++k) after.push_back(samples[k].rtt);
      PopMigration m;
      m.probe_id = probe_id;
      const ripe::Probe* p = ctx.probe(probe_id);
      m.country = p ? p->country : "?";
      m.day = samples[i].t_sec / 86400.0;
      m.from_pop = samples[i - 1].pop;
      m.to_pop = samples[i].pop;
      m.rtt_before_ms = stats::median(before);
      m.rtt_after_ms = stats::median(after);
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace satnet::snoid
