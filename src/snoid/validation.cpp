#include "snoid/validation.hpp"

#include <algorithm>
#include <cmath>

#include "stats/kde.hpp"

namespace satnet::snoid {

std::string to_string(AsnClass c) {
  switch (c) {
    case AsnClass::clean: return "clean";
    case AsnClass::mixed: return "mixed";
    case AsnClass::incompatible: return "incompatible";
    case AsnClass::no_data: return "no-data";
  }
  return "?";
}

AsnVerdict classify_asn(bgp::Asn asn, std::span<const double> latencies,
                        const TechWindow& window, std::size_t min_tests,
                        double clean_mass, double incompatible_mass) {
  AsnVerdict v;
  v.asn = asn;
  v.n_tests = latencies.size();
  if (latencies.size() < min_tests) {
    v.cls = AsnClass::no_data;
    return v;
  }

  const stats::Kde kde(latencies);
  const auto peaks = kde.peaks();
  if (peaks.empty()) {
    v.cls = AsnClass::no_data;
    return v;
  }
  v.main_peak_ms = peaks.front().location;
  // Multimodality check: significant peaks must be well-separated (the
  // KDE grid can split one physical mode into adjacent bumps).
  std::vector<double> modes;
  for (const auto& p : peaks) {
    if (p.mass < 0.10) continue;
    const bool distinct = std::all_of(modes.begin(), modes.end(), [&](double m) {
      return std::abs(p.location - m) > 0.3 * std::max(p.location, m);
    });
    if (distinct) modes.push_back(p.location);
  }
  v.multimodal = modes.size() >= 2;

  // In-window probability mass, attributed per peak basin.
  double in_mass = 0;
  double total_mass = 0;
  for (const auto& p : peaks) {
    // satlint: deterministic-merge: peaks is a sorted vector walked sequentially; order is fixed
    total_mass += p.mass;
    // satlint: deterministic-merge: peaks is a sorted vector walked sequentially; order is fixed
    if (window.contains(p.location)) in_mass += p.mass;
  }
  v.in_window_mass = total_mass > 0 ? in_mass / total_mass : 0.0;

  // Peaks inside the declared window never make an ASN "mixed" — a LEO
  // operator legitimately shows one mode per service region. Only mass
  // *outside* the window does.
  if (!window.contains(v.main_peak_ms) && v.in_window_mass < incompatible_mass) {
    v.cls = AsnClass::incompatible;
  } else if (v.in_window_mass >= clean_mass) {
    v.cls = AsnClass::clean;
  } else {
    v.cls = AsnClass::mixed;
  }
  return v;
}

}  // namespace satnet::snoid
