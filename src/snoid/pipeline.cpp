#include "snoid/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/sharded.hpp"
#include "stats/summary.hpp"
#include "synth/asdb.hpp"

namespace satnet::snoid {

namespace {

struct Candidate {
  std::string name;
  orbit::OrbitClass declared = orbit::OrbitClass::geo;
  bool multi_orbit = false;
  std::vector<bgp::Asn> asns;
};

TechWindow window_for(const Candidate& c, const PipelineConfig& cfg) {
  TechWindow w;
  switch (c.declared) {
    case orbit::OrbitClass::leo:
      w.lo_ms = cfg.leo_min_peak_ms;
      w.hi_ms = cfg.leo_window_max_ms;
      break;
    case orbit::OrbitClass::meo:
      w.lo_ms = cfg.meo_window_min_ms;
      w.hi_ms = cfg.meo_window_max_ms;
      break;
    case orbit::OrbitClass::geo:
      w.lo_ms = cfg.geo_min_peak_ms;
      w.hi_ms = 1e9;
      break;
  }
  if (c.multi_orbit) {
    // Multi-orbit (SES): MEO primary window plus a GEO window.
    w.lo2_ms = cfg.geo_min_peak_ms;
    w.hi2_ms = 1e9;
  }
  return w;
}

/// Steps 1-2: assemble the curated ASN-to-SNO map from the public
/// metadata emulators.
std::vector<Candidate> curate(PipelineResult& result) {
  std::set<bgp::Asn> candidate_asns;
  for (const auto& row : synth::asdb_satellite_category()) {
    candidate_asns.insert(row.asn);
  }
  result.asdb_category_asns = candidate_asns.size();

  // ASdb misses several well-known operators; search HE by name.
  static const char* kPopularNames[] = {"starlink", "viasat",   "hughes",
                                        "oneweb",   "ses",      "eutelsat",
                                        "intelsat", "telesat"};
  std::size_t added = 0;
  for (const char* name : kPopularNames) {
    for (const bgp::Asn asn : synth::he_bgp_search(name)) {
      if (candidate_asns.insert(asn).second) ++added;
    }
  }
  result.he_added_asns = added;

  // Manual curation: visit each ASN's website (IPInfo) and drop anything
  // that is not actually a satellite *network operator*.
  std::map<std::string, Candidate> by_operator;
  for (const bgp::Asn asn : candidate_asns) {
    const auto info = synth::ipinfo_lookup(asn);
    if (!info || info->kind != synth::EntityKind::sno) continue;
    Candidate& c = by_operator[info->organization];
    c.name = info->organization;
    c.declared = info->declared_orbit;
    c.multi_orbit = info->declared_multi_orbit;
    c.asns.push_back(asn);
  }
  std::vector<Candidate> out;
  out.reserve(by_operator.size());
  for (auto& [name, c] : by_operator) out.push_back(std::move(c));
  result.curated_operators = out.size();
  return out;
}

}  // namespace

PipelineResult run_pipeline(const mlab::NdtDataset& dataset,
                            const PipelineConfig& cfg) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& kde_clean =
      reg.counter("snoid.kde.clean", "ASNs whose KDE profile matched the declared tech");
  obs::Counter& kde_mixed =
      reg.counter("snoid.kde.mixed", "ASNs with mixed-access KDE profiles");
  obs::Counter& kde_incompatible = reg.counter(
      "snoid.kde.incompatible", "ASNs whose KDE profile contradicts the declared tech");
  obs::Counter& kde_no_data =
      reg.counter("snoid.kde.no_data", "ASNs with too few tests to judge");
  obs::Counter& prefixes_retained =
      reg.counter("snoid.prefixes_retained", "/24s surviving strict filtering");
  obs::Counter& prefixes_dropped =
      reg.counter("snoid.prefixes_dropped", "/24s rejected by strict filtering");

  PipelineResult result;
  const std::vector<Candidate> candidates = [&] {
    obs::ScopedSpan span("snoid.pipeline", "curate", 0);
    return curate(result);
  }();
  const auto by_asn = [&] {
    obs::ScopedSpan span("snoid.pipeline", "index", 1);
    return dataset.by_asn();
  }();

  // Ground-truth totals per operator (scoring only).
  std::map<std::string, std::size_t> truth_totals;
  for (const auto& rec : dataset.records()) {
    if (rec.truth_satellite) ++truth_totals[rec.truth_operator];
  }

  // ---- Steps 3 + 3b per operator: embarrassingly parallel (each shard
  // reads the shared dataset/index and writes only its own result). ----
  runtime::ShardedCampaign<OperatorResult> validation(
      candidates.size(),
      [&](std::size_t cand_index) {
    const Candidate& cand = candidates[cand_index];
    obs::ScopedSpan span("snoid.validation", cand.name,
                         static_cast<std::uint64_t>(cand_index));
    OperatorResult op;
    op.name = cand.name;
    op.declared_orbit = cand.declared;
    op.multi_orbit = cand.multi_orbit;
    const TechWindow window = window_for(cand, cfg);

    // ---- Step 3: KDE validation per ASN. ----
    std::vector<std::size_t> usable;  // record indices in clean/mixed ASNs
    std::vector<std::size_t> clean_only;
    for (const bgp::Asn asn : cand.asns) {
      const auto it = by_asn.find(asn);
      std::vector<double> latencies;
      if (it != by_asn.end()) {
        latencies = dataset.field(it->second, &mlab::NdtRecord::latency_p5_ms);
      }
      const AsnVerdict verdict =
          classify_asn(asn, latencies, window, cfg.min_tests_per_prefix);
      switch (verdict.cls) {
        case AsnClass::clean: kde_clean.add(1); break;
        case AsnClass::mixed: kde_mixed.add(1); break;
        case AsnClass::incompatible: kde_incompatible.add(1); break;
        case AsnClass::no_data: kde_no_data.add(1); break;
      }
      op.asn_verdicts.push_back(verdict);
      if (it == by_asn.end()) continue;
      if (verdict.cls == AsnClass::clean || verdict.cls == AsnClass::mixed ||
          verdict.cls == AsnClass::no_data) {
        // no_data ASNs ride along: too few tests to reject outright.
        usable.insert(usable.end(), it->second.begin(), it->second.end());
        if (verdict.cls != AsnClass::mixed) {
          clean_only.insert(clean_only.end(), it->second.begin(), it->second.end());
        }
      }
    }

    // ---- LEO/MEO single-orbit operators: ASN-level identification is
    // sufficient (the paper retains OneWeb/O3b/Starlink here). ----
    if (!cand.multi_orbit && cand.declared != orbit::OrbitClass::geo) {
      op.retained = clean_only;
      op.covered_by_strict = false;
      return op;
    }

    // ---- Step 3b: strict prefix filtering. ----
    const auto by_prefix = dataset.by_prefix(usable);
    double strict_min = std::numeric_limits<double>::max();
    for (const auto& [prefix, idxs] : by_prefix) {
      PrefixDecision d;
      d.prefix = prefix;
      d.n_tests = idxs.size();
      const auto lat = dataset.field(idxs, &mlab::NdtRecord::latency_p5_ms);
      d.min_latency_ms = *std::min_element(lat.begin(), lat.end());
      d.median_latency_ms = stats::median(lat);
      if (idxs.size() < cfg.min_tests_per_prefix) {
        d.reason = "fewer than 10 tests";
      } else if (d.min_latency_ms > cfg.geo_strict_ms) {
        d.retained_strict = true;
      } else if (cand.multi_orbit && d.min_latency_ms > cfg.meo_strict_ms &&
                 d.median_latency_ms < cfg.geo_strict_ms) {
        d.retained_strict = true;  // MEO-clean prefix of a multi-orbit SNO
      } else {
        d.reason = "sub-threshold latencies";
      }
      if (d.retained_strict) {
        op.covered_by_strict = true;
        strict_min = std::min(strict_min, d.min_latency_ms);
        prefixes_retained.add(1);
      } else {
        prefixes_dropped.add(1);
      }
      op.prefixes.push_back(std::move(d));
    }
    if (op.covered_by_strict) op.relax_threshold_ms = strict_min;

    // Retention happens in the second pass (needs the fallback threshold).
    op.retained = std::move(usable);
    return op;
  },
      "snoid.validation");
  result.operators = validation.run_with_report(cfg.threads, cfg.retry, nullptr);

  // ---- Step 3c: relaxation thresholds (cross-operator, serial). ----
  obs::ScopedSpan relax_span("snoid.pipeline", "relaxation", 2);
  double fallback = std::numeric_limits<double>::max();
  for (const auto& op : result.operators) {
    if (op.covered_by_strict) fallback = std::min(fallback, op.relax_threshold_ms);
  }
  if (fallback == std::numeric_limits<double>::max()) fallback = cfg.geo_strict_ms;
  result.fallback_threshold_ms = fallback;

  for (auto& op : result.operators) {
    if (!op.multi_orbit && op.declared_orbit != orbit::OrbitClass::geo) {
      // LEO/MEO handled at ASN level above.
    } else {
      const double thr = op.covered_by_strict ? op.relax_threshold_ms : fallback;
      if (!op.covered_by_strict) op.relax_threshold_ms = thr;
      std::vector<std::size_t> kept;
      for (const std::size_t i : op.retained) {
        const auto& rec = dataset.records()[i];
        const bool geo_like = rec.latency_p5_ms >= thr;
        const bool meo_like = op.multi_orbit &&
                              rec.latency_p5_ms >= cfg.meo_window_min_ms &&
                              rec.latency_p5_ms < cfg.meo_window_max_ms;
        if (geo_like || meo_like) kept.push_back(i);
      }
      op.retained = std::move(kept);
    }
    // Ground-truth scoring.
    for (const std::size_t i : op.retained) {
      if (dataset.records()[i].truth_satellite) ++op.retained_truly_satellite;
    }
    const auto it = truth_totals.find(op.name);
    op.total_truly_satellite = it == truth_totals.end() ? 0 : it->second;
    if (op.identified()) ++result.identified_operators;
  }

  return result;
}

std::string describe(const PipelineResult& result) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "pipeline: %zu ASdb ASNs + %zu via HE -> %zu curated operators, "
                "%zu identified (fallback threshold %.1f ms)\n",
                result.asdb_category_asns, result.he_added_asns,
                result.curated_operators, result.identified_operators,
                result.fallback_threshold_ms);
  out += line;
  for (const auto& op : result.operators) {
    std::snprintf(line, sizeof(line),
                  "  %-12s %-4s retained=%-7zu strict=%s thr=%-7.1f "
                  "precision=%.3f recall=%.3f\n",
                  op.name.c_str(), orbit::to_string(op.declared_orbit).c_str(),
                  op.retained.size(), op.covered_by_strict ? "yes" : "no ",
                  op.relax_threshold_ms, op.precision(), op.recall());
    out += line;
  }
  return out;
}

}  // namespace satnet::snoid
