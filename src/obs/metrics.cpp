#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace satnet::obs {

std::size_t this_thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::histogram: return "histogram";
  }
  return "counter";
}

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (auto& s : stripes_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  if (!std::isfinite(v)) {
    // A NaN would land in a bucket anyway (lower_bound's comparisons
    // are all false -> overflow bucket) and then poison `sum` for every
    // later export. Drop the observation and count the drop instead.
    // satlint:allow(shared-state): cached registry handle; the counter itself is thread-striped
    static Counter& nonfinite = MetricsRegistry::global().counter(
        "obs.histogram.nonfinite",
        "histogram observations dropped for being NaN or infinite");
    nonfinite.add(1);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  Stripe& s = stripes_[this_thread_stripe()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(s.sum, v);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : stripes_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::sum() const {
  double total = 0;
  // satlint: deterministic-merge: stripes fold in fixed index order; sum is telemetry
  for (const auto& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts()) total += c;
  return total;
}

void Histogram::reset() {
  for (auto& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> b = {0.5,  1.0,   2.0,   5.0,   10.0,
                                        20.0, 50.0,  100.0, 200.0, 500.0,
                                        1000.0, 2000.0, 5000.0};
  return b;
}

MetricsRegistry& MetricsRegistry::global() {
  // satlint:allow(shared-state): the process-wide registry singleton; all access goes through its internal mutex/striped atomics
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind,
                                               std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    e.help = std::string(help);
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as " +
                           to_string(it->second.kind));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  Entry& e = entry(name, MetricKind::counter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  Entry& e = entry(name, MetricKind::gauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds,
                                      std::string_view help) {
  Entry& e = entry(name, MetricKind::histogram, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(bounds);
  return *e.histogram;
}

Snapshot MetricsRegistry::scrape() const {
  Snapshot snap;
  if (!enabled()) return snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricValue v;
    v.name = name;
    v.help = e.help;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::counter:
        v.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::gauge:
        v.value = static_cast<double>(e.gauge->value());
        break;
      case MetricKind::histogram:
        v.bounds = e.histogram->bounds();
        v.counts = e.histogram->counts();
        v.sum = e.histogram->sum();
        v.count = 0;
        for (const auto c : v.counts) v.count += c;
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace satnet::obs
