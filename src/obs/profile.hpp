// Always-on phase profiler: aggregates wall time, task count, and
// queue wait per (phase, shard) into the MetricsRegistry, and flags
// straggler shards whose wall time exceeds a configurable multiple of
// the phase's median shard time (the stall watchdog's passive half —
// the active half lives in runtime::ThreadPool).
//
// Unlike the tracer and flight recorder, the profiler has no off
// switch of its own: its cost is one mutex-guarded append per shard
// attempt, it rides the registry kill switch for export, and — like
// every obs component — it is observation-only, so the determinism
// suite covers it for free.
//
// All times here are wall-clock telemetry (callers measure them behind
// their own satlint-annotated reads); nothing deterministic derives
// from them. Exported metric names:
//   profile.<phase>.wall_us        total shard wall time for the phase
//   profile.<phase>.queue_wait_us  total submit-to-start wait
//   profile.<phase>.tasks          shard attempts profiled
//   profile.<phase>.stalled        shards flagged by the watchdog
//   profile.watchdog.flagged       global stall count across phases
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace satnet::obs {

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// The process-wide profiler the runtime reports into.
  static PhaseProfiler& global();

  /// A shard wall time must exceed `multiple` x the phase median AND
  /// `min_ms` before the watchdog flags it; the floor keeps trivial
  /// phases (median near zero) from flagging noise.
  void set_stall_multiple(double multiple);
  void set_stall_min_ms(double min_ms);
  double stall_multiple() const;
  double stall_min_ms() const;

  /// Records one finished shard attempt. `wall_ms` is the attempt's
  /// wall time, `queue_wait_ms` the submit-to-start wait (0 when the
  /// caller ran inline). Aggregates into profile.<phase>.* counters.
  void attempt_done(std::string_view phase, std::size_t shard, double wall_ms,
                    double queue_wait_ms);

  /// Closes out a phase: computes the median shard wall time from the
  /// attempts recorded since the phase last closed, flags shards over
  /// the stall threshold (metrics + det=0 recorder events), and clears
  /// the phase's attempt buffer. Returns the number flagged.
  std::size_t phase_done(std::string_view phase);

 private:
  struct Attempt {
    std::size_t shard = 0;
    double wall_ms = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Attempt>, std::less<>> open_;
  double stall_multiple_ = 8.0;
  double stall_min_ms_ = 50.0;
};

}  // namespace satnet::obs
