// Flight recorder for the campaign runtime: a per-shard bounded ring
// buffer of fixed-size binary event records, drained into the JSONL
// export and dumped as a postmortem when a run dies.
//
// Record discipline mirrors the tracer: events land in buffers owned by
// the recording thread (a ShardScope ring while a shard body runs, a
// registered per-thread ring otherwise), so recording never contends
// with other workers. drain() merges everything in canonical
// (phase, shard, attempt, seq) order.
//
// Determinism contract: a record's *content* — kind, phase, shard,
// attempt, seq, and the a/b payload words — is a pure function of
// (seed, config, plan) for every record with det == 1, because such
// records are only emitted inside a ShardScope whose event stream is
// the shard body's deterministic execution. Ring overflow drops the
// *oldest* records of that shard's own stream, so even the surviving
// set is deterministic. Wall-clock lives in the separate `wall_us`
// field (satlint-annotated at the single read site) and is excluded
// from golden comparisons and the postmortem stability check. Records
// emitted outside any shard scope (queue-depth samples, watchdog
// flags) are inherently scheduling-dependent and carry det == 0.
//
// Like metrics and spans, recorder state is observation-only: nothing
// in the simulation reads an event back, so enabling the recorder can
// never perturb campaign output — the determinism suite pins this.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace satnet::obs {

/// What happened. Values are part of the export format — append only.
enum class EventKind : std::uint16_t {
  phase_enter = 1,        ///< shard attempt started (a = attempt)
  phase_exit = 2,         ///< shard attempt finished (a = dropped, b = recorded)
  fault_hit = 3,          ///< fault::Hook applied an event (a = fault kind)
  retry = 4,              ///< shard re-attempt after a failure (a = attempt)
  degrade = 5,            ///< shard quarantined at fan-in (a = attempts used)
  timeline_hit = 6,       ///< epoch-timeline replay hit (a = layer)
  timeline_fallback = 7,  ///< replay missed, fell back to the index (a = layer)
  queue_depth = 8,        ///< pool queue depth sample (a = depth; det = 0)
  stall_flag = 9,         ///< watchdog flagged a straggler (a = wall ms; det = 0)
};

std::string_view to_string(EventKind kind);

/// One fixed-size binary event record. Only `wall_us` (and any det == 0
/// record) is non-deterministic; everything else replays bit-for-bit.
struct EventRecord {
  std::uint16_t kind = 0;     ///< EventKind
  std::uint16_t det = 1;      ///< 1 = deterministic content, 0 = telemetry-only
  std::uint32_t shard = kNoShard;
  std::uint32_t attempt = 0;
  std::uint32_t seq = 0;      ///< per (phase, shard, attempt) record index
  std::uint64_t a = 0;        ///< payload word (see EventKind)
  std::uint64_t b = 0;        ///< payload word
  std::uint64_t wall_us = 0;  ///< wall-clock, non-deterministic, golden-excluded
  std::uint32_t phase_id = 0;
  std::uint32_t reserved = 0;

  static constexpr std::uint32_t kNoShard = 0xffffffffu;
};

static_assert(sizeof(EventRecord) == 48, "fixed-size binary record");

/// An EventRecord with its phase id resolved back to the phase string;
/// what drain() and the postmortem hand to exporters.
struct ResolvedEvent {
  std::string phase;
  EventRecord rec;
};

class FlightRecorder {
 public:
  FlightRecorder();
  ~FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every instrumented layer uses.
  static FlightRecorder& global();

  /// Off by default: a disabled recorder makes record() one relaxed
  /// atomic load and ShardScope a no-op.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ring capacity per shard scope (and per unscoped thread ring).
  /// Applies to scopes opened after the call. Minimum 2 (a ring that
  /// cannot hold phase_enter + phase_exit records nothing useful).
  void set_ring_capacity(std::size_t cap);
  std::size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Where dump_postmortem() writes; "" (default) means stderr.
  void set_postmortem_path(std::string path);
  std::string postmortem_path() const;

  /// Interns a phase name; ids are stable for the recorder's lifetime.
  std::uint32_t intern(std::string_view phase);
  std::string phase_name(std::uint32_t id) const;

  /// Records into the calling thread's active ShardScope ring, or into
  /// the thread's unscoped ring (shard = kNoShard, det forced to 0 —
  /// unscoped seq order is scheduling-dependent). No-op while disabled.
  void record(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
              bool det = true);

  /// Appends one record directly to the collected store, bypassing any
  /// ring, with seq = 0xffffffff so it sorts after the shard's scoped
  /// stream. For fan-in verdicts (degrade) emitted after the shard's
  /// scope closed.
  void record_for_shard(std::string_view phase, std::size_t shard,
                        std::size_t attempt, EventKind kind, std::uint64_t a = 0,
                        std::uint64_t b = 0, bool det = true);

  /// Collects every flushed and thread-buffered record, empties the
  /// buffers, and returns the merged stream sorted by
  /// (phase, shard, attempt, seq, kind, a). Deterministic for the
  /// det == 1 subset at any thread count.
  std::vector<ResolvedEvent> drain();

  /// Non-destructive copy of everything drain() would return; what the
  /// postmortem dumps (so a later export still sees the events).
  std::vector<ResolvedEvent> snapshot() const;

  /// Writes a postmortem — one JSONL reason line followed by the event
  /// snapshot — to postmortem_path() (stderr when empty). No-op while
  /// disabled. Returns the number of events dumped.
  std::size_t dump_postmortem(std::string_view reason);

  /// Microseconds since the recorder's epoch (steady clock). The single
  /// timestamp source for the non-deterministic `wall_us` field.
  std::uint64_t wall_now_us() const;

 private:
  friend class ShardScope;

  struct Ring {
    std::vector<EventRecord> slots;  ///< grows to capacity, then wraps
    std::size_t capacity = 2;        ///< fixed at ring creation
    std::size_t head = 0;            ///< oldest record once full
    std::size_t count = 0;           ///< records currently held
    std::uint64_t dropped = 0;       ///< overwritten (oldest-first) records
    std::uint32_t next_seq = 0;

    void push(EventRecord rec);
    /// Appends held records to `out` in record order (oldest first).
    void collect(std::vector<EventRecord>* out) const;
  };

  struct LocalRing {
    std::mutex mu;  ///< uncontended except against a concurrent drain
    Ring ring;
  };

  LocalRing& local_ring();
  void flush_ring(std::uint32_t phase_id, const Ring& ring);
  std::vector<ResolvedEvent> resolve_and_sort(
      std::vector<std::pair<std::uint32_t, EventRecord>> raw) const;

  const std::uint64_t recorder_id_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> ring_capacity_{512};

  mutable std::mutex mu_;  ///< guards phases_, store_, rings_, postmortem_path_
  std::vector<std::string> phases_;
  std::map<std::string, std::uint32_t, std::less<>> phase_ids_;
  std::vector<std::pair<std::uint32_t, EventRecord>> store_;  ///< flushed records
  std::vector<std::shared_ptr<LocalRing>> rings_;
  std::string postmortem_path_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scope marking "this thread is running shard `shard` of phase
/// `phase`, attempt `attempt`". Opens a bounded ring for the shard's
/// event stream, records phase_enter/phase_exit, and flushes the ring
/// into the recorder on exit. Cheap no-op while the recorder is
/// disabled. Scopes may not nest on one thread (the inner scope wins
/// until destroyed).
class ShardScope {
 public:
  ShardScope(std::string_view phase, std::size_t shard, std::size_t attempt = 0,
             FlightRecorder* recorder = nullptr);
  ~ShardScope();

  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  friend class FlightRecorder;

  FlightRecorder* recorder_ = nullptr;  ///< null when disabled at entry
  ShardScope* prev_ = nullptr;          ///< restored on exit (nesting)
  std::uint32_t phase_id_ = 0;
  std::uint32_t shard_ = 0;
  std::uint32_t attempt_ = 0;
  std::size_t capacity_ = 0;
  FlightRecorder::Ring ring_;
};

}  // namespace satnet::obs
