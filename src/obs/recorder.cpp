#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace satnet::obs {

namespace {

/// Each recorder instance gets a unique id so the thread-local ring
/// cache can tell recorders apart even across destruction/reuse of the
/// same address (test recorders come and go; the cache must never hand
/// a dead recorder's ring to a new one).
std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TlsSlot {
  std::uint64_t recorder_id = 0;
  std::shared_ptr<void> ring;  ///< type-erased LocalRing keepalive
  void* raw = nullptr;
};

thread_local TlsSlot tls_slot;

/// The innermost live ShardScope on this thread (scoped records route
/// here); restored from ShardScope::prev_ on scope exit.
thread_local ShardScope* tls_scope = nullptr;

Counter& events_counter() {
  // satlint:allow(shared-state): cached registry handle; the counter itself is thread-striped
  static Counter& c = MetricsRegistry::global().counter(
      "recorder.events", "flight-recorder records flushed to the store");
  return c;
}

Counter& dropped_counter() {
  // satlint:allow(shared-state): cached registry handle; the counter itself is thread-striped
  static Counter& c = MetricsRegistry::global().counter(
      "recorder.dropped", "flight-recorder records lost to ring overflow");
  return c;
}

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::phase_enter:
      return "phase_enter";
    case EventKind::phase_exit:
      return "phase_exit";
    case EventKind::fault_hit:
      return "fault_hit";
    case EventKind::retry:
      return "retry";
    case EventKind::degrade:
      return "degrade";
    case EventKind::timeline_hit:
      return "timeline_hit";
    case EventKind::timeline_fallback:
      return "timeline_fallback";
    case EventKind::queue_depth:
      return "queue_depth";
    case EventKind::stall_flag:
      return "stall_flag";
  }
  return "unknown";
}

void FlightRecorder::Ring::push(EventRecord rec) {
  rec.seq = next_seq++;
  if (count < capacity) {
    slots.push_back(rec);
    ++count;
    return;
  }
  // Full: overwrite the oldest record (head) with the newest. The drop
  // set is "oldest first", so for a deterministic input stream the
  // surviving window is deterministic too.
  slots[head] = rec;
  head = (head + 1) % capacity;
  ++dropped;
}

void FlightRecorder::Ring::collect(std::vector<EventRecord>* out) const {
  const std::size_t n = slots.size();
  for (std::size_t i = 0; i < n; ++i) out->push_back(slots[(head + i) % n]);
}

FlightRecorder::FlightRecorder()
    // satlint:allow(nondet-source): the recorder epoch feeds only the wall_us telemetry field, which is excluded from goldens
    // satlint:allow(nondet-taint): callers inherit only the wall_us telemetry field; goldens and stability hashes exclude it
    : recorder_id_(next_recorder_id()), epoch_(std::chrono::steady_clock::now()) {
  // Phase id 0 is reserved for records emitted outside any ShardScope.
  phases_.push_back("unscoped");
  phase_ids_.emplace("unscoped", 0);
}

FlightRecorder& FlightRecorder::global() {
  // satlint:allow(shared-state): the process-wide recorder singleton; records land in scope/thread rings, drain() merges deterministically
  static FlightRecorder r;
  return r;
}

void FlightRecorder::set_ring_capacity(std::size_t cap) {
  ring_capacity_.store(cap < 2 ? 2 : cap, std::memory_order_relaxed);
}

void FlightRecorder::set_postmortem_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  postmortem_path_ = std::move(path);
}

std::string FlightRecorder::postmortem_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return postmortem_path_;
}

std::uint32_t FlightRecorder::intern(std::string_view phase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = phase_ids_.find(phase);
  if (it != phase_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(phases_.size());
  phases_.emplace_back(phase);
  phase_ids_.emplace(std::string(phase), id);
  return id;
}

std::string FlightRecorder::phase_name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < phases_.size()) return phases_[id];
  return "unknown";
}

std::uint64_t FlightRecorder::wall_now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // satlint:allow(nondet-source): fills only the wall_us telemetry field, excluded from goldens and stability checks
          // satlint:allow(nondet-taint): callers inherit only the wall_us telemetry field, never a simulated quantity
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

FlightRecorder::LocalRing& FlightRecorder::local_ring() {
  if (tls_slot.recorder_id != recorder_id_) {
    auto ring = std::make_shared<LocalRing>();
    ring->ring.capacity = ring_capacity();
    {
      std::lock_guard<std::mutex> lock(mu_);
      rings_.push_back(ring);
    }
    tls_slot.recorder_id = recorder_id_;
    tls_slot.raw = ring.get();
    tls_slot.ring = std::move(ring);
  }
  return *static_cast<LocalRing*>(tls_slot.raw);
}

void FlightRecorder::record(EventKind kind, std::uint64_t a, std::uint64_t b,
                            bool det) {
  if (!enabled()) return;
  EventRecord rec;
  rec.kind = static_cast<std::uint16_t>(kind);
  rec.a = a;
  rec.b = b;
  rec.wall_us = wall_now_us();
  ShardScope* scope = tls_scope;
  if (scope != nullptr && scope->recorder_ == this) {
    rec.det = det ? 1 : 0;
    rec.shard = scope->shard_;
    rec.attempt = scope->attempt_;
    rec.phase_id = scope->phase_id_;
    scope->ring_.push(rec);
    return;
  }
  // Outside any shard scope the arrival order is scheduling-dependent,
  // so the record is telemetry-only regardless of what the caller said.
  rec.det = 0;
  rec.shard = EventRecord::kNoShard;
  rec.phase_id = 0;
  LocalRing& lr = local_ring();
  std::lock_guard<std::mutex> lock(lr.mu);
  lr.ring.push(rec);
}

void FlightRecorder::record_for_shard(std::string_view phase, std::size_t shard,
                                      std::size_t attempt, EventKind kind,
                                      std::uint64_t a, std::uint64_t b,
                                      bool det) {
  if (!enabled()) return;
  EventRecord rec;
  rec.kind = static_cast<std::uint16_t>(kind);
  rec.det = det ? 1 : 0;
  rec.shard = static_cast<std::uint32_t>(shard);
  rec.attempt = static_cast<std::uint32_t>(attempt);
  rec.seq = 0xffffffffu;  // sorts after the shard's scoped stream
  rec.a = a;
  rec.b = b;
  rec.wall_us = wall_now_us();
  const std::uint32_t phase_id = intern(phase);
  rec.phase_id = phase_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store_.emplace_back(phase_id, rec);
  }
  events_counter().add(1);
}

void FlightRecorder::flush_ring(std::uint32_t phase_id, const Ring& ring) {
  std::vector<EventRecord> recs;
  recs.reserve(ring.count);
  ring.collect(&recs);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const EventRecord& rec : recs) store_.emplace_back(phase_id, rec);
  }
  events_counter().add(recs.size());
  if (ring.dropped > 0) dropped_counter().add(ring.dropped);
}

std::vector<ResolvedEvent> FlightRecorder::resolve_and_sort(
    std::vector<std::pair<std::uint32_t, EventRecord>> raw) const {
  std::vector<std::string> phases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    phases = phases_;
  }
  std::vector<ResolvedEvent> out;
  out.reserve(raw.size());
  for (auto& [phase_id, rec] : raw) {
    ResolvedEvent ev;
    ev.phase = phase_id < phases.size() ? phases[phase_id] : "unknown";
    ev.rec = rec;
    out.push_back(std::move(ev));
  }
  std::sort(out.begin(), out.end(),
            [](const ResolvedEvent& x, const ResolvedEvent& y) {
              return std::tie(x.phase, x.rec.shard, x.rec.attempt, x.rec.seq,
                              x.rec.kind, x.rec.a, x.rec.b) <
                     std::tie(y.phase, y.rec.shard, y.rec.attempt, y.rec.seq,
                              y.rec.kind, y.rec.a, y.rec.b);
            });
  return out;
}

std::vector<ResolvedEvent> FlightRecorder::drain() {
  std::vector<std::pair<std::uint32_t, EventRecord>> raw;
  std::vector<std::shared_ptr<LocalRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw.swap(store_);
    rings = rings_;
  }
  for (const auto& lr : rings) {
    std::lock_guard<std::mutex> lock(lr->mu);
    std::vector<EventRecord> recs;
    lr->ring.collect(&recs);
    for (const EventRecord& rec : recs) raw.emplace_back(rec.phase_id, rec);
    lr->ring.slots.clear();
    lr->ring.head = 0;
    lr->ring.count = 0;
  }
  return resolve_and_sort(std::move(raw));
}

std::vector<ResolvedEvent> FlightRecorder::snapshot() const {
  std::vector<std::pair<std::uint32_t, EventRecord>> raw;
  std::vector<std::shared_ptr<LocalRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw = store_;
    rings = rings_;
  }
  for (const auto& lr : rings) {
    std::lock_guard<std::mutex> lock(lr->mu);
    std::vector<EventRecord> recs;
    lr->ring.collect(&recs);
    for (const EventRecord& rec : recs) raw.emplace_back(rec.phase_id, rec);
  }
  return resolve_and_sort(std::move(raw));
}

std::size_t FlightRecorder::dump_postmortem(std::string_view reason) {
  if (!enabled()) return 0;
  const std::vector<ResolvedEvent> events = snapshot();
  const std::string path = postmortem_path();
  std::FILE* f = stderr;
  if (!path.empty() && path != "-") {
    f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "recorder: cannot open postmortem path %s\n",
                   path.c_str());
      f = stderr;
    }
  }
  std::fprintf(f, "{\"type\":\"postmortem\",\"reason\":\"%s\",\"events\":%zu}\n",
               json_escape(std::string(reason)).c_str(), events.size());
  for (const ResolvedEvent& ev : events)
    std::fprintf(f, "%s\n", event_jsonl_line(ev).c_str());
  if (f != stderr) std::fclose(f);
  return events.size();
}

ShardScope::ShardScope(std::string_view phase, std::size_t shard,
                       std::size_t attempt, FlightRecorder* recorder) {
  FlightRecorder* r = recorder ? recorder : &FlightRecorder::global();
  if (!r->enabled()) return;
  recorder_ = r;
  phase_id_ = r->intern(phase);
  shard_ = static_cast<std::uint32_t>(shard);
  attempt_ = static_cast<std::uint32_t>(attempt);
  capacity_ = r->ring_capacity();
  ring_.capacity = capacity_;
  ring_.slots.reserve(capacity_ < 64 ? capacity_ : 64);
  prev_ = tls_scope;
  tls_scope = this;
  r->record(EventKind::phase_enter, attempt_, 0);
}

ShardScope::~ShardScope() {
  if (recorder_ == nullptr) return;
  // phase_exit is pushed last so it always survives overflow; `a` holds
  // the drop count before this push, `b` the total records attempted.
  recorder_->record(EventKind::phase_exit, ring_.dropped, ring_.next_seq);
  tls_scope = prev_;
  recorder_->flush_ring(phase_id_, ring_);
}

}  // namespace satnet::obs
