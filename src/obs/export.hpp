// Exporters for metric snapshots and span traces, plus the run
// manifest that stamps every export with what produced it.
//
// Two formats:
//   * Prometheus text exposition — counters/gauges as single samples,
//     histograms as cumulative le-buckets + _sum/_count. Metric names
//     are dot-separated internally ("mlab.tests_generated") and become
//     "satnet_mlab_tests_generated" on the wire. The manifest rides
//     along as "# manifest:" comment lines.
//   * JSON lines — one object per line, first line the manifest
//     ({"type":"manifest",...}), then one line per metric and one per
//     span. This is the machine-readable trace format (--trace-out).
//
// Both formats have parsers good enough to round-trip our own output;
// the unit tests feed exports back through them and require every
// registered metric to survive.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace satnet::obs {

/// JSON string escaping shared by every JSONL writer: `"` `\`,
/// whitespace escapes, and \u00XX for remaining control characters.
std::string json_escape(const std::string& s);

/// Prometheus exposition-format escaping for label *values*: `\\`,
/// `\"`, `\n` (the only escapes the format defines for labels).
std::string prom_escape_label(const std::string& s);

/// Prometheus escaping for HELP/comment text: `\\` and `\n` (a raw
/// newline would otherwise split the comment into a bogus sample line).
std::string prom_escape_text(const std::string& s);

/// What produced an export: the tool, its full command line, and the
/// knobs that matter for reproducing the run. Wall-clock only — the
/// manifest never feeds back into simulation state.
struct RunManifest {
  std::string tool;     ///< e.g. "satnetctl campaign"
  std::string command;  ///< full argv, space-joined
  unsigned threads = 0;
  double wall_ms = 0;   ///< end-to-end run wall-clock
  /// Free-form extras (seed, scale, ...), exported verbatim.
  std::vector<std::pair<std::string, std::string>> notes;
};

/// Manifest as a single JSON object (one JSONL line, no trailing \n).
std::string manifest_json(const RunManifest& manifest);

/// Prometheus text exposition of a snapshot, manifest as comments.
std::string to_prometheus(const Snapshot& snapshot, const RunManifest& manifest);

/// JSONL: manifest line, then one line per metric.
std::string to_jsonl(const Snapshot& snapshot, const RunManifest& manifest);

/// JSONL span lines (no manifest; append after to_jsonl or write with
/// write_trace_file which adds its own manifest line).
std::string spans_jsonl(const std::vector<SpanRecord>& spans);

/// One flight-recorder event as a JSONL line (no trailing \n). The
/// deterministic fields come first; `wall_us` is last so goldens can
/// strip it with a suffix cut.
std::string event_jsonl_line(const ResolvedEvent& event);

/// JSONL event lines for a drained/snapshotted recorder stream.
std::string events_jsonl(const std::vector<ResolvedEvent>& events);

/// Parses event lines out of a JSONL document (manifest/metric/span
/// lines are ignored).
std::vector<ResolvedEvent> parse_events_jsonl(const std::string& text);

/// Parses Prometheus text produced by to_prometheus back into a
/// Snapshot (metrics sorted by name; manifest comments ignored).
Snapshot parse_prometheus(const std::string& text);

/// Parses JSONL produced by to_jsonl / write_trace_file. Span and
/// manifest lines are ignored; metric lines are recovered.
Snapshot parse_jsonl(const std::string& text);

/// Parses span lines out of a JSONL document.
std::vector<SpanRecord> parse_spans_jsonl(const std::string& text);

/// Human-readable summary of a snapshot: counters, gauges, histogram
/// count/mean, plus derived lines (cone-prefilter ratio) when the
/// underlying counters are present.
std::string summary_text(const Snapshot& snapshot, const RunManifest& manifest);

/// Names of metrics carrying a non-finite value (NaN/Inf in the scalar
/// value, a histogram sum, or a bucket bound — +Inf overflow bounds are
/// implicit and never stored, so any non-finite here is a bug). Empty
/// means every exported number is finite; the matrix invariant harness
/// gates on exactly this.
std::vector<std::string> nonfinite_metrics(const Snapshot& snapshot);

/// Writes Prometheus text to `path` ("-" = stdout). Returns false and
/// prints to stderr when the file cannot be opened.
bool write_metrics_file(const std::string& path, const Snapshot& snapshot,
                        const RunManifest& manifest);

/// Writes JSONL (manifest + metrics + spans) to `path` ("-" = stdout).
bool write_trace_file(const std::string& path, const Snapshot& snapshot,
                      const std::vector<SpanRecord>& spans,
                      const RunManifest& manifest);

/// Writes JSONL (manifest + metrics + spans + flight-recorder events).
bool write_trace_file(const std::string& path, const Snapshot& snapshot,
                      const std::vector<SpanRecord>& spans,
                      const std::vector<ResolvedEvent>& events,
                      const RunManifest& manifest);

}  // namespace satnet::obs
