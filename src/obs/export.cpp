#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace satnet::obs {

namespace {

/// "mlab.tests_generated" -> "satnet_mlab_tests_generated".
std::string wire_name(const std::string& name) {
  std::string out = "satnet_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---- minimal JSON field extraction (parses only our own flat output:
// string / number / numeric-array values, no nesting). ----

bool json_string(const std::string& line, const char* key, std::string* out) {
  const std::string pat = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return false;
  std::string value;
  for (std::size_t i = pos + pat.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char n = line[++i];
      if (n == 'u' && i + 4 < line.size()) {
        // \u00XX — only the control-char range json_escape emits.
        const unsigned code = static_cast<unsigned>(
            std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
        value += static_cast<char>(code);
        i += 4;
      } else {
        value += n == 'n' ? '\n' : n == 't' ? '\t' : n == 'r' ? '\r' : n;
      }
    } else if (c == '"') {
      *out = std::move(value);
      return true;
    } else {
      value += c;
    }
  }
  return false;
}

bool json_number(const std::string& line, const char* key, double* out) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + pat.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

bool json_array(const std::string& line, const char* key, std::vector<double>* out) {
  const std::string pat = "\"" + std::string(key) + "\":[";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return false;
  out->clear();
  const char* p = line.c_str() + pos + pat.size();
  while (*p != '\0' && *p != ']') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) break;
    out->push_back(v);
    p = end;
    while (*p == ',' || *p == ' ') ++p;
  }
  return true;
}

/// Inverse of prom_escape_text for NAME/HELP comment payloads.
std::string prom_unescape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char n = s[++i];
      out += n == 'n' ? '\n' : n;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string metric_jsonl_line(const MetricValue& m) {
  std::string line = "{\"type\":\"" + to_string(m.kind) + "\",\"name\":\"" +
                     json_escape(m.name) + "\"";
  if (!m.help.empty()) line += ",\"help\":\"" + json_escape(m.help) + "\"";
  if (m.kind == MetricKind::histogram) {
    line += ",\"bounds\":[";
    for (std::size_t i = 0; i < m.bounds.size(); ++i) {
      if (i > 0) line += ",";
      line += fmt_double(m.bounds[i]);
    }
    line += "],\"counts\":[";
    for (std::size_t i = 0; i < m.counts.size(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(m.counts[i]);
    }
    line += "],\"sum\":" + fmt_double(m.sum) +
            ",\"count\":" + std::to_string(m.count);
  } else {
    line += ",\"value\":" + fmt_double(m.value);
  }
  line += "}";
  return line;
}

/// Approximate quantile from per-bucket counts: the upper bound of the
/// bucket where the cumulative count crosses q (reported as "<= X").
double approx_quantile(const MetricValue& m, double q) {
  const double target = q * static_cast<double>(m.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < m.counts.size(); ++i) {
    cum += m.counts[i];
    if (static_cast<double>(cum) >= target) {
      return i < m.bounds.size() ? m.bounds[i] : m.bounds.empty()
                 ? 0.0
                 : m.bounds.back();
    }
  }
  return m.bounds.empty() ? 0.0 : m.bounds.back();
}

bool open_out(const std::string& path, std::ofstream* file, std::ostream** out) {
  if (path == "-") {
    *out = &std::cout;
    return true;
  }
  file->open(path);
  if (!*file) {
    std::fprintf(stderr, "obs: cannot open %s\n", path.c_str());
    return false;
  }
  *out = file;
  return true;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_escape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string manifest_json(const RunManifest& manifest) {
  std::string line = "{\"type\":\"manifest\",\"tool\":\"" +
                     json_escape(manifest.tool) + "\",\"command\":\"" +
                     json_escape(manifest.command) +
                     "\",\"threads\":" + std::to_string(manifest.threads) +
                     ",\"wall_ms\":" + fmt_double(manifest.wall_ms);
  for (const auto& [key, value] : manifest.notes) {
    line += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  line += "}";
  return line;
}

std::string to_prometheus(const Snapshot& snapshot, const RunManifest& manifest) {
  std::string out = "# manifest: " + manifest_json(manifest) + "\n";
  for (const auto& m : snapshot.metrics) {
    const std::string wire = wire_name(m.name);
    // "# NAME" maps the wire name back to the registry name so our
    // parser (and humans) can round-trip without guessing at '_' vs '.'.
    // Comment payloads use exposition-format text escaping (\\, \n):
    // a raw newline in a name or help string would otherwise split the
    // comment and inject a bogus sample line.
    out += "# NAME " + wire + " " + prom_escape_text(m.name) + "\n";
    out += "# TYPE " + wire + " " + to_string(m.kind) + "\n";
    if (!m.help.empty())
      out += "# HELP " + wire + " " + prom_escape_text(m.help) + "\n";
    if (m.kind == MetricKind::histogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < m.counts.size(); ++i) {
        cum += m.counts[i];
        const std::string le =
            i < m.bounds.size() ? fmt_double(m.bounds[i]) : "+Inf";
        // fmt_double never emits characters needing escapes, but label
        // values follow the exposition escaping rules regardless.
        out += wire + "_bucket{le=\"" + prom_escape_label(le) + "\"} " +
               std::to_string(cum) + "\n";
      }
      out += wire + "_sum " + fmt_double(m.sum) + "\n";
      out += wire + "_count " + std::to_string(m.count) + "\n";
    } else {
      out += wire + " " + fmt_double(m.value) + "\n";
    }
  }
  return out;
}

std::string to_jsonl(const Snapshot& snapshot, const RunManifest& manifest) {
  std::string out = manifest_json(manifest) + "\n";
  for (const auto& m : snapshot.metrics) out += metric_jsonl_line(m) + "\n";
  return out;
}

std::string spans_jsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const auto& s : spans) {
    out += "{\"type\":\"span\",\"phase\":\"" + json_escape(s.phase) +
           "\",\"name\":\"" + json_escape(s.name) +
           "\",\"shard\":" + std::to_string(s.shard_key) +
           ",\"seq\":" + std::to_string(s.seq) +
           ",\"start_ms\":" + fmt_double(s.start_ms) +
           ",\"duration_ms\":" + fmt_double(s.duration_ms) + "}\n";
  }
  return out;
}

std::string event_jsonl_line(const ResolvedEvent& event) {
  const auto& r = event.rec;
  std::string line = "{\"type\":\"event\",\"phase\":\"" +
                     json_escape(event.phase) + "\",\"kind\":\"" +
                     std::string(to_string(static_cast<EventKind>(r.kind))) +
                     "\",\"det\":" + std::to_string(r.det) +
                     ",\"shard\":" + std::to_string(r.shard) +
                     ",\"attempt\":" + std::to_string(r.attempt) +
                     ",\"seq\":" + std::to_string(r.seq) +
                     ",\"a\":" + std::to_string(r.a) +
                     ",\"b\":" + std::to_string(r.b) +
                     // wall_us last: the non-deterministic field, so
                     // golden/stability comparisons can strip a suffix.
                     ",\"wall_us\":" + std::to_string(r.wall_us) + "}";
  return line;
}

std::string events_jsonl(const std::vector<ResolvedEvent>& events) {
  std::string out;
  for (const auto& ev : events) out += event_jsonl_line(ev) + "\n";
  return out;
}

std::vector<ResolvedEvent> parse_events_jsonl(const std::string& text) {
  static const EventKind kKinds[] = {
      EventKind::phase_enter,  EventKind::phase_exit,
      EventKind::fault_hit,    EventKind::retry,
      EventKind::degrade,      EventKind::timeline_hit,
      EventKind::timeline_fallback, EventKind::queue_depth,
      EventKind::stall_flag};
  std::vector<ResolvedEvent> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string type;
    if (!json_string(line, "type", &type) || type != "event") continue;
    ResolvedEvent ev;
    json_string(line, "phase", &ev.phase);
    std::string kind;
    json_string(line, "kind", &kind);
    for (const EventKind k : kKinds) {
      if (kind == to_string(k)) {
        ev.rec.kind = static_cast<std::uint16_t>(k);
        break;
      }
    }
    double v = 0;
    if (json_number(line, "det", &v)) ev.rec.det = static_cast<std::uint16_t>(v);
    if (json_number(line, "shard", &v)) ev.rec.shard = static_cast<std::uint32_t>(v);
    if (json_number(line, "attempt", &v)) ev.rec.attempt = static_cast<std::uint32_t>(v);
    if (json_number(line, "seq", &v)) ev.rec.seq = static_cast<std::uint32_t>(v);
    if (json_number(line, "a", &v)) ev.rec.a = static_cast<std::uint64_t>(v);
    if (json_number(line, "b", &v)) ev.rec.b = static_cast<std::uint64_t>(v);
    if (json_number(line, "wall_us", &v)) ev.rec.wall_us = static_cast<std::uint64_t>(v);
    out.push_back(std::move(ev));
  }
  return out;
}

Snapshot parse_prometheus(const std::string& text) {
  Snapshot snap;
  std::map<std::string, std::string> wire_to_name;
  std::map<std::string, MetricValue> metrics;  // keyed by wire name
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, wire, rest;
      ls >> hash >> kind >> wire >> rest;
      if (kind == "NAME") {
        // Everything after "<wire> " is the (escaped) registry name —
        // token extraction would truncate names containing spaces.
        const auto pos = line.find(wire);
        wire_to_name[wire] =
            prom_unescape_text(line.substr(pos + wire.size() + 1));
      } else if (kind == "TYPE") {
        MetricValue m;
        const auto it = wire_to_name.find(wire);
        m.name = it == wire_to_name.end() ? wire : it->second;
        m.kind = rest == "gauge"       ? MetricKind::gauge
                 : rest == "histogram" ? MetricKind::histogram
                                       : MetricKind::counter;
        metrics[wire] = std::move(m);
      } else if (kind == "HELP") {
        const auto pos = line.find(wire);
        if (auto it = metrics.find(wire); it != metrics.end()) {
          it->second.help =
              prom_unescape_text(line.substr(pos + wire.size() + 1));
        } else {
          // HELP precedes TYPE in the wild; ours doesn't, but tolerate.
          wire_to_name.emplace(wire, wire);
        }
      }
      continue;
    }
    // Sample line: "<wire>[_bucket{le=\"X\"}|_sum|_count] <value>".
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string key = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    const auto brace = key.find('{');
    const std::string base = brace == std::string::npos ? key : key.substr(0, brace);
    if (auto it = metrics.find(base); it != metrics.end()) {
      it->second.value = value;
      continue;
    }
    auto ends_with = [&](const char* suffix) {
      const std::size_t n = std::strlen(suffix);
      return base.size() > n && base.compare(base.size() - n, n, suffix) == 0;
    };
    if (ends_with("_bucket")) {
      const std::string parent = base.substr(0, base.size() - 7);
      if (auto it = metrics.find(parent); it != metrics.end()) {
        const auto le_pos = key.find("le=\"");
        const std::string le = key.substr(le_pos + 4, key.find('"', le_pos + 4) -
                                                          (le_pos + 4));
        if (le != "+Inf") it->second.bounds.push_back(std::strtod(le.c_str(), nullptr));
        it->second.counts.push_back(static_cast<std::uint64_t>(value));
      }
    } else if (ends_with("_sum")) {
      const std::string parent = base.substr(0, base.size() - 4);
      if (auto it = metrics.find(parent); it != metrics.end()) it->second.sum = value;
    } else if (ends_with("_count")) {
      const std::string parent = base.substr(0, base.size() - 6);
      if (auto it = metrics.find(parent); it != metrics.end()) {
        it->second.count = static_cast<std::uint64_t>(value);
      }
    }
  }
  for (auto& [wire, m] : metrics) {
    if (m.kind == MetricKind::histogram) {
      // De-cumulate the le-buckets back into per-bucket counts.
      for (std::size_t i = m.counts.size(); i-- > 1;) m.counts[i] -= m.counts[i - 1];
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;  // std::map iteration: already sorted by wire name ~ name order
}

Snapshot parse_jsonl(const std::string& text) {
  Snapshot snap;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string type;
    if (!json_string(line, "type", &type)) continue;
    if (type != "counter" && type != "gauge" && type != "histogram") continue;
    MetricValue m;
    m.kind = type == "gauge"       ? MetricKind::gauge
             : type == "histogram" ? MetricKind::histogram
                                   : MetricKind::counter;
    if (!json_string(line, "name", &m.name)) continue;
    json_string(line, "help", &m.help);
    if (m.kind == MetricKind::histogram) {
      std::vector<double> counts;
      json_array(line, "bounds", &m.bounds);
      json_array(line, "counts", &counts);
      for (const double c : counts) m.counts.push_back(static_cast<std::uint64_t>(c));
      json_number(line, "sum", &m.sum);
      double count = 0;
      json_number(line, "count", &count);
      m.count = static_cast<std::uint64_t>(count);
    } else {
      json_number(line, "value", &m.value);
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

std::vector<SpanRecord> parse_spans_jsonl(const std::string& text) {
  std::vector<SpanRecord> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string type;
    if (!json_string(line, "type", &type) || type != "span") continue;
    SpanRecord s;
    json_string(line, "phase", &s.phase);
    json_string(line, "name", &s.name);
    double shard = 0, seq = 0;
    json_number(line, "shard", &shard);
    json_number(line, "seq", &seq);
    s.shard_key = static_cast<std::uint64_t>(shard);
    s.seq = static_cast<std::uint64_t>(seq);
    json_number(line, "start_ms", &s.start_ms);
    json_number(line, "duration_ms", &s.duration_ms);
    out.push_back(std::move(s));
  }
  return out;
}

std::string summary_text(const Snapshot& snapshot, const RunManifest& manifest) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "== observability summary: %s (%u threads, %.0f ms wall) ==\n",
                manifest.tool.empty() ? "run" : manifest.tool.c_str(),
                manifest.threads, manifest.wall_ms);
  out += line;
  for (const auto& m : snapshot.metrics) {
    switch (m.kind) {
      case MetricKind::counter:
        std::snprintf(line, sizeof(line), "  %-36s %14.0f\n", m.name.c_str(),
                      m.value);
        break;
      case MetricKind::gauge:
        std::snprintf(line, sizeof(line), "  %-36s %14.0f (gauge)\n",
                      m.name.c_str(), m.value);
        break;
      case MetricKind::histogram:
        std::snprintf(line, sizeof(line),
                      "  %-36s n=%-10" PRIu64 " mean=%-9.3g p50<=%-9.3g "
                      "p95<=%-9.3g\n",
                      m.name.c_str(), m.count,
                      m.count == 0 ? 0.0 : m.sum / static_cast<double>(m.count),
                      approx_quantile(m, 0.50), approx_quantile(m, 0.95));
        break;
    }
    out += line;
  }
  // Derived: the cone prefilter's continuously-observable speedup claim.
  const MetricValue* swept = snapshot.find("orbit.best_visible.sats_swept");
  const MetricValue* exact = snapshot.find("orbit.best_visible.exact_evals");
  if (swept && exact && exact->value > 0) {
    std::snprintf(line, sizeof(line),
                  "  cone prefilter: %.0f swept / %.0f exact evals "
                  "(%.1fx reduction)\n",
                  swept->value, exact->value, swept->value / exact->value);
    out += line;
  }
  // Derived: access-index cache effectiveness (PR 5's amortization claim).
  const MetricValue* cache_hit = snapshot.find("access.cache.hit");
  const MetricValue* cache_miss = snapshot.find("access.cache.miss");
  if (cache_hit && cache_miss && cache_hit->value + cache_miss->value > 0) {
    const MetricValue* inval = snapshot.find("access.cache.invalidation");
    std::snprintf(line, sizeof(line),
                  "  access cache: %.0f hits / %.0f misses (%.1f%% hit ratio, "
                  "%.0f invalidated)\n",
                  cache_hit->value, cache_miss->value,
                  100.0 * cache_hit->value / (cache_hit->value + cache_miss->value),
                  inval ? inval->value : 0.0);
    out += line;
  }
  // Derived: epoch-timeline replay effectiveness (PR 6's precompute
  // claim). Hit ratio only when a lookup actually happened — a build
  // with zero replays must not report a vacuous 0%.
  const MetricValue* tl_hit = snapshot.find("timeline.replay.hit");
  const MetricValue* tl_fallback = snapshot.find("timeline.replay.fallback");
  const MetricValue* tl_epochs = snapshot.find("timeline.build.epochs");
  const double tl_lookups =
      (tl_hit ? tl_hit->value : 0.0) + (tl_fallback ? tl_fallback->value : 0.0);
  if (tl_lookups > 0 || (tl_epochs && tl_epochs->value > 0)) {
    const MetricValue* tl_ms = snapshot.find("timeline.build.ms");
    if (tl_lookups > 0) {
      std::snprintf(line, sizeof(line),
                    "  timeline: %.0f replay hits / %.0f fallbacks (%.1f%% hit "
                    "ratio, %.0f epochs built in %.0f ms)\n",
                    tl_hit ? tl_hit->value : 0.0,
                    tl_fallback ? tl_fallback->value : 0.0,
                    100.0 * (tl_hit ? tl_hit->value : 0.0) / tl_lookups,
                    tl_epochs ? tl_epochs->value : 0.0,
                    tl_ms ? tl_ms->value : 0.0);
    } else {
      std::snprintf(line, sizeof(line),
                    "  timeline: no replays, %.0f epochs built in %.0f ms\n",
                    tl_epochs->value, tl_ms ? tl_ms->value : 0.0);
    }
    out += line;
  }
  // Derived: per-phase profiler table (PR 7). profile.<phase>.<field>
  // counters aggregate shard wall/queue-wait/task counts; the table
  // groups them back by phase. snapshot.metrics is name-sorted, so the
  // four fields of one phase are adjacent and phases emerge in order.
  struct PhaseRow {
    std::string phase;
    double wall_us = 0, queue_wait_us = 0, tasks = 0, stalled = 0;
  };
  std::vector<PhaseRow> rows;
  for (const auto& m : snapshot.metrics) {
    if (m.kind != MetricKind::counter || m.name.rfind("profile.", 0) != 0)
      continue;
    const auto dot = m.name.rfind('.');
    const std::string phase = m.name.substr(8, dot - 8);
    const std::string field = m.name.substr(dot + 1);
    if (phase == "watchdog") continue;  // the global roll-up, not a phase
    if (rows.empty() || rows.back().phase != phase)
      rows.push_back(PhaseRow{phase, 0, 0, 0, 0});
    PhaseRow& row = rows.back();
    if (field == "wall_us") row.wall_us = m.value;
    else if (field == "queue_wait_us") row.queue_wait_us = m.value;
    else if (field == "tasks") row.tasks = m.value;
    else if (field == "stalled") row.stalled = m.value;
  }
  if (!rows.empty()) {
    out += "  phase profile:\n";
    for (const PhaseRow& row : rows) {
      std::snprintf(line, sizeof(line),
                    "    %-28s tasks=%-6.0f wall=%-9.1fms queue-wait=%-9.1fms "
                    "stalled=%.0f\n",
                    row.phase.c_str(), row.tasks, row.wall_us / 1000.0,
                    row.queue_wait_us / 1000.0, row.stalled);
      out += line;
    }
  }
  // Derived: flight-recorder roll-up when the recorder was enabled.
  const MetricValue* rec_events = snapshot.find("recorder.events");
  const MetricValue* rec_dropped = snapshot.find("recorder.dropped");
  if (rec_events && rec_events->value > 0) {
    std::snprintf(line, sizeof(line),
                  "  flight recorder: %.0f events flushed, %.0f dropped to "
                  "ring overflow\n",
                  rec_events->value, rec_dropped ? rec_dropped->value : 0.0);
    out += line;
  }
  // Derived: fault-injection roll-up when any fault.hit.* counter fired.
  double fault_hits = 0;
  for (const auto& m : snapshot.metrics) {
    if (m.kind == MetricKind::counter && m.name.rfind("fault.hit.", 0) == 0) {
      // satlint: deterministic-merge: snapshot.metrics is sorted by name
      fault_hits += m.value;
    }
  }
  if (fault_hits > 0) {
    const MetricValue* degraded = snapshot.find("runtime.shard.degraded");
    const MetricValue* retries = snapshot.find("runtime.shard.retry");
    std::snprintf(line, sizeof(line),
                  "  fault injection: %.0f hits, %.0f retries, %.0f degraded "
                  "shards\n",
                  fault_hits, retries ? retries->value : 0.0,
                  degraded ? degraded->value : 0.0);
    out += line;
  }
  return out;
}

std::vector<std::string> nonfinite_metrics(const Snapshot& snapshot) {
  std::vector<std::string> out;
  for (const MetricValue& m : snapshot.metrics) {
    bool bad = !std::isfinite(m.value) || !std::isfinite(m.sum);
    for (const double b : m.bounds) bad = bad || !std::isfinite(b);
    if (bad) out.push_back(m.name);
  }
  return out;
}

bool write_metrics_file(const std::string& path, const Snapshot& snapshot,
                        const RunManifest& manifest) {
  std::ofstream file;
  std::ostream* out = nullptr;
  if (!open_out(path, &file, &out)) return false;
  *out << to_prometheus(snapshot, manifest);
  return true;
}

bool write_trace_file(const std::string& path, const Snapshot& snapshot,
                      const std::vector<SpanRecord>& spans,
                      const RunManifest& manifest) {
  std::ofstream file;
  std::ostream* out = nullptr;
  if (!open_out(path, &file, &out)) return false;
  *out << to_jsonl(snapshot, manifest) << spans_jsonl(spans);
  return true;
}

bool write_trace_file(const std::string& path, const Snapshot& snapshot,
                      const std::vector<SpanRecord>& spans,
                      const std::vector<ResolvedEvent>& events,
                      const RunManifest& manifest) {
  std::ofstream file;
  std::ostream* out = nullptr;
  if (!open_out(path, &file, &out)) return false;
  *out << to_jsonl(snapshot, manifest) << spans_jsonl(spans)
       << events_jsonl(events);
  return true;
}

}  // namespace satnet::obs
