// Process-wide metrics registry for the campaign runtime.
//
// Hot-path discipline: incrementing a Counter or observing into a
// Histogram is one relaxed atomic add on a thread-striped cell — no
// locks, no allocation, no contention between workers pinned to
// different stripes. A scrape merges the stripes under the registry
// mutex and returns an immutable Snapshot; exporters (obs/export.hpp)
// render snapshots as Prometheus text or JSON lines.
//
// Determinism contract: metrics are observation-only. Nothing in the
// simulation may read a metric back, so enabling/disabling the registry
// (or racing scrapes against a running campaign) can never perturb
// simulation output. The determinism suite asserts this byte-for-byte.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace satnet::obs {

/// Number of thread stripes per metric. Each thread is assigned one
/// stripe for its lifetime; two threads sharing a stripe is correct
/// (atomic adds), merely contended.
inline constexpr std::size_t kStripes = 16;

/// Stable stripe index of the calling thread in [0, kStripes).
std::size_t this_thread_stripe();

/// Portable lock-free add for atomic<double> (fetch_add on floating
/// atomics is C++20; the CAS loop keeps us independent of libstdc++
/// feature level).
inline void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

enum class MetricKind { counter, gauge, histogram };

std::string to_string(MetricKind kind);

/// Merged value of one metric at scrape time.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::counter;
  double value = 0;  ///< counter total or gauge level
  // Histogram-only fields. `counts` has bounds.size() + 1 entries; the
  // last is the overflow (+Inf) bucket. Counts are per-bucket, not
  // cumulative (exporters cumulate for Prometheus).
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0;
  std::uint64_t count = 0;
};

/// Immutable merged view of every registered metric, sorted by name.
struct Snapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view name) const;
};

struct alignas(64) StripedCell {
  std::atomic<std::uint64_t> v{0};
};

/// Monotonic counter. add() is a relaxed fetch_add on the caller's
/// stripe.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[this_thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<StripedCell, kStripes> cells_;
};

/// Instantaneous level (queue depth, workers alive). Last write wins;
/// set/add are relaxed atomics on a single cell — gauges are not hot
/// enough to stripe.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration
/// and never change, so observe() is a search over a small immutable
/// array plus one relaxed add on the caller's stripe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds.size() + 1 entries, last = overflow).
  std::vector<std::uint64_t> counts() const;
  double sum() const;
  std::uint64_t count() const;
  void reset();

 private:
  struct alignas(64) Stripe {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0};
  };

  std::vector<double> bounds_;  ///< sorted upper bounds
  std::array<Stripe, kStripes> stripes_;
};

/// Default latency buckets (ms): 0.5, 1, 2, 5, ..., 5000 — wide enough
/// for per-shard wall-clock and per-flow RTT alike.
const std::vector<double>& latency_buckets_ms();

/// Registry of named metrics. Registration is find-or-create under a
/// mutex and returns a reference that stays valid for the registry's
/// lifetime — call sites cache it (static local or member) so the hot
/// path never touches the map. Metric names are dot-separated
/// ("mlab.tests_generated"); exporters translate per format.
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented layer uses.
  static MetricsRegistry& global();

  /// Kill switch: while disabled, add/observe through the returned
  /// handles still execute (handles are plain objects), but scrape()
  /// reports disabled and exporters emit nothing. Simulation results
  /// are identical either way — metrics never feed back.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Throws std::logic_error if `name` is registered with another kind.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  /// `bounds` only applies on first registration.
  Histogram& histogram(std::string_view name, const std::vector<double>& bounds,
                       std::string_view help = "");

  /// Merged view of every metric; safe to call while workers are
  /// incrementing (relaxed reads may trail in-flight adds by design).
  Snapshot scrape() const;

  /// Zeroes every value; registrations (and cached references) survive.
  void reset_values();

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricKind kind, std::string_view help);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
  std::atomic<bool> enabled_{true};
};

}  // namespace satnet::obs
