// Shard-aware tracing for the campaign runtime.
//
// A ScopedSpan times one unit of work (a shard body, a pipeline stage)
// and appends a SpanRecord to the calling thread's buffer when it goes
// out of scope. Buffers are thread-local, so recording never contends
// with other workers; drain() collects every buffer and merges the
// spans in canonical (phase, shard_key, seq) order — the merged trace
// has the same span set and order for any thread count, only the
// wall-clock fields differ run to run.
//
// Tracing is off by default: a disabled tracer makes ScopedSpan a pair
// of relaxed atomic loads and nothing more. Like metrics, spans are
// observation-only — simulation state never reads them back.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace satnet::obs {

/// One completed span. `phase` groups spans of the same fan-out (e.g.
/// "mlab.campaign"); `shard_key` orders spans within the phase;
/// `seq` breaks ties for multiple spans of one shard (recorded in
/// completion order by the single thread that ran the shard).
struct SpanRecord {
  std::string phase;
  std::string name;
  std::uint64_t shard_key = 0;
  double start_ms = 0;     ///< since tracer epoch (wall-clock, non-deterministic)
  double duration_ms = 0;  ///< wall-clock, non-deterministic
  std::uint64_t seq = 0;
};

class Tracer {
 public:
  Tracer();
  ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer ScopedSpan uses by default.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends to the calling thread's buffer (registering it on first
  /// use). Ignored while disabled.
  void record(SpanRecord span);

  /// Collects every thread's spans, empties the buffers, and returns
  /// the merged trace sorted by (phase, shard_key, seq).
  std::vector<SpanRecord> drain();

  /// Milliseconds since the tracer's epoch (steady clock).
  double now_ms() const;

 private:
  struct LocalBuf {
    std::mutex mu;  ///< uncontended except against a concurrent drain
    std::vector<SpanRecord> spans;
    std::uint64_t next_seq = 0;
  };

  LocalBuf& local_buf();

  const std::uint64_t tracer_id_;
  std::atomic<bool> enabled_{false};
  std::mutex mu_;  ///< guards bufs_
  std::vector<std::shared_ptr<LocalBuf>> bufs_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: times construction-to-destruction and records into the
/// tracer (global() unless one is passed). Cheap no-op when disabled.
class ScopedSpan {
 public:
  ScopedSpan(std::string phase, std::string name, std::uint64_t shard_key = 0,
             Tracer* tracer = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  ///< null when tracing was disabled at entry
  std::string phase_;
  std::string name_;
  std::uint64_t shard_key_ = 0;
  double start_ms_ = 0;
};

}  // namespace satnet::obs
