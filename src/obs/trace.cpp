#include "obs/trace.hpp"

#include <algorithm>
#include <tuple>

namespace satnet::obs {

namespace {

/// Each tracer instance gets a unique id so the thread-local buffer
/// cache can tell tracers apart even across destruction/reuse of the
/// same address (test tracers come and go; the cache must never hand a
/// dead tracer's buffer to a new one).
std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TlsSlot {
  std::uint64_t tracer_id = 0;
  std::shared_ptr<void> buf;  ///< type-erased LocalBuf keepalive
  void* raw = nullptr;
};

thread_local TlsSlot tls_slot;

}  // namespace

Tracer::Tracer()
    // satlint:allow(nondet-source): span timestamps are telemetry; exports order by (phase,shard,seq), never by time
    // satlint:allow(nondet-taint): the epoch taints only span wall-clock fields, which no export orders or hashes by
    : tracer_id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  // satlint:allow(shared-state): the process-wide tracer singleton; spans land in thread-local buffers, drain() merges deterministically
  static Tracer t;
  return t;
}

double Tracer::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             // satlint:allow(nondet-source): span timestamps are telemetry; exports order by (phase,shard,seq), never by time
             // satlint:allow(nondet-taint): callers inherit only span duration telemetry; exports order by (phase,shard,seq)
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::LocalBuf& Tracer::local_buf() {
  if (tls_slot.tracer_id != tracer_id_) {
    auto buf = std::make_shared<LocalBuf>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      bufs_.push_back(buf);
    }
    tls_slot.tracer_id = tracer_id_;
    tls_slot.raw = buf.get();
    tls_slot.buf = std::move(buf);
  }
  return *static_cast<LocalBuf*>(tls_slot.raw);
}

void Tracer::record(SpanRecord span) {
  if (!enabled()) return;
  LocalBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  span.seq = buf.next_seq++;
  buf.spans.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::drain() {
  std::vector<std::shared_ptr<LocalBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), std::make_move_iterator(buf->spans.begin()),
               std::make_move_iterator(buf->spans.end()));
    buf->spans.clear();
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return std::tie(a.phase, a.shard_key, a.seq) <
           std::tie(b.phase, b.shard_key, b.seq);
  });
  return out;
}

ScopedSpan::ScopedSpan(std::string phase, std::string name,
                       std::uint64_t shard_key, Tracer* tracer) {
  Tracer* t = tracer ? tracer : &Tracer::global();
  if (!t->enabled()) return;
  tracer_ = t;
  phase_ = std::move(phase);
  name_ = std::move(name);
  shard_key_ = shard_key;
  start_ms_ = t->now_ms();
}

ScopedSpan::~ScopedSpan() {
  if (!tracer_) return;
  SpanRecord span;
  span.phase = std::move(phase_);
  span.name = std::move(name_);
  span.shard_key = shard_key_;
  span.start_ms = start_ms_;
  span.duration_ms = tracer_->now_ms() - start_ms_;
  tracer_->record(std::move(span));
}

}  // namespace satnet::obs
