#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace satnet::obs {

namespace {

Counter& phase_counter(std::string_view phase, const char* suffix,
                       const char* help) {
  std::string name = "profile.";
  name += phase;
  name += suffix;
  return MetricsRegistry::global().counter(name, help);
}

}  // namespace

PhaseProfiler& PhaseProfiler::global() {
  // satlint:allow(shared-state): process-wide profiler singleton; aggregation is mutex-guarded and observation-only
  static PhaseProfiler p;
  return p;
}

void PhaseProfiler::set_stall_multiple(double multiple) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_multiple_ = multiple >= 1.0 ? multiple : 1.0;
}

void PhaseProfiler::set_stall_min_ms(double min_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_min_ms_ = min_ms >= 0.0 ? min_ms : 0.0;
}

double PhaseProfiler::stall_multiple() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_multiple_;
}

double PhaseProfiler::stall_min_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_min_ms_;
}

void PhaseProfiler::attempt_done(std::string_view phase, std::size_t shard,
                                 double wall_ms, double queue_wait_ms) {
  phase_counter(phase, ".wall_us", "total shard wall time for the phase")
      .add(static_cast<std::uint64_t>(wall_ms * 1000.0));
  phase_counter(phase, ".queue_wait_us", "total submit-to-start queue wait")
      .add(static_cast<std::uint64_t>(queue_wait_ms * 1000.0));
  phase_counter(phase, ".tasks", "shard attempts profiled").add(1);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(phase);
  if (it == open_.end()) it = open_.emplace(std::string(phase), std::vector<Attempt>{}).first;
  it->second.push_back(Attempt{shard, wall_ms});
}

std::size_t PhaseProfiler::phase_done(std::string_view phase) {
  std::vector<Attempt> attempts;
  double multiple = 0;
  double min_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_.find(phase);
    if (it == open_.end()) return 0;
    attempts.swap(it->second);
    open_.erase(it);
    multiple = stall_multiple_;
    min_ms = stall_min_ms_;
  }
  if (attempts.empty()) return 0;
  // Median of the phase's attempt wall times (upper median for even n —
  // the conservative choice: a higher median flags fewer shards).
  std::vector<double> walls;
  walls.reserve(attempts.size());
  for (const Attempt& a : attempts) walls.push_back(a.wall_ms);
  const std::size_t mid = walls.size() / 2;
  std::nth_element(walls.begin(), walls.begin() + static_cast<std::ptrdiff_t>(mid),
                   walls.end());
  const double median = walls[mid];
  const double threshold = std::max(median * multiple, min_ms);
  std::size_t flagged = 0;
  for (const Attempt& a : attempts) {
    if (a.wall_ms <= threshold) continue;
    ++flagged;
    phase_counter(phase, ".stalled", "shards flagged by the stall watchdog")
        .add(1);
    MetricsRegistry::global()
        .counter("profile.watchdog.flagged",
                 "shards flagged as stragglers across all phases")
        .add(1);
    // Telemetry-only by construction: stall verdicts depend on
    // wall-clock, so the record carries det=0 and stays out of goldens.
    FlightRecorder::global().record_for_shard(
        phase, a.shard, 0, EventKind::stall_flag,
        static_cast<std::uint64_t>(a.wall_ms),
        static_cast<std::uint64_t>(threshold), /*det=*/false);
    std::fprintf(stderr,
                 "profile: stall watchdog: phase %.*s shard %zu took %.1f ms "
                 "(threshold %.1f ms, median %.1f ms)\n",
                 static_cast<int>(phase.size()), phase.data(), a.shard,
                 a.wall_ms, threshold, median);
  }
  return flagged;
}

}  // namespace satnet::obs
