#include "mlab/dataset.hpp"

#include <bit>
#include <numeric>

namespace satnet::mlab {

namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

void mix(std::uint64_t& h, const std::string& s) {
  mix(h, static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
}

}  // namespace

void NdtDataset::append(NdtDataset&& other) {
  if (records_.empty()) {
    records_ = std::move(other.records_);
    return;
  }
  records_.reserve(records_.size() + other.records_.size());
  for (auto& r : other.records_) records_.push_back(std::move(r));
  other.records_.clear();
}

std::uint64_t NdtDataset::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  mix(h, static_cast<std::uint64_t>(records_.size()));
  for (const auto& r : records_) {
    mix(h, r.t_sec);
    mix(h, static_cast<std::uint64_t>(r.asn));
    mix(h, static_cast<std::uint64_t>(r.client_ip.value()));
    mix(h, static_cast<std::uint64_t>(r.prefix.network().value()));
    mix(h, r.country);
    mix(h, r.latency_p5_ms);
    mix(h, r.latency_median_ms);
    mix(h, r.jitter_p95_ms);
    mix(h, r.download_mbps);
    mix(h, r.upload_mbps);
    mix(h, r.retrans_frac);
    mix(h, static_cast<std::uint64_t>(r.n_handoffs));
    mix(h, r.truth_operator);
    mix(h, static_cast<std::uint64_t>(r.truth_satellite));
    mix(h, static_cast<std::uint64_t>(r.truth_orbit));
  }
  return h;
}

std::map<bgp::Asn, std::vector<std::size_t>> NdtDataset::by_asn() const {
  std::map<bgp::Asn, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < records_.size(); ++i) out[records_[i].asn].push_back(i);
  return out;
}

std::map<net::Prefix24, std::vector<std::size_t>> NdtDataset::by_prefix(
    const std::vector<std::size_t>& subset) const {
  std::map<net::Prefix24, std::vector<std::size_t>> out;
  for (const std::size_t i : subset) out[records_[i].prefix].push_back(i);
  return out;
}

std::vector<double> NdtDataset::field(const std::vector<std::size_t>& subset,
                                      double NdtRecord::* member) const {
  std::vector<double> out;
  out.reserve(subset.size());
  for (const std::size_t i : subset) out.push_back(records_[i].*member);
  return out;
}

std::vector<std::size_t> NdtDataset::all() const {
  std::vector<std::size_t> out(records_.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

std::vector<std::size_t> NdtDataset::select(
    const std::function<bool(const NdtRecord&)>& pred) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (pred(records_[i])) out.push_back(i);
  }
  return out;
}

}  // namespace satnet::mlab
