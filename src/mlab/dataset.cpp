#include "mlab/dataset.hpp"

#include <numeric>

namespace satnet::mlab {

std::map<bgp::Asn, std::vector<std::size_t>> NdtDataset::by_asn() const {
  std::map<bgp::Asn, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < records_.size(); ++i) out[records_[i].asn].push_back(i);
  return out;
}

std::map<net::Prefix24, std::vector<std::size_t>> NdtDataset::by_prefix(
    const std::vector<std::size_t>& subset) const {
  std::map<net::Prefix24, std::vector<std::size_t>> out;
  for (const std::size_t i : subset) out[records_[i].prefix].push_back(i);
  return out;
}

std::vector<double> NdtDataset::field(const std::vector<std::size_t>& subset,
                                      double NdtRecord::* member) const {
  std::vector<double> out;
  out.reserve(subset.size());
  for (const std::size_t i : subset) out.push_back(records_[i].*member);
  return out;
}

std::vector<std::size_t> NdtDataset::all() const {
  std::vector<std::size_t> out(records_.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

std::vector<std::size_t> NdtDataset::select(
    const std::function<bool(const NdtRecord&)>& pred) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (pred(records_[i])) out.push_back(i);
  }
  return out;
}

}  // namespace satnet::mlab
