#include "mlab/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orbit/access.hpp"
#include "orbit/timeline.hpp"
#include "runtime/sharded.hpp"
#include "sim/event_queue.hpp"

namespace satnet::mlab {

namespace {

/// One unit of campaign work: a contiguous chunk of one operator's tests.
struct CampaignShard {
  std::size_t spec_index = 0;
  std::size_t k_begin = 0;  ///< test indices [k_begin, k_end) of the operator
  std::size_t k_end = 0;
};

/// The per-test schedule draw: which subscriber runs test k of an
/// operator, and when. Shared by the shard bodies and the timeline
/// pre-pass below — both replay the identical fork_stable stream, so
/// the pre-pass can enumerate every access query the campaign will make
/// without perturbing a single draw.
struct TestDraw {
  const synth::Subscriber* sub = nullptr;
  double t_sec = 0;
  stats::Rng rng;  ///< the test's stream, positioned after the draws
};

TestDraw draw_test(const stats::Rng& spec_rng, std::size_t k,
                   const std::vector<const synth::Subscriber*>& subs,
                   double horizon_sec) {
  stats::Rng test_rng = spec_rng.fork_stable(k);
  // Users run speed tests at arbitrary times across the window; a
  // heavy-tailed share of tests comes from a few repeat testers, which
  // is what makes per-prefix filtering meaningful.
  const auto* sub = subs[static_cast<std::size_t>(std::floor(
      std::pow(test_rng.uniform(), 1.6) * static_cast<double>(subs.size())))];
  const double t = test_rng.uniform(0.0, horizon_sec);
  return TestDraw{sub, t, std::move(test_rng)};
}

}  // namespace

std::vector<std::pair<const orbit::AccessNetwork*, std::vector<orbit::TimelineQuery>>>
planned_access_queries(const synth::World& world, const CampaignConfig& config) {
  const double horizon_sec = config.duration_days * 86400.0;
  std::map<std::size_t, std::vector<const synth::Subscriber*>> by_spec;
  for (const auto& sub : world.subscribers()) by_spec[sub.spec_index].push_back(&sub);
  const stats::Rng master(config.seed);
  // Grouped by network identity so query order inside one network is
  // the canonical (spec, k) schedule order — deterministic regardless
  // of which networks share snapshots.
  std::map<std::uint64_t,
           std::pair<const orbit::AccessNetwork*, std::vector<orbit::TimelineQuery>>>
      plan;
  for (const auto& [spec_index, subs] : by_spec) {
    const synth::SnoSpec& spec = world.specs()[spec_index];
    const std::size_t n_tests = scheduled_tests(spec, config);
    if (n_tests == 0 || subs.empty()) continue;
    const stats::Rng spec_rng = master.fork_stable(spec.name);
    for (std::size_t k = 0; k < n_tests; ++k) {
      const TestDraw draw = draw_test(spec_rng, k, subs, horizon_sec);
      if (!world.truly_satellite(*draw.sub, draw.t_sec)) continue;
      const orbit::AccessNetwork& net =
          world.access_for(draw.sub->spec_index, draw.sub->orbit);
      if (net.config().orbit == orbit::OrbitClass::geo) continue;
      auto& slot = plan[net.identity_hash()];
      slot.first = &net;
      slot.second.push_back({draw.sub->location, draw.t_sec});
    }
  }
  std::vector<std::pair<const orbit::AccessNetwork*, std::vector<orbit::TimelineQuery>>>
      out;
  out.reserve(plan.size());
  for (auto& [identity, entry] : plan) out.push_back(std::move(entry));
  return out;
}

std::size_t scheduled_tests(const synth::SnoSpec& spec, const CampaignConfig& config) {
  if (!spec.in_mlab || spec.kind != synth::EntityKind::sno) return 0;
  const double scaled = static_cast<double>(spec.mlab_tests) * config.volume_scale;
  const auto floor_count =
      std::min<std::size_t>(config.min_tests_per_sno, spec.mlab_tests);
  return std::max<std::size_t>(static_cast<std::size_t>(std::llround(scaled)),
                               floor_count);
}

NdtDataset run_campaign(const synth::World& world, const CampaignConfig& config) {
  return run_campaign(world, config, nullptr);
}

NdtDataset run_campaign(const synth::World& world, const CampaignConfig& config,
                        runtime::CampaignReport* report) {
  const double horizon_sec = config.duration_days * 86400.0;

  // Group subscribers by operator once (shared, read-only across shards).
  std::map<std::size_t, std::vector<const synth::Subscriber*>> by_spec;
  for (const auto& sub : world.subscribers()) by_spec[sub.spec_index].push_back(&sub);

  // Shard plan: each operator's tests split into chunks. The plan depends
  // only on the config, never on thread count.
  std::vector<CampaignShard> shards;
  for (const auto& [spec_index, subs] : by_spec) {
    const synth::SnoSpec& spec = world.specs()[spec_index];
    const std::size_t n_tests = scheduled_tests(spec, config);
    if (n_tests == 0 || subs.empty()) continue;
    for (const auto& [begin, end] : runtime::shard_ranges(n_tests, config.shard_chunk)) {
      shards.push_back({spec_index, begin, end});
    }
  }

  // Every stream below keys off stable identity: the operator stream off
  // (seed, operator name), the per-test stream off (operator stream, test
  // index k). A test draws the same numbers no matter which shard or
  // thread runs it.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& tests_generated =
      reg.counter("mlab.tests_generated", "NDT tests scheduled by the campaign");
  obs::Counter& records_kept =
      reg.counter("mlab.records", "NDT records produced (test ran to completion)");
  obs::Counter& outages =
      reg.counter("mlab.outages", "tests dropped because the link was in outage");
  obs::Counter& tests_with_retrans = reg.counter(
      "mlab.tests_with_retrans", "records with a nonzero retransmit fraction");

  const stats::Rng master(config.seed);
  // Timeline pre-pass: enumerate the exact access queries the shards
  // will make and precompute them; the shards' sample() calls replay
  // from the snapshot instead of deriving geometry on demand.
  if (orbit::timeline_enabled()) {
    for (auto& [net, queries] : planned_access_queries(world, config)) {
      orbit::EpochTimeline::ensure(*net, std::move(queries), config.threads);
    }
  }
  runtime::ShardedCampaign<NdtDataset> campaign(
      shards.size(),
      [&](std::size_t shard_index) {
        const CampaignShard& shard = shards[shard_index];
        const synth::SnoSpec& spec = world.specs()[shard.spec_index];
        // Per-operator shard timing: spans are keyed by shard index (the
        // canonical order) and named after the operator they simulate.
        obs::ScopedSpan span("mlab.operator", spec.name,
                             static_cast<std::uint64_t>(shard_index));
        const auto& subs = by_spec.find(shard.spec_index)->second;
        const stats::Rng spec_rng = master.fork_stable(spec.name);

        NdtDataset local;
        local.reserve(shard.k_end - shard.k_begin);
        sim::EventQueue queue;
        for (std::size_t k = shard.k_begin; k < shard.k_end; ++k) {
          TestDraw draw = draw_test(spec_rng, k, subs, horizon_sec);
          queue.schedule_at(draw.t_sec,
                            [&local, &world, sub = draw.sub, test_rng = std::move(draw.rng),
                             &config](sim::Time now) mutable {
                              if (auto rec = run_ndt(world, *sub, now, test_rng, config.ndt)) {
                                local.add(std::move(*rec));
                              }
                            });
        }
        queue.run();
        const std::size_t scheduled = shard.k_end - shard.k_begin;
        tests_generated.add(scheduled);
        records_kept.add(local.size());
        outages.add(scheduled - local.size());
        std::uint64_t retrans = 0;
        for (const auto& rec : local.records()) retrans += rec.retrans_frac > 0;
        tests_with_retrans.add(retrans);
        return local;
      },
      "mlab.campaign");

  // Canonical merge: shard-plan order, event-time order within a shard.
  // Under a degrade policy a quarantined shard contributes an empty
  // dataset piece — the merge order (and so the output bytes) is the
  // same at every thread count.
  NdtDataset dataset;
  for (auto& piece : campaign.run_with_report(config.threads, config.retry, report)) {
    dataset.append(std::move(piece));
  }
  return dataset;
}

}  // namespace satnet::mlab
