#include "mlab/campaign.hpp"

#include <algorithm>
#include <cmath>

namespace satnet::mlab {

std::size_t scheduled_tests(const synth::SnoSpec& spec, const CampaignConfig& config) {
  if (!spec.in_mlab || spec.kind != synth::EntityKind::sno) return 0;
  const double scaled = static_cast<double>(spec.mlab_tests) * config.volume_scale;
  const auto floor_count =
      std::min<std::size_t>(config.min_tests_per_sno, spec.mlab_tests);
  return std::max<std::size_t>(static_cast<std::size_t>(std::llround(scaled)),
                               floor_count);
}

NdtDataset run_campaign(const synth::World& world, const CampaignConfig& config) {
  NdtDataset dataset;
  stats::Rng rng(config.seed);
  sim::EventQueue queue;
  const double horizon_sec = config.duration_days * 86400.0;

  // Group subscribers by operator once.
  std::map<std::size_t, std::vector<const synth::Subscriber*>> by_spec;
  for (const auto& sub : world.subscribers()) by_spec[sub.spec_index].push_back(&sub);

  for (const auto& [spec_index, subs] : by_spec) {
    const synth::SnoSpec& spec = world.specs()[spec_index];
    const std::size_t n_tests = scheduled_tests(spec, config);
    if (n_tests == 0 || subs.empty()) continue;

    stats::Rng spec_rng = rng.fork(spec.name);
    dataset.reserve(dataset.size() + n_tests);
    for (std::size_t k = 0; k < n_tests; ++k) {
      // Users run speed tests at arbitrary times across the window; a
      // heavy-tailed share of tests comes from a few repeat testers,
      // which is what makes per-prefix filtering meaningful.
      const auto* sub = subs[static_cast<std::size_t>(std::floor(
          std::pow(spec_rng.uniform(), 1.6) * static_cast<double>(subs.size())))];
      const double t = spec_rng.uniform(0.0, horizon_sec);
      stats::Rng test_rng = spec_rng.fork(k);
      queue.schedule_at(t, [&dataset, &world, sub, test_rng,
                            &config](sim::Time now) mutable {
        if (auto rec = run_ndt(world, *sub, now, test_rng, config.ndt)) {
          dataset.add(std::move(*rec));
        }
      });
    }
  }

  queue.run();
  return dataset;
}

}  // namespace satnet::mlab
