// M-Lab measurement campaign: schedules NDT tests across the subscriber
// population over the study window and accumulates the dataset.
//
// Test volumes per operator follow the paper's Table 1 counts, scaled by
// `volume_scale` with a floor so the long tail of small operators stays
// represented (Kacific contributed only 34 tests in 26 months).
#pragma once

#include <utility>
#include <vector>

#include "mlab/dataset.hpp"
#include "orbit/timeline.hpp"
#include "runtime/sharded.hpp"
#include "sim/event_queue.hpp"
#include "synth/world.hpp"

namespace satnet::mlab {

struct CampaignConfig {
  double duration_days = 730.0;  ///< Jan 2021 - Mar 2023 window, scaled
  double volume_scale = 0.002;   ///< fraction of the paper's test volume
  std::size_t min_tests_per_sno = 30;
  std::uint64_t seed = 7;
  /// Worker threads for the sharded runtime; 0 = hardware_concurrency.
  /// The dataset is bit-identical for every value (see src/runtime).
  unsigned threads = 0;
  /// Max tests per shard; big operators (Starlink is ~98% of the paper's
  /// volume) split into several shards so the pool stays balanced.
  std::size_t shard_chunk = 1024;
  /// Failure policy for the sharded runtime (retry/degrade; see
  /// runtime::RetryPolicy). Defaults to abort-on-error, no retries.
  runtime::RetryPolicy retry;
  NdtOptions ndt;
};

/// Number of tests the campaign schedules for one operator.
std::size_t scheduled_tests(const synth::SnoSpec& spec, const CampaignConfig& config);

/// The satellite access queries the campaign will make, grouped per
/// access network in deterministic (network identity, schedule) order.
/// Replays the same fork_stable draw streams the shards use, so the
/// enumeration is exact without perturbing a single campaign draw. This
/// is what run_campaign hands to EpochTimeline::ensure before sharding;
/// exposed so benches and timeline-serving tools can enumerate (and
/// precompute) a campaign's access workload without running it.
std::vector<std::pair<const orbit::AccessNetwork*, std::vector<orbit::TimelineQuery>>>
planned_access_queries(const synth::World& world, const CampaignConfig& config);

/// Runs the whole campaign sharded across the runtime thread pool and
/// returns the accumulated dataset. Each shard (one chunk of one
/// operator's tests) runs its own EventQueue with an Rng forked by the
/// stable key (operator name, test index); shard outputs merge in
/// canonical (operator, chunk, event-time) order. Deterministic in
/// (world seed, campaign seed) — never in thread count.
NdtDataset run_campaign(const synth::World& world, const CampaignConfig& config);

/// run_campaign() that also reports what happened to the shards
/// (retries, quarantined/degraded shards) under config.retry.
NdtDataset run_campaign(const synth::World& world, const CampaignConfig& config,
                        runtime::CampaignReport* report);

}  // namespace satnet::mlab
