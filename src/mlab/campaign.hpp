// M-Lab measurement campaign: schedules NDT tests across the subscriber
// population over the study window and accumulates the dataset.
//
// Test volumes per operator follow the paper's Table 1 counts, scaled by
// `volume_scale` with a floor so the long tail of small operators stays
// represented (Kacific contributed only 34 tests in 26 months).
#pragma once

#include "mlab/dataset.hpp"
#include "sim/event_queue.hpp"
#include "synth/world.hpp"

namespace satnet::mlab {

struct CampaignConfig {
  double duration_days = 730.0;  ///< Jan 2021 - Mar 2023 window, scaled
  double volume_scale = 0.002;   ///< fraction of the paper's test volume
  std::size_t min_tests_per_sno = 30;
  std::uint64_t seed = 7;
  NdtOptions ndt;
};

/// Number of tests the campaign schedules for one operator.
std::size_t scheduled_tests(const synth::SnoSpec& spec, const CampaignConfig& config);

/// Runs the whole campaign on the discrete-event engine and returns the
/// accumulated dataset. Deterministic in (world seed, campaign seed).
NdtDataset run_campaign(const synth::World& world, const CampaignConfig& config);

}  // namespace satnet::mlab
