// NDT7-style speed tests over the simulated world.
//
// An NDT test is a single TCP bulk transfer to a nearby M-Lab server; the
// server's TCP_Info polling is the source of every field the paper's
// pipeline consumes (RTT p5 as access latency, jitter p95, retransmitted
// bytes, delivery rate). Records additionally carry ground-truth labels
// (operator, truly-satellite) that the identification pipeline must not
// read — they exist so benches can score it.
#pragma once

#include <optional>
#include <string>

#include "stats/rng.hpp"
#include "synth/world.hpp"

namespace satnet::mlab {

/// One NDT speed-test row, as exported to the BigQuery-like table.
struct NdtRecord {
  double t_sec = 0;                ///< campaign time of the test
  bgp::Asn asn = 0;
  net::Ipv4 client_ip;
  net::Prefix24 prefix;            ///< client /24 (M-Lab annotation)
  std::string country;             ///< approximate client geolocation
  double latency_p5_ms = 0;        ///< 5th pct of TCP RTT (access latency)
  double latency_median_ms = 0;
  double jitter_p95_ms = 0;        ///< 95th pct of |ΔRTT|
  double download_mbps = 0;
  double upload_mbps = 0;          ///< 0 when the upload leg was skipped
  double retrans_frac = 0;         ///< bytes_retrans / bytes_sent
  std::size_t n_handoffs = 0;
  // --- ground truth (scoring only; the pipeline must not read these) ---
  std::string truth_operator;
  bool truth_satellite = false;
  orbit::OrbitClass truth_orbit = orbit::OrbitClass::geo;
};

struct NdtOptions {
  double test_duration_ms = 10000.0;  ///< NDT7 runs 10 s per direction
  bool measure_upload = false;        ///< the paper analyzes download only
};

/// Runs one NDT test for `sub` at time `t_sec`. Returns nullopt when the
/// satellite link is in outage (no serving satellite / gateway).
std::optional<NdtRecord> run_ndt(const synth::World& world,
                                 const synth::Subscriber& sub, double t_sec,
                                 stats::Rng& rng,
                                 const NdtOptions& options = NdtOptions{});

}  // namespace satnet::mlab
