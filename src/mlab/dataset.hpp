// The BigQuery-like NDT record table plus grouping/selection helpers used
// by the identification pipeline and the benches.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mlab/ndt.hpp"

namespace satnet::mlab {

class NdtDataset {
 public:
  void add(NdtRecord record) { records_.push_back(std::move(record)); }
  void reserve(std::size_t n) { records_.reserve(n); }
  /// Appends another dataset's records (shard merge). Order-preserving.
  void append(NdtDataset&& other);

  /// Order-sensitive FNV-1a fingerprint over every field of every
  /// record. Two datasets hash equal iff they are bit-identical, which
  /// is what the runtime's determinism tests assert across thread
  /// counts.
  std::uint64_t hash() const;

  const std::vector<NdtRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Indices of records grouped by originating ASN.
  std::map<bgp::Asn, std::vector<std::size_t>> by_asn() const;
  /// Indices grouped by client /24 within one ASN set.
  std::map<net::Prefix24, std::vector<std::size_t>> by_prefix(
      const std::vector<std::size_t>& subset) const;

  /// Extracts one field across a subset of records.
  std::vector<double> field(const std::vector<std::size_t>& subset,
                            double NdtRecord::* member) const;
  /// All indices.
  std::vector<std::size_t> all() const;
  /// Indices matching a predicate.
  std::vector<std::size_t> select(
      const std::function<bool(const NdtRecord&)>& pred) const;

 private:
  std::vector<NdtRecord> records_;
};

}  // namespace satnet::mlab
