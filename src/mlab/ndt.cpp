#include "mlab/ndt.hpp"

#include "transport/tcp.hpp"

namespace satnet::mlab {

std::optional<NdtRecord> run_ndt(const synth::World& world,
                                 const synth::Subscriber& sub, double t_sec,
                                 stats::Rng& rng, const NdtOptions& options) {
  const synth::PathSample path = world.sample_path(sub, t_sec, rng);
  if (!path.ok) return std::nullopt;

  transport::TcpOptions tcp;
  transport::TcpFlow down(path.download, tcp, rng.fork("ndt-down"));
  const transport::FlowResult d = down.run_for(options.test_duration_ms);

  NdtRecord r;
  // Rare middlebox/VPN artifact: the client tunnels through a terrestrial
  // exit, so the measured latency bears no relation to the access link.
  // These outliers are why the paper's strict prefix filter discards
  // otherwise-clean prefixes (75.105.63.0/24) and must be tolerated by
  // the relaxation step.
  const bool vpn_artifact = rng.chance(0.012);
  r.t_sec = t_sec;
  r.asn = sub.asn;
  r.client_ip = sub.ip;
  r.prefix = sub.prefix;
  r.country = sub.country;
  r.latency_p5_ms = vpn_artifact ? rng.uniform(25.0, 120.0) : d.rtt_p5_ms;
  r.latency_median_ms = vpn_artifact ? r.latency_p5_ms * rng.uniform(1.1, 1.6)
                                     : d.rtt_median_ms;
  r.jitter_p95_ms = d.jitter_p95_ms;
  r.download_mbps = d.goodput_mbps;
  r.retrans_frac = d.retrans_fraction;
  r.n_handoffs = d.n_handoffs;

  if (options.measure_upload) {
    transport::TcpFlow up(path.upload, tcp, rng.fork("ndt-up"));
    r.upload_mbps = up.run_for(options.test_duration_ms).goodput_mbps;
  }

  r.truth_operator = std::string(world.specs()[sub.spec_index].name);
  r.truth_satellite = world.truly_satellite(sub, t_sec) &&
                      path.tech_used == synth::AccessTech::satellite;
  r.truth_orbit = sub.orbit;
  return r;
}

}  // namespace satnet::mlab
