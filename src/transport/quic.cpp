#include "transport/quic.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace satnet::transport {

namespace {
constexpr double kMaxCwnd = 12000.0;
constexpr double kBeta = 0.7;
}

QuicFlow::QuicFlow(PathProfile path, QuicOptions options, stats::Rng rng)
    : path_(path), opt_(options), rng_(rng), cwnd_(options.initial_cwnd) {
  // Encrypted transport: the operator's PEP cannot terminate the
  // connection, so the satellite segment's losses are always end-to-end.
  path_.pep = false;
}

QuicFlow::Round QuicFlow::simulate_round() {
  Round out;
  const double bdp = std::max(path_.bdp_packets(opt_.mss_bytes), 1.0);
  const double buffer = std::max(path_.buffer_bdp * bdp, 4.0);
  const double excess = std::max(0.0, cwnd_ - bdp);
  const double queued = std::min(excess, buffer);
  const double queue_ms = queued * opt_.mss_bytes * 8.0 / (path_.bottleneck_mbps * 1e6) * 1e3;
  const double overflow = std::max(0.0, excess - buffer);

  double rtt = path_.base_rtt_ms + queue_ms + std::abs(rng_.normal(0.0, path_.jitter_ms));
  double handoff_loss = 0.0;
  if (path_.handoff_rate_hz > 0.0 &&
      rng_.chance(std::min(1.0, path_.handoff_rate_hz * rtt / 1e3))) {
    out.handoff = true;
    rtt += path_.handoff_spike_ms;
    handoff_loss = static_cast<double>(rng_.poisson(cwnd_ * path_.handoff_loss_frac));
  }
  const double random_loss = static_cast<double>(
      rng_.poisson(cwnd_ * (path_.sat_loss + path_.ground_loss)));

  out.rtt_ms = rtt;
  out.sent = cwnd_;
  out.lost = std::floor(std::min(cwnd_, random_loss + handoff_loss + overflow));
  out.spurious_pto = path_.spurious_rto_prob > 0 &&
                     rng_.chance(path_.spurious_rto_prob * opt_.spurious_pto_factor);
  return out;
}

void QuicFlow::react(const Round& round) {
  if (round.lost >= 1.0) {
    // Packet-ranged loss recovery: only the lost packets are resent; the
    // window reduction is one multiplicative decrease regardless of burst
    // size (no go-back-N, no forced idle).
    ssthresh_ = std::max(cwnd_ * kBeta, 2.0);
    cwnd_ = ssthresh_;
    const auto lost_bytes =
        static_cast<std::uint64_t>(std::llround(round.lost * opt_.mss_bytes));
    bytes_retrans_ += lost_bytes;
    bytes_sent_ += lost_bytes;
    bytes_acked_ += lost_bytes;  // recovered data is delivered
  } else if (round.spurious_pto) {
    // A spurious probe timeout costs one probe packet and an idle PTO,
    // not a window's worth of duplicates.
    const double pto = std::max(opt_.min_pto_ms, srtt_ms_ * 1.5);
    elapsed_ms_ += pto;
    const auto probe_bytes = static_cast<std::uint64_t>(opt_.mss_bytes);
    bytes_sent_ += probe_bytes;
    bytes_retrans_ += probe_bytes;
    cwnd_ = std::max(cwnd_ * kBeta, 2.0);
    ++n_ptos_;
  } else if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2.0, ssthresh_);
  } else {
    cwnd_ += 1.0;  // NewReno-style avoidance (QUIC's default)
  }
  cwnd_ = std::min(cwnd_, kMaxCwnd);
}

void QuicFlow::record(const Round& round) {
  srtt_ms_ = srtt_ms_ == 0 ? round.rtt_ms : 0.875 * srtt_ms_ + 0.125 * round.rtt_ms;
  if (last_rtt_ms_ > 0) jitter_samples_.push_back(std::abs(round.rtt_ms - last_rtt_ms_));
  last_rtt_ms_ = round.rtt_ms;
  rtt_samples_.push_back(round.rtt_ms);
  while (next_snapshot_ms_ <= elapsed_ms_) {
    TcpInfoSnapshot s;
    s.t_ms = next_snapshot_ms_;
    s.rtt_ms = srtt_ms_;
    s.last_rtt_ms = last_rtt_ms_;
    s.bytes_sent = bytes_sent_;
    s.bytes_retrans = bytes_retrans_;
    s.bytes_acked = bytes_acked_;
    s.cwnd_packets = cwnd_;
    s.delivery_rate_mbps =
        elapsed_ms_ > 0 ? static_cast<double>(bytes_acked_) * 8.0 / (elapsed_ms_ * 1e3)
                        : 0.0;
    snapshots_.push_back(s);
    next_snapshot_ms_ += opt_.snapshot_interval_ms;
  }
}

FlowResult QuicFlow::finish() {
  FlowResult r;
  r.duration_ms = elapsed_ms_;
  r.bytes_sent = bytes_sent_;
  r.bytes_retrans = bytes_retrans_;
  r.bytes_acked = bytes_acked_;
  r.goodput_mbps =
      elapsed_ms_ > 0 ? static_cast<double>(bytes_acked_) * 8.0 / (elapsed_ms_ * 1e3) : 0.0;
  r.rtt_p5_ms = stats::percentile(rtt_samples_, 5);
  r.rtt_median_ms = stats::percentile(rtt_samples_, 50);
  r.jitter_p95_ms = jitter_samples_.empty() ? 0.0 : stats::percentile(jitter_samples_, 95);
  r.retrans_fraction =
      bytes_sent_ > 0 ? static_cast<double>(bytes_retrans_) / static_cast<double>(bytes_sent_)
                      : 0.0;
  r.n_handoffs = n_handoffs_;
  r.n_rtos = n_ptos_;
  r.snapshots = std::move(snapshots_);
  return r;
}

FlowResult QuicFlow::run_for(double duration_ms) {
  while (elapsed_ms_ < duration_ms) {
    const Round round = simulate_round();
    elapsed_ms_ += round.rtt_ms;
    if (round.handoff) ++n_handoffs_;
    const auto sent_bytes =
        static_cast<std::uint64_t>(std::llround(round.sent * opt_.mss_bytes));
    const auto lost_bytes =
        static_cast<std::uint64_t>(std::llround(round.lost * opt_.mss_bytes));
    bytes_sent_ += sent_bytes;
    bytes_acked_ += sent_bytes - std::min(sent_bytes, lost_bytes);
    react(round);
    record(round);
  }
  return finish();
}

FlowResult QuicFlow::run_bytes(std::uint64_t transfer_bytes, double max_ms) {
  while (bytes_acked_ < transfer_bytes && elapsed_ms_ < max_ms) {
    const double remaining =
        static_cast<double>(transfer_bytes - bytes_acked_) / opt_.mss_bytes;
    const double saved = cwnd_;
    cwnd_ = std::min(cwnd_, std::max(1.0, remaining));
    const Round round = simulate_round();
    elapsed_ms_ += round.rtt_ms;
    if (round.handoff) ++n_handoffs_;
    const auto sent_bytes =
        static_cast<std::uint64_t>(std::llround(round.sent * opt_.mss_bytes));
    const auto lost_bytes =
        static_cast<std::uint64_t>(std::llround(round.lost * opt_.mss_bytes));
    bytes_sent_ += sent_bytes;
    bytes_acked_ += sent_bytes - std::min(sent_bytes, lost_bytes);
    cwnd_ = saved;
    react(round);
    record(round);
  }
  return finish();
}

double quic_fetch_time_ms(const PathProfile& path, std::uint64_t bytes, stats::Rng& rng,
                          const QuicOptions& options) {
  // 1-RTT handshake (vs 2 for TCP+TLS 1.3).
  const double handshake = path.base_rtt_ms + std::abs(rng.normal(0.0, path.jitter_ms));
  QuicFlow flow(path, options, rng.fork(bytes));
  return handshake + flow.run_bytes(bytes).duration_ms;
}

}  // namespace satnet::transport
