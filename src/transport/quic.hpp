// Flow-level QUIC model.
//
// The paper's related work (Kuhn et al., "QUIC: opportunities and threats
// in satcom"; Endres et al.) studies QUIC on satellite links. Two
// structural differences against TCP matter here:
//   * QUIC is encrypted end-to-end, so the operator's PEP cannot split
//     the connection — GEO operators lose their main latency mitigation;
//   * its loss recovery is packet-ranged (no go-back-N) with far fewer
//     spurious timeouts, so long paths avoid TCP's RTO pathology.
// The model reuses PathProfile; the `pep` flag is deliberately ignored.
#pragma once

#include "stats/rng.hpp"
#include "transport/path.hpp"
#include "transport/tcp.hpp"

namespace satnet::transport {

struct QuicOptions {
  double mss_bytes = 1350.0;  ///< QUIC's typical max datagram payload
  double initial_cwnd = 10.0;
  /// Probe timeout floor (QUIC's PTO replaces TCP's RTO; same lower
  /// bound, but spurious fires are ~4x rarer thanks to better RTT
  /// accounting).
  double min_pto_ms = 1000.0;
  double spurious_pto_factor = 0.25;
  double snapshot_interval_ms = 100.0;
};

/// A single bulk QUIC connection over a fixed path. Mirrors TcpFlow's
/// result type so analyses apply to both.
class QuicFlow {
 public:
  QuicFlow(PathProfile path, QuicOptions options, stats::Rng rng);

  /// Bulk transfer for a fixed duration.
  FlowResult run_for(double duration_ms);
  /// Transfer a fixed payload (object fetch).
  FlowResult run_bytes(std::uint64_t transfer_bytes, double max_ms = 120000.0);

 private:
  struct Round {
    double rtt_ms = 0;
    double sent = 0;
    double lost = 0;
    bool handoff = false;
    bool spurious_pto = false;
  };
  Round simulate_round();
  void react(const Round& round);
  void record(const Round& round);
  FlowResult finish();

  PathProfile path_;
  QuicOptions opt_;
  stats::Rng rng_;

  double cwnd_;
  double ssthresh_ = 1e9;
  double elapsed_ms_ = 0;
  double srtt_ms_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_retrans_ = 0;
  std::uint64_t bytes_acked_ = 0;
  std::size_t n_handoffs_ = 0;
  std::size_t n_ptos_ = 0;
  double last_rtt_ms_ = 0;
  double next_snapshot_ms_ = 0;
  std::vector<double> rtt_samples_;
  std::vector<double> jitter_samples_;
  std::vector<TcpInfoSnapshot> snapshots_;
};

/// Time to fetch `bytes` over a fresh QUIC connection: 1-RTT handshake
/// (vs TCP+TLS's 2) plus the transfer.
double quic_fetch_time_ms(const PathProfile& path, std::uint64_t bytes, stats::Rng& rng,
                          const QuicOptions& options = QuicOptions{});

}  // namespace satnet::transport
