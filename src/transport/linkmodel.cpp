#include "transport/linkmodel.hpp"

#include <algorithm>

#include "fault/hook.hpp"

namespace satnet::transport {

namespace {

PathProfile common_profile(const orbit::AccessSample& access, const LinkTraits& traits,
                           double server_rtt_extra_ms) {
  PathProfile p;
  // Access one-way latency counts twice (request/response symmetry);
  // the PoP->server leg adds its own round trip.
  p.base_rtt_ms = 2.0 * access.one_way_ms + server_rtt_extra_ms;
  p.jitter_ms = traits.jitter_ms;
  p.buffer_bdp = traits.buffer_bdp;
  p.sat_loss = traits.sat_loss;
  p.ground_loss = traits.ground_loss;
  p.spurious_rto_prob = traits.spurious_rto_prob;
  p.handoff_rate_hz = traits.handoff_rate_hz;
  p.handoff_loss_frac = traits.handoff_loss_frac;
  p.handoff_spike_ms = traits.handoff_spike_ms;
  p.pep = traits.pep;
  return p;
}

}  // namespace

PathProfile build_download_profile(const orbit::AccessSample& access,
                                   const LinkTraits& traits,
                                   double server_rtt_extra_ms, stats::Rng& rng) {
  PathProfile p = common_profile(access, traits, server_rtt_extra_ms);
  p.bottleneck_mbps =
      std::max(0.1, rng.lognormal_median(traits.down_mbps_median, traits.down_mbps_sigma));
  return p;
}

PathProfile build_upload_profile(const orbit::AccessSample& access,
                                 const LinkTraits& traits,
                                 double server_rtt_extra_ms, stats::Rng& rng) {
  PathProfile p = common_profile(access, traits, server_rtt_extra_ms);
  p.bottleneck_mbps =
      std::max(0.1, rng.lognormal_median(traits.up_mbps_median, traits.up_mbps_sigma));
  // Uplink MAC scheduling (request/grant cycles) adds noise.
  p.jitter_ms *= 1.5;
  return p;
}

void apply_impairment(PathProfile& profile, const weather::LinkImpact& impact) {
  if (impact.outage || impact.capacity_factor <= 0.0) {
    profile.bottleneck_mbps = 0.0;
  } else {
    profile.bottleneck_mbps *= impact.capacity_factor;
  }
  profile.sat_loss = std::min(1.0, profile.sat_loss + impact.extra_sat_loss);
  profile.jitter_ms += impact.extra_jitter_ms;
}

void apply_link_faults(PathProfile& profile, std::string_view operator_name,
                       double t_sec) {
  if (const fault::Hook* hook = fault::Hook::active()) {
    profile.sat_loss =
        std::min(1.0, profile.sat_loss + hook->extra_space_loss(operator_name, t_sec));
  }
}

}  // namespace satnet::transport
