// End-to-end path characterization consumed by the TCP model.
//
// A PathProfile collapses everything below the transport layer — orbit
// geometry, access-link capacity, bufferbloat, loss processes, handoff
// dynamics — into the parameters a congestion-controlled flow reacts to.
#pragma once

namespace satnet::transport {

/// Transport-visible characterization of one end-to-end path.
struct PathProfile {
  /// Two-way propagation + scheduling latency, ms (no queueing).
  double base_rtt_ms = 40.0;
  /// Per-round latency noise (stddev, ms): MAC jitter, path wander.
  double jitter_ms = 2.0;
  /// Bottleneck capacity available to this flow, Mbit/s.
  double bottleneck_mbps = 100.0;
  /// Bottleneck buffer, as a multiple of the path BDP (bufferbloat knob).
  double buffer_bdp = 1.0;
  /// Random per-packet loss probability on the *satellite* segment, as
  /// the transport sees it (after link-layer FEC/ARQ — far below the raw
  /// radio loss rate).
  double sat_loss = 0.0;
  /// Random per-packet loss probability on terrestrial segments.
  double ground_loss = 0.0;
  /// Probability per round of a spurious retransmission timeout. On long,
  /// high-jitter GEO paths the RTO estimator underruns the real RTT and
  /// the sender go-back-N retransmits data that was never lost — the
  /// dominant source of the paper's 8.7% GEO retransmission fractions.
  double spurious_rto_prob = 0.0;
  /// Fraction of the in-flight window needlessly retransmitted by a
  /// go-back-N recovery (RTO-triggered).
  double go_back_n_frac = 0.7;
  /// Satellite handoff events per second (0 for GEO).
  double handoff_rate_hz = 0.0;
  /// Fraction of in-flight packets lost when a handoff strikes.
  double handoff_loss_frac = 0.0;
  /// Extra latency on the rounds during a handoff, ms.
  double handoff_spike_ms = 0.0;
  /// Whether the operator deploys a Performance Enhancing Proxy. A PEP
  /// splits the TCP control loop at the satellite link and recovers
  /// satellite losses locally: they cost a little delivery time but are
  /// invisible to the end-to-end connection (no retransmissions, no
  /// congestion-window collapse). See RFC 3135.
  bool pep = false;

  /// Path bandwidth-delay product in packets of `mss` bytes.
  double bdp_packets(double mss_bytes = 1500.0) const {
    return bottleneck_mbps * 1e6 / 8.0 * (base_rtt_ms / 1e3) / mss_bytes;
  }
};

}  // namespace satnet::transport
