// Bridges the orbital access layer and the TCP layer: turns an
// AccessSample (geometry-derived latency) plus per-operator link traits
// (capacity plans, buffering, loss behaviour, PEP deployment) into the
// PathProfile a flow runs over.
#pragma once

#include <string_view>

#include "orbit/access.hpp"
#include "stats/rng.hpp"
#include "transport/path.hpp"
#include "weather/weather.hpp"

namespace satnet::transport {

/// Operator-level link characteristics that are not geometric.
struct LinkTraits {
  /// Per-subscriber downlink capacity: lognormal(median, sigma), Mbit/s.
  double down_mbps_median = 100.0;
  double down_mbps_sigma = 0.4;
  /// Per-subscriber uplink capacity.
  double up_mbps_median = 10.0;
  double up_mbps_sigma = 0.4;
  /// Bottleneck buffer as a multiple of BDP.
  double buffer_bdp = 1.5;
  /// Random loss on the satellite segment as seen by the transport
  /// (post link-layer FEC/ARQ) and on terrestrial segments.
  double sat_loss = 0.001;
  double ground_loss = 0.0002;
  /// Spurious-RTO probability per round (see PathProfile).
  double spurious_rto_prob = 0.0;
  /// Per-round latency noise, ms.
  double jitter_ms = 3.0;
  /// Handoff process parameters (LEO/MEO only; rate 0 disables).
  double handoff_rate_hz = 0.0;
  double handoff_loss_frac = 0.0;
  double handoff_spike_ms = 0.0;
  /// Whether the operator deploys PEPs (RFC 3135).
  bool pep = false;
};

/// Builds a download-direction path profile for one flow.
/// `server_rtt_extra_ms` accounts for the leg between the PoP and the
/// measurement server (M-Lab pods peer close to PoPs, so usually small).
/// Per-user capacity is drawn once per call — callers wanting a stable
/// subscriber plan should cache the result.
PathProfile build_download_profile(const orbit::AccessSample& access,
                                   const LinkTraits& traits,
                                   double server_rtt_extra_ms, stats::Rng& rng);

/// Upload-direction variant (uplink capacity, slightly higher MAC jitter).
PathProfile build_upload_profile(const orbit::AccessSample& access,
                                 const LinkTraits& traits,
                                 double server_rtt_extra_ms, stats::Rng& rng);

/// Applies a weather impairment to a built profile: scales capacity,
/// adds space-segment loss and jitter. An outage (or a capacity factor
/// of zero) zeroes the bottleneck *exactly* — the build-time 0.1 Mbps
/// floor is a sampling guard, not a promise that dead links trickle.
void apply_impairment(PathProfile& profile, const weather::LinkImpact& impact);

/// Applies active fault-plan burst_loss events for this operator at time
/// t to the profile's space-segment loss. No-op without an installed
/// fault::Hook.
void apply_link_faults(PathProfile& profile, std::string_view operator_name,
                       double t_sec);

}  // namespace satnet::transport
