// Flow-level TCP simulation.
//
// The model advances one congestion-control round (~1 RTT) at a time:
// it sends a window, draws losses from the path's loss processes,
// reacts (fast recovery or RTO), and records TCP_Info-style snapshots.
// This is the engine under every NDT speed test, HTTP transfer and
// video-segment download in the reproduction; its retransmission
// accounting is what Figure 4c measures.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"
#include "transport/path.hpp"

namespace satnet::transport {

enum class CongestionControl { reno, cubic };

/// Tunables of a simulated connection.
struct TcpOptions {
  CongestionControl cc = CongestionControl::cubic;
  double mss_bytes = 1500.0;
  double initial_cwnd = 10.0;
  double min_rto_ms = 1000.0;  ///< RFC 6298 lower bound
  /// Snapshot cadence for the TCP_Info poll loop, ms (M-Lab polls open
  /// sockets continuously; we snapshot once per cadence interval).
  double snapshot_interval_ms = 100.0;
};

/// One TCP_Info-style snapshot, as captured by the M-Lab server's
/// polling loop.
struct TcpInfoSnapshot {
  double t_ms = 0;             ///< time since connection start
  double rtt_ms = 0;           ///< smoothed RTT at snapshot time
  double last_rtt_ms = 0;      ///< most recent RTT sample
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_retrans = 0;
  std::uint64_t bytes_acked = 0;
  double delivery_rate_mbps = 0;
  double cwnd_packets = 0;
};

/// Aggregate outcome of a flow.
struct FlowResult {
  double duration_ms = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_retrans = 0;
  std::uint64_t bytes_acked = 0;
  double goodput_mbps = 0;   ///< acked payload over duration
  double rtt_p5_ms = 0;      ///< the paper's access-latency estimate
  double rtt_median_ms = 0;
  double jitter_p95_ms = 0;  ///< p95 of |rtt_i - rtt_{i-1}|
  double retrans_fraction = 0;  ///< bytes_retrans / bytes_sent
  std::size_t n_handoffs = 0;
  std::size_t n_rtos = 0;
  std::vector<TcpInfoSnapshot> snapshots;

  /// Byte conservation law of the flow models (TCP and QUIC): every
  /// sent byte is eventually either acknowledged or accounted as a
  /// retransmission — lost data is re-delivered, duplicate (go-back-N,
  /// spurious-RTO, probe) bytes count as sent and retransmitted but
  /// never acked. The invariant harness checks this on every flow.
  bool conserved() const { return bytes_sent == bytes_acked + bytes_retrans; }
};

/// A single long-running (bulk) flow over a fixed path.
class TcpFlow {
 public:
  TcpFlow(PathProfile path, TcpOptions options, stats::Rng rng);

  /// Runs a bulk transfer for `duration_ms` of simulated time (NDT-style
  /// fixed-duration test).
  FlowResult run_for(double duration_ms);

  /// Runs until `transfer_bytes` have been acknowledged (HTTP-object
  /// style) or `max_ms` elapses, whichever is first.
  FlowResult run_bytes(std::uint64_t transfer_bytes, double max_ms = 120000.0);

 private:
  struct RoundOutcome {
    double rtt_ms = 0;
    double sent_packets = 0;
    double lost_e2e = 0;        ///< losses visible to the end-to-end loop
    double lost_recovered = 0;  ///< satellite losses a PEP recovered locally
    bool handoff = false;
    bool spurious_rto = false;  ///< RTO fired although nothing was lost
  };

  RoundOutcome simulate_round();
  void on_loss(const RoundOutcome& round);
  void on_spurious_rto(const RoundOutcome& round);
  void grow_window();
  void record_rtt(double rtt_ms);
  void maybe_snapshot();
  FlowResult finish();

  PathProfile path_;
  TcpOptions opt_;
  stats::Rng rng_;

  // Connection state.
  double cwnd_ = 10.0;
  double ssthresh_ = 1e9;
  double srtt_ms_ = 0.0;
  double rttvar_ms_ = 0.0;
  double elapsed_ms_ = 0.0;
  double cubic_epoch_start_ms_ = 0.0;
  double cubic_w_max_ = 0.0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_retrans_ = 0;
  std::uint64_t bytes_acked_ = 0;
  std::size_t n_handoffs_ = 0;
  std::size_t n_rtos_ = 0;
  double last_rtt_ms_ = 0.0;
  double prev_rtt_ms_ = 0.0;
  double next_snapshot_ms_ = 0.0;
  std::vector<double> rtt_samples_;
  std::vector<double> jitter_samples_;
  std::vector<TcpInfoSnapshot> snapshots_;
};

/// Convenience: time to fetch `bytes` over a fresh connection including
/// `handshake_rtts` round trips of connection setup (TCP + TLS), ms.
double fetch_time_ms(const PathProfile& path, std::uint64_t bytes, double handshake_rtts,
                     stats::Rng& rng, const TcpOptions& options = {});

}  // namespace satnet::transport
