#include "transport/tcp.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "stats/summary.hpp"

namespace satnet::transport {

namespace {
constexpr double kMaxCwndPackets = 12000.0;  // ~18 MB receive window
constexpr double kCubicC = 0.4;
constexpr double kCubicBeta = 0.7;
constexpr double kRenoBeta = 0.5;
}  // namespace

TcpFlow::TcpFlow(PathProfile path, TcpOptions options, stats::Rng rng)
    : path_(path), opt_(options), rng_(rng), cwnd_(options.initial_cwnd) {}

TcpFlow::RoundOutcome TcpFlow::simulate_round() {
  RoundOutcome out;
  const double bdp = std::max(path_.bdp_packets(opt_.mss_bytes), 1.0);
  const double buffer_packets = std::max(path_.buffer_bdp * bdp, 4.0);

  // Queueing at the bottleneck: packets beyond the BDP sit in the buffer.
  const double excess = std::max(0.0, cwnd_ - bdp);
  const double queued = std::min(excess, buffer_packets);
  const double queue_ms =
      queued * opt_.mss_bytes * 8.0 / (path_.bottleneck_mbps * 1e6) * 1e3;
  double overflow = std::max(0.0, excess - buffer_packets);

  double rtt = path_.base_rtt_ms + queue_ms + std::abs(rng_.normal(0.0, path_.jitter_ms));

  // Handoff process: Poisson arrivals over the round duration.
  const double round_sec = rtt / 1e3;
  double handoff_loss = 0.0;
  if (path_.handoff_rate_hz > 0.0 &&
      rng_.chance(std::min(1.0, path_.handoff_rate_hz * round_sec))) {
    out.handoff = true;
    rtt += path_.handoff_spike_ms;
    handoff_loss = static_cast<double>(
        rng_.poisson(cwnd_ * path_.handoff_loss_frac));
  }

  // Random (non-congestion) losses on each segment.
  const double sat_random =
      path_.sat_loss > 0 ? static_cast<double>(rng_.poisson(cwnd_ * path_.sat_loss)) : 0.0;
  const double ground_random =
      path_.ground_loss > 0 ? static_cast<double>(rng_.poisson(cwnd_ * path_.ground_loss))
                            : 0.0;

  out.rtt_ms = rtt;
  out.sent_packets = cwnd_;
  if (path_.pep) {
    // The PEP recovers satellite-segment losses (random, handoff, and
    // most of the satellite scheduler's buffer overflow) locally:
    // invisible to the end-to-end loop. A residual share of overflow
    // still surfaces end-to-end, which keeps the sender's congestion
    // signal alive.
    constexpr double kOverflowResidual = 0.15;
    out.lost_recovered = std::min(
        cwnd_, sat_random + handoff_loss + (1.0 - kOverflowResidual) * overflow);
    out.lost_e2e =
        std::min(cwnd_ - out.lost_recovered, ground_random + kOverflowResidual * overflow);
  } else {
    out.lost_e2e = std::min(cwnd_, sat_random + ground_random + handoff_loss + overflow);
  }
  // Whole packets only: keeps the byte accounting exact and guarantees
  // that a "loss round" (lost_e2e >= 1) is well-defined.
  out.lost_e2e = std::floor(out.lost_e2e);
  // Spurious RTO process (long-path RTO underestimation).
  out.spurious_rto = path_.spurious_rto_prob > 0 && rng_.chance(path_.spurious_rto_prob);
  return out;
}

void TcpFlow::record_rtt(double rtt_ms) {
  if (srtt_ms_ == 0.0) {
    srtt_ms_ = rtt_ms;
    rttvar_ms_ = rtt_ms / 2.0;
  } else {
    rttvar_ms_ = 0.75 * rttvar_ms_ + 0.25 * std::abs(srtt_ms_ - rtt_ms);
    srtt_ms_ = 0.875 * srtt_ms_ + 0.125 * rtt_ms;
  }
  prev_rtt_ms_ = last_rtt_ms_;
  last_rtt_ms_ = rtt_ms;
  rtt_samples_.push_back(rtt_ms);
  if (prev_rtt_ms_ > 0.0) jitter_samples_.push_back(std::abs(rtt_ms - prev_rtt_ms_));
}

void TcpFlow::on_spurious_rto(const RoundOutcome& round) {
  // RTO fires although every packet arrived: the sender idles, collapses
  // its window, and go-back-N retransmits data the receiver already has.
  // Those duplicate bytes count as sent AND retransmitted (never acked),
  // preserving bytes_sent == bytes_acked + bytes_retrans.
  const double rto = std::max(opt_.min_rto_ms, srtt_ms_ + 4.0 * rttvar_ms_);
  elapsed_ms_ += rto;
  const auto dup_bytes = static_cast<std::uint64_t>(
      std::llround(round.sent_packets * path_.go_back_n_frac * opt_.mss_bytes));
  bytes_sent_ += dup_bytes;
  bytes_retrans_ += dup_bytes;
  cubic_w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = opt_.initial_cwnd > 1.0 ? 2.0 : 1.0;
  cubic_epoch_start_ms_ = elapsed_ms_;
  ++n_rtos_;
}

void TcpFlow::on_loss(const RoundOutcome& round) {
  const bool burst = round.lost_e2e > 0.3 * round.sent_packets;
  const double beta = opt_.cc == CongestionControl::cubic ? kCubicBeta : kRenoBeta;
  if (burst) {
    // Retransmission timeout: the window collapses, the sender idles for
    // the RTO, and go-back-N resends part of the window needlessly.
    const double rto = std::max(opt_.min_rto_ms, srtt_ms_ + 4.0 * rttvar_ms_);
    elapsed_ms_ += rto;
    const auto dup_bytes = static_cast<std::uint64_t>(std::llround(
        (round.sent_packets - round.lost_e2e) * path_.go_back_n_frac * opt_.mss_bytes));
    bytes_sent_ += dup_bytes;
    bytes_retrans_ += dup_bytes;
    cubic_w_max_ = cwnd_;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = opt_.initial_cwnd > 1.0 ? 2.0 : 1.0;
    cubic_epoch_start_ms_ = elapsed_ms_;
    ++n_rtos_;
  } else {
    // Fast retransmit / fast recovery.
    cubic_w_max_ = cwnd_;
    ssthresh_ = std::max(cwnd_ * beta, 2.0);
    cwnd_ = ssthresh_;
    cubic_epoch_start_ms_ = elapsed_ms_;
  }
  // The retransmitted packets are sent again and (in this flow-level
  // model) delivered on recovery, so all three counters advance and the
  // invariant bytes_sent == bytes_acked + bytes_retrans holds exactly.
  const auto lost_bytes =
      static_cast<std::uint64_t>(std::llround(round.lost_e2e * opt_.mss_bytes));
  bytes_retrans_ += lost_bytes;
  bytes_sent_ += lost_bytes;
  bytes_acked_ += lost_bytes;
}

void TcpFlow::grow_window() {
  if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2.0, ssthresh_);
  } else if (opt_.cc == CongestionControl::reno) {
    cwnd_ += 1.0;
  } else {
    // CUBIC window: W(t) = C (t - K)^3 + W_max.
    const double t = (elapsed_ms_ - cubic_epoch_start_ms_) / 1e3;
    const double w_max = std::max(cubic_w_max_, cwnd_);
    const double k = std::cbrt(w_max * (1.0 - kCubicBeta) / kCubicC);
    const double target = kCubicC * std::pow(t - k, 3.0) + w_max;
    // TCP-friendly region: never grow slower than Reno's one packet per
    // round trip (RFC 8312 §4.2), or CUBIC stalls after an early loss.
    cwnd_ = std::max(cwnd_ + 1.0, target);
  }
  cwnd_ = std::min(cwnd_, kMaxCwndPackets);
}

void TcpFlow::maybe_snapshot() {
  while (next_snapshot_ms_ <= elapsed_ms_) {
    TcpInfoSnapshot s;
    s.t_ms = next_snapshot_ms_;
    s.rtt_ms = srtt_ms_;
    s.last_rtt_ms = last_rtt_ms_;
    s.bytes_sent = bytes_sent_;
    s.bytes_retrans = bytes_retrans_;
    s.bytes_acked = bytes_acked_;
    s.cwnd_packets = cwnd_;
    s.delivery_rate_mbps =
        elapsed_ms_ > 0 ? static_cast<double>(bytes_acked_) * 8.0 / (elapsed_ms_ * 1e3)
                        : 0.0;
    snapshots_.push_back(s);
    next_snapshot_ms_ += opt_.snapshot_interval_ms;
  }
}

FlowResult TcpFlow::finish() {
  FlowResult r;
  r.duration_ms = elapsed_ms_;
  r.bytes_sent = bytes_sent_;
  r.bytes_retrans = bytes_retrans_;
  r.bytes_acked = bytes_acked_;
  r.goodput_mbps =
      elapsed_ms_ > 0 ? static_cast<double>(bytes_acked_) * 8.0 / (elapsed_ms_ * 1e3) : 0.0;
  r.rtt_p5_ms = stats::percentile(rtt_samples_, 5);
  r.rtt_median_ms = stats::percentile(rtt_samples_, 50);
  r.jitter_p95_ms = jitter_samples_.empty() ? 0.0 : stats::percentile(jitter_samples_, 95);
  r.retrans_fraction =
      bytes_sent_ > 0 ? static_cast<double>(bytes_retrans_) / static_cast<double>(bytes_sent_)
                      : 0.0;
  r.n_handoffs = n_handoffs_;
  r.n_rtos = n_rtos_;
  r.snapshots = std::move(snapshots_);

  // Flow accounting flushes once per flow (the per-round loop stays
  // metric-free): retransmit and timeout totals across every NDT test,
  // HTTP transfer, and video segment in the campaign.
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& flows = obs::MetricsRegistry::global().counter(
      "transport.tcp.flows", "TCP flows completed");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& sent = obs::MetricsRegistry::global().counter(
      "transport.tcp.bytes_sent", "bytes sent across all flows");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& retrans = obs::MetricsRegistry::global().counter(
      "transport.tcp.bytes_retrans", "bytes retransmitted across all flows");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& rtos = obs::MetricsRegistry::global().counter(
      "transport.tcp.rtos", "retransmission timeouts fired");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& handoffs = obs::MetricsRegistry::global().counter(
      "transport.tcp.handoffs", "satellite handoffs observed by flows");
  flows.add(1);
  sent.add(bytes_sent_);
  retrans.add(bytes_retrans_);
  rtos.add(n_rtos_);
  handoffs.add(n_handoffs_);
  return r;
}

FlowResult TcpFlow::run_for(double duration_ms) {
  while (elapsed_ms_ < duration_ms) {
    const RoundOutcome round = simulate_round();
    record_rtt(round.rtt_ms);
    elapsed_ms_ += round.rtt_ms;
    if (round.handoff) ++n_handoffs_;

    const auto sent_bytes =
        static_cast<std::uint64_t>(std::llround(round.sent_packets * opt_.mss_bytes));
    const auto lost_bytes =
        static_cast<std::uint64_t>(std::llround(round.lost_e2e * opt_.mss_bytes));
    bytes_sent_ += sent_bytes;
    bytes_acked_ += sent_bytes - std::min(sent_bytes, lost_bytes);

    if (round.lost_e2e >= 1.0) {
      on_loss(round);
    } else if (round.spurious_rto) {
      on_spurious_rto(round);
    } else {
      grow_window();
    }
    maybe_snapshot();
  }
  return finish();
}

FlowResult TcpFlow::run_bytes(std::uint64_t transfer_bytes, double max_ms) {
  while (bytes_acked_ < transfer_bytes && elapsed_ms_ < max_ms) {
    // Don't send more than what remains (short final round).
    const double remaining_packets =
        static_cast<double>(transfer_bytes - bytes_acked_) / opt_.mss_bytes;
    const double saved_cwnd = cwnd_;
    cwnd_ = std::min(cwnd_, std::max(1.0, remaining_packets));

    const RoundOutcome round = simulate_round();
    record_rtt(round.rtt_ms);
    elapsed_ms_ += round.rtt_ms;
    if (round.handoff) ++n_handoffs_;

    const auto sent_bytes =
        static_cast<std::uint64_t>(std::llround(round.sent_packets * opt_.mss_bytes));
    const auto lost_bytes =
        static_cast<std::uint64_t>(std::llround(round.lost_e2e * opt_.mss_bytes));
    bytes_sent_ += sent_bytes;
    bytes_acked_ += sent_bytes - std::min(sent_bytes, lost_bytes);

    cwnd_ = saved_cwnd;
    if (round.lost_e2e >= 1.0) {
      on_loss(round);
    } else if (round.spurious_rto) {
      on_spurious_rto(round);
    } else {
      grow_window();
    }
    maybe_snapshot();
  }
  return finish();
}

double fetch_time_ms(const PathProfile& path, std::uint64_t bytes, double handshake_rtts,
                     stats::Rng& rng, const TcpOptions& options) {
  double handshake_ms = 0.0;
  for (int i = 0; i < static_cast<int>(handshake_rtts); ++i) {
    handshake_ms += path.base_rtt_ms + std::abs(rng.normal(0.0, path.jitter_ms));
  }
  const double frac = handshake_rtts - std::floor(handshake_rtts);
  if (frac > 0.0) handshake_ms += frac * path.base_rtt_ms;

  TcpFlow flow(path, options, rng.fork(bytes));
  const FlowResult r = flow.run_bytes(bytes);
  return handshake_ms + r.duration_ms;
}

}  // namespace satnet::transport
