#include "net/route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace satnet::net {

double Route::destination_rtt_ms() const {
  if (hops.empty() || !hops.back().responded) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return hops.back().rtt_ms;
}

const Hop* Route::find_ip(Ipv4 ip) const {
  for (const auto& h : hops) {
    if (h.ip == ip) return &h;
  }
  return nullptr;
}

int Backbone::expected_hops(double surface_km) const {
  return options_.min_hops + static_cast<int>(surface_km / options_.hop_spacing_km);
}

std::vector<Hop> Backbone::build(const geo::GeoPoint& from, const geo::GeoPoint& to,
                                 double base_rtt_ms, int first_ttl,
                                 stats::Rng& rng) const {
  std::vector<Hop> hops;
  const double total_km = geo::surface_distance_km(from, to);
  const int n = expected_hops(total_km);
  hops.reserve(static_cast<std::size_t>(n));

  double cumulative_one_way = 0.0;
  for (int i = 1; i <= n; ++i) {
    // Routers are spread along the path; the geometric fraction covered by
    // hop i is i/n of the total distance.
    const double frac = static_cast<double>(i) / static_cast<double>(n);
    const double segment_km = total_km * frac;
    cumulative_one_way =
        geo::fiber_delay_ms(segment_km) + options_.router_delay_ms * i;

    Hop h;
    h.ttl = first_ttl + i - 1;
    // Synthetic router addressing: 10.x.y.z transit space keyed by hop.
    h.ip = Ipv4(10, static_cast<std::uint8_t>((first_ttl + i) & 0xff),
                static_cast<std::uint8_t>(i & 0xff),
                static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    h.name = "transit-" + std::to_string(first_ttl + i - 1);
    h.rtt_ms = std::max(base_rtt_ms,
                        base_rtt_ms + 2.0 * cumulative_one_way +
                            std::abs(rng.normal(0.0, options_.rtt_noise_ms)));
    h.responded = !rng.chance(options_.unresponsive_prob);
    hops.push_back(std::move(h));
  }
  return hops;
}

std::string to_string(const Route& route) {
  std::string out;
  for (const auto& h : route.hops) {
    char line[160];
    if (h.responded) {
      std::snprintf(line, sizeof(line), "%2d  %-28s %-16s %7.2f ms\n", h.ttl,
                    h.name.empty() ? "(no rdns)" : h.name.c_str(),
                    h.ip.to_string().c_str(), h.rtt_ms);
    } else {
      std::snprintf(line, sizeof(line), "%2d  *\n", h.ttl);
    }
    out += line;
  }
  return out;
}

}  // namespace satnet::net
