// IPv4 addresses, /24 prefixes, and address-pool allocation.
//
// The identification pipeline groups M-Lab speed tests by /24 prefix
// (the paper's step 3), so addresses and prefixes are first-class values.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace satnet::net {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  /// True for RFC 6598 carrier-grade NAT space (100.64.0.0/10) — the
  /// address range of Starlink's customer-side gateways.
  constexpr bool is_cgnat() const {
    return (value_ & 0xffc00000u) == 0x64400000u;  // 100.64.0.0/10
  }

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// The Starlink CGNAT gateway address the paper keys on ("100.64.0.1").
inline constexpr Ipv4 kCgnatGateway{100, 64, 0, 1};

/// A /24 IPv4 prefix.
class Prefix24 {
 public:
  constexpr Prefix24() = default;
  constexpr explicit Prefix24(Ipv4 any_member) : base_(any_member.value() & 0xffffff00u) {}

  constexpr Ipv4 network() const { return Ipv4{base_}; }
  constexpr bool contains(Ipv4 a) const { return (a.value() & 0xffffff00u) == base_; }
  /// The i-th host address (i in [1, 254]).
  constexpr Ipv4 host(std::uint8_t i) const { return Ipv4{base_ | i}; }
  std::string to_string() const;  ///< "a.b.c.0/24"

  auto operator<=>(const Prefix24&) const = default;

 private:
  std::uint32_t base_ = 0;
};

/// Sequential allocator handing out /24 prefixes (and hosts within them)
/// from a configured super-block; the synthetic world gives each SNO one
/// or more blocks.
class PrefixPool {
 public:
  /// `base` must be /24-aligned; the pool spans `count` consecutive /24s.
  PrefixPool(Ipv4 base, std::uint32_t count);

  Prefix24 allocate();          ///< next unused /24; throws when exhausted
  std::uint32_t remaining() const { return count_ - next_; }
  Ipv4 base() const { return Ipv4{base_}; }

 private:
  std::uint32_t base_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t next_ = 0;
};

}  // namespace satnet::net
