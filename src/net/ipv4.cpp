#include "net/ipv4.hpp"

#include <charconv>
#include <stdexcept>

namespace satnet::net {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size()) return std::nullopt;
    unsigned v = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || v > 255) return std::nullopt;
    value = (value << 8) | v;
    pos = static_cast<std::size_t>(ptr - text.data());
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4{value};
}

std::string Ipv4::to_string() const {
  return std::to_string((value_ >> 24) & 0xff) + "." + std::to_string((value_ >> 16) & 0xff) +
         "." + std::to_string((value_ >> 8) & 0xff) + "." + std::to_string(value_ & 0xff);
}

std::string Prefix24::to_string() const { return network().to_string() + "/24"; }

PrefixPool::PrefixPool(Ipv4 base, std::uint32_t count)
    : base_(base.value()), count_(count) {
  if (base_ & 0xff) throw std::invalid_argument("PrefixPool base must be /24-aligned");
}

Prefix24 PrefixPool::allocate() {
  if (next_ >= count_) throw std::runtime_error("PrefixPool exhausted");
  const Prefix24 p{Ipv4{base_ + (next_ << 8)}};
  ++next_;
  return p;
}

}  // namespace satnet::net
