// Hop-level routes and the terrestrial backbone model.
//
// RIPE-style traceroutes in the reproduction are assembled from two
// pieces: the satellite access segment (probe -> CGNAT gateway at the
// PoP) and a terrestrial backbone segment (PoP -> destination). The
// backbone model places intermediate routers along the great-circle
// path so hop counts and per-hop RTTs grow with distance, matching the
// paper's Figure 6c hop-count analysis.
#pragma once

#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "net/ipv4.hpp"
#include "stats/rng.hpp"

namespace satnet::net {

/// One traceroute hop. `rtt_ms` is the round-trip time from the source to
/// this hop (cumulative), as a real traceroute reports.
struct Hop {
  int ttl = 0;
  std::string name;  ///< rDNS name; empty when the hop does not resolve
  Ipv4 ip;
  double rtt_ms = 0;
  bool responded = true;  ///< false renders as "*" in traceroute output
};

/// A full route from a source to a destination.
struct Route {
  std::vector<Hop> hops;

  /// RTT reported at the final hop; NaN when the destination did not
  /// respond.
  double destination_rtt_ms() const;
  std::size_t hop_count() const { return hops.size(); }
  /// First hop whose RTT is at least `min_rtt` — used to locate the CGNAT
  /// gateway in Starlink paths.
  const Hop* find_ip(Ipv4 ip) const;
};

/// Terrestrial backbone segment generator.
class Backbone {
 public:
  struct Options {
    double router_delay_ms = 0.15;   ///< per-router processing
    double hop_spacing_km = 900.0;   ///< one router per this many km
    int min_hops = 3;                ///< even co-located endpoints traverse these
    double rtt_noise_ms = 0.8;       ///< per-hop measurement noise (stddev)
    double unresponsive_prob = 0.04; ///< probability a hop shows as "*"
  };

  Backbone() = default;
  explicit Backbone(Options options) : options_(options) {}

  /// Builds the backbone hops from `from` to `to`. RTTs are cumulative
  /// and start at `base_rtt_ms` (the RTT already accumulated on the
  /// access segment). TTLs continue from `first_ttl`.
  std::vector<Hop> build(const geo::GeoPoint& from, const geo::GeoPoint& to,
                         double base_rtt_ms, int first_ttl, stats::Rng& rng) const;

  /// Expected number of routers for a given surface distance.
  int expected_hops(double surface_km) const;

 private:
  Options options_{};
};

/// Renders a route in classic traceroute text form (for examples/benches).
std::string to_string(const Route& route);

}  // namespace satnet::net
