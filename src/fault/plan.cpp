#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "stats/rng.hpp"

namespace satnet::fault {

namespace {

constexpr std::string_view kKindNames[] = {
    "gateway_outage", "handoff_storm", "weather_escalation", "burst_loss",
    "shard_failure",
};

/// Canonical event order: (kind, target, t_start). to_spec() emits it,
/// the constructor restores it, so plans compare structurally.
bool event_less(const FaultEvent& a, const FaultEvent& b) {
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  if (a.target != b.target) return a.target < b.target;
  return a.t_start_sec < b.t_start_sec;
}

/// Doubles in the spec print with enough digits to round-trip exactly.
std::string num(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

double parse_num(const std::string& field, int line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec line " + std::to_string(line_no) +
                                ": not a number: '" + field + "'");
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view to_string(EventKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

EventKind parse_kind(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kKindNames); ++i) {
    if (kKindNames[i] == name) return static_cast<EventKind>(i);
  }
  throw std::invalid_argument("unknown fault event kind: '" + std::string(name) + "'");
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(), event_less);
}

FaultPlan FaultPlan::parse_spec(std::string_view text) {
  std::vector<FaultEvent> events;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') {
      if (eol == text.size()) break;
      continue;
    }

    std::vector<std::string> fields;
    std::size_t fpos = 0;
    while (fpos <= line.size()) {
      const std::size_t comma = std::min(line.find(',', fpos), line.size());
      fields.emplace_back(trim(line.substr(fpos, comma - fpos)));
      fpos = comma + 1;
      if (comma == line.size()) break;
    }
    if (fields.size() != 5 && fields.size() != 8) {
      throw std::invalid_argument(
          "fault spec line " + std::to_string(line_no) +
          ": expected kind,target,start,end,magnitude[,lat,lon,radius_km], got " +
          std::to_string(fields.size()) + " field(s)");
    }

    FaultEvent ev;
    try {
      ev.kind = parse_kind(fields[0]);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("fault spec line " + std::to_string(line_no) + ": " +
                                  e.what());
    }
    ev.target = fields[1];
    if (ev.target.empty()) {
      throw std::invalid_argument("fault spec line " + std::to_string(line_no) +
                                  ": empty target");
    }
    ev.t_start_sec = parse_num(fields[2], line_no);
    ev.t_end_sec = parse_num(fields[3], line_no);
    ev.magnitude = parse_num(fields[4], line_no);
    if (fields.size() == 8) {
      ev.center = {parse_num(fields[5], line_no), parse_num(fields[6], line_no), 0.0};
      ev.radius_km = parse_num(fields[7], line_no);
    }
    events.push_back(std::move(ev));
    if (eol == text.size()) break;
  }
  FaultPlan plan(std::move(events));
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read fault plan: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_spec(ss.str());
}

std::string FaultPlan::to_spec() const {
  std::ostringstream out;
  out << "# fault plan: kind,target,start_sec,end_sec,magnitude[,lat,lon,radius_km]\n";
  for (const FaultEvent& ev : events_) {
    out << to_string(ev.kind) << ',' << ev.target << ',' << num(ev.t_start_sec) << ','
        << num(ev.t_end_sec) << ',' << num(ev.magnitude);
    if (ev.kind == EventKind::weather_escalation) {
      out << ',' << num(ev.center.lat_deg) << ',' << num(ev.center.lon_deg) << ','
          << num(ev.radius_km);
    }
    out << '\n';
  }
  return out.str();
}

void FaultPlan::validate() const {
  const auto describe = [](const FaultEvent& ev) {
    return std::string(to_string(ev.kind)) + " on '" + ev.target + "' at [" +
           num(ev.t_start_sec) + ", " + num(ev.t_end_sec) + ")";
  };
  for (const FaultEvent& ev : events_) {
    if (!(ev.t_end_sec > ev.t_start_sec)) {
      throw std::invalid_argument("fault event has an empty window: " + describe(ev));
    }
    if (ev.magnitude <= 0) {
      throw std::invalid_argument("fault event needs magnitude > 0: " + describe(ev));
    }
    if ((ev.kind == EventKind::burst_loss || ev.kind == EventKind::shard_failure) &&
        ev.magnitude > 1.0) {
      throw std::invalid_argument("loss/failure magnitude is a fraction <= 1: " +
                                  describe(ev));
    }
    if (ev.kind == EventKind::weather_escalation &&
        (ev.magnitude > 3.0 || ev.radius_km <= 0)) {
      throw std::invalid_argument(
          "weather escalation needs severity 1..3 and radius_km > 0: " + describe(ev));
    }
  }
  // Events are sorted by (kind, target, t_start); overlap on one target
  // is therefore always between neighbours.
  for (std::size_t i = 1; i < events_.size(); ++i) {
    const FaultEvent& prev = events_[i - 1];
    const FaultEvent& cur = events_[i];
    if (prev.kind == cur.kind && prev.target == cur.target &&
        cur.t_start_sec < prev.t_end_sec) {
      throw std::invalid_argument("fault events overlap on one target: " +
                                  describe(prev) + " and " + describe(cur));
    }
  }
}

FaultPlan FaultPlan::generate(const GenerateConfig& config, std::uint64_t seed) {
  // Without a positive horizon every slot collapses to a zero-length
  // window; fail up front with the actual problem instead of letting
  // validate() report a confusing "empty window" on event #0.
  const bool wants_windows = config.gateway_outages > 0 || config.handoff_storms > 0 ||
                             config.weather_escalations > 0 || config.loss_bursts > 0;
  if (wants_windows && !(config.horizon_sec > 0)) {
    throw std::invalid_argument(
        "FaultPlan::generate: horizon_sec must be > 0 when events are requested");
  }
  std::vector<FaultEvent> events;
  const stats::Rng master(seed);

  // Slot construction: the k events of one (kind, target) stream land in
  // k equal slots of the horizon, each window inside its slot, so
  // same-target windows cannot overlap by construction. Every draw comes
  // from a stream forked by the stable key (kind, index) — never by how
  // many events other kinds produced.
  const auto window_in_slot = [&](EventKind kind, std::size_t index,
                                  std::size_t slot, std::size_t n_slots,
                                  FaultEvent& ev) {
    stats::Rng rng =
        master.fork_stable(to_string(kind)).fork_stable(static_cast<std::uint64_t>(index));
    const double slot_len = config.horizon_sec / static_cast<double>(n_slots);
    const double begin = static_cast<double>(slot) * slot_len;
    ev.t_start_sec = begin + rng.uniform(0.0, 0.4) * slot_len;
    ev.t_end_sec = ev.t_start_sec + rng.uniform(0.2, 0.5) * slot_len;
    return rng;  // for kind-specific magnitude draws
  };

  if (config.gateway_outages > 0) {
    // Round-robin over the target gateways; per-target slot index keeps
    // one gateway's outages disjoint.
    const std::size_t n_targets = std::max<std::size_t>(config.gateway_names.size(), 1);
    const std::size_t per_target = (config.gateway_outages + n_targets - 1) / n_targets;
    std::map<std::string, std::size_t> next_slot;
    for (std::size_t i = 0; i < config.gateway_outages; ++i) {
      FaultEvent ev;
      ev.kind = EventKind::gateway_outage;
      ev.target = config.gateway_names.empty()
                      ? "*"
                      : config.gateway_names[i % config.gateway_names.size()];
      window_in_slot(ev.kind, i, next_slot[ev.target]++, per_target, ev);
      ev.magnitude = 1.0;
      events.push_back(std::move(ev));
    }
  }

  for (std::size_t i = 0; i < config.handoff_storms; ++i) {
    FaultEvent ev;
    ev.kind = EventKind::handoff_storm;
    ev.target = config.storm_network;
    stats::Rng rng = window_in_slot(ev.kind, i, i, config.handoff_storms, ev);
    // Epochs roll 3x-8x faster during a storm.
    ev.magnitude = std::floor(rng.uniform(3.0, 8.0));
    events.push_back(std::move(ev));
  }

  for (std::size_t i = 0; i < config.weather_escalations; ++i) {
    FaultEvent ev;
    ev.kind = EventKind::weather_escalation;
    ev.target = "region" + std::to_string(i);
    stats::Rng rng = window_in_slot(ev.kind, i, i, config.weather_escalations, ev);
    ev.center = config.weather_centers.empty()
                    ? geo::GeoPoint{rng.uniform(-55.0, 55.0), rng.uniform(-180.0, 180.0),
                                    0.0}
                    : config.weather_centers[i % config.weather_centers.size()];
    ev.radius_km = rng.uniform(300.0, 1200.0);
    ev.magnitude = std::floor(rng.uniform(2.0, 4.0));  // rain or heavy rain
    events.push_back(std::move(ev));
  }

  for (std::size_t i = 0; i < config.loss_bursts; ++i) {
    FaultEvent ev;
    ev.kind = EventKind::burst_loss;
    ev.target = config.loss_operator;
    window_in_slot(ev.kind, i, i, config.loss_bursts, ev);
    ev.magnitude = config.loss_fraction;
    events.push_back(std::move(ev));
  }

  if (config.shard_failure_prob > 0) {
    FaultEvent ev;
    ev.kind = EventKind::shard_failure;
    ev.target = config.shard_phase;
    ev.t_start_sec = 0;
    ev.t_end_sec = std::max(config.horizon_sec, 1.0);
    ev.magnitude = config.shard_failure_prob;
    events.push_back(std::move(ev));
  }

  FaultPlan plan(std::move(events));
  plan.validate();
  return plan;
}

std::string FaultPlan::summary() const {
  std::map<std::string, std::size_t> by_kind;
  for (const FaultEvent& ev : events_) ++by_kind[std::string(to_string(ev.kind))];
  std::string out;
  for (const auto& [kind, n] : by_kind) {
    if (!out.empty()) out += ' ';
    out += kind + ":" + std::to_string(n);
  }
  return out.empty() ? "empty" : out;
}

}  // namespace satnet::fault
