// Deterministic fault plans: the disruption scenarios behind the paper's
// latency/loss story, as replayable schedules.
//
// The paper's tail behaviour is driven by discrete events — 15-second
// reconfiguration handoffs (§5.1), PoP detours, and rain fade that takes
// Ka links into outright outage (§5.2). Related work (Mohan et al.;
// Ottens et al.'s trace-driven Hypatia emulation) argues such disruption
// traces must be *replayable* to be credible. A FaultPlan is exactly
// that: a list of time-windowed fault events, parsed from a small text
// spec or synthesized deterministically from a seed, that the injection
// hooks (fault/hook.hpp) consult during a campaign. A plan is a pure
// value — the same plan produces the same campaign output at any thread
// count.
//
// Event taxonomy (see DESIGN.md §10):
//   gateway_outage      a ground station drops out; target = gateway name
//   handoff_storm       forced reconfiguration burst; target = access
//                       network name ("starlink", ...; "*" = all LEO/MEO);
//                       magnitude = how many times faster epochs roll
//   weather_escalation  regional sky-condition floor; target = region
//                       label, center/radius give the area, magnitude =
//                       severity (1 cloudy, 2 rain, 3 heavy rain)
//   burst_loss          extra post-FEC loss on the space segment; target
//                       = operator name ("*" = all), magnitude = added
//                       loss fraction
//   shard_failure       injected shard-task failures in the campaign
//                       runtime; target = campaign phase ("mlab.campaign",
//                       "*" = all), magnitude = per-attempt failure
//                       probability
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geodesy.hpp"

namespace satnet::fault {

enum class EventKind {
  gateway_outage,
  handoff_storm,
  weather_escalation,
  burst_loss,
  shard_failure,
};

std::string_view to_string(EventKind kind);
/// Parses a kind name; throws std::invalid_argument on an unknown one.
EventKind parse_kind(std::string_view name);

/// One scheduled fault. Which fields matter depends on `kind` (see the
/// taxonomy above); unused fields keep their defaults and round-trip
/// through the spec untouched.
struct FaultEvent {
  EventKind kind = EventKind::gateway_outage;
  std::string target = "*";   ///< gateway / network / operator / phase
  double t_start_sec = 0;
  double t_end_sec = 0;
  double magnitude = 1.0;
  /// weather_escalation only: affected region.
  geo::GeoPoint center{0, 0, 0};
  double radius_km = 0;

  bool active_at(double t_sec) const {
    return t_sec >= t_start_sec && t_sec < t_end_sec;
  }
  bool covers(const geo::GeoPoint& where) const {
    return geo::surface_distance_km(center, where) <= radius_km;
  }
  bool matches(std::string_view name) const { return target == "*" || target == name; }

  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && target == o.target && t_start_sec == o.t_start_sec &&
           t_end_sec == o.t_end_sec && magnitude == o.magnitude &&
           center.lat_deg == o.center.lat_deg && center.lon_deg == o.center.lon_deg &&
           radius_km == o.radius_km;
  }
};

/// Deterministic synthesis knobs for FaultPlan::generate. Events are
/// derived with Rng::fork_stable keyed by (kind, index), so a plan is a
/// pure function of (config, seed) — never of shard or thread count.
struct GenerateConfig {
  double horizon_sec = 86400.0;  ///< events land inside [0, horizon)
  std::size_t gateway_outages = 0;
  std::vector<std::string> gateway_names;  ///< outage targets, round-robin
  std::size_t handoff_storms = 0;
  std::string storm_network = "*";
  std::size_t weather_escalations = 0;
  std::vector<geo::GeoPoint> weather_centers;  ///< escalation anchors
  std::size_t loss_bursts = 0;
  std::string loss_operator = "*";
  double loss_fraction = 0.02;
  double shard_failure_prob = 0.0;  ///< > 0 adds one whole-run shard_failure event
  std::string shard_phase = "*";
};

/// A replayable fault schedule. Events are kept sorted by
/// (kind, target, t_start) — the canonical order to_spec() emits.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Parses the text spec format (one event per line):
  ///   kind,target,start_sec,end_sec,magnitude[,lat,lon,radius_km]
  /// '#' starts a comment; blank lines are skipped. Throws
  /// std::invalid_argument with line context on malformed input.
  static FaultPlan parse_spec(std::string_view text);

  /// Reads and parses a spec file; throws std::runtime_error when the
  /// file cannot be read.
  static FaultPlan load_file(const std::string& path);

  /// Deterministic synthesis via Rng::fork_stable(kind, index). Windows
  /// for the same target never overlap (slot construction). Throws
  /// std::invalid_argument when windowed events are requested with a
  /// non-positive horizon_sec.
  static FaultPlan generate(const GenerateConfig& config, std::uint64_t seed);

  /// Serializes back to the spec format; parse_spec(to_spec()) == *this.
  std::string to_spec() const;

  /// Enforces invariants: t_end > t_start, sane magnitudes, and no two
  /// same-kind events with overlapping windows on one target. Throws
  /// std::invalid_argument naming the offending event.
  void validate() const;

  /// "gateway_outage:2 handoff_storm:1 ..." — for run manifests.
  std::string summary() const;

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  bool operator==(const FaultPlan&) const = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace satnet::fault
