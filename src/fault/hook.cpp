#include "fault/hook.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "stats/rng.hpp"

namespace satnet::fault {

namespace {

// Installed hook + retired predecessors. Hooks are immutable, so a
// reader holding a stale pointer is always safe; the retired list just
// keeps replaced hooks alive for the process lifetime (installs happen
// per run, not per sample — the leak is bounded and TSan-clean).
std::atomic<const Hook*> g_active{nullptr};
std::mutex g_retired_mu;
std::vector<std::unique_ptr<const Hook>>& retired_hooks() {
  // satlint:allow(worker-reach): every access holds g_retired_mu; the list grows only at install time, never inside a shard body
  static std::vector<std::unique_ptr<const Hook>> list;
  return list;
}

obs::Counter& hit_counter(EventKind kind) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  switch (kind) {
    case EventKind::gateway_outage:
      return reg.counter("fault.hit.gateway_outage", "gateway eligibility denials");
    case EventKind::handoff_storm:
      return reg.counter("fault.hit.handoff_storm", "storm-scaled reconfig samples");
    case EventKind::weather_escalation:
      return reg.counter("fault.hit.weather_escalation", "weather severity floors applied");
    case EventKind::burst_loss:
      return reg.counter("fault.hit.burst_loss", "space-segment loss boosts applied");
    case EventKind::shard_failure:
      return reg.counter("fault.hit.shard_failure", "injected shard-task failures");
  }
  return reg.counter("fault.hit.unknown", "unreachable");
}

/// Counter bump + flight-recorder event for one applied fault. The
/// record lands in the calling shard's scope (det — the hit derives
/// from the shard's deterministic execution) or, outside any scope, in
/// the thread's telemetry ring.
void record_hit(EventKind kind) {
  hit_counter(kind).add(1);
  obs::FlightRecorder::global().record(obs::EventKind::fault_hit,
                                       static_cast<std::uint64_t>(kind));
}

}  // namespace

Hook::Hook(FaultPlan plan) : plan_(std::move(plan)) { plan_.validate(); }

bool Hook::gateway_down(std::string_view gateway, double t_sec) const {
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.kind == EventKind::gateway_outage && ev.matches(gateway) &&
        ev.active_at(t_sec)) {
      record_hit(ev.kind);
      return true;
    }
  }
  return false;
}

double Hook::reconfig_interval_scale(std::string_view network, double t_sec) const {
  double scale = 1.0;
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.kind == EventKind::handoff_storm && ev.matches(network) &&
        ev.active_at(t_sec)) {
      scale = std::max(scale, ev.magnitude);
    }
  }
  if (scale > 1.0) record_hit(EventKind::handoff_storm);
  return scale;
}

int Hook::weather_severity_floor(const geo::GeoPoint& where, double t_sec) const {
  int floor = 0;
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.kind == EventKind::weather_escalation && ev.active_at(t_sec) &&
        ev.covers(where)) {
      floor = std::max(floor, static_cast<int>(ev.magnitude));
    }
  }
  if (floor > 0) record_hit(EventKind::weather_escalation);
  return floor;
}

double Hook::extra_space_loss(std::string_view operator_name, double t_sec) const {
  double extra = 0.0;
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.kind == EventKind::burst_loss && ev.matches(operator_name) &&
        ev.active_at(t_sec)) {
      extra += ev.magnitude;
    }
  }
  if (extra > 0) record_hit(EventKind::burst_loss);
  return std::min(extra, 1.0);
}

bool Hook::fail_shard(std::string_view phase, std::size_t shard,
                      std::size_t attempt) const {
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.kind != EventKind::shard_failure || !ev.matches(phase)) continue;
    // Decision = pure hash of (phase, shard, attempt) against the
    // event's probability; no Rng state, no thread identity.
    const std::uint64_t h =
        stats::Rng::hash_name(std::string(phase) + "#" + std::to_string(shard) + "#" +
                              std::to_string(attempt));
    const double u = static_cast<double>(h % 1000003ull) / 1000003.0;
    if (u < ev.magnitude) {
      record_hit(ev.kind);
      return true;
    }
  }
  return false;
}

const Hook* Hook::active() { return g_active.load(std::memory_order_acquire); }

void Hook::install(FaultPlan plan) {
  auto next = std::make_unique<const Hook>(std::move(plan));
  const Hook* prev = g_active.exchange(next.get(), std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(g_retired_mu);
  retired_hooks().push_back(std::move(next));
  if (prev) {
    // prev already lives in the retired list; nothing to free.
    (void)prev;
  }
}

void Hook::clear() { g_active.store(nullptr, std::memory_order_release); }

}  // namespace satnet::fault
