// The single gate every fault-injection point goes through.
//
// Injection sites in src/ never grow ad-hoc `if (inject_...)` flags
// (satlint D6 enforces this): they ask the process-wide Hook, which
// answers from the installed FaultPlan and counts every hit into the
// fault.hit.* metrics. With no hook installed every query returns its
// neutral answer at the cost of one relaxed atomic load, so production
// paths pay nothing for the capability.
//
// Installation is an atomic pointer swap. Replaced hooks are retired,
// not deleted, so a reader that loaded the old pointer mid-campaign can
// finish its query safely (hooks are immutable after construction, and
// plans are plan-lifetime objects, not per-sample ones). ScopedHook is
// the RAII shape tests and CLI entry points use.
//
// Determinism: every answer is a pure function of (plan, query args).
// The shard-failure decision hashes (phase, shard, attempt) — never a
// thread id or clock — so injected failures land on the same shards at
// any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "fault/plan.hpp"

namespace satnet::fault {

/// Thrown by the campaign runtime when the hook injects a shard-task
/// failure; also usable by tests as a recognizable worker error.
class InjectedShardFailure : public std::runtime_error {
 public:
  InjectedShardFailure(std::string_view phase, std::size_t shard, std::size_t attempt)
      : std::runtime_error("injected shard failure: phase=" + std::string(phase) +
                           " shard=" + std::to_string(shard) +
                           " attempt=" + std::to_string(attempt)),
        shard_(shard),
        attempt_(attempt) {}

  std::size_t shard() const { return shard_; }
  std::size_t attempt() const { return attempt_; }

 private:
  std::size_t shard_;
  std::size_t attempt_;
};

/// Immutable query interface over an installed FaultPlan. All queries
/// are const, thread-safe, and increment fault.hit.* counters when an
/// event applies.
class Hook {
 public:
  explicit Hook(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// orbit: is this gateway inside an outage window at time t?
  bool gateway_down(std::string_view gateway, double t_sec) const;

  /// orbit: >= 1; divide the access network's reconfig interval by this
  /// during a handoff storm (magnitude = how many times faster epochs
  /// roll). Returns 1 outside storm windows.
  double reconfig_interval_scale(std::string_view network, double t_sec) const;

  /// weather: severity floor at this location/time — 0 none, 1 cloudy,
  /// 2 rain, 3 heavy rain. The strongest covering escalation wins.
  int weather_severity_floor(const geo::GeoPoint& where, double t_sec) const;

  /// transport: extra post-FEC loss fraction on the space segment for
  /// this operator at time t (sum of active burst_loss events).
  double extra_space_loss(std::string_view operator_name, double t_sec) const;

  /// runtime: should this (phase, shard, attempt) fail? Pure hash
  /// decision against the per-attempt failure probability of a matching
  /// shard_failure event — stable across shard/thread counts.
  bool fail_shard(std::string_view phase, std::size_t shard, std::size_t attempt) const;

  /// The installed hook, or nullptr. One relaxed-ish (acquire) load.
  static const Hook* active();

  /// Replaces the installed hook. The previous hook is retired (kept
  /// alive for the process lifetime), never deleted under readers.
  static void install(FaultPlan plan);

  /// Uninstalls; queries return neutral answers again.
  static void clear();

 private:
  FaultPlan plan_;
};

/// Installs a plan for a scope (a CLI run, a test body); restores the
/// empty state on exit. Scopes don't nest meaningfully — the last one
/// destroyed clears the hook.
class ScopedHook {
 public:
  explicit ScopedHook(FaultPlan plan) { Hook::install(std::move(plan)); }
  ~ScopedHook() { Hook::clear(); }

  ScopedHook(const ScopedHook&) = delete;
  ScopedHook& operator=(const ScopedHook&) = delete;
};

}  // namespace satnet::fault
