#include "bgp/coverage.hpp"

namespace satnet::bgp {

CoverageReport infer_coverage(const AsGraph& snapshot, Asn sno, const Footprint& truth) {
  CoverageReport r;
  r.peer_countries = snapshot.neighbor_countries(sno);
  r.truth_countries = truth.size();
  for (const auto& [country, cities] : truth) {
    r.total_cities += cities;
    if (r.peer_countries.count(country) > 0) {
      r.discovered.insert(country);
      r.covered_cities += cities;
    }
  }
  return r;
}

}  // namespace satnet::bgp
