// Ground-truth BGP world per snapshot year (2021, 2022, 2023).
//
// Encodes the peering facts the paper reads off route-views: Starlink's
// explosive peering growth, HughesNet's stagnation, Viasat's US->global
// expansion, Marlink's tier-1 swap (Level3 -> Cogent), OneWeb's two
// US-only upstreams, Kacific's tiny regional customers — plus the
// ground-truth PoP footprints used to score the coverage inference.
#pragma once

#include <vector>

#include "bgp/as_graph.hpp"
#include "bgp/coverage.hpp"

namespace satnet::bgp {

/// Well-known ASNs used across the reproduction.
inline constexpr Asn kStarlink = 14593;
inline constexpr Asn kStarlinkCorporate = 27277;
inline constexpr Asn kOneWeb = 800;
inline constexpr Asn kO3b = 60725;
inline constexpr Asn kSes = 201554;
inline constexpr Asn kViasat = 13955;
inline constexpr Asn kHughes = 28613;
inline constexpr Asn kTelAlaska = 10538;
inline constexpr Asn kKvh = 25687;
inline constexpr Asn kSsi = 22684;
inline constexpr Asn kEutelsat = 15829;
inline constexpr Asn kAvanti = 39356;
inline constexpr Asn kMarlink = 5377;
inline constexpr Asn kIntelsat = 26243;
inline constexpr Asn kHellasSat = 41697;
inline constexpr Asn kUltiSat = 393439;
inline constexpr Asn kIsotropic = 36426;
inline constexpr Asn kKacific = 135409;
inline constexpr Asn kGlobalSat = 28503;
inline constexpr Asn kTelesat = 19036;
inline constexpr Asn kThaicom = 63951;
inline constexpr Asn kSpeedcast = 38456;

/// Ground-truth AS graph as of January 1 of `year` (2021, 2022 or 2023).
AsGraph sno_world_graph(int year);

/// The SNOs whose ground-truth PoP footprints are known (the paper had
/// public maps for Starlink, SES and Hellas-Sat).
struct KnownFootprint {
  Asn asn;
  const char* name;
  Footprint footprint;  ///< country -> PoP city count
};
std::vector<KnownFootprint> known_footprints();

}  // namespace satnet::bgp
