// Geographic-coverage inference from BGP peering (paper §4).
//
// Intuition: an SNO is not a tier-1, so wherever it has ground
// infrastructure it must buy/peer with upstream networks; the country
// jurisdictions of its BGP neighbors therefore approximate its PoP
// countries. The method under-estimates (continent-wide peers register a
// single country) — the reproduction measures that bias against the
// simulated ground truth exactly as the paper did against public PoP maps.
#pragma once

#include <map>
#include <set>
#include <string>

#include "bgp/as_graph.hpp"

namespace satnet::bgp {

/// Ground-truth footprint of one SNO: PoP city counts per country code.
using Footprint = std::map<std::string, int>;

struct CoverageReport {
  std::set<std::string> peer_countries;   ///< all inferred countries
  std::set<std::string> discovered;       ///< inferred ∩ ground truth
  std::size_t truth_countries = 0;
  int covered_cities = 0;
  int total_cities = 0;

  double country_recall() const {
    return truth_countries == 0
               ? 0.0
               : static_cast<double>(discovered.size()) /
                     static_cast<double>(truth_countries);
  }
  double city_coverage() const {
    return total_cities == 0 ? 0.0
                             : static_cast<double>(covered_cities) /
                                   static_cast<double>(total_cities);
  }
};

/// Runs the inference for `sno` on an observed snapshot and scores it
/// against the ground-truth footprint.
CoverageReport infer_coverage(const AsGraph& snapshot, Asn sno, const Footprint& truth);

}  // namespace satnet::bgp
