// Route-views-style observation of the ground-truth AS graph.
//
// Route collectors see customer-provider edges on almost every path but
// miss a fraction of peer-peer edges (they only propagate to customers).
// observe_routeviews() samples the truth graph accordingly, which is what
// makes the coverage inference an *under*-estimate, as the paper reports.
#pragma once

#include <string>

#include "bgp/as_graph.hpp"
#include "stats/rng.hpp"

namespace satnet::bgp {

/// Samples an observed snapshot from the ground-truth graph.
/// Customer-provider edges are always observed; peer-peer edges with
/// probability `peer_edge_visibility`.
AsGraph observe_routeviews(const AsGraph& truth, stats::Rng& rng,
                           double peer_edge_visibility = 0.8);

/// Text rendering of one SNO's peering neighborhood (the content of the
/// paper's Figure 5/12 bubbles): peers sorted by degree, with country and
/// a provider/customer guess from relative degree.
std::string describe_peering(const AsGraph& graph, Asn sno);

}  // namespace satnet::bgp
