#include "bgp/sno_world.hpp"

#include <stdexcept>

namespace satnet::bgp {

namespace {

// Transit and regional providers present in every snapshot.
const std::vector<AsInfo>& backbone_ases() {
  static const std::vector<AsInfo> kBackbone = {
      // Tier 1 (global transit).
      {3356, "Lumen/Level3", "US", 1},
      {1299, "Arelion", "SE", 1},
      {174, "Cogent", "US", 1},
      {6762, "Telecom Italia Sparkle", "IT", 1},
      {2914, "NTT America", "US", 1},
      {3257, "GTT", "DE", 1},
      {6453, "Tata Communications", "US", 1},
      {7018, "AT&T", "US", 1},
      {3320, "Deutsche Telekom", "DE", 1},
      {5511, "Orange International", "FR", 1},
      {3549, "Level3 (legacy)", "US", 1},
      {6939, "Hurricane Electric", "US", 1},
      // Tier 2 (regional transit).
      {7195, "EdgeUno", "CO", 2},
      {1221, "Telstra", "AU", 2},
      {4826, "Vocus", "AU", 2},
      {4771, "Spark NZ", "NZ", 2},
      {2497, "IIJ", "JP", 2},
      {9299, "PLDT", "PH", 2},
      {27651, "Entel Chile", "CL", 2},
      {12956, "Telefonica International", "ES", 2},
      {1273, "Vodafone", "GB", 2},
      {5400, "BT Global", "GB", 2},
      {33891, "Core-Backbone", "DE", 2},
      {6830, "Liberty Global", "LU", 2},
      {52320, "GlobeNet", "BR", 2},
      {6799, "OTE", "GR", 2},
      {6866, "CYTA", "CY", 2},
      {4651, "NT Thailand", "TH", 2},
      // Tier 3 stubs (regional ISPs reselling satellite capacity).
      {135600, "Pacific Regional ISP", "FJ", 3},
      {139901, "Island Broadband", "PH", 3},
      {139902, "Oceania Connect", "FJ", 3},
      {139903, "Alaska Rural Net", "US", 3},
  };
  return kBackbone;
}

// SNO ASes (registration countries per Table 3's operators).
const std::vector<AsInfo>& sno_ases() {
  static const std::vector<AsInfo> kSnos = {
      {kStarlink, "Starlink (SpaceX)", "US", 3},
      {kStarlinkCorporate, "SpaceX corporate", "US", 3},
      {kOneWeb, "OneWeb", "GB", 3},
      {kO3b, "O3b Networks", "LU", 3},
      {kSes, "SES", "LU", 3},
      {kViasat, "Viasat", "US", 3},
      {kHughes, "HughesNet", "US", 3},
      {kTelAlaska, "TelAlaska", "US", 3},
      {kKvh, "KVH Industries", "US", 3},
      {kSsi, "SSI", "US", 3},
      {kEutelsat, "Eutelsat", "FR", 3},
      {kAvanti, "Avanti", "GB", 3},
      {kMarlink, "Marlink", "NO", 3},
      {kIntelsat, "Intelsat", "US", 3},
      {kHellasSat, "Hellas-Sat", "GR", 3},
      {kUltiSat, "UltiSat", "US", 3},
      {kIsotropic, "Isotropic", "US", 3},
      {kKacific, "Kacific", "FJ", 3},
      {kGlobalSat, "GlobalSat", "BR", 3},
      {kTelesat, "Telesat", "CA", 3},
      {kThaicom, "Thaicom", "TH", 3},
      {kSpeedcast, "Speedcast", "AU", 3},
  };
  return kSnos;
}

struct YearlyPeering {
  Asn sno;
  int from_year;            ///< edge exists in snapshots >= this year
  int until_year = 9999;    ///< and < this year
  Asn neighbor;
  Relationship rel = Relationship::customer_provider;
};

// The longitudinal peering facts behind Figures 5, 12 and 13.
const std::vector<YearlyPeering>& peering_history() {
  using enum Relationship;
  static const std::vector<YearlyPeering> kHistory = {
      // --- Starlink: explosive growth 2021 -> 2023 (Fig 13a). ---
      {kStarlink, 2021, 9999, 3356}, {kStarlink, 2021, 9999, 1299},
      {kStarlink, 2021, 9999, 6939, peer_peer}, {kStarlink, 2021, 9999, 7018},
      {kStarlink, 2022, 9999, 174}, {kStarlink, 2022, 9999, 2914},
      {kStarlink, 2022, 9999, 6762}, {kStarlink, 2022, 9999, 1221, peer_peer},
      {kStarlink, 2022, 9999, 4771, peer_peer}, {kStarlink, 2022, 9999, 3320},
      {kStarlink, 2022, 9999, 5511},
      {kStarlink, 2023, 9999, 3257}, {kStarlink, 2023, 9999, 6453},
      {kStarlink, 2023, 9999, 7195, peer_peer}, {kStarlink, 2023, 9999, 2497, peer_peer},
      {kStarlink, 2023, 9999, 9299, peer_peer}, {kStarlink, 2023, 9999, 27651, peer_peer},
      {kStarlink, 2023, 9999, 1273, peer_peer}, {kStarlink, 2023, 9999, 5400, peer_peer},
      {kStarlink, 2023, 9999, 4826, peer_peer}, {kStarlink, 2023, 9999, 6830, peer_peer},
      // Starlink corporate network buys ordinary terrestrial transit.
      {kStarlinkCorporate, 2021, 9999, 3356}, {kStarlinkCorporate, 2021, 9999, 174},
      // --- OneWeb: exactly two US-based upstreams (Fig 5b). ---
      {kOneWeb, 2021, 9999, 6939}, {kOneWeb, 2022, 9999, 3356},
      // --- HughesNet: stagnant 2021-2023 (Fig 13b). ---
      {kHughes, 2021, 9999, 3356}, {kHughes, 2021, 9999, 174},
      {kHughes, 2021, 9999, 7018},
      // --- Viasat: US-only in 2021, global by 2023 (Fig 13c). ---
      {kViasat, 2021, 9999, 3356}, {kViasat, 2021, 9999, 174},
      {kViasat, 2021, 9999, 7018}, {kViasat, 2023, 9999, 6762},
      {kViasat, 2023, 9999, 1299}, {kViasat, 2023, 9999, 5511},
      {kViasat, 2023, 9999, 52320, peer_peer}, {kViasat, 2023, 9999, 1221, peer_peer},
      // --- Marlink: its one US tier-1 changed Level3 -> Cogent (Fig 13d). ---
      {kMarlink, 2021, 2022, 3549}, {kMarlink, 2022, 9999, 174},
      {kMarlink, 2021, 9999, 1299},
      // --- SES / O3b: aggressively peered MEO operator. ---
      {kSes, 2021, 9999, 3356}, {kSes, 2021, 9999, 1299},
      {kSes, 2021, 9999, 174}, {kSes, 2021, 9999, 6453},
      {kSes, 2021, 9999, 3320}, {kSes, 2022, 9999, 52320, peer_peer},
      {kSes, 2022, 9999, 12956, peer_peer},
      {kO3b, 2021, 9999, 3356}, {kO3b, 2021, 9999, 1299},
      {kO3b, 2021, 9999, 6453}, {kO3b, 2022, 9999, 52320, peer_peer},
      {kO3b, 2022, 9999, 4826, peer_peer},
      // --- Remaining GEO operators. ---
      {kTelAlaska, 2021, 9999, 3356}, {kTelAlaska, 2021, 9999, 7018},
      {kTelAlaska, 2021, 9999, 139903, peer_peer},
      {kKvh, 2021, 9999, 174},
      {kSsi, 2021, 9999, 3356},
      {kEutelsat, 2021, 9999, 5511}, {kEutelsat, 2021, 9999, 3356},
      {kAvanti, 2021, 9999, 5400}, {kAvanti, 2021, 9999, 1273},
      {kIntelsat, 2021, 9999, 3356}, {kIntelsat, 2021, 9999, 174},
      {kIntelsat, 2021, 9999, 3320},
      // Hellas-Sat: no tier-1 at all, only local incumbents.
      {kHellasSat, 2021, 9999, 6799}, {kHellasSat, 2021, 9999, 6866},
      {kUltiSat, 2021, 9999, 139903},
      {kIsotropic, 2021, 9999, 3356},
      // Kacific: tier-1 connected, and *sells* to tiny island ISPs.
      {kKacific, 2021, 9999, 3356}, {kKacific, 2021, 9999, 174},
      {kKacific, 2021, 9999, 1299},
      {kKacific, 2021, 9999, 135600, peer_peer},
      {kKacific, 2021, 9999, 139901, peer_peer},
      {kKacific, 2021, 9999, 139902, peer_peer},
      {kGlobalSat, 2021, 9999, 52320},
      {kTelesat, 2021, 9999, 3356}, {kTelesat, 2021, 9999, 6939},
      {kTelesat, 2022, 9999, 1299},
      {kThaicom, 2021, 9999, 6453}, {kThaicom, 2021, 9999, 4651},
      {kSpeedcast, 2021, 9999, 1221}, {kSpeedcast, 2021, 9999, 6939},
  };
  return kHistory;
}

void add_backbone_mesh(AsGraph& g) {
  // Tier-1s form a full peer mesh; tier-2s buy from two tier-1s and the
  // stubs buy from a regional. Deterministic assignment keeps snapshots
  // comparable across years.
  const auto& bb = backbone_ases();
  std::vector<Asn> tier1, tier2, tier3;
  for (const auto& a : bb) {
    if (a.tier == 1) tier1.push_back(a.asn);
    else if (a.tier == 2) tier2.push_back(a.asn);
    else tier3.push_back(a.asn);
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      g.add_edge(tier1[i], tier1[j], Relationship::peer_peer);
    }
  }
  for (std::size_t i = 0; i < tier2.size(); ++i) {
    g.add_edge(tier2[i], tier1[i % tier1.size()], Relationship::customer_provider);
    g.add_edge(tier2[i], tier1[(i + 3) % tier1.size()], Relationship::customer_provider);
  }
  for (std::size_t i = 0; i < tier3.size(); ++i) {
    g.add_edge(tier3[i], tier2[i % tier2.size()], Relationship::customer_provider);
  }
}

}  // namespace

AsGraph sno_world_graph(int year) {
  if (year < 2021 || year > 2023) {
    throw std::invalid_argument("sno_world_graph: snapshots exist for 2021-2023");
  }
  AsGraph g;
  for (const auto& a : backbone_ases()) g.add_as(a);
  for (const auto& a : sno_ases()) g.add_as(a);
  add_backbone_mesh(g);
  for (const auto& p : peering_history()) {
    if (year >= p.from_year && year < p.until_year) {
      g.add_edge(p.sno, p.neighbor, p.rel);
    }
  }
  return g;
}

std::vector<KnownFootprint> known_footprints() {
  return {
      // Starlink: 30 countries of PoPs; city counts concentrated in the
      // US and Europe (the public "unofficial gateways & PoPs" map).
      {kStarlink,
       "Starlink",
       {{"US", 9}, {"CA", 2}, {"MX", 1}, {"DO", 1}, {"BR", 1}, {"CL", 1},
        {"PE", 1}, {"CO", 1}, {"AR", 1}, {"GB", 1}, {"DE", 1}, {"FR", 1},
        {"ES", 1}, {"PT", 1}, {"IT", 1}, {"PL", 1}, {"CZ", 1}, {"AT", 1},
        {"NL", 1}, {"NO", 1}, {"SE", 1}, {"CH", 1}, {"IE", 1}, {"JP", 1},
        {"PH", 1}, {"SG", 1}, {"AU", 2}, {"NZ", 1}, {"FJ", 1}, {"TR", 1}}},
      // SES: 22 teleport countries.
      {kSes,
       "SES",
       {{"US", 3}, {"LU", 2}, {"DE", 1}, {"FR", 1}, {"GB", 1}, {"ES", 1},
        {"IT", 1}, {"SE", 1}, {"GR", 1}, {"BR", 2}, {"PE", 1}, {"CL", 1},
        {"AU", 1}, {"NZ", 1}, {"SG", 1}, {"JP", 1}, {"TH", 1}, {"AE", 1},
        {"ZA", 1}, {"NG", 1}, {"KE", 1}, {"EG", 1}}},
      // Hellas-Sat: teleports in Greece and Cyprus only.
      {kHellasSat, "Hellas-Sat", {{"GR", 1}, {"CY", 1}}},
  };
}

}  // namespace satnet::bgp
