#include "bgp/routeviews.hpp"

#include <algorithm>
#include <cstdio>

namespace satnet::bgp {

AsGraph observe_routeviews(const AsGraph& truth, stats::Rng& rng,
                           double peer_edge_visibility) {
  AsGraph observed;
  for (const auto& info : truth.all_as()) observed.add_as(info);
  for (const auto& e : truth.edges()) {
    const bool visible = e.rel == Relationship::customer_provider
                             ? true
                             : rng.chance(peer_edge_visibility);
    if (visible) observed.add_edge(e.a, e.b, e.rel);
  }
  return observed;
}

std::string describe_peering(const AsGraph& graph, Asn sno) {
  struct Peer {
    AsInfo info;
    std::size_t degree;
  };
  std::vector<Peer> peers;
  for (const Asn n : graph.neighbors(sno)) {
    peers.push_back({graph.info(n), graph.degree(n)});
  }
  std::sort(peers.begin(), peers.end(), [](const Peer& a, const Peer& b) {
    return a.degree > b.degree;
  });

  const std::size_t own_degree = graph.degree(sno);
  std::string out = graph.info(sno).name + " (AS" + std::to_string(sno) +
                    ", degree " + std::to_string(own_degree) + "):\n";
  for (const auto& p : peers) {
    char line[160];
    // The paper speculates on upstream-vs-customer from relative size.
    const char* role = p.degree > own_degree      ? "likely upstream"
                       : p.degree * 2 < own_degree ? "likely customer"
                                                   : "peer";
    std::snprintf(line, sizeof(line), "  AS%-7u %-24s %-3s degree=%-4zu %s\n",
                  p.info.asn, p.info.name.c_str(), p.info.country.c_str(), p.degree,
                  role);
    out += line;
  }
  return out;
}

}  // namespace satnet::bgp
