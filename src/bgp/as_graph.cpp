#include "bgp/as_graph.hpp"

#include <stdexcept>

namespace satnet::bgp {

void AsGraph::add_as(AsInfo info) {
  const Asn asn = info.asn;
  nodes_[asn] = std::move(info);
  adjacency_.try_emplace(asn);
}

void AsGraph::add_edge(Asn a, Asn b, Relationship rel) {
  if (!contains(a) || !contains(b)) {
    throw std::invalid_argument("AsGraph::add_edge: unknown AS " +
                                std::to_string(contains(a) ? b : a));
  }
  const std::size_t idx = edges_.size();
  edges_.push_back({a, b, rel});
  adjacency_[a].push_back(idx);
  adjacency_[b].push_back(idx);
}

const AsInfo& AsGraph::info(Asn asn) const {
  const auto it = nodes_.find(asn);
  if (it == nodes_.end()) throw std::out_of_range("unknown AS " + std::to_string(asn));
  return it->second;
}

std::vector<Asn> AsGraph::neighbors(Asn asn) const {
  std::vector<Asn> out;
  const auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t idx : it->second) {
    const Edge& e = edges_[idx];
    out.push_back(e.a == asn ? e.b : e.a);
  }
  return out;
}

std::size_t AsGraph::degree(Asn asn) const {
  const auto it = adjacency_.find(asn);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::vector<Asn> AsGraph::providers(Asn asn) const {
  std::vector<Asn> out;
  const auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  for (const std::size_t idx : it->second) {
    const Edge& e = edges_[idx];
    if (e.rel == Relationship::customer_provider && e.a == asn) out.push_back(e.b);
  }
  return out;
}

std::set<std::string> AsGraph::neighbor_countries(Asn asn) const {
  std::set<std::string> out;
  for (const Asn n : neighbors(asn)) out.insert(info(n).country);
  return out;
}

std::vector<AsInfo> AsGraph::all_as() const {
  std::vector<AsInfo> out;
  out.reserve(nodes_.size());
  for (const auto& [asn, info] : nodes_) out.push_back(info);
  return out;
}

}  // namespace satnet::bgp
