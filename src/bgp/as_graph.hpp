// AS-level topology: autonomous systems, business relationships, degrees.
//
// The paper infers SNO ground-infrastructure footprints from BGP peering
// data (route-views) because no public PoP maps exist for most SNOs. The
// reproduction keeps a ground-truth AS graph per snapshot year and an
// "observed" graph sampled from it the way route-views sees the world.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace satnet::bgp {

using Asn = std::uint32_t;

/// Static information about one AS, as the RIR registries expose it.
/// `country` is the single registration jurisdiction — the paper's method
/// inherits exactly this limitation (multi-country networks register one
/// code).
struct AsInfo {
  Asn asn = 0;
  std::string name;
  std::string country;  ///< ISO code from RIR registration
  int tier = 3;         ///< 1 = global transit, 2 = regional, 3 = edge
};

/// Relationship on an edge, Gao-Rexford style.
enum class Relationship {
  customer_provider,  ///< first AS is the customer of the second
  peer_peer,
};

struct Edge {
  Asn a = 0;
  Asn b = 0;
  Relationship rel = Relationship::peer_peer;
};

/// An AS-level graph (either ground truth or an observed snapshot).
class AsGraph {
 public:
  void add_as(AsInfo info);
  /// Adds an edge; both endpoints must already exist.
  void add_edge(Asn a, Asn b, Relationship rel);

  bool contains(Asn asn) const { return nodes_.count(asn) > 0; }
  const AsInfo& info(Asn asn) const;
  std::size_t as_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbor ASNs of `asn` (any relationship).
  std::vector<Asn> neighbors(Asn asn) const;
  /// Node degree — the paper's proxy for AS "size" in Figure 5.
  std::size_t degree(Asn asn) const;
  /// Providers of `asn` (neighbors it is a customer of).
  std::vector<Asn> providers(Asn asn) const;

  /// Distinct registration countries across `asn`'s neighbors — the raw
  /// material of the coverage inference.
  std::set<std::string> neighbor_countries(Asn asn) const;

  /// All ASes, ordered by ASN.
  std::vector<AsInfo> all_as() const;

 private:
  std::map<Asn, AsInfo> nodes_;
  std::map<Asn, std::vector<std::size_t>> adjacency_;  ///< edge indices
  std::vector<Edge> edges_;
};

}  // namespace satnet::bgp
