// Minimal discrete-event simulation engine.
//
// Campaign drivers (RIPE built-in schedules, M-Lab test arrivals,
// longitudinal PoP-reassignment events) run on this engine so that an
// entire year of measurements is a deterministic replay.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace satnet::sim {

/// Simulation time in seconds since the campaign epoch.
using Time = double;

/// Event scheduler with a monotonic clock. Events scheduled for the same
/// time fire in scheduling order (stable tie-break by sequence number).
class EventQueue {
 public:
  using Handler = std::function<void(Time)>;

  /// Schedules `handler` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Handler handler);
  /// Schedules `handler` `delay` seconds from now.
  void schedule_in(Time delay, Handler handler);

  /// Runs events until the queue is empty or the next event is after
  /// `until`. Returns the number of events executed.
  std::size_t run_until(Time until);
  /// Runs the whole queue to exhaustion.
  std::size_t run();

  Time now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace satnet::sim
