#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace satnet::sim {

void EventQueue::schedule_at(Time t, Handler handler) {
  if (t < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  queue_.push(Event{t, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_in(Time delay, Handler handler) {
  if (delay < 0) throw std::invalid_argument("EventQueue: negative delay");
  schedule_at(now_ + delay, std::move(handler));
}

std::size_t EventQueue::run_until(Time until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().t <= until) {
    // Copy out before pop: the handler may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ev.handler(now_);
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ev.handler(now_);
    ++executed;
  }
  return executed;
}

}  // namespace satnet::sim
