#include "runtime/sharded.hpp"

#include <algorithm>

namespace satnet::runtime {

std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t n_items, std::size_t max_chunk) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (n_items == 0) return out;
  const std::size_t chunk = std::max<std::size_t>(max_chunk, 1);
  out.reserve((n_items + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n_items; begin += chunk) {
    out.emplace_back(begin, std::min(begin + chunk, n_items));
  }
  return out;
}

}  // namespace satnet::runtime
