// Fixed-size worker pool for the sharded campaign runtime.
//
// The pool is deliberately minimal: FIFO task queue, no work stealing, no
// priorities. Campaign determinism never depends on scheduling order —
// shards are independent and results are merged by shard index — so the
// pool only has to be correct, not clever.
//
// Observability: the pool reports queue depth, tasks executed, and
// worker busy/idle time into obs::MetricsRegistry::global()
// (runtime.pool.*). Metrics are observation-only and never influence
// scheduling.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace satnet::runtime {

/// Resolves a thread-count knob: 0 means "one per hardware thread"
/// (never less than 1).
unsigned resolve_threads(unsigned requested);

/// Process-wide watchdog knobs for pools constructed afterwards.
/// `poll_ms` = 0 (the default) disables the watchdog entirely — no
/// extra thread is spawned. When enabled, a pool-owned watchdog thread
/// wakes every `poll_ms` and flags any worker whose current task has
/// been running longer than `threshold_ms` (once per task): increments
/// runtime.pool.stall, emits a det=0 stall_flag flight-recorder event,
/// and prints one stderr line. Purely observational — the task keeps
/// running.
void set_pool_watchdog(unsigned poll_ms, double threshold_ms);
unsigned pool_watchdog_poll_ms();
double pool_watchdog_threshold_ms();

class ThreadPool {
 public:
  /// Spawns `threads` workers (resolved via resolve_threads).
  explicit ThreadPool(unsigned threads = 0);
  /// Drains the queue, then joins all workers (via shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (wrap and capture instead;
  /// ShardedCampaign does this for shard bodies). Throws
  /// std::logic_error once shutdown has begun — a submit that would
  /// otherwise be silently dropped or deadlock.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Drains the queue, joins all workers, and rejects further submits.
  /// Idempotent; the destructor calls it.
  void shutdown();

 private:
  void worker_loop(std::size_t worker);
  void watchdog_loop(unsigned poll_ms, double threshold_ms);
  std::uint64_t now_us() const;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;   ///< signalled when work arrives / stop
  std::condition_variable cv_idle_;   ///< signalled when a task finishes
  std::size_t active_ = 0;
  bool stop_ = false;
  bool joined_ = false;

  // Watchdog state. inflight_start_us_[w] is 1 + the start time of the
  // task worker w is running (0 = idle); the +1 keeps "started at the
  // pool epoch" distinct from "idle".
  std::vector<std::atomic<std::uint64_t>> inflight_start_us_;
  std::thread watchdog_;
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;
  std::chrono::steady_clock::time_point epoch_;

  // Cached metric handles (registration is find-or-create; handles are
  // stable for the registry's lifetime).
  obs::Counter& tasks_executed_;
  obs::Counter& busy_us_;
  obs::Counter& idle_us_;
  obs::Gauge& queue_depth_;
  obs::Gauge& workers_gauge_;
};

}  // namespace satnet::runtime
