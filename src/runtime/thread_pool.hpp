// Fixed-size worker pool for the sharded campaign runtime.
//
// The pool is deliberately minimal: FIFO task queue, no work stealing, no
// priorities. Campaign determinism never depends on scheduling order —
// shards are independent and results are merged by shard index — so the
// pool only has to be correct, not clever.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace satnet::runtime {

/// Resolves a thread-count knob: 0 means "one per hardware thread"
/// (never less than 1).
unsigned resolve_threads(unsigned requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (resolved via resolve_threads).
  explicit ThreadPool(unsigned threads = 0);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (wrap and capture instead;
  /// ShardedCampaign does this for shard bodies).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;   ///< signalled when work arrives / stop
  std::condition_variable cv_idle_;   ///< signalled when a task finishes
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace satnet::runtime
