// ShardedCampaign: deterministic fan-out/fan-in for campaign and analysis
// layers.
//
// A campaign is split into independent shards; each shard derives all of
// its randomness from a stable key (never from "how many shards ran
// before me"), runs to completion on a worker, and produces a value. The
// values are merged in shard-index order, so the overall result is a pure
// function of (seed, config) — bit-identical for any thread count,
// including 1 (which runs inline, with no threads spawned).
//
// Discipline for shard authors:
//   * derive the shard's Rng with Rng::fork_stable(shard key), keyed by
//     stable identity (operator name, probe id, chunk index) — never by
//     loop position;
//   * share only immutable inputs across shards (the World, datasets,
//     configs);
//   * accumulate into shard-local state, returned as the shard value.
//
// Failure semantics (RetryPolicy): a throwing shard is retried up to
// max_attempts times with deterministic exponential backoff (wall-clock
// only — the retry schedule never feeds the results). A shard that
// exhausts its attempts is either quarantined — degrade mode: its slot
// is filled with a default-constructed Result, the campaign completes,
// and the CampaignReport records exactly which shards degraded and why —
// or, in abort mode, the error of the lowest-indexed failing shard is
// rethrown (deterministic, independent of scheduling) *after* every
// shard has run, so no completed shard's work is silently lost by an
// early unwind. The fault::Hook's shard_failure events inject failures
// here, keyed by (phase, shard, attempt) so they land identically at any
// thread count.
//
// Observability: every run records each shard's wall-clock into the
// runtime.shard.latency_ms histogram, the fan-in (slot collection) into
// runtime.shard.merge_us, retries and quarantines into
// runtime.shard.retry / runtime.shard.degraded, and — when tracing is
// enabled — one span per attempt under the campaign's phase name. All of
// it is wall-clock-only telemetry; shard results never depend on it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/hook.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace satnet::runtime {

/// Splits `n_items` into contiguous [begin, end) ranges of at most
/// `max_chunk` items. Used to shard one big operator into several shards.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t n_items, std::size_t max_chunk);

/// How a campaign treats throwing shards.
struct RetryPolicy {
  /// Total attempts per shard (first run included). 1 = no retry.
  std::size_t max_attempts = 1;
  /// Backoff before attempt k (k >= 1): backoff_base_ms * 2^(k-1).
  /// Wall-clock only; 0 disables sleeping (tests, CI).
  double backoff_base_ms = 0.0;
  /// true: quarantine shards that exhaust attempts (slot becomes a
  /// default-constructed Result, campaign completes, report says which).
  /// false: rethrow the lowest-indexed shard error after all shards ran.
  bool degrade = false;
};

/// The conventional policy for tools that should survive an injected
/// fault plan: under an active fault::Hook, one retry then degrade
/// (quarantined shards become default results, counted in the report
/// and fault.hit.* metrics); with no hook, the abort default. Benches
/// and report generators use this as-is; satnetctl overrides it with
/// its explicit --retries/--degrade flags.
inline RetryPolicy degrade_under_faults() {
  RetryPolicy policy;
  if (fault::Hook::active() != nullptr) {
    policy.max_attempts = 2;
    policy.degrade = true;
  }
  return policy;
}

/// What actually happened to a campaign's shards. Deterministic for a
/// given (seed, config, plan): vectors are in shard-index order.
struct CampaignReport {
  std::string phase;
  std::size_t shards = 0;
  std::size_t retries = 0;   ///< re-attempts across all shards
  std::size_t degraded = 0;  ///< shards quarantined with default results
  std::vector<std::size_t> degraded_shards;
  std::vector<std::string> degraded_errors;  ///< what() per degraded shard

  bool clean() const { return degraded == 0 && retries == 0; }
};

template <typename Result>
class ShardedCampaign {
 public:
  using ShardFn = std::function<Result(std::size_t shard)>;

  /// `phase` labels this campaign's spans, groups them in trace exports
  /// ("mlab.campaign", "ripe.atlas", ...), and is the target fault-plan
  /// shard_failure events match against.
  ShardedCampaign(std::size_t n_shards, ShardFn fn, std::string phase = "campaign")
      : n_shards_(n_shards), fn_(std::move(fn)), phase_(std::move(phase)) {}

  /// Runs every shard and returns the results in shard-index order.
  /// `threads` resolves via resolve_threads; 1 runs inline. Abort-mode
  /// failure semantics (see RetryPolicy) with no retries.
  std::vector<Result> run(unsigned threads = 0) const {
    return run_with_report(threads, RetryPolicy{}, nullptr);
  }

  /// run() with explicit failure policy and optional accounting.
  /// `report` (when non-null) is overwritten with what happened; in
  /// degrade mode Result must be default-constructible.
  std::vector<Result> run_with_report(unsigned threads, const RetryPolicy& policy,
                                      CampaignReport* report) const {
    const unsigned n_threads = resolve_threads(threads);
    const std::size_t max_attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
    std::vector<std::optional<Result>> slots(n_shards_);
    std::vector<std::exception_ptr> errors(n_shards_);

    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::Counter& shards_run =
        reg.counter("runtime.shard.count", "campaign shards executed");
    obs::Counter& retries_total =
        reg.counter("runtime.shard.retry", "shard attempts after a failure");
    obs::Counter& merge_us =
        reg.counter("runtime.shard.merge_us", "fan-in time collecting shard slots");
    obs::Histogram& latency = reg.histogram(
        "runtime.shard.latency_ms", obs::latency_buckets_ms(),
        "per-shard wall-clock");

    // Retry accounting is written by workers; an atomic keeps it
    // race-free, and the total is scheduling-independent because the
    // attempt schedule is deterministic per shard.
    std::atomic<std::size_t> run_retries{0};

    const auto timed_attempt = [&](std::size_t i, std::size_t attempt,
                                   double queue_wait_ms) {
      obs::ScopedSpan span(phase_, attempt == 0 ? "shard" : "retry",
                           static_cast<std::uint64_t>(i));
      // Flight-recorder scope: the shard's event stream (phase enter/
      // exit, fault hits, retries) lands in a per-shard ring whose
      // content is deterministic — only wall_us varies run to run.
      obs::ShardScope rec_scope(phase_, i, attempt);
      if (attempt > 0) {
        obs::FlightRecorder::global().record(obs::EventKind::retry, attempt);
      }
      // satlint:allow(nondet-source): shard latency telemetry; shard results never read the clock
      // satlint:allow(nondet-taint): t0 feeds only the shard_ms report field; merged results are clock-free
      const auto t0 = std::chrono::steady_clock::now();
      if (const fault::Hook* hook = fault::Hook::active()) {
        if (hook->fail_shard(phase_, i, attempt)) {
          throw fault::InjectedShardFailure(phase_, i, attempt);
        }
      }
      Result r = fn_(i);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              // satlint:allow(nondet-source): shard latency telemetry; shard results never read the clock
              // satlint:allow(nondet-taint): wall_ms lands in latency histograms only; the shard Result is untouched
              std::chrono::steady_clock::now() - t0)
              .count();
      latency.observe(wall_ms);
      obs::PhaseProfiler::global().attempt_done(
          phase_, i, wall_ms, attempt == 0 ? queue_wait_ms : 0.0);
      shards_run.add(1);
      return r;
    };

    // One shard, all attempts. Errors are captured, never thrown across
    // the worker boundary, so every shard runs to a verdict regardless
    // of what other shards did — the inline and pooled paths share
    // exactly this code and therefore exactly these semantics.
    const auto guarded_shard = [&](std::size_t i, double queue_wait_ms) {
      for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          retries_total.add(1);
          run_retries.fetch_add(1, std::memory_order_relaxed);
          if (policy.backoff_base_ms > 0) {
            const double ms =
                policy.backoff_base_ms * static_cast<double>(1ull << (attempt - 1));
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
          }
        }
        try {
          slots[i].emplace(timed_attempt(i, attempt, queue_wait_ms));
          errors[i] = nullptr;
          return;
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };

    if (n_threads <= 1 || n_shards_ <= 1) {
      for (std::size_t i = 0; i < n_shards_; ++i) guarded_shard(i, 0.0);
    } else {
      ThreadPool pool(n_threads);
      for (std::size_t i = 0; i < n_shards_; ++i) {
        // satlint:allow(nondet-source): queue-wait telemetry for the profiler; shard results never read the clock
        // satlint:allow(nondet-taint): submit_t feeds only the profiler's wait_ms; guarded_shard ignores it for results
        const auto submit_t = std::chrono::steady_clock::now();
        pool.submit([i, submit_t, &guarded_shard] {
          const double wait_ms =
              std::chrono::duration<double, std::milli>(
                  // satlint:allow(nondet-source): queue-wait telemetry for the profiler; shard results never read the clock
                  // satlint:allow(nondet-taint): wait_ms is profiler telemetry; shard results are computed from (i, seed) alone
                  std::chrono::steady_clock::now() - submit_t)
                  .count();
          guarded_shard(i, wait_ms);
        });
      }
      pool.wait_idle();
    }
    // Close out the phase: the watchdog's passive half computes the
    // median shard wall time and flags stragglers (telemetry-only).
    obs::PhaseProfiler::global().phase_done(phase_);

    if (report) {
      report->phase = phase_;
      report->shards = n_shards_;
      report->retries = run_retries.load(std::memory_order_relaxed);
      report->degraded = 0;
      report->degraded_shards.clear();
      report->degraded_errors.clear();
    }
    return collect(std::move(slots), errors, policy, report, merge_us, phase_,
                   max_attempts);
  }

  std::size_t shards() const { return n_shards_; }
  const std::string& phase() const { return phase_; }

 private:
  static std::vector<Result> collect(std::vector<std::optional<Result>> slots,
                                     const std::vector<std::exception_ptr>& errors,
                                     const RetryPolicy& policy, CampaignReport* report,
                                     obs::Counter& merge_us, const std::string& phase,
                                     std::size_t max_attempts) {
    if (!policy.degrade) {
      for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i]) continue;
        // Abort-mode failure: the run is about to unwind, so dump the
        // flight-recorder snapshot first — this is the black box the
        // postmortem exists for. (No-op when the recorder is off.)
        std::string reason = "abort-mode failure in phase " + phase +
                             ": shard " + std::to_string(i) + " failed after " +
                             std::to_string(max_attempts) + " attempt(s)";
        try {
          std::rethrow_exception(errors[i]);
        } catch (const std::exception& e) {
          reason += ": ";
          reason += e.what();
        } catch (...) {
        }
        obs::FlightRecorder::global().dump_postmortem(reason);
        std::rethrow_exception(errors[i]);
      }
    }
    obs::Counter& degraded_total = obs::MetricsRegistry::global().counter(
        "runtime.shard.degraded", "shards quarantined with default results");
    // satlint:allow(nondet-source): fan-in timing telemetry; merged values never read the clock
    // satlint:allow(nondet-taint): t0 feeds only collect-latency telemetry; the merged vector is a pure function of shard results
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Result> out;
    out.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (errors[i]) {
        // Quarantined: a default slot keeps the merge shard-count stable
        // and the accounting explicit.
        out.emplace_back();
        degraded_total.add(1);
        // The quarantine verdict is deterministic (same shard fails at
        // any thread count), so the degrade event is a det record; it
        // lands after the shard's scoped stream in the sort order.
        obs::FlightRecorder::global().record_for_shard(
            phase, i, max_attempts - 1, obs::EventKind::degrade, max_attempts);
        if (report) {
          ++report->degraded;
          report->degraded_shards.push_back(i);
          try {
            std::rethrow_exception(errors[i]);
          } catch (const std::exception& e) {
            report->degraded_errors.emplace_back(e.what());
          } catch (...) {
            report->degraded_errors.emplace_back("unknown error");
          }
        }
      } else {
        out.push_back(std::move(*slots[i]));
      }
    }
    merge_us.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            // satlint:allow(nondet-source): fan-in timing telemetry; merged values never read the clock
            // satlint:allow(nondet-taint): merge_us is a counter read by dashboards, never by the merged results
            std::chrono::steady_clock::now() - t0)
            .count()));
    return out;
  }

  std::size_t n_shards_;
  ShardFn fn_;
  std::string phase_;
};

}  // namespace satnet::runtime
