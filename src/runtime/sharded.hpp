// ShardedCampaign: deterministic fan-out/fan-in for campaign and analysis
// layers.
//
// A campaign is split into independent shards; each shard derives all of
// its randomness from a stable key (never from "how many shards ran
// before me"), runs to completion on a worker, and produces a value. The
// values are merged in shard-index order, so the overall result is a pure
// function of (seed, config) — bit-identical for any thread count,
// including 1 (which runs inline, with no threads spawned).
//
// Discipline for shard authors:
//   * derive the shard's Rng with Rng::fork_stable(shard key), keyed by
//     stable identity (operator name, probe id, chunk index) — never by
//     loop position;
//   * share only immutable inputs across shards (the World, datasets,
//     configs);
//   * accumulate into shard-local state, returned as the shard value.
//
// Observability: every run records each shard's wall-clock into the
// runtime.shard.latency_ms histogram, the fan-in (slot collection) into
// runtime.shard.merge_us, and — when tracing is enabled — one span per
// shard under the campaign's phase name. All of it is wall-clock-only
// telemetry; shard results never depend on it.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace satnet::runtime {

/// Splits `n_items` into contiguous [begin, end) ranges of at most
/// `max_chunk` items. Used to shard one big operator into several shards.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t n_items, std::size_t max_chunk);

template <typename Result>
class ShardedCampaign {
 public:
  using ShardFn = std::function<Result(std::size_t shard)>;

  /// `phase` labels this campaign's spans and groups them in trace
  /// exports ("mlab.campaign", "ripe.atlas", ...).
  ShardedCampaign(std::size_t n_shards, ShardFn fn, std::string phase = "campaign")
      : n_shards_(n_shards), fn_(std::move(fn)), phase_(std::move(phase)) {}

  /// Runs every shard and returns the results in shard-index order.
  /// `threads` resolves via resolve_threads; 1 runs inline. If shards
  /// throw, the exception of the lowest-indexed failing shard is
  /// rethrown (deterministic, independent of scheduling).
  std::vector<Result> run(unsigned threads = 0) const {
    const unsigned n_threads = resolve_threads(threads);
    std::vector<std::optional<Result>> slots(n_shards_);

    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::Counter& shards_run =
        reg.counter("runtime.shard.count", "campaign shards executed");
    obs::Counter& merge_us =
        reg.counter("runtime.shard.merge_us", "fan-in time collecting shard slots");
    obs::Histogram& latency = reg.histogram(
        "runtime.shard.latency_ms", obs::latency_buckets_ms(),
        "per-shard wall-clock");

    const auto timed_shard = [&](std::size_t i) {
      obs::ScopedSpan span(phase_, "shard", static_cast<std::uint64_t>(i));
      // satlint:allow(nondet-source): shard latency telemetry; shard results never read the clock
      const auto t0 = std::chrono::steady_clock::now();
      Result r = fn_(i);
      latency.observe(std::chrono::duration<double, std::milli>(
                          // satlint:allow(nondet-source): shard latency telemetry; shard results never read the clock
                          std::chrono::steady_clock::now() - t0)
                          .count());
      shards_run.add(1);
      return r;
    };

    if (n_threads <= 1 || n_shards_ <= 1) {
      for (std::size_t i = 0; i < n_shards_; ++i) slots[i].emplace(timed_shard(i));
      return collect(std::move(slots), {}, merge_us);
    }

    std::vector<std::exception_ptr> errors(n_shards_);
    {
      ThreadPool pool(n_threads);
      for (std::size_t i = 0; i < n_shards_; ++i) {
        pool.submit([i, &slots, &errors, &timed_shard] {
          try {
            slots[i].emplace(timed_shard(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    return collect(std::move(slots), errors, merge_us);
  }

  std::size_t shards() const { return n_shards_; }
  const std::string& phase() const { return phase_; }

 private:
  static std::vector<Result> collect(std::vector<std::optional<Result>> slots,
                                     const std::vector<std::exception_ptr>& errors,
                                     obs::Counter& merge_us) {
    for (const auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
    // satlint:allow(nondet-source): fan-in timing telemetry; merged values never read the clock
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Result> out;
    out.reserve(slots.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    merge_us.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            // satlint:allow(nondet-source): fan-in timing telemetry; merged values never read the clock
            std::chrono::steady_clock::now() - t0)
            .count()));
    return out;
  }

  std::size_t n_shards_;
  ShardFn fn_;
  std::string phase_;
};

}  // namespace satnet::runtime
