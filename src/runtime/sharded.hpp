// ShardedCampaign: deterministic fan-out/fan-in for campaign and analysis
// layers.
//
// A campaign is split into independent shards; each shard derives all of
// its randomness from a stable key (never from "how many shards ran
// before me"), runs to completion on a worker, and produces a value. The
// values are merged in shard-index order, so the overall result is a pure
// function of (seed, config) — bit-identical for any thread count,
// including 1 (which runs inline, with no threads spawned).
//
// Discipline for shard authors:
//   * derive the shard's Rng with Rng::fork_stable(shard key), keyed by
//     stable identity (operator name, probe id, chunk index) — never by
//     loop position;
//   * share only immutable inputs across shards (the World, datasets,
//     configs);
//   * accumulate into shard-local state, returned as the shard value.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace satnet::runtime {

/// Splits `n_items` into contiguous [begin, end) ranges of at most
/// `max_chunk` items. Used to shard one big operator into several shards.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t n_items, std::size_t max_chunk);

template <typename Result>
class ShardedCampaign {
 public:
  using ShardFn = std::function<Result(std::size_t shard)>;

  ShardedCampaign(std::size_t n_shards, ShardFn fn)
      : n_shards_(n_shards), fn_(std::move(fn)) {}

  /// Runs every shard and returns the results in shard-index order.
  /// `threads` resolves via resolve_threads; 1 runs inline. If shards
  /// throw, the exception of the lowest-indexed failing shard is
  /// rethrown (deterministic, independent of scheduling).
  std::vector<Result> run(unsigned threads = 0) const {
    const unsigned n_threads = resolve_threads(threads);
    std::vector<std::optional<Result>> slots(n_shards_);

    if (n_threads <= 1 || n_shards_ <= 1) {
      for (std::size_t i = 0; i < n_shards_; ++i) slots[i].emplace(fn_(i));
      return collect(std::move(slots), {});
    }

    std::vector<std::exception_ptr> errors(n_shards_);
    {
      ThreadPool pool(n_threads);
      for (std::size_t i = 0; i < n_shards_; ++i) {
        pool.submit([this, i, &slots, &errors] {
          try {
            slots[i].emplace(fn_(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    return collect(std::move(slots), errors);
  }

  std::size_t shards() const { return n_shards_; }

 private:
  static std::vector<Result> collect(std::vector<std::optional<Result>> slots,
                                     const std::vector<std::exception_ptr>& errors) {
    for (const auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
    std::vector<Result> out;
    out.reserve(slots.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  std::size_t n_shards_;
  ShardFn fn_;
};

}  // namespace satnet::runtime
