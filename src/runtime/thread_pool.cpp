#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace satnet::runtime {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // satlint:allow(nondet-source): pool idle/busy telemetry; task results never read the clock
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : tasks_executed_(obs::MetricsRegistry::global().counter(
          "runtime.pool.tasks_executed", "tasks run to completion")),
      busy_us_(obs::MetricsRegistry::global().counter(
          "runtime.pool.busy_us", "worker time spent inside tasks")),
      idle_us_(obs::MetricsRegistry::global().counter(
          "runtime.pool.idle_us", "worker time spent waiting for work")),
      queue_depth_(obs::MetricsRegistry::global().gauge(
          "runtime.pool.queue_depth", "tasks waiting in the FIFO queue")),
      workers_gauge_(obs::MetricsRegistry::global().gauge(
          "runtime.pool.workers", "worker threads alive")) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  workers_gauge_.add(static_cast<std::int64_t>(n));
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (joined_) return;
    joined_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  workers_gauge_.add(-static_cast<std::int64_t>(workers_.size()));
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::logic_error(
          "ThreadPool::submit called after shutdown began; the task would "
          "never run");
    }
    tasks_.push_back(std::move(task));
    queue_depth_.set(static_cast<std::int64_t>(tasks_.size()));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // satlint:allow(nondet-source): pool idle/busy telemetry; task results never read the clock
      const auto wait_start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      idle_us_.add(elapsed_us(wait_start));
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      queue_depth_.set(static_cast<std::int64_t>(tasks_.size()));
      ++active_;
    }
    // satlint:allow(nondet-source): pool idle/busy telemetry; task results never read the clock
    const auto run_start = std::chrono::steady_clock::now();
    task();
    busy_us_.add(elapsed_us(run_start));
    tasks_executed_.add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace satnet::runtime
