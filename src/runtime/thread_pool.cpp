#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "obs/recorder.hpp"

namespace satnet::runtime {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // satlint:allow(nondet-source): pool idle/busy telemetry; task results never read the clock
          std::chrono::steady_clock::now() - since)
          .count());
}

// Watchdog knobs, read at pool construction. Atomics (not a config
// struct) so tests and tools can flip them without synchronizing with
// pool lifetimes.
std::atomic<unsigned> g_watchdog_poll_ms{0};
std::atomic<double> g_watchdog_threshold_ms{1000.0};

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

void set_pool_watchdog(unsigned poll_ms, double threshold_ms) {
  g_watchdog_poll_ms.store(poll_ms, std::memory_order_relaxed);
  if (threshold_ms > 0) {
    g_watchdog_threshold_ms.store(threshold_ms, std::memory_order_relaxed);
  }
}

unsigned pool_watchdog_poll_ms() {
  return g_watchdog_poll_ms.load(std::memory_order_relaxed);
}

double pool_watchdog_threshold_ms() {
  return g_watchdog_threshold_ms.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned threads)
    : tasks_executed_(obs::MetricsRegistry::global().counter(
          "runtime.pool.tasks_executed", "tasks run to completion")),
      busy_us_(obs::MetricsRegistry::global().counter(
          "runtime.pool.busy_us", "worker time spent inside tasks")),
      idle_us_(obs::MetricsRegistry::global().counter(
          "runtime.pool.idle_us", "worker time spent waiting for work")),
      queue_depth_(obs::MetricsRegistry::global().gauge(
          "runtime.pool.queue_depth", "tasks waiting in the FIFO queue")),
      workers_gauge_(obs::MetricsRegistry::global().gauge(
          "runtime.pool.workers", "worker threads alive")) {
  const unsigned n = resolve_threads(threads);
  // satlint:allow(nondet-source): pool epoch anchors watchdog telemetry only; task results never read the clock
  epoch_ = std::chrono::steady_clock::now();
  inflight_start_us_ = std::vector<std::atomic<std::uint64_t>>(n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  workers_gauge_.add(static_cast<std::int64_t>(n));
  const unsigned poll_ms = pool_watchdog_poll_ms();
  if (poll_ms > 0) {
    const double threshold_ms = pool_watchdog_threshold_ms();
    watchdog_ = std::thread(
        [this, poll_ms, threshold_ms] { watchdog_loop(poll_ms, threshold_ms); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (joined_) return;
    joined_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  workers_gauge_.add(-static_cast<std::int64_t>(workers_.size()));
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      watch_stop_ = true;
    }
    watch_cv_.notify_all();
    watchdog_.join();
  }
}

std::uint64_t ThreadPool::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // satlint:allow(nondet-source): watchdog stall telemetry; task results never read the clock
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ThreadPool::watchdog_loop(unsigned poll_ms, double threshold_ms) {
  std::vector<std::uint64_t> flagged(inflight_start_us_.size(), 0);
  std::unique_lock<std::mutex> lock(watch_mu_);
  for (;;) {
    watch_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                       [this] { return watch_stop_; });
    if (watch_stop_) return;
    const std::uint64_t now = now_us();
    for (std::size_t w = 0; w < inflight_start_us_.size(); ++w) {
      const std::uint64_t start =
          inflight_start_us_[w].load(std::memory_order_relaxed);
      // 0 = idle; re-flagging the same task (same start stamp) is noise.
      if (start == 0 || start == flagged[w]) continue;
      const double running_ms = static_cast<double>(now - (start - 1)) / 1000.0;
      if (running_ms < threshold_ms) continue;
      flagged[w] = start;
      obs::MetricsRegistry::global()
          .counter("runtime.pool.stall",
                   "tasks flagged by the watchdog as running past the "
                   "stall threshold")
          .add(1);
      obs::FlightRecorder::global().record(
          obs::EventKind::stall_flag, static_cast<std::uint64_t>(running_ms),
          static_cast<std::uint64_t>(threshold_ms), /*det=*/false);
      std::fprintf(stderr,
                   "runtime: watchdog: worker %zu task running %.0f ms "
                   "(threshold %.0f ms)\n",
                   w, running_ms, threshold_ms);
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::logic_error(
          "ThreadPool::submit called after shutdown began; the task would "
          "never run");
    }
    tasks_.push_back(std::move(task));
    depth = tasks_.size();
    queue_depth_.set(static_cast<std::int64_t>(depth));
  }
  // Telemetry-only sample: queue depth at submit time depends on
  // scheduling, so the record carries det=0 (and is free when the
  // recorder is off).
  obs::FlightRecorder::global().record(obs::EventKind::queue_depth,
                                       static_cast<std::uint64_t>(depth), 0,
                                       /*det=*/false);
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker) {
  for (;;) {
    std::function<void()> task;
    {
      // satlint:allow(nondet-source): pool idle/busy telemetry; task results never read the clock
      const auto wait_start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      idle_us_.add(elapsed_us(wait_start));
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      queue_depth_.set(static_cast<std::int64_t>(tasks_.size()));
      ++active_;
    }
    // satlint:allow(nondet-source): pool idle/busy telemetry; task results never read the clock
    const auto run_start = std::chrono::steady_clock::now();
    inflight_start_us_[worker].store(now_us() + 1, std::memory_order_relaxed);
    try {
      task();
    } catch (...) {
      // Tasks must not throw (ShardedCampaign wraps shard bodies); one
      // escaping anyway is a bug that is about to terminate the
      // process, so dump the flight-recorder black box first.
      obs::FlightRecorder::global().dump_postmortem(
          "uncaught worker exception escaped a ThreadPool task");
      inflight_start_us_[worker].store(0, std::memory_order_relaxed);
      throw;
    }
    inflight_start_us_[worker].store(0, std::memory_order_relaxed);
    busy_us_.add(elapsed_us(run_start));
    tasks_executed_.add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace satnet::runtime
