#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace satnet::runtime {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace satnet::runtime
