#include "dns/resolver.hpp"

namespace satnet::dns {

Resolver::LookupResult Resolver::lookup(const std::string& domain, double t_sec,
                                        double access_rtt_ms) {
  const auto it = cache_expiry_.find(domain);
  if (it != cache_expiry_.end() && it->second > t_sec) {
    // Served from the local stub cache: sub-millisecond.
    return {rng_.uniform(0.1, 1.0), true};
  }
  cache_expiry_[domain] = t_sec + config_.ttl_sec;
  const double recursion =
      rng_.lognormal_median(config_.recursion_median_ms, config_.recursion_sigma);
  return {access_rtt_ms + recursion, false};
}

}  // namespace satnet::dns
