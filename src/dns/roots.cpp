#include "dns/roots.hpp"

#include <array>
#include <limits>

#include "geo/places.hpp"

namespace satnet::dns {

namespace {

// Curated placement. Invariants relied on by the paper's analyses:
//  * every root has US and (almost always) European instances;
//  * Santiago hosts exactly 7 roots (B C E F I J L);
//  * Auckland hosts only F; Sydney hosts F I L;
//  * Tokyo hosts F I J M; the M root has no South American instance.
const std::vector<RootServer>& table() {
  static const std::vector<RootServer> kRoots = {
      {'A', "Verisign", {"ashburn", "los angeles", "frankfurt", "london"}},
      {'B', "USC-ISI", {"los angeles", "miami", "santiago"}},
      {'C', "Cogent", {"ashburn", "chicago", "frankfurt", "paris", "santiago"}},
      {'D', "UMD", {"ashburn", "london", "amsterdam"}},
      {'E', "NASA", {"san francisco", "santiago", "frankfurt"}},
      {'F', "ISC",
       {"san francisco", "auckland", "sydney", "santiago", "tokyo", "london",
        "warsaw"}},
      {'G', "US DoD", {"ashburn", "chicago"}},
      {'H', "US Army", {"ashburn"}},
      {'I', "Netnod", {"stockholm", "london", "sydney", "santiago", "tokyo", "chicago"}},
      {'J', "Verisign", {"ashburn", "new york", "london", "tokyo", "santiago", "frankfurt"}},
      {'K', "RIPE NCC", {"amsterdam", "london", "frankfurt", "milan", "miami"}},
      {'L', "ICANN", {"los angeles", "santiago", "sydney", "london", "frankfurt"}},
      {'M', "WIDE", {"tokyo", "paris", "san francisco"}},
  };
  return kRoots;
}

}  // namespace

std::span<const RootServer> root_servers() { return table(); }

InstanceChoice nearest_instance(const RootServer& root, const geo::GeoPoint& from) {
  InstanceChoice best;
  best.surface_km = std::numeric_limits<double>::max();
  for (const auto city : root.instance_cities) {
    const geo::GeoPoint p = geo::city_point(city);
    const double km = geo::surface_distance_km(from, p);
    if (km < best.surface_km) best = {city, p, km};
  }
  return best;
}

std::size_t roots_present_in(std::string_view city) {
  std::size_t n = 0;
  for (const auto& r : table()) {
    for (const auto c : r.instance_cities) {
      if (c == city) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace satnet::dns
