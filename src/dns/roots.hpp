// The 13 DNS root services and their anycast instance placement.
//
// RIPE Atlas built-in traceroutes target the root servers; the paper's
// Figure 6b/6c shows how a probe's RTT and hop count to the roots depend
// on which roots have instances reachable near the probe's Starlink PoP
// (e.g. only 7 of 13 roots are present in Chile, and the M root has no
// South American instance). Placement below is a curated approximation
// with exactly those properties.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geodesy.hpp"

namespace satnet::dns {

/// One root service (letter A..M).
struct RootServer {
  char letter = 'A';
  std::string_view operator_name;
  std::vector<std::string_view> instance_cities;  ///< gazetteer city keys
};

/// All 13 roots with their instance cities.
std::span<const RootServer> root_servers();

/// The instance of `root` nearest to `from` (anycast catchment
/// approximated by geographic distance), with its location.
struct InstanceChoice {
  std::string_view city;
  geo::GeoPoint location;
  double surface_km = 0;
};
InstanceChoice nearest_instance(const RootServer& root, const geo::GeoPoint& from);

/// Number of distinct roots with an instance in the given city.
std::size_t roots_present_in(std::string_view city);

}  // namespace satnet::dns
