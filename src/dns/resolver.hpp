// DNS lookup-time model (paper Figure 10c).
//
// What dominates a satellite subscriber's lookup time is *where the
// recursive resolver sits*: Starlink hands customers Cloudflare colocated
// at the PoP (lookup ≈ one access RTT + recursion), while HughesNet and
// Viasat run their own resolvers beyond the satellite hop (lookup ≈ one
// full satellite RTT + their recursion time). Caching is modelled so the
// pipeline can filter cached lookups the way the paper filters lookups
// faster than the minimum RTT.
#pragma once

#include <string>
#include <unordered_map>

#include "stats/rng.hpp"

namespace satnet::dns {

/// Operator resolver deployment.
struct ResolverConfig {
  /// True when the resolver is on the Internet side of the access link
  /// (Starlink/Cloudflare); false when operator-hosted beyond it.
  bool at_pop = true;
  /// Recursion time to authoritative servers: lognormal median/sigma, ms.
  double recursion_median_ms = 60.0;
  double recursion_sigma = 0.35;
  /// Cache TTL applied to repeated lookups, seconds.
  double ttl_sec = 300.0;
};

/// A caching stub resolver + upstream recursive pair for one subscriber.
class Resolver {
 public:
  Resolver(ResolverConfig config, stats::Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  struct LookupResult {
    double time_ms = 0;
    bool cache_hit = false;
  };

  /// Resolves `domain` at simulation time `t_sec`. `access_rtt_ms` is the
  /// round trip between the subscriber and the resolver (one access RTT
  /// for at_pop resolvers, the full satellite RTT for operator-hosted).
  LookupResult lookup(const std::string& domain, double t_sec, double access_rtt_ms);

  const ResolverConfig& config() const { return config_; }

 private:
  ResolverConfig config_;
  stats::Rng rng_;
  std::unordered_map<std::string, double> cache_expiry_;
};

}  // namespace satnet::dns
