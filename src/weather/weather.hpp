// Weather field and rain-fade link impairment.
//
// Prior satellite measurement work (Kassem et al., Ma et al. — the
// paper's §2) found satellite access performance strongly
// weather-dependent: Ku/Ka-band links lose capacity and take losses under
// rain. This module provides a deterministic synthetic weather field
// (regional rain cells evolving over time) plus the per-orbit link
// impairment model, as an opt-in overlay on the world's path sampling.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/shell.hpp"

namespace satnet::weather {

enum class Condition { clear, cloudy, rain, heavy_rain };

std::string_view to_string(Condition c);

/// Transport-visible impairment of one access link under a condition.
struct LinkImpact {
  double capacity_factor = 1.0;  ///< multiplies the subscriber capacity
  double extra_sat_loss = 0.0;   ///< added post-FEC loss on the space segment
  double extra_jitter_ms = 0.0;  ///< added per-round latency noise
  bool outage = false;           ///< heavy rain can take Ka links down
};

/// A storm system translating across the map: a circular region whose
/// condition floor applies while the front is active and overhead. The
/// center moves linearly from `start` at `velocity_east/north_kmh` —
/// deterministic, so the field stays a pure function of (config, t).
struct MovingFront {
  geo::GeoPoint start;           ///< center at t_start_sec
  double velocity_east_kmh = 0;  ///< eastward drift (negative = west)
  double velocity_north_kmh = 0;
  double radius_km = 500.0;
  /// Severity floor inside the front: 1 cloudy, 2 rain, 3 heavy rain.
  int severity = 2;
  double t_start_sec = 0;
  double t_end_sec = 0;

  /// Center at time t (clamped into the active window).
  geo::GeoPoint center_at(double t_sec) const;
};

struct WeatherConfig {
  /// Size of one weather cell, degrees of latitude/longitude.
  double cell_deg = 3.0;
  /// How long one cell's condition persists, hours.
  double cell_duration_hours = 6.0;
  /// Baseline probabilities (mid-latitude): rain and heavy-rain shares.
  double rain_prob = 0.12;
  double heavy_rain_prob = 0.03;
  double cloudy_prob = 0.25;
  /// Probability a heavy-rain cell outright drops a GEO Ka link.
  double geo_outage_prob = 0.25;
  std::uint64_t seed = 0x5eed;
  /// Scheduled storm systems layered over the cell process (scenario
  /// generator worlds). Empty — the default — leaves the field exactly
  /// as before, so existing goldens are untouched.
  std::vector<MovingFront> fronts;
};

/// A deterministic global weather process: the condition at any location
/// and time is a pure function of (cell, epoch, seed), so campaigns
/// remain reproducible.
class WeatherField {
 public:
  explicit WeatherField(WeatherConfig config = WeatherConfig{}) : config_(config) {}

  Condition at(const geo::GeoPoint& location, double t_sec) const;

  /// Link impairment for a given condition and orbit class. GEO links
  /// (Ka-band, fixed dish, long slant path) are hit hardest; LEO
  /// terminals re-steer and ride through all but heavy rain.
  LinkImpact impact(Condition condition, orbit::OrbitClass orbit, double t_sec,
                    const geo::GeoPoint& location) const;

  /// Convenience: impact at a location/time.
  LinkImpact impact_at(const geo::GeoPoint& location, double t_sec,
                       orbit::OrbitClass orbit) const {
    return impact(at(location, t_sec), orbit, t_sec, location);
  }

  const WeatherConfig& config() const { return config_; }

 private:
  /// Climate weighting: tropics are wetter than mid-latitudes.
  double wetness(const geo::GeoPoint& location) const;
  std::uint64_t cell_hash(const geo::GeoPoint& location, double t_sec) const;

  WeatherConfig config_;
};

}  // namespace satnet::weather
