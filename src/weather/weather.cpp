#include "weather/weather.hpp"

#include <algorithm>
#include <cmath>

#include "fault/hook.hpp"

namespace satnet::weather {

std::string_view to_string(Condition c) {
  switch (c) {
    case Condition::clear: return "clear";
    case Condition::cloudy: return "cloudy";
    case Condition::rain: return "rain";
    case Condition::heavy_rain: return "heavy rain";
  }
  return "?";
}

geo::GeoPoint MovingFront::center_at(double t_sec) const {
  const double t = std::clamp(t_sec, t_start_sec, t_end_sec);
  const double hours = (t - t_start_sec) / 3600.0;
  const double north_km = velocity_north_kmh * hours;
  const double east_km = velocity_east_kmh * hours;
  // km -> degrees on the sphere; the east conversion shrinks with
  // latitude (clamped away from the poles to keep it finite).
  constexpr double kKmPerDegree = 111.32;
  const double lat = start.lat_deg + north_km / kKmPerDegree;
  const double cos_lat =
      std::max(0.1, std::cos(geo::deg_to_rad(std::clamp(lat, -85.0, 85.0))));
  double lon = start.lon_deg + east_km / (kKmPerDegree * cos_lat);
  while (lon > 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  return {std::clamp(lat, -90.0, 90.0), lon, 0.0};
}

double WeatherField::wetness(const geo::GeoPoint& location) const {
  // Simple climate proxy: precipitation probability peaks in the tropics
  // and decays toward the poles.
  const double lat = std::abs(location.lat_deg);
  if (lat < 20.0) return 1.8;
  if (lat < 35.0) return 1.2;
  if (lat < 55.0) return 1.0;
  return 0.7;
}

std::uint64_t WeatherField::cell_hash(const geo::GeoPoint& location, double t_sec) const {
  const auto lat_cell = static_cast<std::int64_t>(
      std::floor((location.lat_deg + 90.0) / config_.cell_deg));
  const auto lon_cell = static_cast<std::int64_t>(
      std::floor((location.lon_deg + 180.0) / config_.cell_deg));
  const auto epoch = static_cast<std::int64_t>(
      std::floor(t_sec / (config_.cell_duration_hours * 3600.0)));
  std::uint64_t x = config_.seed;
  for (const std::int64_t v : {lat_cell, lon_cell, epoch}) {
    x ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 29;
  }
  return x;
}

Condition WeatherField::at(const geo::GeoPoint& location, double t_sec) const {
  const double u =
      static_cast<double>(cell_hash(location, t_sec) % 1000003ull) / 1000003.0;
  const double w = wetness(location);
  const double heavy = config_.heavy_rain_prob * w;
  const double rain = config_.rain_prob * w;
  const double cloudy = config_.cloudy_prob;
  Condition c = Condition::clear;
  if (u < heavy) {
    c = Condition::heavy_rain;
  } else if (u < heavy + rain) {
    c = Condition::rain;
  } else if (u < heavy + rain + cloudy) {
    c = Condition::cloudy;
  }
  // Scheduled storm fronts floor the condition while they are overhead,
  // same semantics as a fault escalation: worse than the cell process,
  // never better.
  for (const MovingFront& front : config_.fronts) {
    if (t_sec < front.t_start_sec || t_sec >= front.t_end_sec) continue;
    if (geo::surface_distance_km(front.center_at(t_sec), location) > front.radius_km) {
      continue;
    }
    c = std::max(c, static_cast<Condition>(std::clamp(front.severity, 0, 3)));
  }
  // A fault-plan weather escalation floors the condition in its region:
  // the sky can be worse than scheduled, never better.
  if (const fault::Hook* hook = fault::Hook::active()) {
    const int floor = hook->weather_severity_floor(location, t_sec);
    c = std::max(c, static_cast<Condition>(std::min(floor, 3)));
  }
  return c;
}

LinkImpact WeatherField::impact(Condition condition, orbit::OrbitClass orbit,
                                double t_sec, const geo::GeoPoint& location) const {
  LinkImpact out;
  const bool geo_link = orbit == orbit::OrbitClass::geo;
  switch (condition) {
    case Condition::clear:
      return out;
    case Condition::cloudy:
      out.capacity_factor = geo_link ? 0.92 : 0.97;
      return out;
    case Condition::rain:
      out.capacity_factor = geo_link ? 0.55 : 0.80;
      out.extra_sat_loss = geo_link ? 0.004 : 0.0005;
      out.extra_jitter_ms = geo_link ? 15.0 : 4.0;
      return out;
    case Condition::heavy_rain:
      out.capacity_factor = geo_link ? 0.22 : 0.55;
      out.extra_sat_loss = geo_link ? 0.02 : 0.003;
      out.extra_jitter_ms = geo_link ? 40.0 : 10.0;
      if (geo_link) {
        // Deterministic sub-cell draw: some heavy cells black the link out.
        const std::uint64_t h = cell_hash(location, t_sec) ^ 0xabcdefull;
        out.outage = static_cast<double>(h % 997ull) / 997.0 < config_.geo_outage_prob;
        // An outage means zero deliverable capacity — not 22% of it.
        // transport::apply_impairment relies on this to kill the link
        // exactly instead of applying its capacity floor.
        if (out.outage) out.capacity_factor = 0.0;
      }
      return out;
  }
  return out;
}

}  // namespace satnet::weather
