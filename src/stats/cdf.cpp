#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "stats/summary.hpp"

namespace satnet::stats {

Cdf::Cdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  // Delegates to percentile_sorted so the whole stats layer shares one
  // quantile convention: quantile(0.05) == percentile(sample, 5). The
  // previous ceil-index rule disagreed with it on every non-grid q.
  return percentile_sorted(sorted_, std::clamp(q, 0.0, 1.0) * 100.0);
}

std::vector<Cdf::Point> Cdf::grid(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.push_back({quantile(q), q});
  }
  return out;
}

std::string describe_cdf(const Cdf& cdf) {
  if (cdf.empty()) return "(empty)";
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "p10=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f (n=%zu)",
                cdf.quantile(0.10), cdf.quantile(0.25), cdf.quantile(0.50),
                cdf.quantile(0.75), cdf.quantile(0.90), cdf.size());
  return buf;
}

}  // namespace satnet::stats
