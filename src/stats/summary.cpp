#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace satnet::stats {

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double mean(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p5 = percentile_sorted(sorted, 5);
  s.p25 = percentile_sorted(sorted, 25);
  s.p50 = percentile_sorted(sorted, 50);
  s.p75 = percentile_sorted(sorted, 75);
  s.p95 = percentile_sorted(sorted, 95);
  s.mean = mean(values);
  s.stddev = stddev(values);
  return s;
}

Boxplot boxplot(std::span<const double> values) {
  Boxplot b;
  if (values.empty()) return b;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  b.count = sorted.size();
  b.q1 = percentile_sorted(sorted, 25);
  b.median = percentile_sorted(sorted, 50);
  b.q3 = percentile_sorted(sorted, 75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_low = sorted.back();
  b.whisker_high = sorted.front();
  for (const double v : sorted) {
    if (v >= lo_fence) {
      b.whisker_low = v;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_high = *it;
      break;
    }
  }
  for (const double v : sorted) {
    if (v < lo_fence || v > hi_fence) ++b.n_outliers;
  }
  return b;
}

std::string to_string(const Boxplot& b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "med=%.1f [q1=%.1f q3=%.1f] whisk=[%.1f,%.1f] n=%zu out=%zu",
                b.median, b.q1, b.q3, b.whisker_low, b.whisker_high, b.count,
                b.n_outliers);
  return buf;
}

}  // namespace satnet::stats
