// Time-bucketed aggregation and mean-shift detection.
//
// Figure 4a (daily median latency per SNO over a year) needs bucketed
// medians; Figure 8b (PoP reassignments visible as latency steps) needs a
// change-point detector — the identification pipeline uses the same
// detector to flag PoP migrations from RIPE-style RTT series.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace satnet::stats {

/// A single timestamped observation. Time is seconds since the campaign
/// epoch (simulation time), not wall-clock time.
struct Observation {
  double t_sec = 0;
  double value = 0;
};

/// One aggregated bucket.
struct Bucket {
  double t_start_sec = 0;
  std::size_t count = 0;
  double median = 0;
  double p5 = 0;
  double p95 = 0;
};

/// Groups observations into fixed-width buckets (e.g. 86400 s = daily) and
/// summarizes each non-empty bucket. Input need not be sorted.
std::vector<Bucket> bucketize(std::span<const Observation> obs, double width_sec);

/// Largest relative day-to-day variation of the bucket medians:
/// max |m[i] - m[i-1]| / m[i-1]. Matches the paper's "daily latency
/// variation (95th %ile)" comparisons. Returns 0 for < 2 buckets.
double daily_variation_p95(std::span<const Bucket> buckets);

/// A detected step in the series mean.
struct ChangePoint {
  double t_sec = 0;        ///< time of the first observation after the step
  double before_mean = 0;  ///< window mean before the step
  double after_mean = 0;   ///< window mean after the step
};

/// Sliding-window mean-shift detector. A change-point is reported when two
/// adjacent windows of `window` observations differ by more than
/// `threshold_frac` of the smaller mean (and by at least `min_abs`).
/// Observations must be sorted by time.
std::vector<ChangePoint> detect_mean_shifts(std::span<const Observation> obs,
                                            std::size_t window = 24,
                                            double threshold_frac = 0.25,
                                            double min_abs = 5.0);

}  // namespace satnet::stats
