#include "stats/rng.hpp"

#include <cmath>

namespace satnet::stats {

std::uint64_t Rng::splitmix(std::uint64_t x) {
  // SplitMix64: turns arbitrary (possibly low-entropy) seeds into
  // well-distributed engine seeds.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t salt) {
  const std::uint64_t base = engine_();
  Rng child(0);
  child.engine_.seed(splitmix(base ^ splitmix(salt)));
  return child;
}

Rng Rng::fork(std::string_view name) { return fork(hash_name(name)); }

Rng Rng::fork_stable(std::uint64_t salt) const {
  // Draw the base from a *copy* of the engine so the parent's state is
  // untouched: any set of salts forked from the same parent state yields
  // the same children in any order.
  std::mt19937_64 probe = engine_;
  const std::uint64_t base = probe();
  Rng child(0);
  child.engine_.seed(splitmix(base ^ splitmix(salt)));
  return child;
}

Rng Rng::fork_stable(std::string_view name) const {
  return fork_stable(hash_name(name));
}

std::uint64_t Rng::hash_name(std::string_view name) {
  // FNV-1a over the name gives a stable salt independent of call order.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  const double u = uniform(1e-12, 1.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

int Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  // Not std::poisson_distribution: libstdc++ initializes its parameters
  // with lgamma(), and glibc's lgamma writes the legacy `signgam` global
  // — a data race when campaign shards draw concurrently. Knuth's
  // product-of-uniforms sampler is exact and touches no shared state;
  // large means split recursively (Poisson(m) = Poisson(a) + Poisson(m-a)
  // for independent draws) to keep exp(-mean) away from underflow.
  if (mean > 12.0) {
    const double half = mean / 2.0;
    return poisson(half) + poisson(mean - half);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  for (double prod = uniform(); prod > limit; prod *= uniform()) ++k;
  return k;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  // An empty list or an all-zero total leaves discrete_distribution with
  // no valid probability mass (division by zero in normalization).
  double total = 0.0;
  for (const double w : weights) total += w;
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  }
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

}  // namespace satnet::stats
