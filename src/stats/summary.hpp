// Order statistics and distribution summaries used throughout the paper's
// analyses (5th/95th percentiles, medians, boxplots).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace satnet::stats {

/// Linear-interpolated percentile of an unsorted sample. `p` in [0, 100].
/// Returns NaN for an empty sample.
double percentile(std::span<const double> values, double p);

/// Percentile of an already-sorted (ascending) sample; avoids re-sorting
/// in hot loops.
double percentile_sorted(std::span<const double> sorted, double p);

double mean(std::span<const double> values);
double median(std::span<const double> values);
double stddev(std::span<const double> values);

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0, p5 = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0, max = 0;
  double mean = 0, stddev = 0;
};

Summary summarize(std::span<const double> values);

/// Boxplot geometry matching the paper's figures: quartile box, Tukey
/// 1.5*IQR whiskers clipped to data, and points beyond the whiskers.
struct Boxplot {
  double q1 = 0, median = 0, q3 = 0;
  double whisker_low = 0, whisker_high = 0;
  std::size_t n_outliers = 0;
  std::size_t count = 0;
};

Boxplot boxplot(std::span<const double> values);

/// Renders "med=56.0 [q1=..,q3=..] whisk=[..,..]" for table output.
std::string to_string(const Boxplot& b);

}  // namespace satnet::stats
