// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed) so that a whole campaign is a pure function of its master seed.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace satnet::stats {

/// Deterministic PRNG wrapper around std::mt19937_64 with the sampling
/// helpers used across the simulators. Cheap to copy; fork() derives
/// independent child streams so sibling components never share state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a7e11e7ull) : engine_(splitmix(seed)) {}

  /// Derives an independent child stream; `salt` decorrelates children
  /// forked from the same parent state. Advances the parent, so the
  /// child depends on how many draws/forks the parent made before.
  Rng fork(std::uint64_t salt);
  /// Derives a child stream keyed by a name (stable across runs).
  Rng fork(std::string_view name);

  /// Like fork(), but does NOT advance the parent: the child is a pure
  /// function of (parent state, salt), independent of how many other
  /// fork_stable calls the parent served and in what order. This is the
  /// forking discipline of the sharded campaign runtime — every shard
  /// keys its stream off a stable identity (operator name, probe id,
  /// chunk index), never off loop position.
  Rng fork_stable(std::uint64_t salt) const;
  Rng fork_stable(std::string_view name) const;

  /// FNV-1a hash of a name; the salt behind the string fork overloads.
  static std::uint64_t hash_name(std::string_view name);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal parameterized by the *median* and sigma of log-space.
  double lognormal_median(double median, double sigma);
  /// Exponential with the given mean.
  double exponential(double mean);
  /// Pareto (heavy tail) with scale x_m and shape alpha (> 0).
  double pareto(double x_m, double alpha);
  /// Bernoulli event with probability p.
  bool chance(double p);
  /// Poisson with the given mean.
  int poisson(double mean);
  /// Index in [0, weights.size()) with probability proportional to weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Uniformly chosen element of a non-empty container; throws
  /// std::out_of_range on an empty one (uniform_int(0, -1) is UB).
  template <typename Container>
  const typename Container::value_type& pick(const Container& c) {
    if (c.empty()) throw std::out_of_range("Rng::pick: empty container");
    return c[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(c.size()) - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t splitmix(std::uint64_t x);
  std::mt19937_64 engine_;
};

}  // namespace satnet::stats
