// Gaussian Kernel Density Estimation.
//
// The paper validates ASN-to-SNO mappings by inspecting the KDE of access
// latencies per ASN (its Figure 2): a LEO operator must show a low-latency
// unimodal curve, a GEO operator a ~600-700 ms curve, and hybrid operators
// a bimodal mixture. This module provides the estimator plus the peak /
// modality analysis the identification pipeline runs on the curves.
#pragma once

#include <span>
#include <vector>

namespace satnet::stats {

/// One local maximum of a density curve.
struct DensityPeak {
  double location = 0;  ///< x position of the peak
  double density = 0;   ///< estimated density at the peak
  double mass = 0;      ///< fraction of probability mass in the peak's basin
};

/// Gaussian KDE over a 1-D sample.
class Kde {
 public:
  /// Builds the estimator. `bandwidth <= 0` selects Silverman's
  /// rule-of-thumb bandwidth from the sample.
  explicit Kde(std::span<const double> sample, double bandwidth = 0.0);

  /// Density estimate at x.
  double density(double x) const;

  /// Evaluates the density on a uniform grid of `points` values spanning
  /// [min - 3h, max + 3h].
  struct Curve {
    std::vector<double> x;
    std::vector<double> y;
  };
  Curve curve(std::size_t points = 256) const;

  /// Local maxima of the gridded curve, tallest first. Peaks whose density
  /// is below `min_relative * max_density` are suppressed (noise).
  std::vector<DensityPeak> peaks(std::size_t points = 256,
                                 double min_relative = 0.05) const;

  double bandwidth() const { return bandwidth_; }
  std::size_t sample_size() const { return sample_.size(); }

 private:
  std::vector<double> sample_;
  double bandwidth_ = 1.0;
};

/// True when the KDE of `sample` has >= 2 peaks each holding at least
/// `min_mass` of probability mass — the pipeline's "mixed access" signal.
bool is_multimodal(std::span<const double> sample, double min_mass = 0.1);

}  // namespace satnet::stats
