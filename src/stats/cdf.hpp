// Empirical cumulative distribution functions.
//
// Several of the paper's figures (4b, 4c, 10c) are CDFs; benches print
// them as fixed quantile grids so the series can be compared run-to-run.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace satnet::stats {

/// Empirical CDF over a 1-D sample.
class Cdf {
 public:
  explicit Cdf(std::span<const double> sample);

  /// P(X <= x).
  double at(double x) const;
  /// Inverse CDF under the same linear-interpolation convention as
  /// percentile_sorted: quantile(q) == percentile(sample, 100 * q).
  /// q is clamped to [0, 1]; returns NaN for an empty sample.
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// (x, F(x)) pairs at `points` evenly spaced quantiles — a printable
  /// rendering of the curve.
  struct Point {
    double x = 0;
    double f = 0;
  };
  std::vector<Point> grid(std::size_t points = 20) const;

 private:
  std::vector<double> sorted_;
};

/// Formats a CDF as "p10=.. p25=.. p50=.. p75=.. p90=.." for bench output.
std::string describe_cdf(const Cdf& cdf);

}  // namespace satnet::stats
