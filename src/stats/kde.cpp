#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace satnet::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}

Kde::Kde(std::span<const double> sample, double bandwidth)
    : sample_(sample.begin(), sample.end()) {
  std::sort(sample_.begin(), sample_.end());
  if (bandwidth > 0.0) {
    bandwidth_ = bandwidth;
    return;
  }
  // Silverman's rule of thumb with the robust IQR-based spread estimate.
  const double n = static_cast<double>(std::max<std::size_t>(sample_.size(), 1));
  const double sd = stddev(sample_);
  const double iqr = percentile_sorted(sample_, 75) - percentile_sorted(sample_, 25);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(sd, iqr / 1.34);
  if (spread <= 0.0) spread = std::max(std::abs(sample_.empty() ? 1.0 : sample_[0]) * 0.01, 1e-6);
  bandwidth_ = 0.9 * spread * std::pow(n, -0.2);
  bandwidth_ = std::max(bandwidth_, 1e-9);
}

double Kde::density(double x) const {
  if (sample_.empty()) return 0.0;
  double acc = 0.0;
  const double inv_h = 1.0 / bandwidth_;
  for (const double s : sample_) {
    const double u = (x - s) * inv_h;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * kInvSqrt2Pi * inv_h / static_cast<double>(sample_.size());
}

Kde::Curve Kde::curve(std::size_t points) const {
  Curve c;
  if (sample_.empty() || points < 2) return c;
  const double lo = sample_.front() - 3.0 * bandwidth_;
  const double hi = sample_.back() + 3.0 * bandwidth_;
  const double step = (hi - lo) / static_cast<double>(points - 1);
  c.x.reserve(points);
  c.y.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    c.x.push_back(x);
    c.y.push_back(density(x));
  }
  return c;
}

std::vector<DensityPeak> Kde::peaks(std::size_t points, double min_relative) const {
  std::vector<DensityPeak> out;
  const Curve c = curve(points);
  if (c.y.size() < 3) return out;
  const double y_max = *std::max_element(c.y.begin(), c.y.end());
  if (y_max <= 0.0) return out;

  // Find local maxima, then attribute mass by walking to the basin edges
  // (the minima separating adjacent peaks).
  std::vector<std::size_t> maxima;
  for (std::size_t i = 1; i + 1 < c.y.size(); ++i) {
    if (c.y[i] >= c.y[i - 1] && c.y[i] > c.y[i + 1] &&
        c.y[i] >= min_relative * y_max) {
      maxima.push_back(i);
    }
  }
  if (maxima.empty()) return out;

  // Basin boundaries: the argmin between consecutive maxima.
  std::vector<std::size_t> bounds{0};
  for (std::size_t k = 0; k + 1 < maxima.size(); ++k) {
    const auto begin = c.y.begin() + static_cast<std::ptrdiff_t>(maxima[k]);
    const auto end = c.y.begin() + static_cast<std::ptrdiff_t>(maxima[k + 1]);
    bounds.push_back(static_cast<std::size_t>(std::min_element(begin, end) - c.y.begin()));
  }
  bounds.push_back(c.y.size() - 1);

  const double step = c.x[1] - c.x[0];
  double total = 0.0;
  for (const double y : c.y) total += y * step;
  if (total <= 0.0) total = 1.0;

  for (std::size_t k = 0; k < maxima.size(); ++k) {
    DensityPeak p;
    p.location = c.x[maxima[k]];
    p.density = c.y[maxima[k]];
    double mass = 0.0;
    // Half-open basins so shared boundary points are not double-counted.
    const std::size_t end = k + 1 == maxima.size() ? bounds[k + 1] + 1 : bounds[k + 1];
    for (std::size_t i = bounds[k]; i < end; ++i) mass += c.y[i] * step;
    p.mass = mass / total;
    out.push_back(p);
  }
  std::sort(out.begin(), out.end(),
            [](const DensityPeak& a, const DensityPeak& b) { return a.density > b.density; });
  return out;
}

bool is_multimodal(std::span<const double> sample, double min_mass) {
  if (sample.size() < 10) return false;
  const Kde kde(sample);
  const auto peaks = kde.peaks();
  std::size_t significant = 0;
  for (const auto& p : peaks) {
    if (p.mass >= min_mass) ++significant;
  }
  return significant >= 2;
}

}  // namespace satnet::stats
