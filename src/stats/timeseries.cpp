#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/summary.hpp"

namespace satnet::stats {

std::vector<Bucket> bucketize(std::span<const Observation> obs, double width_sec) {
  std::vector<Bucket> out;
  if (obs.empty() || width_sec <= 0.0) return out;
  std::map<std::int64_t, std::vector<double>> groups;
  for (const auto& o : obs) {
    groups[static_cast<std::int64_t>(std::floor(o.t_sec / width_sec))].push_back(o.value);
  }
  out.reserve(groups.size());
  for (auto& [idx, values] : groups) {
    std::sort(values.begin(), values.end());
    Bucket b;
    b.t_start_sec = static_cast<double>(idx) * width_sec;
    b.count = values.size();
    b.median = percentile_sorted(values, 50);
    b.p5 = percentile_sorted(values, 5);
    b.p95 = percentile_sorted(values, 95);
    out.push_back(b);
  }
  return out;
}

double daily_variation_p95(std::span<const Bucket> buckets) {
  if (buckets.size() < 2) return 0.0;
  std::vector<double> variations;
  variations.reserve(buckets.size() - 1);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    const double prev = buckets[i - 1].median;
    if (prev <= 0.0) continue;
    variations.push_back(std::abs(buckets[i].median - prev) / prev);
  }
  if (variations.empty()) return 0.0;
  return percentile(variations, 95);
}

std::vector<ChangePoint> detect_mean_shifts(std::span<const Observation> obs,
                                            std::size_t window,
                                            double threshold_frac,
                                            double min_abs) {
  std::vector<ChangePoint> out;
  if (window < 2 || obs.size() < 2 * window) return out;

  // Prefix sums make each window mean O(1).
  std::vector<double> prefix(obs.size() + 1, 0.0);
  for (std::size_t i = 0; i < obs.size(); ++i) prefix[i + 1] = prefix[i] + obs[i].value;
  const auto window_mean = [&](std::size_t begin) {
    return (prefix[begin + window] - prefix[begin]) / static_cast<double>(window);
  };

  std::size_t i = window;
  while (i + window <= obs.size()) {
    const double before = window_mean(i - window);
    const double after = window_mean(i);
    const double smaller = std::min(std::abs(before), std::abs(after));
    const double delta = std::abs(after - before);
    if (delta >= min_abs && smaller > 0.0 && delta / smaller >= threshold_frac) {
      out.push_back({obs[i].t_sec, before, after});
      i += window;  // skip past the detected step to avoid duplicate reports
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace satnet::stats
