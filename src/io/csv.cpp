#include "io/csv.hpp"

#include <stdexcept>

#include "orbit/shell.hpp"

namespace satnet::io {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string_view>& columns) {
  if (columns_ != 0) throw std::logic_error("CsvWriter: header written twice");
  if (columns.empty()) throw std::invalid_argument("CsvWriter: empty header");
  columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (columns_ == 0) throw std::logic_error("CsvWriter: header not written");
  if (fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}
}  // namespace

std::size_t export_ndt(const mlab::NdtDataset& dataset, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"t_sec", "asn", "client_ip", "prefix", "country", "latency_p5_ms",
              "latency_median_ms", "jitter_p95_ms", "download_mbps", "upload_mbps",
              "retrans_frac", "n_handoffs", "truth_operator", "truth_satellite",
              "truth_orbit"});
  for (const auto& r : dataset.records()) {
    csv.row({fmt(r.t_sec), std::to_string(r.asn), r.client_ip.to_string(),
             r.prefix.to_string(), r.country, fmt(r.latency_p5_ms),
             fmt(r.latency_median_ms), fmt(r.jitter_p95_ms), fmt(r.download_mbps),
             fmt(r.upload_mbps), fmt(r.retrans_frac), std::to_string(r.n_handoffs),
             r.truth_operator, r.truth_satellite ? "1" : "0",
             std::string(orbit::to_string(r.truth_orbit))});
  }
  return csv.rows_written();
}

std::size_t export_traceroutes(const ripe::AtlasDataset& dataset, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"probe_id", "t_sec", "root", "via_cgnat", "pop", "cgnat_rtt_ms",
              "dest_rtt_ms", "hop_count", "instance_city"});
  for (const auto& t : dataset.traceroutes) {
    csv.row({std::to_string(t.probe_id), fmt(t.t_sec), std::string(1, t.root),
             t.via_cgnat ? "1" : "0", t.pop_name, fmt(t.cgnat_rtt_ms),
             fmt(t.dest_rtt_ms), std::to_string(t.hop_count), t.instance_city});
  }
  return csv.rows_written();
}

std::size_t export_pipeline(const snoid::PipelineResult& result, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"operator", "orbit", "multi_orbit", "identified", "retained",
              "covered_by_strict", "relax_threshold_ms", "precision", "recall"});
  for (const auto& op : result.operators) {
    csv.row({op.name, std::string(orbit::to_string(op.declared_orbit)),
             op.multi_orbit ? "1" : "0", op.identified() ? "1" : "0",
             std::to_string(op.retained.size()), op.covered_by_strict ? "1" : "0",
             fmt(op.relax_threshold_ms), fmt(op.precision()), fmt(op.recall())});
  }
  return csv.rows_written();
}

}  // namespace satnet::io
