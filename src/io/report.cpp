#include "io/report.hpp"

#include <cstdarg>
#include <cstdio>

#include "snoid/analysis.hpp"
#include "snoid/pop_analysis.hpp"
#include "stats/cdf.hpp"

namespace satnet::io {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string study_report(const mlab::NdtDataset& dataset,
                         const snoid::PipelineResult& result,
                         const ripe::AtlasDataset& atlas,
                         const ReportOptions& options) {
  std::string out;
  out += "# SNO performance study report\n\n";
  appendf(out,
          "Dataset: %zu NDT speed tests; pipeline identified %zu operators "
          "out of %zu curated (fallback threshold %.1f ms).\n\n",
          dataset.size(), result.identified_operators, result.curated_operators,
          result.fallback_threshold_ms);

  if (options.include_operator_table) {
    out += "## Identified operators\n\n";
    out += "| operator | orbit | retained | strict | precision | recall |\n";
    out += "|---|---|---:|---|---:|---:|\n";
    for (const auto& op : result.operators) {
      if (!op.identified()) continue;
      appendf(out, "| %s | %s | %zu | %s | %.3f | %.3f |\n", op.name.c_str(),
              std::string(orbit::to_string(op.declared_orbit)).c_str(),
              op.retained.size(), op.covered_by_strict ? "yes" : "no",
              op.precision(), op.recall());
    }
    out += "\n";
  }

  if (options.include_orbit_summary) {
    out += "## Cross-orbit summary\n\n";
    out += "| orbit | tests | median latency | jitter variability | retrans |\n";
    out += "|---|---:|---:|---:|---:|\n";
    for (const auto& [orbit_class, subset] : snoid::retained_by_orbit(result)) {
      if (subset.empty()) continue;
      const auto lat = dataset.field(subset, &mlab::NdtRecord::latency_p5_ms);
      const auto jv = snoid::jitter_variability(dataset, subset);
      const auto rt = dataset.field(subset, &mlab::NdtRecord::retrans_frac);
      appendf(out, "| %s | %zu | %.1f ms | %.2f | %.3f |\n",
              std::string(orbit::to_string(orbit_class)).c_str(), subset.size(),
              stats::median(lat), stats::median(jv), stats::median(rt));
    }
    out += "\n";
  }

  if (options.include_pop_analysis && !atlas.traceroutes.empty()) {
    out += "## Starlink PoP analysis (RIPE Atlas)\n\n";
    out += "| country | median PoP RTT |\n|---|---:|\n";
    for (const auto& row : snoid::pop_rtt_by_country(atlas, /*us_only=*/false)) {
      appendf(out, "| %s | %.1f ms |\n", row.key.c_str(), row.rtt.median);
    }
    out += "\nDetected PoP migrations:\n\n";
    for (const auto& m : snoid::detect_pop_migrations(atlas)) {
      appendf(out, "- probe %d (%s), day %.0f: %s -> %s (%.0f -> %.0f ms)\n",
              m.probe_id, m.country.c_str(), m.day, m.from_pop.c_str(),
              m.to_pop.c_str(), m.rtt_before_ms, m.rtt_after_ms);
    }
    out += "\n";
  }

  return out;
}

}  // namespace satnet::io
