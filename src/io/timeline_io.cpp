#include "io/timeline_io.hpp"

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SATNET_TIMELINE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace satnet::io {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'T', 'L'};
constexpr std::uint16_t kByteOrderMark = 0xFEFF;

/// Hash of the array layout; bump alongside kTimelineFormatVersion when
/// the on-disk schema changes so stale files are rejected, not
/// misparsed. (FNV-1a of the layout description below.)
constexpr std::string_view kSchemaDescription =
    "identity,interval,static_boundaries,boundaries,era_keys,"
    "serving{lat,lon,epoch,sat},sample{lat,lon,epoch,era,sat,popgw,up,down,backhaul,sched,oneway}";

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t schema_hash() {
  std::uint64_t h = fnv1a(kSchemaDescription.data(), kSchemaDescription.size());
  h ^= kTimelineFormatVersion;
  return h;
}

// ------------------------------------------------------------- writing
// Explicit little-endian byte emission: the file has one byte order on
// every host, and the loader's BOM check distinguishes "foreign-endian
// writer" from garbage.

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void pad_to_8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

void put_u64_array(std::string& out, std::span<const std::uint64_t> a) {
  for (const std::uint64_t v : a) put_u64(out, v);
}

void put_u32_array(std::string& out, std::span<const std::uint32_t> a) {
  for (const std::uint32_t v : a) put_u32(out, v);
  pad_to_8(out);
}

// ------------------------------------------------------------- reading

/// Bounds-checked cursor over the image. All u64 reads happen at
/// 8-aligned offsets by format construction (the writer pads), so the
/// array views handed to snapshots are alignment-safe.
struct Cursor {
  const unsigned char* base = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  bool take(std::size_t n) {
    if (n > size - pos) return false;
    pos += n;
    return true;
  }
  bool get_u64(std::uint64_t* out) {
    if (size - pos < 8) return false;
    std::uint64_t v = 0;
    std::memcpy(&v, base + pos, 8);  // host is little-endian (checked up front)
    pos += 8;
    *out = v;
    return true;
  }
  template <typename T>
  bool get_array(std::size_t n, std::span<const T>* out) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes / sizeof(T) != n || bytes > size - pos) return false;
    *out = std::span<const T>(reinterpret_cast<const T*>(base + pos), n);
    pos += bytes;
    while (pos % 8 != 0 && pos < size) ++pos;  // writer pads u32 arrays
    return true;
  }
};

obs::Counter& load_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "timeline.io.load", "timeline files loaded and installed");
  return c;
}

obs::Counter& mmap_bytes_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "timeline.io.mmap_bytes", "bytes of timeline files mapped read-only");
  return c;
}

#if SATNET_TIMELINE_HAVE_MMAP
/// An mmap'ed read-only file; snapshots hold this via shared_ptr so the
/// mapping outlives every span into it.
struct Mapping {
  void* addr = MAP_FAILED;
  std::size_t len = 0;
  ~Mapping() {
    if (addr != MAP_FAILED) ::munmap(addr, len);
  }
};
#endif

}  // namespace

std::string serialize_timelines(
    const std::vector<std::shared_ptr<const orbit::EpochTimeline>>& timelines,
    const std::string& manifest) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kTimelineFormatVersion));
  out.push_back('\0');
  out.push_back(static_cast<char>(kByteOrderMark & 0xFF));
  out.push_back(static_cast<char>(kByteOrderMark >> 8));
  put_u64(out, schema_hash());
  put_u64(out, manifest.size());
  out += manifest;
  pad_to_8(out);
  put_u64(out, timelines.size());
  for (const auto& tl : timelines) {
    put_u64(out, tl->identity());
    put_u64(out, std::bit_cast<std::uint64_t>(tl->interval_sec()));
    put_u64(out, tl->static_boundaries().size());
    for (const double b : tl->static_boundaries()) {
      put_u64(out, std::bit_cast<std::uint64_t>(b));
    }
    put_u64(out, tl->boundaries().size());
    for (const double b : tl->boundaries()) put_u64(out, std::bit_cast<std::uint64_t>(b));
    put_u64_array(out, tl->era_keys());  // boundaries + 1 entries
    const auto& v = tl->view();
    put_u64(out, v.s_lat.size());
    put_u64_array(out, v.s_lat);
    put_u64_array(out, v.s_lon);
    put_u64_array(out, v.s_epoch);
    put_u32_array(out, v.s_sat);
    put_u64(out, v.m_lat.size());
    put_u64_array(out, v.m_lat);
    put_u64_array(out, v.m_lon);
    put_u64_array(out, v.m_epoch);
    put_u32_array(out, v.m_era);
    put_u32_array(out, v.m_sat);
    put_u32_array(out, v.m_popgw);
    put_u64_array(out, v.m_up);
    put_u64_array(out, v.m_down);
    put_u64_array(out, v.m_backhaul);
    put_u64_array(out, v.m_sched);
    put_u64_array(out, v.m_oneway);
  }
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

std::string parse_timelines(std::string_view bytes, std::shared_ptr<const void> backing,
                            std::vector<std::shared_ptr<const orbit::EpochTimeline>>* out,
                            TimelineFileInfo* info) {
  out->clear();
  const auto reject = [&](const std::string& why) {
    out->clear();
    return "timeline file rejected: " + why;
  };
  if constexpr (std::endian::native != std::endian::little) {
    return reject("big-endian hosts cannot map little-endian timelines");
  }
  if (bytes.size() < 32) return reject("truncated header");
  Cursor c{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(), 0};
  if (std::memcmp(c.base, kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic (not a timeline file)");
  }
  const unsigned char version = c.base[4];
  const std::uint16_t bom =
      static_cast<std::uint16_t>(c.base[6] | (static_cast<std::uint16_t>(c.base[7]) << 8));
  if (bom != kByteOrderMark) {
    if (bom == 0xFFFE) return reject("wrong endianness (byte-swapped file)");
    return reject("corrupt header (bad byte-order mark)");
  }
  if (version != kTimelineFormatVersion) {
    return reject("unsupported format version " + std::to_string(version));
  }
  c.pos = 8;
  std::uint64_t schema = 0, manifest_len = 0;
  if (!c.get_u64(&schema) || schema != schema_hash()) {
    return reject("stale schema stamp (rebuilt layout; regenerate the file)");
  }
  if (!c.get_u64(&manifest_len) || manifest_len > c.size - c.pos) {
    return reject("truncated manifest");
  }
  const std::string manifest(bytes.substr(c.pos, manifest_len));
  if (!c.take(manifest_len)) return reject("truncated manifest");
  while (c.pos % 8 != 0 && c.pos < c.size) ++c.pos;

  // Whole-payload checksum before touching any array: bit flips and
  // truncation both land here with one message.
  if (bytes.size() < c.pos + 16) return reject("truncated payload");
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, bytes.data() + bytes.size() - 8, 8);
  if (fnv1a(bytes.data(), bytes.size() - 8) != stored_sum) {
    return reject("checksum mismatch (corrupt or truncated payload)");
  }
  const std::size_t payload_end = bytes.size() - 8;

  std::uint64_t n_networks = 0;
  if (!c.get_u64(&n_networks)) return reject("truncated network count");
  for (std::uint64_t n = 0; n < n_networks; ++n) {
    std::uint64_t identity = 0, interval_bits = 0, count = 0;
    if (!c.get_u64(&identity) || !c.get_u64(&interval_bits)) {
      return reject("truncated network header");
    }
    const auto read_doubles = [&](std::vector<double>* dst) {
      if (!c.get_u64(&count) || count > (payload_end - c.pos) / 8) return false;
      dst->reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t b = 0;
        if (!c.get_u64(&b)) return false;
        dst->push_back(std::bit_cast<double>(b));
      }
      return true;
    };
    std::vector<double> static_boundaries, boundaries;
    if (!read_doubles(&static_boundaries)) return reject("truncated static boundaries");
    if (!read_doubles(&boundaries)) return reject("truncated era boundaries");
    std::vector<std::uint64_t> era_keys(boundaries.size() + 1);
    for (auto& k : era_keys) {
      if (!c.get_u64(&k)) return reject("truncated era keys");
    }
    orbit::EpochTimeline::View view;
    std::uint64_t n_serving = 0;
    if (!c.get_u64(&n_serving) || !c.get_array(n_serving, &view.s_lat) ||
        !c.get_array(n_serving, &view.s_lon) || !c.get_array(n_serving, &view.s_epoch) ||
        !c.get_array(n_serving, &view.s_sat)) {
      return reject("truncated serving layer");
    }
    std::uint64_t n_sample = 0;
    if (!c.get_u64(&n_sample) || !c.get_array(n_sample, &view.m_lat) ||
        !c.get_array(n_sample, &view.m_lon) || !c.get_array(n_sample, &view.m_epoch) ||
        !c.get_array(n_sample, &view.m_era) || !c.get_array(n_sample, &view.m_sat) ||
        !c.get_array(n_sample, &view.m_popgw) || !c.get_array(n_sample, &view.m_up) ||
        !c.get_array(n_sample, &view.m_down) || !c.get_array(n_sample, &view.m_backhaul) ||
        !c.get_array(n_sample, &view.m_sched) || !c.get_array(n_sample, &view.m_oneway)) {
      return reject("truncated sample layer");
    }
    out->push_back(std::make_shared<orbit::EpochTimeline>(
        identity, std::bit_cast<double>(interval_bits), std::move(static_boundaries),
        std::move(boundaries), std::move(era_keys), view, backing));
  }
  if (c.pos != payload_end) return reject("trailing bytes after last network");
  if (info) {
    info->networks = out->size();
    info->bytes = bytes.size();
    info->manifest = manifest;
  }
  return "";
}

std::string save_timelines(const std::string& path, const std::string& manifest) {
  const std::string image = serialize_timelines(orbit::EpochTimeline::installed(), manifest);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return "timeline save failed: cannot open " + path;
  file.write(image.data(), static_cast<std::streamsize>(image.size()));
  file.flush();
  if (!file.good()) return "timeline save failed: short write to " + path;
  return "";
}

std::string load_timelines(const std::string& path, TimelineFileInfo* info) {
  std::string_view bytes;
  std::shared_ptr<const void> backing;
  std::size_t mapped = 0;
#if SATNET_TIMELINE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return "timeline load failed: cannot open " + path;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return "timeline load failed: cannot stat " + path;
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  auto mapping = std::make_shared<Mapping>();
  // satlint:allow(persist-nondet): mmap failure falls back to an identical heap read below — the parsed bytes are the same either way
  // satlint:allow(nondet-taint): mmap availability picks the read strategy, not the contents; both branches parse identical bytes
  if (len > 0) mapping->addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  mapping->len = len;
  ::close(fd);
  if (len > 0 && mapping->addr != MAP_FAILED) {
    bytes = std::string_view(static_cast<const char*>(mapping->addr), len);
    backing = std::move(mapping);
    mapped = len;
  }
#endif
  if (!backing) {
    // Heap fallback (mmap unavailable or failed): same bytes, same
    // parse, just without the lazy paging.
    std::ifstream file(path, std::ios::binary);
    if (!file) return "timeline load failed: cannot open " + path;
    auto buffer = std::make_shared<std::string>();
    buffer->assign(std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>());
    if (!file.good() && !file.eof()) return "timeline load failed: cannot read " + path;
    bytes = *buffer;
    backing = std::move(buffer);
  }

  std::vector<std::shared_ptr<const orbit::EpochTimeline>> loaded;
  TimelineFileInfo local;
  const std::string error = parse_timelines(bytes, backing, &loaded, &local);
  if (!error.empty()) return error;  // nothing installed: deterministic fallback
  for (auto& tl : loaded) orbit::EpochTimeline::install(std::move(tl));
  load_counter().add(1);
  if (mapped > 0) mmap_bytes_counter().add(mapped);
  if (info) *info = local;
  return "";
}

}  // namespace satnet::io
