// Timeline persistence: the warm-start half of the epoch timeline.
//
// A timeline file is the installed EpochTimeline snapshots, verbatim:
// the same sorted SoA arrays the in-memory replay binary-searches,
// written little-endian at 8-byte-aligned offsets so a loaded file can
// be mmap'ed and consumed in place — load is O(header) plus page faults
// on the keys a campaign actually touches. The header carries a format
// version byte, a byte-order mark, a schema hash, and a free-form run
// manifest stamp; the trailer is an FNV-1a checksum over everything
// before it. Era keys and boundaries travel with each network, so a
// loaded snapshot honours fault-plan changes exactly like a built one
// (stale eras fall back per lookup — see orbit/timeline.hpp).
//
// The load path is deliberately paranoid: a corrupt, truncated,
// wrong-endian, or stale-schema file is rejected with a single
// diagnostic line and *nothing* is installed — the caller's campaigns
// simply build in memory, producing byte-identical output (the
// deterministic-fallback contract the golden suite pins).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "orbit/timeline.hpp"

namespace satnet::io {

/// Format version written into (and required from) timeline files.
inline constexpr unsigned char kTimelineFormatVersion = 1;

struct TimelineFileInfo {
  std::size_t networks = 0;  ///< snapshots in the file
  std::size_t bytes = 0;     ///< total file size
  std::string manifest;      ///< stamp recorded at save time
};

/// Serializes the given snapshots to an in-memory image (tests use this
/// to corrupt controlled bytes; save_timelines writes the same image).
std::string serialize_timelines(
    const std::vector<std::shared_ptr<const orbit::EpochTimeline>>& timelines,
    const std::string& manifest);

/// Validates and decodes an image produced by serialize_timelines into
/// snapshots viewing `backing` (which must keep `bytes` alive and is
/// retained by every returned snapshot). Returns "" on success, else a
/// one-line diagnostic; on failure *out is left empty.
std::string parse_timelines(std::string_view bytes, std::shared_ptr<const void> backing,
                            std::vector<std::shared_ptr<const orbit::EpochTimeline>>* out,
                            TimelineFileInfo* info = nullptr);

/// Writes every installed timeline snapshot to `path`, stamped with
/// `manifest` (tool + command line). Returns "" on success, else a
/// one-line diagnostic.
std::string save_timelines(const std::string& path, const std::string& manifest);

/// Loads `path` (mmap when possible, heap read otherwise — identical
/// bytes either way) and installs every snapshot it holds. Returns ""
/// on success, else the single rejection diagnostic; on failure nothing
/// is installed and campaigns fall back to in-memory builds.
std::string load_timelines(const std::string& path, TimelineFileInfo* info = nullptr);

}  // namespace satnet::io
