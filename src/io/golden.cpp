#include "io/golden.hpp"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "mlab/campaign.hpp"
#include "prolific/addon.hpp"
#include "prolific/census.hpp"
#include "snoid/pipeline.hpp"
#include "stats/kde.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "synth/asdb.hpp"
#include "transport/tcp.hpp"
#include "weather/weather.hpp"

namespace satnet::io {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_header(std::string& out, const char* figure, const char* caption) {
  out += "\n================================================================\n";
  appendf(out, "%s — %s\n", figure, caption);
  out += "================================================================\n";
}

void append_note(std::string& out, const char* text) { appendf(out, "  %s\n", text); }

}  // namespace

std::string identify_snos_report(unsigned threads) {
  std::string out;
  out += "== SNO identification, stage by stage ==\n\n";

  // Stage 0: the dataset.
  const synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.001;
  cfg.min_tests_per_sno = 30;
  cfg.threads = threads;
  cfg.retry = runtime::degrade_under_faults();
  const auto dataset = mlab::run_campaign(world, cfg);
  appendf(out, "[0] M-Lab campaign: %zu NDT speed tests\n\n", dataset.size());

  // Stage 1: ASdb's satellite category.
  const auto asdb = synth::asdb_satellite_category();
  appendf(out, "[1] ASdb 'Satellite Communication' category: %zu ASNs\n", asdb.size());
  out += "    (note: Starlink and Viasat are missing — ASdb's gap)\n";

  // Stage 1b: HE BGP search for well-known operators.
  std::set<bgp::Asn> candidates;
  for (const auto& row : asdb) candidates.insert(row.asn);
  std::size_t added = 0;
  for (const char* name : {"starlink", "viasat", "oneweb", "ses", "hughes"}) {
    for (const auto asn : synth::he_bgp_search(name)) {
      if (candidates.insert(asn).second) ++added;
    }
  }
  appendf(out, "[1b] HE BGP name search adds %zu ASNs (total %zu)\n\n", added,
          candidates.size());

  // Stage 2: manual curation via websites.
  std::size_t kept = 0, dropped = 0;
  for (const auto asn : candidates) {
    const auto info = synth::ipinfo_lookup(asn);
    if (info && info->kind == synth::EntityKind::sno) {
      ++kept;
    } else {
      ++dropped;
    }
  }
  appendf(out, "[2] website curation: %zu SNO ASNs kept, %zu look-alikes dropped\n\n",
          kept, dropped);

  // Stage 3: KDE validation — show the famous outlier.
  const auto by_asn = dataset.by_asn();
  for (const bgp::Asn asn : {bgp::Asn{14593}, bgp::Asn{27277}}) {
    const auto it = by_asn.find(asn);
    if (it == by_asn.end()) continue;
    const auto lat = dataset.field(it->second, &mlab::NdtRecord::latency_p5_ms);
    const auto peaks = stats::Kde(lat).peaks();
    appendf(out, "[3] AS%u latency KDE: main peak %.0f ms over %zu tests -> %s\n", asn,
            peaks.empty() ? 0.0 : peaks.front().location, lat.size(),
            asn == 14593 ? "compatible with LEO service"
                         : "terrestrial: this is SpaceX's corporate network");
  }

  // Stages 3b-4: the full pipeline.
  snoid::PipelineConfig pcfg;
  pcfg.threads = threads;
  pcfg.retry = runtime::degrade_under_faults();
  const auto result = snoid::run_pipeline(dataset, pcfg);
  appendf(out, "\n[3b-4] strict prefix filter + relaxation:\n%s",
          snoid::describe(result).c_str());
  return out;
}

std::string fig9_speedtest_report(const synth::World& world) {
  std::string out;
  append_header(out, "Figure 9", "fast.com speedtest per SNO and continent");

  prolific::TesterPool pool;
  const auto reports = prolific::run_addon_study(world, pool);

  struct Key {
    std::string sno;
    std::string continent;
    bool operator<(const Key& o) const {
      return std::tie(sno, continent) < std::tie(o.sno, o.continent);
    }
  };
  std::map<Key, std::vector<const prolific::AddonRunReport*>> groups;
  for (const auto& r : reports) {
    if (r.speedtest.down_mbps <= 0) continue;  // outage run
    groups[{r.sno, std::string(geo::to_string(r.continent))}].push_back(&r);
  }

  appendf(out, "  %-10s %-14s %5s %10s %9s %9s\n", "SNO", "continent", "runs",
          "down Mbps", "up Mbps", "RTT ms");
  for (const auto& [key, rs] : groups) {
    std::vector<double> down, up, lat;
    for (const auto* r : rs) {
      down.push_back(r->speedtest.down_mbps);
      up.push_back(r->speedtest.up_mbps);
      lat.push_back(r->speedtest.latency_ms);
    }
    appendf(out, "  %-10s %-14s %5zu %10.1f %9.1f %9.1f\n", key.sno.c_str(),
            key.continent.c_str(), rs.size(), stats::median(down), stats::median(up),
            stats::median(lat));
  }
  append_note(out,
              "paper: Starlink 70-150/6-21 Mbps (EU fastest: 150/21); "
              "Viasat 10-40/3; HughesNet <3/3");
  append_note(out,
              "paper latencies: Starlink 35 (NA), 38 (EU), 49 (NZ); "
              "Viasat ~600; HughesNet ~720");
  return out;
}

std::string ablation_weather_report() {
  std::string out;
  append_header(out, "Ablation", "Rain fade: throughput/latency by sky condition");

  synth::WorldConfig cfg;
  cfg.enable_weather = true;
  const synth::World world(cfg);
  const weather::WeatherField field(cfg.weather);
  stats::Rng rng(17);

  // Sample NDT-style flows per (orbit, condition).
  struct Cell {
    std::vector<double> goodput_frac;  ///< goodput / plan
    std::vector<double> retrans;
    int outages = 0;
    int n = 0;
  };
  std::map<std::pair<orbit::OrbitClass, weather::Condition>, Cell> cells;

  std::map<orbit::OrbitClass, int> sampled;
  for (const auto& sub : world.subscribers()) {
    if (sub.tech != synth::AccessTech::satellite) continue;
    if (++sampled[sub.orbit] > 150) continue;  // per-orbit quota
    for (int k = 0; k < 4; ++k) {
      const double t = k * 86400.0 * 13 + 3600.0 * k;
      const weather::Condition sky = field.at(sub.location, t);
      auto& cell = cells[{sub.orbit, sky}];
      ++cell.n;
      const auto path = world.sample_path(sub, t, rng);
      if (!path.ok) {
        ++cell.outages;
        continue;
      }
      transport::TcpFlow flow(path.download, transport::TcpOptions{},
                              rng.fork(sub.ip.value() + k));
      const auto r = flow.run_for(8000.0);
      cell.goodput_frac.push_back(r.goodput_mbps / sub.plan_down_mbps);
      cell.retrans.push_back(r.retrans_fraction);
    }
  }

  appendf(out, "  %-5s %-11s %5s %18s %14s %8s\n", "orbit", "sky", "n",
          "goodput/plan (med)", "retrans (med)", "outages");
  for (const auto& [key, cell] : cells) {
    if (cell.goodput_frac.empty() && cell.outages == 0) continue;
    appendf(out, "  %-5s %-11s %5d %18.2f %14.3f %8d\n",
            orbit::to_string(key.first).c_str(),
            std::string(weather::to_string(key.second)).c_str(), cell.n,
            cell.goodput_frac.empty() ? 0.0 : stats::median(cell.goodput_frac),
            cell.retrans.empty() ? 0.0 : stats::median(cell.retrans), cell.outages);
  }
  append_note(out,
              "expected shape (per Kassem/Ma et al.): GEO capacity collapses "
              "under rain; LEO degrades mildly; only GEO heavy rain causes "
              "outages");
  return out;
}

}  // namespace satnet::io
