// Markdown study-report generator: assembles the cross-orbit findings,
// the identification outcome with ground-truth scoring, and the Starlink
// PoP analysis into one human-readable document — the reproduction's
// equivalent of the paper's §4-§5 narrative.
#pragma once

#include <string>

#include "mlab/dataset.hpp"
#include "ripe/atlas.hpp"
#include "snoid/pipeline.hpp"

namespace satnet::io {

struct ReportOptions {
  bool include_operator_table = true;
  bool include_orbit_summary = true;
  bool include_pop_analysis = true;  ///< needs a non-empty Atlas dataset
};

/// Builds the full markdown report. `atlas` may be empty (the PoP section
/// is skipped then).
std::string study_report(const mlab::NdtDataset& dataset,
                         const snoid::PipelineResult& result,
                         const ripe::AtlasDataset& atlas,
                         const ReportOptions& options = ReportOptions{});

}  // namespace satnet::io
