// Deterministic report text shared by the example/bench binaries and the
// golden-run regression suite.
//
// Everything here is a pure function of (seed, config): no wall-clock,
// no thread-count dependence, no machine dependence. The binaries print
// these strings (and add their own nondeterministic extras — benchmark
// timings, throughput checks — *around* them); tests/golden_test.cpp
// pins the strings byte-for-byte against tests/golden/ snapshots at
// 1/2/8 worker threads. If you change simulation behaviour on purpose,
// regenerate the snapshots (see the test file or README).
#pragma once

#include <string>

#include "synth/world.hpp"

namespace satnet::io {

/// The identify_snos walkthrough: every stage of the paper's Figure-1
/// pipeline with what it keeps and drops. `threads` feeds the sharded
/// campaign/pipeline runtimes; the text is identical for every value.
std::string identify_snos_report(unsigned threads);

/// Figure 9's table: fast.com speedtest medians per SNO and continent
/// from the Prolific addon study over `world`.
std::string fig9_speedtest_report(const synth::World& world);

/// The rain-fade ablation table: goodput/retransmit/outage by orbit
/// class and sky condition with the weather overlay enabled.
std::string ablation_weather_report();

}  // namespace satnet::io
