// CSV export for the generated datasets and analysis results, so the
// reproduced tables/figures can be re-plotted with external tooling
// (pandas/matplotlib/R) exactly like the paper's own BigQuery pulls.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "mlab/dataset.hpp"
#include "ripe/atlas.hpp"
#include "snoid/pipeline.hpp"

namespace satnet::io {

/// Minimal RFC-4180-style CSV writer: quotes fields containing commas,
/// quotes, or newlines; one row() call per record.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes the header row; must be the first call.
  void header(const std::vector<std::string_view>& columns);
  /// Writes one data row; size must match the header.
  void row(const std::vector<std::string>& fields);

  std::size_t rows_written() const { return rows_; }

  static std::string escape(std::string_view field);

 private:
  std::ostream& out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// NDT record table -> CSV (one row per speed test). Ground-truth columns
/// are included and marked with a "truth_" prefix.
std::size_t export_ndt(const mlab::NdtDataset& dataset, std::ostream& out);

/// RIPE traceroute summaries -> CSV.
std::size_t export_traceroutes(const ripe::AtlasDataset& dataset, std::ostream& out);

/// Pipeline outcome -> CSV (one row per operator).
std::size_t export_pipeline(const snoid::PipelineResult& result, std::ostream& out);

}  // namespace satnet::io
