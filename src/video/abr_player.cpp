#include "video/abr_player.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "stats/summary.hpp"

namespace satnet::video {

namespace {

constexpr std::array kLadder = {
    Rendition{"144p", 256, 144, 0.10, 30},
    Rendition{"240p", 426, 240, 0.25, 30},
    Rendition{"360p", 480, 360, 0.50, 30},
    Rendition{"480p", 854, 480, 1.00, 30},
    Rendition{"720p", 1280, 720, 2.50, 60},
    Rendition{"1080p", 1920, 1080, 4.50, 60},
    Rendition{"1440p", 2560, 1440, 9.00, 60},
    Rendition{"2160p", 3840, 2160, 17.0, 60},
};

/// Instantaneous deliverable throughput for one segment download: the
/// path bottleneck modulated by loss/handoff events during the download.
double segment_throughput_mbps(const transport::PathProfile& path, stats::Rng& rng,
                               bool* handoff_hit) {
  double tput = path.bottleneck_mbps * rng.uniform(0.6, 0.95);
  // RTT-bound inefficiency: every segment restarts its request/response
  // exchange and spends several round trips in window growth, so a 5 s
  // segment on a 600 ms path delivers a small fraction of the link rate —
  // which is why the paper's Viasat testers sat near 360p on 25 Mbps
  // plans (Fig 11a).
  const double rtt_penalty = 1.0 / (1.0 + path.base_rtt_ms / 250.0);
  tput *= rtt_penalty;
  *handoff_hit = false;
  if (path.handoff_rate_hz > 0.0 && rng.chance(path.handoff_rate_hz * 5.0)) {
    *handoff_hit = true;
    tput *= rng.uniform(0.3, 0.7);  // mid-download interruption
  }
  const double loss = path.pep ? path.ground_loss : path.sat_loss + path.ground_loss;
  if (loss > 0.0 && rng.chance(std::min(0.9, loss * 400.0))) {
    tput *= rng.uniform(0.4, 0.8);  // loss-triggered window collapse
  }
  return std::max(tput, 0.05);
}

std::size_t pick_rendition(double est_mbps, double buffer_sec,
                           const PlayerOptions& opt) {
  if (buffer_sec < opt.low_buffer_sec) return 0;  // panic: lowest rung
  std::size_t best = 0;
  for (std::size_t i = 0; i < kLadder.size(); ++i) {
    if (kLadder[i].bitrate_mbps <= opt.safety_factor * est_mbps) best = i;
  }
  return best;
}

}  // namespace

std::span<const Rendition> youtube_ladder() { return kLadder; }

SessionStats play_session(const transport::PathProfile& path, stats::Rng& rng,
                          const PlayerOptions& opt) {
  SessionStats out;
  std::vector<double> quality_mp;
  std::vector<double> tput_series;
  std::vector<std::size_t> rendition_idx;

  double buffer_sec = 0.0;
  double played_sec = 0.0;
  double est_mbps = 1.0;  // conservative startup estimate
  double total_frames = 0.0, dropped_frames = 0.0;
  bool started = false;

  while (played_sec < opt.playback_sec) {
    // Download the next segment at the chosen rendition.
    const std::size_t idx = pick_rendition(est_mbps, buffer_sec, opt);
    const Rendition& r = kLadder[idx];
    bool handoff = false;
    const double tput = segment_throughput_mbps(path, rng, &handoff);
    const double seg_bits = r.bitrate_mbps * 1e6 * opt.segment_sec;
    const double dl_sec = seg_bits / (tput * 1e6) + path.base_rtt_ms / 1e3;

    est_mbps = 0.7 * est_mbps + 0.3 * tput;  // EWMA throughput estimator

    // Buffer dynamics: playback drains while the download proceeds.
    if (started) {
      const double drained = std::min(buffer_sec, dl_sec);
      played_sec += drained;
      if (dl_sec > buffer_sec) {
        // Stall: buffer ran dry mid-download.
        out.stall_sec += dl_sec - buffer_sec;
        ++out.n_stalls;
        buffer_sec = 0.0;
      } else {
        buffer_sec -= dl_sec;
      }
    }
    buffer_sec += opt.segment_sec;
    if (!started && buffer_sec >= opt.startup_buffer_sec) started = true;

    // Frame accounting: handoffs and decode pressure at high resolutions
    // drop frames.
    const double frames = r.fps * opt.segment_sec;
    total_frames += frames;
    if (handoff) dropped_frames += frames * rng.uniform(0.05, 0.25);
    if (r.megapixels() >= 2.0 && rng.chance(0.15)) {
      dropped_frames += frames * rng.uniform(0.01, 0.05);
    }

    quality_mp.push_back(r.megapixels());
    rendition_idx.push_back(idx);
    tput_series.push_back(tput);
    out.buffer_series.push_back(buffer_sec);

    // Respect the buffer cap: the player idles instead of downloading.
    if (buffer_sec > opt.max_buffer_sec) {
      const double idle = buffer_sec - opt.max_buffer_sec;
      played_sec += idle;
      buffer_sec = opt.max_buffer_sec;
    }
  }

  out.median_megapixels = stats::median(quality_mp);
  std::sort(rendition_idx.begin(), rendition_idx.end());
  out.median_rendition = kLadder[rendition_idx[rendition_idx.size() / 2]].name;
  out.mean_download_mbps = stats::mean(tput_series);
  out.mean_buffer_sec = stats::mean(out.buffer_series);
  out.min_buffer_sec =
      *std::min_element(out.buffer_series.begin(), out.buffer_series.end());
  out.dropped_frame_frac = total_frames > 0 ? dropped_frames / total_frames : 0.0;
  return out;
}

}  // namespace satnet::video
