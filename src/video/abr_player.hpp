// Adaptive-bitrate video player (paper Figure 11).
//
// A YouTube-like player with the standard ladder, a hybrid
// throughput/buffer adaptation rule, buffer dynamics, dropped-frame
// accounting, and "stats-for-nerds"-style reporting: per-session median
// video quality (megapixels), download speed, buffer health, dropped
// frames, and stall time.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "stats/rng.hpp"
#include "transport/path.hpp"

namespace satnet::video {

/// One rung of the encoding ladder.
struct Rendition {
  std::string_view name;  ///< "1080p"
  int width = 0;
  int height = 0;
  double bitrate_mbps = 0;
  double fps = 30;

  double megapixels() const { return width * height / 1e6; }
};

/// The YouTube-style ladder used by the addon's 4K test video.
std::span<const Rendition> youtube_ladder();

struct PlayerOptions {
  double playback_sec = 60.0;       ///< the addon plays 60 s
  double segment_sec = 5.0;
  double max_buffer_sec = 65.0;     ///< YouTube keeps up to ~1 min buffered
  double safety_factor = 0.8;       ///< pick bitrate <= safety * est. throughput
  double low_buffer_sec = 8.0;      ///< panic threshold: drop to lowest rung
  double startup_buffer_sec = 2.0;  ///< playback starts after this much video
};

/// Outcome of one streaming session.
struct SessionStats {
  double median_megapixels = 0;
  std::string_view median_rendition;
  double mean_download_mbps = 0;   ///< as "stats for nerds" reports
  double mean_buffer_sec = 0;      ///< buffer health
  double min_buffer_sec = 0;
  double dropped_frame_frac = 0;   ///< dropped / total frames
  double stall_sec = 0;            ///< rebuffering wall time
  int n_stalls = 0;
  std::vector<double> buffer_series;  ///< buffer level after each segment
};

/// Plays the test video over `path` and reports the session statistics.
SessionStats play_session(const transport::PathProfile& path, stats::Rng& rng,
                          const PlayerOptions& options = PlayerOptions{});

}  // namespace satnet::video
