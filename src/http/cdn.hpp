// CDN edge model (paper Figure 10a).
//
// Five providers with different edge proximity to SNO PoPs, different
// payload compression, and jsDelivr as a meta-CDN that redirects to the
// best provider at the cost of one extra round trip — the mechanism that
// makes it a win on Starlink and a loss on GEO.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "stats/rng.hpp"
#include "transport/path.hpp"

namespace satnet::http {

/// Which artifact is being fetched (the addon downloads jquery twice).
enum class JqueryVariant { minified, regular };

struct CdnProvider {
  std::string_view name;
  /// Round trip between the subscriber's PoP and this CDN's nearest edge,
  /// ms (Fastly peers directly at PoPs; StackPath's footprint is thinner).
  double edge_rtt_ms = 10.0;
  /// Payload bytes served for jquery.min.js / jquery.js (compression
  /// varies by provider; Cloudflare serves the smallest bodies).
  std::uint64_t min_bytes = 32 * 1024;
  std::uint64_t regular_bytes = 87 * 1024;
  /// Meta-CDN: resolves to the fastest provider after one extra RTT.
  bool meta = false;
};

/// The five providers measured by the addon.
std::span<const CdnProvider> cdn_providers();
const CdnProvider& find_cdn(std::string_view name);

/// Simulates one jquery fetch through `cdn` for a subscriber whose access
/// path is `access` (RTT up to the PoP). Includes TCP+TLS setup and the
/// meta-CDN redirect when applicable. Returns elapsed milliseconds.
double cdn_fetch_ms(const CdnProvider& cdn, JqueryVariant variant,
                    const transport::PathProfile& access, stats::Rng& rng);

}  // namespace satnet::http
