// HTTP/1.1 and HTTP/2 page-load simulation (paper Figure 10b).
//
// HTTP/1.1 opens up to six parallel connections per host and serializes
// objects on each (no pipelining): a page of N tiny objects costs about
// N/6 round trips — catastrophic at GEO latency. HTTP/2 multiplexes every
// object of a host onto one connection, so the cost collapses to the
// transfer time of the total byte count. Both loaders share one TCP
// round-evolution model so the comparison isolates protocol structure.
#pragma once

#include <cstdint>

#include "http/page.hpp"
#include "stats/rng.hpp"
#include "transport/path.hpp"

namespace satnet::http {

enum class HttpVersion { h1, h2 };

struct LoaderOptions {
  int h1_connections_per_host = 6;
  /// TCP + TLS 1.3 connection setup cost, in round trips.
  double handshake_rtts = 2.0;
  /// Page-load watchdog (the addon aborts at ~60 s).
  double timeout_ms = 60000.0;
};

struct PageLoadResult {
  double plt_ms = 0;  ///< onload time (clamped to timeout when timed out)
  bool timed_out = false;
  std::size_t connections_opened = 0;
  std::size_t objects_fetched = 0;
};

PageLoadResult load_page(const WebPage& page, HttpVersion version,
                         const transport::PathProfile& path, stats::Rng& rng,
                         const LoaderOptions& options = LoaderOptions{});

}  // namespace satnet::http
