#include "http/loader.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <vector>

namespace satnet::http {

namespace {

constexpr double kMss = 1460.0;
constexpr double kMinRtoMs = 1000.0;

/// Per-connection transport state carried across objects.
struct Conn {
  double cwnd = 10.0;
  double free_at_ms = 0.0;  ///< when this connection can take the next object
};

double sample_rtt(const transport::PathProfile& path, stats::Rng& rng) {
  return path.base_rtt_ms + std::abs(rng.normal(0.0, path.jitter_ms));
}

/// Time to move `bytes` over a connection whose window is `cwnd`,
/// advancing `cwnd` (slow-start / congestion-avoidance) and applying the
/// path's loss and handoff processes. Includes the request round trip.
double object_time_ms(std::uint64_t bytes, double& cwnd,
                      const transport::PathProfile& path, stats::Rng& rng) {
  double elapsed = sample_rtt(path, rng);  // request + first response bytes
  double remaining = static_cast<double>(bytes) / kMss - cwnd;
  const double loss = path.pep ? path.ground_loss : path.sat_loss + path.ground_loss;

  while (remaining > 0.0) {
    const double rtt = sample_rtt(path, rng);
    const double sent = std::min(cwnd, remaining + cwnd);  // window's worth
    // Random loss over this round's packets.
    if (loss > 0.0 && rng.chance(std::min(0.8, sent * loss))) {
      elapsed += kMinRtoMs;  // small objects recover via RTO more often
      cwnd = std::max(2.0, cwnd / 2.0);
    }
    // Handoff while the transfer is in flight.
    if (path.handoff_rate_hz > 0.0 &&
        rng.chance(std::min(1.0, path.handoff_rate_hz * rtt / 1e3))) {
      elapsed += path.handoff_spike_ms;
    }
    elapsed += rtt;
    remaining -= cwnd;
    cwnd = std::min(cwnd * 2.0, 2048.0);  // simplified slow start w/ cap
    // Cap effective window at the path BDP + buffer: beyond that the
    // bottleneck serializes and adds transmission time instead.
    const double bdp = std::max(path.bdp_packets(kMss), 2.0);
    if (cwnd > bdp) {
      const double excess_bytes = (cwnd - bdp) * kMss;
      elapsed += excess_bytes * 8.0 / (path.bottleneck_mbps * 1e6) * 1e3;
      cwnd = bdp * (1.0 + std::min(path.buffer_bdp, 1.0));
    }
  }
  return elapsed;
}

double handshake_ms(const transport::PathProfile& path, double rtts, stats::Rng& rng) {
  double total = 0.0;
  for (int i = 0; i < static_cast<int>(rtts + 0.5); ++i) total += sample_rtt(path, rng);
  return total;
}

}  // namespace

PageLoadResult load_page(const WebPage& page, HttpVersion version,
                         const transport::PathProfile& path, stats::Rng& rng,
                         const LoaderOptions& options) {
  PageLoadResult result;

  // Root document on a fresh connection.
  Conn root_conn;
  double t = handshake_ms(path, options.handshake_rtts, rng);
  ++result.connections_opened;
  t += object_time_ms(page.root.bytes, root_conn.cwnd, path, rng);
  ++result.objects_fetched;

  // Group subresources by host.
  std::map<std::string, std::vector<const WebObject*>> by_host;
  for (const auto& o : page.subresources) by_host[o.host].push_back(&o);

  double finish = t;
  for (const auto& [host, objects] : by_host) {
    if (version == HttpVersion::h2) {
      // One multiplexed connection: all objects stream concurrently, so
      // the completion time is the transfer time of the total bytes.
      std::uint64_t total = 0;
      for (const auto* o : objects) total += o->bytes;
      Conn conn;
      // Reuse the root connection for the root host.
      double start = t;
      if (host != page.root.host) {
        start += handshake_ms(path, options.handshake_rtts, rng);
        ++result.connections_opened;
      } else {
        conn = root_conn;
      }
      const double done = start + object_time_ms(total, conn.cwnd, path, rng);
      finish = std::max(finish, done);
      result.objects_fetched += objects.size();
    } else {
      // HTTP/1.1: a small pool of connections, objects serialized on each.
      const int pool_size =
          std::min<int>(options.h1_connections_per_host, static_cast<int>(objects.size()));
      std::vector<Conn> pool(static_cast<std::size_t>(pool_size));
      for (auto& c : pool) {
        c.free_at_ms = t + handshake_ms(path, options.handshake_rtts, rng);
        ++result.connections_opened;
      }
      if (host == page.root.host && !pool.empty()) {
        pool[0] = root_conn;
        pool[0].free_at_ms = t;  // already warm
      }
      for (const auto* o : objects) {
        // Next object goes to the earliest-free connection.
        auto* conn = &pool[0];
        for (auto& c : pool) {
          if (c.free_at_ms < conn->free_at_ms) conn = &c;
        }
        conn->free_at_ms += object_time_ms(o->bytes, conn->cwnd, path, rng);
        ++result.objects_fetched;
        if (conn->free_at_ms > options.timeout_ms) break;  // watchdog will fire
      }
      for (const auto& c : pool) finish = std::max(finish, c.free_at_ms);
    }
  }

  result.plt_ms = finish;
  if (result.plt_ms > options.timeout_ms) {
    result.plt_ms = options.timeout_ms;
    result.timed_out = true;
  }
  return result;
}

}  // namespace satnet::http
