#include "http/page.hpp"

namespace satnet::http {

std::uint64_t WebPage::total_bytes() const {
  std::uint64_t total = root.bytes;
  for (const auto& o : subresources) total += o.bytes;
  return total;
}

WebPage akamai_demo_page() {
  WebPage page;
  page.name = "akamai-demo";
  page.root = {"demo.akamai.com", 48 * 1024};
  page.subresources.reserve(360);
  for (int i = 0; i < 360; ++i) {
    // 1.7 KB image tiles, all from the same host.
    page.subresources.push_back({"demo.akamai.com", 1700});
  }
  return page;
}

WebPage news_page() {
  WebPage page;
  page.name = "news-site";
  page.root = {"www.example-news.com", 120 * 1024};
  const struct {
    const char* host;
    std::uint64_t bytes;
    int count;
  } groups[] = {
      {"www.example-news.com", 35 * 1024, 18},   // article images
      {"static.example-news.com", 90 * 1024, 6}, // JS bundles
      {"static.example-news.com", 40 * 1024, 4}, // CSS
      {"cdn.adnetwork.example", 25 * 1024, 10},  // ads
      {"fonts.example", 60 * 1024, 3},           // webfonts
  };
  for (const auto& g : groups) {
    for (int i = 0; i < g.count; ++i) page.subresources.push_back({g.host, g.bytes});
  }
  return page;
}

}  // namespace satnet::http
