// Web page model and the Akamai H1/H2 demo pages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace satnet::http {

/// One fetchable object on a page.
struct WebObject {
  std::string host;         ///< origin hostname (connection pooling key)
  std::uint64_t bytes = 0;
};

/// A page: a root document plus its subresources.
struct WebPage {
  std::string name;
  WebObject root;
  std::vector<WebObject> subresources;

  std::uint64_t total_bytes() const;
  std::size_t object_count() const { return 1 + subresources.size(); }
};

/// The Akamai HTTP/1.1-vs-HTTP/2 demo page: a small HTML document pulling
/// ~360 tiny image tiles from a single host — the worst case for
/// unpipelined HTTP/1.1 and the best case for multiplexing.
WebPage akamai_demo_page();

/// A more typical news-site page: a few hosts, mixed object sizes.
WebPage news_page();

}  // namespace satnet::http
