#include "http/cdn.hpp"

#include <array>
#include <stdexcept>

#include "transport/tcp.hpp"

namespace satnet::http {

namespace {

// Edge RTTs are from the subscriber's PoP. Body sizes follow the paper's
// observations: Cloudflare compresses best (28 KB / 71 KB); the others
// serve 31-33 KB / 86-89 KB.
constexpr std::array kProviders = {
    CdnProvider{"cloudflare", 9.0, 28 * 1024, 71 * 1024, false},
    CdnProvider{"google", 12.0, 32 * 1024, 87 * 1024, false},
    CdnProvider{"jsdelivr", 2.0, 31 * 1024, 86 * 1024, true},
    CdnProvider{"stackpath", 24.0, 33 * 1024, 89 * 1024, false},
    CdnProvider{"fastly", 2.0, 31 * 1024, 86 * 1024, false},
};

}  // namespace

std::span<const CdnProvider> cdn_providers() { return kProviders; }

const CdnProvider& find_cdn(std::string_view name) {
  for (const auto& p : kProviders) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown CDN: " + std::string(name));
}

double cdn_fetch_ms(const CdnProvider& cdn, JqueryVariant variant,
                    const transport::PathProfile& access, stats::Rng& rng) {
  transport::PathProfile path = access;
  double extra = 0.0;
  const CdnProvider* serving = &cdn;
  if (cdn.meta) {
    // jsDelivr probes and redirects to the best backing CDN (Fastly in
    // the paper's data): one additional round trip on the full path.
    extra += access.base_rtt_ms + cdn.edge_rtt_ms;
    serving = &find_cdn("fastly");
  }
  path.base_rtt_ms = access.base_rtt_ms + serving->edge_rtt_ms;
  const std::uint64_t bytes =
      variant == JqueryVariant::minified ? serving->min_bytes : serving->regular_bytes;
  // 1 RTT TCP + 1 RTT TLS 1.3 handshake, then the transfer.
  return extra + transport::fetch_time_ms(path, bytes, /*handshake_rtts=*/2.0, rng);
}

}  // namespace satnet::http
