// Campaign-scoped epoch timeline: precompute constellation access state
// once, replay it everywhere as pure lookups.
//
// PR 5's access-interval index made each geometry query cheap; the
// timeline removes the query from the campaign hot path entirely. Every
// campaign layer's access schedule is a pure function of its config —
// mlab's test draws and ripe's probe rounds come from fork_stable
// streams, so a pre-pass can replay the exact draws the shards will make
// and hand the full set of (terminal, time) queries to
// EpochTimeline::ensure(). ensure() materializes every serving decision
// and access sample once, in parallel on runtime::ThreadPool with a
// deterministic slot-per-key merge, into sorted SoA arrays; after that
// AccessNetwork::sample() and serving_sat_at_epoch() are binary-search
// replays. Anything not covered falls back to the PR 5 index (and
// ultimately the exact cone-prefilter sweep), so the timeline is
// value-transparent by construction: campaign output is byte-identical
// with the timeline on, off (--no-timeline), or loaded from disk — the
// golden suite pins exactly that equivalence.
//
// Fault-plan coherence reuses PR 5's era partitioning instead of
// flushing: the snapshot stores the era boundaries it was built under
// (PoP override edges plus fault-plan outage/storm edges) and, per era,
// a hash of the fault events active inside it. Installing or removing a
// plan invalidates exactly the eras whose boundary structure or active
// set changed — those lookups fall back and are counted — while the
// serving layer (pure geometry, fault-independent) and every untouched
// era keep replaying. Persistence lives in src/io/timeline_io.{hpp,cpp}:
// the same arrays, mmap-able, little-endian, stamped and checksummed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/constellation.hpp"

namespace satnet::orbit {

struct AccessConfig;
struct AccessSample;
class AccessNetwork;

/// Process-wide ablation switch (--no-timeline). Checked per query;
/// flipping it mid-run is safe (installed timelines simply stop being
/// consulted) but is meant for whole-run A/B comparisons.
bool timeline_enabled();
void set_timeline_enabled(bool enabled);

/// Identity of an access network for timeline keying: a hash over every
/// config field that feeds sample values (PoPs, gateways, overrides,
/// elevation mask, scheduling overhead, reconfig cadence) plus the
/// constellation's shell parameters. Networks with equal hashes answer
/// every query identically, so a snapshot built against one is valid
/// for the other (ripe's standalone Starlink network shares the world's
/// snapshot this way). Pass nullptr for GEO fleets.
std::uint64_t access_identity_hash(const AccessConfig& config,
                                   const Constellation* constellation);

/// One planned access query: a terminal asking for the path at t_sec.
struct TimelineQuery {
  geo::GeoPoint terminal;
  double t_sec = 0;
};

/// An immutable, campaign-scoped snapshot of access state for one
/// network identity. Two sorted SoA layers:
///  * serving layer, keyed (lat, lon, epoch): the packed serving
///    satellite at a reconfiguration epoch, kNoSat for outage. Pure
///    geometry — fault-independent, never invalidated.
///  * sample layer, keyed (lat, lon, epoch, era): the full AccessSample
///    value (latency components, PoP, gateway). Valid only while the
///    era's fault environment matches the stored era key.
/// Keys are the raw IEEE-754 bit patterns of the doubles, ordered as
/// unsigned integers — any strict total order works as long as build
/// and lookup agree, and bit patterns avoid -0.0/NaN pitfalls.
class EpochTimeline {
 public:
  /// Packed serving-satellite sentinel: terminal sees no satellite.
  static constexpr std::uint32_t kNoSat = 0xFFFFFFFFu;

  /// Owned SoA storage (cold builds and tests). Loaded snapshots view an
  /// mmap'ed file through the same spans instead of owning vectors.
  struct Arrays {
    double interval_sec = 0;
    std::vector<double> static_boundaries;  ///< PoP override edges
    std::vector<double> boundaries;         ///< static + fault edges, sorted
    std::vector<std::uint64_t> era_keys;    ///< boundaries.size() + 1 hashes
    // Serving layer, sorted by (lat, lon, epoch) bit patterns.
    std::vector<std::uint64_t> s_lat, s_lon, s_epoch;
    std::vector<std::uint32_t> s_sat;
    // Sample layer, sorted by (lat, lon, epoch, era).
    std::vector<std::uint64_t> m_lat, m_lon, m_epoch;
    std::vector<std::uint32_t> m_era, m_sat, m_popgw;  ///< popgw = pop<<16 | gw
    std::vector<std::uint64_t> m_up, m_down, m_backhaul, m_sched, m_oneway;
  };

  /// Read-only view of the SoA arrays, backed either by an Arrays heap
  /// block or by a file mapping (see backing in the span constructor).
  struct View {
    std::span<const std::uint64_t> s_lat, s_lon, s_epoch;
    std::span<const std::uint32_t> s_sat;
    std::span<const std::uint64_t> m_lat, m_lon, m_epoch;
    std::span<const std::uint32_t> m_era, m_sat, m_popgw;
    std::span<const std::uint64_t> m_up, m_down, m_backhaul, m_sched, m_oneway;
  };

  /// Owning constructor (cold builds).
  EpochTimeline(std::uint64_t identity, Arrays arrays);
  /// Span constructor (loader): `backing` keeps the viewed memory alive
  /// for the snapshot's lifetime (typically an mmap'ed file).
  EpochTimeline(std::uint64_t identity, double interval_sec,
                std::vector<double> static_boundaries, std::vector<double> boundaries,
                std::vector<std::uint64_t> era_keys, View view,
                std::shared_ptr<const void> backing);
  ~EpochTimeline();

  EpochTimeline(const EpochTimeline&) = delete;
  EpochTimeline& operator=(const EpochTimeline&) = delete;

  std::uint64_t identity() const { return identity_; }
  double interval_sec() const { return interval_sec_; }
  const std::vector<double>& static_boundaries() const { return static_boundaries_; }
  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<std::uint64_t>& era_keys() const { return era_keys_; }
  const View& view() const { return view_; }
  std::size_t serving_size() const { return view_.s_lat.size(); }
  std::size_t sample_size() const { return view_.m_lat.size(); }
  /// Payload bytes across both layers (what build/io counters report).
  std::size_t byte_size() const;

  enum class ServingReplay {
    miss,     ///< epoch not covered: caller falls back to the index
    outage,   ///< covered, no visible satellite
    serving,  ///< covered, *out holds the serving satellite id
  };
  /// Serving satellite at a reconfiguration epoch. Fault-independent.
  ServingReplay replay_serving(const geo::GeoPoint& user, double epoch_sec,
                               SatId* out) const;

  /// Full access sample at time t (epoch already resolved by the
  /// caller). Returns false — and counts a fallback — when the key is
  /// not covered or when t's era no longer matches the fault
  /// environment the snapshot was built under.
  bool replay_sample(const geo::GeoPoint& user, double t_sec, double epoch_sec,
                     AccessSample* out) const;

  /// SatId <-> packed u32 (shell | plane | index, 10 bits each).
  static std::uint32_t pack_sat(const SatId& id);
  static SatId unpack_sat(std::uint32_t packed);

  /// Materializes every serving decision and sample the queries need
  /// that the installed snapshot (if any) does not already cover, in
  /// parallel on runtime::ThreadPool (`threads` as in campaign configs:
  /// 0 = hardware), then installs the merged snapshot. Byte-identical
  /// result at any thread count: each missing key computes into its own
  /// slot and the merge is by sorted key order. No-ops for GEO networks,
  /// disabled timelines, and fully covered query sets.
  static void ensure(const AccessNetwork& net, std::vector<TimelineQuery> queries,
                     unsigned threads);

  /// The installed snapshot for a network identity, or nullptr. The
  /// pointer stays valid for the process lifetime (snapshots are
  /// retired, never destroyed — the fault::Hook install pattern).
  static const EpochTimeline* find(std::uint64_t identity);
  /// Installs (or replaces) the snapshot for timeline->identity().
  static void install(std::shared_ptr<const EpochTimeline> timeline);
  /// Every installed snapshot, sorted by identity (for --timeline-out).
  static std::vector<std::shared_ptr<const EpochTimeline>> installed();
  /// Uninstalls everything (tests and benches; retired, not destroyed).
  static void clear_installed();

 private:
  struct Validity;
  Validity& validity_for_thread() const;
  std::uint32_t era_of(double t_sec) const;

  std::uint64_t identity_ = 0;
  std::uint64_t instance_id_ = 0;  ///< process-unique validity-cache key
  double interval_sec_ = 0;
  std::vector<double> static_boundaries_;
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> era_keys_;
  View view_;
  std::shared_ptr<const void> backing_;
};

/// End-of-run observability roll-up over the timeline.* counters:
/// replay hit/fallback (hit ratio guarded against zero lookups), build
/// cost, and file load stats. Empty string when the timeline never did
/// anything — callers can print unconditionally.
std::string timeline_summary_line();

}  // namespace satnet::orbit
