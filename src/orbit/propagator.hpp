// Propagator interface: Walker-circular and SGP4 ephemeris backends,
// plus the structure-of-arrays batch kernel.
//
// The closed-form Walker mode is the fast exact default and stays
// bit-identical to the historical Constellation::position arithmetic
// (walker_position below IS that arithmetic, shared so the scalar and
// batch paths cannot drift). The SGP4 mode runs the perturbed
// propagation from sgp4.hpp per satellite, either from a real TLE
// catalog or from synthetic elements derived from Walker shell
// geometry.
//
// BatchPropagator advances the whole constellation per epoch in one
// pass over contiguous per-satellite arrays (precomputed constants,
// vectorizable inner loop). Its geodetic outputs are bit-identical to
// the scalar position() path per satellite — the batch is a throughput
// optimization, never a value change — so best_visible/access_index/
// timeline can consume frames through the same cone-prefilter path.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/sgp4.hpp"
#include "orbit/shell.hpp"

namespace satnet::orbit {

/// Which ephemeris backend a constellation runs on.
enum class OrbitModel { walker, sgp4 };

std::string_view to_string(OrbitModel m);
std::optional<OrbitModel> parse_orbit_model(std::string_view s);

/// Closed-form circular Walker ephemeris for one satellite slot. This is
/// the exact arithmetic (op for op) the repo has always used for
/// Constellation::position; every Walker-mode consumer — scalar, batch,
/// timeline replay — funnels through it so positions agree bit for bit.
geo::GeoPoint walker_position(const Shell& shell, std::size_t plane, std::size_t index,
                              double t_sec);

/// One batch-propagated epoch: geodetic position per satellite in
/// canonical (shell, plane, index) order, plus optional ECEF unit
/// vectors for cone gating. Reused across advance() calls so the
/// steady-state epoch loop does no allocation.
struct BatchFrame {
  double t_sec = 0;
  bool has_unit_vectors = false;
  std::vector<double> lat_deg, lon_deg, alt_km;
  std::vector<double> ux, uy, uz;

  std::size_t size() const { return lat_deg.size(); }
};

class Sgp4Propagator;

/// The SoA batch kernel. Construction precomputes every per-satellite
/// constant the scalar path re-derives per call (plane RAAN, phase
/// angle, inclination trig, mean motion — or the full sgp4init state);
/// advance() then runs one contiguous pass per epoch.
class BatchPropagator {
 public:
  /// Walker-circular batch over the given shells.
  explicit BatchPropagator(const std::vector<Shell>& shells);
  /// SGP4 batch over an initialized catalog (non-owning; the
  /// Sgp4Propagator that owns the states also owns this kernel).
  explicit BatchPropagator(const Sgp4Propagator* sgp4);

  std::size_t size() const { return n_; }

  /// Fills `out` with every satellite's position at t. Geodetic values
  /// are bit-identical to the scalar position() path. Unit vectors are
  /// derived from the geodetic angles when requested.
  void advance(double t_sec, bool unit_vectors, BatchFrame& out) const;

 private:
  void advance_walker(double t_sec, BatchFrame& out) const;

  std::size_t n_ = 0;
  const Sgp4Propagator* sgp4_ = nullptr;  ///< null in Walker mode
  // Walker per-satellite constants (canonical order, contiguous).
  std::vector<double> phase0_, raan_, sin_inc_, cos_inc_, alt_km_;
  // Walker per-shell constants + [start, end) satellite ranges.
  std::vector<double> shell_mean_motion_;
  std::vector<std::size_t> shell_begin_;
};

/// Abstract ephemeris backend: scalar per-satellite queries plus the
/// batch kernel, with the conservative bounds the visibility cone
/// prefilter needs. Satellites are addressed by flat canonical index.
class Propagator {
 public:
  virtual ~Propagator() = default;

  virtual OrbitModel model() const = 0;
  virtual std::size_t size() const = 0;

  /// Geodetic position of satellite `sat` at simulation time t.
  virtual geo::GeoPoint position(std::size_t sat, double t_sec) const = 0;

  /// The batch kernel over this backend's satellites.
  virtual const BatchPropagator& batch() const = 0;

  /// Stable hash of everything that determines positions (elements,
  /// epochs, model) — mixed into access identity hashes so persisted
  /// timelines can never answer for a different ephemeris.
  virtual std::uint64_t ephemeris_hash() const = 0;

  /// Upper bound on any satellite's geodetic altitude (km), for the
  /// visibility cone half-angle: higher altitude means a wider, i.e.
  /// more permissive, gate.
  virtual double max_gate_altitude_km() const = 0;

  /// Upper bound on any satellite's ECEF angular rate (rad/s, Earth
  /// rotation excluded), for slab-level gate widening.
  virtual double max_angular_rate_rad_per_sec() const = 0;
};

/// The closed-form Walker backend.
class WalkerPropagator final : public Propagator {
 public:
  explicit WalkerPropagator(std::vector<Shell> shells);

  OrbitModel model() const override { return OrbitModel::walker; }
  std::size_t size() const override { return batch_.size(); }
  geo::GeoPoint position(std::size_t sat, double t_sec) const override;
  const BatchPropagator& batch() const override { return batch_; }
  std::uint64_t ephemeris_hash() const override { return 0; }
  double max_gate_altitude_km() const override;
  double max_angular_rate_rad_per_sec() const override;

 private:
  std::vector<Shell> shells_;
  /// Flat index -> (shell, plane, index) decomposition helpers.
  std::vector<std::size_t> shell_begin_;
  BatchPropagator batch_;
};

/// The SGP4/SDP4 backend: one initialized Sgp4 state per satellite.
class Sgp4Propagator final : public Propagator {
 public:
  /// Synthetic elements from Walker shell geometry: each slot becomes a
  /// near-circular SGP4 satellite with the slot's inclination, RAAN and
  /// phase, at a fixed canonical epoch (no wall-clock anywhere).
  explicit Sgp4Propagator(const std::vector<Shell>& shells);
  /// A real TLE catalog. Simulation t=0 is the newest element epoch, so
  /// every satellite propagates forward from its own epoch.
  explicit Sgp4Propagator(std::vector<Tle> tles);

  OrbitModel model() const override { return OrbitModel::sgp4; }
  std::size_t size() const override { return sats_.size(); }
  geo::GeoPoint position(std::size_t sat, double t_sec) const override;
  const BatchPropagator& batch() const override { return *batch_; }
  std::uint64_t ephemeris_hash() const override { return ephemeris_hash_; }
  double max_gate_altitude_km() const override { return max_gate_alt_km_; }
  double max_angular_rate_rad_per_sec() const override { return max_rate_rad_s_; }

  /// The catalog (empty for synthetic-element constellations).
  const std::vector<Tle>& tles() const { return tles_; }
  /// Julian date mapped to simulation t=0.
  double epoch_jd() const { return epoch_jd_; }

  /// Batch frame at t with unit vectors, memoized per thread for the
  /// common many-terminals-one-epoch query pattern. The memo is a pure
  /// cache: values always equal a fresh advance() at t.
  const BatchFrame& frame_at(double t_sec) const;

  /// position() with the GMST precomputed by the caller — the batch
  /// kernel hoists it per epoch; gst must equal
  /// gstime(epoch_jd() + t_sec / 86400) for identical output.
  geo::GeoPoint position_at_gst(std::size_t sat, double t_sec, double gst) const;

 private:
  friend class BatchPropagator;
  void finalize();

  std::uint64_t id_ = 0;  ///< process-unique, keys the thread-local memo
  std::vector<Tle> tles_;
  std::vector<Sgp4> sats_;
  std::vector<double> epoch_offset_min_;  ///< sat epoch -> t=0 offset
  double epoch_jd_ = 0;
  std::uint64_t ephemeris_hash_ = 0;
  double max_gate_alt_km_ = 0;
  double max_rate_rad_s_ = 0;
  std::unique_ptr<BatchPropagator> batch_;
};

/// Shared cone-prefilter sweep over Walker shells: visits every slot in
/// canonical (shell, plane, index) order via incremental plane rotations
/// (no per-satellite trig) and invokes `on_candidate(SatId)` for each
/// satellite whose ECEF direction clears the per-shell cos gate. The
/// arithmetic (op order included) is the historical best_visible sweep,
/// shared by best_visible, visible and the access index so their
/// prefilters cannot diverge.
template <typename GateFn, typename CandidateFn>
void walker_cone_sweep(const std::vector<Shell>& shells, double gx, double gy, double gz,
                       double t_sec, GateFn&& gate_for_shell, CandidateFn&& on_candidate) {
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  for (std::size_t s = 0; s < shells.size(); ++s) {
    const Shell& shell = shells[s];
    const double gate = gate_for_shell(s);
    const double inc = geo::deg_to_rad(shell.inclination_deg);
    const double sin_i = std::sin(inc);
    const double cos_i = std::cos(inc);
    const double du = kTwoPi / static_cast<double>(shell.sats_per_plane);
    const double cos_du = std::cos(du);
    const double sin_du = std::sin(du);
    const double motion = shell.mean_motion_rad_per_sec() * t_sec;
    const double phase_step = kTwoPi * static_cast<double>(shell.phase_factor) /
                              static_cast<double>(shell.total_sats());
    for (std::size_t p = 0; p < shell.planes; ++p) {
      const double phi =
          kTwoPi * static_cast<double>(p) / static_cast<double>(shell.planes) -
          kEarthRotationRadPerSec * t_sec;
      const double cos_phi = std::cos(phi);
      const double sin_phi = std::sin(phi);
      const double u0 = phase_step * static_cast<double>(p) + motion;
      double cu = std::cos(u0);
      double su = std::sin(u0);
      for (std::size_t i = 0; i < shell.sats_per_plane; ++i) {
        const double w = cos_i * su;
        const double x = cu * cos_phi - w * sin_phi;
        const double y = cu * sin_phi + w * cos_phi;
        const double z = sin_i * su;
        if (gx * x + gy * y + gz * z >= gate) on_candidate(s, p, i);
        const double cu_next = cu * cos_du - su * sin_du;
        su = su * cos_du + cu * sin_du;
        cu = cu_next;
      }
    }
  }
}

}  // namespace satnet::orbit
