// Satellite access networks: user terminal -> satellite -> gateway ->
// Point of Presence (PoP).
//
// This is the substrate behind every latency number in the study:
//  * LEO/MEO: bent-pipe relay through the serving satellite to a ground
//    gateway, then terrestrial fiber to the assigned PoP. The serving
//    satellite is re-evaluated on a fixed reconfiguration epoch (15 s for
//    Starlink), producing the handoffs that drive LEO jitter.
//  * GEO: fixed dish to a parked satellite, down to the operator teleport,
//    then fiber to the PoP.
// PoP assignment is a *policy* (nearest PoP by default, with explicit
// overrides) so the paper's anomalies — Manila served from Tokyo, Alaska
// from Seattle, the New Zealand Sydney->Auckland migration — are
// first-class scenario inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/constellation.hpp"

namespace satnet::orbit {

class AccessIndex;
class EpochTimeline;

/// A point of presence: where the operator hands traffic to the Internet.
struct Pop {
  std::string name;       ///< rDNS-style code, e.g. "sttlwax1"
  std::string city;       ///< gazetteer city key
  std::string country;    ///< ISO country code
  geo::GeoPoint location;
};

/// A ground station (gateway antenna site) that satellites relay to.
struct Gateway {
  std::string name;
  geo::GeoPoint location;
  std::size_t pop_index = 0;  ///< PoP this gateway backhauls into
};

/// A time-bounded PoP assignment override for a service region, used to
/// script the paper's observed PoP migrations (Fig 7/8b).
struct PopOverride {
  geo::GeoPoint region_center;
  double radius_km = 500.0;
  std::size_t pop_index = 0;
  double from_sec = 0;
  double until_sec = 1e18;
};

/// Configuration of one operator's access network.
struct AccessConfig {
  /// Network name fault plans target ("starlink", "oneweb", "o3b",
  /// "geo-<city>"); "*" events match every network.
  std::string name = "*";
  OrbitClass orbit = OrbitClass::leo;
  double min_elevation_deg = 25.0;
  /// Fixed per-direction MAC/scheduling overhead (TDMA frames, request
  /// grants). Dominates GEO access latency beyond pure propagation.
  double scheduling_overhead_ms = 10.0;
  /// Serving-satellite reconfiguration epoch; <= 0 disables (GEO).
  double reconfig_interval_sec = 15.0;
  std::vector<Pop> pops;
  std::vector<Gateway> gateways;
  std::vector<PopOverride> overrides;
};

/// Result of an access-path evaluation at one instant.
struct AccessSample {
  bool reachable = false;
  double one_way_ms = 0;          ///< user -> PoP one-way latency
  double up_ms = 0;               ///< user -> satellite
  double down_ms = 0;             ///< satellite -> gateway
  double backhaul_ms = 0;         ///< gateway -> PoP fiber
  double scheduling_ms = 0;       ///< MAC overhead component
  std::optional<SatId> serving_sat;
  std::size_t pop_index = 0;
  std::size_t gateway_index = 0;
  bool handoff = false;           ///< serving satellite changed this epoch
};

/// One operator's access network. Thread-compatible; all queries are
/// const except the per-terminal handoff tracking helper.
class AccessNetwork {
 public:
  /// LEO/MEO constructor: the constellation is shared (not owned).
  AccessNetwork(AccessConfig config, std::shared_ptr<const Constellation> constellation);
  /// GEO constructor.
  AccessNetwork(AccessConfig config, GeoFleet fleet);

  const AccessConfig& config() const { return config_; }

  /// PoP serving `user` at time t (honours overrides, else nearest PoP).
  std::size_t assigned_pop(const geo::GeoPoint& user, double t_sec) const;

  /// Evaluates the access path at time t. For LEO/MEO the serving
  /// satellite is the best visible at the *epoch start* (reconfiguration
  /// boundary), matching the scheduled-reallocation behaviour.
  AccessSample sample(const geo::GeoPoint& user, double t_sec) const;

  /// Like sample(), and also flags a handoff by comparing against the
  /// serving satellite of the previous epoch.
  AccessSample sample_with_handoff(const geo::GeoPoint& user, double t_sec) const;

  /// Minimum achievable one-way latency to the assigned PoP (propagation
  /// only, best epoch alignment) — used by analytics as the "floor".
  double floor_one_way_ms(const geo::GeoPoint& user, double t_sec) const;

  /// The network's visibility index (null for GEO) — exposed so tests
  /// can assert the candidate-superset property directly.
  const AccessIndex* access_index() const { return index_.get(); }

  /// Stable identity over everything that feeds sample values (see
  /// access_identity_hash in timeline.hpp) — the key under which an
  /// EpochTimeline snapshot answers for this network.
  std::uint64_t identity_hash() const { return identity_hash_; }

 private:
  friend class AccessIndex;     ///< memoizes build_sample on cache misses
  friend class EpochTimeline;   ///< precomputes serving/sample layers

  std::optional<VisibleSat> serving_sat_at_epoch(const geo::GeoPoint& user,
                                                 double epoch_sec) const;
  /// Reconfiguration interval at time t: the configured interval, divided
  /// by the fault hook's handoff-storm scale when a storm window covers t.
  double effective_reconfig_interval(double t_sec) const;
  std::size_t best_gateway(const geo::GeoPoint& user, const VisibleSat& sat,
                           double t_sec) const;
  AccessSample build_sample(const geo::GeoPoint& user, double t_sec,
                            const std::optional<VisibleSat>& sat) const;

  AccessConfig config_;
  std::shared_ptr<const Constellation> constellation_;  ///< null for GEO
  GeoFleet fleet_;                                      ///< empty for LEO/MEO
  /// Visibility index + epoch memo (LEO/MEO only; null for GEO). Shared
  /// across copies: the index holds only immutable derived data, and its
  /// caches are value-transparent (see access_index.hpp).
  std::shared_ptr<const AccessIndex> index_;
  std::uint64_t identity_hash_ = 0;
};

/// Builds the Starlink-like access network used across benches: PoPs and
/// gateways in North America, Europe, Oceania, Asia and South America,
/// including the scripted PoP migrations from the paper.
AccessNetwork make_starlink_access(std::shared_ptr<const Constellation> constellation);

/// OneWeb-like network: same LEO idea but only two US PoPs, which is what
/// drives its much higher latencies in the paper (Fig 3c, Fig 5).
AccessNetwork make_oneweb_access(std::shared_ptr<const Constellation> constellation,
                                 double scheduling_overhead_ms = 25.0);

/// O3b-like equatorial MEO network with regional teleports.
AccessNetwork make_o3b_access(std::shared_ptr<const Constellation> constellation,
                              double scheduling_overhead_ms = 80.0);

/// Serving-satellite dwell statistics for a terminal: how long each
/// satellite stays serving between reconfigurations — the process behind
/// the paper's LEO jitter findings (Fig 4b) and handoff discussion.
struct HandoffStats {
  std::size_t epochs = 0;        ///< reconfiguration epochs observed
  std::size_t handoffs = 0;      ///< epochs where the satellite changed
  double mean_dwell_sec = 0;     ///< mean over *completed* dwells only
  double max_dwell_sec = 0;      ///< longest completed dwell
  double outage_fraction = 0;    ///< epochs with no serving satellite
  /// Right-censored final dwell: the satellite was still serving when the
  /// observation window closed, so its true dwell is unknown. Counted
  /// here (0 or 1) and excluded from mean/max — folding the truncated
  /// value in biases mean_dwell_sec low for short windows.
  std::size_t censored = 0;
  double censored_dwell_sec = 0;  ///< observed (truncated) length of it
};

/// Measures handoff behaviour over [t_start, t_start + duration).
/// Exactly floor(duration / reconfig_interval) epochs are sampled at
/// t_start + i * interval, whatever the magnitude of t_start.
HandoffStats measure_handoffs(const AccessNetwork& net, const geo::GeoPoint& user,
                              double t_start_sec, double duration_sec);

/// Generic GEO operator bent-pipe network with a teleport/PoP in the
/// given city and a satellite slot at the given longitude.
AccessNetwork make_geo_access(const std::string& teleport_city, double slot_lon_deg,
                              double scheduling_overhead_ms = 60.0);

}  // namespace satnet::orbit
