// Access-interval visibility index with epoch-keyed caching.
//
// Every campaign layer asks the same two questions over and over: "which
// satellite serves this terminal at this reconfiguration epoch?" and
// "what does the full access path look like at this instant?". Both
// reduce to geometry that repeats — terminals cluster in cities, epochs
// quantize onto a coarse grid — so the index amortizes it:
//
//  * Interval layer (pure geometry): for each (1-degree ground cell,
//    time slab) it precomputes the satellites whose visibility interval
//    can intersect the slab, via the same central-angle cone test as
//    Constellation::best_visible widened by the cell half-diagonal and
//    the satellites' angular motion across the slab. The candidate list
//    is a strict superset of the visible set, kept in canonical sweep
//    order, so running the exact ephemeris over it reproduces
//    best_visible bit-for-bit at a fraction of the sweep cost.
//  * Epoch memo: full AccessSamples keyed by (terminal, epoch, era),
//    where an era is the interval between consecutive boundaries of the
//    time-dependent inputs (PoP overrides, fault-plan gateway outages
//    and handoff storms). Within one era a sample is a pure function of
//    (terminal, epoch), so the memo is value-transparent by
//    construction. Fault events therefore partition the key space
//    instead of flushing it: an injected outage invalidates exactly the
//    epochs it covers (they land in a different era), never the index.
//
// Caches are thread-local, keyed by a process-unique index id: no locks,
// no cross-thread coupling, TSan-clean, and — because every cached value
// equals what the uncached computation would produce — campaign output
// stays byte-identical at any thread count, cache on or off. The golden
// suite pins exactly that equivalence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/constellation.hpp"

namespace satnet::orbit {

struct AccessConfig;
struct AccessSample;
class AccessNetwork;

/// Process-wide ablation switch (--no-access-cache). Checked per query;
/// flipping it mid-run is safe (the caches simply stop being consulted)
/// but is meant for whole-run A/B comparisons.
bool access_cache_enabled();
void set_access_cache_enabled(bool enabled);

/// Per-AccessNetwork visibility index + epoch-keyed sample memo. Shared
/// by copies of the owning network (the derived data is immutable); all
/// queries are const and thread-safe via thread-local caches.
class AccessIndex {
 public:
  AccessIndex(const AccessConfig& config,
              std::shared_ptr<const Constellation> constellation);
  ~AccessIndex();

  AccessIndex(const AccessIndex&) = delete;
  AccessIndex& operator=(const AccessIndex&) = delete;

  /// Serving satellite at an epoch boundary. Byte-identical to
  /// constellation->best_visible(user, epoch_sec, min_elevation_deg).
  std::optional<VisibleSat> serving(const geo::GeoPoint& user, double epoch_sec) const;

  /// Full access path at time t (epoch already resolved by the caller).
  /// Byte-identical to net.build_sample(user, t_sec, serving(user, epoch)).
  AccessSample sample(const AccessNetwork& net, const geo::GeoPoint& user, double t_sec,
                      double epoch_sec) const;

  /// Candidate satellites for the (cell, slab) containing (user, epoch),
  /// in canonical sweep order — exposed for tests asserting the superset
  /// property that underlies the equivalence argument.
  std::vector<SatId> candidates_for_test(const geo::GeoPoint& user,
                                         double epoch_sec) const;

 private:
  struct Impl;
  std::unique_ptr<const Impl> impl_;
};

}  // namespace satnet::orbit
