#include "orbit/access_index.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "fault/hook.hpp"
#include "obs/metrics.hpp"
#include "orbit/access.hpp"

namespace satnet::orbit {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Ground cells are 1 degree on a side; the half-diagonal bounds the
/// central angle between any terminal in the cell and the cell center
/// (longitude degrees shrink with latitude, so sqrt(2)/2 degrees is an
/// upper bound at every latitude).
constexpr double kCellDeg = 1.0;
constexpr double kCellHalfDiagRad = 0.7072 * kPi / 180.0;

/// Extra gate slack absorbing the rotation-recurrence rounding of the
/// candidate sweep (same idea as best_visible's 1e-6, widened since the
/// index gate is reused across a whole slab).
constexpr double kRoundingSlackRad = 1e-3;

/// Soft bounds on the thread-local maps; crossing one clears that map
/// (counted as evictions). Generous enough that campaigns never hit
/// them — they exist so pathological query patterns stay bounded.
constexpr std::size_t kMaxMemoEntries = std::size_t{1} << 20;
constexpr std::size_t kMaxSlabEntries = std::size_t{1} << 16;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

struct ServingKey {
  std::uint64_t lat = 0, lon = 0, epoch = 0;
  bool operator==(const ServingKey&) const = default;
};

struct ServingKeyHash {
  std::size_t operator()(const ServingKey& k) const {
    std::uint64_t h = 0x6b5fca5a17a4e3ull;
    hash_mix(h, k.lat);
    hash_mix(h, k.lon);
    hash_mix(h, k.epoch);
    return static_cast<std::size_t>(h);
  }
};

struct SampleKey {
  std::uint64_t lat = 0, lon = 0, epoch = 0;
  std::uint32_t era = 0;
  bool operator==(const SampleKey&) const = default;
};

struct SampleKeyHash {
  std::size_t operator()(const SampleKey& k) const {
    std::uint64_t h = 0x2c4e99d31ab7f09ull;
    hash_mix(h, k.lat);
    hash_mix(h, k.lon);
    hash_mix(h, k.epoch);
    hash_mix(h, k.era);
    return static_cast<std::size_t>(h);
  }
};

struct SlabKey {
  std::int32_t cell_lat = 0, cell_lon = 0;
  std::int64_t slab = 0;
  bool operator==(const SlabKey&) const = default;
};

struct SlabKeyHash {
  std::size_t operator()(const SlabKey& k) const {
    std::uint64_t h = 0x8f1d3acb92e604ull;
    hash_mix(h, static_cast<std::uint32_t>(k.cell_lat));
    hash_mix(h, static_cast<std::uint32_t>(k.cell_lon));
    hash_mix(h, static_cast<std::uint64_t>(k.slab));
    return static_cast<std::size_t>(h);
  }
};

struct Counters {
  obs::Counter& hit;
  obs::Counter& miss;
  obs::Counter& invalidation;
  obs::Counter& slab_build;
  obs::Counter& eviction;
};

Counters& counters() {
  // satlint:allow(shared-state): cached references to thread-safe striped counters; magic-static init is synchronized
  static Counters c{
      obs::MetricsRegistry::global().counter("access.cache.hit",
                                             "access-index memo hits"),
      obs::MetricsRegistry::global().counter("access.cache.miss",
                                             "access-index memo misses"),
      obs::MetricsRegistry::global().counter(
          "access.cache.invalidation",
          "memo entries dropped because a fault plan was (un)installed"),
      obs::MetricsRegistry::global().counter(
          "access.cache.slab_build", "(cell, slab) candidate lists built"),
      obs::MetricsRegistry::global().counter(
          "access.cache.eviction", "memo entries dropped by the size bound"),
  };
  return c;
}

}  // namespace

namespace {

/// A sentinel distinct from every real hook pointer *and* from nullptr,
/// so a fresh cache always refreshes its era boundaries once.
const fault::Hook* uninstalled_sentinel() {
  static const char tag = 0;
  return reinterpret_cast<const fault::Hook*>(&tag);
}

struct ThreadCache {
  const fault::Hook* generation = uninstalled_sentinel();
  std::vector<double> era_boundaries;
  std::unordered_map<SlabKey, std::vector<SatId>, SlabKeyHash> slabs;
  std::unordered_map<ServingKey, std::optional<VisibleSat>, ServingKeyHash> serving;
  std::unordered_map<SampleKey, AccessSample, SampleKeyHash> samples;
};

/// Per-thread caches keyed by a process-unique index id (never a raw
/// pointer: ids are not reused, so a new index at a recycled address
/// cannot alias a dead one's cache).
ThreadCache& thread_cache(std::uint64_t index_id) {
  thread_local std::unordered_map<std::uint64_t, std::unique_ptr<ThreadCache>> caches;
  auto& slot = caches[index_id];
  if (!slot) slot = std::make_unique<ThreadCache>();
  return *slot;
}

std::uint64_t next_index_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

struct AccessIndex::Impl {
  std::uint64_t id = 0;
  std::shared_ptr<const Constellation> constellation;
  double min_elevation_deg = 0;
  double slab_sec = 60.0;
  /// Era boundaries that exist without any fault plan: the PoP override
  /// activation edges. Sorted, deduplicated, finite.
  std::vector<double> static_boundaries;
  /// Per-shell cone gate at slab granularity: cos(theta_max + cell
  /// half-diagonal + motion slack + rounding slack).
  std::vector<double> cos_gate;
  /// Single slab-granularity gate for the SGP4 backend, from the
  /// propagator's conservative altitude/rate bounds (altitude varies per
  /// satellite there, so one worst-case gate covers the catalog).
  double sgp4_cos_gate = 2.0;

  void refresh_eras(ThreadCache& tc, const fault::Hook* hook) const;
  const std::vector<SatId>& slab_candidates(ThreadCache& tc, const SlabKey& key) const;
  std::optional<VisibleSat> serving_cached(ThreadCache& tc, const geo::GeoPoint& user,
                                           double epoch_sec) const;
};

void AccessIndex::Impl::refresh_eras(ThreadCache& tc, const fault::Hook* hook) const {
  if (tc.generation == hook) return;
  tc.generation = hook;
  tc.era_boundaries = static_boundaries;
  if (hook) {
    for (const auto& ev : hook->plan().events()) {
      if (ev.kind != fault::EventKind::gateway_outage &&
          ev.kind != fault::EventKind::handoff_storm) {
        continue;
      }
      tc.era_boundaries.push_back(ev.t_start_sec);
      tc.era_boundaries.push_back(ev.t_end_sec);
    }
    std::sort(tc.era_boundaries.begin(), tc.era_boundaries.end());
    tc.era_boundaries.erase(
        std::unique(tc.era_boundaries.begin(), tc.era_boundaries.end()),
        tc.era_boundaries.end());
  }
  // Era numbering changed, so sample keys from the old plan are stale.
  // The geometry layers (slabs, serving memo) are fault-independent and
  // survive the swap — that is the "never the whole index" contract.
  counters().invalidation.add(tc.samples.size());
  tc.samples.clear();
}

const std::vector<SatId>& AccessIndex::Impl::slab_candidates(ThreadCache& tc,
                                                             const SlabKey& key) const {
  const auto it = tc.slabs.find(key);
  if (it != tc.slabs.end()) return it->second;
  if (tc.slabs.size() >= kMaxSlabEntries) {
    counters().eviction.add(tc.slabs.size());
    tc.slabs.clear();
  }
  counters().slab_build.add(1);

  // One cone sweep per (cell, slab), sampled at the slab midpoint with
  // the gate widened so every satellite that can clear min_elevation_deg
  // from anywhere in the cell at any instant of the slab passes. Same
  // incremental-rotation sweep as Constellation::best_visible, same
  // canonical (shell, plane, index) order.
  const double t_mid = (static_cast<double>(key.slab) + 0.5) * slab_sec;
  const double clat =
      geo::deg_to_rad((static_cast<double>(key.cell_lat) + 0.5) * kCellDeg);
  const double clon =
      geo::deg_to_rad((static_cast<double>(key.cell_lon) + 0.5) * kCellDeg);
  const double gx = std::cos(clat) * std::cos(clon);
  const double gy = std::cos(clat) * std::sin(clon);
  const double gz = std::sin(clat);

  std::vector<SatId> cands;
  if (constellation->model() == OrbitModel::walker) {
    walker_cone_sweep(
        constellation->shells(), gx, gy, gz, t_mid,
        [&](std::size_t s) { return cos_gate[s]; },
        [&](std::size_t s, std::size_t p, std::size_t i) {
          cands.push_back(SatId{s, p, i});
        });
  } else {
    const auto& prop =
        static_cast<const Sgp4Propagator&>(constellation->propagator());
    const BatchFrame& frame = prop.frame_at(t_mid);
    for (std::size_t f = 0; f < frame.size(); ++f) {
      if (gx * frame.ux[f] + gy * frame.uy[f] + gz * frame.uz[f] >= sgp4_cos_gate) {
        cands.push_back(constellation->sat_id_from_flat(f));
      }
    }
  }
  return tc.slabs.emplace(key, std::move(cands)).first->second;
}

std::optional<VisibleSat> AccessIndex::Impl::serving_cached(
    ThreadCache& tc, const geo::GeoPoint& user, double epoch_sec) const {
  // The serving satellite depends only on (lat, lon, epoch): the exact
  // evaluation below zeroes ground altitude exactly as best_visible does.
  const ServingKey key{bits(user.lat_deg), bits(user.lon_deg), bits(epoch_sec)};
  if (const auto it = tc.serving.find(key); it != tc.serving.end()) {
    counters().hit.add(1);
    return it->second;
  }
  counters().miss.add(1);

  const SlabKey slab{
      static_cast<std::int32_t>(std::floor(user.lat_deg / kCellDeg)),
      static_cast<std::int32_t>(std::floor(user.lon_deg / kCellDeg)),
      static_cast<std::int64_t>(std::floor(epoch_sec / slab_sec))};
  const std::vector<SatId>& cands = slab_candidates(tc, slab);

  // Exact ephemeris over the candidate superset, in canonical order with
  // strict-improvement selection: the same operations, on a superset of
  // the same satellites, as best_visible's exact path — so the winner
  // (and every double in it) matches the full sweep bit-for-bit.
  std::optional<VisibleSat> best;
  for (const SatId& id : cands) {
    const geo::GeoPoint pos = constellation->position(id, epoch_sec);
    const double elev = geo::elevation_deg(user, pos);
    if (elev >= min_elevation_deg && (!best || elev > best->elevation_deg)) {
      best = VisibleSat{
          id, pos, elev,
          geo::slant_range_km({user.lat_deg, user.lon_deg, 0.0}, pos)};
    }
  }

  if (tc.serving.size() >= kMaxMemoEntries) {
    counters().eviction.add(tc.serving.size());
    tc.serving.clear();
  }
  tc.serving.emplace(key, best);
  return best;
}

namespace {

std::atomic<bool> g_cache_enabled{true};

}  // namespace

bool access_cache_enabled() {
  return g_cache_enabled.load(std::memory_order_relaxed);
}

void set_access_cache_enabled(bool enabled) {
  g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

AccessIndex::AccessIndex(const AccessConfig& config,
                         std::shared_ptr<const Constellation> constellation) {
  auto impl = std::make_unique<Impl>();
  impl->id = next_index_id();
  impl->constellation = std::move(constellation);
  impl->min_elevation_deg = config.min_elevation_deg;
  // Slabs cover a handful of reconfiguration epochs so one cone sweep
  // amortizes across them without the motion slack ballooning the gate.
  impl->slab_sec = std::max(60.0, 4.0 * config.reconfig_interval_sec);

  for (const auto& ov : config.overrides) {
    impl->static_boundaries.push_back(ov.from_sec);
    impl->static_boundaries.push_back(ov.until_sec);
  }
  std::sort(impl->static_boundaries.begin(), impl->static_boundaries.end());
  impl->static_boundaries.erase(
      std::unique(impl->static_boundaries.begin(), impl->static_boundaries.end()),
      impl->static_boundaries.end());

  const double e_min = geo::deg_to_rad(config.min_elevation_deg);
  for (const Shell& shell : impl->constellation->shells()) {
    const double ratio =
        geo::kEarthRadiusKm / (geo::kEarthRadiusKm + shell.altitude_km);
    const double theta_max =
        std::acos(std::clamp(ratio * std::cos(e_min), -1.0, 1.0)) - e_min;
    // A satellite's ECEF direction is the composition of the orbital
    // rotation and Earth's rotation, so its angular rate is bounded by
    // the sum of the two; half a slab away from the midpoint sample the
    // direction has moved at most rate * slab/2.
    const double motion_slack =
        (shell.mean_motion_rad_per_sec() + kEarthRotationRadPerSec) * impl->slab_sec /
        2.0;
    impl->cos_gate.push_back(
        std::cos(std::min(kPi, theta_max + kCellHalfDiagRad + motion_slack +
                                   kRoundingSlackRad)));
  }
  if (impl->constellation->model() == OrbitModel::sgp4) {
    const Propagator& prop = impl->constellation->propagator();
    const double ratio =
        geo::kEarthRadiusKm / (geo::kEarthRadiusKm + prop.max_gate_altitude_km());
    const double theta_max =
        std::acos(std::clamp(ratio * std::cos(e_min), -1.0, 1.0)) - e_min;
    const double motion_slack =
        (prop.max_angular_rate_rad_per_sec() + kEarthRotationRadPerSec) *
        impl->slab_sec / 2.0;
    impl->sgp4_cos_gate =
        std::cos(std::min(kPi, theta_max + kCellHalfDiagRad + motion_slack +
                                   kRoundingSlackRad));
  }

  impl_ = std::move(impl);
}

AccessIndex::~AccessIndex() = default;

std::optional<VisibleSat> AccessIndex::serving(const geo::GeoPoint& user,
                                               double epoch_sec) const {
  return impl_->serving_cached(thread_cache(impl_->id), user, epoch_sec);
}

AccessSample AccessIndex::sample(const AccessNetwork& net, const geo::GeoPoint& user,
                                 double t_sec, double epoch_sec) const {
  ThreadCache& tc = thread_cache(impl_->id);
  impl_->refresh_eras(tc, fault::Hook::active());

  // Within one era every time-dependent input of build_sample (override
  // windows, gateway outages) is constant, so (lat, lon, epoch, era)
  // fully determines the sample.
  const auto era = static_cast<std::uint32_t>(
      std::upper_bound(tc.era_boundaries.begin(), tc.era_boundaries.end(), t_sec) -
      tc.era_boundaries.begin());
  const SampleKey key{bits(user.lat_deg), bits(user.lon_deg), bits(epoch_sec), era};
  if (const auto it = tc.samples.find(key); it != tc.samples.end()) {
    counters().hit.add(1);
    return it->second;
  }
  counters().miss.add(1);

  const AccessSample s =
      net.build_sample(user, t_sec, impl_->serving_cached(tc, user, epoch_sec));
  if (tc.samples.size() >= kMaxMemoEntries) {
    counters().eviction.add(tc.samples.size());
    tc.samples.clear();
  }
  tc.samples.emplace(key, s);
  return s;
}

std::vector<SatId> AccessIndex::candidates_for_test(const geo::GeoPoint& user,
                                                    double epoch_sec) const {
  ThreadCache& tc = thread_cache(impl_->id);
  const SlabKey slab{
      static_cast<std::int32_t>(std::floor(user.lat_deg / kCellDeg)),
      static_cast<std::int32_t>(std::floor(user.lon_deg / kCellDeg)),
      static_cast<std::int64_t>(std::floor(epoch_sec / impl_->slab_sec))};
  return impl_->slab_candidates(tc, slab);
}

}  // namespace satnet::orbit
