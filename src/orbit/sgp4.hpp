// SGP4/SDP4 perturbed orbit propagation and TLE handling.
//
// A from-scratch port of the standard SGP4 analytic propagator
// (Spacetrack Report #3 as revised by Vallado et al., "Revisiting
// Spacetrack Report #3", AIAA 2006-6753): near-Earth secular J2/J3/J4 +
// drag terms, and the SDP4 deep-space extension (lunar/solar secular and
// periodic perturbations, 12-hour and 24-hour resonance handling) for
// periods >= 225 minutes. WGS-72 gravity constants, matching the
// reference implementation and the published test vectors.
//
// Everything here is deterministic and wall-clock free: epochs come from
// the TLE lines (or a fixed canonical epoch for synthetic elements), and
// simulation time is an offset from the catalog epoch. Angles are
// radians, distances km, time minutes-since-epoch at the propagation
// boundary (the repo-facing wrappers in propagator.hpp speak seconds).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace satnet::orbit {

/// WGS-72 gravity model, the constant set the published SGP4 test
/// vectors were generated with.
struct Sgp4Constants {
  static constexpr double mu = 398600.8;            ///< km^3/s^2
  static constexpr double radiusearthkm = 6378.135; ///< km
  static constexpr double xke = 0.07436691613317342; ///< 60/sqrt(re^3/mu)
  static constexpr double tumin = 1.0 / xke;
  static constexpr double j2 = 0.001082616;
  static constexpr double j3 = -0.00000253881;
  static constexpr double j4 = -0.00000165597;
  static constexpr double j3oj2 = j3 / j2;
};

/// One parsed two-line element set. Fields follow the classical TLE
/// layout; angles are stored in degrees exactly as printed (the
/// propagator converts once at init).
struct Tle {
  std::string name;          ///< optional line-0 name, trimmed
  unsigned satnum = 0;       ///< NORAD catalog number
  char classification = 'U';
  std::string intl_desig;    ///< international designator, trimmed
  int epochyr = 0;           ///< two-digit year as printed (57..99 -> 19xx)
  double epochdays = 0;      ///< day of year + fraction
  double ndot = 0;           ///< rev/day^2 (already /2 per TLE convention undone)
  double nddot = 0;          ///< rev/day^3 (already /6 undone)
  double bstar = 0;          ///< 1/earth-radii
  int ephtype = 0;
  int elnum = 0;
  double inclo_deg = 0;      ///< inclination
  double nodeo_deg = 0;      ///< RAAN
  double ecco = 0;           ///< eccentricity
  double argpo_deg = 0;      ///< argument of perigee
  double mo_deg = 0;         ///< mean anomaly
  double no_revs_per_day = 0;///< mean motion
  int revnum = 0;

  /// Julian date of the element epoch (UT).
  double epoch_jd() const;

  /// Parses a TLE from its two element lines (optionally preceded by a
  /// name line). Validates line numbers, column layout and the mod-10
  /// checksum of both lines; returns nullopt with a reason on failure.
  static std::optional<Tle> parse(const std::string& line1, const std::string& line2,
                                  const std::string& name = "",
                                  std::string* error = nullptr);

  /// Emits the canonical 69-column element lines (with checksums).
  /// parse(emit()) round-trips every field this struct keeps.
  std::string emit_line1() const;
  std::string emit_line2() const;
};

/// Loads every TLE from a file body (2- or 3-line groups, # comments and
/// blank lines skipped). Stops with an error message on the first
/// malformed set so bad catalogs fail loudly rather than drop members.
std::optional<std::vector<Tle>> parse_tle_catalog(const std::string& text,
                                                  std::string* error = nullptr);

/// TLE mod-10 checksum of the first 68 columns.
int tle_checksum(const std::string& line);

/// Greenwich mean sidereal time (rad) for a UT1 Julian date.
double gstime(double jdut1);

/// TEME position/velocity, km and km/s.
struct TemeState {
  std::array<double, 3> r{};
  std::array<double, 3> v{};
};

/// The propagator: init once from elements, then evaluate at any
/// minutes-since-epoch offset. Pure value type — propagation is const,
/// so one initialized Sgp4 is safely shared across threads.
class Sgp4 {
 public:
  /// Initializes from classical elements. `epoch_jd` is the element
  /// epoch as a Julian date; angles in radians; `no_kozai` in rad/min.
  Sgp4(double epoch_jd, double no_kozai, double ecco, double inclo, double nodeo,
       double argpo, double mo, double bstar);
  explicit Sgp4(const Tle& tle);

  /// Propagates to `tsince_min` minutes after the element epoch.
  /// Returns nullopt on the standard SGP4 error conditions (orbital
  /// decay, bad eccentricity, negative semi-latus rectum).
  std::optional<TemeState> propagate(double tsince_min) const;

  bool deep_space() const { return method_ == 'd'; }
  double epoch_jd() const { return epoch_jd_; }
  /// Un-Kozai'd mean motion, rad/min.
  double no_unkozai() const { return no_unkozai_; }
  double ecco() const { return ecco_; }
  /// Semi-major axis in earth radii.
  double a() const { return a_; }

  /// Conservative apogee altitude (km above the repo's spherical Earth
  /// radius) for visibility cone gating — an upper bound on the geodetic
  /// altitude the satellite can reach.
  double gate_apogee_alt_km(double spherical_earth_radius_km) const;

 private:
  void init_near_earth(double epoch1950);
  void init_deep_space(double epoch1950);
  void dpper(double t, bool init, double& ep, double& inclp, double& nodep,
             double& argpp, double& mp) const;

  // Input elements.
  double epoch_jd_ = 0;
  double no_kozai_ = 0, ecco_ = 0, inclo_ = 0, nodeo_ = 0, argpo_ = 0, mo_ = 0;
  double bstar_ = 0;

  // Derived at init (Vallado elsetrec naming, kept verbatim so the math
  // stays auditable against the reference).
  char method_ = 'n';
  int isimp_ = 0;
  double a_ = 0, no_unkozai_ = 0, gsto_ = 0;
  double con41_ = 0, cc1_ = 0, cc4_ = 0, cc5_ = 0, d2_ = 0, d3_ = 0, d4_ = 0;
  double delmo_ = 0, eta_ = 0, argpdot_ = 0, omgcof_ = 0, sinmao_ = 0;
  double t2cof_ = 0, t3cof_ = 0, t4cof_ = 0, t5cof_ = 0;
  double x1mth2_ = 0, x7thm1_ = 0, mdot_ = 0, nodedot_ = 0, xlcof_ = 0;
  double xmcof_ = 0, nodecf_ = 0, aycof_ = 0;

  // Deep-space state (SDP4).
  int irez_ = 0;
  double d2201_ = 0, d2211_ = 0, d3210_ = 0, d3222_ = 0, d4410_ = 0, d4422_ = 0;
  double d5220_ = 0, d5232_ = 0, d5421_ = 0, d5433_ = 0, dedt_ = 0, del1_ = 0;
  double del2_ = 0, del3_ = 0, didt_ = 0, dmdt_ = 0, dnodt_ = 0, domdt_ = 0;
  double e3_ = 0, ee2_ = 0, peo_ = 0, pgho_ = 0, pho_ = 0, pinco_ = 0, plo_ = 0;
  double se2_ = 0, se3_ = 0, sgh2_ = 0, sgh3_ = 0, sgh4_ = 0, sh2_ = 0, sh3_ = 0;
  double si2_ = 0, si3_ = 0, sl2_ = 0, sl3_ = 0, sl4_ = 0, xfact_ = 0, xgh2_ = 0;
  double xgh3_ = 0, xgh4_ = 0, xh2_ = 0, xh3_ = 0, xi2_ = 0, xi3_ = 0, xl2_ = 0;
  double xl3_ = 0, xl4_ = 0, xlamo_ = 0, zmol_ = 0, zmos_ = 0;
};

}  // namespace satnet::orbit
