// Satellite ephemeris for Walker constellations and GEO slots.
//
// Positions are propagated analytically (circular orbits + Earth
// rotation), so a position query at an arbitrary simulation time is O(1)
// per satellite and the whole constellation can be swept per query.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/shell.hpp"

namespace satnet::orbit {

/// Identifies one satellite within a constellation.
struct SatId {
  std::size_t shell = 0;
  std::size_t plane = 0;
  std::size_t index = 0;

  bool operator==(const SatId&) const = default;
};

/// A satellite visible from a ground point.
struct VisibleSat {
  SatId id;
  geo::GeoPoint position;
  double elevation_deg = 0;
  double slant_km = 0;
};

/// A constellation is a set of Walker shells. GEO fleets are modelled
/// separately (GeoFleet) since their satellites are fixed in ECEF.
class Constellation {
 public:
  explicit Constellation(std::vector<Shell> shells) : shells_(std::move(shells)) {}

  const std::vector<Shell>& shells() const { return shells_; }
  std::size_t total_sats() const;

  /// Geodetic position of a satellite at simulation time t (seconds).
  geo::GeoPoint position(const SatId& id, double t_sec) const;

  /// All satellites above `min_elevation_deg` from `ground` at time t.
  std::vector<VisibleSat> visible(const geo::GeoPoint& ground, double t_sec,
                                  double min_elevation_deg) const;

  /// The highest-elevation visible satellite, or nullopt when none.
  std::optional<VisibleSat> best_visible(const geo::GeoPoint& ground, double t_sec,
                                         double min_elevation_deg) const;

 private:
  std::vector<Shell> shells_;
};

/// A fleet of geostationary satellites parked at fixed longitudes.
class GeoFleet {
 public:
  void add_slot(std::string name, double lon_deg);

  struct Slot {
    std::string name;
    double lon_deg = 0;
  };
  const std::vector<Slot>& slots() const { return slots_; }

  geo::GeoPoint position(std::size_t slot) const;

  /// Best slot (max elevation) for a ground point; GEO satellites do not
  /// move, so no time parameter. Returns nullopt when none is above
  /// `min_elevation_deg`.
  std::optional<VisibleSat> best_visible(const geo::GeoPoint& ground,
                                         double min_elevation_deg) const;

 private:
  std::vector<Slot> slots_;
};

}  // namespace satnet::orbit
