// Satellite ephemeris for Walker constellations and GEO slots.
//
// Positions come from a pluggable Propagator backend (propagator.hpp):
// the closed-form Walker-circular mode (O(1) per query, the fast exact
// default — bit-identical to the historical arithmetic) or SGP4/SDP4
// perturbed propagation (synthetic elements from Walker geometry, or a
// real TLE catalog). Visibility queries prefilter with a central-angle
// cone either way, so the whole constellation can be swept per query.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "orbit/propagator.hpp"
#include "orbit/shell.hpp"

namespace satnet::orbit {

/// Sentinel shell index marking a GEO fleet satellite. GEO slots are not
/// Walker shells, so their ids must never collide with shell 0 of a
/// Walker constellation in consumers that mix fleets.
inline constexpr std::size_t kGeoShellIndex = static_cast<std::size_t>(-1);

/// Identifies one satellite within a constellation.
struct SatId {
  std::size_t shell = 0;
  std::size_t plane = 0;
  std::size_t index = 0;

  bool operator==(const SatId&) const = default;

  /// True for ids minted by GeoFleet (sentinel shell index).
  constexpr bool is_geo() const { return shell == kGeoShellIndex; }
};

/// A satellite visible from a ground point.
struct VisibleSat {
  SatId id;
  geo::GeoPoint position;
  double elevation_deg = 0;
  double slant_km = 0;
};

/// A constellation is a set of Walker shells propagated by one of the
/// ephemeris backends. GEO fleets are modelled separately (GeoFleet)
/// since their satellites are fixed in ECEF.
class Constellation {
 public:
  /// Walker-circular backend (the historical default).
  explicit Constellation(std::vector<Shell> shells);
  /// Same shells on the chosen backend: OrbitModel::sgp4 derives
  /// near-circular SGP4 elements from the Walker geometry.
  Constellation(std::vector<Shell> shells, OrbitModel model);
  /// SGP4 backend over a real TLE catalog. SatIds live in one synthetic
  /// shell {0, 0, i} in catalog order.
  static Constellation from_tles(std::vector<Tle> tles);

  const std::vector<Shell>& shells() const { return shells_; }
  std::size_t total_sats() const;

  OrbitModel model() const { return propagator_->model(); }
  const Propagator& propagator() const { return *propagator_; }
  /// 0 for Walker (positions are a pure function of the shells, which
  /// identity hashes already cover); the element hash for SGP4.
  std::uint64_t ephemeris_hash() const { return propagator_->ephemeris_hash(); }

  /// Flat canonical index of a satellite (shell-major, then plane, then
  /// in-plane index) — the order batch frames are laid out in.
  std::size_t flat_index(const SatId& id) const;
  /// Inverse of flat_index.
  SatId sat_id_from_flat(std::size_t flat) const;

  /// Geodetic position of a satellite at simulation time t (seconds).
  geo::GeoPoint position(const SatId& id, double t_sec) const;

  /// All satellites above `min_elevation_deg` from `ground` at time t.
  std::vector<VisibleSat> visible(const geo::GeoPoint& ground, double t_sec,
                                  double min_elevation_deg) const;

  /// The highest-elevation visible satellite, or nullopt when none.
  std::optional<VisibleSat> best_visible(const geo::GeoPoint& ground, double t_sec,
                                         double min_elevation_deg) const;

 private:
  Constellation(std::vector<Shell> shells, std::shared_ptr<const Propagator> prop);

  std::vector<Shell> shells_;
  std::vector<std::size_t> shell_begin_;  ///< flat-index offsets per shell
  /// Shared, immutable backend: copies of a Constellation share the
  /// (potentially large) precomputed SGP4 state.
  std::shared_ptr<const Propagator> propagator_;
};

/// A fleet of geostationary satellites parked at fixed longitudes.
class GeoFleet {
 public:
  void add_slot(std::string name, double lon_deg);

  struct Slot {
    std::string name;
    double lon_deg = 0;
  };
  const std::vector<Slot>& slots() const { return slots_; }

  geo::GeoPoint position(std::size_t slot) const;

  /// Best slot (max elevation) for a ground point; GEO satellites do not
  /// move, so no time parameter. Returns nullopt when none is above
  /// `min_elevation_deg`. Result ids carry the kGeoShellIndex sentinel
  /// shell (id.is_geo()), with `index` the slot number.
  std::optional<VisibleSat> best_visible(const geo::GeoPoint& ground,
                                         double min_elevation_deg) const;

 private:
  std::vector<Slot> slots_;
};

}  // namespace satnet::orbit
