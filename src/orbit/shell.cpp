#include "orbit/shell.hpp"

#include <cmath>

#include "geo/geodesy.hpp"

namespace satnet::orbit {

std::string to_string(OrbitClass c) {
  switch (c) {
    case OrbitClass::leo: return "LEO";
    case OrbitClass::meo: return "MEO";
    case OrbitClass::geo: return "GEO";
  }
  return "?";
}

double Shell::period_sec() const {
  const double a = geo::kEarthRadiusKm + altitude_km;
  return 2.0 * 3.14159265358979323846 * std::sqrt(a * a * a / kMuEarth);
}

double Shell::mean_motion_rad_per_sec() const {
  return 2.0 * 3.14159265358979323846 / period_sec();
}

Shell starlink_shell1() {
  return Shell{"starlink-shell1", 550.0, 53.0, 72, 22, 17};
}

Shell starlink_polar_shell() {
  return Shell{"starlink-polar", 560.0, 97.6, 6, 30, 1};
}

std::vector<Shell> starlink_shells() {
  return {starlink_shell1(), starlink_polar_shell()};
}

Shell oneweb_shell() {
  return Shell{"oneweb", 1200.0, 87.9, 18, 36, 1};
}

Shell o3b_shell() {
  return Shell{"o3b-meo", 8062.0, 0.1, 1, 20, 0};
}

}  // namespace satnet::orbit
