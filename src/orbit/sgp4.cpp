#include "orbit/sgp4.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace satnet::orbit {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;
constexpr double kDeg2Rad = kPi / 180.0;

double fmod_twopi(double a) {
  a = std::fmod(a, kTwoPi);
  return a;
}

/// Julian date of 00:00 UT, January 1 of `year` (Gregorian).
double jday_jan1(int year) {
  return 367.0 * year - std::floor(7.0 * (year + std::floor(10.0 / 12.0)) * 0.25) +
         std::floor(275.0 / 9.0) + 1.0 + 1721013.5;
}

}  // namespace

double gstime(double jdut1) {
  const double tut1 = (jdut1 - 2451545.0) / 36525.0;
  double temp = -6.2e-6 * tut1 * tut1 * tut1 + 0.093104 * tut1 * tut1 +
                (876600.0 * 3600.0 + 8640184.812866) * tut1 + 67310.54841;
  temp = std::fmod(temp * kDeg2Rad / 240.0, kTwoPi);
  if (temp < 0.0) temp += kTwoPi;
  return temp;
}

double Tle::epoch_jd() const {
  const int year = epochyr < 57 ? 2000 + epochyr : 1900 + epochyr;
  // Day-of-year 1.0 is Jan 1, 00:00.
  return jday_jan1(year) - 1.0 + epochdays;
}

int tle_checksum(const std::string& line) {
  int sum = 0;
  const std::size_t n = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = line[i];
    if (c >= '0' && c <= '9') sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

namespace {

std::string trimmed(std::string s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Substring by 1-indexed inclusive TLE column numbers.
std::string cols(const std::string& line, int from, int to) {
  return line.substr(static_cast<std::size_t>(from - 1),
                     static_cast<std::size_t>(to - from + 1));
}

bool parse_double(const std::string& field, double& out) {
  const std::string t = trimmed(field);
  if (t.empty()) {
    out = 0.0;
    return true;
  }
  char* end = nullptr;
  out = std::strtod(t.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_int(const std::string& field, int& out) {
  const std::string t = trimmed(field);
  if (t.empty()) {
    out = 0;
    return true;
  }
  char* end = nullptr;
  const long v = std::strtol(t.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

/// TLE "implied exponent" field, e.g. " 13844-3" -> 0.13844e-3.
bool parse_exp_field(const std::string& field, double& out) {
  std::string t = field;
  while (!t.empty() && t.front() == ' ') t.erase(t.begin());
  if (t.empty()) {
    out = 0.0;
    return true;
  }
  double sign = 1.0;
  if (t.front() == '-') {
    sign = -1.0;
    t.erase(t.begin());
  } else if (t.front() == '+') {
    t.erase(t.begin());
  }
  // Split off the trailing signed single-digit exponent.
  if (t.size() < 2) return false;
  const std::size_t es = t.find_last_of("+-");
  if (es == std::string::npos || es == 0) return false;
  const std::string mant = t.substr(0, es);
  const std::string exps = t.substr(es);
  int expv = 0;
  if (!parse_int(exps, expv)) return false;
  for (const char c : mant) {
    if (c < '0' || c > '9') return false;
  }
  double m = 0.0;
  if (!parse_double(mant, m)) return false;
  out = sign * m * std::pow(10.0, expv - static_cast<int>(mant.size()));
  return true;
}

std::string pad_to(std::string s, std::size_t n) {
  if (s.size() < n) s.append(n - s.size(), ' ');
  return s;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

bool parse_into(Tle& t, const std::string& raw1, const std::string& raw2,
                std::string* error) {
  const std::string l1 = pad_to(raw1, 69);
  const std::string l2 = pad_to(raw2, 69);
  if (l1[0] != '1') return fail(error, "line 1 does not start with '1'");
  if (l2[0] != '2') return fail(error, "line 2 does not start with '2'");
  for (const auto* l : {&l1, &l2}) {
    const char ck = (*l)[68];
    if (ck < '0' || ck > '9') return fail(error, "missing checksum digit");
    if (ck - '0' != tle_checksum(*l)) return fail(error, "checksum mismatch");
  }
  int satnum1 = 0, satnum2 = 0;
  if (!parse_int(cols(l1, 3, 7), satnum1) || !parse_int(cols(l2, 3, 7), satnum2)) {
    return fail(error, "bad catalog number");
  }
  if (satnum1 != satnum2) return fail(error, "catalog numbers differ between lines");
  t.satnum = static_cast<unsigned>(satnum1);
  t.classification = l1[7] == ' ' ? 'U' : l1[7];
  t.intl_desig = trimmed(cols(l1, 10, 17));
  if (!parse_int(cols(l1, 19, 20), t.epochyr)) return fail(error, "bad epoch year");
  if (!parse_double(cols(l1, 21, 32), t.epochdays)) return fail(error, "bad epoch day");
  if (t.epochdays < 1.0 || t.epochdays >= 367.0) return fail(error, "epoch day out of range");
  if (!parse_double(cols(l1, 34, 43), t.ndot)) return fail(error, "bad ndot");
  if (!parse_exp_field(cols(l1, 45, 52), t.nddot)) return fail(error, "bad nddot");
  if (!parse_exp_field(cols(l1, 54, 61), t.bstar)) return fail(error, "bad bstar");
  if (!parse_int(cols(l1, 63, 63), t.ephtype)) return fail(error, "bad ephemeris type");
  if (!parse_int(cols(l1, 65, 68), t.elnum)) return fail(error, "bad element number");

  if (!parse_double(cols(l2, 9, 16), t.inclo_deg)) return fail(error, "bad inclination");
  if (!parse_double(cols(l2, 18, 25), t.nodeo_deg)) return fail(error, "bad RAAN");
  double eccdigits = 0.0;
  if (!parse_double(cols(l2, 27, 33), eccdigits)) return fail(error, "bad eccentricity");
  t.ecco = eccdigits * 1e-7;
  if (!parse_double(cols(l2, 35, 42), t.argpo_deg)) return fail(error, "bad arg of perigee");
  if (!parse_double(cols(l2, 44, 51), t.mo_deg)) return fail(error, "bad mean anomaly");
  if (!parse_double(cols(l2, 53, 63), t.no_revs_per_day)) return fail(error, "bad mean motion");
  if (t.no_revs_per_day <= 0.0) return fail(error, "non-positive mean motion");
  if (!parse_int(cols(l2, 64, 68), t.revnum)) return fail(error, "bad rev number");
  return true;
}

/// Formats v as the 8-column implied-exponent TLE field, " NNNNN+E".
std::string fmt_exp_field(double v) {
  char buf[32];
  if (v == 0.0) return " 00000+0";
  const char sign = v < 0.0 ? '-' : ' ';
  double av = std::fabs(v);
  int exp10 = static_cast<int>(std::floor(std::log10(av))) + 1;
  long mant = std::lround(av * std::pow(10.0, 5 - exp10));
  if (mant >= 100000) {
    mant /= 10;
    ++exp10;
  }
  std::snprintf(buf, sizeof(buf), "%c%05ld%+d", sign, mant, exp10);
  return buf;
}

/// Formats ndot as the 10-column signed fraction field, " .00073094".
std::string fmt_ndot(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.8f", std::fabs(v));  // "0.00073094"
  std::string s(buf);
  if (!s.empty() && s.front() == '0') s.erase(s.begin());  // ".00073094"
  std::string out = (v < 0.0 ? "-" : " ") + s;
  while (out.size() < 10) out.insert(out.begin(), ' ');
  if (out.size() > 10) out = out.substr(out.size() - 10);
  return out;
}

std::string with_checksum(std::string line) {
  line = pad_to(std::move(line), 68);
  line += static_cast<char>('0' + tle_checksum(line));
  return line;
}

}  // namespace

std::optional<Tle> Tle::parse(const std::string& line1, const std::string& line2,
                              const std::string& name, std::string* error) {
  Tle t;
  t.name = trimmed(name);
  if (!parse_into(t, line1, line2, error)) return std::nullopt;
  return t;
}

std::string Tle::emit_line1() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "1 %05u%c %-8s %02d%012.8f %s %s %s %d %4d",
                satnum, classification, intl_desig.c_str(), epochyr, epochdays,
                fmt_ndot(ndot).c_str(), fmt_exp_field(nddot).c_str(),
                fmt_exp_field(bstar).c_str(), ephtype, elnum);
  return with_checksum(buf);
}

std::string Tle::emit_line2() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "2 %05u %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5d",
                satnum, inclo_deg, nodeo_deg, std::lround(ecco * 1e7), argpo_deg,
                mo_deg, no_revs_per_day, revnum);
  return with_checksum(buf);
}

std::optional<std::vector<Tle>> parse_tle_catalog(const std::string& text,
                                                  std::string* error) {
  std::vector<Tle> out;
  std::istringstream in(text);
  std::string line, pending_name;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    const std::string t = trimmed(line);
    if (t.empty() || t.front() == '#') continue;
    lines.push_back(line);
  }
  for (std::size_t i = 0; i < lines.size();) {
    const std::string t = trimmed(lines[i]);
    if (t.size() > 1 && t[0] == '1' && t[1] == ' ') {
      if (i + 1 >= lines.size()) {
        if (error != nullptr) *error = "dangling line 1 at end of catalog";
        return std::nullopt;
      }
      std::string why;
      auto tle = Tle::parse(lines[i], lines[i + 1], pending_name, &why);
      if (!tle.has_value()) {
        if (error != nullptr) {
          *error = "TLE " + std::to_string(out.size()) + ": " + why;
        }
        return std::nullopt;
      }
      out.push_back(std::move(*tle));
      pending_name.clear();
      i += 2;
    } else {
      pending_name = t;
      ++i;
    }
  }
  if (out.empty()) {
    if (error != nullptr) *error = "no TLEs found";
    return std::nullopt;
  }
  return out;
}

// ---------------------------------------------------------------------------
// SGP4 / SDP4 propagation (Vallado's sgp4unit structure, WGS-72).
// ---------------------------------------------------------------------------

namespace {

/// Everything dscom computes that dsinit and the periodic-coefficient
/// assignment consume (lunar/solar geometry at epoch).
struct DsCom {
  double sinim = 0, cosim = 0, sinomm = 0, cosomm = 0, snodm = 0, cnodm = 0;
  double day = 0, em = 0, emsq = 0, gam = 0, rtemsq = 0;
  double s1 = 0, s2 = 0, s3 = 0, s4 = 0, s5 = 0, s6 = 0, s7 = 0;
  double ss1 = 0, ss2 = 0, ss3 = 0, ss4 = 0, ss5 = 0, ss6 = 0, ss7 = 0;
  double sz1 = 0, sz2 = 0, sz3 = 0;
  double sz11 = 0, sz12 = 0, sz13 = 0, sz21 = 0, sz22 = 0, sz23 = 0;
  double sz31 = 0, sz32 = 0, sz33 = 0;
  double z1 = 0, z2 = 0, z3 = 0;
  double z11 = 0, z12 = 0, z13 = 0, z21 = 0, z22 = 0, z23 = 0;
  double z31 = 0, z32 = 0, z33 = 0;
  double nm = 0, zmol = 0, zmos = 0;
  double e3 = 0, ee2 = 0, se2 = 0, se3 = 0, sgh2 = 0, sgh3 = 0, sgh4 = 0;
  double sh2 = 0, sh3 = 0, si2 = 0, si3 = 0, sl2 = 0, sl3 = 0, sl4 = 0;
  double xgh2 = 0, xgh3 = 0, xgh4 = 0, xh2 = 0, xh3 = 0, xi2 = 0, xi3 = 0;
  double xl2 = 0, xl3 = 0, xl4 = 0;
};

DsCom dscom(double epoch, double ep, double argpp, double tc, double inclp,
            double nodep, double np) {
  constexpr double zes = 0.01675, zel = 0.05490;
  constexpr double c1ss = 2.9864797e-6, c1l = 4.7968065e-7;
  constexpr double zsinis = 0.39785416, zcosis = 0.91744867;
  constexpr double zcosgs = 0.1945905, zsings = -0.98088458;

  DsCom d;
  d.nm = np;
  d.em = ep;
  d.snodm = std::sin(nodep);
  d.cnodm = std::cos(nodep);
  d.sinomm = std::sin(argpp);
  d.cosomm = std::cos(argpp);
  d.sinim = std::sin(inclp);
  d.cosim = std::cos(inclp);
  d.emsq = d.em * d.em;
  const double betasq = 1.0 - d.emsq;
  d.rtemsq = std::sqrt(betasq);

  d.day = epoch + 18261.5 + tc / 1440.0;
  const double xnodce = std::fmod(4.5236020 - 9.2422029e-4 * d.day, kTwoPi);
  const double stem = std::sin(xnodce);
  const double ctem = std::cos(xnodce);
  const double zcosil = 0.91375164 - 0.03568096 * ctem;
  const double zsinil = std::sqrt(1.0 - zcosil * zcosil);
  const double zsinhl = 0.089683511 * stem / zsinil;
  const double zcoshl = std::sqrt(1.0 - zsinhl * zsinhl);
  d.gam = 5.8351514 + 0.0019443680 * d.day;
  double zx = 0.39785416 * stem / zsinil;
  const double zy = zcoshl * ctem + 0.91744867 * zsinhl * stem;
  zx = std::atan2(zx, zy);
  zx = d.gam + zx - xnodce;
  const double zcosgl = std::cos(zx);
  const double zsingl = std::sin(zx);

  double zcosg = zcosgs, zsing = zsings, zcosi = zcosis, zsini = zsinis;
  double zcosh = d.cnodm, zsinh = d.snodm;
  double cc = c1ss;
  const double xnoi = 1.0 / d.nm;

  double s1 = 0, s2 = 0, s3 = 0, s4 = 0, s5 = 0, s6 = 0, s7 = 0;
  double z1 = 0, z2 = 0, z3 = 0, z11 = 0, z12 = 0, z13 = 0;
  double z21 = 0, z22 = 0, z23 = 0, z31 = 0, z32 = 0, z33 = 0;
  for (int lsflg = 1; lsflg <= 2; ++lsflg) {
    const double a1 = zcosg * zcosh + zsing * zcosi * zsinh;
    const double a3 = -zsing * zcosh + zcosg * zcosi * zsinh;
    const double a7 = -zcosg * zsinh + zsing * zcosi * zcosh;
    const double a8 = zsing * zsini;
    const double a9 = zsing * zsinh + zcosg * zcosi * zcosh;
    const double a10 = zcosg * zsini;
    const double a2 = d.cosim * a7 + d.sinim * a8;
    const double a4 = d.cosim * a9 + d.sinim * a10;
    const double a5 = -d.sinim * a7 + d.cosim * a8;
    const double a6 = -d.sinim * a9 + d.cosim * a10;

    const double x1 = a1 * d.cosomm + a2 * d.sinomm;
    const double x2 = a3 * d.cosomm + a4 * d.sinomm;
    const double x3 = -a1 * d.sinomm + a2 * d.cosomm;
    const double x4 = -a3 * d.sinomm + a4 * d.cosomm;
    const double x5 = a5 * d.sinomm;
    const double x6 = a6 * d.sinomm;
    const double x7 = a5 * d.cosomm;
    const double x8 = a6 * d.cosomm;

    z31 = 12.0 * x1 * x1 - 3.0 * x3 * x3;
    z32 = 24.0 * x1 * x2 - 6.0 * x3 * x4;
    z33 = 12.0 * x2 * x2 - 3.0 * x4 * x4;
    z1 = 3.0 * (a1 * a1 + a2 * a2) + z31 * d.emsq;
    z2 = 6.0 * (a1 * a3 + a2 * a4) + z32 * d.emsq;
    z3 = 3.0 * (a3 * a3 + a4 * a4) + z33 * d.emsq;
    z11 = -6.0 * a1 * a5 + d.emsq * (-24.0 * x1 * x7 - 6.0 * x3 * x5);
    z12 = -6.0 * (a1 * a6 + a3 * a5) +
          d.emsq * (-24.0 * (x2 * x7 + x1 * x8) - 6.0 * (x3 * x6 + x4 * x5));
    z13 = -6.0 * a3 * a6 + d.emsq * (-24.0 * x2 * x8 - 6.0 * x4 * x6);
    z21 = 6.0 * a2 * a5 + d.emsq * (24.0 * x1 * x5 - 6.0 * x3 * x7);
    z22 = 6.0 * (a4 * a5 + a2 * a6) +
          d.emsq * (24.0 * (x2 * x5 + x1 * x6) - 6.0 * (x4 * x7 + x3 * x8));
    z23 = 6.0 * a4 * a6 + d.emsq * (24.0 * x2 * x6 - 6.0 * x4 * x8);
    z1 = z1 + z1 + betasq * z31;
    z2 = z2 + z2 + betasq * z32;
    z3 = z3 + z3 + betasq * z33;
    s3 = cc * xnoi;
    s2 = -0.5 * s3 / d.rtemsq;
    s4 = s3 * d.rtemsq;
    s1 = -15.0 * d.em * s4;
    s5 = x1 * x3 + x2 * x4;
    s6 = x2 * x3 + x1 * x4;
    s7 = x2 * x4 - x1 * x3;

    if (lsflg == 1) {
      d.ss1 = s1; d.ss2 = s2; d.ss3 = s3; d.ss4 = s4; d.ss5 = s5; d.ss6 = s6; d.ss7 = s7;
      d.sz1 = z1; d.sz2 = z2; d.sz3 = z3;
      d.sz11 = z11; d.sz12 = z12; d.sz13 = z13;
      d.sz21 = z21; d.sz22 = z22; d.sz23 = z23;
      d.sz31 = z31; d.sz32 = z32; d.sz33 = z33;
      zcosg = zcosgl; zsing = zsingl; zcosi = zcosil; zsini = zsinil;
      zcosh = zcoshl * d.cnodm + zsinhl * d.snodm;
      zsinh = d.snodm * zcoshl - d.cnodm * zsinhl;
      cc = c1l;
    }
  }
  d.s1 = s1; d.s2 = s2; d.s3 = s3; d.s4 = s4; d.s5 = s5; d.s6 = s6; d.s7 = s7;
  d.z1 = z1; d.z2 = z2; d.z3 = z3;
  d.z11 = z11; d.z12 = z12; d.z13 = z13;
  d.z21 = z21; d.z22 = z22; d.z23 = z23;
  d.z31 = z31; d.z32 = z32; d.z33 = z33;

  d.zmol = std::fmod(4.7199672 + 0.22997150 * d.day - d.gam, kTwoPi);
  if (d.zmol < 0.0) d.zmol += kTwoPi;
  d.zmos = std::fmod(6.2565837 + 0.017201977 * d.day, kTwoPi);
  if (d.zmos < 0.0) d.zmos += kTwoPi;

  // Solar periodic coefficients.
  d.se2 = 2.0 * d.ss1 * d.ss6;
  d.se3 = 2.0 * d.ss1 * d.ss7;
  d.si2 = 2.0 * d.ss2 * d.sz12;
  d.si3 = 2.0 * d.ss2 * (d.sz13 - d.sz11);
  d.sl2 = -2.0 * d.ss3 * d.sz2;
  d.sl3 = -2.0 * d.ss3 * (d.sz3 - d.sz1);
  d.sl4 = -2.0 * d.ss3 * (-21.0 - 9.0 * d.emsq) * zes;
  d.sgh2 = 2.0 * d.ss4 * d.sz32;
  d.sgh3 = 2.0 * d.ss4 * (d.sz33 - d.sz31);
  d.sgh4 = -18.0 * d.ss4 * zes;
  d.sh2 = -2.0 * d.ss2 * d.sz22;
  d.sh3 = -2.0 * d.ss2 * (d.sz23 - d.sz21);
  // Lunar periodic coefficients.
  d.ee2 = 2.0 * d.s1 * d.s6;
  d.e3 = 2.0 * d.s1 * d.s7;
  d.xi2 = 2.0 * d.s2 * d.z12;
  d.xi3 = 2.0 * d.s2 * (d.z13 - d.z11);
  d.xl2 = -2.0 * d.s3 * d.z2;
  d.xl3 = -2.0 * d.s3 * (d.z3 - d.z1);
  d.xl4 = -2.0 * d.s3 * (-21.0 - 9.0 * d.emsq) * zel;
  d.xgh2 = 2.0 * d.s4 * d.z32;
  d.xgh3 = 2.0 * d.s4 * (d.z33 - d.z31);
  d.xgh4 = -18.0 * d.s4 * zel;
  d.xh2 = -2.0 * d.s2 * d.z22;
  d.xh3 = -2.0 * d.s2 * (d.z23 - d.z21);
  return d;
}

}  // namespace

void Sgp4::dpper(double t, bool init, double& ep, double& inclp, double& nodep,
                 double& argpp, double& mp) const {
  constexpr double zns = 1.19459e-5, zes = 0.01675;
  constexpr double znl = 1.5835218e-4, zel = 0.05490;

  // Solar periodics.
  double zm = init ? zmos_ : zmos_ + zns * t;
  double zf = zm + 2.0 * zes * std::sin(zm);
  double sinzf = std::sin(zf);
  double f2 = 0.5 * sinzf * sinzf - 0.25;
  double f3 = -0.5 * sinzf * std::cos(zf);
  const double ses = se2_ * f2 + se3_ * f3;
  const double sis = si2_ * f2 + si3_ * f3;
  const double sls = sl2_ * f2 + sl3_ * f3 + sl4_ * sinzf;
  const double sghs = sgh2_ * f2 + sgh3_ * f3 + sgh4_ * sinzf;
  const double shs = sh2_ * f2 + sh3_ * f3;
  // Lunar periodics.
  zm = init ? zmol_ : zmol_ + znl * t;
  zf = zm + 2.0 * zel * std::sin(zm);
  sinzf = std::sin(zf);
  f2 = 0.5 * sinzf * sinzf - 0.25;
  f3 = -0.5 * sinzf * std::cos(zf);
  const double sel = ee2_ * f2 + e3_ * f3;
  const double sil = xi2_ * f2 + xi3_ * f3;
  const double sll = xl2_ * f2 + xl3_ * f3 + xl4_ * sinzf;
  const double sghl = xgh2_ * f2 + xgh3_ * f3 + xgh4_ * sinzf;
  const double shll = xh2_ * f2 + xh3_ * f3;

  double pe = ses + sel;
  double pinc = sis + sil;
  double pl = sls + sll;
  double pgh = sghs + sghl;
  double ph = shs + shll;

  if (init) return;
  pe -= peo_;
  pinc -= pinco_;
  pl -= plo_;
  pgh -= pgho_;
  ph -= pho_;
  inclp += pinc;
  ep += pe;
  const double sinip = std::sin(inclp);
  const double cosip = std::cos(inclp);
  if (inclp >= 0.2) {
    ph /= sinip;
    pgh -= cosip * ph;
    argpp += pgh;
    nodep += ph;
    mp += pl;
  } else {
    // Lyddane modification for low inclination.
    const double sinop = std::sin(nodep);
    const double cosop = std::cos(nodep);
    double alfdp = sinip * sinop;
    double betdp = sinip * cosop;
    const double dalf = ph * cosop + pinc * cosip * sinop;
    const double dbet = -ph * sinop + pinc * cosip * cosop;
    alfdp += dalf;
    betdp += dbet;
    nodep = fmod_twopi(nodep);
    if (nodep < 0.0) nodep += kTwoPi;
    double xls = mp + argpp + cosip * nodep;
    const double dls = pl + pgh - pinc * nodep * sinip;
    xls += dls;
    const double xnoh = nodep;
    nodep = std::atan2(alfdp, betdp);
    if (nodep < 0.0) nodep += kTwoPi;
    if (std::fabs(xnoh - nodep) > kPi) {
      if (nodep < xnoh) {
        nodep += kTwoPi;
      } else {
        nodep -= kTwoPi;
      }
    }
    mp += pl;
    argpp = xls - mp - cosip * nodep;
  }
}

Sgp4::Sgp4(const Tle& tle)
    : Sgp4(tle.epoch_jd(), tle.no_revs_per_day * kTwoPi / 1440.0, tle.ecco,
           tle.inclo_deg * kDeg2Rad, tle.nodeo_deg * kDeg2Rad, tle.argpo_deg * kDeg2Rad,
           tle.mo_deg * kDeg2Rad, tle.bstar) {}

Sgp4::Sgp4(double epoch_jd, double no_kozai, double ecco, double inclo, double nodeo,
           double argpo, double mo, double bstar)
    : epoch_jd_(epoch_jd),
      no_kozai_(no_kozai),
      ecco_(ecco),
      inclo_(inclo),
      nodeo_(nodeo),
      argpo_(argpo),
      mo_(mo),
      bstar_(bstar) {
  init_near_earth(epoch_jd - 2433281.5);
}

void Sgp4::init_near_earth(double epoch1950) {
  using C = Sgp4Constants;
  constexpr double x2o3 = 2.0 / 3.0;

  // --- initl: un-Kozai the mean motion. ---
  const double eccsq = ecco_ * ecco_;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double cosio = std::cos(inclo_);
  const double cosio2 = cosio * cosio;
  const double ak = std::pow(C::xke / no_kozai_, x2o3);
  const double d1 = 0.75 * C::j2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  no_unkozai_ = no_kozai_ / (1.0 + del);
  const double ao = std::pow(C::xke / no_unkozai_, x2o3);
  const double sinio = std::sin(inclo_);
  const double po = ao * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  con41_ = -con42 - cosio2 - cosio2;
  const double posq = po * po;
  const double rp = ao * (1.0 - ecco_);
  a_ = ao;
  gsto_ = gstime(epoch1950 + 2433281.5);
  method_ = 'n';

  // --- sgp4init body. ---
  const double ss = 78.0 / C::radiusearthkm + 1.0;
  const double qzms2ttemp = (120.0 - 78.0) / C::radiusearthkm;
  const double qzms2t = qzms2ttemp * qzms2ttemp * qzms2ttemp * qzms2ttemp;

  isimp_ = 0;
  if (rp < 220.0 / C::radiusearthkm + 1.0) isimp_ = 1;
  double sfour = ss;
  double qzms24 = qzms2t;
  const double perige = (rp - 1.0) * C::radiusearthkm;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    const double qzms24temp = (120.0 - sfour) / C::radiusearthkm;
    qzms24 = qzms24temp * qzms24temp * qzms24temp * qzms24temp;
    sfour = sfour / C::radiusearthkm + 1.0;
  }
  const double pinvsq = 1.0 / posq;

  const double tsi = 1.0 / (ao - sfour);
  eta_ = ao * ecco_ * tsi;
  const double etasq = eta_ * eta_;
  const double eeta = ecco_ * eta_;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);
  const double cc2 =
      coef1 * no_unkozai_ *
      (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * C::j2 * tsi / psisq * con41_ * (8.0 + 3.0 * etasq * (8.0 + etasq)));
  cc1_ = bstar_ * cc2;
  double cc3 = 0.0;
  if (ecco_ > 1.0e-4) {
    cc3 = -2.0 * coef * tsi * C::j3oj2 * no_unkozai_ * sinio / ecco_;
  }
  x1mth2_ = 1.0 - cosio2;
  cc4_ = 2.0 * no_unkozai_ * coef1 * ao * omeosq *
         (eta_ * (2.0 + 0.5 * etasq) + ecco_ * (0.5 + 2.0 * etasq) -
          C::j2 * tsi / (ao * psisq) *
              (-3.0 * con41_ * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
               0.75 * x1mth2_ * (2.0 * etasq - eeta * (1.0 + etasq)) *
                   std::cos(2.0 * argpo_)));
  cc5_ = 2.0 * coef1 * ao * omeosq * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);
  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * C::j2 * pinvsq * no_unkozai_;
  const double temp2 = 0.5 * temp1 * C::j2 * pinvsq;
  const double temp3 = -0.46875 * C::j4 * pinvsq * pinvsq * no_unkozai_;
  mdot_ = no_unkozai_ + 0.5 * temp1 * rteosq * con41_ +
          0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  argpdot_ = -0.5 * temp1 * con42 +
             0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
             temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  nodedot_ = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                       2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                          cosio;
  omgcof_ = bstar_ * cc3 * std::cos(argpo_);
  xmcof_ = 0.0;
  if (ecco_ > 1.0e-4) xmcof_ = -x2o3 * coef * bstar_ / eeta;
  nodecf_ = 3.5 * omeosq * xhdot1 * cc1_;
  t2cof_ = 1.5 * cc1_;
  if (std::fabs(cosio + 1.0) > 1.5e-12) {
    xlcof_ = -0.25 * C::j3oj2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
  } else {
    xlcof_ = -0.25 * C::j3oj2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12;
  }
  aycof_ = -0.5 * C::j3oj2 * sinio;
  const double delmotemp = 1.0 + eta_ * std::cos(mo_);
  delmo_ = delmotemp * delmotemp * delmotemp;
  sinmao_ = std::sin(mo_);
  x7thm1_ = 7.0 * cosio2 - 1.0;

  if (kTwoPi / no_unkozai_ >= 225.0) {
    method_ = 'd';
    isimp_ = 1;
    init_deep_space(epoch1950);
  }

  if (isimp_ != 1) {
    const double cc1sq = cc1_ * cc1_;
    d2_ = 4.0 * ao * tsi * cc1sq;
    const double temp = d2_ * tsi * cc1_ / 3.0;
    d3_ = (17.0 * ao + sfour) * temp;
    d4_ = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * cc1_;
    t3cof_ = d2_ + 2.0 * cc1sq;
    t4cof_ = 0.25 * (3.0 * d3_ + cc1_ * (12.0 * d2_ + 10.0 * cc1sq));
    t5cof_ = 0.2 * (3.0 * d4_ + 12.0 * cc1_ * d3_ + 6.0 * d2_ * d2_ +
                    15.0 * cc1sq * (2.0 * d2_ + cc1sq));
  }
}

void Sgp4::init_deep_space(double epoch1950) {
  using C = Sgp4Constants;
  constexpr double x2o3 = 2.0 / 3.0;
  constexpr double q22 = 1.7891679e-6, q31 = 2.1460748e-6, q33 = 2.2123015e-7;
  constexpr double root22 = 1.7891679e-6, root44 = 7.3636953e-9, root54 = 2.1765803e-9;
  constexpr double rptim = 4.37526908801129966e-3;  // earth rotation, rad/min
  constexpr double root32 = 3.7393792e-7, root52 = 1.1428639e-7;
  constexpr double znl = 1.5835218e-4, zns = 1.19459e-5;

  const double tc = 0.0;
  const double inclm = inclo_;
  const DsCom d = dscom(epoch1950, ecco_, argpo_, tc, inclo_, nodeo_, no_unkozai_);

  e3_ = d.e3; ee2_ = d.ee2;
  se2_ = d.se2; se3_ = d.se3;
  sgh2_ = d.sgh2; sgh3_ = d.sgh3; sgh4_ = d.sgh4;
  sh2_ = d.sh2; sh3_ = d.sh3;
  si2_ = d.si2; si3_ = d.si3;
  sl2_ = d.sl2; sl3_ = d.sl3; sl4_ = d.sl4;
  xgh2_ = d.xgh2; xgh3_ = d.xgh3; xgh4_ = d.xgh4;
  xh2_ = d.xh2; xh3_ = d.xh3;
  xi2_ = d.xi2; xi3_ = d.xi3;
  xl2_ = d.xl2; xl3_ = d.xl3; xl4_ = d.xl4;
  zmol_ = d.zmol; zmos_ = d.zmos;
  peo_ = 0.0; pinco_ = 0.0; plo_ = 0.0; pgho_ = 0.0; pho_ = 0.0;

  // --- dsinit: secular rates + resonance coefficients. ---
  const double sinim = d.sinim, cosim = d.cosim;
  const double emsq = d.emsq;
  double em = d.em;
  double nm = d.nm;
  const double eccsq = ecco_ * ecco_;

  irez_ = 0;
  if (nm < 0.0052359877 && nm > 0.0034906585) irez_ = 1;
  if (nm >= 8.26e-3 && nm <= 9.24e-3 && em >= 0.5) irez_ = 2;

  // Solar secular rates.
  const double ses = d.ss1 * zns * d.ss5;
  const double sis = d.ss2 * zns * (d.sz11 + d.sz13);
  const double sls = -zns * d.ss3 * (d.sz1 + d.sz3 - 14.0 - 6.0 * emsq);
  const double sghs = d.ss4 * zns * (d.sz31 + d.sz33 - 6.0);
  double shs = -zns * d.ss2 * (d.sz21 + d.sz23);
  if (inclm < 5.2359877e-2 || inclm > kPi - 5.2359877e-2) shs = 0.0;
  if (sinim != 0.0) shs = shs / sinim;
  const double sgs = sghs - cosim * shs;

  // Lunar secular rates.
  dedt_ = ses + d.s1 * znl * d.s5;
  didt_ = sis + d.s2 * znl * (d.z11 + d.z13);
  dmdt_ = sls - znl * d.s3 * (d.z1 + d.z3 - 14.0 - 6.0 * emsq);
  const double sghl = d.s4 * znl * (d.z31 + d.z33 - 6.0);
  double shll = -znl * d.s2 * (d.z21 + d.z23);
  if (inclm < 5.2359877e-2 || inclm > kPi - 5.2359877e-2) shll = 0.0;
  domdt_ = sgs + sghl;
  dnodt_ = shs;
  if (sinim != 0.0) {
    domdt_ -= cosim / sinim * shll;
    dnodt_ += shll / sinim;
  }

  const double theta = std::fmod(gsto_ + tc * rptim, kTwoPi);

  if (irez_ != 0) {
    const double aonv = std::pow(nm / C::xke, x2o3);
    if (irez_ == 2) {
      // Geopotential resonance for 12-hour orbits.
      const double cosisq = cosim * cosim;
      const double emo = em;
      em = ecco_;
      const double emsqo = emsq;
      const double emsq2 = eccsq;
      const double eoc = em * emsq2;
      double g201 = -0.306 - (em - 0.64) * 0.440;
      double g211, g310, g322, g410, g422, g520, g521, g532, g533;
      if (em <= 0.65) {
        g211 = 3.616 - 13.2470 * em + 16.2900 * emsq2;
        g310 = -19.302 + 117.3900 * em - 228.4190 * emsq2 + 156.5910 * eoc;
        g322 = -18.9068 + 109.7927 * em - 214.6334 * emsq2 + 146.5816 * eoc;
        g410 = -41.122 + 242.6940 * em - 471.0940 * emsq2 + 313.9530 * eoc;
        g422 = -146.407 + 841.8800 * em - 1629.014 * emsq2 + 1083.4350 * eoc;
        g520 = -532.114 + 3017.977 * em - 5740.032 * emsq2 + 3708.2760 * eoc;
      } else {
        g211 = -72.099 + 331.819 * em - 508.738 * emsq2 + 266.724 * eoc;
        g310 = -346.844 + 1582.851 * em - 2415.925 * emsq2 + 1246.113 * eoc;
        g322 = -342.585 + 1554.908 * em - 2366.899 * emsq2 + 1215.972 * eoc;
        g410 = -1052.797 + 4758.686 * em - 7193.992 * emsq2 + 3651.957 * eoc;
        g422 = -3581.690 + 16178.110 * em - 24462.770 * emsq2 + 12422.520 * eoc;
        if (em > 0.715) {
          g520 = -5149.66 + 29936.92 * em - 54087.36 * emsq2 + 31324.56 * eoc;
        } else {
          g520 = 1464.74 - 4664.75 * em + 3763.64 * emsq2;
        }
      }
      if (em < 0.7) {
        g533 = -919.22770 + 4988.6100 * em - 9064.7700 * emsq2 + 5542.21 * eoc;
        g521 = -822.71072 + 4568.6173 * em - 8491.4146 * emsq2 + 5337.524 * eoc;
        g532 = -853.66600 + 4690.2500 * em - 8624.7700 * emsq2 + 5341.4 * eoc;
      } else {
        g533 = -37995.780 + 161616.52 * em - 229838.20 * emsq2 + 109377.94 * eoc;
        g521 = -51752.104 + 218913.95 * em - 309468.16 * emsq2 + 146349.42 * eoc;
        g532 = -40023.880 + 170470.89 * em - 242699.48 * emsq2 + 115605.82 * eoc;
      }
      const double sini2 = sinim * sinim;
      const double f220 = 0.75 * (1.0 + 2.0 * cosim + cosisq);
      const double f221 = 1.5 * sini2;
      const double f321 = 1.875 * sinim * (1.0 - 2.0 * cosim - 3.0 * cosisq);
      const double f322 = -1.875 * sinim * (1.0 + 2.0 * cosim - 3.0 * cosisq);
      const double f441 = 35.0 * sini2 * f220;
      const double f442 = 39.3750 * sini2 * sini2;
      const double f522 =
          9.84375 * sinim *
          (sini2 * (1.0 - 2.0 * cosim - 5.0 * cosisq) +
           0.33333333 * (-2.0 + 4.0 * cosim + 6.0 * cosisq));
      const double f523 =
          sinim * (4.92187512 * sini2 * (-2.0 - 4.0 * cosim + 10.0 * cosisq) +
                   6.56250012 * (1.0 + 2.0 * cosim - 3.0 * cosisq));
      const double f542 =
          29.53125 * sinim *
          (2.0 - 8.0 * cosim + cosisq * (-12.0 + 8.0 * cosim + 10.0 * cosisq));
      const double f543 =
          29.53125 * sinim *
          (-2.0 - 8.0 * cosim + cosisq * (12.0 + 8.0 * cosim - 10.0 * cosisq));
      const double xno2 = nm * nm;
      const double ainv2 = aonv * aonv;
      double temp1 = 3.0 * xno2 * ainv2;
      double temp = temp1 * root22;
      d2201_ = temp * f220 * g201;
      d2211_ = temp * f221 * g211;
      temp1 *= aonv;
      temp = temp1 * root32;
      d3210_ = temp * f321 * g310;
      d3222_ = temp * f322 * g322;
      temp1 *= aonv;
      temp = 2.0 * temp1 * root44;
      d4410_ = temp * f441 * g410;
      d4422_ = temp * f442 * g422;
      temp1 *= aonv;
      temp = temp1 * root52;
      d5220_ = temp * f522 * g520;
      d5232_ = temp * f523 * g532;
      temp = 2.0 * temp1 * root54;
      d5421_ = temp * f542 * g521;
      d5433_ = temp * f543 * g533;
      xlamo_ = std::fmod(mo_ + nodeo_ + nodeo_ - theta - theta, kTwoPi);
      xfact_ = mdot_ + dmdt_ + 2.0 * (nodedot_ + dnodt_ - rptim) - no_unkozai_;
      em = emo;
      (void)emsqo;
    }
    if (irez_ == 1) {
      // Synchronous (24-hour) resonance.
      const double g200 = 1.0 + emsq * (-2.5 + 0.8125 * emsq);
      const double g310 = 1.0 + 2.0 * emsq;
      const double g300 = 1.0 + emsq * (-6.0 + 6.60937 * emsq);
      const double f220 = 0.75 * (1.0 + cosim) * (1.0 + cosim);
      const double f311 =
          0.9375 * sinim * sinim * (1.0 + 3.0 * cosim) - 0.75 * (1.0 + cosim);
      double f330 = 1.0 + cosim;
      f330 = 1.875 * f330 * f330 * f330;
      del1_ = 3.0 * nm * nm * aonv * aonv;
      del2_ = 2.0 * del1_ * f220 * g200 * q22;
      del3_ = 3.0 * del1_ * f330 * g300 * q33 * aonv;
      del1_ = del1_ * f311 * g310 * q31 * aonv;
      xlamo_ = std::fmod(mo_ + nodeo_ + argpo_ - theta, kTwoPi);
      xfact_ = mdot_ + (argpdot_ + nodedot_) - rptim + dmdt_ + domdt_ + dnodt_ -
               no_unkozai_;
    }
  }

  // Initialize the (harmless at t=0) periodic contributions.
  double ep = ecco_, inclp = inclo_, nodep = nodeo_, argpp = argpo_, mp = mo_;
  dpper(0.0, /*init=*/true, ep, inclp, nodep, argpp, mp);
}

std::optional<TemeState> Sgp4::propagate(double tsince_min) const {
  using C = Sgp4Constants;
  constexpr double x2o3 = 2.0 / 3.0;
  constexpr double vkmpersec = C::radiusearthkm * C::xke / 60.0;
  const double t = tsince_min;

  // Secular gravity + atmospheric drag.
  const double xmdf = mo_ + mdot_ * t;
  const double argpdf = argpo_ + argpdot_ * t;
  const double nodedf = nodeo_ + nodedot_ * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + nodecf_ * t2;
  double tempa = 1.0 - cc1_ * t;
  double tempe = bstar_ * cc4_ * t;
  double templ = t2cof_ * t2;

  if (isimp_ != 1) {
    const double delomg = omgcof_ * t;
    const double delmtemp = 1.0 + eta_ * std::cos(xmdf);
    const double delm = xmcof_ * (delmtemp * delmtemp * delmtemp - delmo_);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - d2_ * t2 - d3_ * t3 - d4_ * t4;
    tempe = tempe + bstar_ * cc5_ * (std::sin(mm) - sinmao_);
    templ = templ + t3cof_ * t3 + t4 * (t4cof_ + t * t5cof_);
  }

  double nm = no_unkozai_;
  double em = ecco_;
  double inclm = inclo_;

  if (method_ == 'd') {
    // --- dspace: deep-space secular + resonance integration. ---
    constexpr double fasx2 = 0.13130908, fasx4 = 2.8843198, fasx6 = 0.37448087;
    constexpr double g22 = 5.7686396, g32 = 0.95240898, g44 = 1.8014998;
    constexpr double g52 = 1.0508330, g54 = 4.4108898;
    constexpr double rptim = 4.37526908801129966e-3;
    constexpr double stepp = 720.0, stepn = -720.0, step2 = 259200.0;

    const double tc = t;
    const double theta = std::fmod(gsto_ + tc * rptim, kTwoPi);
    em += dedt_ * t;
    inclm += didt_ * t;
    argpm += domdt_ * t;
    nodem += dnodt_ * t;
    mm += dmdt_ * t;
    double dndt = 0.0;

    if (irez_ != 0) {
      // Integrate the resonance terms from the element epoch every call:
      // the reference restarts whenever its cached state is unusable, and
      // an epoch start makes propagation a pure function of (elements, t)
      // — no mutable integrator state, so const + thread-safe. Fixed
      // 720-min Euler steps per the SDP4 spec (|t|/720 of them).
      double atime = 0.0;
      double xni = no_unkozai_;
      double xli = xlamo_;
      const double delt = t > 0.0 ? stepp : stepn;
      double xndt = 0.0, xldot = 0.0, xnddt = 0.0, ft = 0.0;
      bool integrating = true;
      while (integrating) {
        if (irez_ != 2) {
          xndt = del1_ * std::sin(xli - fasx2) + del2_ * std::sin(2.0 * (xli - fasx4)) +
                 del3_ * std::sin(3.0 * (xli - fasx6));
          xldot = xni + xfact_;
          xnddt = del1_ * std::cos(xli - fasx2) +
                  2.0 * del2_ * std::cos(2.0 * (xli - fasx4)) +
                  3.0 * del3_ * std::cos(3.0 * (xli - fasx6));
          xnddt *= xldot;
        } else {
          const double xomi = argpo_ + argpdot_ * atime;
          const double x2omi = xomi + xomi;
          const double x2li = xli + xli;
          xndt = d2201_ * std::sin(x2omi + xli - g22) + d2211_ * std::sin(xli - g22) +
                 d3210_ * std::sin(xomi + xli - g32) +
                 d3222_ * std::sin(-xomi + xli - g32) +
                 d4410_ * std::sin(x2omi + x2li - g44) + d4422_ * std::sin(x2li - g44) +
                 d5220_ * std::sin(xomi + xli - g52) +
                 d5232_ * std::sin(-xomi + xli - g52) +
                 d5421_ * std::sin(xomi + x2li - g54) +
                 d5433_ * std::sin(-xomi + x2li - g54);
          xldot = xni + xfact_;
          xnddt = d2201_ * std::cos(x2omi + xli - g22) + d2211_ * std::cos(xli - g22) +
                  d3210_ * std::cos(xomi + xli - g32) +
                  d3222_ * std::cos(-xomi + xli - g32) +
                  d5220_ * std::cos(xomi + xli - g52) +
                  d5232_ * std::cos(-xomi + xli - g52) +
                  2.0 * (d4410_ * std::cos(x2omi + x2li - g44) +
                         d4422_ * std::cos(x2li - g44) +
                         d5421_ * std::cos(xomi + x2li - g54) +
                         d5433_ * std::cos(-xomi + x2li - g54));
          xnddt *= xldot;
        }
        if (std::fabs(t - atime) >= stepp) {
          xli += xldot * delt + xndt * step2;
          xni += xndt * delt + xnddt * step2;
          atime += delt;
        } else {
          ft = t - atime;
          integrating = false;
        }
      }
      nm = xni + xndt * ft + xnddt * ft * ft * 0.5;
      const double xl = xli + xldot * ft + xndt * ft * ft * 0.5;
      if (irez_ != 1) {
        mm = xl - 2.0 * nodem + 2.0 * theta;
        dndt = nm - no_unkozai_;
      } else {
        mm = xl - nodem - argpm + theta;
        dndt = nm - no_unkozai_;
      }
      nm = no_unkozai_ + dndt;
    }
  }

  if (nm <= 0.0) return std::nullopt;
  const double am = std::pow(C::xke / nm, x2o3) * tempa * tempa;
  nm = C::xke / std::pow(am, 1.5);
  em -= tempe;
  if (em >= 1.0 || em < -0.001) return std::nullopt;
  if (em < 1.0e-6) em = 1.0e-6;
  mm += no_unkozai_ * templ;
  double xlm = mm + argpm + nodem;

  nodem = std::fmod(nodem, kTwoPi);
  argpm = std::fmod(argpm, kTwoPi);
  xlm = std::fmod(xlm, kTwoPi);
  mm = std::fmod(xlm - argpm - nodem, kTwoPi);
  if (mm < 0.0) mm += kTwoPi;

  double ep = em;
  double xincp = inclm;
  double argpp = argpm;
  double nodep = nodem;
  double mp = mm;
  double sinip = std::sin(xincp);
  double cosip = std::cos(xincp);

  double aycof = aycof_;
  double xlcof = xlcof_;
  double con41 = con41_;
  double x1mth2 = x1mth2_;
  double x7thm1 = x7thm1_;
  if (method_ == 'd') {
    dpper(t, /*init=*/false, ep, xincp, nodep, argpp, mp);
    if (xincp < 0.0) {
      xincp = -xincp;
      nodep += kPi;
      argpp -= kPi;
    }
    if (ep < 0.0 || ep > 1.0) return std::nullopt;
    // Re-derive the inclination-dependent long-period coefficients.
    sinip = std::sin(xincp);
    cosip = std::cos(xincp);
    aycof = -0.5 * C::j3oj2 * sinip;
    if (std::fabs(cosip + 1.0) > 1.5e-12) {
      xlcof = -0.25 * C::j3oj2 * sinip * (3.0 + 5.0 * cosip) / (1.0 + cosip);
    } else {
      xlcof = -0.25 * C::j3oj2 * sinip * (3.0 + 5.0 * cosip) / 1.5e-12;
    }
    const double cosisq = cosip * cosip;
    con41 = 3.0 * cosisq - 1.0;
    x1mth2 = 1.0 - cosisq;
    x7thm1 = 7.0 * cosisq - 1.0;
  }

  // Long-period periodics.
  const double axnl = ep * std::cos(argpp);
  double temp = 1.0 / (am * (1.0 - ep * ep));
  const double aynl = ep * std::sin(argpp) + temp * aycof;
  const double xl = mp + argpp + nodep + temp * xlcof * axnl;

  // Kepler's equation.
  const double u = std::fmod(xl - nodep, kTwoPi);
  double eo1 = u;
  double tem5 = 9999.9;
  double sineo1 = 0.0, coseo1 = 0.0;
  int ktr = 1;
  while (std::fabs(tem5) >= 1.0e-12 && ktr <= 10) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
    ++ktr;
  }

  // Short-period preliminary quantities.
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) return std::nullopt;

  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  temp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  temp = 1.0 / pl;
  const double temp1 = 0.5 * C::j2 * temp;
  const double temp2 = temp1 * temp;

  // Short-period periodics.
  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * con41) + 0.5 * temp1 * x1mth2 * cos2u;
  if (mrt < 1.0) return std::nullopt;  // orbital decay
  su -= 0.25 * temp2 * x7thm1 * sin2u;
  const double xnode = nodep + 1.5 * temp2 * cosip * sin2u;
  const double xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
  const double mvt = rdotl - nm * temp1 * x1mth2 * sin2u / C::xke;
  const double rvdot = rvdotl + nm * temp1 * (x1mth2 * cos2u + 1.5 * con41) / C::xke;

  // Orientation vectors.
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const double ux = xmx * sinsu + cnod * cossu;
  const double uy = xmy * sinsu + snod * cossu;
  const double uz = sini * sinsu;
  const double vx = xmx * cossu - cnod * sinsu;
  const double vy = xmy * cossu - snod * sinsu;
  const double vz = sini * cossu;

  TemeState out;
  out.r = {mrt * ux * C::radiusearthkm, mrt * uy * C::radiusearthkm,
           mrt * uz * C::radiusearthkm};
  out.v = {(mvt * ux + rvdot * vx) * vkmpersec, (mvt * uy + rvdot * vy) * vkmpersec,
           (mvt * uz + rvdot * vz) * vkmpersec};
  return out;
}

double Sgp4::gate_apogee_alt_km(double spherical_earth_radius_km) const {
  // Kepler apogee radius from the un-Kozai'd semi-major axis, plus a
  // margin for the short/long-period and resonance excursions SGP4
  // layers on top (well under 25 km for every catalog we model).
  const double apogee_radius_km = a_ * (1.0 + ecco_) * Sgp4Constants::radiusearthkm;
  return apogee_radius_km - spherical_earth_radius_km + 25.0;
}

}  // namespace satnet::orbit
