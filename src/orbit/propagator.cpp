#include "orbit/propagator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace satnet::orbit {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

double wrap_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0) a += kTwoPi;
  return a;
}

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// A satellite whose SGP4 propagation errored (decay, bad eccentricity)
/// is parked deterministically far below ground: finite everywhere, and
/// never above any horizon, so campaigns degrade to "unreachable"
/// instead of propagating NaNs.
constexpr geo::GeoPoint kDecayedSentinel{0.0, 0.0, -1000.0};

std::uint64_t next_propagator_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// geo::rad_to_deg's exact expression (same constant, same op order),
/// inlined so the batch inner loop doesn't pay an out-of-line call per
/// output angle. Bit-identical to the library function by construction.
inline double to_deg_inline(double rad) { return rad * 180.0 / kPi; }

/// geo::deg_to_rad's exact expression, inlined for the same reason.
inline double to_rad_inline(double deg) { return deg * kPi / 180.0; }

/// wrap_angle with the fmod bypassed for small quotients — the common
/// case in the epoch loop, where angles sit within a few turns of
/// [0, 2pi). Bit-identical to wrap_angle, because fmod is always exact
/// and every shortcut below computes the same exact remainder:
///  * [0, 2pi): fmod returns the argument unchanged.
///  * [2pi, 4pi): the exact remainder is a - 2pi, and by Sterbenz's
///    lemma (2pi <= a <= 2*2pi) the floating subtraction is exact.
///  * [4pi, 8pi): 4pi is the exact double 2*kTwoPi (power-of-two
///    multiple), a - 4pi is Sterbenz-exact there, and reducing by an
///    exact multiple of the modulus preserves the remainder — so the
///    result falls through to the two cases above.
///  * [-2pi, 0): fmod returns the argument (dividend sign), and the
///    `a + 2pi` below is the same rounded addition wrap_angle performs.
///    Strict bound: at exactly -2pi, fmod yields -0.0 un-adjusted (the
///    sign check sees -0.0 >= 0), which the fallback reproduces.
/// Anything further out falls back to the real thing.
inline double wrap_angle_fast(double a) {
  if (a >= 0.0) {
    if (a >= 2.0 * kTwoPi) {
      if (a >= 4.0 * kTwoPi) return wrap_angle(a);
      a -= 2.0 * kTwoPi;
    }
    if (a < kTwoPi) return a;
    return a - kTwoPi;
  }
  if (a > -kTwoPi) return a + kTwoPi;
  return wrap_angle(a);
}

}  // namespace

std::string_view to_string(OrbitModel m) {
  switch (m) {
    case OrbitModel::walker: return "walker";
    case OrbitModel::sgp4: return "sgp4";
  }
  return "?";
}

std::optional<OrbitModel> parse_orbit_model(std::string_view s) {
  if (s == "walker") return OrbitModel::walker;
  if (s == "sgp4") return OrbitModel::sgp4;
  return std::nullopt;
}

geo::GeoPoint walker_position(const Shell& shell, std::size_t plane, std::size_t index,
                              double t_sec) {
  const double inc = geo::deg_to_rad(shell.inclination_deg);
  const double raan =
      kTwoPi * static_cast<double>(plane) / static_cast<double>(shell.planes);
  // Walker phasing: satellites in adjacent planes are offset by
  // F * 2*pi / T where T is the shell's total satellite count.
  const double phase0 =
      kTwoPi * static_cast<double>(index) / static_cast<double>(shell.sats_per_plane) +
      kTwoPi * static_cast<double>(shell.phase_factor) * static_cast<double>(plane) /
          static_cast<double>(shell.total_sats());
  const double u = wrap_angle(phase0 + shell.mean_motion_rad_per_sec() * t_sec);

  // Latitude / inertial longitude of a circular inclined orbit.
  const double sin_lat = std::sin(inc) * std::sin(u);
  const double lat = std::asin(std::clamp(sin_lat, -1.0, 1.0));
  const double lon_inertial = std::atan2(std::cos(inc) * std::sin(u), std::cos(u)) + raan;
  // Earth-fixed longitude: subtract Earth's rotation since epoch.
  const double lon = wrap_angle(lon_inertial - kEarthRotationRadPerSec * t_sec);

  double lon_deg = geo::rad_to_deg(lon);
  if (lon_deg > 180.0) lon_deg -= 360.0;
  return {geo::rad_to_deg(lat), lon_deg, shell.altitude_km};
}

// ---------------------------------------------------------------------------
// BatchPropagator
// ---------------------------------------------------------------------------

BatchPropagator::BatchPropagator(const std::vector<Shell>& shells) {
  for (const Shell& shell : shells) {
    shell_begin_.push_back(n_);
    shell_mean_motion_.push_back(shell.mean_motion_rad_per_sec());
    for (std::size_t p = 0; p < shell.planes; ++p) {
      const double raan =
          kTwoPi * static_cast<double>(p) / static_cast<double>(shell.planes);
      for (std::size_t i = 0; i < shell.sats_per_plane; ++i) {
        const double phase0 =
            kTwoPi * static_cast<double>(i) / static_cast<double>(shell.sats_per_plane) +
            kTwoPi * static_cast<double>(shell.phase_factor) * static_cast<double>(p) /
                static_cast<double>(shell.total_sats());
        const double inc = geo::deg_to_rad(shell.inclination_deg);
        phase0_.push_back(phase0);
        raan_.push_back(raan);
        sin_inc_.push_back(std::sin(inc));
        cos_inc_.push_back(std::cos(inc));
        alt_km_.push_back(shell.altitude_km);
        ++n_;
      }
    }
  }
  shell_begin_.push_back(n_);
}

BatchPropagator::BatchPropagator(const Sgp4Propagator* sgp4)
    : n_(sgp4->size()), sgp4_(sgp4) {}

void BatchPropagator::advance(double t_sec, bool unit_vectors, BatchFrame& out) const {
  out.t_sec = t_sec;
  out.has_unit_vectors = unit_vectors;
  out.lat_deg.resize(n_);
  out.lon_deg.resize(n_);
  out.alt_km.resize(n_);
  if (unit_vectors) {
    out.ux.resize(n_);
    out.uy.resize(n_);
    out.uz.resize(n_);
  }
  if (sgp4_ != nullptr) {
    // GMST depends only on the epoch, not the satellite — computed once
    // here, per-call in the scalar path, same double either way.
    const double gst = gstime(sgp4_->epoch_jd() + t_sec / 86400.0);
    for (std::size_t i = 0; i < n_; ++i) {
      const geo::GeoPoint p = sgp4_->position_at_gst(i, t_sec, gst);
      out.lat_deg[i] = p.lat_deg;
      out.lon_deg[i] = p.lon_deg;
      out.alt_km[i] = p.alt_km;
    }
  } else {
    advance_walker(t_sec, out);
  }
  if (unit_vectors) {
    for (std::size_t i = 0; i < n_; ++i) {
      const double lat = to_rad_inline(out.lat_deg[i]);
      const double lon = to_rad_inline(out.lon_deg[i]);
      const double clat = std::cos(lat);
      out.ux[i] = clat * std::cos(lon);
      out.uy[i] = clat * std::sin(lon);
      out.uz[i] = std::sin(lat);
    }
  }
}

void BatchPropagator::advance_walker(double t_sec, BatchFrame& out) const {
  // The same expressions, evaluated in the same order, as
  // walker_position — with everything that does not depend on t hoisted
  // into the precomputed per-satellite arrays. `motion` and `spin` are
  // the identical products the scalar path forms per call, so every
  // output double matches the scalar path bit for bit.
  const double spin = kEarthRotationRadPerSec * t_sec;
  const std::size_t n_shells = shell_mean_motion_.size();
  const double* phase0 = phase0_.data();
  const double* raan = raan_.data();
  const double* sin_inc = sin_inc_.data();
  const double* cos_inc = cos_inc_.data();
  double* out_lat = out.lat_deg.data();
  double* out_lon = out.lon_deg.data();
  // Altitudes are t-independent for circular Walker orbits; one block
  // copy keeps them out of the trig loop.
  std::copy(alt_km_.begin(), alt_km_.end(), out.alt_km.begin());
  for (std::size_t s = 0; s < n_shells; ++s) {
    const double motion = shell_mean_motion_[s] * t_sec;
    const std::size_t begin = shell_begin_[s];
    const std::size_t end = shell_begin_[s + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const double u = wrap_angle_fast(phase0[i] + motion);
      const double sin_u = std::sin(u);
      const double sin_lat = sin_inc[i] * sin_u;
      const double lat = std::asin(std::clamp(sin_lat, -1.0, 1.0));
      const double lon_inertial =
          std::atan2(cos_inc[i] * sin_u, std::cos(u)) + raan[i];
      const double lon = wrap_angle_fast(lon_inertial - spin);
      const double lon_deg = to_deg_inline(lon);
      // Branchless ±180 normalization: x - 0.0 == x for every double, so
      // the untaken side is an exact no-op (same bits as the branch).
      out_lat[i] = to_deg_inline(lat);
      out_lon[i] = lon_deg - (lon_deg > 180.0 ? 360.0 : 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// WalkerPropagator
// ---------------------------------------------------------------------------

WalkerPropagator::WalkerPropagator(std::vector<Shell> shells)
    : shells_(std::move(shells)), batch_(shells_) {
  std::size_t n = 0;
  for (const Shell& s : shells_) {
    shell_begin_.push_back(n);
    n += s.total_sats();
  }
  shell_begin_.push_back(n);
}

geo::GeoPoint WalkerPropagator::position(std::size_t sat, double t_sec) const {
  const auto it = std::upper_bound(shell_begin_.begin(), shell_begin_.end(), sat);
  const auto s = static_cast<std::size_t>(it - shell_begin_.begin()) - 1;
  const Shell& shell = shells_.at(s);
  const std::size_t local = sat - shell_begin_[s];
  return walker_position(shell, local / shell.sats_per_plane,
                         local % shell.sats_per_plane, t_sec);
}

double WalkerPropagator::max_gate_altitude_km() const {
  double m = 0;
  for (const Shell& s : shells_) m = std::max(m, s.altitude_km);
  return m;
}

double WalkerPropagator::max_angular_rate_rad_per_sec() const {
  double m = 0;
  for (const Shell& s : shells_) m = std::max(m, s.mean_motion_rad_per_sec());
  return m;
}

// ---------------------------------------------------------------------------
// Sgp4Propagator
// ---------------------------------------------------------------------------

Sgp4Propagator::Sgp4Propagator(const std::vector<Shell>& shells) {
  // Every Walker slot becomes a near-circular SGP4 satellite at a fixed
  // canonical epoch (J2000.0). Mean motion comes from the shell's
  // altitude, phase/RAAN from the Walker geometry; bstar is zero (no
  // drag for synthetic fleets, so multi-day horizons stay in orbit).
  constexpr double kCanonicalEpochJd = 2451545.0;
  for (const Shell& shell : shells) {
    const double no_rad_min = shell.mean_motion_rad_per_sec() * 60.0;
    const double inclo = geo::deg_to_rad(shell.inclination_deg);
    for (std::size_t p = 0; p < shell.planes; ++p) {
      const double nodeo =
          kTwoPi * static_cast<double>(p) / static_cast<double>(shell.planes);
      for (std::size_t i = 0; i < shell.sats_per_plane; ++i) {
        const double mo =
            kTwoPi * static_cast<double>(i) / static_cast<double>(shell.sats_per_plane) +
            kTwoPi * static_cast<double>(shell.phase_factor) * static_cast<double>(p) /
                static_cast<double>(shell.total_sats());
        sats_.emplace_back(kCanonicalEpochJd, no_rad_min, /*ecco=*/1.0e-4, inclo,
                           nodeo, /*argpo=*/0.0, wrap_angle(mo), /*bstar=*/0.0);
        epoch_offset_min_.push_back(0.0);
      }
    }
  }
  epoch_jd_ = kCanonicalEpochJd;
  finalize();
}

Sgp4Propagator::Sgp4Propagator(std::vector<Tle> tles) : tles_(std::move(tles)) {
  if (tles_.empty()) {
    throw std::invalid_argument("Sgp4Propagator: empty TLE catalog");
  }
  epoch_jd_ = 0;
  for (const Tle& t : tles_) epoch_jd_ = std::max(epoch_jd_, t.epoch_jd());
  for (const Tle& t : tles_) {
    sats_.emplace_back(t);
    epoch_offset_min_.push_back((epoch_jd_ - t.epoch_jd()) * 1440.0);
  }
  finalize();
}

void Sgp4Propagator::finalize() {
  id_ = next_propagator_id();
  std::uint64_t h = 0x5d1f4a2b9c83e607ull;
  hash_mix(h, sats_.size());
  max_gate_alt_km_ = 0;
  max_rate_rad_s_ = 0;
  for (std::size_t i = 0; i < sats_.size(); ++i) {
    const Sgp4& s = sats_[i];
    hash_mix(h, bits(s.epoch_jd()));
    hash_mix(h, bits(s.no_unkozai()));
    hash_mix(h, bits(s.ecco()));
    hash_mix(h, bits(epoch_offset_min_[i]));
    max_gate_alt_km_ =
        std::max(max_gate_alt_km_, s.gate_apogee_alt_km(geo::kEarthRadiusKm));
    // True-anomaly rate peaks at perigee: n * sqrt(1-e^2) / (1-e)^2.
    const double e = std::min(s.ecco(), 0.99);
    const double perigee_rate = (s.no_unkozai() / 60.0) * std::sqrt(1.0 - e * e) /
                                ((1.0 - e) * (1.0 - e));
    max_rate_rad_s_ = std::max(max_rate_rad_s_, perigee_rate);
  }
  for (const Tle& t : tles_) {
    hash_mix(h, t.satnum);
    hash_mix(h, bits(t.bstar));
  }
  ephemeris_hash_ = h == 0 ? 1 : h;
  batch_ = std::make_unique<BatchPropagator>(this);
}

geo::GeoPoint Sgp4Propagator::position(std::size_t sat, double t_sec) const {
  return position_at_gst(sat, t_sec, gstime(epoch_jd_ + t_sec / 86400.0));
}

geo::GeoPoint Sgp4Propagator::position_at_gst(std::size_t sat, double t_sec,
                                              double gst) const {
  const Sgp4& s = sats_.at(sat);
  const double tsince = t_sec / 60.0 + epoch_offset_min_[sat];
  const auto state = s.propagate(tsince);
  if (!state.has_value()) return kDecayedSentinel;
  const double x = state->r[0], y = state->r[1], z = state->r[2];
  const double r = std::sqrt(x * x + y * y + z * z);
  if (r <= 0.0) return kDecayedSentinel;
  // TEME -> ECEF via GMST at the evaluation instant, then the repo's
  // spherical geodetic convention (altitude above kEarthRadiusKm).
  const double lat = std::asin(std::clamp(z / r, -1.0, 1.0));
  const double lon = wrap_angle(std::atan2(y, x) - gst);
  double lon_deg = geo::rad_to_deg(lon);
  if (lon_deg > 180.0) lon_deg -= 360.0;
  return {geo::rad_to_deg(lat), lon_deg, r - geo::kEarthRadiusKm};
}

namespace {

/// One memoized frame per (thread, propagator): campaigns ask for every
/// terminal at the same epoch before moving time forward, so a single
/// slot hits almost always. Keyed by the process-unique propagator id
/// (never a pointer — ids are not reused).
struct FrameSlot {
  bool valid = false;
  std::uint64_t t_bits = 0;
  BatchFrame frame;
};

FrameSlot& frame_slot(std::uint64_t id) {
  thread_local std::unordered_map<std::uint64_t, std::unique_ptr<FrameSlot>> slots;
  auto& slot = slots[id];
  if (!slot) slot = std::make_unique<FrameSlot>();
  return *slot;
}

}  // namespace

const BatchFrame& Sgp4Propagator::frame_at(double t_sec) const {
  FrameSlot& slot = frame_slot(id_);
  const std::uint64_t key = bits(t_sec);
  if (!slot.valid || slot.t_bits != key) {
    batch_->advance(t_sec, /*unit_vectors=*/true, slot.frame);
    slot.t_bits = key;
    slot.valid = true;
  }
  return slot.frame;
}

}  // namespace satnet::orbit
