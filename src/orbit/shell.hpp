// Orbital shell descriptions and Keplerian helpers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace satnet::orbit {

/// Earth's gravitational parameter, km^3/s^2.
inline constexpr double kMuEarth = 398600.4418;
/// Earth's sidereal rotation rate, rad/s.
inline constexpr double kEarthRotationRadPerSec = 7.2921159e-5;

/// Orbit class of a satellite operator — the paper's primary taxonomy.
enum class OrbitClass { leo, meo, geo };

std::string to_string(OrbitClass c);

/// A Walker-delta shell: `planes` orbital planes spread uniformly in RAAN,
/// each with `sats_per_plane` satellites, all circular at `altitude_km`
/// and inclined `inclination_deg`. `phase_factor` staggers satellites in
/// adjacent planes (Walker notation i:T/P/F).
struct Shell {
  std::string name;
  double altitude_km = 550.0;
  double inclination_deg = 53.0;
  std::size_t planes = 72;
  std::size_t sats_per_plane = 22;
  unsigned phase_factor = 17;

  std::size_t total_sats() const { return planes * sats_per_plane; }
  /// Orbital period from Kepler's third law, seconds.
  double period_sec() const;
  /// Mean motion, rad/s.
  double mean_motion_rad_per_sec() const;
};

/// Well-known shells used by the reproduction.
Shell starlink_shell1();       // 550 km, 53 deg, 72x22
Shell starlink_polar_shell();  // 560 km, 97.6 deg, 6x30 (high-latitude coverage)
Shell oneweb_shell();          // 1200 km, 87.9 deg, 18x36
Shell o3b_shell();             // 8062 km equatorial MEO, 1x20

/// The full Starlink constellation used across the reproduction
/// (inclined shell + polar shell, so Alaska-like latitudes are served).
std::vector<Shell> starlink_shells();

}  // namespace satnet::orbit
