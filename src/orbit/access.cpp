#include "orbit/access.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "fault/hook.hpp"
#include "geo/places.hpp"
#include "orbit/access_index.hpp"
#include "orbit/timeline.hpp"

namespace satnet::orbit {

AccessNetwork::AccessNetwork(AccessConfig config,
                             std::shared_ptr<const Constellation> constellation)
    : config_(std::move(config)), constellation_(std::move(constellation)) {
  if (config_.orbit == OrbitClass::geo) {
    throw std::invalid_argument("GEO access requires a GeoFleet");
  }
  if (!constellation_) throw std::invalid_argument("null constellation");
  if (config_.pops.empty() || config_.gateways.empty()) {
    throw std::invalid_argument("access network needs PoPs and gateways");
  }
  index_ = std::make_shared<const AccessIndex>(config_, constellation_);
  identity_hash_ = access_identity_hash(config_, constellation_.get());
}

AccessNetwork::AccessNetwork(AccessConfig config, GeoFleet fleet)
    : config_(std::move(config)), fleet_(std::move(fleet)) {
  if (config_.orbit != OrbitClass::geo) {
    throw std::invalid_argument("GeoFleet requires OrbitClass::geo");
  }
  if (config_.pops.empty() || config_.gateways.empty()) {
    throw std::invalid_argument("access network needs PoPs and gateways");
  }
  if (fleet_.slots().empty()) throw std::invalid_argument("empty GEO fleet");
  identity_hash_ = access_identity_hash(config_, nullptr);
}

std::size_t AccessNetwork::assigned_pop(const geo::GeoPoint& user, double t_sec) const {
  for (const auto& ov : config_.overrides) {
    if (t_sec < ov.from_sec || t_sec >= ov.until_sec) continue;
    if (geo::surface_distance_km(user, ov.region_center) <= ov.radius_km) {
      return ov.pop_index;
    }
  }
  std::size_t best = 0;
  double best_km = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < config_.pops.size(); ++i) {
    const double km = geo::surface_distance_km(user, config_.pops[i].location);
    if (km < best_km) {
      best_km = km;
      best = i;
    }
  }
  return best;
}

std::optional<VisibleSat> AccessNetwork::serving_sat_at_epoch(const geo::GeoPoint& user,
                                                              double epoch_sec) const {
  if (config_.orbit == OrbitClass::geo) {
    return fleet_.best_visible(user, config_.min_elevation_deg);
  }
  if (timeline_enabled()) {
    if (const EpochTimeline* tl = EpochTimeline::find(identity_hash_)) {
      SatId id{};
      switch (tl->replay_serving(user, epoch_sec, &id)) {
        case EpochTimeline::ServingReplay::outage:
          return std::nullopt;
        case EpochTimeline::ServingReplay::serving: {
          // Reconstruct exactly as the index's serving memo does: id,
          // position, elevation, and slant range are pure functions of
          // (id, epoch), so the VisibleSat is bit-identical to the
          // on-demand sweep's.
          const geo::GeoPoint pos = constellation_->position(id, epoch_sec);
          return VisibleSat{
              id, pos, geo::elevation_deg(user, pos),
              geo::slant_range_km(geo::GeoPoint{user.lat_deg, user.lon_deg, 0.0}, pos)};
        }
        case EpochTimeline::ServingReplay::miss:
          break;  // uncovered epoch: fall through to the index / sweep
      }
    }
  }
  if (index_ && access_cache_enabled()) return index_->serving(user, epoch_sec);
  return constellation_->best_visible(user, epoch_sec, config_.min_elevation_deg);
}

double AccessNetwork::effective_reconfig_interval(double t_sec) const {
  double interval = config_.reconfig_interval_sec;
  if (interval <= 0) return interval;
  if (const fault::Hook* hook = fault::Hook::active()) {
    interval /= hook->reconfig_interval_scale(config_.name, t_sec);
  }
  return interval;
}

std::size_t AccessNetwork::best_gateway(const geo::GeoPoint& user, const VisibleSat& sat,
                                        double t_sec) const {
  // Bent-pipe scheduling: the terminal's traffic lands at the gateway
  // serving its cell — the one nearest the *terminal* among gateways the
  // serving satellite can see. The (possibly long) fiber backhaul to the
  // assigned PoP is paid afterwards; this is exactly the mechanism behind
  // the paper's Alaska-via-Seattle and Manila-via-Tokyo latencies.
  // Gateways inside a fault-plan outage window are ineligible, so traffic
  // spills to the next-nearest site (or, with none left, to outage).
  const fault::Hook* hook = fault::Hook::active();
  std::size_t best = config_.gateways.size();
  double best_km = std::numeric_limits<double>::max();
  constexpr double kGatewayMinElevationDeg = 10.0;
  for (std::size_t i = 0; i < config_.gateways.size(); ++i) {
    const auto& gw = config_.gateways[i];
    if (geo::elevation_deg(gw.location, sat.position) < kGatewayMinElevationDeg) continue;
    if (hook && hook->gateway_down(gw.name, t_sec)) continue;
    const double km = geo::surface_distance_km(user, gw.location);
    if (km < best_km) {
      best_km = km;
      best = i;
    }
  }
  return best;  // == gateways.size() when no eligible gateway sees the satellite
}

AccessSample AccessNetwork::build_sample(const geo::GeoPoint& user, double t_sec,
                                         const std::optional<VisibleSat>& sat) const {
  AccessSample s;
  if (!sat) return s;  // terminal cannot see any satellite: outage
  const std::size_t pop = assigned_pop(user, t_sec);
  const std::size_t gw_idx = best_gateway(user, *sat, t_sec);
  if (gw_idx >= config_.gateways.size()) return s;  // satellite sees no gateway

  const auto& gw = config_.gateways[gw_idx];
  s.reachable = true;
  s.serving_sat = sat->id;
  s.pop_index = pop;
  s.gateway_index = gw_idx;
  s.up_ms = geo::radio_delay_ms(sat->slant_km);
  s.down_ms = geo::radio_delay_ms(geo::slant_range_km(gw.location, sat->position));
  s.backhaul_ms = geo::fiber_delay_ms(
      geo::surface_distance_km(gw.location, config_.pops[pop].location));
  s.scheduling_ms = config_.scheduling_overhead_ms;
  s.one_way_ms = s.up_ms + s.down_ms + s.backhaul_ms + s.scheduling_ms;
  return s;
}

AccessSample AccessNetwork::sample(const geo::GeoPoint& user, double t_sec) const {
  double epoch = t_sec;
  const double interval = effective_reconfig_interval(t_sec);
  if (interval > 0) {
    epoch = std::floor(t_sec / interval) * interval;
    if (timeline_enabled()) {
      if (const EpochTimeline* tl = EpochTimeline::find(identity_hash_)) {
        AccessSample s;
        if (tl->replay_sample(user, t_sec, epoch, &s)) return s;
        // Uncovered key or stale era (counted as timeline.replay.fallback):
        // the on-demand path below answers instead, with identical bytes.
      }
    }
  }
  if (index_ && access_cache_enabled()) return index_->sample(*this, user, t_sec, epoch);
  return build_sample(user, t_sec, serving_sat_at_epoch(user, epoch));
}

AccessSample AccessNetwork::sample_with_handoff(const geo::GeoPoint& user,
                                                double t_sec) const {
  AccessSample s = sample(user, t_sec);
  if (!s.reachable || config_.reconfig_interval_sec <= 0 ||
      config_.orbit == OrbitClass::geo) {
    return s;
  }
  const double interval = effective_reconfig_interval(t_sec);
  const double epoch = std::floor(t_sec / interval) * interval;
  if (epoch - interval < 0) return s;
  const auto prev = serving_sat_at_epoch(user, epoch - interval);
  s.handoff = !prev || !(prev->id == *s.serving_sat);
  return s;
}

double AccessNetwork::floor_one_way_ms(const geo::GeoPoint& user, double t_sec) const {
  const AccessSample s = sample(user, t_sec);
  if (!s.reachable) return std::numeric_limits<double>::infinity();
  return s.up_ms + s.down_ms + s.backhaul_ms;
}

namespace {

Pop make_pop(std::string name, std::string city, std::string country) {
  const geo::GeoPoint p = geo::city_point(city);
  return Pop{std::move(name), std::move(city), std::move(country), p};
}

Gateway make_gateway(std::string city, std::size_t pop_index) {
  const geo::GeoPoint p = geo::city_point(city);
  return Gateway{std::move(city), p, pop_index};
}

}  // namespace

AccessNetwork make_starlink_access(std::shared_ptr<const Constellation> constellation) {
  AccessConfig cfg;
  cfg.name = "starlink";
  cfg.orbit = OrbitClass::leo;
  cfg.min_elevation_deg = 25.0;
  cfg.scheduling_overhead_ms = 12.0;  // uplink request/grant + frame alignment
  cfg.reconfig_interval_sec = 15.0;

  // PoPs (rDNS-style names mirror "customer.<code>.pop.starlinkisp.net").
  cfg.pops = {
      make_pop("sttlwax1", "seattle", "US"),        // 0
      make_pop("lsancax1", "los angeles", "US"),    // 1
      make_pop("dnvrcox1", "denver", "US"),         // 2
      make_pop("dllstxx1", "dallas", "US"),         // 3
      make_pop("chcgilx1", "chicago", "US"),        // 4
      make_pop("atlngax1", "atlanta", "US"),        // 5
      make_pop("nycmnyx1", "new york", "US"),       // 6
      make_pop("ashbvax1", "ashburn", "US"),        // 7
      make_pop("mmimflx1", "miami", "US"),          // 8
      make_pop("frntdeu1", "frankfurt", "DE"),      // 9
      make_pop("lndngbr1", "london", "GB"),         // 10
      make_pop("mdrdesp1", "madrid", "ES"),         // 11
      make_pop("mlanitx1", "milan", "IT"),          // 12
      make_pop("wrswpol1", "warsaw", "PL"),         // 13
      make_pop("sydnaus1", "sydney", "AU"),         // 14
      make_pop("acklnzl1", "auckland", "NZ"),       // 15
      make_pop("tkyojpn1", "tokyo", "JP"),          // 16
      make_pop("sntgchl1", "santiago", "CL"),       // 17
      make_pop("trntcan1", "toronto", "CA"),        // 18
      make_pop("vncvcan1", "vancouver", "CA"),      // 19
  };

  // Gateways: one near each PoP plus sites in regions without a local PoP
  // (Alaska backhauls to Seattle; Manila to Tokyo) — the mechanism behind
  // the paper's Alaska and Philippines latency anomalies.
  cfg.gateways = {
      make_gateway("seattle", 0),      make_gateway("los angeles", 1),
      make_gateway("denver", 2),       make_gateway("dallas", 3),
      make_gateway("chicago", 4),      make_gateway("atlanta", 5),
      make_gateway("new york", 6),     make_gateway("ashburn", 7),
      make_gateway("miami", 8),        make_gateway("frankfurt", 9),
      make_gateway("london", 10),      make_gateway("madrid", 11),
      make_gateway("milan", 12),       make_gateway("warsaw", 13),
      make_gateway("sydney", 14),      make_gateway("auckland", 15),
      make_gateway("tokyo", 16),       make_gateway("santiago", 17),
      make_gateway("toronto", 18),     make_gateway("vancouver", 19),
      make_gateway("anchorage", 0),    make_gateway("manila", 16),
      make_gateway("kansas city", 2),  make_gateway("salt lake city", 2),
      make_gateway("phoenix", 1),      make_gateway("munich", 9),
      make_gateway("paris", 10),       make_gateway("vienna", 9),
      make_gateway("brussels", 10),    make_gateway("amsterdam", 10),
      make_gateway("prague", 9),       make_gateway("dublin", 10),
      make_gateway("manchester", 10),  make_gateway("marseille", 12),
      make_gateway("melbourne", 14),   make_gateway("perth", 14),
      make_gateway("brisbane", 14),    make_gateway("rome", 12),
      make_gateway("lisbon", 11),      make_gateway("oslo", 9),
      make_gateway("stockholm", 13),   make_gateway("montreal", 18),
  };

  // Scripted PoP migrations, relative to the campaign epoch
  // t=0 == 2022-05-03 00:00 UTC (the RIPE window start):
  constexpr double kDay = 86400.0;
  // New Zealand served from Sydney until 2022-07-12 (day 70), then the
  // default nearest-PoP policy picks the new Auckland PoP.
  cfg.overrides.push_back(
      {geo::city_point("auckland"), 1200.0, /*pop=*/14, 0.0, 70 * kDay});
  // Netherlands served from Frankfurt until day 150, then re-homed to
  // London (the paper's ~10 ms improvement for the NL probe).
  cfg.overrides.push_back(
      {geo::city_point("amsterdam"), 300.0, /*pop=*/9, 0.0, 150 * kDay});
  cfg.overrides.push_back(
      {geo::city_point("amsterdam"), 300.0, /*pop=*/10, 150 * kDay, 1e18});
  // One Nevada terminal region flipped to Denver for ~1 month around
  // September 2022 (days 130-160), then reverted to Los Angeles.
  cfg.overrides.push_back(
      {geo::GeoPoint{39.53, -119.81, 0.0} /* Reno */, 120.0, /*pop=*/2,
       130 * kDay, 160 * kDay});
  // Alaska has no local PoP and is wired into Seattle (the paper's
  // explanation for the Alaska probe's 80 ms median RTT).
  cfg.overrides.push_back({geo::city_point("anchorage"), 1500.0, /*pop=*/0, 0.0, 1e18});

  return AccessNetwork(std::move(cfg), std::move(constellation));
}

AccessNetwork make_oneweb_access(std::shared_ptr<const Constellation> constellation,
                                 double scheduling_overhead_ms) {
  AccessConfig cfg;
  cfg.name = "oneweb";
  cfg.orbit = OrbitClass::leo;
  cfg.min_elevation_deg = 30.0;
  cfg.scheduling_overhead_ms = scheduling_overhead_ms;
  cfg.reconfig_interval_sec = 30.0;
  // Only two US PoPs (the paper finds OneWeb peering with just two
  // US-based providers), so all non-US traffic takes a transoceanic
  // backhaul — the mechanism behind its ~3x higher median latency.
  cfg.pops = {
      make_pop("ashburn-ow", "ashburn", "US"),
      make_pop("seattle-ow", "seattle", "US"),
  };
  cfg.gateways = {
      make_gateway("ashburn", 0),   make_gateway("seattle", 1),
      make_gateway("denver", 1),    make_gateway("london", 0),
      make_gateway("frankfurt", 0), make_gateway("oslo", 0),
      make_gateway("madrid", 0),    make_gateway("tokyo", 1),
      make_gateway("sydney", 1),    make_gateway("santiago", 0),
      make_gateway("anchorage", 1), make_gateway("dubai", 0),
  };
  return AccessNetwork(std::move(cfg), std::move(constellation));
}

AccessNetwork make_o3b_access(std::shared_ptr<const Constellation> constellation,
                              double scheduling_overhead_ms) {
  AccessConfig cfg;
  cfg.name = "o3b";
  cfg.orbit = OrbitClass::meo;
  cfg.min_elevation_deg = 15.0;
  cfg.scheduling_overhead_ms = scheduling_overhead_ms;
  cfg.reconfig_interval_sec = 120.0;  // MEO handoffs are far less frequent
  cfg.pops = {
      make_pop("o3b-suva", "suva", "FJ"),
      make_pop("o3b-singapore", "singapore", "SG"),
      make_pop("o3b-lagos", "lagos", "NG"),
      make_pop("o3b-lima", "lima", "PE"),
      make_pop("o3b-athens", "athens", "GR"),
  };
  cfg.gateways = {
      make_gateway("suva", 0),   make_gateway("singapore", 1),
      make_gateway("lagos", 2),  make_gateway("lima", 3),
      make_gateway("athens", 4), make_gateway("nairobi", 2),
      make_gateway("bogota", 3),
  };
  return AccessNetwork(std::move(cfg), std::move(constellation));
}

HandoffStats measure_handoffs(const AccessNetwork& net, const geo::GeoPoint& user,
                              double t_start_sec, double duration_sec) {
  HandoffStats out;
  const double interval = net.config().reconfig_interval_sec;
  if (interval <= 0 || duration_sec <= 0) return out;

  std::optional<SatId> current;
  double dwell_start = t_start_sec;
  std::vector<double> dwells;
  std::size_t outages = 0;

  // Integer epoch stepping: accumulating `t += interval` compounds one
  // rounding error per epoch, so at large t_start_sec the loop gains or
  // loses epochs against the [t_start, t_start + duration) window. Each
  // epoch time is instead derived directly from its index, making the
  // epoch count exactly floor(duration / interval) at any start offset.
  const auto n_epochs = static_cast<std::size_t>(duration_sec / interval);
  for (std::size_t i = 0; i < n_epochs; ++i) {
    const double t = t_start_sec + static_cast<double>(i) * interval;
    ++out.epochs;
    const AccessSample s = net.sample(user, t);
    if (!s.reachable) {
      ++outages;
      current.reset();
      dwell_start = t + interval;
      continue;
    }
    if (!current) {
      current = s.serving_sat;
      dwell_start = t;
    } else if (!(*current == *s.serving_sat)) {
      ++out.handoffs;
      dwells.push_back(t - dwell_start);
      current = s.serving_sat;
      dwell_start = t;
    }
  }
  // The last dwell is right-censored: the window closed while the
  // satellite was still serving. Report it separately instead of mixing
  // the truncated value into the completed-dwell statistics.
  if (current) {
    out.censored = 1;
    out.censored_dwell_sec = t_start_sec + duration_sec - dwell_start;
  }

  if (!dwells.empty()) {
    double sum = 0;
    for (const double d : dwells) {
      sum += d;
      out.max_dwell_sec = std::max(out.max_dwell_sec, d);
    }
    out.mean_dwell_sec = sum / static_cast<double>(dwells.size());
  }
  out.outage_fraction =
      out.epochs ? static_cast<double>(outages) / static_cast<double>(out.epochs) : 0.0;
  return out;
}

AccessNetwork make_geo_access(const std::string& teleport_city, double slot_lon_deg,
                              double scheduling_overhead_ms) {
  AccessConfig cfg;
  cfg.name = "geo-" + teleport_city;
  cfg.orbit = OrbitClass::geo;
  cfg.min_elevation_deg = 10.0;
  cfg.scheduling_overhead_ms = scheduling_overhead_ms;
  cfg.reconfig_interval_sec = 0.0;  // no handoffs in GEO
  cfg.pops = {make_pop("teleport-" + teleport_city, teleport_city, "US")};
  cfg.gateways = {make_gateway(teleport_city, 0)};
  GeoFleet fleet;
  fleet.add_slot("slot", slot_lon_deg);
  return AccessNetwork(std::move(cfg), std::move(fleet));
}

}  // namespace satnet::orbit
