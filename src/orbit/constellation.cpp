#include "orbit/constellation.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace satnet::orbit {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

double wrap_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0) a += kTwoPi;
  return a;
}
}  // namespace

std::size_t Constellation::total_sats() const {
  std::size_t n = 0;
  for (const auto& s : shells_) n += s.total_sats();
  return n;
}

geo::GeoPoint Constellation::position(const SatId& id, double t_sec) const {
  const Shell& shell = shells_.at(id.shell);
  const double inc = geo::deg_to_rad(shell.inclination_deg);
  const double raan =
      kTwoPi * static_cast<double>(id.plane) / static_cast<double>(shell.planes);
  // Walker phasing: satellites in adjacent planes are offset by
  // F * 2*pi / T where T is the shell's total satellite count.
  const double phase0 =
      kTwoPi * static_cast<double>(id.index) / static_cast<double>(shell.sats_per_plane) +
      kTwoPi * static_cast<double>(shell.phase_factor) * static_cast<double>(id.plane) /
          static_cast<double>(shell.total_sats());
  const double u = wrap_angle(phase0 + shell.mean_motion_rad_per_sec() * t_sec);

  // Latitude / inertial longitude of a circular inclined orbit.
  const double sin_lat = std::sin(inc) * std::sin(u);
  const double lat = std::asin(std::clamp(sin_lat, -1.0, 1.0));
  const double lon_inertial = std::atan2(std::cos(inc) * std::sin(u), std::cos(u)) + raan;
  // Earth-fixed longitude: subtract Earth's rotation since epoch.
  const double lon = wrap_angle(lon_inertial - kEarthRotationRadPerSec * t_sec);

  double lon_deg = geo::rad_to_deg(lon);
  if (lon_deg > 180.0) lon_deg -= 360.0;
  return {geo::rad_to_deg(lat), lon_deg, shell.altitude_km};
}

std::vector<VisibleSat> Constellation::visible(const geo::GeoPoint& ground, double t_sec,
                                               double min_elevation_deg) const {
  std::vector<VisibleSat> out;
  for (std::size_t s = 0; s < shells_.size(); ++s) {
    const Shell& shell = shells_[s];
    for (std::size_t p = 0; p < shell.planes; ++p) {
      for (std::size_t i = 0; i < shell.sats_per_plane; ++i) {
        const SatId id{s, p, i};
        const geo::GeoPoint pos = position(id, t_sec);
        // Cheap pre-filter: a satellite more than ~40 deg of arc away can
        // never be above the horizon for LEO/MEO altitudes we use.
        const double elev = geo::elevation_deg(ground, pos);
        if (elev >= min_elevation_deg) {
          out.push_back({id, pos, elev, geo::slant_range_km(
                                             {ground.lat_deg, ground.lon_deg, 0.0}, pos)});
        }
      }
    }
  }
  return out;
}

std::optional<VisibleSat> Constellation::best_visible(const geo::GeoPoint& ground,
                                                      double t_sec,
                                                      double min_elevation_deg) const {
  // Hot path for campaign simulation: a full-trig sweep of every satellite
  // costs ~1 ms per query for a Starlink-sized constellation. Instead,
  // prefilter with a central-angle cone test on ECEF unit vectors. On a
  // spherical Earth, elevation >= E_min is exactly theta <= theta_max with
  //   cos(E_min + theta_max) = (R / (R + h)) * cos(E_min),
  // so dot(n_ground, n_sat) >= cos(theta_max) admits every visible
  // satellite. Unit vectors come from incremental plane rotations (no
  // per-satellite trig); the exact position/elevation path runs only for
  // the few candidates inside the cone, preserving the sweep's selection
  // order and values bit-for-bit.
  const double glat = geo::deg_to_rad(ground.lat_deg);
  const double glon = geo::deg_to_rad(ground.lon_deg);
  const double gx = std::cos(glat) * std::cos(glon);
  const double gy = std::cos(glat) * std::sin(glon);
  const double gz = std::sin(glat);
  const double e_min = geo::deg_to_rad(min_elevation_deg);

  // Cone-prefilter accounting: counted locally in the sweep and flushed
  // as three relaxed adds at the end, keeping PR 1's ~8x claim
  // continuously observable without taxing the per-satellite loop.
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& queries = obs::MetricsRegistry::global().counter(
      "orbit.best_visible.queries", "best_visible calls");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& sats_swept = obs::MetricsRegistry::global().counter(
      "orbit.best_visible.sats_swept", "satellites tested against the cone gate");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& exact_evals = obs::MetricsRegistry::global().counter(
      "orbit.best_visible.exact_evals",
      "satellites inside the cone that ran the exact ephemeris");
  std::uint64_t swept = 0, evals = 0;

  std::optional<VisibleSat> best;
  for (std::size_t s = 0; s < shells_.size(); ++s) {
    const Shell& shell = shells_[s];
    const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + shell.altitude_km);
    const double theta_max =
        std::acos(std::clamp(ratio * std::cos(e_min), -1.0, 1.0)) - e_min;
    // Small slack absorbs rotation-recurrence rounding so the cone never
    // rejects a satellite the exact test would accept.
    const double cos_gate = std::cos(theta_max + 1e-6);

    const double inc = geo::deg_to_rad(shell.inclination_deg);
    const double sin_i = std::sin(inc);
    const double cos_i = std::cos(inc);
    const double du = kTwoPi / static_cast<double>(shell.sats_per_plane);
    const double cos_du = std::cos(du);
    const double sin_du = std::sin(du);
    const double motion = shell.mean_motion_rad_per_sec() * t_sec;
    const double phase_step = kTwoPi * static_cast<double>(shell.phase_factor) /
                              static_cast<double>(shell.total_sats());

    for (std::size_t p = 0; p < shell.planes; ++p) {
      const double phi = kTwoPi * static_cast<double>(p) /
                             static_cast<double>(shell.planes) -
                         kEarthRotationRadPerSec * t_sec;
      const double cos_phi = std::cos(phi);
      const double sin_phi = std::sin(phi);
      const double u0 = phase_step * static_cast<double>(p) + motion;
      double cu = std::cos(u0);
      double su = std::sin(u0);
      for (std::size_t i = 0; i < shell.sats_per_plane; ++i) {
        const double w = cos_i * su;
        const double x = cu * cos_phi - w * sin_phi;
        const double y = cu * sin_phi + w * cos_phi;
        const double z = sin_i * su;
        ++swept;
        if (gx * x + gy * y + gz * z >= cos_gate) {
          ++evals;
          const SatId id{s, p, i};
          const geo::GeoPoint pos = position(id, t_sec);
          const double elev = geo::elevation_deg(ground, pos);
          if (elev >= min_elevation_deg &&
              (!best || elev > best->elevation_deg)) {
            best = VisibleSat{id, pos, elev,
                              geo::slant_range_km(
                                  {ground.lat_deg, ground.lon_deg, 0.0}, pos)};
          }
        }
        const double cu_next = cu * cos_du - su * sin_du;
        su = su * cos_du + cu * sin_du;
        cu = cu_next;
      }
    }
  }
  queries.add(1);
  sats_swept.add(swept);
  exact_evals.add(evals);
  return best;
}

void GeoFleet::add_slot(std::string name, double lon_deg) {
  slots_.push_back({std::move(name), lon_deg});
}

geo::GeoPoint GeoFleet::position(std::size_t slot) const {
  return {0.0, slots_.at(slot).lon_deg, geo::kGeoAltitudeKm};
}

std::optional<VisibleSat> GeoFleet::best_visible(const geo::GeoPoint& ground,
                                                 double min_elevation_deg) const {
  std::optional<VisibleSat> best;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const geo::GeoPoint pos = position(i);
    const double elev = geo::elevation_deg(ground, pos);
    if (elev < min_elevation_deg) continue;
    if (!best || elev > best->elevation_deg) {
      best = VisibleSat{SatId{0, 0, i}, pos, elev,
                        geo::slant_range_km({ground.lat_deg, ground.lon_deg, 0.0}, pos)};
    }
  }
  return best;
}

}  // namespace satnet::orbit
