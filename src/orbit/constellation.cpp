#include "orbit/constellation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace satnet::orbit {

namespace {

void validate_shells(const std::vector<Shell>& shells) {
  for (const auto& s : shells) {
    if (s.planes == 0 || s.sats_per_plane == 0) {
      throw std::invalid_argument(
          "orbit: shell \"" + s.name +
          "\" needs planes >= 1 and sats_per_plane >= 1 (got planes=" +
          std::to_string(s.planes) +
          ", sats_per_plane=" + std::to_string(s.sats_per_plane) + ")");
    }
  }
}

std::vector<std::size_t> build_shell_begin(const std::vector<Shell>& shells) {
  std::vector<std::size_t> begin;
  begin.reserve(shells.size() + 1);
  std::size_t off = 0;
  for (const auto& s : shells) {
    begin.push_back(off);
    off += s.total_sats();
  }
  begin.push_back(off);
  return begin;
}

/// Per-shell visibility cone gate: on a spherical Earth, elevation >=
/// E_min is exactly central angle theta <= theta_max with
///   cos(E_min + theta_max) = (R / (R + h)) * cos(E_min).
/// The 1e-6 rad slack absorbs rotation-recurrence rounding so the cone
/// never rejects a satellite the exact test would accept.
double cone_cos_gate(double altitude_km, double e_min_rad) {
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + altitude_km);
  const double theta_max =
      std::acos(std::clamp(ratio * std::cos(e_min_rad), -1.0, 1.0)) - e_min_rad;
  return std::cos(theta_max + 1e-6);
}

void ground_unit(const geo::GeoPoint& ground, double& gx, double& gy, double& gz) {
  const double glat = geo::deg_to_rad(ground.lat_deg);
  const double glon = geo::deg_to_rad(ground.lon_deg);
  gx = std::cos(glat) * std::cos(glon);
  gy = std::cos(glat) * std::sin(glon);
  gz = std::sin(glat);
}

}  // namespace

Constellation::Constellation(std::vector<Shell> shells)
    : Constellation(std::move(shells), OrbitModel::walker) {}

Constellation::Constellation(std::vector<Shell> shells, OrbitModel model)
    : shells_(std::move(shells)) {
  validate_shells(shells_);
  shell_begin_ = build_shell_begin(shells_);
  if (model == OrbitModel::walker) {
    propagator_ = std::make_shared<const WalkerPropagator>(shells_);
  } else {
    propagator_ = std::make_shared<const Sgp4Propagator>(shells_);
  }
}

Constellation::Constellation(std::vector<Shell> shells,
                             std::shared_ptr<const Propagator> prop)
    : shells_(std::move(shells)), propagator_(std::move(prop)) {
  shell_begin_ = build_shell_begin(shells_);
}

Constellation Constellation::from_tles(std::vector<Tle> tles) {
  auto prop = std::make_shared<const Sgp4Propagator>(std::move(tles));
  return Constellation(std::vector<Shell>{}, std::move(prop));
}

std::size_t Constellation::total_sats() const { return propagator_->size(); }

std::size_t Constellation::flat_index(const SatId& id) const {
  if (shells_.empty()) return id.index;  // TLE catalogs: one synthetic shell
  return shell_begin_.at(id.shell) + id.plane * shells_[id.shell].sats_per_plane +
         id.index;
}

geo::GeoPoint Constellation::position(const SatId& id, double t_sec) const {
  if (propagator_->model() == OrbitModel::walker) {
    const Shell& shell = shells_.at(id.shell);
    return walker_position(shell, id.plane, id.index, t_sec);
  }
  return propagator_->position(flat_index(id), t_sec);
}

std::vector<VisibleSat> Constellation::visible(const geo::GeoPoint& ground, double t_sec,
                                               double min_elevation_deg) const {
  // Cone pre-filter (same gate math as best_visible, via the shared
  // sweep): only candidates inside the per-shell central-angle cone run
  // the exact ephemeris + elevation test. The gate admits every
  // satellite the exact test would accept, and the sweep visits slots in
  // canonical order, so results match the historical full-trig scan
  // bit for bit — it is purely a pre-filter.
  std::vector<VisibleSat> out;
  double gx, gy, gz;
  ground_unit(ground, gx, gy, gz);
  const double e_min = geo::deg_to_rad(min_elevation_deg);

  if (propagator_->model() == OrbitModel::walker) {
    walker_cone_sweep(
        shells_, gx, gy, gz, t_sec,
        [&](std::size_t s) { return cone_cos_gate(shells_[s].altitude_km, e_min); },
        [&](std::size_t s, std::size_t p, std::size_t i) {
          const SatId id{s, p, i};
          const geo::GeoPoint pos = position(id, t_sec);
          const double elev = geo::elevation_deg(ground, pos);
          if (elev >= min_elevation_deg) {
            out.push_back({id, pos, elev,
                           geo::slant_range_km({ground.lat_deg, ground.lon_deg, 0.0},
                                               pos)});
          }
        });
    return out;
  }

  const auto& sgp4 = static_cast<const Sgp4Propagator&>(*propagator_);
  const BatchFrame& frame = sgp4.frame_at(t_sec);
  const double gate = cone_cos_gate(sgp4.max_gate_altitude_km(), e_min);
  for (std::size_t f = 0; f < frame.size(); ++f) {
    if (gx * frame.ux[f] + gy * frame.uy[f] + gz * frame.uz[f] < gate) continue;
    const geo::GeoPoint pos{frame.lat_deg[f], frame.lon_deg[f], frame.alt_km[f]};
    const double elev = geo::elevation_deg(ground, pos);
    if (elev >= min_elevation_deg) {
      out.push_back({sat_id_from_flat(f), pos, elev,
                     geo::slant_range_km({ground.lat_deg, ground.lon_deg, 0.0}, pos)});
    }
  }
  return out;
}

SatId Constellation::sat_id_from_flat(std::size_t flat) const {
  if (shells_.empty()) return SatId{0, 0, flat};
  std::size_t s = 0;
  while (s + 1 < shells_.size() && flat >= shell_begin_[s + 1]) ++s;
  const std::size_t within = flat - shell_begin_[s];
  return SatId{s, within / shells_[s].sats_per_plane, within % shells_[s].sats_per_plane};
}

std::optional<VisibleSat> Constellation::best_visible(const geo::GeoPoint& ground,
                                                      double t_sec,
                                                      double min_elevation_deg) const {
  // Hot path for campaign simulation: a full-trig sweep of every satellite
  // costs ~1 ms per query for a Starlink-sized constellation. Instead,
  // prefilter with a central-angle cone test on ECEF unit vectors (see
  // cone_cos_gate); unit vectors come from incremental plane rotations in
  // walker_cone_sweep (no per-satellite trig) or a memoized SGP4 batch
  // frame. The exact position/elevation path runs only for the few
  // candidates inside the cone, preserving the sweep's selection order
  // and values bit-for-bit.
  double gx, gy, gz;
  ground_unit(ground, gx, gy, gz);
  const double e_min = geo::deg_to_rad(min_elevation_deg);

  // Cone-prefilter accounting: counted locally in the sweep and flushed
  // as three relaxed adds at the end, keeping PR 1's ~8x claim
  // continuously observable without taxing the per-satellite loop.
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& queries = obs::MetricsRegistry::global().counter(
      "orbit.best_visible.queries", "best_visible calls");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& sats_swept = obs::MetricsRegistry::global().counter(
      "orbit.best_visible.sats_swept", "satellites tested against the cone gate");
  // satlint:allow(shared-state): cached reference to a thread-safe striped counter; magic-static init is synchronized
  static obs::Counter& exact_evals = obs::MetricsRegistry::global().counter(
      "orbit.best_visible.exact_evals",
      "satellites inside the cone that ran the exact ephemeris");
  std::uint64_t evals = 0;

  std::optional<VisibleSat> best;
  if (propagator_->model() == OrbitModel::walker) {
    walker_cone_sweep(
        shells_, gx, gy, gz, t_sec,
        [&](std::size_t s) { return cone_cos_gate(shells_[s].altitude_km, e_min); },
        [&](std::size_t s, std::size_t p, std::size_t i) {
          ++evals;
          const SatId id{s, p, i};
          const geo::GeoPoint pos = position(id, t_sec);
          const double elev = geo::elevation_deg(ground, pos);
          if (elev >= min_elevation_deg && (!best || elev > best->elevation_deg)) {
            best = VisibleSat{id, pos, elev,
                              geo::slant_range_km(
                                  {ground.lat_deg, ground.lon_deg, 0.0}, pos)};
          }
        });
  } else {
    const auto& sgp4 = static_cast<const Sgp4Propagator&>(*propagator_);
    const BatchFrame& frame = sgp4.frame_at(t_sec);
    const double gate = cone_cos_gate(sgp4.max_gate_altitude_km(), e_min);
    for (std::size_t f = 0; f < frame.size(); ++f) {
      if (gx * frame.ux[f] + gy * frame.uy[f] + gz * frame.uz[f] < gate) continue;
      ++evals;
      const geo::GeoPoint pos{frame.lat_deg[f], frame.lon_deg[f], frame.alt_km[f]};
      const double elev = geo::elevation_deg(ground, pos);
      if (elev >= min_elevation_deg && (!best || elev > best->elevation_deg)) {
        best = VisibleSat{sat_id_from_flat(f), pos, elev,
                          geo::slant_range_km({ground.lat_deg, ground.lon_deg, 0.0},
                                              pos)};
      }
    }
  }
  queries.add(1);
  sats_swept.add(propagator_->size());
  exact_evals.add(evals);
  return best;
}

void GeoFleet::add_slot(std::string name, double lon_deg) {
  slots_.push_back({std::move(name), lon_deg});
}

geo::GeoPoint GeoFleet::position(std::size_t slot) const {
  return {0.0, slots_.at(slot).lon_deg, geo::kGeoAltitudeKm};
}

std::optional<VisibleSat> GeoFleet::best_visible(const geo::GeoPoint& ground,
                                                 double min_elevation_deg) const {
  std::optional<VisibleSat> best;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const geo::GeoPoint pos = position(i);
    const double elev = geo::elevation_deg(ground, pos);
    if (elev < min_elevation_deg) continue;
    if (!best || elev > best->elevation_deg) {
      // The sentinel shell keeps GEO ids disjoint from Walker shell 0
      // (consumers mixing fleets used to see colliding {0, 0, i} ids).
      best = VisibleSat{SatId{kGeoShellIndex, 0, i}, pos, elev,
                        geo::slant_range_km({ground.lat_deg, ground.lon_deg, 0.0}, pos)};
    }
  }
  return best;
}

}  // namespace satnet::orbit
