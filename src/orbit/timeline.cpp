#include "orbit/timeline.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "fault/hook.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "orbit/access.hpp"
#include "orbit/access_index.hpp"
// satlint:allow(layering): deliberate inversion — timeline construction fans out on the shared pool; DESIGN.md §14 records the debt
#include "runtime/thread_pool.hpp"

namespace satnet::orbit {

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double from_bits(std::uint64_t v) { return std::bit_cast<double>(v); }

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct TimelineCounters {
  obs::Counter& build_ms;
  obs::Counter& build_epochs;
  obs::Counter& build_bytes;
  obs::Counter& replay_hit;
  obs::Counter& replay_fallback;
};

TimelineCounters& counters() {
  // satlint:allow(shared-state): cached references to thread-safe striped counters; magic-static init is synchronized
  static TimelineCounters c{
      obs::MetricsRegistry::global().counter("timeline.build.ms",
                                             "wall milliseconds spent building timeline layers"),
      obs::MetricsRegistry::global().counter(
          "timeline.build.epochs", "per-epoch entries materialized (serving + sample)"),
      obs::MetricsRegistry::global().counter("timeline.build.bytes",
                                             "payload bytes of newly built timeline entries"),
      obs::MetricsRegistry::global().counter("timeline.replay.hit",
                                             "access queries answered from the timeline"),
      obs::MetricsRegistry::global().counter(
          "timeline.replay.fallback",
          "access queries a snapshot could not answer (uncovered key or stale era)"),
  };
  return c;
}

/// --no-timeline switch. Default on: a timeline only ever replays
/// values the on-demand path would compute, so opting out is an
/// ablation, not a safety valve.
std::atomic<bool> g_timeline_enabled{true};

/// Suppresses replay hit/fallback counting while ensure() itself probes
/// networks (its serving/sample computations route back through the
/// access layer, which consults any previously installed snapshot).
thread_local bool g_in_build = false;

/// Timeline layer tags for flight-recorder replay events (the `a`
/// payload word): which lookup table answered or missed.
constexpr std::uint64_t kServingLayer = 0;
constexpr std::uint64_t kSampleLayer = 1;

/// Counter bump + flight-recorder record for one replay outcome. Build
/// probes stay silent (same suppression as the counters). The record is
/// det inside a shard scope: for a fixed thread count the shard's
/// replay sequence is deterministic.
void record_replay_hit(std::uint64_t layer) {
  if (g_in_build) return;
  counters().replay_hit.add(1);
  obs::FlightRecorder::global().record(obs::EventKind::timeline_hit, layer);
}

void record_replay_fallback(std::uint64_t layer) {
  if (g_in_build) return;
  counters().replay_fallback.add(1);
  obs::FlightRecorder::global().record(obs::EventKind::timeline_fallback, layer);
}

/// Hash of the fault events (outages, storms) active at time t — the
/// stored era key. Two times with equal keys and no plan edge between
/// them see an identical fault environment.
std::uint64_t era_fault_key(const fault::Hook* hook, double t_sec) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  if (!hook) return h;
  for (const auto& ev : hook->plan().events()) {
    if (ev.kind != fault::EventKind::gateway_outage &&
        ev.kind != fault::EventKind::handoff_storm) {
      continue;
    }
    if (!ev.active_at(t_sec)) continue;
    hash_mix(h, static_cast<std::uint64_t>(ev.kind));
    hash_mix(h, fnv1a(ev.target));
    hash_mix(h, bits(ev.t_start_sec));
    hash_mix(h, bits(ev.t_end_sec));
    hash_mix(h, bits(ev.magnitude));
  }
  return h;
}

/// Representative instant strictly inside era e of the boundary list:
/// the era's fault environment is constant, so any interior point
/// samples it. Eras follow upper_bound numbering: era 0 is (-inf,
/// b[0]), era e is [b[e-1], b[e]), the last era is [b[n-1], +inf).
double era_representative(const std::vector<double>& boundaries, std::size_t era) {
  if (boundaries.empty()) return 0.0;
  if (era == 0) return boundaries.front() - 1.0;
  if (era >= boundaries.size()) return boundaries.back() + 1.0;
  return boundaries[era - 1] + (boundaries[era] - boundaries[era - 1]) / 2.0;
}

/// Era boundary list under a given hook: PoP override edges plus
/// outage/storm window edges — the same partition AccessIndex uses.
std::vector<double> merged_boundaries(const std::vector<double>& static_boundaries,
                                      const fault::Hook* hook) {
  std::vector<double> out = static_boundaries;
  if (hook) {
    for (const auto& ev : hook->plan().events()) {
      if (ev.kind != fault::EventKind::gateway_outage &&
          ev.kind != fault::EventKind::handoff_storm) {
        continue;
      }
      out.push_back(ev.t_start_sec);
      out.push_back(ev.t_end_sec);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

std::vector<double> override_boundaries(const AccessConfig& config) {
  std::vector<double> out;
  for (const auto& ov : config.overrides) {
    out.push_back(ov.from_sec);
    out.push_back(ov.until_sec);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t next_timeline_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// The installed-snapshot set: an immutable vector sorted by identity
/// behind an atomic pointer. Installs build a new vector and retire the
/// old one into a graveyard (never destroyed), so a raw pointer
/// returned by find() stays valid for the process lifetime — the same
/// discipline fault::Hook::install uses for plans.
struct Registry {
  std::vector<std::shared_ptr<const EpochTimeline>> items;  ///< sorted by identity
};

std::atomic<const Registry*>& registry_slot() {
  static std::atomic<const Registry*> slot{nullptr};
  return slot;
}

std::mutex& registry_mutex() {
  // satlint:allow(shared-state): install-path mutex; magic-static init is synchronized and all mutation happens under the lock
  static std::mutex m;
  return m;
}

std::vector<std::unique_ptr<const Registry>>& registry_graveyard() {
  // satlint:allow(shared-state): retired registries, mutated only under registry_mutex; kept alive so replay pointers stay valid
  static std::vector<std::unique_ptr<const Registry>> g;
  return g;
}

}  // namespace

bool timeline_enabled() { return g_timeline_enabled.load(std::memory_order_relaxed); }

void set_timeline_enabled(bool enabled) {
  g_timeline_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t access_identity_hash(const AccessConfig& config,
                                   const Constellation* constellation) {
  std::uint64_t h = fnv1a(config.name);
  hash_mix(h, static_cast<std::uint64_t>(config.orbit));
  hash_mix(h, bits(config.min_elevation_deg));
  hash_mix(h, bits(config.scheduling_overhead_ms));
  hash_mix(h, bits(config.reconfig_interval_sec));
  for (const auto& pop : config.pops) {
    hash_mix(h, fnv1a(pop.name));
    hash_mix(h, fnv1a(pop.city));
    hash_mix(h, bits(pop.location.lat_deg));
    hash_mix(h, bits(pop.location.lon_deg));
  }
  for (const auto& gw : config.gateways) {
    hash_mix(h, fnv1a(gw.name));
    hash_mix(h, bits(gw.location.lat_deg));
    hash_mix(h, bits(gw.location.lon_deg));
    hash_mix(h, static_cast<std::uint64_t>(gw.pop_index));
  }
  for (const auto& ov : config.overrides) {
    hash_mix(h, bits(ov.region_center.lat_deg));
    hash_mix(h, bits(ov.region_center.lon_deg));
    hash_mix(h, bits(ov.radius_km));
    hash_mix(h, static_cast<std::uint64_t>(ov.pop_index));
    hash_mix(h, bits(ov.from_sec));
    hash_mix(h, bits(ov.until_sec));
  }
  if (constellation) {
    for (const auto& shell : constellation->shells()) {
      hash_mix(h, fnv1a(shell.name));
      hash_mix(h, bits(shell.altitude_km));
      hash_mix(h, bits(shell.inclination_deg));
      hash_mix(h, static_cast<std::uint64_t>(shell.planes));
      hash_mix(h, static_cast<std::uint64_t>(shell.sats_per_plane));
      hash_mix(h, static_cast<std::uint64_t>(shell.phase_factor));
    }
    // Non-default orbit models fold in the model tag and element hash so
    // a persisted Walker timeline can never answer for an SGP4 world (or
    // vice versa). Walker hashes are untouched — the shells above fully
    // determine its ephemeris — keeping every pre-existing persisted
    // timeline valid.
    if (constellation->model() != OrbitModel::walker) {
      hash_mix(h, fnv1a(to_string(constellation->model())));
      hash_mix(h, constellation->ephemeris_hash());
    }
  }
  return h;
}

// ------------------------------------------------------------ snapshot

EpochTimeline::EpochTimeline(std::uint64_t identity, Arrays arrays)
    : identity_(identity),
      instance_id_(next_timeline_id()),
      interval_sec_(arrays.interval_sec),
      static_boundaries_(std::move(arrays.static_boundaries)),
      boundaries_(std::move(arrays.boundaries)),
      era_keys_(std::move(arrays.era_keys)) {
  auto owned = std::make_shared<Arrays>(std::move(arrays));
  view_ = View{owned->s_lat,      owned->s_lon,  owned->s_epoch, owned->s_sat,
               owned->m_lat,      owned->m_lon,  owned->m_epoch, owned->m_era,
               owned->m_sat,      owned->m_popgw, owned->m_up,   owned->m_down,
               owned->m_backhaul, owned->m_sched, owned->m_oneway};
  backing_ = std::move(owned);
}

EpochTimeline::EpochTimeline(std::uint64_t identity, double interval_sec,
                             std::vector<double> static_boundaries,
                             std::vector<double> boundaries,
                             std::vector<std::uint64_t> era_keys, View view,
                             std::shared_ptr<const void> backing)
    : identity_(identity),
      instance_id_(next_timeline_id()),
      interval_sec_(interval_sec),
      static_boundaries_(std::move(static_boundaries)),
      boundaries_(std::move(boundaries)),
      era_keys_(std::move(era_keys)),
      view_(view),
      backing_(std::move(backing)) {}

EpochTimeline::~EpochTimeline() = default;

std::size_t EpochTimeline::byte_size() const {
  return serving_size() * (3 * sizeof(std::uint64_t) + sizeof(std::uint32_t)) +
         sample_size() *
             (3 * sizeof(std::uint64_t) + 3 * sizeof(std::uint32_t) + 5 * sizeof(std::uint64_t));
}

std::uint32_t EpochTimeline::pack_sat(const SatId& id) {
  return static_cast<std::uint32_t>((id.shell << 20) | (id.plane << 10) | id.index);
}

SatId EpochTimeline::unpack_sat(std::uint32_t packed) {
  return SatId{(packed >> 20) & 0x3FFu, (packed >> 10) & 0x3FFu, packed & 0x3FFu};
}

std::uint32_t EpochTimeline::era_of(double t_sec) const {
  return static_cast<std::uint32_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), t_sec) -
      boundaries_.begin());
}

// --------------------------------------------------- per-thread validity

namespace {

/// Distinct from every real hook pointer *and* nullptr, so a fresh
/// validity cache always refreshes once (same trick as AccessIndex).
const fault::Hook* validity_sentinel() {
  static const char tag = 0;
  return reinterpret_cast<const fault::Hook*>(&tag);
}

}  // namespace

struct EpochTimeline::Validity {
  const fault::Hook* generation = validity_sentinel();
  std::vector<std::uint8_t> valid;  ///< one flag per stored era
};

EpochTimeline::Validity& EpochTimeline::validity_for_thread() const {
  thread_local std::unordered_map<std::uint64_t, std::unique_ptr<Validity>> caches;
  auto& slot = caches[instance_id_];
  if (!slot) slot = std::make_unique<Validity>();
  Validity& v = *slot;

  const fault::Hook* hook = fault::Hook::active();
  if (v.generation == hook) return v;
  v.generation = hook;
  const std::size_t n_eras = boundaries_.size() + 1;
  v.valid.assign(n_eras, 1);
  // A stored era stays valid iff the *current* fault environment is
  // constant across its interval (no current boundary strictly inside)
  // and matches the environment it was built under (era-key compare at
  // a representative interior instant).
  const std::vector<double> current = merged_boundaries(static_boundaries_, hook);
  for (std::size_t e = 0; e < n_eras; ++e) {
    const bool open_low = e == 0;
    const bool open_high = e == n_eras - 1;
    const double lo = open_low ? 0.0 : boundaries_[e - 1];
    const double hi = open_high ? 0.0 : boundaries_[e];
    auto it = open_low ? current.begin()
                       : std::upper_bound(current.begin(), current.end(), lo);
    if (it != current.end() && (open_high || *it < hi)) {
      v.valid[e] = 0;
      continue;
    }
    if (era_fault_key(hook, era_representative(boundaries_, e)) != era_keys_[e]) {
      v.valid[e] = 0;
    }
  }
  return v;
}

// -------------------------------------------------------------- replay

namespace {

/// lower_bound over parallel sorted arrays compared as key tuples.
template <typename Less>
std::size_t soa_lower_bound(std::size_t n, Less less_at) {
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (less_at(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

EpochTimeline::ServingReplay EpochTimeline::replay_serving(const geo::GeoPoint& user,
                                                           double epoch_sec,
                                                           SatId* out) const {
  if (user.alt_km != 0.0) return ServingReplay::miss;  // keys are ground-level
  const std::uint64_t klat = bits(user.lat_deg);
  const std::uint64_t klon = bits(user.lon_deg);
  const std::uint64_t kepoch = bits(epoch_sec);
  const View& v = view_;
  const std::size_t i = soa_lower_bound(v.s_lat.size(), [&](std::size_t m) {
    if (v.s_lat[m] != klat) return v.s_lat[m] < klat;
    if (v.s_lon[m] != klon) return v.s_lon[m] < klon;
    return v.s_epoch[m] < kepoch;
  });
  if (i >= v.s_lat.size() || v.s_lat[i] != klat || v.s_lon[i] != klon ||
      v.s_epoch[i] != kepoch) {
    record_replay_fallback(kServingLayer);
    return ServingReplay::miss;
  }
  record_replay_hit(kServingLayer);
  if (v.s_sat[i] == kNoSat) return ServingReplay::outage;
  *out = unpack_sat(v.s_sat[i]);
  return ServingReplay::serving;
}

bool EpochTimeline::replay_sample(const geo::GeoPoint& user, double t_sec,
                                  double epoch_sec, AccessSample* out) const {
  if (user.alt_km != 0.0) return false;  // keys are ground-level; not counted
  const Validity& valid = validity_for_thread();
  const std::uint32_t era = era_of(t_sec);
  if (!valid.valid[era]) {
    record_replay_fallback(kSampleLayer);
    return false;
  }
  const std::uint64_t klat = bits(user.lat_deg);
  const std::uint64_t klon = bits(user.lon_deg);
  const std::uint64_t kepoch = bits(epoch_sec);
  const View& v = view_;
  const std::size_t i = soa_lower_bound(v.m_lat.size(), [&](std::size_t m) {
    if (v.m_lat[m] != klat) return v.m_lat[m] < klat;
    if (v.m_lon[m] != klon) return v.m_lon[m] < klon;
    if (v.m_epoch[m] != kepoch) return v.m_epoch[m] < kepoch;
    return v.m_era[m] < era;
  });
  if (i >= v.m_lat.size() || v.m_lat[i] != klat || v.m_lon[i] != klon ||
      v.m_epoch[i] != kepoch || v.m_era[i] != era) {
    record_replay_fallback(kSampleLayer);
    return false;
  }
  record_replay_hit(kSampleLayer);
  AccessSample s;
  if (v.m_sat[i] != kNoSat) {
    s.reachable = true;
    s.serving_sat = unpack_sat(v.m_sat[i]);
    s.pop_index = v.m_popgw[i] >> 16;
    s.gateway_index = v.m_popgw[i] & 0xFFFFu;
    s.up_ms = from_bits(v.m_up[i]);
    s.down_ms = from_bits(v.m_down[i]);
    s.backhaul_ms = from_bits(v.m_backhaul[i]);
    s.scheduling_ms = from_bits(v.m_sched[i]);
    s.one_way_ms = from_bits(v.m_oneway[i]);
  }
  *out = s;
  return true;
}

// ------------------------------------------------------------ registry

const EpochTimeline* EpochTimeline::find(std::uint64_t identity) {
  const Registry* reg = registry_slot().load(std::memory_order_acquire);
  if (!reg) return nullptr;
  const auto it = std::lower_bound(
      reg->items.begin(), reg->items.end(), identity,
      [](const auto& tl, std::uint64_t id) { return tl->identity() < id; });
  if (it == reg->items.end() || (*it)->identity() != identity) return nullptr;
  return it->get();
}

void EpochTimeline::install(std::shared_ptr<const EpochTimeline> timeline) {
  if (!timeline) return;
  std::lock_guard<std::mutex> lock(registry_mutex());
  const Registry* old = registry_slot().load(std::memory_order_acquire);
  auto next = std::make_unique<Registry>();
  if (old) next->items = old->items;
  const auto it = std::lower_bound(
      next->items.begin(), next->items.end(), timeline->identity(),
      [](const auto& tl, std::uint64_t id) { return tl->identity() < id; });
  if (it != next->items.end() && (*it)->identity() == timeline->identity()) {
    *it = std::move(timeline);
  } else {
    next->items.insert(it, std::move(timeline));
  }
  registry_slot().store(next.get(), std::memory_order_release);
  registry_graveyard().push_back(std::move(next));
}

std::vector<std::shared_ptr<const EpochTimeline>> EpochTimeline::installed() {
  const Registry* reg = registry_slot().load(std::memory_order_acquire);
  return reg ? reg->items : std::vector<std::shared_ptr<const EpochTimeline>>{};
}

void EpochTimeline::clear_installed() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto next = std::make_unique<Registry>();
  registry_slot().store(next.get(), std::memory_order_release);
  registry_graveyard().push_back(std::move(next));
}

// -------------------------------------------------------------- ensure

namespace {

struct ServingKey {
  std::uint64_t lat = 0, lon = 0, epoch = 0;
  friend bool operator<(const ServingKey& a, const ServingKey& b) {
    if (a.lat != b.lat) return a.lat < b.lat;
    if (a.lon != b.lon) return a.lon < b.lon;
    return a.epoch < b.epoch;
  }
  friend bool operator==(const ServingKey& a, const ServingKey& b) {
    return a.lat == b.lat && a.lon == b.lon && a.epoch == b.epoch;
  }
};

struct SampleKey {
  std::uint64_t lat = 0, lon = 0, epoch = 0;
  std::uint32_t era = 0;
  std::uint64_t t = 0;  ///< representative query instant (era-interior)
  friend bool operator<(const SampleKey& a, const SampleKey& b) {
    if (a.lat != b.lat) return a.lat < b.lat;
    if (a.lon != b.lon) return a.lon < b.lon;
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    if (a.era != b.era) return a.era < b.era;
    return a.t < b.t;
  }
  friend bool same_key(const SampleKey& a, const SampleKey& b) {
    return a.lat == b.lat && a.lon == b.lon && a.epoch == b.epoch && a.era == b.era;
  }
};

/// Runs `fn(i)` for i in [0, n), inline below a small threshold, else
/// chunked across a ThreadPool. Each i writes only its own output slot,
/// so the result is identical at any worker count.
void for_each_slot(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn) {
  const unsigned workers = runtime::resolve_threads(threads);
  constexpr std::size_t kInlineThreshold = 256;
  if (workers <= 1 || n < kInlineThreshold) {
    g_in_build = true;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    g_in_build = false;
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(64, n / (workers * 8u));
  runtime::ThreadPool pool(workers);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    pool.submit([begin, end, &fn] {
      g_in_build = true;
      for (std::size_t i = begin; i < end; ++i) fn(i);
      g_in_build = false;
    });
  }
  pool.wait_idle();
}

}  // namespace

void EpochTimeline::ensure(const AccessNetwork& net, std::vector<TimelineQuery> queries,
                           unsigned threads) {
  if (!timeline_enabled()) return;
  const AccessConfig& config = net.config();
  if (config.orbit == OrbitClass::geo || config.reconfig_interval_sec <= 0) return;
  if (queries.empty()) return;
  // Packed SatIds carry 10 bits per field; a constellation that does not
  // fit simply never gets a timeline (the on-demand path serves it).
  if (net.constellation_->shells().size() > 0x400) return;
  for (const auto& shell : net.constellation_->shells()) {
    if (shell.planes > 0x400 || shell.sats_per_plane > 0x400) return;
  }
  // TLE catalogs put every satellite in one synthetic shell at {0, 0, i}.
  if (net.constellation_->shells().empty() && net.constellation_->total_sats() > 0x400) {
    return;
  }
  // satlint:allow(nondet-source): build-cost telemetry; results never read it
  // satlint:allow(nondet-taint): t0 feeds only the build_ms counter; timeline epochs are a pure function of the constellation
  const auto t0 = std::chrono::steady_clock::now();

  const fault::Hook* hook = fault::Hook::active();
  std::vector<double> static_b = override_boundaries(config);
  std::vector<double> merged = merged_boundaries(static_b, hook);
  std::vector<std::uint64_t> era_keys(merged.size() + 1);
  for (std::size_t e = 0; e < era_keys.size(); ++e) {
    era_keys[e] = era_fault_key(hook, era_representative(merged, e));
  }

  // Canonical key sets: each query contributes a sample key at its
  // epoch and serving keys for the epoch and its predecessor (the
  // handoff comparison), deduplicated in sorted order.
  std::vector<ServingKey> skeys;
  std::vector<SampleKey> mkeys;
  skeys.reserve(queries.size() * 2);
  mkeys.reserve(queries.size());
  for (const auto& q : queries) {
    if (q.terminal.alt_km != 0.0) continue;  // replay keys are ground-level
    const double interval = net.effective_reconfig_interval(q.t_sec);
    if (interval <= 0) continue;
    const double epoch = std::floor(q.t_sec / interval) * interval;
    const std::uint64_t lat = bits(q.terminal.lat_deg);
    const std::uint64_t lon = bits(q.terminal.lon_deg);
    skeys.push_back({lat, lon, bits(epoch)});
    if (epoch - interval >= 0) skeys.push_back({lat, lon, bits(epoch - interval)});
    const auto era = static_cast<std::uint32_t>(
        std::upper_bound(merged.begin(), merged.end(), q.t_sec) - merged.begin());
    mkeys.push_back({lat, lon, bits(epoch), era, bits(q.t_sec)});
  }
  std::sort(skeys.begin(), skeys.end());
  skeys.erase(std::unique(skeys.begin(), skeys.end()), skeys.end());
  std::sort(mkeys.begin(), mkeys.end());
  mkeys.erase(std::unique(mkeys.begin(), mkeys.end(),
                          [](const SampleKey& a, const SampleKey& b) {
                            return same_key(a, b);
                          }),
              mkeys.end());

  // Reuse of the installed snapshot: the serving layer is always
  // mergeable (fault-independent); the sample layer carries over only
  // when the era partition and per-era keys are unchanged.
  const std::uint64_t identity = net.identity_hash();
  const EpochTimeline* existing = find(identity);
  const bool sample_reuse = existing && existing->static_boundaries_ == static_b &&
                            existing->boundaries_ == merged &&
                            existing->era_keys_ == era_keys;

  std::vector<ServingKey> missing_s;
  if (!existing) {
    missing_s = std::move(skeys);
  } else {
    const View& v = existing->view_;
    for (const auto& k : skeys) {
      const std::size_t i = soa_lower_bound(v.s_lat.size(), [&](std::size_t m) {
        if (v.s_lat[m] != k.lat) return v.s_lat[m] < k.lat;
        if (v.s_lon[m] != k.lon) return v.s_lon[m] < k.lon;
        return v.s_epoch[m] < k.epoch;
      });
      if (i >= v.s_lat.size() || v.s_lat[i] != k.lat || v.s_lon[i] != k.lon ||
          v.s_epoch[i] != k.epoch) {
        missing_s.push_back(k);
      }
    }
  }
  std::vector<SampleKey> missing_m;
  if (!sample_reuse) {
    missing_m = std::move(mkeys);
  } else {
    const View& v = existing->view_;
    for (const auto& k : mkeys) {
      const std::size_t i = soa_lower_bound(v.m_lat.size(), [&](std::size_t m) {
        if (v.m_lat[m] != k.lat) return v.m_lat[m] < k.lat;
        if (v.m_lon[m] != k.lon) return v.m_lon[m] < k.lon;
        if (v.m_epoch[m] != k.epoch) return v.m_epoch[m] < k.epoch;
        return v.m_era[m] < k.era;
      });
      if (i >= v.m_lat.size() || v.m_lat[i] != k.lat || v.m_lon[i] != k.lon ||
          v.m_epoch[i] != k.epoch || v.m_era[i] != k.era) {
        missing_m.push_back(k);
      }
    }
  }
  if (missing_s.empty() && missing_m.empty() && sample_reuse) return;  // warm

  // Build the missing values, each into its own slot. Serving decisions
  // route through the network (index caches apply); samples are the
  // exact on-demand computation at the stored representative instant —
  // within one (epoch, era) cell any instant yields identical bytes.
  std::vector<std::uint32_t> built_s(missing_s.size(), kNoSat);
  for_each_slot(missing_s.size(), threads, [&](std::size_t i) {
    const ServingKey& k = missing_s[i];
    const geo::GeoPoint user{from_bits(k.lat), from_bits(k.lon), 0.0};
    if (const auto sat = net.serving_sat_at_epoch(user, from_bits(k.epoch))) {
      built_s[i] = pack_sat(sat->id);
    }
  });
  std::vector<AccessSample> built_m(missing_m.size());
  for_each_slot(missing_m.size(), threads, [&](std::size_t i) {
    const SampleKey& k = missing_m[i];
    const geo::GeoPoint user{from_bits(k.lat), from_bits(k.lon), 0.0};
    const double t = from_bits(k.t);
    built_m[i] = net.build_sample(user, t, net.serving_sat_at_epoch(user, from_bits(k.epoch)));
  });

  // Deterministic merge: existing entries and fresh slots interleave in
  // key order, independent of how many workers computed them.
  Arrays arrays;
  arrays.interval_sec = config.reconfig_interval_sec;
  arrays.static_boundaries = std::move(static_b);
  arrays.boundaries = std::move(merged);
  arrays.era_keys = std::move(era_keys);

  const std::size_t old_s = existing ? existing->serving_size() : 0;
  arrays.s_lat.reserve(old_s + missing_s.size());
  arrays.s_lon.reserve(old_s + missing_s.size());
  arrays.s_epoch.reserve(old_s + missing_s.size());
  arrays.s_sat.reserve(old_s + missing_s.size());
  {
    std::size_t a = 0, b = 0;
    const View* v = existing ? &existing->view_ : nullptr;
    const std::size_t na = existing ? old_s : 0;
    while (a < na || b < missing_s.size()) {
      bool take_existing;
      if (a >= na) {
        take_existing = false;
      } else if (b >= missing_s.size()) {
        take_existing = true;
      } else {
        const ServingKey ka{v->s_lat[a], v->s_lon[a], v->s_epoch[a]};
        take_existing = ka < missing_s[b];
      }
      if (take_existing) {
        arrays.s_lat.push_back(v->s_lat[a]);
        arrays.s_lon.push_back(v->s_lon[a]);
        arrays.s_epoch.push_back(v->s_epoch[a]);
        arrays.s_sat.push_back(v->s_sat[a]);
        ++a;
      } else {
        arrays.s_lat.push_back(missing_s[b].lat);
        arrays.s_lon.push_back(missing_s[b].lon);
        arrays.s_epoch.push_back(missing_s[b].epoch);
        arrays.s_sat.push_back(built_s[b]);
        ++b;
      }
    }
  }

  const std::size_t old_m = sample_reuse ? existing->sample_size() : 0;
  const std::size_t total_m = old_m + missing_m.size();
  arrays.m_lat.reserve(total_m);
  arrays.m_lon.reserve(total_m);
  arrays.m_epoch.reserve(total_m);
  arrays.m_era.reserve(total_m);
  arrays.m_sat.reserve(total_m);
  arrays.m_popgw.reserve(total_m);
  arrays.m_up.reserve(total_m);
  arrays.m_down.reserve(total_m);
  arrays.m_backhaul.reserve(total_m);
  arrays.m_sched.reserve(total_m);
  arrays.m_oneway.reserve(total_m);
  {
    const auto push_existing = [&](const View& v, std::size_t a) {
      arrays.m_lat.push_back(v.m_lat[a]);
      arrays.m_lon.push_back(v.m_lon[a]);
      arrays.m_epoch.push_back(v.m_epoch[a]);
      arrays.m_era.push_back(v.m_era[a]);
      arrays.m_sat.push_back(v.m_sat[a]);
      arrays.m_popgw.push_back(v.m_popgw[a]);
      arrays.m_up.push_back(v.m_up[a]);
      arrays.m_down.push_back(v.m_down[a]);
      arrays.m_backhaul.push_back(v.m_backhaul[a]);
      arrays.m_sched.push_back(v.m_sched[a]);
      arrays.m_oneway.push_back(v.m_oneway[a]);
    };
    const auto push_built = [&](std::size_t b) {
      const SampleKey& k = missing_m[b];
      const AccessSample& s = built_m[b];
      arrays.m_lat.push_back(k.lat);
      arrays.m_lon.push_back(k.lon);
      arrays.m_epoch.push_back(k.epoch);
      arrays.m_era.push_back(k.era);
      arrays.m_sat.push_back(s.reachable ? pack_sat(*s.serving_sat) : kNoSat);
      arrays.m_popgw.push_back(static_cast<std::uint32_t>(s.pop_index) << 16 |
                               static_cast<std::uint32_t>(s.gateway_index));
      arrays.m_up.push_back(bits(s.up_ms));
      arrays.m_down.push_back(bits(s.down_ms));
      arrays.m_backhaul.push_back(bits(s.backhaul_ms));
      arrays.m_sched.push_back(bits(s.scheduling_ms));
      arrays.m_oneway.push_back(bits(s.one_way_ms));
    };
    std::size_t a = 0, b = 0;
    while (a < old_m || b < missing_m.size()) {
      bool take_existing;
      if (a >= old_m) {
        take_existing = false;
      } else if (b >= missing_m.size()) {
        take_existing = true;
      } else {
        const View& v = existing->view_;
        const SampleKey ka{v.m_lat[a], v.m_lon[a], v.m_epoch[a], v.m_era[a], 0};
        take_existing = ka < missing_m[b];
      }
      if (take_existing) {
        push_existing(existing->view_, a);
        ++a;
      } else {
        push_built(b);
        ++b;
      }
    }
  }

  auto snapshot = std::make_shared<EpochTimeline>(identity, std::move(arrays));
  const std::size_t new_bytes =
      missing_s.size() * (3 * sizeof(std::uint64_t) + sizeof(std::uint32_t)) +
      missing_m.size() * (3 * sizeof(std::uint64_t) + 3 * sizeof(std::uint32_t) +
                          5 * sizeof(std::uint64_t));
  install(std::move(snapshot));

  // satlint:allow(nondet-source): build-cost telemetry; results never read it
  // satlint:allow(nondet-taint): elapsed feeds only the build_ms counter; the installed snapshot is already immutable
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  counters().build_ms.add(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()));
  counters().build_epochs.add(missing_s.size() + missing_m.size());
  counters().build_bytes.add(new_bytes);
}

// ------------------------------------------------------------- summary

std::string timeline_summary_line() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const std::uint64_t hit = reg.counter("timeline.replay.hit", "").value();
  const std::uint64_t fallback = reg.counter("timeline.replay.fallback", "").value();
  const std::uint64_t epochs = reg.counter("timeline.build.epochs", "").value();
  const std::uint64_t ms = reg.counter("timeline.build.ms", "").value();
  const std::uint64_t bytes = reg.counter("timeline.build.bytes", "").value();
  const std::uint64_t loads = reg.counter("timeline.io.load", "").value();
  const std::uint64_t mmap_bytes = reg.counter("timeline.io.mmap_bytes", "").value();
  if (hit + fallback + epochs + loads == 0) return "";

  char buf[256];
  std::string line = "timeline:";
  if (hit + fallback > 0) {
    // Hit ratio only when there were lookups at all (the guard the
    // observability checklist calls out).
    std::snprintf(buf, sizeof(buf), " replay %llu hits / %llu fallbacks (%.1f%% hit)",
                  static_cast<unsigned long long>(hit),
                  static_cast<unsigned long long>(fallback),
                  100.0 * static_cast<double>(hit) / static_cast<double>(hit + fallback));
    line += buf;
  }
  if (epochs > 0) {
    std::snprintf(buf, sizeof(buf), "%s built %llu epochs in %llu ms (%.1f MB)",
                  (hit + fallback > 0) ? "," : "",
                  static_cast<unsigned long long>(epochs),
                  static_cast<unsigned long long>(ms),
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    line += buf;
  }
  if (loads > 0) {
    std::snprintf(buf, sizeof(buf), "%s loaded %llu file%s (%.1f MB mmap)",
                  (hit + fallback + epochs > 0) ? "," : "",
                  static_cast<unsigned long long>(loads), loads == 1 ? "" : "s",
                  static_cast<double>(mmap_bytes) / (1024.0 * 1024.0));
    line += buf;
  }
  return line;
}

}  // namespace satnet::orbit
