#include "synth/asdb.hpp"

#include <algorithm>

namespace satnet::synth {

std::vector<AsdbRecord> asdb_satellite_category() {
  std::vector<AsdbRecord> out;
  for (const auto& spec : catalog()) {
    for (const auto& asn : spec.asns) {
      if (!asn.in_asdb) continue;  // ASdb's coverage gaps (Starlink, Viasat)
      out.push_back({asn.asn, spec.name, "Satellite Communication"});
    }
  }
  return out;
}

std::vector<bgp::Asn> he_bgp_search(const std::string& name_substring) {
  std::vector<bgp::Asn> out;
  std::string needle = name_substring;
  std::transform(needle.begin(), needle.end(), needle.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (const auto& spec : catalog()) {
    if (spec.name.find(needle) == std::string::npos) continue;
    for (const auto& asn : spec.asns) out.push_back(asn.asn);
  }
  return out;
}

std::optional<IpInfoRecord> ipinfo_lookup(bgp::Asn asn) {
  for (const auto& spec : catalog()) {
    for (const auto& profile : spec.asns) {
      if (profile.asn != asn) continue;
      IpInfoRecord r;
      r.asn = asn;
      r.organization = spec.name;
      r.website = "https://www." + spec.name + ".example";
      r.kind = spec.kind;
      r.declared_orbit = spec.primary_orbit;
      r.declared_multi_orbit = spec.multi_orbit;
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace satnet::synth
