#include "synth/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/places.hpp"

namespace satnet::synth {

namespace {

/// Deterministic integer hash for hybrid-state flips.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ull ^ b;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  return x ^ (x >> 31);
}

/// Starlink capacity varies by continent (European cells are lightly
/// loaded in the study window; North America is the busiest).
double starlink_continent_capacity_factor(const std::string& country) {
  switch (geo::continent_of(country)) {
    case geo::Continent::europe: return 2.1;
    case geo::Continent::oceania: return 1.0;
    case geo::Continent::south_america: return 1.2;
    default: return 0.85;
  }
}

}  // namespace

World::World(WorldConfig config) : config_(config) {
  starlink_constellation_ =
      std::make_shared<orbit::Constellation>(orbit::starlink_shells());
  oneweb_constellation_ =
      std::make_shared<orbit::Constellation>(std::vector{orbit::oneweb_shell()});
  meo_constellation_ =
      std::make_shared<orbit::Constellation>(std::vector{orbit::o3b_shell()});
  build_access_networks();
  stats::Rng rng(config_.seed);
  build_subscribers(rng);
}

void World::build_access_networks() {
  const auto specs = catalog();
  primary_access_.resize(specs.size());
  geo_secondary_.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SnoSpec& s = specs[i];
    if (s.kind != EntityKind::sno) continue;
    using orbit::OrbitClass;
    if (s.name == "starlink") {
      primary_access_[i] = std::make_unique<orbit::AccessNetwork>(
          orbit::make_starlink_access(starlink_constellation_));
    } else if (s.name == "oneweb") {
      primary_access_[i] = std::make_unique<orbit::AccessNetwork>(
          orbit::make_oneweb_access(oneweb_constellation_, s.scheduling_overhead_ms));
    } else if (s.primary_orbit == OrbitClass::meo) {
      primary_access_[i] = std::make_unique<orbit::AccessNetwork>(
          orbit::make_o3b_access(meo_constellation_, s.scheduling_overhead_ms));
    } else {
      primary_access_[i] = std::make_unique<orbit::AccessNetwork>(orbit::make_geo_access(
          s.teleport_city, s.slot_lon_deg, s.scheduling_overhead_ms));
    }
    if (s.multi_orbit) {
      geo_secondary_[i] = std::make_unique<orbit::AccessNetwork>(orbit::make_geo_access(
          s.teleport_city, s.slot_lon_deg, s.scheduling_overhead_ms));
    }
  }
}

void World::build_subscribers(stats::Rng& rng) {
  const auto specs = catalog();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SnoSpec& s = specs[i];
    if (s.kind != EntityKind::sno || !s.in_mlab || s.regions.empty()) continue;

    const auto n = static_cast<std::size_t>(std::clamp(
        std::sqrt(static_cast<double>(s.mlab_tests)) * config_.subscriber_scale,
        static_cast<double>(config_.min_subscribers),
        static_cast<double>(config_.max_subscribers)));

    // One address pool per operator. Viasat gets the prefix block the
    // paper calls out (45.232.112.0/22 contains 45.232.115.0/24).
    net::PrefixPool pool = s.name == "viasat"
                               ? net::PrefixPool(net::Ipv4(45, 232, 112, 0), 64)
                               : net::PrefixPool(
                                     net::Ipv4(45, static_cast<std::uint8_t>(40 + i), 0, 0),
                                     256);

    std::vector<double> region_weights;
    for (const auto& r : s.regions) region_weights.push_back(r.weight);

    stats::Rng sub_rng = rng.fork(s.name);
    std::vector<Subscriber> spec_subs;
    spec_subs.reserve(n);

    for (std::size_t k = 0; k < n; ++k) {
      Subscriber sub;
      sub.spec_index = i;

      // ASN: the first profile carries most subscribers.
      const std::size_t asn_idx =
          s.asns.size() == 1 || sub_rng.uniform() < 0.8
              ? 0
              : 1 + static_cast<std::size_t>(sub_rng.uniform_int(
                        0, static_cast<std::int64_t>(s.asns.size()) - 2));
      const AsnProfile& ap = s.asns[asn_idx];
      sub.asn = ap.asn;

      // Location: weighted region, scattered around the anchor city.
      const RegionWeight& region = s.regions[sub_rng.weighted_index(region_weights)];
      const geo::GeoPoint anchor = geo::city_point(region.city);
      sub.location = {anchor.lat_deg + sub_rng.uniform(-region.scatter_deg,
                                                       region.scatter_deg),
                      anchor.lon_deg + sub_rng.uniform(-region.scatter_deg,
                                                       region.scatter_deg),
                      0.0};
      sub.location.lat_deg = std::clamp(sub.location.lat_deg, -80.0, 80.0);
      sub.country = region.country;

      // Access technology mix within the ASN.
      const double roll = sub_rng.uniform();
      if (roll < ap.terrestrial_frac) {
        sub.tech = AccessTech::terrestrial;
      } else if (roll < ap.terrestrial_frac + ap.hybrid_frac) {
        sub.tech = AccessTech::hybrid_backup;
      } else {
        sub.tech = AccessTech::satellite;
      }
      sub.orbit = s.primary_orbit;
      if (s.multi_orbit && sub_rng.uniform() < ap.secondary_orbit_frac) {
        sub.orbit = orbit::OrbitClass::geo;
      }

      // Subscription plan capacity.
      double factor = 1.0;
      if (s.name == "starlink") factor = starlink_continent_capacity_factor(sub.country);
      sub.plan_down_mbps = std::max(
          0.3, sub_rng.lognormal_median(s.traits.down_mbps_median * factor,
                                        s.traits.down_mbps_sigma));
      sub.plan_up_mbps = std::max(
          0.2, sub_rng.lognormal_median(s.traits.up_mbps_median * factor,
                                        s.traits.up_mbps_sigma));
      sub.terrestrial_rtt_ms = sub_rng.uniform(12.0, 45.0);
      spec_subs.push_back(std::move(sub));
    }

    // Address assignment mirrors real allocation practice: operators
    // number wireline plants, hybrid plans, and satellite beams from
    // different blocks, so a /24 is usually technology-homogeneous — with
    // mixed prefixes at block boundaries (the paper's 45.232.115.0/24).
    std::stable_sort(spec_subs.begin(), spec_subs.end(),
                     [](const Subscriber& a, const Subscriber& b) {
                       if (a.asn != b.asn) return a.asn < b.asn;
                       if (a.tech != b.tech) return static_cast<int>(a.tech) <
                                                    static_cast<int>(b.tech);
                       return static_cast<int>(a.orbit) < static_cast<int>(b.orbit);
                     });
    constexpr std::uint8_t kHostsPerPrefix = 48;
    net::Prefix24 current = pool.allocate();
    std::uint8_t next_host = 1;
    bgp::Asn current_asn = spec_subs.empty() ? 0 : spec_subs.front().asn;
    for (auto& sub : spec_subs) {
      if (next_host > kHostsPerPrefix || sub.asn != current_asn) {
        current = pool.allocate();
        next_host = 1;
        current_asn = sub.asn;
      }
      sub.prefix = current;
      sub.ip = current.host(next_host++);
      subscribers_.push_back(std::move(sub));
    }
  }
}

std::vector<const Subscriber*> World::subscribers_of(const std::string& sno_name) const {
  std::vector<const Subscriber*> out;
  const auto specs = catalog();
  for (const auto& sub : subscribers_) {
    if (specs[sub.spec_index].name == sno_name) out.push_back(&sub);
  }
  return out;
}

const orbit::AccessNetwork& World::access_for(std::size_t spec_index,
                                              orbit::OrbitClass orbit_class) const {
  const SnoSpec& s = catalog()[spec_index];
  if (s.multi_orbit && orbit_class == orbit::OrbitClass::geo &&
      s.primary_orbit != orbit::OrbitClass::geo) {
    if (!geo_secondary_[spec_index]) {
      throw std::logic_error("no GEO secondary for " + s.name);
    }
    return *geo_secondary_[spec_index];
  }
  if (!primary_access_[spec_index]) {
    throw std::logic_error("no access network for " + s.name);
  }
  return *primary_access_[spec_index];
}

int World::hybrid_state(const Subscriber& sub, double t_sec) const {
  // Hour-granularity state: ~60% wired-good, 22% wired-degraded, 18% on
  // the satellite backup — the three latency clusters of Fig 3b's inset.
  const auto hour = static_cast<std::uint64_t>(t_sec / 3600.0);
  const std::uint64_t h = mix(sub.ip.value() ^ config_.seed, hour);
  const double u = static_cast<double>(h % 10000) / 10000.0;
  if (u < 0.60) return 0;
  if (u < 0.82) return 1;
  return 2;
}

bool World::truly_satellite(const Subscriber& sub, double t_sec) const {
  switch (sub.tech) {
    case AccessTech::terrestrial: return false;
    case AccessTech::satellite: return true;
    case AccessTech::hybrid_backup: return hybrid_state(sub, t_sec) == 2;
  }
  return false;
}

Subscriber World::make_subscriber(const std::string& sno_name,
                                  const geo::GeoPoint& location,
                                  const std::string& country, stats::Rng& rng) const {
  const auto specs = catalog();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name != sno_name) continue;
    const SnoSpec& s = specs[i];
    Subscriber sub;
    sub.spec_index = i;
    sub.asn = s.asns.front().asn;
    sub.location = location;
    sub.country = country;
    sub.tech = AccessTech::satellite;
    sub.orbit = s.primary_orbit;
    double factor = 1.0;
    if (s.name == "starlink") factor = starlink_continent_capacity_factor(country);
    sub.plan_down_mbps = std::max(
        0.3, rng.lognormal_median(s.traits.down_mbps_median * factor,
                                  s.traits.down_mbps_sigma));
    sub.plan_up_mbps = std::max(
        0.2, rng.lognormal_median(s.traits.up_mbps_median * factor,
                                  s.traits.up_mbps_sigma));
    sub.prefix = net::Prefix24(net::Ipv4(45, static_cast<std::uint8_t>(40 + i), 200, 0));
    sub.ip = sub.prefix.host(static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    return sub;
  }
  throw std::out_of_range("unknown operator: " + sno_name);
}

PathSample World::sample_path(const Subscriber& sub, double t_sec,
                                     stats::Rng& rng) const {
  PathSample out;
  const SnoSpec& spec = catalog()[sub.spec_index];

  AccessTech tech = sub.tech;
  double wired_rtt = sub.terrestrial_rtt_ms;
  if (tech == AccessTech::hybrid_backup) {
    switch (hybrid_state(sub, t_sec)) {
      case 0: tech = AccessTech::terrestrial; break;
      case 1:  // degraded wireline / LTE fallback: the 100-150 ms cluster
        tech = AccessTech::terrestrial;
        wired_rtt = rng.uniform(100.0, 150.0);
        break;
      default: tech = AccessTech::satellite; break;
    }
  }
  out.tech_used = tech;

  if (tech == AccessTech::terrestrial) {
    transport::PathProfile p;
    p.base_rtt_ms = wired_rtt + rng.uniform(-3.0, 3.0);
    p.jitter_ms = 2.0;
    p.bottleneck_mbps = rng.lognormal_median(250.0, 0.4);
    p.buffer_bdp = 2.0;
    p.ground_loss = 0.0001;
    out.download = p;
    out.upload = p;
    out.upload.bottleneck_mbps = p.bottleneck_mbps * 0.6;
    out.access_one_way_ms = p.base_rtt_ms / 2.0;
    out.ok = true;
    return out;
  }

  const orbit::AccessNetwork& net = access_for(sub.spec_index, sub.orbit);
  const orbit::AccessSample access = net.sample_with_handoff(sub.location, t_sec);
  if (!access.reachable) return out;  // outage

  // Measurement servers sit at exchange points one peering leg beyond
  // the PoP (M-Lab pods are close to, not inside, operator PoPs).
  const double server_extra_ms = rng.uniform(8.0, 22.0);
  stats::Rng link_rng = rng.fork(sub.ip.value());
  out.download =
      transport::build_download_profile(access, spec.traits, server_extra_ms, link_rng);
  out.upload =
      transport::build_upload_profile(access, spec.traits, server_extra_ms, link_rng);
  // The subscription plan, not the operator median, bounds this user.
  out.download.bottleneck_mbps = sub.plan_down_mbps * rng.uniform(0.75, 1.1);
  out.upload.bottleneck_mbps = sub.plan_up_mbps * rng.uniform(0.75, 1.1);
  out.access_one_way_ms = access.one_way_ms;
  out.handoff = access.handoff;
  out.ok = true;

  if (config_.enable_weather) {
    const weather::WeatherField field(config_.weather);
    out.sky = field.at(sub.location, t_sec);
    const weather::LinkImpact hit = field.impact(out.sky, sub.orbit, t_sec, sub.location);
    if (hit.outage) {
      out.ok = false;
      return out;
    }
    transport::apply_impairment(out.download, hit);
    transport::apply_impairment(out.upload, hit);
  }
  // Fault-plan burst loss on the space segment applies with or without
  // the weather overlay.
  transport::apply_link_faults(out.download, spec.name, t_sec);
  transport::apply_link_faults(out.upload, spec.name, t_sec);
  return out;
}

}  // namespace satnet::synth
