// Seeded scenario generator: whole worlds as pure values.
//
// The paper's cross-SNO comparison is only as strong as the scenarios it
// was checked against. This module turns "a scenario" into data: a
// ScenarioSpec describes one world — constellation mix (LEO+MEO+GEO via
// Walker parameters), moving weather fronts, mobile terminal tracks
// (maritime/aviation waypoint interpolation), population-skewed fixed
// terminals, and an auto-generated fault plan — and every field derives
// from a single u64 through Rng::fork_stable chains keyed by component
// names. Same seed, same spec, byte for byte; the spec (not the seed) is
// what the matrix harness shrinks when an invariant trips, so a minimal
// failing world stays a plain printable value.
//
// GeneratedWorld materializes a spec into live AccessNetworks and a
// WeatherField. Materialization is deterministic and side-effect free —
// two GeneratedWorlds from equal specs answer every query identically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fault/plan.hpp"
#include "geo/geodesy.hpp"
#include "orbit/access.hpp"
#include "orbit/propagator.hpp"
#include "orbit/shell.hpp"
#include "transport/linkmodel.hpp"
#include "weather/weather.hpp"

namespace satnet::synth {

/// How a terminal moves over the scenario horizon.
enum class Mobility { fixed, maritime, aviation };

std::string_view to_string(Mobility m);

/// One terminal: a fixed dish or a mobile track. Mobile terminals loop
/// along their waypoint polyline at constant speed (ship or aircraft);
/// positions come from geo::interpolate, so tracks cross the
/// antimeridian correctly.
struct TerminalSpec {
  std::string name;                      ///< stable Rng key ("term4")
  std::size_t network = 0;               ///< index into ScenarioSpec::networks
  Mobility mobility = Mobility::fixed;
  std::vector<geo::GeoPoint> waypoints;  ///< 1 point for fixed terminals
  double speed_kmh = 0;                  ///< 0 for fixed
};

/// One operator network: a Walker constellation (LEO/MEO) or a parked
/// GEO slot, plus the ground segment drawn from the gazetteer.
struct NetworkSpec {
  std::string name;                      ///< fault-plan target + Rng key
  orbit::OrbitClass orbit = orbit::OrbitClass::leo;
  /// Ephemeris backend for the shells (LEO/MEO only): closed-form Walker
  /// or SGP4 perturbed propagation, so the matrix fuzzes both.
  orbit::OrbitModel model = orbit::OrbitModel::walker;
  std::vector<orbit::Shell> shells;      ///< LEO/MEO only
  double slot_lon_deg = 0;               ///< GEO only
  double min_elevation_deg = 25.0;
  double scheduling_overhead_ms = 10.0;
  double reconfig_interval_sec = 15.0;   ///< <= 0 for GEO
  std::vector<std::string> pop_cities;
  /// Gateway i backhauls into pop i % pop_cities.size().
  std::vector<std::string> gateway_cities;
  transport::LinkTraits traits;
};

/// A complete generated world. Pure value: equality of to_text() is
/// equality of worlds for every consumer in the matrix harness.
struct ScenarioSpec {
  std::uint64_t seed = 0;
  double horizon_sec = 1800.0;
  double step_sec = 60.0;       ///< sampling cadence of the evaluation
  std::vector<NetworkSpec> networks;
  std::vector<TerminalSpec> terminals;
  weather::WeatherConfig weather;
  fault::FaultPlan faults;

  std::size_t total_satellites() const;
  std::size_t total_gateways() const;

  /// Canonical text form: deterministic field order and formatting, one
  /// component per line. Equal specs produce equal text; the matrix
  /// failure artifacts and the `satnetctl world` subcommand print this.
  std::string to_text() const;

  /// "seed=42 networks=3 sats=288 terminals=12 faults=5" — log lines.
  std::string summary() const;
};

/// Envelope the generator draws inside. The defaults keep one world
/// cheap enough for a 25+ world sweep in the PR gate while still
/// exercising every axis; the shrinker reuses the same bounds going
/// down.
struct WorldGenConfig {
  std::size_t min_terminals = 6;
  std::size_t max_terminals = 18;
  double min_horizon_sec = 900.0;
  double max_horizon_sec = 2700.0;
};

/// The generator: spec = f(seed, config), via fork_stable streams keyed
/// by component names — never by loop position — so adding an axis
/// never reshuffles the draws of existing ones.
ScenarioSpec generate_scenario(std::uint64_t seed, const WorldGenConfig& config = {});

/// Live world built from a spec.
class GeneratedWorld {
 public:
  explicit GeneratedWorld(ScenarioSpec spec);

  const ScenarioSpec& spec() const { return spec_; }
  std::size_t n_networks() const { return networks_.size(); }
  const orbit::AccessNetwork& network(std::size_t i) const { return *networks_[i]; }
  const weather::WeatherField& weather() const { return field_; }

  /// Position of terminal `i` at simulation time t: the fixed point, or
  /// the looped waypoint-polyline position for mobile terminals.
  geo::GeoPoint terminal_position(std::size_t i, double t_sec) const;

 private:
  ScenarioSpec spec_;
  std::vector<std::unique_ptr<orbit::AccessNetwork>> networks_;
  weather::WeatherField field_;
  /// Per-terminal cumulative polyline arc lengths (km), empty for fixed.
  std::vector<std::vector<double>> track_arcs_;
};

}  // namespace satnet::synth
