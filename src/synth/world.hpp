// The synthetic world: constellations, access networks, and a subscriber
// population with known ground truth.
//
// Every downstream dataset (M-Lab NDT records, RIPE traceroutes,
// Prolific testers) is generated *through* this world, so the
// identification pipeline can be scored exactly: for every speed test we
// know whether it truly crossed a satellite.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"
#include "net/ipv4.hpp"
#include "orbit/access.hpp"
#include "stats/rng.hpp"
#include "synth/catalog.hpp"
#include "transport/linkmodel.hpp"
#include "weather/weather.hpp"

namespace satnet::synth {

/// One subscriber line of one operator.
struct Subscriber {
  std::size_t spec_index = 0;  ///< index into catalog()
  bgp::Asn asn = 0;
  net::Prefix24 prefix;
  net::Ipv4 ip;
  geo::GeoPoint location;
  std::string country;
  AccessTech tech = AccessTech::satellite;
  orbit::OrbitClass orbit = orbit::OrbitClass::geo;  ///< orbit when on satellite
  double plan_down_mbps = 0;   ///< stable subscription capacity
  double plan_up_mbps = 0;
  double terrestrial_rtt_ms = 25.0;  ///< wireline RTT for non-satellite paths
};

struct WorldConfig {
  std::uint64_t seed = 42;
  /// Subscriber counts scale with sqrt(paper test volume); this scales
  /// them further.
  double subscriber_scale = 1.0;
  std::size_t min_subscribers = 8;
  std::size_t max_subscribers = 1200;
  /// Opt-in rain-fade overlay (see weather::WeatherField). Off by default
  /// so the baseline calibration matches the paper's aggregate numbers;
  /// the weather ablation bench turns it on.
  bool enable_weather = false;
  weather::WeatherConfig weather;
};

/// What one measurement sees of a subscriber at one instant.
struct PathSample {
  bool ok = false;                      ///< false: satellite outage
  transport::PathProfile download;      ///< client-perceived path, down
  transport::PathProfile upload;
  AccessTech tech_used = AccessTech::satellite;  ///< hybrids flip over time
  double access_one_way_ms = 0;         ///< ground truth access latency
  bool handoff = false;
  weather::Condition sky = weather::Condition::clear;  ///< weather overlay
};

class World {
 public:
  explicit World(WorldConfig config = WorldConfig{});

  std::span<const SnoSpec> specs() const { return catalog(); }
  const std::vector<Subscriber>& subscribers() const { return subscribers_; }
  /// Subscribers of one operator.
  std::vector<const Subscriber*> subscribers_of(const std::string& sno_name) const;

  /// The access network serving `spec` subscribers on `orbit`; throws for
  /// operators without a network on that orbit.
  const orbit::AccessNetwork& access_for(std::size_t spec_index,
                                         orbit::OrbitClass orbit) const;

  std::shared_ptr<const orbit::Constellation> starlink_constellation() const {
    return starlink_constellation_;
  }

  /// Samples the subscriber's path at simulation time `t_sec`.
  PathSample sample_path(const Subscriber& sub, double t_sec, stats::Rng& rng) const;

  /// Creates an ad-hoc subscriber of `sno_name` at a location (used for
  /// recruited Prolific testers and for examples). Not added to
  /// subscribers().
  Subscriber make_subscriber(const std::string& sno_name, const geo::GeoPoint& location,
                             const std::string& country, stats::Rng& rng) const;

  /// Ground truth: does a test by `sub` at time `t_sec` cross a satellite?
  /// (Terrestrial users never do; hybrid users only while failed over.)
  bool truly_satellite(const Subscriber& sub, double t_sec) const;

 private:
  void build_access_networks();
  void build_subscribers(stats::Rng& rng);
  /// Hybrid users flip between wired-good / wired-degraded / satellite on
  /// hour boundaries, deterministically per (subscriber, hour).
  int hybrid_state(const Subscriber& sub, double t_sec) const;

  WorldConfig config_;
  std::shared_ptr<const orbit::Constellation> starlink_constellation_;
  std::shared_ptr<const orbit::Constellation> oneweb_constellation_;
  std::shared_ptr<const orbit::Constellation> meo_constellation_;
  /// Access networks: [spec_index] -> primary; GEO secondaries for
  /// multi-orbit operators live in geo_secondary_.
  std::vector<std::unique_ptr<orbit::AccessNetwork>> primary_access_;
  std::vector<std::unique_ptr<orbit::AccessNetwork>> geo_secondary_;
  std::vector<Subscriber> subscribers_;
};

}  // namespace satnet::synth
