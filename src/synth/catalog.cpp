#include "synth/catalog.hpp"

#include <stdexcept>

#include "bgp/sno_world.hpp"

namespace satnet::synth {

namespace {

using orbit::OrbitClass;

transport::LinkTraits leo_traits(double down, double up, double handoff_hz,
                                 double spike_ms) {
  transport::LinkTraits t;
  t.down_mbps_median = down;
  t.down_mbps_sigma = 0.5;
  t.up_mbps_median = up;
  t.up_mbps_sigma = 0.45;
  t.buffer_bdp = 1.5;
  t.sat_loss = 0.00002;   // post-FEC effective loss
  t.ground_loss = 0.00005;
  t.spurious_rto_prob = 0.0008;  // LEO RTOs are rare; handoffs dominate
  t.jitter_ms = 6.0;
  t.handoff_rate_hz = handoff_hz;
  t.handoff_loss_frac = 0.20;
  t.handoff_spike_ms = spike_ms;
  t.pep = false;
  return t;
}

transport::LinkTraits meo_traits() {
  transport::LinkTraits t;
  t.down_mbps_median = 30.0;
  t.down_mbps_sigma = 0.5;
  t.up_mbps_median = 5.0;
  t.up_mbps_sigma = 0.4;
  t.buffer_bdp = 1.0;
  t.sat_loss = 0.002;
  t.ground_loss = 0.0003;
  t.spurious_rto_prob = 0.05;
  t.jitter_ms = 18.0;
  // MEO handoffs are rare but expensive: few satellites to fall back to.
  t.handoff_rate_hz = 0.008;
  t.handoff_loss_frac = 0.35;
  t.handoff_spike_ms = 160.0;
  t.pep = false;
  return t;
}

transport::LinkTraits geo_traits(double down, double up, bool pep, double sat_loss,
                                 double jitter = 70.0) {
  transport::LinkTraits t;
  t.down_mbps_median = down;
  t.down_mbps_sigma = 0.45;
  t.up_mbps_median = up;
  t.up_mbps_sigma = 0.35;
  t.buffer_bdp = 0.8;
  // PEP operators recover satellite losses locally, so a higher raw rate
  // is harmless; non-PEP operators see the transport-visible (post-FEC)
  // rate plus the dominant spurious-RTO process.
  t.sat_loss = pep ? sat_loss : sat_loss / 5.0;
  t.ground_loss = 0.0004;
  t.spurious_rto_prob = pep ? 0.004 : 0.12;
  t.jitter_ms = jitter;
  t.handoff_rate_hz = 0.0;
  t.handoff_loss_frac = 0.0;
  t.handoff_spike_ms = 0.0;
  t.pep = pep;
  return t;
}

std::vector<SnoSpec> build_catalog() {
  std::vector<SnoSpec> c;

  // ---------------------------------------------------------------- LEO
  {
    SnoSpec s;
    s.name = "starlink";
    s.primary_orbit = OrbitClass::leo;
    // AS14593 carries customers; AS27277 is the SpaceX corporate
    // (terrestrial) network. Neither is listed in ASdb — found via HE.
    s.asns = {{bgp::kStarlink, 0.0, 0.0, 0.0, /*in_asdb=*/false},
              {bgp::kStarlinkCorporate, 1.0, 0.0, 0.0, /*in_asdb=*/false}};
    s.traits = leo_traits(130.0, 13.0, 0.08, 70.0);
    s.regions = {
        {"seattle", "US", 3.0, 2.5},      {"denver", "US", 3.0, 3.0},
        {"dallas", "US", 3.0, 3.0},       {"chicago", "US", 2.5, 3.0},
        {"atlanta", "US", 2.5, 2.5},      {"new york", "US", 2.0, 2.0},
        {"los angeles", "US", 3.0, 2.5},  {"kansas city", "US", 2.0, 3.0},
        {"anchorage", "US", 0.4, 1.5},    {"toronto", "CA", 1.2, 2.0},
        {"vancouver", "CA", 0.8, 2.0},    {"london", "GB", 1.5, 1.5},
        {"frankfurt", "DE", 1.5, 2.0},    {"paris", "FR", 1.2, 2.0},
        {"madrid", "ES", 0.7, 1.5},       {"milan", "IT", 0.8, 1.5},
        {"warsaw", "PL", 0.6, 1.5},       {"vienna", "AT", 0.5, 1.0},
        {"amsterdam", "NL", 0.7, 0.8},    {"brussels", "BE", 0.4, 0.8},
        {"prague", "CZ", 0.4, 1.0},       {"sydney", "AU", 1.2, 2.5},
        {"melbourne", "AU", 0.8, 2.0},    {"auckland", "NZ", 0.8, 1.5},
        {"santiago", "CL", 0.7, 1.5},     {"manila", "PH", 0.4, 1.0},
    };
    s.mlab_tests = 11700000;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "oneweb";
    s.primary_orbit = OrbitClass::leo;
    s.asns = {{bgp::kOneWeb}};
    s.scheduling_overhead_ms = 25.0;
    s.traits = leo_traits(60.0, 8.0, 0.03, 90.0);
    s.traits.jitter_ms = 10.0;  // thinner constellation, choppier service
    s.traits.handoff_loss_frac = 0.25;
    // Enterprise/remote customers; mostly outside the US, which is what
    // makes its US-only PoPs hurt.
    s.regions = {
        {"anchorage", "US", 1.0, 3.0}, {"oslo", "NO", 1.5, 3.0},
        {"london", "GB", 1.5, 2.0},    {"toronto", "CA", 1.0, 4.0},
        {"sydney", "AU", 1.0, 4.0},    {"santiago", "CL", 0.6, 2.0},
        {"seattle", "US", 0.8, 2.0},   {"dubai", "AE", 0.6, 2.0},
    };
    s.mlab_tests = 2950;
    c.push_back(std::move(s));
  }

  // ---------------------------------------------------------------- MEO
  {
    SnoSpec s;
    s.name = "o3b/ses";  // Table 1's combined MEO operator
    s.primary_orbit = OrbitClass::meo;
    s.asns = {{bgp::kO3b}};
    s.scheduling_overhead_ms = 80.0;
    s.traits = meo_traits();
    s.regions = {
        {"suva", "FJ", 1.5, 3.0},     {"manila", "PH", 1.0, 2.0},
        {"lagos", "NG", 1.2, 2.5},    {"nairobi", "KE", 0.8, 2.0},
        {"lima", "PE", 1.0, 2.0},     {"bogota", "CO", 0.6, 1.5},
        {"singapore", "SG", 0.8, 1.5},
    };
    s.mlab_tests = 78100;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "ses";
    s.primary_orbit = OrbitClass::meo;
    s.multi_orbit = true;  // MEO (O3b fleet) + own GEO fleet
    // AS201554 is the anomalous hybrid ASN of Fig 2 (MEO + GEO + a
    // terrestrial component); AS12684 carries plain GEO subscribers.
    s.asns = {{bgp::kSes, 0.12, 0.0, 0.45},
              {12684, 0.0, 0.0, 1.0}};
    s.teleport_city = "frankfurt";
    s.slot_lon_deg = 19.0;
    s.scheduling_overhead_ms = 80.0;
    s.traits = meo_traits();
    s.regions = {
        {"frankfurt", "DE", 1.5, 3.0}, {"luxembourg", "LU", 1.0, 1.0},
        {"athens", "GR", 0.8, 1.5},    {"madrid", "ES", 0.8, 2.0},
        {"lagos", "NG", 0.6, 2.0},     {"sao paulo", "BR", 0.8, 2.5},
    };
    s.mlab_tests = 23200;
    c.push_back(std::move(s));
  }

  // ---------------------------------------------------------------- GEO
  {
    SnoSpec s;
    s.name = "viasat";
    // Viasat's nine ASNs from Table 3, all missing from ASdb.
    s.asns = {{bgp::kViasat, 0.0, /*hybrid_frac=*/0.18, 0.0, /*in_asdb=*/false},
              {25222, 0.0, 0.0, 0.0, false}, {46536, 0.0, 0.0, 0.0, false},
              {18570, 0.0, 0.0, 0.0, false}, {16491, 0.0, 0.0, 0.0, false},
              {40306, 0.0, 0.0, 0.0, false}, {7155, 0.0, 0.0, 0.0, false},
              {40310, 0.0, 0.0, 0.0, false}, {23354, 0.0, 0.0, 0.0, false}};
    s.pep = true;
    s.teleport_city = "denver";
    s.slot_lon_deg = -101.0;
    s.scheduling_overhead_ms = 45.0;
    s.traits = geo_traits(25.0, 3.0, true, 0.018, 45.0);
    s.regions = {
        {"denver", "US", 2.0, 4.0},  {"dallas", "US", 2.0, 4.0},
        {"atlanta", "US", 1.5, 3.0}, {"kansas city", "US", 1.5, 4.0},
        {"mexico city", "MX", 0.8, 2.0}, {"sao paulo", "BR", 0.8, 2.5},
    };
    s.mlab_tests = 50000;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "hughesnet";
    // HughesNet's six ASNs from Table 3.
    s.asns = {{bgp::kHughes, 0.0, 0.05, 0.0}, {1358}, {63062},
              {12440}, {44795}, {6621}};
    s.pep = true;
    s.teleport_city = "ashburn";
    s.slot_lon_deg = -95.0;
    s.scheduling_overhead_ms = 75.0;
    s.traits = geo_traits(2.4, 3.0, true, 0.020, 65.0);
    s.regions = {
        {"atlanta", "US", 2.0, 4.0},     {"dallas", "US", 1.5, 4.0},
        {"kansas city", "US", 1.5, 4.0}, {"mexico city", "MX", 0.8, 2.5},
        {"sao paulo", "BR", 1.0, 3.0},   {"lima", "PE", 0.6, 2.0},
    };
    s.mlab_tests = 2800;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "telalaska";
    // One ASN carries both rural-satellite and urban-wireline users —
    // the intra-ASN mixed latency profile of Fig 2.
    s.asns = {{bgp::kTelAlaska, /*terrestrial_frac=*/0.30, 0.0, 0.0}};
    s.teleport_city = "anchorage";
    s.slot_lon_deg = -139.0;
    s.scheduling_overhead_ms = 70.0;
    s.traits = geo_traits(6.0, 1.5, false, 0.030);
    s.regions = {{"anchorage", "US", 1.0, 4.0}};
    s.mlab_tests = 3050;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "marlink";  // maritime VSAT
    // Marlink's seven maritime ASNs from Table 3.
    s.asns = {{bgp::kMarlink}, {44933}, {55784}, {8841}, {210314}, {8264}, {37101}};
    s.teleport_city = "london";
    s.slot_lon_deg = -1.0;
    s.scheduling_overhead_ms = 90.0;
    s.traits = geo_traits(4.0, 1.0, false, 0.035);
    s.regions = {{"london", "GB", 1.0, 8.0}, {"lisbon", "PT", 1.0, 8.0},
                 {"athens", "GR", 0.8, 6.0}};
    s.mlab_tests = 1420;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "kvh";  // maritime, the slowest GEO operator in Fig 3c
    s.asns = {{bgp::kKvh}};
    s.teleport_city = "miami";
    s.slot_lon_deg = -60.0;
    s.scheduling_overhead_ms = 165.0;
    s.traits = geo_traits(3.0, 0.8, false, 0.040, 85.0);
    s.regions = {{"miami", "US", 1.0, 8.0}, {"santo domingo", "DO", 0.8, 6.0}};
    s.mlab_tests = 951;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "ssi";  // the fastest GEO operator in Fig 3c
    s.asns = {{bgp::kSsi}};
    s.teleport_city = "seattle";
    s.slot_lon_deg = -127.0;
    s.scheduling_overhead_ms = 35.0;
    s.traits = geo_traits(8.0, 2.0, false, 0.028);
    s.regions = {{"seattle", "US", 1.0, 5.0}, {"anchorage", "US", 0.6, 4.0}};
    s.mlab_tests = 260;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "eutelsat";
    s.asns = {{bgp::kEutelsat}, {34444}, {204276}};
    s.pep = true;
    s.teleport_city = "paris";
    s.slot_lon_deg = 13.0;
    s.scheduling_overhead_ms = 60.0;
    s.traits = geo_traits(12.0, 2.5, true, 0.018);
    s.regions = {{"paris", "FR", 1.0, 3.0}, {"rome", "IT", 0.8, 3.0},
                 {"athens", "GR", 0.5, 2.0}};
    s.mlab_tests = 235;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "globalsat";
    s.asns = {{bgp::kGlobalSat}, {15829 + 100000}};  // second regional ASN
    s.teleport_city = "sao paulo";
    s.slot_lon_deg = -65.0;
    s.scheduling_overhead_ms = 70.0;
    s.traits = geo_traits(5.0, 1.2, false, 0.030);
    s.regions = {{"sao paulo", "BR", 1.0, 5.0}, {"buenos aires", "AR", 0.6, 4.0}};
    s.mlab_tests = 135;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "avanti";
    s.asns = {{bgp::kAvanti}};
    s.pep = true;
    s.teleport_city = "london";
    s.slot_lon_deg = -33.0;
    s.scheduling_overhead_ms = 55.0;
    s.traits = geo_traits(10.0, 2.0, true, 0.016);
    s.regions = {{"london", "GB", 1.0, 3.0}, {"lagos", "NG", 0.8, 4.0},
                 {"nairobi", "KE", 0.6, 3.0}};
    s.mlab_tests = 122;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "intelsat";
    s.asns = {{bgp::kIntelsat}, {46982}};
    s.teleport_city = "ashburn";
    s.slot_lon_deg = -89.0;
    s.scheduling_overhead_ms = 75.0;
    s.traits = geo_traits(6.0, 1.5, false, 0.030);
    s.regions = {{"ashburn", "US", 1.0, 5.0}, {"bogota", "CO", 0.6, 3.0}};
    s.mlab_tests = 91;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "hellas-sat";
    s.asns = {{bgp::kHellasSat}};
    s.teleport_city = "athens";
    s.slot_lon_deg = 39.0;
    s.scheduling_overhead_ms = 65.0;
    s.traits = geo_traits(8.0, 2.0, false, 0.026);
    s.regions = {{"athens", "GR", 1.0, 2.5}};
    s.mlab_tests = 48;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "ultisat";
    s.asns = {{bgp::kUltiSat}};
    s.teleport_city = "ashburn";
    s.slot_lon_deg = -101.0;
    s.scheduling_overhead_ms = 80.0;
    s.traits = geo_traits(4.0, 1.0, false, 0.032);
    s.regions = {{"ashburn", "US", 1.0, 6.0}};
    s.mlab_tests = 37;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "isotropic";
    s.asns = {{bgp::kIsotropic}};
    s.teleport_city = "chicago";
    s.slot_lon_deg = -89.0;
    s.scheduling_overhead_ms = 70.0;
    s.traits = geo_traits(5.0, 1.2, false, 0.028);
    s.regions = {{"chicago", "US", 1.0, 5.0}};
    s.mlab_tests = 35;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "kacific";
    s.asns = {{bgp::kKacific}};
    s.teleport_city = "suva";
    s.slot_lon_deg = 150.0;
    s.scheduling_overhead_ms = 65.0;
    s.traits = geo_traits(10.0, 2.0, false, 0.026);
    s.regions = {{"suva", "FJ", 1.0, 5.0}, {"manila", "PH", 0.6, 3.0}};
    s.mlab_tests = 34;
    c.push_back(std::move(s));
  }

  // ---- SNOs in the curated ASN map (Table 3) with no M-Lab traffic ----
  {
    SnoSpec s;
    s.name = "telesat";
    s.asns = {{bgp::kTelesat}};
    s.teleport_city = "toronto";
    s.slot_lon_deg = -111.0;
    s.traits = geo_traits(6.0, 1.5, false, 0.03);
    s.in_mlab = false;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "thaicom";
    s.asns = {{bgp::kThaicom}};
    s.teleport_city = "bangkok";
    s.slot_lon_deg = 78.0;
    s.traits = geo_traits(8.0, 2.0, false, 0.03);
    s.in_mlab = false;
    c.push_back(std::move(s));
  }
  {
    SnoSpec s;
    s.name = "speedcast";
    s.asns = {{bgp::kSpeedcast}};
    s.teleport_city = "sydney";
    s.slot_lon_deg = 140.0;
    s.traits = geo_traits(8.0, 2.0, false, 0.03);
    s.in_mlab = false;
    c.push_back(std::move(s));
  }


  // ---- Remaining Table 3 operators (curated, no M-Lab traffic) ----
  const struct {
    const char* name;
    bgp::Asn asn;
    const char* teleport;
    double slot;
  } kQuietSnos[] = {
      {"arqiva", 15641, "london", -10.0},
      {"awv", 46869, "denver", -105.0},
      {"colinanet", 262168, "sao paulo", -60.0},
      {"comsat", 36614, "ashburn", -90.0},
      {"comsat-png", 136940, "sydney", 145.0},
      {"comtech", 394318, "ashburn", -95.0},
      {"elara", 262927, "mexico city", -100.0},
      {"gravity", 131202, "singapore", 100.0},
      {"io", 17411, "tokyo", 130.0},
      {"lepton-kymeta", 20304, "seattle", -120.0},
      {"linkexpress", 20660, "sao paulo", -58.0},
      {"maxar", 393938, "denver", -102.0},
      {"navarino", 203101, "athens", 30.0},
      {"netsat", 133933, "singapore", 105.0},
      {"network-innovations", 1821, "toronto", -95.0},
      {"nomad-global", 395786, "dallas", -99.0},
      {"panasonic-avionics", 64294, "los angeles", -118.0},
      {"sound-cellular", 63215, "anchorage", -140.0},
      {"televera", 265515, "mexico city", -98.0},
      {"worldlink", 31515, "miami", -80.0},  // second ASN added below
  };
  for (const auto& q : kQuietSnos) {
    SnoSpec s;
    s.name = q.name;
    s.asns = {{q.asn}};
    if (s.name == "worldlink") s.asns.push_back({11902});  // Table 3 lists two
    s.teleport_city = q.teleport;
    s.slot_lon_deg = q.slot;
    s.traits = geo_traits(6.0, 1.5, false, 0.03);
    s.in_mlab = false;
    c.push_back(std::move(s));
  }

  // -------- ASdb "Satellite Communication" false positives --------
  // Entities the paper's manual curation removes after visiting their
  // websites (more than half of the 164 candidate ASes).
  const struct {
    const char* name;
    EntityKind kind;
    bgp::Asn asn;
  } kFalsePositives[] = {
      {"cable-axion", EntityKind::cable_tv, 394001},
      {"filer-mutual-telephone", EntityKind::residential_isp, 394002},
      {"teletrac", EntityKind::navigation, 394003},
      {"united-teleports", EntityKind::teleport, 394004},
      {"prairie-cable-tv", EntityKind::cable_tv, 394005},
      {"northstar-fleet-tracking", EntityKind::navigation, 394006},
      {"summit-ridge-broadband", EntityKind::residential_isp, 394007},
      {"gateway-earthstation", EntityKind::teleport, 394008},
      {"corporate-vsat-systems", EntityKind::enterprise_vsat, 394009},
      {"mountain-community-cable", EntityKind::cable_tv, 394010},
      {"harbor-navigation-services", EntityKind::navigation, 394011},
      {"valley-rural-telephone", EntityKind::residential_isp, 394012},
  };
  for (const auto& fp : kFalsePositives) {
    SnoSpec s;
    s.name = fp.name;
    s.kind = fp.kind;
    s.asns = {{fp.asn}};
    s.in_mlab = false;
    c.push_back(std::move(s));
  }
  // ASdb's satellite category holds ~129 ASes of which well over half are
  // not SNOs; pad the category with generated look-alikes so the mapping
  // stage sees the paper's curation workload.
  const EntityKind kFpKinds[] = {EntityKind::cable_tv, EntityKind::residential_isp,
                                 EntityKind::navigation, EntityKind::teleport,
                                 EntityKind::enterprise_vsat};
  for (int i = 0; i < 85; ++i) {
    SnoSpec s;
    s.name = "satcat-lookalike-" + std::to_string(i);
    s.kind = kFpKinds[i % 5];
    s.asns = {{static_cast<bgp::Asn>(394100 + i)}};
    s.in_mlab = false;
    c.push_back(std::move(s));
  }

  return c;
}

}  // namespace

std::span<const SnoSpec> catalog() {
  static const std::vector<SnoSpec> kCatalog = build_catalog();
  return kCatalog;
}

std::vector<const SnoSpec*> genuine_snos() {
  std::vector<const SnoSpec*> out;
  for (const auto& s : catalog()) {
    if (s.kind == EntityKind::sno) out.push_back(&s);
  }
  return out;
}

const SnoSpec& find_sno(const std::string& name) {
  for (const auto& s : catalog()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown operator: " + name);
}

}  // namespace satnet::synth
