// Ground-truth catalog of satellite network operators and of the
// look-alike entities (cable TV, teleport operators, ...) that pollute
// ASdb's "Satellite Communication" category.
//
// Everything the identification pipeline must *discover* is declared here
// as ground truth: which ASNs really carry satellite subscribers, which
// are corporate/wireline, which operators mix orbits in one ASN, which
// sell satellite as a backup for wireline — so the reproduction can score
// the methodology's precision/recall, which the paper could not.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/as_graph.hpp"
#include "orbit/shell.hpp"
#include "transport/linkmodel.hpp"

namespace satnet::synth {

/// What an organization actually is (the ground truth the paper's manual
/// curation step approximates by visiting operator websites).
enum class EntityKind {
  sno,             ///< genuine satellite network operator
  cable_tv,        ///< e.g. "Cable Axion"
  residential_isp, ///< e.g. "Filer Mutual Telephone"
  navigation,      ///< e.g. "Teletrac"
  teleport,        ///< e.g. "United Teleports Inc"
  enterprise_vsat, ///< corporate VSAT integrator, no consumer service
};

/// How subscribers of one ASN actually reach the Internet.
enum class AccessTech {
  satellite,       ///< dish all the way
  terrestrial,     ///< wireline (corporate offices, fiber customers)
  hybrid_backup,   ///< wireline primary, satellite as failover
};

/// Weighted region where an operator has subscribers.
struct RegionWeight {
  std::string city;      ///< gazetteer key; subscribers scatter around it
  std::string country;
  double weight = 1.0;
  double scatter_deg = 1.5;  ///< uniform lat/lon scatter radius
};

/// One ASN of an operator and the subscriber mix it carries.
struct AsnProfile {
  bgp::Asn asn = 0;
  /// Fraction of this ASN's speed tests from pure-terrestrial users
  /// (Starlink's AS27277 corporate network is 1.0).
  double terrestrial_frac = 0.0;
  /// Fraction of users on wireline-with-satellite-backup plans.
  double hybrid_frac = 0.0;
  /// For multi-orbit operators (SES): fraction of satellite users on the
  /// secondary (GEO) orbit; the rest use the primary orbit.
  double secondary_orbit_frac = 0.0;
  /// Whether ASdb's satellite category lists this ASN (Starlink and
  /// Viasat are famously missing and only found via HE BGP search).
  bool in_asdb = true;
};

/// Ground truth for one operator.
struct SnoSpec {
  std::string name;
  EntityKind kind = EntityKind::sno;
  orbit::OrbitClass primary_orbit = orbit::OrbitClass::geo;
  bool multi_orbit = false;  ///< SES: MEO primary + GEO secondary
  std::vector<AsnProfile> asns;
  bool pep = false;
  /// GEO operators: teleport city and satellite slot longitude.
  std::string teleport_city;
  double slot_lon_deg = 0.0;
  double scheduling_overhead_ms = 60.0;
  transport::LinkTraits traits;
  std::vector<RegionWeight> regions;
  /// The number of NDT speed tests this operator contributed to M-Lab in
  /// the study window (paper Table 1); campaigns scale this down.
  std::uint64_t mlab_tests = 0;
  /// Appears in M-Lab at all? (Table 3 lists 41 SNOs; only 18 have data.)
  bool in_mlab = true;
};

/// All operators (genuine SNOs first, then ASdb false positives).
std::span<const SnoSpec> catalog();

/// Only the genuine SNOs.
std::vector<const SnoSpec*> genuine_snos();

/// Lookup by name; throws std::out_of_range when unknown.
const SnoSpec& find_sno(const std::string& name);

}  // namespace satnet::synth
