// Emulators of the public metadata sources the paper's pipeline queries:
// ASdb (ASN -> organization/category), Hurricane Electric's BGP toolkit
// (name search -> ASNs), and IPInfo (ASN -> org, website). "Visiting the
// operator's website" is emulated by exposing the entity kind and the
// declared access technology.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/as_graph.hpp"
#include "synth/catalog.hpp"

namespace satnet::synth {

/// One ASdb row (only the satellite-relevant slice is modelled).
struct AsdbRecord {
  bgp::Asn asn = 0;
  std::string organization;
  std::string category;  ///< "Satellite Communication" for all rows here
};

/// ASdb: returns the rows under "Computer and Information Technology /
/// Satellite Communication". Famously *misses* Starlink and Viasat.
std::vector<AsdbRecord> asdb_satellite_category();

/// HE BGP toolkit: free-text search by operator name over all ASNs
/// (including the ones ASdb misses).
std::vector<bgp::Asn> he_bgp_search(const std::string& name_substring);

/// IPInfo + website visit: what a researcher learns about an ASN.
struct IpInfoRecord {
  bgp::Asn asn = 0;
  std::string organization;   ///< operator name
  std::string website;        ///< synthetic URL
  EntityKind kind;            ///< learned by reading the website
  orbit::OrbitClass declared_orbit;  ///< primary technology advertised
  bool declared_multi_orbit = false;
};
std::optional<IpInfoRecord> ipinfo_lookup(bgp::Asn asn);

}  // namespace satnet::synth
