#include "synth/worldgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "geo/places.hpp"
#include "stats/rng.hpp"

namespace satnet::synth {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Draws n distinct city names (falling back to reuse only if the
/// gazetteer runs dry). `used` is shared across the ground segments of
/// one spec so PoPs and gateways land in different cities.
std::vector<std::string> draw_cities(stats::Rng& rng, std::size_t n,
                                     std::set<std::string, std::less<>>& used) {
  const std::span<const geo::City> all = geo::cities();
  std::vector<std::string> out;
  std::size_t attempts = 0;
  while (out.size() < n && attempts++ < all.size() * 8) {
    const geo::City& c =
        all[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1))];
    std::string name(c.name);
    if (used.insert(name).second) out.push_back(std::move(name));
  }
  while (out.size() < n) {
    const geo::City& c =
        all[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1))];
    out.emplace_back(c.name);
  }
  return out;
}

double clamp_lat(double lat, double limit = 72.0) {
  return std::clamp(lat, -limit, limit);
}

double wrap_lon(double lon) {
  while (lon > 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  return lon;
}

transport::LinkTraits leo_traits(stats::Rng& rng) {
  transport::LinkTraits t;
  t.down_mbps_median = rng.uniform(80.0, 200.0);
  t.up_mbps_median = rng.uniform(10.0, 25.0);
  t.buffer_bdp = rng.uniform(1.0, 3.0);
  t.sat_loss = rng.uniform(0.0005, 0.002);
  t.jitter_ms = rng.uniform(2.0, 6.0);
  t.handoff_rate_hz = rng.uniform(0.02, 0.08);
  t.handoff_loss_frac = rng.uniform(0.01, 0.05);
  t.handoff_spike_ms = rng.uniform(20.0, 60.0);
  return t;
}

transport::LinkTraits meo_traits(stats::Rng& rng) {
  transport::LinkTraits t;
  t.down_mbps_median = rng.uniform(50.0, 120.0);
  t.up_mbps_median = rng.uniform(5.0, 15.0);
  t.buffer_bdp = rng.uniform(1.5, 3.5);
  t.sat_loss = rng.uniform(0.0005, 0.002);
  t.jitter_ms = rng.uniform(3.0, 8.0);
  t.handoff_rate_hz = rng.uniform(0.002, 0.01);
  t.handoff_loss_frac = rng.uniform(0.01, 0.04);
  t.handoff_spike_ms = rng.uniform(30.0, 80.0);
  return t;
}

transport::LinkTraits geo_traits(stats::Rng& rng) {
  transport::LinkTraits t;
  t.down_mbps_median = rng.uniform(25.0, 80.0);
  t.up_mbps_median = rng.uniform(3.0, 8.0);
  t.buffer_bdp = rng.uniform(4.0, 10.0);
  t.sat_loss = rng.uniform(0.001, 0.004);
  t.jitter_ms = rng.uniform(6.0, 15.0);
  t.spurious_rto_prob = rng.uniform(0.01, 0.05);
  t.pep = rng.chance(0.6);
  return t;
}

std::uint64_t draw_seed(stats::Rng& rng) {
  return static_cast<std::uint64_t>(rng.uniform_int(1, (std::int64_t{1} << 62) - 1));
}

void append_traits(std::string& out, const transport::LinkTraits& t) {
  out += "  traits down=" + fmt_double(t.down_mbps_median) + "/" +
         fmt_double(t.down_mbps_sigma) + " up=" + fmt_double(t.up_mbps_median) + "/" +
         fmt_double(t.up_mbps_sigma) + " buf=" + fmt_double(t.buffer_bdp) +
         " satloss=" + fmt_double(t.sat_loss) + " gloss=" + fmt_double(t.ground_loss) +
         " srto=" + fmt_double(t.spurious_rto_prob) + " jitter=" + fmt_double(t.jitter_ms) +
         " ho=" + fmt_double(t.handoff_rate_hz) + "/" + fmt_double(t.handoff_loss_frac) +
         "/" + fmt_double(t.handoff_spike_ms) + " pep=" + (t.pep ? "1" : "0") + "\n";
}

}  // namespace

std::string_view to_string(Mobility m) {
  switch (m) {
    case Mobility::fixed: return "fixed";
    case Mobility::maritime: return "maritime";
    case Mobility::aviation: return "aviation";
  }
  return "?";
}

std::size_t ScenarioSpec::total_satellites() const {
  std::size_t n = 0;
  for (const NetworkSpec& net : networks) {
    if (net.orbit == orbit::OrbitClass::geo) {
      ++n;
    } else {
      for (const orbit::Shell& s : net.shells) n += s.total_sats();
    }
  }
  return n;
}

std::size_t ScenarioSpec::total_gateways() const {
  std::size_t n = 0;
  for (const NetworkSpec& net : networks) n += net.gateway_cities.size();
  return n;
}

std::string ScenarioSpec::to_text() const {
  std::string out = "scenario v1\n";
  out += "seed " + std::to_string(seed) + "\n";
  out += "horizon_sec " + fmt_double(horizon_sec) + " step_sec " + fmt_double(step_sec) +
         "\n";
  out += "weather cell_deg=" + fmt_double(weather.cell_deg) +
         " dur_h=" + fmt_double(weather.cell_duration_hours) +
         " rain=" + fmt_double(weather.rain_prob) +
         " heavy=" + fmt_double(weather.heavy_rain_prob) +
         " cloudy=" + fmt_double(weather.cloudy_prob) +
         " geo_outage=" + fmt_double(weather.geo_outage_prob) +
         " seed=" + std::to_string(weather.seed) + "\n";
  for (const weather::MovingFront& f : weather.fronts) {
    out += "front lat=" + fmt_double(f.start.lat_deg) +
           " lon=" + fmt_double(f.start.lon_deg) + " ve=" + fmt_double(f.velocity_east_kmh) +
           " vn=" + fmt_double(f.velocity_north_kmh) + " radius=" + fmt_double(f.radius_km) +
           " sev=" + std::to_string(f.severity) + " t0=" + fmt_double(f.t_start_sec) +
           " t1=" + fmt_double(f.t_end_sec) + "\n";
  }
  for (const NetworkSpec& net : networks) {
    out += "network " + net.name + " orbit=" + orbit::to_string(net.orbit);
    // Default-model worlds keep their historical text form, so persisted
    // walker artifacts (goldens, shrunk repros) stay byte-identical.
    if (net.model != orbit::OrbitModel::walker) {
      out += " model=" + std::string(orbit::to_string(net.model));
    }
    out += " min_elev=" + fmt_double(net.min_elevation_deg) +
           " overhead_ms=" + fmt_double(net.scheduling_overhead_ms) +
           " reconfig_sec=" + fmt_double(net.reconfig_interval_sec) + "\n";
    for (const orbit::Shell& s : net.shells) {
      out += "  shell " + s.name + " alt=" + fmt_double(s.altitude_km) +
             " inc=" + fmt_double(s.inclination_deg) + " planes=" + std::to_string(s.planes) +
             " spp=" + std::to_string(s.sats_per_plane) +
             " phase=" + std::to_string(s.phase_factor) + "\n";
    }
    if (net.orbit == orbit::OrbitClass::geo) {
      out += "  slot lon=" + fmt_double(net.slot_lon_deg) + "\n";
    }
    out += "  pops ";
    for (std::size_t i = 0; i < net.pop_cities.size(); ++i) {
      if (i) out += ",";
      out += net.pop_cities[i];
    }
    out += "\n  gateways ";
    for (std::size_t i = 0; i < net.gateway_cities.size(); ++i) {
      if (i) out += ",";
      out += net.gateway_cities[i];
    }
    out += "\n";
    append_traits(out, net.traits);
  }
  for (const TerminalSpec& t : terminals) {
    out += "terminal " + t.name + " net=" + std::to_string(t.network) + " " +
           std::string(to_string(t.mobility));
    if (t.mobility != Mobility::fixed) out += " speed=" + fmt_double(t.speed_kmh);
    out += " wp=";
    for (std::size_t i = 0; i < t.waypoints.size(); ++i) {
      if (i) out += ";";
      out += fmt_double(t.waypoints[i].lat_deg) + ":" + fmt_double(t.waypoints[i].lon_deg);
    }
    out += "\n";
  }
  out += "faults\n";
  out += faults.to_spec();
  return out;
}

std::string ScenarioSpec::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu networks=%zu sats=%zu terminals=%zu faults=%zu horizon=%gs",
                static_cast<unsigned long long>(seed), networks.size(), total_satellites(),
                terminals.size(), faults.size(), horizon_sec);
  return buf;
}

ScenarioSpec generate_scenario(std::uint64_t seed, const WorldGenConfig& config) {
  ScenarioSpec spec;
  spec.seed = seed;
  const stats::Rng master(seed);

  {
    stats::Rng rng = master.fork_stable("horizon");
    spec.horizon_sec =
        std::floor(rng.uniform(config.min_horizon_sec, config.max_horizon_sec));
    spec.step_sec = std::floor(rng.uniform(45.0, 120.0));
  }

  std::set<std::string, std::less<>> used_cities;

  // Constellation mix: always one inclined LEO Walker network and one
  // GEO slot (so some terminal always has a sky), plus an optional
  // second LEO shell and an optional equatorial MEO network.
  {
    stats::Rng rng = master.fork_stable("net-leo0");
    NetworkSpec net;
    net.name = "leo0";
    net.orbit = orbit::OrbitClass::leo;
    orbit::Shell shell;
    shell.name = "leo0-s0";
    shell.altitude_km = rng.uniform(500.0, 1200.0);
    shell.inclination_deg = rng.uniform(45.0, 98.0);
    shell.planes = static_cast<std::size_t>(rng.uniform_int(10, 24));
    shell.sats_per_plane = static_cast<std::size_t>(rng.uniform_int(8, 18));
    shell.phase_factor =
        static_cast<unsigned>(rng.uniform_int(0, static_cast<std::int64_t>(shell.planes) - 1));
    net.shells.push_back(shell);
    if (rng.chance(0.4)) {
      orbit::Shell polar;
      polar.name = "leo0-s1";
      polar.altitude_km = rng.uniform(540.0, 1250.0);
      polar.inclination_deg = rng.uniform(85.0, 98.0);
      polar.planes = static_cast<std::size_t>(rng.uniform_int(4, 8));
      polar.sats_per_plane = static_cast<std::size_t>(rng.uniform_int(8, 16));
      polar.phase_factor =
          static_cast<unsigned>(rng.uniform_int(0, static_cast<std::int64_t>(polar.planes) - 1));
      net.shells.push_back(polar);
    }
    net.min_elevation_deg = rng.uniform(10.0, 20.0);
    net.scheduling_overhead_ms = rng.uniform(5.0, 15.0);
    net.reconfig_interval_sec = std::floor(rng.uniform(10.0, 20.0));
    net.pop_cities = draw_cities(rng, static_cast<std::size_t>(rng.uniform_int(3, 6)),
                                 used_cities);
    net.gateway_cities = draw_cities(
        rng, static_cast<std::size_t>(rng.uniform_int(4, 9)), used_cities);
    net.traits = leo_traits(rng);
    spec.networks.push_back(std::move(net));
  }
  {
    stats::Rng rng = master.fork_stable("net-meo0");
    if (rng.chance(0.5)) {
      NetworkSpec net;
      net.name = "meo0";
      net.orbit = orbit::OrbitClass::meo;
      orbit::Shell shell;
      shell.name = "meo0-s0";
      shell.altitude_km = rng.uniform(7000.0, 10000.0);
      shell.inclination_deg = rng.uniform(0.0, 8.0);
      shell.planes = 1;
      shell.sats_per_plane = static_cast<std::size_t>(rng.uniform_int(10, 20));
      shell.phase_factor = 0;
      net.shells.push_back(shell);
      net.min_elevation_deg = rng.uniform(8.0, 15.0);
      net.scheduling_overhead_ms = rng.uniform(40.0, 90.0);
      net.reconfig_interval_sec = std::floor(rng.uniform(60.0, 180.0));
      net.pop_cities = draw_cities(rng, static_cast<std::size_t>(rng.uniform_int(2, 4)),
                                   used_cities);
      net.gateway_cities = draw_cities(
          rng, static_cast<std::size_t>(rng.uniform_int(2, 5)), used_cities);
      net.traits = meo_traits(rng);
      spec.networks.push_back(std::move(net));
    }
  }
  {
    stats::Rng rng = master.fork_stable("net-geo0");
    NetworkSpec net;
    net.name = "geo0";
    net.orbit = orbit::OrbitClass::geo;
    net.min_elevation_deg = rng.uniform(10.0, 20.0);
    net.scheduling_overhead_ms = rng.uniform(40.0, 90.0);
    net.reconfig_interval_sec = 0.0;
    net.pop_cities = draw_cities(rng, 1, used_cities);
    net.gateway_cities = net.pop_cities;  // the teleport doubles as gateway
    net.slot_lon_deg =
        wrap_lon(geo::city_point(net.pop_cities.front()).lon_deg + rng.uniform(-25.0, 25.0));
    net.traits = geo_traits(rng);
    spec.networks.push_back(std::move(net));
  }

  // Orbit-model axis: some LEO worlds run SGP4 perturbed propagation
  // instead of closed-form Walker, so the matrix fuzzes both ephemeris
  // backends. A fresh fork key keeps every pre-existing axis draw
  // byte-stable for old seeds.
  {
    stats::Rng rng = master.fork_stable("orbit-model");
    if (rng.chance(0.25)) spec.networks.front().model = orbit::OrbitModel::sgp4;
  }

  // Population skew: a few anchor cities with Pareto weights; fixed
  // terminals cluster around the heavy anchors.
  std::vector<geo::GeoPoint> anchors;
  std::vector<double> anchor_weights;
  {
    stats::Rng rng = master.fork_stable("anchors");
    std::set<std::string, std::less<>> anchor_used;
    for (const std::string& name :
         draw_cities(rng, static_cast<std::size_t>(rng.uniform_int(3, 5)), anchor_used)) {
      anchors.push_back(geo::city_point(name));
      anchor_weights.push_back(rng.pareto(1.0, 1.2));
    }
  }

  {
    stats::Rng terms = master.fork_stable("terminals");
    const auto n = static_cast<std::size_t>(
        terms.uniform_int(static_cast<std::int64_t>(config.min_terminals),
                          static_cast<std::int64_t>(config.max_terminals)));
    for (std::size_t i = 0; i < n; ++i) {
      stats::Rng rng = terms.fork_stable(static_cast<std::uint64_t>(i));
      TerminalSpec t;
      t.name = "term" + std::to_string(i);
      t.network = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(spec.networks.size()) - 1));
      const double roll = rng.uniform();
      const geo::GeoPoint anchor = anchors[rng.weighted_index(anchor_weights)];
      if (roll < 0.70) {
        t.mobility = Mobility::fixed;
        t.waypoints.push_back({clamp_lat(anchor.lat_deg + rng.normal(0.0, 1.5)),
                               wrap_lon(anchor.lon_deg + rng.normal(0.0, 1.5)), 0.0});
      } else if (roll < 0.85) {
        t.mobility = Mobility::maritime;
        t.speed_kmh = rng.uniform(30.0, 70.0);
        const auto hops = static_cast<std::size_t>(rng.uniform_int(3, 5));
        geo::GeoPoint p{clamp_lat(anchor.lat_deg + rng.uniform(-3.0, 3.0), 68.0),
                        wrap_lon(anchor.lon_deg + rng.uniform(-3.0, 3.0)), 0.0};
        t.waypoints.push_back(p);
        for (std::size_t k = 1; k < hops; ++k) {
          p = {clamp_lat(p.lat_deg + rng.uniform(-8.0, 8.0), 68.0),
               wrap_lon(p.lon_deg + rng.uniform(-12.0, 12.0)), 0.0};
          t.waypoints.push_back(p);
        }
      } else {
        t.mobility = Mobility::aviation;
        t.speed_kmh = rng.uniform(700.0, 900.0);
        const auto hops = static_cast<std::size_t>(rng.uniform_int(2, 3));
        geo::GeoPoint p{clamp_lat(anchor.lat_deg, 68.0), anchor.lon_deg, 0.0};
        t.waypoints.push_back(p);
        for (std::size_t k = 1; k < hops; ++k) {
          p = {clamp_lat(p.lat_deg + rng.uniform(-25.0, 25.0), 68.0),
               wrap_lon(p.lon_deg + rng.uniform(-40.0, 40.0)), 0.0};
          t.waypoints.push_back(p);
        }
      }
      spec.terminals.push_back(std::move(t));
    }
  }

  {
    stats::Rng rng = master.fork_stable("weather");
    spec.weather.cell_deg = rng.uniform(2.0, 5.0);
    spec.weather.cell_duration_hours = rng.uniform(3.0, 12.0);
    spec.weather.rain_prob = rng.uniform(0.08, 0.20);
    spec.weather.heavy_rain_prob = rng.uniform(0.02, 0.06);
    spec.weather.cloudy_prob = rng.uniform(0.20, 0.35);
    spec.weather.geo_outage_prob = rng.uniform(0.15, 0.35);
    spec.weather.seed = draw_seed(rng);
    const auto fronts = static_cast<std::size_t>(rng.uniform_int(0, 2));
    for (std::size_t i = 0; i < fronts; ++i) {
      stats::Rng frng = rng.fork_stable(static_cast<std::uint64_t>(i));
      weather::MovingFront f;
      const geo::GeoPoint anchor = anchors[frng.weighted_index(anchor_weights)];
      f.start = {clamp_lat(anchor.lat_deg + frng.uniform(-5.0, 5.0), 68.0),
                 wrap_lon(anchor.lon_deg + frng.uniform(-5.0, 5.0)), 0.0};
      f.velocity_east_kmh = frng.uniform(-60.0, 60.0);
      f.velocity_north_kmh = frng.uniform(-30.0, 30.0);
      f.radius_km = frng.uniform(300.0, 900.0);
      f.severity = static_cast<int>(frng.uniform_int(2, 3));
      f.t_start_sec = std::floor(frng.uniform(0.0, 0.5 * spec.horizon_sec));
      f.t_end_sec =
          f.t_start_sec + std::floor(frng.uniform(0.2, 0.5) * spec.horizon_sec) + 1.0;
      spec.weather.fronts.push_back(f);
    }
  }

  {
    stats::Rng rng = master.fork_stable("faults");
    fault::GenerateConfig fc;
    fc.horizon_sec = spec.horizon_sec;
    for (const NetworkSpec& net : spec.networks) {
      for (const std::string& city : net.gateway_cities) {
        fc.gateway_names.push_back("gw-" + city);
      }
    }
    fc.gateway_outages = static_cast<std::size_t>(rng.uniform_int(0, 3));
    fc.handoff_storms = static_cast<std::size_t>(rng.uniform_int(0, 2));
    fc.storm_network = spec.networks.front().name;
    fc.weather_escalations = static_cast<std::size_t>(rng.uniform_int(0, 2));
    for (const geo::GeoPoint& a : anchors) fc.weather_centers.push_back(a);
    fc.loss_bursts = static_cast<std::size_t>(rng.uniform_int(0, 2));
    fc.loss_operator = spec.networks.front().name;
    fc.loss_fraction = rng.uniform(0.005, 0.03);
    if (rng.chance(0.2)) {
      fc.shard_failure_prob = 0.03;
      fc.shard_phase = "matrix.eval";
    }
    spec.faults = fault::FaultPlan::generate(fc, draw_seed(rng));
  }

  return spec;
}

GeneratedWorld::GeneratedWorld(ScenarioSpec spec) : spec_(std::move(spec)), field_(spec_.weather) {
  if (spec_.networks.empty()) {
    throw std::invalid_argument("GeneratedWorld: spec has no networks");
  }
  for (const NetworkSpec& ns : spec_.networks) {
    orbit::AccessConfig cfg;
    cfg.name = ns.name;
    cfg.orbit = ns.orbit;
    cfg.min_elevation_deg = ns.min_elevation_deg;
    cfg.scheduling_overhead_ms = ns.scheduling_overhead_ms;
    cfg.reconfig_interval_sec = ns.reconfig_interval_sec;
    for (const std::string& city : ns.pop_cities) {
      const auto c = geo::find_city(city);
      if (!c) throw std::invalid_argument("GeneratedWorld: unknown pop city " + city);
      cfg.pops.push_back(
          {city, city, std::string(c->country_code), geo::city_point(city)});
    }
    for (std::size_t i = 0; i < ns.gateway_cities.size(); ++i) {
      const std::string& city = ns.gateway_cities[i];
      cfg.gateways.push_back(
          {"gw-" + city, geo::city_point(city), i % cfg.pops.size()});
    }
    if (ns.orbit == orbit::OrbitClass::geo) {
      orbit::GeoFleet fleet;
      fleet.add_slot(ns.name + "-sat", ns.slot_lon_deg);
      networks_.push_back(
          std::make_unique<orbit::AccessNetwork>(std::move(cfg), std::move(fleet)));
    } else {
      auto constellation =
          std::make_shared<const orbit::Constellation>(ns.shells, ns.model);
      networks_.push_back(
          std::make_unique<orbit::AccessNetwork>(std::move(cfg), std::move(constellation)));
    }
  }

  track_arcs_.resize(spec_.terminals.size());
  for (std::size_t i = 0; i < spec_.terminals.size(); ++i) {
    const TerminalSpec& t = spec_.terminals[i];
    if (t.waypoints.empty()) {
      throw std::invalid_argument("GeneratedWorld: terminal " + t.name + " has no waypoints");
    }
    if (t.mobility == Mobility::fixed || t.waypoints.size() < 2 || t.speed_kmh <= 0) {
      continue;
    }
    // Cumulative arc lengths over the closed polyline (last -> first
    // closes the loop so motion is periodic over the horizon).
    std::vector<double>& arcs = track_arcs_[i];
    arcs.push_back(0.0);
    for (std::size_t k = 0; k < t.waypoints.size(); ++k) {
      const geo::GeoPoint& a = t.waypoints[k];
      const geo::GeoPoint& b = t.waypoints[(k + 1) % t.waypoints.size()];
      arcs.push_back(arcs.back() + geo::surface_distance_km(a, b));
    }
    if (arcs.back() <= 1e-9) arcs.clear();  // degenerate track: treat as fixed
  }
}

geo::GeoPoint GeneratedWorld::terminal_position(std::size_t i, double t_sec) const {
  const TerminalSpec& t = spec_.terminals.at(i);
  const std::vector<double>& arcs = track_arcs_[i];
  if (arcs.empty()) return t.waypoints.front();
  const double total = arcs.back();
  double d = std::fmod(t.speed_kmh * (t_sec / 3600.0), total);
  if (d < 0) d += total;
  // arcs[k] <= d < arcs[k+1] locates the segment.
  const auto it = std::upper_bound(arcs.begin(), arcs.end(), d);
  const auto k = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(0, (it - arcs.begin()) - 1));
  const double seg_len = arcs[k + 1] - arcs[k];
  const geo::GeoPoint& a = t.waypoints[k];
  const geo::GeoPoint& b = t.waypoints[(k + 1) % t.waypoints.size()];
  if (seg_len <= 1e-12) return a;
  return geo::interpolate(a, b, (d - arcs[k]) / seg_len);
}

}  // namespace satnet::synth
