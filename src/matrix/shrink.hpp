// Spec shrinking: minimal failing worlds for one-line repros.
//
// When an invariant trips on a generated world, re-running the whole
// spec is a poor debugging artifact — worlds carry hundreds of
// satellites and dozens of fault windows. shrink_spec() greedily applies
// structure-reducing transforms (drop fault events, halve terminals and
// satellites, drop networks, strip weather and mobility, halve the
// horizon) and keeps each reduction iff the failure predicate still
// fires, looping to a fixpoint. The result is the smallest spec this
// procedure can reach that still reproduces the failure; the matrix test
// prints it to stderr and writes it under build/matrix_failures/.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "synth/worldgen.hpp"

namespace satnet::matrix {

struct ShrinkResult {
  synth::ScenarioSpec spec;        ///< minimal spec still failing
  std::size_t steps_tried = 0;     ///< predicate evaluations spent
  std::size_t steps_accepted = 0;  ///< reductions that kept the failure
};

/// Greedy fixpoint shrink. `still_fails` must return true when the
/// candidate spec still reproduces the failure; it is called at most
/// `max_steps` times (shrinking is bounded, not exhaustive).
ShrinkResult shrink_spec(const synth::ScenarioSpec& start,
                         const std::function<bool(const synth::ScenarioSpec&)>& still_fails,
                         std::size_t max_steps = 80);

}  // namespace satnet::matrix
