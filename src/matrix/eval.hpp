// Deterministic evaluation of one generated world.
//
// evaluate_world() drives a synth::GeneratedWorld through the sharded
// campaign runtime — one shard per terminal, fork_stable streams keyed
// by terminal name — and folds the results into a WorldEval: a canonical
// text report (the byte-compared artifact), per-sample reachability
// bits, flow-conservation accounting, and a small set of scalar
// metrics. Everything in a WorldEval is a pure function of (spec,
// options); the invariant harness (invariants.hpp) compares WorldEvals
// across thread counts, cache/timeline ablation, and widening fault
// plans instead of pinning goldens.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "synth/worldgen.hpp"

namespace satnet::matrix {

/// Deliberate breakages for the harness self-check: each one must be
/// caught by exactly the invariant it violates, proving the matrix
/// would notice the real thing.
enum class Mutation {
  none,
  thread_stamp,  ///< stamps the thread count into the report (thread identity)
  nan_metric,    ///< exports a NaN metric (finite metrics)
  flow_bytes,    ///< corrupts one flow's byte accounting (conservation)
};

struct EvalOptions {
  unsigned threads = 1;
  /// Widens every monotone fault window (gateway_outage,
  /// weather_escalation, burst_loss) by this fraction of the gap to the
  /// next same-(kind, target) window — see widen_plan().
  double widen_fraction = 0.0;
  /// false ablates both the epoch timeline and the access-interval
  /// cache for the duration of the evaluation (value-transparency
  /// check); restored on exit.
  bool use_timeline = true;
  Mutation mutation = Mutation::none;
};

/// Everything the invariants compare.
struct WorldEval {
  /// Canonical text: spec summary, one line per terminal, aggregates.
  /// Byte-identical across thread counts and cache ablations.
  std::string report;
  /// Terminal-major reachability bits: ok_bits[terminal * samples + k]
  /// is 1 when the terminal had a usable sky at sample k (reachable and
  /// not weather-blacked-out). The monotone-degradation axis.
  std::vector<std::uint8_t> ok_bits;
  std::size_t samples_per_terminal = 0;
  std::size_t flows = 0;
  std::size_t conservation_violations = 0;
  /// Scalar metrics, sorted by name; the finite-metrics invariant scans
  /// these plus the process metrics registry.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Widens the monotone fault windows of a plan: each gateway_outage /
/// weather_escalation / burst_loss window's end moves toward the next
/// same-(kind, target) window start (or the horizon) by `fraction` of
/// the gap. Widened plans are nested supersets as fraction grows, and
/// handoff_storm / shard_failure events are left untouched (storms move
/// epoch boundaries, which is not a monotone axis). fraction 0 returns
/// the plan unchanged.
fault::FaultPlan widen_plan(const fault::FaultPlan& plan, double horizon_sec,
                            double fraction);

/// Evaluates a world. Installs the (possibly widened) fault plan for
/// the duration; not reentrant (the fault hook and ablation switches
/// are process-wide) — callers run evaluations sequentially.
WorldEval evaluate_world(const synth::GeneratedWorld& world, const EvalOptions& options);

}  // namespace satnet::matrix
