#include "matrix/shrink.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace satnet::matrix {

namespace {

using synth::ScenarioSpec;

/// One structure-reducing transform. Returns false when it cannot make
/// the spec any smaller (fixpoint for this op).
using ShrinkOp = bool (*)(ScenarioSpec&);

bool drop_fault_half(ScenarioSpec& spec) {
  const std::vector<fault::FaultEvent>& events = spec.faults.events();
  if (events.empty()) return false;
  std::vector<fault::FaultEvent> kept(events.begin(),
                                      events.begin() + static_cast<std::ptrdiff_t>(
                                                           events.size() / 2));
  spec.faults = fault::FaultPlan(std::move(kept));
  return true;
}

bool drop_fault_one(ScenarioSpec& spec) {
  std::vector<fault::FaultEvent> events = spec.faults.events();
  if (events.empty()) return false;
  events.pop_back();
  spec.faults = fault::FaultPlan(std::move(events));
  return true;
}

bool halve_terminals(ScenarioSpec& spec) {
  if (spec.terminals.size() <= 1) return false;
  spec.terminals.resize(std::max<std::size_t>(1, spec.terminals.size() / 2));
  return true;
}

bool halve_satellites(ScenarioSpec& spec) {
  bool changed = false;
  for (synth::NetworkSpec& net : spec.networks) {
    for (orbit::Shell& shell : net.shells) {
      if (shell.planes > 1) {
        shell.planes = std::max<std::size_t>(1, shell.planes / 2);
        changed = true;
      }
      if (shell.sats_per_plane > 2) {
        shell.sats_per_plane = std::max<std::size_t>(2, shell.sats_per_plane / 2);
        changed = true;
      }
      shell.phase_factor =
          std::min<unsigned>(shell.phase_factor, static_cast<unsigned>(shell.planes - 1));
    }
  }
  return changed;
}

bool drop_last_network(ScenarioSpec& spec) {
  if (spec.networks.size() <= 1) return false;
  spec.networks.pop_back();
  // Terminals of the dropped network fold into network 0 so every
  // terminal keeps a sky to ask about.
  for (synth::TerminalSpec& t : spec.terminals) {
    if (t.network >= spec.networks.size()) t.network = 0;
  }
  return true;
}

bool strip_weather(ScenarioSpec& spec) {
  if (spec.weather.fronts.empty() && spec.weather.rain_prob == 0.0 &&
      spec.weather.heavy_rain_prob == 0.0 && spec.weather.cloudy_prob == 0.0) {
    return false;
  }
  spec.weather.fronts.clear();
  spec.weather.rain_prob = 0.0;
  spec.weather.heavy_rain_prob = 0.0;
  spec.weather.cloudy_prob = 0.0;
  return true;
}

bool strip_mobility(ScenarioSpec& spec) {
  bool changed = false;
  for (synth::TerminalSpec& t : spec.terminals) {
    if (t.mobility == synth::Mobility::fixed && t.waypoints.size() <= 1) continue;
    t.mobility = synth::Mobility::fixed;
    t.speed_kmh = 0;
    t.waypoints.resize(1);
    changed = true;
  }
  return changed;
}

bool halve_horizon(ScenarioSpec& spec) {
  const double floor_sec = std::max(2.0 * spec.step_sec, 120.0);
  if (spec.horizon_sec <= floor_sec) return false;
  spec.horizon_sec = std::max(floor_sec, spec.horizon_sec / 2.0);
  return true;
}

constexpr ShrinkOp kOps[] = {
    drop_fault_half, drop_fault_one,   halve_terminals, halve_satellites,
    drop_last_network, strip_weather,  strip_mobility,  halve_horizon,
};

}  // namespace

ShrinkResult shrink_spec(const synth::ScenarioSpec& start,
                         const std::function<bool(const synth::ScenarioSpec&)>& still_fails,
                         std::size_t max_steps) {
  ShrinkResult result;
  result.spec = start;
  bool progressed = true;
  while (progressed && result.steps_tried < max_steps) {
    progressed = false;
    for (const ShrinkOp op : kOps) {
      if (result.steps_tried >= max_steps) break;
      ScenarioSpec candidate = result.spec;
      if (!op(candidate)) continue;
      ++result.steps_tried;
      if (still_fails(candidate)) {
        result.spec = std::move(candidate);
        ++result.steps_accepted;
        progressed = true;
      }
    }
  }
  return result;
}

}  // namespace satnet::matrix
