// The cross-cutting invariant catalog for generated worlds.
//
// Instead of pinning goldens per scenario, the matrix asserts properties
// every correct world must have (DESIGN.md §15):
//   thread-identity        byte-identical report at 1/2/8 threads
//   ablation-identity      byte-identical report with the epoch timeline
//                          and access-interval cache disabled
//   flow-conservation      bytes_sent == bytes_acked + bytes_retrans on
//                          every simulated flow
//   monotone-degradation   widening the monotone fault windows never
//                          turns an unreachable sample reachable
//   finite-metrics         no NaN/Inf in the world's scalar metrics or
//                          the process metrics registry
// check_spec() runs them all on one spec and reports the first
// violation; the Mutation hooks in eval.hpp prove each detector fires.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "matrix/eval.hpp"
#include "synth/worldgen.hpp"

namespace satnet::matrix {

struct CheckOptions {
  std::vector<unsigned> thread_counts = {1, 2, 8};
  /// Widening fractions, checked in order; each must be pointwise no
  /// better than the previous (nested supersets of fault windows).
  std::vector<double> widen_fractions = {0.35, 0.7};
  Mutation mutation = Mutation::none;
};

struct InvariantViolation {
  std::string invariant;  ///< catalog name, e.g. "thread-identity"
  std::string detail;
};

/// Materializes the spec and runs the whole catalog. Returns the first
/// violation, or nullopt when every invariant holds. Sequential and not
/// reentrant (installs fault hooks and flips ablation switches).
std::optional<InvariantViolation> check_spec(const synth::ScenarioSpec& spec,
                                             const CheckOptions& options = {});

}  // namespace satnet::matrix
