#include "matrix/eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>

#include "fault/hook.hpp"
#include "orbit/access_index.hpp"
#include "orbit/timeline.hpp"
#include "stats/rng.hpp"
#include "transport/linkmodel.hpp"
#include "transport/quic.hpp"
#include "transport/tcp.hpp"
#include "runtime/sharded.hpp"
#include "weather/weather.hpp"

namespace satnet::matrix {

namespace {

/// Cap on samples per terminal so a long-horizon world stays cheap; the
/// effective cadence stretches instead of the evaluation exploding.
constexpr std::size_t kMaxSamples = 40;

/// Restores the timeline/access-cache ablation switches on scope exit.
class ScopedAblation {
 public:
  explicit ScopedAblation(bool use_caches)
      : timeline_was_(orbit::timeline_enabled()),
        cache_was_(orbit::access_cache_enabled()) {
    orbit::set_timeline_enabled(use_caches && timeline_was_);
    orbit::set_access_cache_enabled(use_caches && cache_was_);
  }
  ~ScopedAblation() {
    orbit::set_timeline_enabled(timeline_was_);
    orbit::set_access_cache_enabled(cache_was_);
  }
  ScopedAblation(const ScopedAblation&) = delete;
  ScopedAblation& operator=(const ScopedAblation&) = delete;

 private:
  bool timeline_was_;
  bool cache_was_;
};

struct TerminalResult {
  std::string line;
  std::vector<std::uint8_t> ok;
  std::size_t flows = 0;
  std::size_t violations = 0;
  std::size_t reachable = 0;
  std::size_t handoffs = 0;
  double sum_one_way_ms = 0;
  double tcp_goodput_mbps = 0;
  double quic_goodput_mbps = 0;
};

}  // namespace

fault::FaultPlan widen_plan(const fault::FaultPlan& plan, double horizon_sec,
                            double fraction) {
  if (fraction <= 0.0 || plan.empty()) return plan;
  const auto widens = [](fault::EventKind kind) {
    return kind == fault::EventKind::gateway_outage ||
           kind == fault::EventKind::weather_escalation ||
           kind == fault::EventKind::burst_loss;
  };
  std::vector<fault::FaultEvent> events = plan.events();
  // Events are in canonical (kind, target, t_start) order, so the next
  // same-stream window is simply the next event with equal (kind,
  // target). The new end moves a fraction of the way toward that limit
  // — nested supersets as fraction grows, never overlapping.
  for (std::size_t i = 0; i < events.size(); ++i) {
    fault::FaultEvent& ev = events[i];
    if (!widens(ev.kind)) continue;
    double limit = std::max(horizon_sec, ev.t_end_sec);
    if (i + 1 < events.size() && events[i + 1].kind == ev.kind &&
        events[i + 1].target == ev.target) {
      limit = events[i + 1].t_start_sec;
    }
    const double f = std::min(fraction, 1.0);
    ev.t_end_sec = ev.t_end_sec + f * std::max(0.0, limit - ev.t_end_sec);
  }
  fault::FaultPlan widened{std::move(events)};
  widened.validate();
  return widened;
}

WorldEval evaluate_world(const synth::GeneratedWorld& world, const EvalOptions& options) {
  const synth::ScenarioSpec& spec = world.spec();
  const fault::FaultPlan plan =
      widen_plan(spec.faults, spec.horizon_sec, options.widen_fraction);
  const fault::ScopedHook hook(plan);
  const ScopedAblation ablation(options.use_timeline);

  std::size_t samples = static_cast<std::size_t>(
      std::floor(spec.horizon_sec / std::max(1.0, spec.step_sec)));
  samples = std::clamp<std::size_t>(samples, 1, kMaxSamples);
  const double step =
      spec.horizon_sec / static_cast<double>(samples);  // stretched cadence

  // Warm the epoch timeline with exactly the queries the shards will
  // make, per LEO/MEO network (no-op for GEO and under ablation). The
  // hook is already installed, so era keys match the evaluation.
  if (options.use_timeline) {
    for (std::size_t n = 0; n < world.n_networks(); ++n) {
      std::vector<orbit::TimelineQuery> queries;
      for (std::size_t i = 0; i < spec.terminals.size(); ++i) {
        if (spec.terminals[i].network != n) continue;
        for (std::size_t k = 0; k < samples; ++k) {
          const double t = static_cast<double>(k) * step;
          queries.push_back({world.terminal_position(i, t), t});
        }
      }
      if (!queries.empty()) {
        orbit::EpochTimeline::ensure(world.network(n), std::move(queries),
                                     options.threads);
      }
    }
  }

  const stats::Rng master(spec.seed);
  const auto shard_fn = [&](std::size_t i) {
    TerminalResult r;
    const synth::TerminalSpec& term = spec.terminals[i];
    const orbit::AccessNetwork& net = world.network(term.network);
    const transport::LinkTraits& traits = spec.networks[term.network].traits;
    stats::Rng rng = master.fork_stable("matrix.eval").fork_stable(term.name);

    r.ok.resize(samples, 0);
    std::size_t first_ok = samples;
    orbit::AccessSample first_sample;
    weather::LinkImpact first_impact;
    double first_t = 0;
    for (std::size_t k = 0; k < samples; ++k) {
      const double t = static_cast<double>(k) * step;
      const geo::GeoPoint pos = world.terminal_position(i, t);
      const orbit::AccessSample s = net.sample_with_handoff(pos, t);
      const weather::LinkImpact impact =
          world.weather().impact_at(pos, t, net.config().orbit);
      const bool ok = s.reachable && !impact.outage;
      r.ok[k] = ok ? 1 : 0;
      if (ok) {
        ++r.reachable;
        r.sum_one_way_ms += s.one_way_ms;
        if (s.handoff) ++r.handoffs;
        if (first_ok == samples) {
          first_ok = k;
          first_sample = s;
          first_impact = impact;
          first_t = t;
        }
      }
    }

    if (first_ok < samples) {
      transport::PathProfile path =
          transport::build_download_profile(first_sample, traits, 2.0, rng);
      transport::apply_impairment(path, first_impact);
      transport::apply_link_faults(path, net.config().name, first_t);
      if (path.bottleneck_mbps > 0) {
        transport::FlowResult tcp =
            transport::TcpFlow(path, {}, rng.fork_stable("tcp")).run_for(3000.0);
        transport::FlowResult quic =
            transport::QuicFlow(path, {}, rng.fork_stable("quic")).run_for(3000.0);
        if (options.mutation == Mutation::flow_bytes && i == 0) {
          tcp.bytes_acked += 1;  // deliberate: the self-check must trip conservation
        }
        r.flows = 2;
        r.violations = (tcp.conserved() ? 0 : 1) + (quic.conserved() ? 0 : 1);
        r.tcp_goodput_mbps = tcp.goodput_mbps;
        r.quic_goodput_mbps = quic.goodput_mbps;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      " tcp=%.4f/%.5f quic=%.4f/%.5f conserved=%d",
                      tcp.goodput_mbps, tcp.retrans_fraction, quic.goodput_mbps,
                      quic.retrans_fraction,
                      tcp.conserved() && quic.conserved() ? 1 : 0);
        r.line = buf;
      }
    }
    char head[192];
    std::snprintf(head, sizeof(head), "%s net=%s ok=%zu/%zu mean_ow_ms=%.4f handoffs=%zu",
                  term.name.c_str(), net.config().name.c_str(), r.reachable, samples,
                  r.reachable > 0 ? r.sum_one_way_ms / static_cast<double>(r.reachable)
                                  : 0.0,
                  r.handoffs);
    r.line = std::string(head) + r.line;
    return r;
  };

  runtime::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.degrade = true;  // injected shard failures quarantine deterministically
  runtime::CampaignReport report;
  const runtime::ShardedCampaign<TerminalResult> campaign(spec.terminals.size(), shard_fn,
                                                          "matrix.eval");
  const std::vector<TerminalResult> results =
      campaign.run_with_report(options.threads, policy, &report);

  WorldEval eval;
  eval.samples_per_terminal = samples;
  eval.report = "world " + spec.summary() + "\n";
  std::size_t reachable_total = 0;
  std::size_t sample_total = 0;
  std::size_t handoff_total = 0;
  double one_way_sum = 0;
  double tcp_goodput_sum = 0;
  std::size_t flows_with_goodput = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TerminalResult& r = results[i];
    if (r.line.empty()) {
      // Quarantined shard: the default slot. Deterministic (the failure
      // decision hashes (phase, shard, attempt)), so it may appear in
      // the byte-compared report.
      eval.report += spec.terminals[i].name + " degraded\n";
    } else {
      eval.report += r.line + "\n";
    }
    if (r.ok.size() == samples) {
      eval.ok_bits.insert(eval.ok_bits.end(), r.ok.begin(), r.ok.end());
    } else {
      eval.ok_bits.insert(eval.ok_bits.end(), samples, 0);
    }
    reachable_total += r.reachable;
    sample_total += samples;
    handoff_total += r.handoffs;
    one_way_sum += r.sum_one_way_ms;
    eval.flows += r.flows;
    eval.conservation_violations += r.violations;
    if (r.flows > 0) {
      tcp_goodput_sum += r.tcp_goodput_mbps;
      ++flows_with_goodput;
    }
  }

  const double ok_fraction =
      sample_total > 0
          ? static_cast<double>(reachable_total) / static_cast<double>(sample_total)
          : 0.0;
  const double mean_one_way =
      reachable_total > 0 ? one_way_sum / static_cast<double>(reachable_total) : 0.0;
  const double mean_tcp_goodput =
      flows_with_goodput > 0 ? tcp_goodput_sum / static_cast<double>(flows_with_goodput)
                             : 0.0;
  eval.metrics.emplace_back("matrix.conservation_violations",
                            static_cast<double>(eval.conservation_violations));
  eval.metrics.emplace_back("matrix.degraded", static_cast<double>(report.degraded));
  eval.metrics.emplace_back("matrix.flows", static_cast<double>(eval.flows));
  eval.metrics.emplace_back("matrix.handoffs", static_cast<double>(handoff_total));
  eval.metrics.emplace_back("matrix.mean_one_way_ms", mean_one_way);
  eval.metrics.emplace_back("matrix.ok_fraction", ok_fraction);
  eval.metrics.emplace_back("matrix.tcp_goodput_mean_mbps", mean_tcp_goodput);
  if (options.mutation == Mutation::nan_metric) {
    eval.metrics.emplace_back("matrix.zz_mutant",
                              std::numeric_limits<double>::quiet_NaN());
  }

  char agg[224];
  std::snprintf(agg, sizeof(agg),
                "aggregate ok=%.6f mean_ow_ms=%.4f handoffs=%zu flows=%zu "
                "degraded=%zu retries=%zu",
                ok_fraction, mean_one_way, handoff_total, eval.flows, report.degraded,
                report.retries);
  eval.report += agg;
  eval.report += "\n";
  if (options.mutation == Mutation::thread_stamp) {
    // Deliberate: leaks the thread count into the byte-compared report,
    // which the thread-identity invariant must catch.
    eval.report += "threads=" + std::to_string(options.threads) + "\n";
  }
  return eval;
}

}  // namespace satnet::matrix
