#include "matrix/invariants.hpp"

#include <cmath>
#include <cstdio>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace satnet::matrix {

namespace {

std::string first_diff(const std::string& a, const std::string& b) {
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  // Report the enclosing line so the diff is readable in CI logs.
  const std::size_t line_start = a.rfind('\n', i == 0 ? 0 : i - 1);
  const std::size_t from = line_start == std::string::npos ? 0 : line_start + 1;
  const std::size_t a_end = std::min(a.size(), a.find('\n', from));
  const std::size_t b_end = std::min(b.size(), b.find('\n', from));
  return "first divergence at byte " + std::to_string(i) + ": \"" +
         a.substr(from, a_end - from) + "\" vs \"" + b.substr(from, b_end - from) + "\"";
}

}  // namespace

std::optional<InvariantViolation> check_spec(const synth::ScenarioSpec& spec,
                                             const CheckOptions& options) {
  const synth::GeneratedWorld world(spec);

  EvalOptions base_opts;
  base_opts.threads = options.thread_counts.empty() ? 1 : options.thread_counts.front();
  base_opts.mutation = options.mutation;
  const WorldEval base = evaluate_world(world, base_opts);

  // Thread identity: the report is a pure function of the spec, so any
  // thread count must reproduce it byte for byte.
  for (std::size_t i = 1; i < options.thread_counts.size(); ++i) {
    EvalOptions opts = base_opts;
    opts.threads = options.thread_counts[i];
    const WorldEval eval = evaluate_world(world, opts);
    if (eval.report != base.report) {
      return InvariantViolation{
          "thread-identity",
          "threads=" + std::to_string(opts.threads) + " diverges from threads=" +
              std::to_string(base_opts.threads) + ": " +
              first_diff(base.report, eval.report)};
    }
  }

  // Ablation identity: the epoch timeline and the access-interval cache
  // are value-transparent accelerators.
  {
    EvalOptions opts = base_opts;
    opts.use_timeline = false;
    const WorldEval eval = evaluate_world(world, opts);
    if (eval.report != base.report) {
      return InvariantViolation{"ablation-identity",
                                "timeline/access-cache off diverges: " +
                                    first_diff(base.report, eval.report)};
    }
  }

  // Flow conservation: every simulated flow's bytes balance.
  if (base.conservation_violations > 0) {
    return InvariantViolation{
        "flow-conservation", std::to_string(base.conservation_violations) + " of " +
                                 std::to_string(base.flows) +
                                 " flows violate bytes_sent == bytes_acked + bytes_retrans"};
  }

  // Monotone degradation: widening the monotone fault windows can only
  // lose reachability, never gain it.
  {
    std::vector<std::uint8_t> prev = base.ok_bits;
    double prev_fraction = 0.0;
    for (const double fraction : options.widen_fractions) {
      EvalOptions opts = base_opts;
      opts.widen_fraction = fraction;
      const WorldEval eval = evaluate_world(world, opts);
      if (eval.ok_bits.size() != prev.size()) {
        return InvariantViolation{"monotone-degradation",
                                  "ok-bit vector size changed under widening"};
      }
      for (std::size_t j = 0; j < prev.size(); ++j) {
        if (eval.ok_bits[j] && !prev[j]) {
          const std::size_t samples = eval.samples_per_terminal;
          char buf[192];
          std::snprintf(buf, sizeof(buf),
                        "terminal %zu sample %zu became reachable when widening "
                        "%.2f -> %.2f",
                        samples > 0 ? j / samples : j, samples > 0 ? j % samples : 0,
                        prev_fraction, fraction);
          return InvariantViolation{"monotone-degradation", buf};
        }
      }
      prev = eval.ok_bits;
      prev_fraction = fraction;
    }
  }

  // Finite metrics: nothing exported may be NaN/Inf — neither the
  // world's own scalars nor anything in the process registry.
  for (const auto& [name, value] : base.metrics) {
    if (!std::isfinite(value)) {
      return InvariantViolation{"finite-metrics", "world metric " + name + " is not finite"};
    }
  }
  {
    const std::vector<std::string> bad =
        obs::nonfinite_metrics(obs::MetricsRegistry::global().scrape());
    if (!bad.empty()) {
      return InvariantViolation{"finite-metrics",
                                "registry metric " + bad.front() + " is not finite"};
    }
  }

  return std::nullopt;
}

}  // namespace satnet::matrix
