// Cross-module property tests: invariants that must hold for any seed,
// any scale, and any parameterization — the safety net under the
// calibrated numbers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "mlab/campaign.hpp"
#include "snoid/pipeline.hpp"
#include "snoid/tcptrace.hpp"
#include "stats/kde.hpp"
#include "synth/world.hpp"
#include "transport/quic.hpp"
#include "transport/tcp.hpp"

namespace satnet {
namespace {

// ---------------------------------------------------------------- seeds

// The sweep draws its generator seeds from a fixed meta-stream, so run
// N and run N+1 agree on what "seed #k" means. SATNET_PROPERTY_SEEDS
// overrides the count (nightly jobs raise it, quick local runs lower
// it); the failing seed is printed in every assertion's trace.
std::vector<std::uint64_t> sweep_seeds() {
  std::size_t n = 32;
  if (const char* env = std::getenv("SATNET_PROPERTY_SEEDS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) n = static_cast<std::size_t>(v);
  }
  const stats::Rng meta(0x5eed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(
        static_cast<std::uint64_t>(meta.fork_stable(i).uniform_int(1, 1ll << 62)));
  }
  return seeds;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, TcpByteConservationForAnySeedAndPath) {
  SCOPED_TRACE(::testing::Message() << "generator seed " << GetParam());
  stats::Rng meta(GetParam());
  for (int variant = 0; variant < 6; ++variant) {
    transport::PathProfile p;
    p.base_rtt_ms = meta.uniform(20, 700);
    p.jitter_ms = meta.uniform(0.5, 60);
    p.bottleneck_mbps = meta.uniform(0.5, 200);
    p.buffer_bdp = meta.uniform(0.3, 3.0);
    p.sat_loss = meta.uniform(0, 0.03);
    p.spurious_rto_prob = meta.uniform(0, 0.15);
    p.handoff_rate_hz = meta.uniform(0, 0.2);
    p.handoff_loss_frac = meta.uniform(0, 0.3);
    p.handoff_spike_ms = meta.uniform(0, 100);
    p.pep = meta.chance(0.5);
    transport::TcpFlow flow(p, transport::TcpOptions{}, meta.fork(variant));
    const auto r = flow.run_for(6000);
    EXPECT_EQ(r.bytes_sent, r.bytes_acked + r.bytes_retrans)
        << "variant " << variant << " seed " << GetParam();
    EXPECT_GE(r.retrans_fraction, 0.0);
    EXPECT_LE(r.retrans_fraction, 1.0);
    EXPECT_GE(r.rtt_p5_ms, p.base_rtt_ms * 0.9);
  }
}

TEST_P(SeedSweep, QuicByteConservationForAnySeedAndPath) {
  SCOPED_TRACE(::testing::Message() << "generator seed " << GetParam());
  stats::Rng meta(GetParam() ^ 0xbeef);
  for (int variant = 0; variant < 6; ++variant) {
    transport::PathProfile p;
    p.base_rtt_ms = meta.uniform(20, 700);
    p.bottleneck_mbps = meta.uniform(0.5, 200);
    p.sat_loss = meta.uniform(0, 0.03);
    p.spurious_rto_prob = meta.uniform(0, 0.15);
    transport::QuicFlow flow(p, transport::QuicOptions{}, meta.fork(variant));
    const auto r = flow.run_for(6000);
    EXPECT_EQ(r.bytes_sent, r.bytes_acked + r.bytes_retrans);
  }
}

TEST_P(SeedSweep, TraceEpisodesSumToSnapshotTotal) {
  SCOPED_TRACE(::testing::Message() << "generator seed " << GetParam());
  stats::Rng meta(GetParam() ^ 0xfeed);
  transport::PathProfile p;
  p.base_rtt_ms = meta.uniform(40, 700);
  p.bottleneck_mbps = meta.uniform(1, 50);
  p.sat_loss = meta.uniform(0.001, 0.02);
  p.spurious_rto_prob = meta.uniform(0, 0.15);
  transport::TcpFlow flow(p, transport::TcpOptions{}, meta.fork(1));
  const auto result = flow.run_for(8000);
  const auto analysis = snoid::analyze_trace(result.snapshots);
  std::uint64_t sum = 0;
  for (const auto& e : analysis.episodes) sum += e.bytes;
  // Episodes cover exactly the retransmitted bytes visible in snapshots.
  EXPECT_EQ(sum, result.snapshots.back().bytes_retrans);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::ValuesIn(sweep_seeds()));

// -------------------------------------------------------------- pipeline

TEST(PipelinePropertyTest, RetainedSetsAreDisjointAcrossOperators) {
  static const synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.0003;
  cfg.min_tests_per_sno = 20;
  const auto ds = mlab::run_campaign(world, cfg);
  const auto result = snoid::run_pipeline(ds);
  std::set<std::size_t> seen;
  for (const auto& op : result.operators) {
    for (const std::size_t i : op.retained) {
      EXPECT_TRUE(seen.insert(i).second) << "record retained twice: " << i;
      EXPECT_LT(i, ds.size());
    }
  }
}

TEST(PipelinePropertyTest, LooseningStrictThresholdNeverLosesOperators) {
  static const synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.0003;
  cfg.min_tests_per_sno = 20;
  const auto ds = mlab::run_campaign(world, cfg);
  std::size_t prev = 0;
  for (const double thr : {700.0, 600.0, 500.0, 400.0}) {
    snoid::PipelineConfig pc;
    pc.geo_strict_ms = thr;
    const auto result = snoid::run_pipeline(ds, pc);
    std::size_t covered = 0;
    for (const auto& op : result.operators) {
      if (op.covered_by_strict) ++covered;
    }
    EXPECT_GE(covered, prev) << "thr " << thr;
    prev = covered;
  }
}

TEST(PipelinePropertyTest, RaisingMinTestsOnlyShrinksStrictCoverage) {
  static const synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.0003;
  cfg.min_tests_per_sno = 20;
  const auto ds = mlab::run_campaign(world, cfg);
  std::size_t prev = SIZE_MAX;
  for (const std::size_t n : {2ul, 10ul, 50ul, 500ul}) {
    snoid::PipelineConfig pc;
    pc.min_tests_per_prefix = n;
    const auto result = snoid::run_pipeline(ds, pc);
    std::size_t strict_prefixes = 0;
    for (const auto& op : result.operators) {
      for (const auto& p : op.prefixes) {
        if (p.retained_strict) ++strict_prefixes;
      }
    }
    EXPECT_LE(strict_prefixes, prev);
    prev = strict_prefixes;
  }
}

TEST(PipelinePropertyTest, DeterministicAcrossRuns) {
  static const synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.0002;
  cfg.min_tests_per_sno = 10;
  const auto a = snoid::run_pipeline(mlab::run_campaign(world, cfg));
  const auto b = snoid::run_pipeline(mlab::run_campaign(world, cfg));
  ASSERT_EQ(a.operators.size(), b.operators.size());
  for (std::size_t i = 0; i < a.operators.size(); ++i) {
    EXPECT_EQ(a.operators[i].retained.size(), b.operators[i].retained.size());
    EXPECT_EQ(a.operators[i].covered_by_strict, b.operators[i].covered_by_strict);
  }
}

// ------------------------------------------------------------------ KDE

class KdeScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(KdeScaleInvariance, PeakLocationScalesWithData) {
  stats::Rng rng(5);
  std::vector<double> base, scaled;
  for (int i = 0; i < 400; ++i) {
    const double v = rng.normal(100, 10);
    base.push_back(v);
    scaled.push_back(v * GetParam());
  }
  const auto pb = stats::Kde(base).peaks();
  const auto ps = stats::Kde(scaled).peaks();
  ASSERT_FALSE(pb.empty());
  ASSERT_FALSE(ps.empty());
  EXPECT_NEAR(ps.front().location, pb.front().location * GetParam(),
              pb.front().location * GetParam() * 0.05);
  EXPECT_NEAR(ps.front().mass, pb.front().mass, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Scales, KdeScaleInvariance, ::testing::Values(0.1, 2.0, 13.0));

// ----------------------------------------------------------------- world

TEST(WorldPropertyTest, SubscriberIpsUnique) {
  static const synth::World world;
  std::set<std::uint32_t> ips;
  for (const auto& sub : world.subscribers()) {
    EXPECT_TRUE(ips.insert(sub.ip.value()).second) << sub.ip.to_string();
  }
}

TEST(WorldPropertyTest, AccessLatencyAboveGeometricFloor) {
  // No sampled satellite path may beat the physical floor for its orbit:
  // 2x altitude at light speed (up + down legs).
  static const synth::World world;
  stats::Rng rng(6);
  int checked = 0;
  for (const auto& sub : world.subscribers()) {
    if (sub.tech != synth::AccessTech::satellite) continue;
    const auto p = world.sample_path(sub, 4000.0, rng);
    if (!p.ok) continue;
    double floor_km = 2 * 550.0;
    if (sub.orbit == orbit::OrbitClass::meo) floor_km = 2 * 8062.0;
    if (sub.orbit == orbit::OrbitClass::geo) floor_km = 2 * 35786.0;
    const double floor_rtt = 2.0 * geo::radio_delay_ms(floor_km);
    EXPECT_GT(p.download.base_rtt_ms, floor_rtt)
        << world.specs()[sub.spec_index].name;
    if (++checked > 300) break;
  }
}

}  // namespace
}  // namespace satnet
