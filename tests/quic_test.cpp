#include <gtest/gtest.h>

#include "transport/quic.hpp"
#include "transport/tcp.hpp"

namespace satnet::transport {
namespace {

PathProfile geo_nonpep() {
  PathProfile p;
  p.base_rtt_ms = 640;
  p.jitter_ms = 55;
  p.bottleneck_mbps = 15;
  p.buffer_bdp = 0.8;
  p.sat_loss = 0.006;
  p.spurious_rto_prob = 0.12;
  return p;
}

PathProfile geo_pep() {
  PathProfile p = geo_nonpep();
  p.sat_loss = 0.018;
  p.spurious_rto_prob = 0.004;
  p.pep = true;
  return p;
}

FlowResult run_quic(const PathProfile& p, std::uint64_t seed, double ms = 12000) {
  QuicFlow flow(p, QuicOptions{}, stats::Rng(seed));
  return flow.run_for(ms);
}

FlowResult run_tcp(const PathProfile& p, std::uint64_t seed, double ms = 12000) {
  TcpFlow flow(p, TcpOptions{}, stats::Rng(seed));
  return flow.run_for(ms);
}

TEST(QuicFlowTest, ByteConservation) {
  const FlowResult r = run_quic(geo_nonpep(), 1);
  EXPECT_EQ(r.bytes_sent, r.bytes_acked + r.bytes_retrans);
}

TEST(QuicFlowTest, Deterministic) {
  const FlowResult a = run_quic(geo_nonpep(), 7);
  const FlowResult b = run_quic(geo_nonpep(), 7);
  EXPECT_EQ(a.bytes_acked, b.bytes_acked);
}

TEST(QuicFlowTest, PepFlagIgnored) {
  // Encrypted transport: setting pep must not change the outcome.
  PathProfile with_pep = geo_nonpep();
  with_pep.pep = true;
  const FlowResult a = run_quic(geo_nonpep(), 3);
  const FlowResult b = run_quic(with_pep, 3);
  EXPECT_EQ(a.bytes_acked, b.bytes_acked);
  EXPECT_EQ(a.bytes_retrans, b.bytes_retrans);
}

TEST(QuicFlowTest, BeatsRawTcpOnSpuriousRtoPaths) {
  // QUIC's PTO avoids TCP's go-back-N waste on long paths. Isolate the
  // timeout pathology: low random loss, heavy spurious-RTO pressure.
  PathProfile p = geo_nonpep();
  p.sat_loss = 0.0005;
  double quic = 0, tcp = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    quic += run_quic(p, s).goodput_mbps;
    tcp += run_tcp(p, s).goodput_mbps;
  }
  EXPECT_GT(quic, 1.3 * tcp);
}

TEST(QuicFlowTest, RetransmitsFarLessThanRawTcpOnGeo) {
  double quic = 0, tcp = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    quic += run_quic(geo_nonpep(), s).retrans_fraction;
    tcp += run_tcp(geo_nonpep(), s).retrans_fraction;
  }
  EXPECT_LT(quic, tcp * 0.5);
}

TEST(QuicFlowTest, LosesToPepAssistedTcpOnGeo) {
  // The satcom "threat": a PEP recovers the satellite segment's losses
  // locally for TCP, but cannot help QUIC, which eats them end-to-end.
  PathProfile quic_path = geo_pep();  // same physical link, pep unusable
  double quic = 0, tcp_pep = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    quic += run_quic(quic_path, s).goodput_mbps;
    tcp_pep += run_tcp(geo_pep(), s).goodput_mbps;
  }
  EXPECT_LT(quic, tcp_pep);
}

TEST(QuicFlowTest, HandshakeSavesOneRtt) {
  PathProfile p;
  p.base_rtt_ms = 600;
  p.jitter_ms = 0.5;
  p.bottleneck_mbps = 20;
  stats::Rng r1(4), r2(4);
  const double quic_ms = quic_fetch_time_ms(p, 64 * 1024, r1);
  const double tcp_ms = fetch_time_ms(p, 64 * 1024, 2.0, r2);
  EXPECT_NEAR(tcp_ms - quic_ms, 600.0, 250.0);
}

TEST(QuicFlowTest, RunBytesDelivers) {
  PathProfile p;
  p.base_rtt_ms = 60;
  p.bottleneck_mbps = 50;
  QuicFlow flow(p, QuicOptions{}, stats::Rng(5));
  EXPECT_GE(flow.run_bytes(1 << 20).bytes_acked, 1u << 20);
}

TEST(QuicFlowTest, SnapshotsCompatibleWithTraceAnalysis) {
  const FlowResult r = run_quic(geo_nonpep(), 6);
  ASSERT_GT(r.snapshots.size(), 10u);
  for (std::size_t i = 1; i < r.snapshots.size(); ++i) {
    EXPECT_GE(r.snapshots[i].bytes_acked, r.snapshots[i - 1].bytes_acked);
  }
}

class QuicCapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(QuicCapacitySweep, GoodputBoundedByCapacity) {
  PathProfile p;
  p.base_rtt_ms = 80;
  p.bottleneck_mbps = GetParam();
  const FlowResult r = run_quic(p, 9, 15000);
  EXPECT_LE(r.goodput_mbps, GetParam() * 1.1);
  EXPECT_GT(r.goodput_mbps, GetParam() * 0.4);
}

INSTANTIATE_TEST_SUITE_P(Capacities, QuicCapacitySweep,
                         ::testing::Values(5.0, 20.0, 100.0));

}  // namespace
}  // namespace satnet::transport
