#include <gtest/gtest.h>

#include <set>

#include "mlab/campaign.hpp"
#include "mlab/dataset.hpp"
#include "mlab/ndt.hpp"

namespace satnet::mlab {
namespace {

const synth::World& world() {
  static const synth::World w;
  return w;
}

NdtDataset small_dataset() {
  CampaignConfig cfg;
  cfg.volume_scale = 0.0003;
  cfg.min_tests_per_sno = 15;
  return run_campaign(world(), cfg);
}

// ------------------------------------------------------------------ NDT

TEST(NdtTest, RecordCarriesTcpInfoFields) {
  stats::Rng rng(1);
  const auto* sub = world().subscribers_of("hughesnet").front();
  const auto rec = run_ndt(world(), *sub, 1000.0, rng);
  ASSERT_TRUE(rec.has_value());
  EXPECT_GT(rec->latency_p5_ms, 0.0);
  EXPECT_GT(rec->download_mbps, 0.0);
  EXPECT_GE(rec->retrans_frac, 0.0);
  EXPECT_LE(rec->retrans_frac, 1.0);
  EXPECT_EQ(rec->asn, sub->asn);
  EXPECT_EQ(rec->truth_operator, "hughesnet");
}

TEST(NdtTest, UploadSkippedByDefault) {
  stats::Rng rng(2);
  const auto* sub = world().subscribers_of("starlink").front();
  const auto rec = run_ndt(world(), *sub, 0.0, rng);
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->upload_mbps, 0.0);
}

TEST(NdtTest, UploadMeasuredWhenRequested) {
  stats::Rng rng(3);
  NdtOptions opt;
  opt.measure_upload = true;
  const auto* sub = world().subscribers_of("starlink").front();
  const auto rec = run_ndt(world(), *sub, 0.0, rng, opt);
  ASSERT_TRUE(rec.has_value());
  EXPECT_GT(rec->upload_mbps, 0.0);
  EXPECT_LT(rec->upload_mbps, rec->download_mbps);
}

TEST(NdtTest, GeoLatencyInGeoBand) {
  stats::Rng rng(4);
  int n = 0;
  for (const auto* sub : world().subscribers_of("kvh")) {
    if (sub->tech != synth::AccessTech::satellite) continue;
    const auto rec = run_ndt(world(), *sub, 500.0, rng);
    if (!rec) continue;
    if (rec->latency_p5_ms < 400) continue;  // rare VPN artifact
    EXPECT_GT(rec->latency_p5_ms, 600.0);
    EXPECT_LT(rec->latency_p5_ms, 1100.0);
    if (++n > 10) break;
  }
  EXPECT_GT(n, 3);
}

TEST(NdtTest, TruthLabelsConsistent) {
  stats::Rng rng(5);
  for (const auto* sub : world().subscribers_of("telalaska")) {
    const auto rec = run_ndt(world(), *sub, 123.0, rng);
    if (!rec) continue;
    if (sub->tech == synth::AccessTech::terrestrial) {
      EXPECT_FALSE(rec->truth_satellite);
    }
    if (sub->tech == synth::AccessTech::satellite) {
      EXPECT_TRUE(rec->truth_satellite);
    }
  }
}

// ------------------------------------------------------------- campaign

TEST(CampaignTest, ScheduledTestsScaleWithTable1) {
  CampaignConfig cfg;
  cfg.volume_scale = 0.001;
  cfg.min_tests_per_sno = 30;
  const auto& starlink = synth::find_sno("starlink");
  const auto& kacific = synth::find_sno("kacific");
  EXPECT_EQ(scheduled_tests(starlink, cfg), 11700u);
  EXPECT_EQ(scheduled_tests(kacific, cfg), 30u);  // floor clamped to paper count
}

TEST(CampaignTest, NonMlabOperatorsScheduleNothing) {
  CampaignConfig cfg;
  EXPECT_EQ(scheduled_tests(synth::find_sno("telesat"), cfg), 0u);
  EXPECT_EQ(scheduled_tests(synth::find_sno("cable-axion"), cfg), 0u);
}

TEST(CampaignTest, DatasetDeterministic) {
  CampaignConfig cfg;
  cfg.volume_scale = 0.0001;
  cfg.min_tests_per_sno = 5;
  const auto a = run_campaign(world(), cfg);
  const auto b = run_campaign(world(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 17) {
    EXPECT_EQ(a.records()[i].client_ip, b.records()[i].client_ip);
    EXPECT_DOUBLE_EQ(a.records()[i].latency_p5_ms, b.records()[i].latency_p5_ms);
  }
}

TEST(CampaignTest, CoversAllMlabOperators) {
  const auto ds = small_dataset();
  std::set<std::string> operators;
  for (const auto& r : ds.records()) operators.insert(r.truth_operator);
  EXPECT_EQ(operators.size(), 18u);
}

TEST(CampaignTest, TestTimesWithinWindow) {
  const auto ds = small_dataset();
  for (const auto& r : ds.records()) {
    EXPECT_GE(r.t_sec, 0.0);
    EXPECT_LE(r.t_sec, 730.0 * 86400.0);
  }
}

TEST(CampaignTest, RepeatTestersProduceDensePrefixes) {
  const auto ds = small_dataset();
  const auto by_prefix = ds.by_prefix(ds.all());
  std::size_t dense = 0;
  for (const auto& [prefix, idxs] : by_prefix) {
    if (idxs.size() >= 10) ++dense;
  }
  EXPECT_GT(dense, 5u);  // prefix filtering needs >= 10-test prefixes
}

// -------------------------------------------------------------- dataset

TEST(DatasetTest, ByAsnPartitionsAllRecords) {
  const auto ds = small_dataset();
  std::size_t total = 0;
  for (const auto& [asn, idxs] : ds.by_asn()) {
    total += idxs.size();
    for (const std::size_t i : idxs) EXPECT_EQ(ds.records()[i].asn, asn);
  }
  EXPECT_EQ(total, ds.size());
}

TEST(DatasetTest, FieldExtraction) {
  const auto ds = small_dataset();
  const auto lat = ds.field(ds.all(), &NdtRecord::latency_p5_ms);
  EXPECT_EQ(lat.size(), ds.size());
}

TEST(DatasetTest, SelectPredicate) {
  const auto ds = small_dataset();
  const auto geo_only = ds.select(
      [](const NdtRecord& r) { return r.truth_orbit == orbit::OrbitClass::geo; });
  EXPECT_GT(geo_only.size(), 0u);
  EXPECT_LT(geo_only.size(), ds.size());
}

}  // namespace
}  // namespace satnet::mlab
