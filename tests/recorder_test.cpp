// Flight recorder, phase profiler, and pool watchdog tests.
//
// The load-bearing property is the determinism contract: a det == 1
// record's content (kind, phase, shard, attempt, seq, a, b) replays
// bit-for-bit, only wall_us varies, and ring overflow drops oldest
// records so even a truncated stream is stable. The postmortem test
// pins the acceptance criterion directly: an abort-mode campaign
// failure dumps a postmortem whose deterministic fields are identical
// across two runs at threads=1 (wall_us stripped via suffix cut —
// event_jsonl_line puts it last for exactly this reason).
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "runtime/sharded.hpp"
#include "runtime/thread_pool.hpp"

namespace satnet {
namespace {

using obs::EventKind;
using obs::EventRecord;
using obs::FlightRecorder;
using obs::ResolvedEvent;
using obs::ShardScope;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Cuts the trailing `,"wall_us":N}` off every event line — the
/// documented golden-exclusion recipe for the one nondeterministic
/// field. Non-event lines (the postmortem reason line) pass through.
std::string strip_wall_us(const std::string& text) {
  std::ostringstream out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t pos = line.rfind(",\"wall_us\":");
    if (pos != std::string::npos && !line.empty() && line.back() == '}') {
      out << line.substr(0, pos) << "}\n";
    } else {
      out << line << "\n";
    }
  }
  return out.str();
}

TEST(RecorderTest, DisabledRecorderIsANoOp) {
  FlightRecorder rec;
  ASSERT_FALSE(rec.enabled());
  {
    ShardScope scope("off", 0, 0, &rec);
    rec.record(EventKind::fault_hit, 1);
  }
  EXPECT_TRUE(rec.drain().empty());
  EXPECT_EQ(rec.dump_postmortem("never written"), 0u);
}

TEST(RecorderTest, RingDropsOldestAndPhaseExitSurvives) {
  FlightRecorder rec;
  rec.set_enabled(true);
  rec.set_ring_capacity(4);
  {
    ShardScope scope("ring", 7, 0, &rec);
    // 12 pushes total into a capacity-4 ring: enter (seq 0), ten
    // fault_hits (seq 1..10), exit (seq 11). Oldest-first overwrite
    // leaves exactly seq 8..11.
    for (std::uint64_t i = 0; i < 10; ++i) {
      rec.record(EventKind::fault_hit, /*a=*/100 + i);
    }
  }
  const std::vector<ResolvedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].phase, "ring");
    EXPECT_EQ(events[i].rec.shard, 7u);
    EXPECT_EQ(events[i].rec.seq, 8u + i);
    EXPECT_EQ(events[i].rec.det, 1u);
  }
  // Surviving fault_hits carry their original payloads (seq k = a 99+k).
  EXPECT_EQ(events[0].rec.kind, static_cast<std::uint16_t>(EventKind::fault_hit));
  EXPECT_EQ(events[0].rec.a, 107u);
  // phase_exit is pushed last so it always survives overflow: a = drops
  // before its own push (seqs 0..6), b = records attempted before it.
  const ResolvedEvent& exit_ev = events.back();
  EXPECT_EQ(exit_ev.rec.kind, static_cast<std::uint16_t>(EventKind::phase_exit));
  EXPECT_EQ(exit_ev.rec.a, 7u);
  EXPECT_EQ(exit_ev.rec.b, 11u);
}

TEST(RecorderTest, DrainMergesShardsInCanonicalOrder) {
  FlightRecorder rec;
  rec.set_enabled(true);
  rec.set_ring_capacity(16);
  // Record shard 1 first, then shard 0: drain must still hand back
  // shard 0 first — the merge key is (phase, shard, attempt, seq), not
  // arrival order, which is what makes multi-threaded streams stable.
  {
    ShardScope scope("merge", 1, 0, &rec);
    rec.record(EventKind::timeline_hit, 2);
  }
  {
    ShardScope scope("merge", 0, 0, &rec);
    rec.record(EventKind::timeline_fallback, 3);
  }
  const std::vector<ResolvedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 6u);  // (enter, payload, exit) x 2 shards
  EXPECT_EQ(events[0].rec.shard, 0u);
  EXPECT_EQ(events[1].rec.shard, 0u);
  EXPECT_EQ(events[2].rec.shard, 0u);
  EXPECT_EQ(events[3].rec.shard, 1u);
  EXPECT_EQ(events[1].rec.kind,
            static_cast<std::uint16_t>(EventKind::timeline_fallback));
  EXPECT_EQ(events[4].rec.kind,
            static_cast<std::uint16_t>(EventKind::timeline_hit));
  // drain() is destructive.
  EXPECT_TRUE(rec.drain().empty());
}

TEST(RecorderTest, UnscopedRecordsAreTelemetryOnly) {
  FlightRecorder rec;
  rec.set_enabled(true);
  // No ShardScope on this thread: the record lands in the per-thread
  // unscoped ring with det forced to 0 even though the caller claimed
  // deterministic content — unscoped arrival order is scheduling-bound.
  rec.record(EventKind::queue_depth, 5, 0, /*det=*/true);
  const std::vector<ResolvedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, "unscoped");
  EXPECT_EQ(events[0].rec.det, 0u);
  EXPECT_EQ(events[0].rec.shard, EventRecord::kNoShard);
  EXPECT_EQ(events[0].rec.a, 5u);
}

TEST(RecorderTest, RecordForShardSortsAfterScopedStream) {
  FlightRecorder rec;
  rec.set_enabled(true);
  rec.set_ring_capacity(8);
  {
    ShardScope scope("fanin", 2, 1, &rec);
    rec.record(EventKind::retry, 1);
  }
  // Fan-in verdict emitted after the scope closed (the degrade path in
  // ShardedCampaign::collect): seq = 0xffffffff puts it last.
  rec.record_for_shard("fanin", 2, 1, EventKind::degrade, /*a=*/2);
  const std::vector<ResolvedEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.back().rec.kind,
            static_cast<std::uint16_t>(EventKind::degrade));
  EXPECT_EQ(events.back().rec.seq, 0xffffffffu);
  EXPECT_EQ(events.back().rec.det, 1u);
}

TEST(RecorderTest, EventsRoundTripThroughJsonl) {
  FlightRecorder rec;
  rec.set_enabled(true);
  rec.set_ring_capacity(8);
  {
    ShardScope scope("jsonl", 3, 2, &rec);
    rec.record(EventKind::fault_hit, 42, 7);
  }
  rec.record_for_shard("jsonl", 3, 2, EventKind::degrade, 3);
  const std::vector<ResolvedEvent> events = rec.drain();
  const std::string text = obs::events_jsonl(events);
  const std::vector<ResolvedEvent> parsed = obs::parse_events_jsonl(text);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].phase, events[i].phase);
    EXPECT_EQ(parsed[i].rec.kind, events[i].rec.kind);
    EXPECT_EQ(parsed[i].rec.det, events[i].rec.det);
    EXPECT_EQ(parsed[i].rec.shard, events[i].rec.shard);
    EXPECT_EQ(parsed[i].rec.attempt, events[i].rec.attempt);
    EXPECT_EQ(parsed[i].rec.seq, events[i].rec.seq);
    EXPECT_EQ(parsed[i].rec.a, events[i].rec.a);
    EXPECT_EQ(parsed[i].rec.b, events[i].rec.b);
    EXPECT_EQ(parsed[i].rec.wall_us, events[i].rec.wall_us);
  }
  // The suffix-cut contract: wall_us is the last field of every line.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_NE(line.rfind(",\"wall_us\":"), std::string::npos) << line;
  }
}

/// Runs an abort-mode campaign whose shard 2 always throws and returns
/// the postmortem text. threads=1 pins the inline path: the det == 1
/// stream is byte-stable there (thread_local replay caches make
/// cache-hit events thread-count-sensitive, so the stability contract
/// is per thread count).
std::string run_failing_campaign_postmortem(const std::string& path) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.drain();  // isolate from events earlier tests left behind
  const bool was_enabled = rec.enabled();
  const std::string old_path = rec.postmortem_path();
  rec.set_enabled(true);
  rec.set_postmortem_path(path);

  runtime::ShardedCampaign<int> campaign(
      4,
      [](std::size_t shard) -> int {
        if (shard == 2) throw std::runtime_error("synthetic shard fault");
        return static_cast<int>(shard) * 10;
      },
      "rec.postmortem.test");
  runtime::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.degrade = false;
  bool threw = false;
  try {
    campaign.run_with_report(1, policy, nullptr);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);

  rec.drain();
  rec.set_postmortem_path(old_path);
  rec.set_enabled(was_enabled);
  return read_file(path);
}

TEST(RecorderTest, PostmortemDeterministicFieldsStableAcrossRuns) {
  const std::string path_a = "recorder_test_postmortem_a.jsonl";
  const std::string path_b = "recorder_test_postmortem_b.jsonl";
  const std::string run_a = run_failing_campaign_postmortem(path_a);
  const std::string run_b = run_failing_campaign_postmortem(path_b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  ASSERT_FALSE(run_a.empty());
  // Reason line first, fully deterministic (no wall-clock in it).
  EXPECT_NE(run_a.find("{\"type\":\"postmortem\",\"reason\":\"abort-mode failure "
                       "in phase rec.postmortem.test: shard 2 failed after 2 "
                       "attempt(s): synthetic shard fault\""),
            std::string::npos)
      << run_a;
  // The retry decision made it into the black box.
  EXPECT_NE(run_a.find("\"kind\":\"retry\""), std::string::npos);
  // Byte-identical once the wall_us suffix is cut from each event line.
  EXPECT_EQ(strip_wall_us(run_a), strip_wall_us(run_b));
  // ... and the wall-clock really is the only varying part: the raw
  // texts themselves have identical line counts and lengths modulo it.
  EXPECT_NE(run_a.find("\"phase\":\"rec.postmortem.test\""), std::string::npos);
}

TEST(ProfilerTest, WatchdogFlagsStragglersOverMedianMultiple) {
  obs::PhaseProfiler& prof = obs::PhaseProfiler::global();
  const double old_multiple = prof.stall_multiple();
  const double old_min = prof.stall_min_ms();
  prof.set_stall_multiple(4.0);
  prof.set_stall_min_ms(1.0);

  const char* phase = "prof.watchdog.test";
  prof.attempt_done(phase, 0, 10.0, 0.0);
  prof.attempt_done(phase, 1, 10.0, 0.5);
  prof.attempt_done(phase, 2, 10.0, 0.0);
  prof.attempt_done(phase, 3, 1000.0, 0.0);  // 100x the median: a straggler
  EXPECT_EQ(prof.phase_done(phase), 1u);

  // The phase buffer was cleared: closing again flags nothing.
  EXPECT_EQ(prof.phase_done(phase), 0u);

  const obs::Snapshot snap = obs::MetricsRegistry::global().scrape();
  const obs::MetricValue* stalled = snap.find("profile.prof.watchdog.test.stalled");
  ASSERT_NE(stalled, nullptr);
  EXPECT_EQ(stalled->value, 1.0);
  const obs::MetricValue* tasks = snap.find("profile.prof.watchdog.test.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value, 4.0);
  const obs::MetricValue* wall = snap.find("profile.prof.watchdog.test.wall_us");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->value, 1030.0 * 1000.0);

  prof.set_stall_multiple(old_multiple);
  prof.set_stall_min_ms(old_min);
}

TEST(ProfilerTest, UniformPhaseFlagsNothing) {
  obs::PhaseProfiler& prof = obs::PhaseProfiler::global();
  const char* phase = "prof.uniform.test";
  for (std::size_t s = 0; s < 8; ++s) prof.attempt_done(phase, s, 5.0, 0.0);
  EXPECT_EQ(prof.phase_done(phase), 0u);
}

TEST(ProfilerTest, StallFloorSuppressesTrivialPhases) {
  obs::PhaseProfiler& prof = obs::PhaseProfiler::global();
  const double old_multiple = prof.stall_multiple();
  const double old_min = prof.stall_min_ms();
  prof.set_stall_multiple(2.0);
  prof.set_stall_min_ms(50.0);
  // 0.01ms median, 0.1ms straggler: 10x over the multiple but far under
  // the floor — trivial phases must not flag noise.
  const char* phase = "prof.floor.test";
  prof.attempt_done(phase, 0, 0.01, 0.0);
  prof.attempt_done(phase, 1, 0.01, 0.0);
  prof.attempt_done(phase, 2, 0.1, 0.0);
  EXPECT_EQ(prof.phase_done(phase), 0u);
  prof.set_stall_multiple(old_multiple);
  prof.set_stall_min_ms(old_min);
}

TEST(WatchdogTest, PoolWatchdogFlagsLongRunningTask) {
  // Configure before construction: the watchdog thread is spawned (or
  // not) at pool construction time. Generous margins — 10ms poll, 50ms
  // threshold, 300ms task — keep this stable under sanitizers.
  const unsigned old_poll = runtime::pool_watchdog_poll_ms();
  const double old_threshold = runtime::pool_watchdog_threshold_ms();
  runtime::set_pool_watchdog(10, 50.0);

  obs::Counter& stall = obs::MetricsRegistry::global().counter(
      "runtime.pool.stall", "watchdog-flagged straggler tasks");
  const std::uint64_t before = stall.value();
  {
    runtime::ThreadPool pool(2);
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    });
    pool.wait_idle();
  }
  EXPECT_GE(stall.value(), before + 1);

  runtime::set_pool_watchdog(old_poll, old_threshold);
}

TEST(WatchdogTest, DisabledWatchdogFlagsNothing) {
  runtime::set_pool_watchdog(0, 50.0);
  obs::Counter& stall = obs::MetricsRegistry::global().counter(
      "runtime.pool.stall", "watchdog-flagged straggler tasks");
  const std::uint64_t before = stall.value();
  {
    runtime::ThreadPool pool(2);
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    });
    pool.wait_idle();
  }
  EXPECT_EQ(stall.value(), before);
}

}  // namespace
}  // namespace satnet
