// Unit tests for satlint, the determinism & concurrency linter.
//
// Each fixture file under tests/satlint_fixtures/ seeds known violations
// (or known-clean look-alikes); the tests lint them under *virtual*
// paths so every classification branch (io/, runtime/, mlab/, ...) is
// exercised without touching the real tree. The corpus itself is
// whitelisted from tree scans — which is also the whitelist test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph.hpp"
#include "satlint.hpp"

namespace {

using satlint::Diagnostic;
using satlint::FileReport;
using satlint::LintOptions;
using satlint::TreeReport;

/// Set by the custom main() on --update-golden: golden-pinning tests
/// rewrite their expectation files instead of comparing.
bool g_update_golden = false;

std::string fixture(const std::string& name) {
  const std::string path = std::string(SATLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Multi-file fixture projects live under tests/satlint_fixtures/<name>/
/// with their own src/ trees, so lint_tree sees real-looking module
/// paths ("src/io/report.cpp") while the corpus stays whitelisted from
/// repo-wide scans.
std::string project_root(const std::string& name) {
  return std::string(SATLINT_FIXTURE_DIR) + "/" + name;
}

TreeReport lint_project(const std::string& name, const LintOptions& options = {}) {
  return satlint::lint_tree(project_root(name), {"src"}, options);
}

std::size_t tree_violations(const TreeReport& t, std::string_view rule) {
  std::size_t n = 0;
  for (const FileReport& f : t.files) {
    for (const Diagnostic& d : f.violations) n += d.rule == rule ? 1 : 0;
  }
  return n;
}

std::size_t tree_suppressed(const TreeReport& t, std::string_view rule) {
  std::size_t n = 0;
  for (const FileReport& f : t.files) {
    for (const Diagnostic& d : f.suppressed) n += d.rule == rule ? 1 : 0;
  }
  return n;
}

std::vector<const Diagnostic*> tree_diags(const TreeReport& t, std::string_view rule) {
  std::vector<const Diagnostic*> out;
  for (const FileReport& f : t.files) {
    for (const Diagnostic& d : f.violations) {
      if (d.rule == rule) out.push_back(&d);
    }
  }
  return out;
}

/// Builds a whole-program model from in-memory (path, source) pairs.
satlint::graph::Project make_project(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  std::vector<satlint::lex::Sanitized> sanitized;
  sanitized.reserve(sources.size());
  for (const auto& [path, raw] : sources) {
    sanitized.push_back(satlint::lex::sanitize(raw));
  }
  std::vector<satlint::graph::FileInput> inputs;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    inputs.push_back({sources[i].first, sources[i].second, &sanitized[i]});
  }
  return satlint::graph::build(std::move(inputs));
}

int fn_named(const satlint::graph::Project& p, std::string_view name) {
  for (std::size_t i = 0; i < p.fns.size(); ++i) {
    if (p.def(static_cast<int>(i)).name == name) return static_cast<int>(i);
  }
  return -1;
}

bool has_edge(const satlint::graph::Project& p, int from, int to) {
  if (from < 0 || to < 0) return false;
  const auto& es = p.edges[static_cast<std::size_t>(from)];
  return std::find(es.begin(), es.end(), to) != es.end();
}

std::vector<std::string> rules_hit(const FileReport& report) {
  std::vector<std::string> out;
  out.reserve(report.violations.size());
  for (const Diagnostic& d : report.violations) out.push_back(d.rule);
  return out;
}

std::size_t count_rule(const std::vector<Diagnostic>& diags, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

// ------------------------------------------------------------ rule D1

TEST(SatlintD1, FlagsEveryNondeterminismSource) {
  const FileReport r =
      satlint::lint_source("src/sim/d1_nondet.cpp", fixture("d1_nondet.cpp"));
  // srand + time-seed share a line; rand, random_device, clock read and
  // the build stamp fire once each.
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 6u);
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(SatlintD1, AppliesToBenchAndExamplesToo) {
  const FileReport r =
      satlint::lint_source("bench/d1_nondet.cpp", fixture("d1_nondet.cpp"));
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 6u);
}

TEST(SatlintD1, ClockReadsAutoAllowedInsideTelemetryBoundary) {
  // src/obs and src/runtime own the monotonic clock — the raw read in
  // the fixture is recorded as a suppression, not a violation; the
  // annotated epoch capture is suppressed via its explicit allow.
  for (const char* vpath :
       {"src/obs/recorder.cpp", "src/runtime/thread_pool.cpp"}) {
    const FileReport r =
        satlint::lint_source(vpath, fixture("d1_clock_boundary.cpp"));
    EXPECT_EQ(count_rule(r.violations, "nondet-source"), 0u) << vpath;
    EXPECT_EQ(count_rule(r.suppressed, "nondet-source"), 2u) << vpath;
  }
}

TEST(SatlintD1, RawClockReadsOutsideTheBoundaryStillFire) {
  const FileReport r = satlint::lint_source("src/mlab/d1_clock_boundary.cpp",
                                            fixture("d1_clock_boundary.cpp"));
  // The raw wall_now_us read fires; the annotated epoch capture (the
  // recorder timestamp pattern) stays a suppression.
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 1u);
  EXPECT_EQ(count_rule(r.suppressed, "nondet-source"), 1u);
}

// ------------------------------------------------------------ rule D2

TEST(SatlintD2, FlagsUnorderedIterationInReportPaths) {
  const FileReport r =
      satlint::lint_source("src/io/d2_unordered.cpp", fixture("d2_unordered.cpp"));
  ASSERT_EQ(count_rule(r.violations, "unordered-iter"), 2u);
  // Range-for over the map and the explicit iterator walk; the vector
  // loop in the same file stays clean.
  EXPECT_EQ(r.violations[0].rule, "unordered-iter");
  EXPECT_EQ(count_rule(r.violations, "float-accum"), 0u);
}

TEST(SatlintD2, SilentOutsideReportPaths) {
  const FileReport r =
      satlint::lint_source("src/geo/d2_unordered.cpp", fixture("d2_unordered.cpp"));
  EXPECT_EQ(count_rule(r.violations, "unordered-iter"), 0u);
}

// ------------------------------------------------------------ rule D3

TEST(SatlintD3, FlagsRawRngOnlyInShardedCode) {
  const FileReport sharded =
      satlint::lint_source("src/runtime/d3_raw_rng.cpp", fixture("d3_raw_rng.cpp"));
  // The seeded local and the seeded temporary; the fork_stable copy is
  // clean.
  EXPECT_EQ(count_rule(sharded.violations, "raw-rng"), 2u);

  const FileReport unsharded =
      satlint::lint_source("src/synth/d3_raw_rng.cpp", fixture("d3_raw_rng.cpp"));
  EXPECT_EQ(count_rule(unsharded.violations, "raw-rng"), 0u);
}

// ------------------------------------------------------------ rule D4

TEST(SatlintD4, FlagsMutableFunctionLocalStatics) {
  const FileReport r = satlint::lint_source("src/mlab/d4_shared_state.cpp",
                                            fixture("d4_shared_state.cpp"));
  // Only the mutable counter: const/constexpr/atomic locals, the
  // namespace-scope table, and the static member declaration are clean.
  ASSERT_EQ(count_rule(r.violations, "shared-state"), 1u);
  EXPECT_EQ(r.violations[0].line, 13);
}

TEST(SatlintD4, SilentOutsideWorkerCode) {
  const FileReport r = satlint::lint_source("src/synth/d4_shared_state.cpp",
                                            fixture("d4_shared_state.cpp"));
  EXPECT_EQ(count_rule(r.violations, "shared-state"), 0u);
}

// ------------------------------------------------------------ rule D5

TEST(SatlintD5, FlagsUnannotatedFloatMerges) {
  const FileReport r = satlint::lint_source("src/runtime/d5_float_accum.cpp",
                                            fixture("d5_float_accum.cpp"));
  // One unannotated accumulation; the annotated one is recorded as a
  // suppression, the for-header step and the integer merge are clean.
  EXPECT_EQ(count_rule(r.violations, "float-accum"), 1u);
  EXPECT_EQ(count_rule(r.suppressed, "float-accum"), 1u);
}

// ------------------------------------------------------------ rule D6

TEST(SatlintD6, FlagsAdhocInjectTogglesInSrcModules) {
  const FileReport r = satlint::lint_source("src/transport/d6_adhoc_inject.cpp",
                                            fixture("d6_adhoc_inject.cpp"));
  // The member declaration and the branch both fire; the string literal
  // and the CamelCase exception type are clean, and the annotated legacy
  // shim is recorded as a suppression.
  EXPECT_EQ(count_rule(r.violations, "adhoc-inject"), 2u);
  EXPECT_EQ(count_rule(r.suppressed, "adhoc-inject"), 1u);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].message.find("fault::Hook"), std::string::npos);
}

TEST(SatlintD6, SilentInFaultModuleAndOutsideSrc) {
  // fault/ implements the hook — inject_* names are its vocabulary.
  const FileReport in_fault = satlint::lint_source("src/fault/d6_adhoc_inject.cpp",
                                                   fixture("d6_adhoc_inject.cpp"));
  EXPECT_EQ(count_rule(in_fault.violations, "adhoc-inject"), 0u);
  // bench/examples/tests may name their knobs freely.
  const FileReport in_bench = satlint::lint_source("bench/d6_adhoc_inject.cpp",
                                                   fixture("d6_adhoc_inject.cpp"));
  EXPECT_EQ(count_rule(in_bench.violations, "adhoc-inject"), 0u);
}

// ------------------------------------------------------------ rule D7

TEST(SatlintD7, FlagsPersistenceHazardsInSrcIo) {
  const FileReport r = satlint::lint_source("src/io/d7_persist_nondet.cpp",
                                            fixture("d7_persist_nondet.cpp"));
  // Directory iteration, the unannotated mmap branch, and both unstamped
  // binary writes fire; the text-mode write and the binary *read* are
  // clean, and the annotated mmap is recorded as a suppression.
  EXPECT_EQ(count_rule(r.violations, "persist-nondet"), 4u);
  EXPECT_EQ(count_rule(r.suppressed, "persist-nondet"), 1u);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].message.find("filesystem-dependent"), std::string::npos);
}

TEST(SatlintD7, VersionStampExemptsBinaryWrites) {
  // Any k...Version mention stamps the file's format; the writes become
  // legitimate, while iteration order and the mmap branch still fire.
  const std::string stamped =
      "inline constexpr unsigned char kFixtureFormatVersion = 1;\n" +
      fixture("d7_persist_nondet.cpp");
  const FileReport r = satlint::lint_source("src/io/d7_persist_nondet.cpp", stamped);
  EXPECT_EQ(count_rule(r.violations, "persist-nondet"), 2u);
}

TEST(SatlintD7, SilentOutsideThePersistenceLayer) {
  for (const char* vpath :
       {"src/mlab/d7_persist_nondet.cpp", "tests/d7_persist_nondet.cpp"}) {
    const FileReport r =
        satlint::lint_source(vpath, fixture("d7_persist_nondet.cpp"));
    EXPECT_EQ(count_rule(r.violations, "persist-nondet"), 0u) << vpath;
  }
}

TEST(SatlintD7, ClockReadsArePersistenceHazardsInSrcIo) {
  // Both clock reads fire persist-nondet under src/io (a nondet-source
  // allow does not cover the persistence hazard); outside src/io the
  // rule stays silent.
  const FileReport io = satlint::lint_source("src/io/d1_clock_boundary.cpp",
                                             fixture("d1_clock_boundary.cpp"));
  EXPECT_EQ(count_rule(io.violations, "persist-nondet"), 2u);
  const FileReport mlab = satlint::lint_source(
      "src/mlab/d1_clock_boundary.cpp", fixture("d1_clock_boundary.cpp"));
  EXPECT_EQ(count_rule(mlab.violations, "persist-nondet"), 0u);
}

// ------------------------------------------- allow annotations & meta

TEST(SatlintAllow, JustifiedAllowsSuppressAndAreReported) {
  const FileReport r =
      satlint::lint_source("src/sim/allowed.cpp", fixture("allowed.cpp"));
  // Two justified allows (own-line and trailing) suppress their
  // findings; the justification text rides along in the message.
  EXPECT_EQ(count_rule(r.suppressed, "nondet-source"), 2u);
  ASSERT_FALSE(r.suppressed.empty());
  EXPECT_NE(r.suppressed[0].message.find("allowed:"), std::string::npos);
}

TEST(SatlintAllow, UnjustifiedAllowIsAViolationAndDoesNotSuppress) {
  const FileReport r =
      satlint::lint_source("src/sim/allowed.cpp", fixture("allowed.cpp"));
  EXPECT_EQ(count_rule(r.violations, "bad-allow"), 1u);
  // The rand() under the empty allow still fires.
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 1u);
}

TEST(SatlintClean, CommentsAndStringsNeverTrigger) {
  for (const char* vpath :
       {"src/io/clean.cpp", "src/runtime/clean.cpp", "src/mlab/clean.cpp"}) {
    const FileReport r = satlint::lint_source(vpath, fixture("clean.cpp"));
    EXPECT_TRUE(r.violations.empty()) << vpath << ": " << rules_hit(r).size();
    EXPECT_TRUE(r.suppressed.empty()) << vpath;
  }
}

// ------------------------------------------------------ classification

TEST(SatlintClassify, ModulesDriveRuleApplicability) {
  const satlint::FileClass io = satlint::classify("src/io/report.cpp");
  EXPECT_TRUE(io.report_path);
  EXPECT_FALSE(io.sharded);
  EXPECT_TRUE(io.persist_scope);
  EXPECT_FALSE(satlint::classify("src/mlab/campaign.cpp").persist_scope);

  const satlint::FileClass runtime = satlint::classify("src/runtime/sharded.hpp");
  EXPECT_TRUE(runtime.sharded);
  EXPECT_TRUE(runtime.worker);
  EXPECT_TRUE(runtime.merge_path);

  const satlint::FileClass campaign = satlint::classify("src/mlab/campaign.cpp");
  EXPECT_TRUE(campaign.report_path);  // campaign result path by filename
  EXPECT_TRUE(campaign.sharded);

  const satlint::FileClass geo = satlint::classify("src/geo/geodesy.cpp");
  EXPECT_FALSE(geo.report_path);
  EXPECT_FALSE(geo.sharded);
  EXPECT_FALSE(geo.worker);
  EXPECT_TRUE(geo.injection_scope);

  const satlint::FileClass fault = satlint::classify("src/fault/hook.cpp");
  EXPECT_EQ(fault.module, "fault");
  EXPECT_FALSE(fault.injection_scope);

  const satlint::FileClass bench = satlint::classify("bench/bench_fig9_speedtest.cpp");
  EXPECT_FALSE(bench.injection_scope);

  EXPECT_TRUE(satlint::classify("src/obs/recorder.cpp").clock_boundary);
  EXPECT_TRUE(runtime.clock_boundary);
  EXPECT_FALSE(io.clock_boundary);
  EXPECT_FALSE(campaign.clock_boundary);
}

// ----------------------------------------------------- whitelisted file

TEST(SatlintWhitelist, FixtureCorpusIsExemptByDefault) {
  const FileReport r = satlint::lint_source("tests/satlint_fixtures/d1_nondet.cpp",
                                            fixture("d1_nondet.cpp"));
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(SatlintWhitelist, CustomWhitelistSkipsMatchingPaths) {
  LintOptions options;
  options.whitelist = {"vendored/"};
  const FileReport skipped = satlint::lint_source(
      "src/vendored/d1_nondet.cpp", fixture("d1_nondet.cpp"), options);
  EXPECT_TRUE(skipped.violations.empty());
  const FileReport scanned =
      satlint::lint_source("src/sim/d1_nondet.cpp", fixture("d1_nondet.cpp"), options);
  EXPECT_FALSE(scanned.violations.empty());
}

// -------------------------------------------------- JSON report round-trip

TEST(SatlintJson, ReportRoundTripsThroughJson) {
  TreeReport tree;
  tree.files_scanned = 3;
  tree.files_whitelisted = 1;
  FileReport bad = satlint::lint_source("src/sim/d1_nondet.cpp", fixture("d1_nondet.cpp"));
  FileReport mixed =
      satlint::lint_source("src/runtime/d5_float_accum.cpp", fixture("d5_float_accum.cpp"));
  tree.files.push_back(bad);
  tree.files.push_back(mixed);

  const std::string json = satlint::to_json(tree);
  const auto parsed = satlint::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->files_scanned, tree.files_scanned);
  EXPECT_EQ(parsed->files_whitelisted, tree.files_whitelisted);
  EXPECT_EQ(parsed->violation_count(), tree.violation_count());
  EXPECT_EQ(parsed->suppressed_count(), tree.suppressed_count());
  ASSERT_EQ(parsed->files.size(), tree.files.size());
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    EXPECT_EQ(parsed->files[i].path, tree.files[i].path);
    EXPECT_EQ(parsed->files[i].violations, tree.files[i].violations);
    EXPECT_EQ(parsed->files[i].suppressed, tree.files[i].suppressed);
  }
}

TEST(SatlintJson, MalformedInputIsRejected) {
  EXPECT_FALSE(satlint::from_json("").has_value());
  EXPECT_FALSE(satlint::from_json("{\"violations\": [{]}").has_value());
  EXPECT_FALSE(satlint::from_json("[1,2,3]").has_value());
}

// --------------------------------------------------------- tree scans

TEST(SatlintTree, LintTreeIsDeterministicAndWhitelistsFixtures) {
  // Scan the fixture corpus as a subtree of the repo root: every file
  // under tests/satlint_fixtures/ is whitelisted by default, so the scan
  // is clean but counts the skipped files.
  const std::string repo_root = std::string(SATLINT_FIXTURE_DIR) + "/../..";
  const std::vector<std::string> subdir = {"tests/satlint_fixtures"};
  const TreeReport tree = satlint::lint_tree(repo_root, subdir);
  EXPECT_EQ(tree.violation_count(), 0u);
  EXPECT_GE(tree.files_whitelisted, 6u);
  EXPECT_EQ(tree.files_scanned, 0u);

  // With the whitelist cleared the same corpus yields findings — and two
  // scans agree exactly (satlint's own output is deterministic).
  LintOptions open;
  open.whitelist.clear();
  const TreeReport a = satlint::lint_tree(repo_root, subdir, open);
  const TreeReport b = satlint::lint_tree(repo_root, subdir, open);
  EXPECT_GT(a.violation_count(), 0u);
  EXPECT_EQ(satlint::to_json(a), satlint::to_json(b));
}

TEST(SatlintRules, EveryRuleIsDocumented) {
  const auto& rules = satlint::rules();
  ASSERT_EQ(rules.size(), 12u);
  for (const satlint::RuleInfo& r : rules) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.summary.empty());
  }
}

// ------------------------------------------------------ raw string literals

TEST(SatlintSanitizer, RawStringsNeitherMaskNorFabricate) {
  const FileReport r =
      satlint::lint_source("src/sim/raw_string.cpp", fixture("raw_string.cpp"));
  // Every violation-shaped token in the fixture lives inside a raw
  // string (plain, u8R/uR/UR/LR-prefixed, or )"-containing delimited);
  // only the rand() in genuinely_bad() is real.
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "nondet-source");
  EXPECT_EQ(r.violations[0].line, 34);
  EXPECT_TRUE(r.suppressed.empty());
}

// ------------------------------------------------------------ rule D8

TEST(SatlintD8, LayeringMatrixViolationsAndCyclesFire) {
  const TreeReport t = lint_project("proj_layering");
  const auto hits = tree_diags(t, "layering");
  ASSERT_EQ(hits.size(), 2u);
  // One matrix inversion (stats may not reach up to geo), one include
  // cycle anchored at its lexicographically smallest member. The
  // io -> stats edge in the same project is inside the matrix.
  bool saw_matrix = false;
  bool saw_cycle = false;
  for (const Diagnostic* d : hits) {
    EXPECT_EQ(d->file.find("src/io/"), std::string::npos);
    if (d->message.find("'src:stats' -> 'src:geo'") != std::string::npos) {
      EXPECT_EQ(d->file, "src/stats/acc.hpp");
      saw_matrix = true;
    }
    if (d->message.find("include cycle") != std::string::npos) {
      EXPECT_EQ(d->file, "src/net/a.hpp");
      saw_cycle = true;
    }
  }
  EXPECT_TRUE(saw_matrix);
  EXPECT_TRUE(saw_cycle);
  // weather's justified allow(layering) is a suppression, not a pass.
  EXPECT_EQ(tree_suppressed(t, "layering"), 1u);
}

TEST(SatlintD8, CrossTuRulesCanBeDisabled) {
  LintOptions options;
  options.cross_tu = false;
  const TreeReport t = lint_project("proj_layering", options);
  EXPECT_EQ(tree_violations(t, "layering"), 0u);
}

// ------------------------------------------------------------ rule D9

TEST(SatlintD9, TaintFlowsAcrossFilesIntoReportPaths) {
  const TreeReport t = lint_project("proj_taint");
  const auto hits = tree_diags(t, "nondet-taint");
  // Only io's call into the unsanctioned clock root fires: the same
  // call from src/fault (not a report path) stays clean, and the
  // sanctioned stamp_ms root suppresses its whole downstream flow.
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->file, "src/io/report.cpp");
  EXPECT_EQ(hits[0]->line, 8);
  EXPECT_NE(hits[0]->message.find("wall_ms"), std::string::npos);
  EXPECT_NE(hits[0]->message.find("src/obs/clock.cpp"), std::string::npos);
  EXPECT_EQ(tree_suppressed(t, "nondet-taint"), 1u);
}

TEST(SatlintD9, ClockBoundaryGivesNoTaintExemption) {
  // The per-file D1 auto-allow inside src/obs is exactly the claim D9
  // audits: the roots live in obs and are quiet there, yet still taint
  // report-path callers in other files (the test above) — meanwhile the
  // obs file itself only records D1 suppressions, no violations.
  const TreeReport t = lint_project("proj_taint");
  for (const FileReport& f : t.files) {
    if (f.path == "src/obs/clock.cpp") {
      EXPECT_TRUE(f.violations.empty());
    }
  }
  EXPECT_GE(tree_suppressed(t, "nondet-source"), 2u);
}

// ------------------------------------------------------------ rule D10

TEST(SatlintD10, WorkerReachabilityCrossesModuleBoundaries) {
  const TreeReport t = lint_project("proj_worker");
  const auto hits = tree_diags(t, "worker-reach");
  // src/synth is not a worker-classified directory, so per-file D4/D3
  // are silent there — only reachability from the submit() lambda ties
  // the rules to the helpers. The static and the raw Rng fire; the
  // allow-carrying helper is a suppression; the helper only called on
  // the coordinator thread stays clean.
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->file, "src/synth/helper.cpp");
  EXPECT_EQ(hits[0]->line, 8);
  EXPECT_NE(hits[0]->message.find("static"), std::string::npos);
  EXPECT_EQ(hits[1]->file, "src/synth/helper.cpp");
  EXPECT_EQ(hits[1]->line, 13);
  EXPECT_NE(hits[1]->message.find("fork_stable"), std::string::npos);
  EXPECT_EQ(tree_suppressed(t, "worker-reach"), 1u);
  for (const Diagnostic* d : hits) EXPECT_NE(d->line, 24);
}

// ----------------------------------------------------- stale-allow meta-rule

TEST(SatlintStaleAllow, DeadAllowsFireInTreeScansOnly) {
  const TreeReport t = lint_project("proj_taint");
  const auto hits = tree_diags(t, "stale-allow");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->file, "src/synth/tuning.cpp");
  EXPECT_NE(hits[0]->message.find("unordered-iter"), std::string::npos);

  // The same file through a per-file scan: no stale-allow — a single
  // file cannot know whether a cross-TU rule would have paid for it.
  const FileReport r = satlint::lint_source(
      "src/synth/tuning.cpp", fixture("proj_taint/src/synth/tuning.cpp"));
  EXPECT_EQ(count_rule(r.violations, "stale-allow"), 0u);
}

TEST(SatlintStaleAllow, PayingAllowsAreNotFlagged) {
  // proj_layering's weather allow and proj_worker's helper_cached allow
  // both suppress live findings — neither may be called stale.
  EXPECT_EQ(tree_violations(lint_project("proj_layering"), "stale-allow"), 0u);
  EXPECT_EQ(tree_violations(lint_project("proj_worker"), "stale-allow"), 0u);
}

// ------------------------------------------------------ focus (--changed)

TEST(SatlintTree, FocusReportsOnlyFocusedFilesButKeepsWholeGraph) {
  LintOptions options;
  options.focus = {"src/io/report.cpp"};
  const TreeReport t = lint_project("proj_taint", options);
  // The cross-TU finding in the focused file still fires — the graph
  // covers the whole tree even though only one file is reported on.
  EXPECT_EQ(tree_violations(t, "nondet-taint"), 1u);
  // The stale allow lives in an unfocused file: not reported.
  EXPECT_EQ(tree_violations(t, "stale-allow"), 0u);
  for (const FileReport& f : t.files) EXPECT_EQ(f.path, "src/io/report.cpp");
}

// ------------------------------------------------------ call-graph extractor

TEST(SatlintGraph, ExtractorHandlesGnarlyShapes) {
  const std::string gnarly = R"cpp(
namespace satnet::synth {

void leaf_target();
int taken(int);

void coordinator(Pool& pool, Widget& w) {
  for (int i = 0; i < 3; ++i) {
    pool.submit([&] {
      leaf_target();
    });
  }
  auto bound = [&](int x) {
    return taken(x);
  };
  bound(2);
  w.method();
  double local_decl();
  std::vector<int> v;
  v.push_back(1);
}

int taken(int x) { return x + 1; }

}  // namespace satnet::synth

void satnet::synth::leaf_target() {
  static int hits = 0;
  ++hits;
}
)cpp";
  const satlint::graph::Project p =
      make_project({{"src/synth/gnarly.cpp", gnarly}});

  // Definitions: coordinator, its worker-entry lambda, the named bound
  // lambda, taken, and the out-of-class-qualified leaf_target.
  const int coordinator = fn_named(p, "coordinator");
  const int bound = fn_named(p, "bound");
  const int leaf = fn_named(p, "leaf_target");
  const int taken = fn_named(p, "taken");
  ASSERT_GE(coordinator, 0);
  ASSERT_GE(bound, 0);
  ASSERT_GE(leaf, 0);
  ASSERT_GE(taken, 0);
  EXPECT_TRUE(p.def(bound).is_lambda);
  EXPECT_EQ(p.def(bound).parent, p.fns[static_cast<std::size_t>(coordinator)].def);
  EXPECT_EQ(p.def(leaf).qualified, "satnet::synth::leaf_target");

  int worker_lambda = -1;
  for (std::size_t i = 0; i < p.fns.size(); ++i) {
    if (p.def(static_cast<int>(i)).worker_entry) worker_lambda = static_cast<int>(i);
  }
  ASSERT_GE(worker_lambda, 0) << "submit() lambda not recognized as worker entry";
  EXPECT_TRUE(p.def(worker_lambda).is_lambda);

  // The for-header's semicolons must not break brace classification:
  // the lambda body's call links from the lambda, not a phantom fn.
  EXPECT_TRUE(has_edge(p, worker_lambda, leaf));
  EXPECT_TRUE(has_edge(p, coordinator, bound));
  EXPECT_TRUE(has_edge(p, bound, taken));

  // Declarations are not calls; stoplisted STL names never link.
  const auto& calls = p.files[0].symbols.calls;
  std::size_t leaf_calls = 0;
  for (const satlint::lex::CallSite& c : calls) {
    EXPECT_NE(c.name, "local_decl");
    leaf_calls += c.name == "leaf_target" ? 1 : 0;
  }
  EXPECT_EQ(leaf_calls, 1u);
  for (const satlint::graph::Project::ResolvedCall& rc : p.calls) {
    EXPECT_NE(p.def(rc.callee).name, "push_back");
  }

  // Worker reachability: lambda -> leaf_target, but never the
  // coordinator-only bound/taken chain.
  const std::vector<int> reach = satlint::graph::worker_reachable(p);
  EXPECT_NE(std::find(reach.begin(), reach.end(), leaf), reach.end());
  EXPECT_EQ(std::find(reach.begin(), reach.end(), taken), reach.end());
}

TEST(SatlintGraph, QualifiedCallsFilterByQualifierTail) {
  const satlint::graph::Project p = make_project({
      {"src/obs/a.cpp",
       "namespace satnet::obs {\nvoid probe();\nvoid probe() { }\n}\n"},
      {"src/synth/b.cpp",
       "namespace satnet::synth {\nvoid probe() { }\n}\n"},
      {"src/mlab/c.cpp",
       "namespace satnet::mlab {\nvoid drive() {\n  obs::probe();\n}\n}\n"},
  });
  const int drive = fn_named(p, "drive");
  ASSERT_GE(drive, 0);
  // Two defs named probe; the obs:: qualifier must select only the one
  // whose qualified name ends in obs::probe.
  const auto& es = p.edges[static_cast<std::size_t>(drive)];
  ASSERT_EQ(es.size(), 1u);
  EXPECT_EQ(p.def(es[0]).qualified, "satnet::obs::probe");
}

TEST(SatlintGraph, DotExportMarksOffMatrixEdges) {
  const satlint::graph::Project inside = make_project({
      {"src/io/report.cpp", "#include \"stats/acc.hpp\"\n"},
      {"src/stats/acc.hpp", "namespace satnet::stats { }\n"},
  });
  const std::string dot = satlint::graph::to_dot(inside);
  EXPECT_NE(dot.find("digraph satnet_layering"), std::string::npos);
  EXPECT_NE(dot.find("src_io -> src_stats;"), std::string::npos);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);

  const satlint::graph::Project outside = make_project({
      {"src/stats/acc.hpp", "#include \"geo/geom.hpp\"\n"},
      {"src/geo/geom.hpp", "namespace satnet::geo { }\n"},
  });
  const std::string dashed = satlint::graph::to_dot(outside);
  EXPECT_NE(dashed.find("src_stats -> src_geo"), std::string::npos);
  EXPECT_NE(dashed.find("style=dashed"), std::string::npos);
}

// ---------------------------------------------------------- graph cache

TEST(SatlintGraphCache, SerializeRoundTripsAndRejectsMismatch) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/obs/clock.cpp", fixture("proj_taint/src/obs/clock.cpp")},
      {"src/io/report.cpp", fixture("proj_taint/src/io/report.cpp")},
  };
  const satlint::graph::Project p = make_project(sources);
  std::vector<std::pair<std::string, std::string_view>> pairs;
  for (const auto& [path, raw] : sources) pairs.emplace_back(path, raw);
  const std::uint64_t hash = satlint::graph::content_hash(pairs);

  const std::string blob = satlint::graph::serialize(p, hash);
  const auto back = satlint::graph::deserialize(blob, hash);
  ASSERT_TRUE(back.has_value());
  // Re-serializing the deserialized model reproduces the blob exactly,
  // and the analyses agree — the cache can never change an answer.
  EXPECT_EQ(satlint::graph::serialize(*back, hash), blob);
  EXPECT_EQ(satlint::graph::to_dot(*back), satlint::graph::to_dot(p));

  EXPECT_FALSE(satlint::graph::deserialize(blob, hash ^ 1).has_value());
  EXPECT_FALSE(satlint::graph::deserialize("satlint-graph-cache 999\n", hash)
                   .has_value());
  EXPECT_FALSE(satlint::graph::deserialize("", hash).has_value());
}

TEST(SatlintGraphCache, TreeScanWritesAndReusesCache) {
  const std::string cache = ::testing::TempDir() + "satlint_graph_test.cache";
  std::remove(cache.c_str());
  LintOptions options;
  options.graph_cache = cache;
  const TreeReport first = lint_project("proj_taint", options);
  std::ifstream probe(cache, std::ios::binary);
  EXPECT_TRUE(probe.good()) << "tree scan did not write the graph cache";
  const TreeReport second = lint_project("proj_taint", options);
  EXPECT_EQ(satlint::to_json(first), satlint::to_json(second));
  std::remove(cache.c_str());
}

// ------------------------------------------------------ extraction golden

TEST(SatlintGolden, ThreadPoolExtractionIsPinned) {
  const std::string repo = std::string(SATLINT_FIXTURE_DIR) + "/../..";
  const std::string rel = "src/runtime/thread_pool.cpp";
  std::ifstream in(repo + "/" + rel, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string raw = ss.str();
  const satlint::lex::Sanitized s = satlint::lex::sanitize(raw);
  const satlint::graph::Project p = satlint::graph::build({{rel, raw, &s}});
  const std::string json = satlint::graph::extraction_json(p, rel);

  const std::string golden_path = repo + "/tests/golden/callgraph_thread_pool.json";
  if (g_update_golden) {
    std::ofstream out(golden_path, std::ios::binary);
    out << json;
    GTEST_SKIP() << "golden rewritten: " << golden_path;
  }
  std::ifstream gin(golden_path, std::ios::binary);
  ASSERT_TRUE(gin.good()) << "missing golden — regenerate with "
                             "satlint_test --update-golden";
  std::ostringstream gss;
  gss << gin.rdbuf();
  EXPECT_EQ(json, gss.str())
      << "call-graph extraction drifted for " << rel
      << "; if intended, rerun with satlint_test --update-golden";
}

// ------------------------------------------------------ JSON schema v2

TEST(SatlintJson, SchemaV2CarriesSuppressionCounts) {
  const TreeReport t = lint_project("proj_taint");
  const std::string json = satlint::to_json(t);
  EXPECT_NE(json.find("\"satlint_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"suppression_count\""), std::string::npos);
  const auto parsed = satlint::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(satlint::suppressions_by_rule(*parsed), satlint::suppressions_by_rule(t));
}

// ------------------------------------------------------ suppression baseline

TEST(SatlintBaseline, FormatParsesBackToTheSameCounts) {
  const TreeReport t = lint_project("proj_taint");
  const std::string text = satlint::format_baseline(t);
  const auto parsed = satlint::parse_baseline(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, satlint::suppressions_by_rule(t));
  EXPECT_TRUE(satlint::check_baseline(t, *parsed).empty());
}

TEST(SatlintBaseline, DriftFailsInBothDirections) {
  const TreeReport t = lint_project("proj_taint");
  auto up = satlint::suppressions_by_rule(t);
  up["nondet-taint"] += 1;
  const auto over = satlint::check_baseline(t, up);
  ASSERT_EQ(over.size(), 1u);  // fewer suppressions than baselined: ratchet down
  EXPECT_NE(over[0].find("nondet-taint"), std::string::npos);

  auto down = satlint::suppressions_by_rule(t);
  down["nondet-source"] -= 1;
  const auto under = satlint::check_baseline(t, down);
  ASSERT_EQ(under.size(), 1u);  // more suppressions than baselined: new allow
  EXPECT_NE(under[0].find("nondet-source"), std::string::npos);
}

TEST(SatlintBaseline, RejectsUnknownRulesAndGarbage) {
  EXPECT_FALSE(satlint::parse_baseline("made-up-rule 3\n").has_value());
  EXPECT_FALSE(satlint::parse_baseline("nondet-source many\n").has_value());
  const auto ok = satlint::parse_baseline("# comment\n\nnondet-source 2\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->at("nondet-source"), 2u);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") {
      g_update_golden = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  ::testing::InitGoogleTest(&n, args.data());
  return RUN_ALL_TESTS();
}
