// Unit tests for satlint, the determinism & concurrency linter.
//
// Each fixture file under tests/satlint_fixtures/ seeds known violations
// (or known-clean look-alikes); the tests lint them under *virtual*
// paths so every classification branch (io/, runtime/, mlab/, ...) is
// exercised without touching the real tree. The corpus itself is
// whitelisted from tree scans — which is also the whitelist test.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "satlint.hpp"

namespace {

using satlint::Diagnostic;
using satlint::FileReport;
using satlint::LintOptions;
using satlint::TreeReport;

std::string fixture(const std::string& name) {
  const std::string path = std::string(SATLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> rules_hit(const FileReport& report) {
  std::vector<std::string> out;
  out.reserve(report.violations.size());
  for (const Diagnostic& d : report.violations) out.push_back(d.rule);
  return out;
}

std::size_t count_rule(const std::vector<Diagnostic>& diags, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

// ------------------------------------------------------------ rule D1

TEST(SatlintD1, FlagsEveryNondeterminismSource) {
  const FileReport r =
      satlint::lint_source("src/sim/d1_nondet.cpp", fixture("d1_nondet.cpp"));
  // srand + time-seed share a line; rand, random_device, clock read and
  // the build stamp fire once each.
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 6u);
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(SatlintD1, AppliesToBenchAndExamplesToo) {
  const FileReport r =
      satlint::lint_source("bench/d1_nondet.cpp", fixture("d1_nondet.cpp"));
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 6u);
}

TEST(SatlintD1, ClockReadsAutoAllowedInsideTelemetryBoundary) {
  // src/obs and src/runtime own the monotonic clock — the raw read in
  // the fixture is recorded as a suppression, not a violation; the
  // annotated epoch capture is suppressed via its explicit allow.
  for (const char* vpath :
       {"src/obs/recorder.cpp", "src/runtime/thread_pool.cpp"}) {
    const FileReport r =
        satlint::lint_source(vpath, fixture("d1_clock_boundary.cpp"));
    EXPECT_EQ(count_rule(r.violations, "nondet-source"), 0u) << vpath;
    EXPECT_EQ(count_rule(r.suppressed, "nondet-source"), 2u) << vpath;
  }
}

TEST(SatlintD1, RawClockReadsOutsideTheBoundaryStillFire) {
  const FileReport r = satlint::lint_source("src/mlab/d1_clock_boundary.cpp",
                                            fixture("d1_clock_boundary.cpp"));
  // The raw wall_now_us read fires; the annotated epoch capture (the
  // recorder timestamp pattern) stays a suppression.
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 1u);
  EXPECT_EQ(count_rule(r.suppressed, "nondet-source"), 1u);
}

// ------------------------------------------------------------ rule D2

TEST(SatlintD2, FlagsUnorderedIterationInReportPaths) {
  const FileReport r =
      satlint::lint_source("src/io/d2_unordered.cpp", fixture("d2_unordered.cpp"));
  ASSERT_EQ(count_rule(r.violations, "unordered-iter"), 2u);
  // Range-for over the map and the explicit iterator walk; the vector
  // loop in the same file stays clean.
  EXPECT_EQ(r.violations[0].rule, "unordered-iter");
  EXPECT_EQ(count_rule(r.violations, "float-accum"), 0u);
}

TEST(SatlintD2, SilentOutsideReportPaths) {
  const FileReport r =
      satlint::lint_source("src/geo/d2_unordered.cpp", fixture("d2_unordered.cpp"));
  EXPECT_EQ(count_rule(r.violations, "unordered-iter"), 0u);
}

// ------------------------------------------------------------ rule D3

TEST(SatlintD3, FlagsRawRngOnlyInShardedCode) {
  const FileReport sharded =
      satlint::lint_source("src/runtime/d3_raw_rng.cpp", fixture("d3_raw_rng.cpp"));
  // The seeded local and the seeded temporary; the fork_stable copy is
  // clean.
  EXPECT_EQ(count_rule(sharded.violations, "raw-rng"), 2u);

  const FileReport unsharded =
      satlint::lint_source("src/synth/d3_raw_rng.cpp", fixture("d3_raw_rng.cpp"));
  EXPECT_EQ(count_rule(unsharded.violations, "raw-rng"), 0u);
}

// ------------------------------------------------------------ rule D4

TEST(SatlintD4, FlagsMutableFunctionLocalStatics) {
  const FileReport r = satlint::lint_source("src/mlab/d4_shared_state.cpp",
                                            fixture("d4_shared_state.cpp"));
  // Only the mutable counter: const/constexpr/atomic locals, the
  // namespace-scope table, and the static member declaration are clean.
  ASSERT_EQ(count_rule(r.violations, "shared-state"), 1u);
  EXPECT_EQ(r.violations[0].line, 13);
}

TEST(SatlintD4, SilentOutsideWorkerCode) {
  const FileReport r = satlint::lint_source("src/synth/d4_shared_state.cpp",
                                            fixture("d4_shared_state.cpp"));
  EXPECT_EQ(count_rule(r.violations, "shared-state"), 0u);
}

// ------------------------------------------------------------ rule D5

TEST(SatlintD5, FlagsUnannotatedFloatMerges) {
  const FileReport r = satlint::lint_source("src/runtime/d5_float_accum.cpp",
                                            fixture("d5_float_accum.cpp"));
  // One unannotated accumulation; the annotated one is recorded as a
  // suppression, the for-header step and the integer merge are clean.
  EXPECT_EQ(count_rule(r.violations, "float-accum"), 1u);
  EXPECT_EQ(count_rule(r.suppressed, "float-accum"), 1u);
}

// ------------------------------------------------------------ rule D6

TEST(SatlintD6, FlagsAdhocInjectTogglesInSrcModules) {
  const FileReport r = satlint::lint_source("src/transport/d6_adhoc_inject.cpp",
                                            fixture("d6_adhoc_inject.cpp"));
  // The member declaration and the branch both fire; the string literal
  // and the CamelCase exception type are clean, and the annotated legacy
  // shim is recorded as a suppression.
  EXPECT_EQ(count_rule(r.violations, "adhoc-inject"), 2u);
  EXPECT_EQ(count_rule(r.suppressed, "adhoc-inject"), 1u);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].message.find("fault::Hook"), std::string::npos);
}

TEST(SatlintD6, SilentInFaultModuleAndOutsideSrc) {
  // fault/ implements the hook — inject_* names are its vocabulary.
  const FileReport in_fault = satlint::lint_source("src/fault/d6_adhoc_inject.cpp",
                                                   fixture("d6_adhoc_inject.cpp"));
  EXPECT_EQ(count_rule(in_fault.violations, "adhoc-inject"), 0u);
  // bench/examples/tests may name their knobs freely.
  const FileReport in_bench = satlint::lint_source("bench/d6_adhoc_inject.cpp",
                                                   fixture("d6_adhoc_inject.cpp"));
  EXPECT_EQ(count_rule(in_bench.violations, "adhoc-inject"), 0u);
}

// ------------------------------------------------------------ rule D7

TEST(SatlintD7, FlagsPersistenceHazardsInSrcIo) {
  const FileReport r = satlint::lint_source("src/io/d7_persist_nondet.cpp",
                                            fixture("d7_persist_nondet.cpp"));
  // Directory iteration, the unannotated mmap branch, and both unstamped
  // binary writes fire; the text-mode write and the binary *read* are
  // clean, and the annotated mmap is recorded as a suppression.
  EXPECT_EQ(count_rule(r.violations, "persist-nondet"), 4u);
  EXPECT_EQ(count_rule(r.suppressed, "persist-nondet"), 1u);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].message.find("filesystem-dependent"), std::string::npos);
}

TEST(SatlintD7, VersionStampExemptsBinaryWrites) {
  // Any k...Version mention stamps the file's format; the writes become
  // legitimate, while iteration order and the mmap branch still fire.
  const std::string stamped =
      "inline constexpr unsigned char kFixtureFormatVersion = 1;\n" +
      fixture("d7_persist_nondet.cpp");
  const FileReport r = satlint::lint_source("src/io/d7_persist_nondet.cpp", stamped);
  EXPECT_EQ(count_rule(r.violations, "persist-nondet"), 2u);
}

TEST(SatlintD7, SilentOutsideThePersistenceLayer) {
  for (const char* vpath :
       {"src/mlab/d7_persist_nondet.cpp", "tests/d7_persist_nondet.cpp"}) {
    const FileReport r =
        satlint::lint_source(vpath, fixture("d7_persist_nondet.cpp"));
    EXPECT_EQ(count_rule(r.violations, "persist-nondet"), 0u) << vpath;
  }
}

TEST(SatlintD7, ClockReadsArePersistenceHazardsInSrcIo) {
  // Both clock reads fire persist-nondet under src/io (a nondet-source
  // allow does not cover the persistence hazard); outside src/io the
  // rule stays silent.
  const FileReport io = satlint::lint_source("src/io/d1_clock_boundary.cpp",
                                             fixture("d1_clock_boundary.cpp"));
  EXPECT_EQ(count_rule(io.violations, "persist-nondet"), 2u);
  const FileReport mlab = satlint::lint_source(
      "src/mlab/d1_clock_boundary.cpp", fixture("d1_clock_boundary.cpp"));
  EXPECT_EQ(count_rule(mlab.violations, "persist-nondet"), 0u);
}

// ------------------------------------------- allow annotations & meta

TEST(SatlintAllow, JustifiedAllowsSuppressAndAreReported) {
  const FileReport r =
      satlint::lint_source("src/sim/allowed.cpp", fixture("allowed.cpp"));
  // Two justified allows (own-line and trailing) suppress their
  // findings; the justification text rides along in the message.
  EXPECT_EQ(count_rule(r.suppressed, "nondet-source"), 2u);
  ASSERT_FALSE(r.suppressed.empty());
  EXPECT_NE(r.suppressed[0].message.find("allowed:"), std::string::npos);
}

TEST(SatlintAllow, UnjustifiedAllowIsAViolationAndDoesNotSuppress) {
  const FileReport r =
      satlint::lint_source("src/sim/allowed.cpp", fixture("allowed.cpp"));
  EXPECT_EQ(count_rule(r.violations, "bad-allow"), 1u);
  // The rand() under the empty allow still fires.
  EXPECT_EQ(count_rule(r.violations, "nondet-source"), 1u);
}

TEST(SatlintClean, CommentsAndStringsNeverTrigger) {
  for (const char* vpath :
       {"src/io/clean.cpp", "src/runtime/clean.cpp", "src/mlab/clean.cpp"}) {
    const FileReport r = satlint::lint_source(vpath, fixture("clean.cpp"));
    EXPECT_TRUE(r.violations.empty()) << vpath << ": " << rules_hit(r).size();
    EXPECT_TRUE(r.suppressed.empty()) << vpath;
  }
}

// ------------------------------------------------------ classification

TEST(SatlintClassify, ModulesDriveRuleApplicability) {
  const satlint::FileClass io = satlint::classify("src/io/report.cpp");
  EXPECT_TRUE(io.report_path);
  EXPECT_FALSE(io.sharded);
  EXPECT_TRUE(io.persist_scope);
  EXPECT_FALSE(satlint::classify("src/mlab/campaign.cpp").persist_scope);

  const satlint::FileClass runtime = satlint::classify("src/runtime/sharded.hpp");
  EXPECT_TRUE(runtime.sharded);
  EXPECT_TRUE(runtime.worker);
  EXPECT_TRUE(runtime.merge_path);

  const satlint::FileClass campaign = satlint::classify("src/mlab/campaign.cpp");
  EXPECT_TRUE(campaign.report_path);  // campaign result path by filename
  EXPECT_TRUE(campaign.sharded);

  const satlint::FileClass geo = satlint::classify("src/geo/geodesy.cpp");
  EXPECT_FALSE(geo.report_path);
  EXPECT_FALSE(geo.sharded);
  EXPECT_FALSE(geo.worker);
  EXPECT_TRUE(geo.injection_scope);

  const satlint::FileClass fault = satlint::classify("src/fault/hook.cpp");
  EXPECT_EQ(fault.module, "fault");
  EXPECT_FALSE(fault.injection_scope);

  const satlint::FileClass bench = satlint::classify("bench/bench_fig9_speedtest.cpp");
  EXPECT_FALSE(bench.injection_scope);

  EXPECT_TRUE(satlint::classify("src/obs/recorder.cpp").clock_boundary);
  EXPECT_TRUE(runtime.clock_boundary);
  EXPECT_FALSE(io.clock_boundary);
  EXPECT_FALSE(campaign.clock_boundary);
}

// ----------------------------------------------------- whitelisted file

TEST(SatlintWhitelist, FixtureCorpusIsExemptByDefault) {
  const FileReport r = satlint::lint_source("tests/satlint_fixtures/d1_nondet.cpp",
                                            fixture("d1_nondet.cpp"));
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(SatlintWhitelist, CustomWhitelistSkipsMatchingPaths) {
  LintOptions options;
  options.whitelist = {"vendored/"};
  const FileReport skipped = satlint::lint_source(
      "src/vendored/d1_nondet.cpp", fixture("d1_nondet.cpp"), options);
  EXPECT_TRUE(skipped.violations.empty());
  const FileReport scanned =
      satlint::lint_source("src/sim/d1_nondet.cpp", fixture("d1_nondet.cpp"), options);
  EXPECT_FALSE(scanned.violations.empty());
}

// -------------------------------------------------- JSON report round-trip

TEST(SatlintJson, ReportRoundTripsThroughJson) {
  TreeReport tree;
  tree.files_scanned = 3;
  tree.files_whitelisted = 1;
  FileReport bad = satlint::lint_source("src/sim/d1_nondet.cpp", fixture("d1_nondet.cpp"));
  FileReport mixed =
      satlint::lint_source("src/runtime/d5_float_accum.cpp", fixture("d5_float_accum.cpp"));
  tree.files.push_back(bad);
  tree.files.push_back(mixed);

  const std::string json = satlint::to_json(tree);
  const auto parsed = satlint::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->files_scanned, tree.files_scanned);
  EXPECT_EQ(parsed->files_whitelisted, tree.files_whitelisted);
  EXPECT_EQ(parsed->violation_count(), tree.violation_count());
  EXPECT_EQ(parsed->suppressed_count(), tree.suppressed_count());
  ASSERT_EQ(parsed->files.size(), tree.files.size());
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    EXPECT_EQ(parsed->files[i].path, tree.files[i].path);
    EXPECT_EQ(parsed->files[i].violations, tree.files[i].violations);
    EXPECT_EQ(parsed->files[i].suppressed, tree.files[i].suppressed);
  }
}

TEST(SatlintJson, MalformedInputIsRejected) {
  EXPECT_FALSE(satlint::from_json("").has_value());
  EXPECT_FALSE(satlint::from_json("{\"violations\": [{]}").has_value());
  EXPECT_FALSE(satlint::from_json("[1,2,3]").has_value());
}

// --------------------------------------------------------- tree scans

TEST(SatlintTree, LintTreeIsDeterministicAndWhitelistsFixtures) {
  // Scan the fixture corpus as a subtree of the repo root: every file
  // under tests/satlint_fixtures/ is whitelisted by default, so the scan
  // is clean but counts the skipped files.
  const std::string repo_root = std::string(SATLINT_FIXTURE_DIR) + "/../..";
  const std::vector<std::string> subdir = {"tests/satlint_fixtures"};
  const TreeReport tree = satlint::lint_tree(repo_root, subdir);
  EXPECT_EQ(tree.violation_count(), 0u);
  EXPECT_GE(tree.files_whitelisted, 6u);
  EXPECT_EQ(tree.files_scanned, 0u);

  // With the whitelist cleared the same corpus yields findings — and two
  // scans agree exactly (satlint's own output is deterministic).
  LintOptions open;
  open.whitelist.clear();
  const TreeReport a = satlint::lint_tree(repo_root, subdir, open);
  const TreeReport b = satlint::lint_tree(repo_root, subdir, open);
  EXPECT_GT(a.violation_count(), 0u);
  EXPECT_EQ(satlint::to_json(a), satlint::to_json(b));
}

TEST(SatlintRules, EveryRuleIsDocumented) {
  const auto& rules = satlint::rules();
  ASSERT_EQ(rules.size(), 8u);
  for (const satlint::RuleInfo& r : rules) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.summary.empty());
  }
}

}  // namespace
