#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/roots.hpp"
#include "geo/places.hpp"

namespace satnet::dns {
namespace {

// ----------------------------------------------------------------- roots

TEST(RootsTest, ThirteenRootsLetteredAtoM) {
  const auto roots = root_servers();
  ASSERT_EQ(roots.size(), 13u);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(roots[i].letter, static_cast<char>('A' + i));
    EXPECT_FALSE(roots[i].instance_cities.empty());
  }
}

TEST(RootsTest, SantiagoHostsSevenRoots) {
  // Paper: only 7 of 13 roots are present in Chile.
  EXPECT_EQ(roots_present_in("santiago"), 7u);
}

TEST(RootsTest, MRootAbsentFromSouthAmerica) {
  const auto& m = root_servers()[12];
  ASSERT_EQ(m.letter, 'M');
  for (const auto city : m.instance_cities) {
    const auto info = geo::find_city(city);
    ASSERT_TRUE(info.has_value());
    EXPECT_NE(geo::continent_of(info->country_code), geo::Continent::south_america)
        << city;
  }
}

TEST(RootsTest, AucklandHostsFewRoots) {
  EXPECT_LE(roots_present_in("auckland"), 2u);
  EXPECT_GE(roots_present_in("auckland"), 1u);
}

TEST(RootsTest, EuropeWellServed) {
  // Every root has an instance somewhere in Europe except the US-only
  // military roots (G, H).
  std::size_t roots_with_europe = 0;
  for (const auto& r : root_servers()) {
    for (const auto city : r.instance_cities) {
      const auto info = geo::find_city(city);
      if (info && geo::continent_of(info->country_code) == geo::Continent::europe) {
        ++roots_with_europe;
        break;
      }
    }
  }
  EXPECT_GE(roots_with_europe, 10u);
}

TEST(RootsTest, NearestInstanceFromSantiagoIsLocalForL) {
  const auto& l = root_servers()[11];
  ASSERT_EQ(l.letter, 'L');
  const auto choice = nearest_instance(l, geo::city_point("santiago"));
  EXPECT_EQ(choice.city, "santiago");
  EXPECT_LT(choice.surface_km, 1.0);
}

TEST(RootsTest, NearestInstanceFromSantiagoIsRemoteForM) {
  const auto& m = root_servers()[12];
  const auto choice = nearest_instance(m, geo::city_point("santiago"));
  EXPECT_GT(choice.surface_km, 5000.0);
}

TEST(RootsTest, NearestInstanceFromTokyoLocalWhereAvailable) {
  for (const char letter : {'F', 'I', 'J', 'M'}) {
    const auto& root = root_servers()[static_cast<std::size_t>(letter - 'A')];
    const auto choice = nearest_instance(root, geo::city_point("tokyo"));
    EXPECT_EQ(choice.city, "tokyo") << letter;
  }
}

TEST(RootsTest, InstanceCitiesAllInGazetteer) {
  for (const auto& r : root_servers()) {
    for (const auto city : r.instance_cities) {
      EXPECT_TRUE(geo::find_city(city).has_value()) << r.letter << ": " << city;
    }
  }
}

// --------------------------------------------------------------- resolver

TEST(ResolverTest, UncachedLookupIncludesAccessRttAndRecursion) {
  Resolver r({true, 60.0, 0.0, 300.0}, stats::Rng(1));
  const auto result = r.lookup("example.com", 0.0, 70.0);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_NEAR(result.time_ms, 130.0, 1.0);  // zero sigma: exact recursion
}

TEST(ResolverTest, CacheHitWithinTtl) {
  Resolver r({true, 60.0, 0.2, 300.0}, stats::Rng(2));
  r.lookup("example.com", 0.0, 70.0);
  const auto hit = r.lookup("example.com", 100.0, 70.0);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_LT(hit.time_ms, 2.0);
}

TEST(ResolverTest, CacheExpiresAfterTtl) {
  Resolver r({true, 60.0, 0.2, 300.0}, stats::Rng(3));
  r.lookup("example.com", 0.0, 70.0);
  const auto miss = r.lookup("example.com", 301.0, 70.0);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_GT(miss.time_ms, 70.0);
}

TEST(ResolverTest, DistinctDomainsDoNotShareCache) {
  Resolver r({true, 60.0, 0.2, 300.0}, stats::Rng(4));
  r.lookup("a.example", 0.0, 70.0);
  EXPECT_FALSE(r.lookup("b.example", 1.0, 70.0).cache_hit);
}

TEST(ResolverTest, GeoOperatorResolverDominatedBySatelliteRtt) {
  // HughesNet-style: resolver beyond the satellite link.
  Resolver hughes({false, 80.0, 0.0, 300.0}, stats::Rng(5));
  // Viasat-style: slower recursion.
  Resolver viasat({false, 330.0, 0.0, 300.0}, stats::Rng(6));
  const double hughes_ms = hughes.lookup("x.example", 0.0, 650.0).time_ms;
  const double viasat_ms = viasat.lookup("x.example", 0.0, 600.0).time_ms;
  // Paper Fig 10c: Viasat lookups slower than HughesNet despite lower RTT.
  EXPECT_GT(viasat_ms, hughes_ms);
  EXPECT_NEAR(hughes_ms, 730.0, 1.0);
  EXPECT_NEAR(viasat_ms, 930.0, 1.0);
}

class RootReachParam : public ::testing::TestWithParam<int> {};

TEST_P(RootReachParam, EveryRootReachableFromEveryStudyCity) {
  const char* cities[] = {"seattle", "london", "tokyo", "sydney", "santiago",
                          "auckland", "manila", "frankfurt"};
  const auto& root = root_servers()[static_cast<std::size_t>(GetParam())];
  for (const char* city : cities) {
    const auto choice = nearest_instance(root, geo::city_point(city));
    EXPECT_FALSE(choice.city.empty());
    EXPECT_LT(choice.surface_km, 20020.0);  // at most half the planet
  }
}

INSTANTIATE_TEST_SUITE_P(AllRoots, RootReachParam, ::testing::Range(0, 13));

}  // namespace
}  // namespace satnet::dns
