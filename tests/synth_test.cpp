#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bgp/sno_world.hpp"
#include "geo/places.hpp"
#include "synth/asdb.hpp"
#include "synth/catalog.hpp"
#include "synth/world.hpp"

namespace satnet::synth {
namespace {

// --------------------------------------------------------------- catalog

TEST(CatalogTest, EighteenMlabSnosPresent) {
  std::size_t in_mlab = 0;
  for (const auto& s : catalog()) {
    if (s.kind == EntityKind::sno && s.in_mlab) ++in_mlab;
  }
  EXPECT_EQ(in_mlab, 18u);  // Table 1's operator count
}

TEST(CatalogTest, FalsePositivesPresent) {
  std::size_t fp = 0;
  for (const auto& s : catalog()) {
    if (s.kind != EntityKind::sno) ++fp;
  }
  EXPECT_GE(fp, 10u);  // the "more than half are not SNOs" effect
}

TEST(CatalogTest, Table1VolumesEncoded) {
  EXPECT_EQ(find_sno("starlink").mlab_tests, 11700000u);
  EXPECT_EQ(find_sno("o3b/ses").mlab_tests, 78100u);
  EXPECT_EQ(find_sno("viasat").mlab_tests, 50000u);
  EXPECT_EQ(find_sno("kacific").mlab_tests, 34u);
}

TEST(CatalogTest, PepOperatorsMatchPaperFootnote) {
  for (const char* name : {"hughesnet", "viasat", "eutelsat", "avanti"}) {
    EXPECT_TRUE(find_sno(name).pep) << name;
    EXPECT_TRUE(find_sno(name).traits.pep) << name;
  }
  EXPECT_FALSE(find_sno("kvh").pep);
  EXPECT_FALSE(find_sno("telalaska").pep);
}

TEST(CatalogTest, StarlinkAsnsOutsideAsdb) {
  for (const auto& asn : find_sno("starlink").asns) {
    EXPECT_FALSE(asn.in_asdb);
  }
}

TEST(CatalogTest, StarlinkCorporateIsFullyTerrestrial) {
  const auto& asns = find_sno("starlink").asns;
  ASSERT_EQ(asns.size(), 2u);
  EXPECT_DOUBLE_EQ(asns[1].terrestrial_frac, 1.0);
}

TEST(CatalogTest, SesIsMultiOrbit) {
  const auto& ses = find_sno("ses");
  EXPECT_TRUE(ses.multi_orbit);
  EXPECT_EQ(ses.primary_orbit, orbit::OrbitClass::meo);
}

TEST(CatalogTest, UnknownOperatorThrows) {
  EXPECT_THROW(find_sno("spacey"), std::out_of_range);
}

TEST(CatalogTest, RegionsResolveToGazetteer) {
  for (const auto& s : catalog()) {
    for (const auto& r : s.regions) {
      EXPECT_NO_THROW(geo::city_point(r.city)) << s.name << " " << r.city;
      EXPECT_NO_THROW(geo::continent_of(r.country)) << s.name << " " << r.country;
    }
  }
}

// ------------------------------------------------------------------ asdb

TEST(AsdbTest, SatelliteCategoryMissesStarlinkAndViasat) {
  std::set<bgp::Asn> asns;
  for (const auto& row : asdb_satellite_category()) asns.insert(row.asn);
  EXPECT_FALSE(asns.count(bgp::kStarlink));
  EXPECT_FALSE(asns.count(bgp::kViasat));
  EXPECT_TRUE(asns.count(bgp::kHughes));
  EXPECT_TRUE(asns.count(bgp::kOneWeb));
}

TEST(AsdbTest, CategoryIncludesFalsePositives) {
  bool saw_cable = false;
  for (const auto& row : asdb_satellite_category()) {
    const auto info = ipinfo_lookup(row.asn);
    ASSERT_TRUE(info.has_value());
    if (info->kind == EntityKind::cable_tv) saw_cable = true;
  }
  EXPECT_TRUE(saw_cable);
}

TEST(AsdbTest, HeSearchFindsStarlink) {
  const auto asns = he_bgp_search("starlink");
  EXPECT_EQ(asns.size(), 2u);  // customer + corporate ASN
}

TEST(AsdbTest, HeSearchCaseInsensitive) {
  EXPECT_FALSE(he_bgp_search("Viasat").empty());
}

TEST(AsdbTest, HeSearchUnknownEmpty) {
  EXPECT_TRUE(he_bgp_search("galactic-nonexistent").empty());
}

TEST(AsdbTest, IpinfoLookupRoundTrip) {
  const auto r = ipinfo_lookup(bgp::kViasat);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->organization, "viasat");
  EXPECT_EQ(r->kind, EntityKind::sno);
  EXPECT_EQ(r->declared_orbit, orbit::OrbitClass::geo);
  EXPECT_FALSE(ipinfo_lookup(999999).has_value());
}

// ----------------------------------------------------------------- world

class WorldTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w;
    return w;
  }

  static WorldConfig config(std::uint64_t seed, double subscriber_scale = 1.0) {
    WorldConfig cfg;
    cfg.seed = seed;
    cfg.subscriber_scale = subscriber_scale;
    return cfg;
  }
};

TEST_F(WorldTest, DeterministicAcrossConstructions) {
  const World a(config(5));
  const World b(config(5));
  ASSERT_EQ(a.subscribers().size(), b.subscribers().size());
  for (std::size_t i = 0; i < a.subscribers().size(); i += 97) {
    EXPECT_EQ(a.subscribers()[i].ip, b.subscribers()[i].ip);
    EXPECT_EQ(a.subscribers()[i].plan_down_mbps, b.subscribers()[i].plan_down_mbps);
  }
}

TEST_F(WorldTest, EveryMlabSnoHasSubscribers) {
  for (const auto& s : catalog()) {
    if (s.kind != EntityKind::sno || !s.in_mlab) continue;
    EXPECT_FALSE(world().subscribers_of(s.name).empty()) << s.name;
  }
}

TEST_F(WorldTest, PrefixesAreAsnHomogeneous) {
  std::map<net::Prefix24, std::set<bgp::Asn>> by_prefix;
  for (const auto& sub : world().subscribers()) {
    by_prefix[sub.prefix].insert(sub.asn);
  }
  for (const auto& [prefix, asns] : by_prefix) {
    EXPECT_EQ(asns.size(), 1u) << prefix.to_string();
  }
}

TEST_F(WorldTest, MostPrefixesTechHomogeneous) {
  // Address sorting groups technologies; only boundary prefixes mix.
  std::map<net::Prefix24, std::set<AccessTech>> by_prefix;
  for (const auto& sub : world().subscribers()) {
    by_prefix[sub.prefix].insert(sub.tech);
  }
  std::size_t mixed = 0;
  for (const auto& [prefix, techs] : by_prefix) {
    if (techs.size() > 1) ++mixed;
  }
  EXPECT_LT(mixed, by_prefix.size() / 3);
  EXPECT_GT(mixed, 0u);  // the 45.232.115.0/24-style prefixes exist
}

TEST_F(WorldTest, ViasatUsesItsPaperPrefixBlock) {
  const auto subs = world().subscribers_of("viasat");
  ASSERT_FALSE(subs.empty());
  for (const auto* sub : subs) {
    EXPECT_EQ(sub->ip.value() >> 16, (45u << 8) | 232u) << sub->ip.to_string();
  }
}

TEST_F(WorldTest, StarlinkHasCorporateTerrestrialUsers) {
  bool corporate_terrestrial = false;
  for (const auto* sub : world().subscribers_of("starlink")) {
    if (sub->asn == bgp::kStarlinkCorporate) {
      EXPECT_EQ(sub->tech, AccessTech::terrestrial);
      corporate_terrestrial = true;
    }
  }
  EXPECT_TRUE(corporate_terrestrial);
}

TEST_F(WorldTest, SesSubscribersSpanOrbits) {
  std::set<orbit::OrbitClass> orbits;
  for (const auto* sub : world().subscribers_of("ses")) orbits.insert(sub->orbit);
  EXPECT_TRUE(orbits.count(orbit::OrbitClass::meo));
  EXPECT_TRUE(orbits.count(orbit::OrbitClass::geo));
}

TEST_F(WorldTest, SatelliteSampleLatenciesMatchOrbit) {
  stats::Rng rng(1);
  int checked = 0;
  for (const auto& sub : world().subscribers()) {
    if (sub.tech != AccessTech::satellite) continue;
    if (++checked > 200) break;
    const PathSample p = world().sample_path(sub, 1000.0, rng);
    if (!p.ok) continue;
    switch (sub.orbit) {
      case orbit::OrbitClass::leo:
        EXPECT_LT(p.download.base_rtt_ms, 420.0) << catalog()[sub.spec_index].name;
        break;
      case orbit::OrbitClass::meo:
        EXPECT_GT(p.download.base_rtt_ms, 150.0);
        EXPECT_LT(p.download.base_rtt_ms, 520.0);
        break;
      case orbit::OrbitClass::geo:
        EXPECT_GT(p.download.base_rtt_ms, 450.0) << catalog()[sub.spec_index].name;
        break;
    }
  }
}

TEST_F(WorldTest, TerrestrialSamplesAreFast) {
  stats::Rng rng(2);
  for (const auto& sub : world().subscribers()) {
    if (sub.tech != AccessTech::terrestrial) continue;
    const PathSample p = world().sample_path(sub, 0.0, rng);
    ASSERT_TRUE(p.ok);
    EXPECT_LT(p.download.base_rtt_ms, 60.0);
    EXPECT_FALSE(world().truly_satellite(sub, 0.0));
  }
}

TEST_F(WorldTest, HybridUsersFlipOverTime) {
  stats::Rng rng(3);
  for (const auto& sub : world().subscribers()) {
    if (sub.tech != AccessTech::hybrid_backup) continue;
    std::set<AccessTech> seen;
    for (double t = 0; t < 400 * 3600.0; t += 3600.0) {
      seen.insert(world().sample_path(sub, t, rng).tech_used);
    }
    EXPECT_TRUE(seen.count(AccessTech::satellite)) << sub.ip.to_string();
    EXPECT_TRUE(seen.count(AccessTech::terrestrial));
    break;  // one hybrid subscriber suffices
  }
}

TEST_F(WorldTest, TruthMatchesHybridState) {
  for (const auto& sub : world().subscribers()) {
    if (sub.tech != AccessTech::hybrid_backup) continue;
    stats::Rng rng(4);
    for (double t = 0; t < 100 * 3600.0; t += 3600.0) {
      const PathSample p = world().sample_path(sub, t, rng);
      EXPECT_EQ(world().truly_satellite(sub, t),
                p.tech_used == AccessTech::satellite);
    }
    break;
  }
}

TEST_F(WorldTest, StarlinkEuropeansFasterPlans) {
  double eu = 0, na = 0;
  int eu_n = 0, na_n = 0;
  for (const auto* sub : world().subscribers_of("starlink")) {
    const auto cont = geo::continent_of(sub->country);
    if (cont == geo::Continent::europe) {
      eu += sub->plan_down_mbps;
      ++eu_n;
    } else if (cont == geo::Continent::north_america) {
      na += sub->plan_down_mbps;
      ++na_n;
    }
  }
  ASSERT_GT(eu_n, 10);
  ASSERT_GT(na_n, 10);
  EXPECT_GT(eu / eu_n, 1.3 * (na / na_n));
}

TEST_F(WorldTest, MakeSubscriberUsable) {
  stats::Rng rng(5);
  const Subscriber sub =
      world().make_subscriber("hughesnet", geo::city_point("atlanta"), "US", rng);
  EXPECT_EQ(sub.asn, bgp::kHughes);
  const PathSample p = world().sample_path(sub, 0.0, rng);
  ASSERT_TRUE(p.ok);
  EXPECT_GT(p.download.base_rtt_ms, 450.0);
  EXPECT_THROW(world().make_subscriber("nope", {}, "US", rng), std::out_of_range);
}

TEST_F(WorldTest, SubscriberScaleChangesPopulation) {
  const World small(config(1, 0.3));
  EXPECT_LT(small.subscribers().size(), world().subscribers().size());
}

}  // namespace
}  // namespace satnet::synth
