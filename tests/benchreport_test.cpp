// benchreport unit tests: JSON normalization, ledger round trip, and
// the tolerance gate. The synthetic-slowdown test is the acceptance
// criterion for the whole ledger: a 20% regression on a timed metric
// must trip the default 15% gate (exit non-zero in the CLI), while a
// 10% wobble passes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchreport.hpp"

namespace satnet::benchreport {
namespace {

BenchRun make_run(const std::string& bench, const std::string& run_id,
                  std::map<std::string, double> metrics) {
  BenchRun run;
  run.bench = bench;
  run.run_id = run_id;
  run.metrics = std::move(metrics);
  return run;
}

TEST(BenchreportTest, DirectionInferredFromKey) {
  EXPECT_EQ(metric_direction("mlab_campaign.cold_ms"), Direction::lower_better);
  EXPECT_EQ(metric_direction("replay.p99_us"), Direction::lower_better);
  EXPECT_EQ(metric_direction("timeline_file.size_bytes"), Direction::lower_better);
  EXPECT_EQ(metric_direction("handoff_census.speedup"), Direction::higher_better);
  EXPECT_EQ(metric_direction("cache.hit_ratio"), Direction::higher_better);
  EXPECT_EQ(metric_direction("replay.outputs_identical"), Direction::higher_better);
  EXPECT_EQ(metric_direction("epochs.count"), Direction::info);
  EXPECT_EQ(metric_direction("config.threads"), Direction::info);
}

TEST(BenchreportTest, ParsesNestedBenchJson) {
  const std::string text =
      "{\n"
      "  \"bench\": \"bench_timeline\",\n"
      "  \"config\": {\"threads\": 8, \"epochs\": 720},\n"
      "  \"replay\": {\"warm_speedup\": 1.42, \"outputs_identical\": true},\n"
      "  \"note\": \"strings are kept separately, not metrics\",\n"
      "  \"skipped\": null\n"
      "}\n";
  BenchRun run;
  std::string error;
  ASSERT_TRUE(parse_bench_json(text, "fallback", &run, &error)) << error;
  EXPECT_EQ(run.bench, "bench_timeline");
  EXPECT_EQ(run.metrics.at("config.threads"), 8.0);
  EXPECT_EQ(run.metrics.at("config.epochs"), 720.0);
  EXPECT_EQ(run.metrics.at("replay.warm_speedup"), 1.42);
  EXPECT_EQ(run.metrics.at("replay.outputs_identical"), 1.0);
  EXPECT_EQ(run.metrics.count("note"), 0u);
  EXPECT_EQ(run.metrics.count("skipped"), 0u);
}

TEST(BenchreportTest, FallbackNameAndMalformedInput) {
  BenchRun run;
  std::string error;
  ASSERT_TRUE(parse_bench_json("{\"x\": 1}", "BENCH_access_cache", &run, &error));
  EXPECT_EQ(run.bench, "BENCH_access_cache");
  EXPECT_FALSE(parse_bench_json("{\"x\": ", "broken", &run, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchreportTest, LedgerLineRoundTrips) {
  const BenchRun run = make_run("bench_x", "run-7",
                                {{"a.cold_ms", 12.5}, {"a.speedup", 2.0}});
  const std::string line = ledger_line(run);
  const std::vector<BenchRun> parsed = parse_ledger(line + "\n" +
                                                    "{\"type\":\"manifest\"}\n" +
                                                    "not json at all\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].bench, "bench_x");
  EXPECT_EQ(parsed[0].run_id, "run-7");
  ASSERT_EQ(parsed[0].metrics.size(), 2u);
  EXPECT_EQ(parsed[0].metrics.at("a.cold_ms"), 12.5);
  EXPECT_EQ(parsed[0].metrics.at("a.speedup"), 2.0);
}

TEST(BenchreportTest, TwentyPercentSlowdownTripsTheGate) {
  // The acceptance criterion: inject a synthetic 20% slowdown on a
  // lower-is-better metric and require the default 15% gate to fail.
  const std::vector<BenchRun> baseline = {
      make_run("bench_x", "base", {{"campaign.cold_ms", 100.0}})};
  const std::vector<BenchRun> slow = {
      make_run("bench_x", "cur", {{"campaign.cold_ms", 120.0}})};
  const CheckResult bad = check(baseline, slow, 0.15, /*ratios_only=*/false);
  EXPECT_FALSE(bad.ok());
  ASSERT_EQ(bad.regressions.size(), 1u);
  EXPECT_EQ(bad.regressions[0].key, "campaign.cold_ms");
  EXPECT_NEAR(bad.regressions[0].ratio, 1.2, 1e-9);
  EXPECT_NE(render_table(bad, 0.15).find("REGRESSED"), std::string::npos);

  // A 10% wobble on the same metric stays inside the gate.
  const std::vector<BenchRun> wobble = {
      make_run("bench_x", "cur", {{"campaign.cold_ms", 110.0}})};
  EXPECT_TRUE(check(baseline, wobble, 0.15, false).ok());
}

TEST(BenchreportTest, SpeedupDropTripsTheGateTheOtherWay) {
  const std::vector<BenchRun> baseline = {
      make_run("bench_x", "base", {{"campaign.speedup", 2.0}})};
  const std::vector<BenchRun> slower = {
      make_run("bench_x", "cur", {{"campaign.speedup", 1.5}})};
  const CheckResult bad = check(baseline, slower, 0.15, false);
  EXPECT_FALSE(bad.ok());
  ASSERT_EQ(bad.regressions.size(), 1u);
  EXPECT_EQ(bad.regressions[0].direction, Direction::higher_better);
  // A higher speedup is never a regression.
  const std::vector<BenchRun> faster = {
      make_run("bench_x", "cur", {{"campaign.speedup", 3.0}})};
  EXPECT_TRUE(check(baseline, faster, 0.15, false).ok());
}

TEST(BenchreportTest, RatiosOnlyIgnoresAbsoluteTimes) {
  // The verify.sh hard gate runs ratios_only: a machine-dependent
  // absolute-time regression must not fail it, a speedup drop must.
  const std::vector<BenchRun> baseline = {make_run(
      "bench_x", "base", {{"campaign.cold_ms", 100.0}, {"campaign.speedup", 2.0}})};
  const std::vector<BenchRun> slow_times = {make_run(
      "bench_x", "cur", {{"campaign.cold_ms", 300.0}, {"campaign.speedup", 2.0}})};
  EXPECT_TRUE(check(baseline, slow_times, 0.15, /*ratios_only=*/true).ok());
  EXPECT_FALSE(check(baseline, slow_times, 0.15, /*ratios_only=*/false).ok());

  const std::vector<BenchRun> slow_ratio = {make_run(
      "bench_x", "cur", {{"campaign.cold_ms", 100.0}, {"campaign.speedup", 0.5}})};
  EXPECT_FALSE(check(baseline, slow_ratio, 0.15, /*ratios_only=*/true).ok());
}

TEST(BenchreportTest, InfoMetricsAndMissingBenchesNeverGate) {
  const std::vector<BenchRun> baseline = {
      make_run("bench_x", "base", {{"epochs.count", 100.0}}),
      make_run("bench_gone", "base", {{"a.cold_ms", 5.0}})};
  const std::vector<BenchRun> current = {
      make_run("bench_x", "cur", {{"epochs.count", 9000.0}})};
  const CheckResult result = check(baseline, current, 0.15, false);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.missing_benches.size(), 1u);
  EXPECT_EQ(result.missing_benches[0], "bench_gone");
  EXPECT_NE(render_table(result, 0.15).find("bench_gone"), std::string::npos);
}

TEST(BenchreportTest, LatestCurrentEntryWins) {
  // History ledgers accumulate runs; the gate must compare the newest.
  const std::vector<BenchRun> baseline = {
      make_run("bench_x", "base", {{"a.cold_ms", 100.0}})};
  const std::vector<BenchRun> current = {
      make_run("bench_x", "old", {{"a.cold_ms", 500.0}}),
      make_run("bench_x", "new", {{"a.cold_ms", 101.0}})};
  EXPECT_TRUE(check(baseline, current, 0.15, false).ok());
}

}  // namespace
}  // namespace satnet::benchreport
