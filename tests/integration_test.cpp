// End-to-end integration: the full study loop — world synthesis, M-Lab
// campaign, identification pipeline, cross-orbit analysis, RIPE analysis,
// Prolific study — wired together the way the paper's evaluation is.
#include <gtest/gtest.h>

#include <set>

#include "mlab/campaign.hpp"
#include "prolific/addon.hpp"
#include "prolific/census.hpp"
#include "ripe/atlas.hpp"
#include "snoid/analysis.hpp"
#include "snoid/pipeline.hpp"
#include "snoid/pop_analysis.hpp"
#include "synth/world.hpp"

namespace satnet {
namespace {

struct Study {
  synth::World world;
  mlab::NdtDataset mlab;
  snoid::PipelineResult pipeline;
  ripe::AtlasDataset atlas;

  Study() {
    mlab::CampaignConfig mc;
    mc.volume_scale = 0.0005;
    mc.min_tests_per_sno = 25;
    mlab = mlab::run_campaign(world, mc);
    pipeline = snoid::run_pipeline(mlab);

    ripe::AtlasConfig ac;
    ac.duration_days = 366.0;
    ac.round_interval_hours = 24.0 * 3;
    atlas = ripe::run_atlas_campaign(ac);
  }
};

const Study& study() {
  static const Study s;
  return s;
}

TEST(IntegrationTest, FullLoopIdentifiesEighteenOperators) {
  EXPECT_EQ(study().pipeline.identified_operators, 18u);
}

TEST(IntegrationTest, RetainedVolumeOrderingFollowsTable1) {
  // Starlink must dominate, the GEO tail must be small (Table 1's shape).
  std::map<std::string, std::size_t> retained;
  for (const auto& op : study().pipeline.operators) {
    retained[op.name] = op.retained.size();
  }
  EXPECT_GT(retained["starlink"], 50 * retained["viasat"]);
  EXPECT_GT(retained["o3b/ses"], retained["kacific"]);
}

TEST(IntegrationTest, EndToEndOrbitOrdering) {
  const auto groups = snoid::retained_by_orbit(study().pipeline);
  const auto median_of = [&](orbit::OrbitClass c) {
    return stats::median(
        study().mlab.field(groups.at(c), &mlab::NdtRecord::latency_p5_ms));
  };
  EXPECT_LT(median_of(orbit::OrbitClass::leo), median_of(orbit::OrbitClass::meo));
  EXPECT_LT(median_of(orbit::OrbitClass::meo), median_of(orbit::OrbitClass::geo));
}

TEST(IntegrationTest, RipePopRttMatchesMlabStarlinkLatencyFloor) {
  // The PoP RTT seen by RIPE probes must sit below the M-Lab NDT latency
  // (which adds the PoP->server leg) but in the same regime.
  const auto world_rtt = snoid::pop_rtt_by_country(study().atlas, /*us_only=*/false);
  ASSERT_FALSE(world_rtt.empty());
  double best_median = 1e9;
  for (const auto& r : world_rtt) best_median = std::min(best_median, r.rtt.median);

  const auto groups = snoid::retained_by_orbit(study().pipeline);
  const auto leo_lat =
      study().mlab.field(groups.at(orbit::OrbitClass::leo), &mlab::NdtRecord::latency_p5_ms);
  EXPECT_LT(best_median, stats::median(leo_lat));
  EXPECT_GT(best_median, 25.0);
}

TEST(IntegrationTest, PhilippinesWorstPopRttWorldwide) {
  const auto world_rtt = snoid::pop_rtt_by_country(study().atlas, false);
  ASSERT_GE(world_rtt.size(), 10u);
  EXPECT_EQ(world_rtt.back().key, "PH");  // sorted by median
  // ~2x the best-served countries (paper: 80 ms vs ~33 ms).
  EXPECT_GT(world_rtt.back().rtt.median, 1.7 * world_rtt.front().rtt.median);
}

TEST(IntegrationTest, AlaskaWorstUsState) {
  const auto us = snoid::pop_rtt_by_us_state(study().atlas);
  ASSERT_GE(us.size(), 20u);
  EXPECT_EQ(us.back().key, "AK");
  EXPECT_GT(us.back().rtt.median, 60.0);  // paper: ~80 ms median
}

TEST(IntegrationTest, PopMigrationsDetected) {
  const auto migrations = snoid::detect_pop_migrations(study().atlas);
  // NZ (Sydney->Auckland), NL (Frankfurt->London), Reno (LA->Denver->LA).
  bool nz = false, nl = false, nv_out = false, nv_back = false;
  for (const auto& m : migrations) {
    if (m.country == "NZ" && m.from_pop == "sydnaus1" && m.to_pop == "acklnzl1") {
      nz = true;
      EXPECT_GT(m.rtt_before_ms, m.rtt_after_ms);  // ~20 ms improvement
    }
    if (m.country == "NL" && m.from_pop == "frntdeu1" && m.to_pop == "lndngbr1") {
      nl = true;
    }
    if (m.country == "US" && m.from_pop == "lsancax1" && m.to_pop == "dnvrcox1") {
      nv_out = true;
      EXPECT_LT(m.rtt_before_ms, m.rtt_after_ms);  // the "damage" case
    }
    if (m.country == "US" && m.from_pop == "dnvrcox1" && m.to_pop == "lsancax1") {
      nv_back = true;
    }
  }
  EXPECT_TRUE(nz);
  EXPECT_TRUE(nl);
  EXPECT_TRUE(nv_out);
  EXPECT_TRUE(nv_back);
}

TEST(IntegrationTest, PopAssociationHistoryListsActiveAndPast) {
  const auto assoc = snoid::pop_association_history(study().atlas);
  // The NZ probe must show two associations: Sydney (ended) and Auckland
  // (active until the end of the campaign).
  std::vector<snoid::PopAssociation> nz;
  for (const auto& a : assoc) {
    if (a.country == "NZ") nz.push_back(a);
  }
  ASSERT_EQ(nz.size(), 2u);
  EXPECT_EQ(nz[0].pop_name, "sydnaus1");
  EXPECT_EQ(nz[1].pop_name, "acklnzl1");
  EXPECT_LT(nz[0].last_day, 75.0);
  EXPECT_GT(nz[1].last_day, 350.0);
}

TEST(IntegrationTest, RootDnsChileWideDistribution) {
  // Chile: 7 local roots (fast) + 6 remote (slow) -> wide spread.
  const auto root_rtt = snoid::root_rtt_by_country(study().atlas);
  const snoid::RttSummary* cl = nullptr;
  const snoid::RttSummary* de = nullptr;
  for (const auto& r : root_rtt) {
    if (r.key == "CL") cl = &r;
    if (r.key == "DE") de = &r;
  }
  ASSERT_NE(cl, nullptr);
  ASSERT_NE(de, nullptr);
  const double cl_spread = cl->rtt.whisker_high - cl->rtt.whisker_low;
  const double de_spread = de->rtt.whisker_high - de->rtt.whisker_low;
  EXPECT_GT(cl_spread, de_spread);
}

TEST(IntegrationTest, ProlificStudyConsistentWithMlabSpeeds) {
  prolific::TesterPool pool;
  prolific::StudyConfig cfg;
  cfg.runs_per_tester = 2;
  const auto reports = prolific::run_addon_study(study().world, pool, cfg);

  std::map<std::string, std::vector<double>> down;
  for (const auto& r : reports) {
    if (r.speedtest.down_mbps > 0) down[r.sno].push_back(r.speedtest.down_mbps);
  }
  // Fig 9a ordering: Starlink >> Viasat > HughesNet.
  EXPECT_GT(stats::median(down["starlink"]), 2.0 * stats::median(down["viasat"]));
  EXPECT_GT(stats::median(down["viasat"]), stats::median(down["hughesnet"]));
  EXPECT_LT(stats::median(down["hughesnet"]), 4.0);  // never near 25 Mbps
}

TEST(IntegrationTest, ScalingUpCampaignPreservesFindings) {
  // Same world, 4x test volume: the pipeline conclusions are stable.
  mlab::CampaignConfig mc;
  mc.volume_scale = 0.002;
  mc.min_tests_per_sno = 30;
  const auto big = mlab::run_campaign(study().world, mc);
  const auto result = snoid::run_pipeline(big);
  EXPECT_EQ(result.identified_operators, 18u);
  for (const auto& op : result.operators) {
    if (op.identified()) {
      EXPECT_GT(op.precision(), 0.9) << op.name;
    }
  }
  // At this volume Viasat's clean prefixes surface and it is covered by
  // the strict filter (Fig 3a lists Viasat among the 6 covered SNOs).
  for (const auto& op : result.operators) {
    if (op.name == "viasat") {
      EXPECT_TRUE(op.covered_by_strict);
    }
  }
}

}  // namespace
}  // namespace satnet
