#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace satnet::sim {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&](Time) { order.push_back(3); });
  q.schedule_at(1.0, [&](Time) { order.push_back(1); });
  q.schedule_at(2.0, [&](Time) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i](Time) { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue q;
  double seen = -1;
  q.schedule_at(42.5, [&](Time t) { seen = t; });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
  EXPECT_DOUBLE_EQ(q.now(), 42.5);
}

TEST(EventQueueTest, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&](Time) {
    ++fired;
    q.schedule_in(1.0, [&](Time) { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&](Time) { ++fired; });
  q.schedule_at(5.0, [&](Time) { ++fired; });
  const std::size_t executed = q.run_until(3.0);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilInclusiveOfBoundaryEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(3.0, [&](Time) { ++fired; });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(10.0, [](Time) {});
  q.run();
  EXPECT_THROW(q.schedule_at(5.0, [](Time) {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [](Time) {}), std::invalid_argument);
}

TEST(EventQueueTest, ScheduleInIsRelativeToNow) {
  EventQueue q;
  double second_time = 0;
  q.schedule_at(10.0, [&](Time) {
    q.schedule_in(5.0, [&](Time t) { second_time = t; });
  });
  q.run();
  EXPECT_DOUBLE_EQ(second_time, 15.0);
}

TEST(EventQueueTest, RunReturnsExecutedCount) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(i, [](Time) {});
  EXPECT_EQ(q.run(), 7u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ReentrantSameTimeEventsFireInSeqOrder) {
  // A handler that schedules new events at the *current* time during
  // run_until: they must fire within the same run, after already-queued
  // same-time events, in scheduling order — no skips, no reordering.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&](Time now) {
    order.push_back(0);
    q.schedule_at(now, [&](Time inner_now) {
      order.push_back(2);
      q.schedule_at(inner_now, [&](Time) { order.push_back(4); });
    });
    q.schedule_at(now, [&](Time) { order.push_back(3); });
  });
  q.schedule_at(1.0, [&](Time) { order.push_back(1); });
  const std::size_t executed = q.run_until(1.0);
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueueTest, PeriodicSelfRescheduling) {
  EventQueue q;
  int ticks = 0;
  std::function<void(Time)> tick = [&](Time) {
    if (++ticks < 10) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run();
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

}  // namespace
}  // namespace satnet::sim
