#include <gtest/gtest.h>

#include <cmath>

#include "transport/linkmodel.hpp"
#include "transport/path.hpp"
#include "transport/tcp.hpp"

namespace satnet::transport {
namespace {

PathProfile leo_path() {
  PathProfile p;
  p.base_rtt_ms = 50;
  p.jitter_ms = 4;
  p.bottleneck_mbps = 100;
  p.buffer_bdp = 1.5;
  p.sat_loss = 0.004;
  p.handoff_rate_hz = 0.05;
  p.handoff_loss_frac = 0.12;
  p.handoff_spike_ms = 30;
  return p;
}

PathProfile geo_path(bool pep) {
  PathProfile p;
  p.base_rtt_ms = 620;
  p.jitter_ms = 40;
  p.bottleneck_mbps = 20;
  p.buffer_bdp = 0.8;
  p.sat_loss = 0.025;
  p.pep = pep;
  return p;
}

FlowResult run(const PathProfile& p, double ms = 10000, std::uint64_t seed = 1) {
  TcpFlow flow(p, TcpOptions{}, stats::Rng(seed));
  return flow.run_for(ms);
}

// ------------------------------------------------------------ basic flow

TEST(TcpFlowTest, ByteConservation) {
  const FlowResult r = run(leo_path());
  EXPECT_EQ(r.bytes_sent, r.bytes_acked + r.bytes_retrans);
}

TEST(TcpFlowTest, DeterministicGivenSeed) {
  const FlowResult a = run(leo_path(), 5000, 42);
  const FlowResult b = run(leo_path(), 5000, 42);
  EXPECT_EQ(a.bytes_acked, b.bytes_acked);
  EXPECT_DOUBLE_EQ(a.rtt_p5_ms, b.rtt_p5_ms);
}

TEST(TcpFlowTest, RttP5NearBaseRtt) {
  const FlowResult r = run(leo_path());
  EXPECT_GE(r.rtt_p5_ms, 50.0);
  EXPECT_LT(r.rtt_p5_ms, 70.0);
}

TEST(TcpFlowTest, GoodputApproachesBottleneck) {
  PathProfile p = leo_path();
  p.sat_loss = 0;
  p.handoff_rate_hz = 0;
  const FlowResult r = run(p, 15000);
  EXPECT_GT(r.goodput_mbps, 0.5 * p.bottleneck_mbps);
  EXPECT_LE(r.goodput_mbps, 1.05 * p.bottleneck_mbps);
}

TEST(TcpFlowTest, GoodputNeverExceedsCapacityByMuch) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FlowResult r = run(leo_path(), 10000, seed);
    EXPECT_LE(r.goodput_mbps, leo_path().bottleneck_mbps * 1.1);
  }
}

TEST(TcpFlowTest, SlowCapacityMeansSlowGoodput) {
  PathProfile p = geo_path(true);
  p.bottleneck_mbps = 2.4;  // HughesNet-class plan
  const FlowResult r = run(p);
  EXPECT_LT(r.goodput_mbps, 3.0);
  EXPECT_GT(r.goodput_mbps, 0.3);
}

TEST(TcpFlowTest, DurationRunsToRequestedTime) {
  const FlowResult r = run(leo_path(), 10000);
  EXPECT_GE(r.duration_ms, 10000.0);
  EXPECT_LT(r.duration_ms, 13000.0);  // plus at most a few RTTs / RTO
}

// ---------------------------------------------------------- retransmits

TEST(TcpFlowTest, LossFreePathHasNoRetransmissions) {
  PathProfile p = leo_path();
  p.sat_loss = 0;
  p.ground_loss = 0;
  p.handoff_rate_hz = 0;
  p.buffer_bdp = 50;  // effectively no overflow
  const FlowResult r = run(p);
  EXPECT_EQ(r.bytes_retrans, 0u);
}

TEST(TcpFlowTest, NonPepGeoHasHighRetransmissions) {
  const FlowResult r = run(geo_path(false), 20000);
  EXPECT_GT(r.retrans_fraction, 0.02);
}

TEST(TcpFlowTest, PepSuppressesSatelliteLossRetransmissions) {
  double pep_total = 0, raw_total = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    pep_total += run(geo_path(true), 15000, seed).retrans_fraction;
    raw_total += run(geo_path(false), 15000, seed).retrans_fraction;
  }
  EXPECT_LT(pep_total, raw_total * 0.5);
}

TEST(TcpFlowTest, PepImprovesGeoGoodput) {
  double pep_total = 0, raw_total = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    pep_total += run(geo_path(true), 15000, seed).goodput_mbps;
    raw_total += run(geo_path(false), 15000, seed).goodput_mbps;
  }
  EXPECT_GT(pep_total, raw_total);
}

TEST(TcpFlowTest, HandoffsRecordedOnLeoPaths) {
  PathProfile p = leo_path();
  p.handoff_rate_hz = 0.2;  // exaggerate for a 10 s test
  const FlowResult r = run(p, 20000);
  EXPECT_GT(r.n_handoffs, 0u);
}

TEST(TcpFlowTest, RtoCollapsesWindow) {
  PathProfile p = geo_path(false);
  p.handoff_rate_hz = 0.0;
  p.sat_loss = 0.2;  // catastrophic loss: bursts trigger RTOs
  const FlowResult r = run(p, 20000);
  EXPECT_GT(r.n_rtos, 0u);
  EXPECT_LT(r.goodput_mbps, 2.0);
}

// -------------------------------------------------------------- jitter

TEST(TcpFlowTest, JitterScalesWithPathJitter) {
  PathProfile calm = leo_path();
  calm.jitter_ms = 1.0;
  calm.handoff_rate_hz = 0;
  PathProfile noisy = leo_path();
  noisy.jitter_ms = 30.0;
  noisy.handoff_rate_hz = 0;
  EXPECT_LT(run(calm, 15000).jitter_p95_ms, run(noisy, 15000).jitter_p95_ms);
}

TEST(TcpFlowTest, HandoffSpikesRaiseJitter) {
  // Use an un-congested, loss-free path so the only jitter sources are
  // the base noise and the handoff spikes under test.
  PathProfile calm = leo_path();
  calm.handoff_rate_hz = 0;
  calm.sat_loss = 0;
  calm.bottleneck_mbps = 5000;  // BDP above the max window: no queueing
  PathProfile choppy = calm;
  choppy.handoff_rate_hz = 0.3;
  choppy.handoff_loss_frac = 0;  // isolate the latency spike
  choppy.handoff_spike_ms = 60;
  double calm_j = 0, choppy_j = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    calm_j += run(calm, 15000, s).jitter_p95_ms;
    choppy_j += run(choppy, 15000, s).jitter_p95_ms;
  }
  EXPECT_GT(choppy_j, calm_j * 1.5);
}

// ------------------------------------------------------------ snapshots

TEST(TcpFlowTest, SnapshotsMonotone) {
  const FlowResult r = run(leo_path(), 10000);
  ASSERT_GT(r.snapshots.size(), 10u);
  for (std::size_t i = 1; i < r.snapshots.size(); ++i) {
    EXPECT_GE(r.snapshots[i].t_ms, r.snapshots[i - 1].t_ms);
    EXPECT_GE(r.snapshots[i].bytes_sent, r.snapshots[i - 1].bytes_sent);
    EXPECT_GE(r.snapshots[i].bytes_acked, r.snapshots[i - 1].bytes_acked);
    EXPECT_GE(r.snapshots[i].bytes_retrans, r.snapshots[i - 1].bytes_retrans);
  }
}

TEST(TcpFlowTest, SnapshotCadenceRespected) {
  const FlowResult r = run(leo_path(), 10000);
  // 10 s at 100 ms cadence: about 100 snapshots.
  EXPECT_NEAR(static_cast<double>(r.snapshots.size()), 100.0, 25.0);
}

// ------------------------------------------------------------ run_bytes

TEST(TcpFlowTest, RunBytesDeliversRequestedPayload) {
  TcpFlow flow(leo_path(), TcpOptions{}, stats::Rng(5));
  const FlowResult r = flow.run_bytes(1 << 20);
  EXPECT_GE(r.bytes_acked, 1u << 20);
}

TEST(TcpFlowTest, SmallTransferDominatedByRtt) {
  PathProfile p = leo_path();
  p.sat_loss = 0;
  p.handoff_rate_hz = 0;
  TcpFlow flow(p, TcpOptions{}, stats::Rng(6));
  const FlowResult r = flow.run_bytes(20 * 1024);  // ~14 packets
  EXPECT_LT(r.duration_ms, 5 * p.base_rtt_ms);
}

TEST(TcpFlowTest, LargerTransfersTakeLonger) {
  PathProfile p = leo_path();
  p.sat_loss = 0;
  p.handoff_rate_hz = 0;
  TcpFlow a(p, TcpOptions{}, stats::Rng(7));
  TcpFlow b(p, TcpOptions{}, stats::Rng(7));
  EXPECT_LT(a.run_bytes(100 * 1024).duration_ms, b.run_bytes(10 << 20).duration_ms);
}

TEST(TcpFlowTest, RunBytesRespectsDeadline) {
  PathProfile p = geo_path(false);
  p.bottleneck_mbps = 0.2;
  TcpFlow flow(p, TcpOptions{}, stats::Rng(8));
  const FlowResult r = flow.run_bytes(100 << 20, 5000.0);
  EXPECT_LT(r.duration_ms, 8000.0);
  EXPECT_LT(r.bytes_acked, 100u << 20);
}

TEST(FetchTimeTest, HandshakeAddsRtts) {
  PathProfile p = leo_path();
  p.sat_loss = 0;
  p.handoff_rate_hz = 0;
  stats::Rng r1(9), r2(9);
  const double no_hs = fetch_time_ms(p, 32 * 1024, 0.0, r1);
  const double with_hs = fetch_time_ms(p, 32 * 1024, 2.0, r2);
  EXPECT_NEAR(with_hs - no_hs, 2 * p.base_rtt_ms, p.base_rtt_ms);
}

// ------------------------------------------------------------ linkmodel

TEST(LinkModelTest, DownloadProfileDoublesAccessLatency) {
  orbit::AccessSample access;
  access.reachable = true;
  access.one_way_ms = 25.0;
  LinkTraits traits;
  stats::Rng rng(10);
  const PathProfile p = build_download_profile(access, traits, 10.0, rng);
  EXPECT_DOUBLE_EQ(p.base_rtt_ms, 60.0);
}

TEST(LinkModelTest, UploadUsesUplinkCapacity) {
  orbit::AccessSample access;
  access.reachable = true;
  access.one_way_ms = 25.0;
  LinkTraits traits;
  traits.down_mbps_median = 100;
  traits.up_mbps_median = 5;
  traits.down_mbps_sigma = 0.01;
  traits.up_mbps_sigma = 0.01;
  stats::Rng rng(11);
  const PathProfile down = build_download_profile(access, traits, 0.0, rng);
  const PathProfile up = build_upload_profile(access, traits, 0.0, rng);
  EXPECT_GT(down.bottleneck_mbps, 10 * up.bottleneck_mbps);
  EXPECT_GT(up.jitter_ms, down.jitter_ms);
}

TEST(LinkModelTest, PepFlagPropagates) {
  orbit::AccessSample access;
  access.reachable = true;
  access.one_way_ms = 300.0;
  LinkTraits traits;
  traits.pep = true;
  stats::Rng rng(12);
  EXPECT_TRUE(build_download_profile(access, traits, 5.0, rng).pep);
}

TEST(PathProfileTest, BdpComputation) {
  PathProfile p;
  p.bottleneck_mbps = 12.0;   // 1.5 MB/s
  p.base_rtt_ms = 1000.0;     // 1 s
  EXPECT_NEAR(p.bdp_packets(1500.0), 1000.0, 1e-6);
}

// -------------------------------------------------- parameterized sweeps

class RttSweep : public ::testing::TestWithParam<double> {};

TEST_P(RttSweep, HigherRttSlowsShortTransfers) {
  PathProfile p;
  p.base_rtt_ms = GetParam();
  p.bottleneck_mbps = 50;
  p.jitter_ms = 0.5;
  TcpFlow flow(p, TcpOptions{}, stats::Rng(13));
  const FlowResult r = flow.run_bytes(256 * 1024);
  // Short transfers are window-growth bound: duration ~ k * RTT.
  EXPECT_GT(r.duration_ms, 2 * GetParam());
  EXPECT_LT(r.duration_ms, 12 * GetParam() + 500);
}

INSTANTIATE_TEST_SUITE_P(Rtts, RttSweep, ::testing::Values(20.0, 50.0, 150.0, 300.0, 620.0));

class CapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CapacitySweep, GoodputTracksCapacity) {
  PathProfile p;
  p.base_rtt_ms = 60;
  p.bottleneck_mbps = GetParam();
  p.jitter_ms = 1;
  const FlowResult r = run(p, 15000, 14);
  EXPECT_GT(r.goodput_mbps, 0.5 * GetParam());
  EXPECT_LE(r.goodput_mbps, 1.1 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep,
                         ::testing::Values(2.0, 10.0, 25.0, 100.0, 300.0));

class CongestionControlSweep : public ::testing::TestWithParam<CongestionControl> {};

TEST_P(CongestionControlSweep, BothCcVariantsConserveBytes) {
  TcpOptions opt;
  opt.cc = GetParam();
  TcpFlow flow(geo_path(false), opt, stats::Rng(15));
  const FlowResult r = flow.run_for(10000);
  EXPECT_EQ(r.bytes_sent, r.bytes_acked + r.bytes_retrans);
  EXPECT_GT(r.bytes_acked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Variants, CongestionControlSweep,
                         ::testing::Values(CongestionControl::reno,
                                           CongestionControl::cubic));

}  // namespace
}  // namespace satnet::transport
