#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "http/cdn.hpp"
#include "http/loader.hpp"
#include "http/page.hpp"
#include "stats/summary.hpp"

namespace satnet::http {
namespace {

transport::PathProfile starlink_path() {
  transport::PathProfile p;
  p.base_rtt_ms = 55;
  p.jitter_ms = 4;
  p.bottleneck_mbps = 100;
  p.sat_loss = 0.002;
  return p;
}

transport::PathProfile geo_path(double rtt = 620, double mbps = 20) {
  transport::PathProfile p;
  p.base_rtt_ms = rtt;
  p.jitter_ms = 25;
  p.bottleneck_mbps = mbps;
  p.sat_loss = 0.004;
  p.pep = true;
  p.ground_loss = 0.0002;
  return p;
}

// ------------------------------------------------------------------ CDN

TEST(CdnTest, FiveProvidersRegistered) {
  EXPECT_EQ(cdn_providers().size(), 5u);
  EXPECT_NO_THROW(find_cdn("fastly"));
  EXPECT_NO_THROW(find_cdn("cloudflare"));
  EXPECT_THROW(find_cdn("akamai"), std::out_of_range);
}

TEST(CdnTest, CloudflareServesSmallestBodies) {
  const auto& cf = find_cdn("cloudflare");
  for (const auto& p : cdn_providers()) {
    EXPECT_LE(cf.min_bytes, p.min_bytes);
    EXPECT_LE(cf.regular_bytes, p.regular_bytes);
  }
}

TEST(CdnTest, FastlyFastestOnStarlink) {
  stats::Rng rng(1);
  double fastly = 0, stackpath = 0;
  for (int i = 0; i < 20; ++i) {
    fastly += cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::minified,
                           starlink_path(), rng);
    stackpath += cdn_fetch_ms(find_cdn("stackpath"), JqueryVariant::minified,
                              starlink_path(), rng);
  }
  EXPECT_LT(fastly, stackpath);
}

TEST(CdnTest, JsdelivrRedirectHelpsStarlinkLittleHurtsGeo) {
  stats::Rng rng(2);
  double sl_jsd = 0, sl_fastly = 0, geo_jsd = 0, geo_fastly = 0;
  for (int i = 0; i < 25; ++i) {
    sl_jsd += cdn_fetch_ms(find_cdn("jsdelivr"), JqueryVariant::minified,
                           starlink_path(), rng);
    sl_fastly += cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::minified,
                              starlink_path(), rng);
    geo_jsd += cdn_fetch_ms(find_cdn("jsdelivr"), JqueryVariant::minified,
                            geo_path(), rng);
    geo_fastly += cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::minified,
                               geo_path(), rng);
  }
  // The extra redirect RTT is ~55 ms on Starlink but ~620 ms on GEO.
  EXPECT_LT(sl_jsd - sl_fastly, 100.0 * 25);
  EXPECT_GT(geo_jsd - geo_fastly, 400.0 * 25);
}

TEST(CdnTest, MinifiedFasterThanRegular) {
  stats::Rng rng(3);
  double minified = 0, regular = 0;
  for (int i = 0; i < 25; ++i) {
    minified += cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::minified,
                             geo_path(620, 5), rng);
    regular += cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::regular,
                            geo_path(620, 5), rng);
  }
  EXPECT_LT(minified, regular);
}

TEST(CdnTest, GeoFetchesAroundOneSecond) {
  // Paper Fig 10a: Fastly jquery.min.js ~127 ms Starlink, ~1 s GEO.
  stats::Rng rng(4);
  std::vector<double> sl, geo;
  for (int i = 0; i < 30; ++i) {
    sl.push_back(cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::minified,
                              starlink_path(), rng));
    geo.push_back(cdn_fetch_ms(find_cdn("fastly"), JqueryVariant::minified,
                               geo_path(), rng));
  }
  const double sl_med = stats::median(sl);
  const double geo_med = stats::median(geo);
  EXPECT_GT(sl_med, 80.0);
  EXPECT_LT(sl_med, 400.0);
  EXPECT_GT(geo_med, 800.0);
  EXPECT_LT(geo_med, 3000.0);
}

// ----------------------------------------------------------------- page

TEST(PageTest, AkamaiDemoShape) {
  const WebPage page = akamai_demo_page();
  EXPECT_EQ(page.subresources.size(), 360u);
  EXPECT_EQ(page.object_count(), 361u);
  // All tiles from one host: the H1-vs-H2 stress case.
  for (const auto& o : page.subresources) EXPECT_EQ(o.host, page.root.host);
}

TEST(PageTest, TotalBytesSumsResources) {
  WebPage p;
  p.root = {"h", 100};
  p.subresources = {{"h", 50}, {"h", 25}};
  EXPECT_EQ(p.total_bytes(), 175u);
}

TEST(PageTest, NewsPageUsesMultipleHosts) {
  const WebPage page = news_page();
  std::set<std::string> hosts;
  for (const auto& o : page.subresources) hosts.insert(o.host);
  EXPECT_GE(hosts.size(), 3u);
}

// --------------------------------------------------------------- loader

TEST(LoaderTest, H2BeatsH1OnManyObjectPage) {
  stats::Rng rng(5);
  const WebPage page = akamai_demo_page();
  const auto h1 = load_page(page, HttpVersion::h1, starlink_path(), rng);
  const auto h2 = load_page(page, HttpVersion::h2, starlink_path(), rng);
  EXPECT_LT(h2.plt_ms, h1.plt_ms);
}

TEST(LoaderTest, H1GeoCatastrophicH2Rescues) {
  // Paper Fig 10b: H2 on GEO is comparable to H1 on Starlink.
  stats::Rng rng(6);
  const WebPage page = akamai_demo_page();
  std::vector<double> h1_geo, h2_geo, h1_sl;
  for (int i = 0; i < 8; ++i) {
    h1_geo.push_back(load_page(page, HttpVersion::h1, geo_path(), rng).plt_ms);
    h2_geo.push_back(load_page(page, HttpVersion::h2, geo_path(), rng).plt_ms);
    h1_sl.push_back(load_page(page, HttpVersion::h1, starlink_path(), rng).plt_ms);
  }
  const double h1g = stats::median(h1_geo);
  const double h2g = stats::median(h2_geo);
  const double h1s = stats::median(h1_sl);
  EXPECT_GT(h1g, 3 * h2g);           // multiplexing is transformative on GEO
  EXPECT_LT(h2g, 3 * h1s + 4000.0);  // H2-GEO within reach of H1-Starlink
}

TEST(LoaderTest, H1OpensAtMostSixConnectionsPerHost) {
  stats::Rng rng(7);
  const WebPage page = akamai_demo_page();
  const auto r = load_page(page, HttpVersion::h1, starlink_path(), rng);
  // root conn + 6 pool conns on the single host.
  EXPECT_LE(r.connections_opened, 7u);
}

TEST(LoaderTest, H2OneConnectionPerHost) {
  stats::Rng rng(8);
  const WebPage page = news_page();
  std::set<std::string> hosts;
  for (const auto& o : page.subresources) hosts.insert(o.host);
  const auto r = load_page(page, HttpVersion::h2, starlink_path(), rng);
  EXPECT_LE(r.connections_opened, hosts.size() + 1);
}

TEST(LoaderTest, AllObjectsFetched) {
  stats::Rng rng(9);
  const WebPage page = news_page();
  const auto r = load_page(page, HttpVersion::h1, starlink_path(), rng);
  EXPECT_EQ(r.objects_fetched, page.object_count());
}

TEST(LoaderTest, TimeoutClampsSlowLoads) {
  stats::Rng rng(10);
  transport::PathProfile p = geo_path(900, 0.5);
  p.pep = false;
  p.sat_loss = 0.02;
  LoaderOptions opt;
  opt.timeout_ms = 5000;
  const auto r = load_page(akamai_demo_page(), HttpVersion::h1, p, rng, opt);
  EXPECT_TRUE(r.timed_out);
  EXPECT_DOUBLE_EQ(r.plt_ms, 5000.0);
}

TEST(LoaderTest, FasterLinkFasterLoad) {
  stats::Rng rng(11);
  const WebPage page = news_page();
  const auto slow = load_page(page, HttpVersion::h2, geo_path(620, 2), rng);
  const auto fast = load_page(page, HttpVersion::h2, geo_path(620, 50), rng);
  EXPECT_LT(fast.plt_ms, slow.plt_ms);
}

class LoaderRttSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoaderRttSweep, H1PltScalesWithRtt) {
  stats::Rng rng(12);
  transport::PathProfile p = starlink_path();
  p.base_rtt_ms = GetParam();
  p.sat_loss = 0;
  const auto r = load_page(akamai_demo_page(), HttpVersion::h1, p, rng);
  // ~360 objects over 6 connections: at least 60 serialized RTTs.
  EXPECT_GT(r.plt_ms, 55 * GetParam());
  EXPECT_LT(r.plt_ms, 90 * GetParam() + 3000);
}

INSTANTIATE_TEST_SUITE_P(Rtts, LoaderRttSweep, ::testing::Values(30.0, 60.0, 120.0, 300.0));

}  // namespace
}  // namespace satnet::http
