#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "video/abr_player.hpp"

namespace satnet::video {
namespace {

transport::PathProfile path(double mbps, double rtt = 60, bool handoffs = false) {
  transport::PathProfile p;
  p.base_rtt_ms = rtt;
  p.jitter_ms = 4;
  p.bottleneck_mbps = mbps;
  if (handoffs) {
    p.handoff_rate_hz = 0.05;
    p.handoff_loss_frac = 0.12;
    p.handoff_spike_ms = 30;
  }
  return p;
}

TEST(LadderTest, EightRungsOrderedByBitrate) {
  const auto ladder = youtube_ladder();
  ASSERT_EQ(ladder.size(), 8u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].bitrate_mbps, ladder[i - 1].bitrate_mbps);
    EXPECT_GT(ladder[i].megapixels(), ladder[i - 1].megapixels());
  }
}

TEST(LadderTest, MegapixelValuesMatchPaper) {
  // 1080p ~ 2 MP; 2160p ~ 8 MP (the paper's quality axis).
  EXPECT_NEAR(youtube_ladder()[5].megapixels(), 2.07, 0.05);
  EXPECT_NEAR(youtube_ladder()[7].megapixels(), 8.29, 0.05);
}

TEST(PlayerTest, FastLinkReachesHighResolution) {
  stats::Rng rng(1);
  const auto s = play_session(path(80), rng);
  EXPECT_GE(s.median_megapixels, 2.0);  // 1080p or better
  EXPECT_EQ(s.n_stalls, 0);
}

TEST(PlayerTest, HughesNetClassLinkStuckBelow360p) {
  // Paper Fig 11: HughesNet testers mostly at ~0.5 MP or below.
  stats::Rng rng(2);
  std::vector<double> quality;
  for (int i = 0; i < 10; ++i) {
    stats::Rng r = rng.fork(i);
    quality.push_back(play_session(path(2.2, 650), r).median_megapixels);
  }
  EXPECT_LE(stats::median(quality), 0.55);
}

TEST(PlayerTest, ViasatClassSometimesReachesOneMegapixel) {
  stats::Rng rng(3);
  double best = 0;
  for (int i = 0; i < 10; ++i) {
    stats::Rng r = rng.fork(i);
    best = std::max(best, play_session(path(12, 600), r).median_megapixels);
  }
  EXPECT_GE(best, 0.4);
}

TEST(PlayerTest, BufferBoundedByCap) {
  stats::Rng rng(4);
  PlayerOptions opt;
  const auto s = play_session(path(100), rng, opt);
  for (const double b : s.buffer_series) {
    EXPECT_LE(b, opt.max_buffer_sec + opt.segment_sec + 1e-9);
    EXPECT_GE(b, 0.0);
  }
}

TEST(PlayerTest, HealthyBufferOnGoodLink) {
  // Paper: most runs keep 40-65 s of buffer.
  stats::Rng rng(5);
  const auto s = play_session(path(50), rng);
  EXPECT_GT(s.mean_buffer_sec, 30.0);
}

TEST(PlayerTest, StarvedLinkStalls) {
  stats::Rng rng(6);
  int stalls = 0;
  for (int i = 0; i < 10; ++i) {
    stats::Rng r = rng.fork(i);
    stalls += play_session(path(0.08, 700), r).n_stalls;
  }
  EXPECT_GT(stalls, 0);
}

TEST(PlayerTest, HandoffsCauseDroppedFrames) {
  stats::Rng rng(7);
  double with = 0, without = 0;
  for (int i = 0; i < 12; ++i) {
    stats::Rng ra = rng.fork(i);
    stats::Rng rb = rng.fork(1000 + i);
    with += play_session(path(80, 60, true), ra).dropped_frame_frac;
    without += play_session(path(80, 60, false), rb).dropped_frame_frac;
  }
  EXPECT_GT(with, without);
}

TEST(PlayerTest, ReportedDownloadSpeedBelowCapacity) {
  stats::Rng rng(8);
  const auto s = play_session(path(40), rng);
  EXPECT_LE(s.mean_download_mbps, 40.0);
  EXPECT_GT(s.mean_download_mbps, 5.0);
}

TEST(PlayerTest, MedianRenditionNameConsistentWithMegapixels) {
  stats::Rng rng(9);
  const auto s = play_session(path(100), rng);
  bool found = false;
  for (const auto& r : youtube_ladder()) {
    if (r.name == s.median_rendition) {
      found = true;
      EXPECT_NEAR(r.megapixels(), s.median_megapixels, r.megapixels() * 0.8 + 0.2);
    }
  }
  EXPECT_TRUE(found);
}

class CapacityQualitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CapacityQualitySweep, QualityMonotoneInCapacity) {
  stats::Rng a(10), b(10);
  const double low = play_session(path(GetParam()), a).median_megapixels;
  const double high = play_session(path(GetParam() * 8), b).median_megapixels;
  EXPECT_LE(low, high + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacityQualitySweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace satnet::video
