// The observability layer's own contract: lock-free metric updates that
// survive a concurrent hammer + scrape, deterministic span merge order,
// and exporters that round-trip every registered metric. The whole
// binary also runs under the TSan preset (scripts/verify.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace satnet::obs {
namespace {

TEST(MetricsTest, CounterConcurrentHammerIsExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hammer.count");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200000;
  std::atomic<bool> stop_scraping{false};
  // Scrape concurrently with the hammer: must never crash or tear, and
  // intermediate totals must never exceed the final one.
  std::thread scraper([&] {
    while (!stop_scraping.load()) {
      const Snapshot snap = reg.scrape();
      const MetricValue* m = snap.find("hammer.count");
      ASSERT_NE(m, nullptr);
      ASSERT_LE(m->value, static_cast<double>(kThreads * kPerThread));
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  stop_scraping.store(true);
  scraper.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsTest, HistogramConcurrentObserveIsExact) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("hammer.lat", {1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop_scraping{false};
  std::thread scraper([&] {
    while (!stop_scraping.load()) (void)reg.scrape();
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t % 4) * 40.0);  // 0, 40, 80, 120
      }
    });
  }
  for (auto& w : workers) w.join();
  stop_scraping.store(true);
  scraper.join();

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 100000u);  // two of eight threads observed 0 (<=1)
  EXPECT_EQ(counts[1], 0u);       // nothing lands in (1, 10]
  EXPECT_EQ(counts[2], 200000u);  // 40 and 80 fall in (10, 100]
  EXPECT_EQ(counts[3], 100000u);  // 120 overflows
  // Integer-valued observations: the striped sums add exactly.
  EXPECT_DOUBLE_EQ(h.sum(), 100000.0 * (40.0 + 80.0 + 120.0));
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  const Snapshot snap = reg.scrape();
  EXPECT_EQ(snap.find("depth")->value, 4.0);
}

TEST(MetricsTest, RegistrationIsFindOrCreateAndKindChecked) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsTest, DisabledRegistryScrapesEmpty) {
  MetricsRegistry reg;
  reg.counter("x").add(3);
  reg.set_enabled(false);
  EXPECT_TRUE(reg.scrape().metrics.empty());
  reg.set_enabled(true);
  EXPECT_EQ(reg.scrape().metrics.size(), 1u);
}

TEST(MetricsTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  c.add(5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &reg.counter("x"));
}

RunManifest test_manifest() {
  RunManifest m;
  m.tool = "obs_test";
  m.command = "obs_test --flag \"quoted\"";
  m.threads = 4;
  m.wall_ms = 123.5;
  m.notes.emplace_back("seed", "7");
  return m;
}

MetricsRegistry& populated_registry() {
  static MetricsRegistry reg;
  static bool done = [] {
    reg.counter("alpha.count", "a counter").add(42);
    reg.gauge("beta.depth", "a gauge").set(-3);
    Histogram& h = reg.histogram("gamma.lat_ms", {0.5, 1.0, 2.5}, "a histogram");
    h.observe(0.25);
    h.observe(0.75);
    h.observe(2.0);
    h.observe(99.0);
    return true;
  }();
  (void)done;
  return reg;
}

void expect_snapshots_equal(const Snapshot& want, const Snapshot& got) {
  ASSERT_EQ(want.metrics.size(), got.metrics.size());
  for (const auto& w : want.metrics) {
    const MetricValue* g = got.find(w.name);
    ASSERT_NE(g, nullptr) << w.name << " lost in round-trip";
    EXPECT_EQ(w.kind, g->kind) << w.name;
    EXPECT_DOUBLE_EQ(w.value, g->value) << w.name;
    EXPECT_EQ(w.bounds, g->bounds) << w.name;
    EXPECT_EQ(w.counts, g->counts) << w.name;
    EXPECT_DOUBLE_EQ(w.sum, g->sum) << w.name;
    EXPECT_EQ(w.count, g->count) << w.name;
  }
}

TEST(ExportTest, PrometheusRoundTripRecoversEveryMetric) {
  const Snapshot snap = populated_registry().scrape();
  ASSERT_EQ(snap.metrics.size(), 3u);
  const std::string text = to_prometheus(snap, test_manifest());
  EXPECT_NE(text.find("satnet_alpha_count 42"), std::string::npos);
  EXPECT_NE(text.find("# manifest:"), std::string::npos);
  EXPECT_NE(text.find("satnet_gamma_lat_ms_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  expect_snapshots_equal(snap, parse_prometheus(text));
}

TEST(ExportTest, JsonlRoundTripRecoversEveryMetric) {
  const Snapshot snap = populated_registry().scrape();
  const std::string text = to_jsonl(snap, test_manifest());
  EXPECT_EQ(text.find("{\"type\":\"manifest\""), 0u);  // manifest first
  expect_snapshots_equal(snap, parse_jsonl(text));
}

TEST(ExportTest, ManifestJsonCarriesRunMetadata) {
  const std::string json = manifest_json(test_manifest());
  EXPECT_NE(json.find("\"tool\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaping
}

TEST(ExportTest, SummaryTextDerivesConeRatio) {
  MetricsRegistry reg;
  reg.counter("orbit.best_visible.sats_swept").add(8000);
  reg.counter("orbit.best_visible.exact_evals").add(1000);
  const std::string text = summary_text(reg.scrape(), test_manifest());
  EXPECT_NE(text.find("8.0x reduction"), std::string::npos);
}

TEST(ExportTest, PrometheusEscapesHostileStrings) {
  // Names, help text, and label payloads with exposition-rule specials
  // (backslash, quote, newline) must neither split comment lines nor
  // inject bogus sample lines — and must round-trip intact.
  MetricsRegistry reg;
  reg.counter("evil\nname with \\slashes\\ and \"quotes\"",
              "help line one\nline \"two\" with \\backslash")
      .add(11);
  const Snapshot snap = reg.scrape();
  const std::string text = to_prometheus(snap, test_manifest());
  // Every line is a comment or a sample: a raw newline in the name would
  // produce a line starting with neither '#' nor "satnet_".
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_TRUE(line.empty() || line[0] == '#' ||
                line.compare(0, 7, "satnet_") == 0)
        << "unescaped payload leaked into the exposition: " << line;
  }
  const Snapshot parsed = parse_prometheus(text);
  ASSERT_EQ(parsed.metrics.size(), 1u);
  EXPECT_EQ(parsed.metrics[0].name,
            "evil\nname with \\slashes\\ and \"quotes\"");
  EXPECT_EQ(parsed.metrics[0].help,
            "help line one\nline \"two\" with \\backslash");
  EXPECT_DOUBLE_EQ(parsed.metrics[0].value, 11.0);
}

TEST(ExportTest, PrometheusBucketLabelsAreEscaped) {
  // le= values come from fmt_double today, but the exposition escaping
  // must hold for any payload prom_escape_label is handed.
  EXPECT_EQ(prom_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(prom_escape_text("a\\b\"c\nd"), "a\\\\b\"c\\nd");
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_ms", {0.5, 2.5});
  h.observe(1.0);
  const std::string text = to_prometheus(reg.scrape(), test_manifest());
  EXPECT_NE(text.find("_bucket{le=\"0.5\"} 0"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"2.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
}

TEST(MetricsTest, NonfiniteObservationsDroppedAndCounted) {
  const double before =
      MetricsRegistry::global().counter("obs.histogram.nonfinite").value();
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.observe(5.0);
  h.observe(std::nan(""));
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  // Only the finite observation lands; sum stays finite.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  const double after =
      MetricsRegistry::global().counter("obs.histogram.nonfinite").value();
  EXPECT_DOUBLE_EQ(after - before, 3.0);
}

TEST(ExportTest, EmptyRegistryRoundTripsThroughBothExporters) {
  MetricsRegistry reg;
  const Snapshot snap = reg.scrape();
  EXPECT_TRUE(parse_prometheus(to_prometheus(snap, test_manifest())).metrics.empty());
  EXPECT_TRUE(parse_jsonl(to_jsonl(snap, test_manifest())).metrics.empty());
  // The human summary must not crash on a run that recorded nothing.
  EXPECT_FALSE(summary_text(snap, test_manifest()).empty());
}

TEST(ExportTest, ZeroObservationHistogramRoundTrips) {
  MetricsRegistry reg;
  reg.histogram("never.observed_ms", {1.0, 10.0}, "registered but idle");
  const Snapshot snap = reg.scrape();
  expect_snapshots_equal(snap, parse_prometheus(to_prometheus(snap, test_manifest())));
  expect_snapshots_equal(snap, parse_jsonl(to_jsonl(snap, test_manifest())));
  const MetricValue* m = snap.find("never.observed_ms");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
}

TEST(ExportTest, UnicodeAndControlCharsInNamesRoundTrip) {
  MetricsRegistry reg;
  reg.counter("λ.metric\x01with.control").add(3);
  const Snapshot snap = reg.scrape();
  // JSONL: control chars become \u00XX escapes and parse back.
  const std::string jsonl = to_jsonl(snap, test_manifest());
  EXPECT_NE(jsonl.find("\\u0001"), std::string::npos);
  expect_snapshots_equal(snap, parse_jsonl(jsonl));
  // Prometheus: the NAME comment carries the original (UTF-8 passes
  // through; the wire name mangles every non-alnum byte).
  const Snapshot parsed = parse_prometheus(to_prometheus(snap, test_manifest()));
  ASSERT_EQ(parsed.metrics.size(), 1u);
  EXPECT_EQ(parsed.metrics[0].name, "λ.metric\x01with.control");
}

TEST(ExportTest, ManifestWithEmptyCommandRoundTrips) {
  RunManifest m;  // tool and command both empty
  const std::string json = manifest_json(m);
  EXPECT_NE(json.find("\"tool\":\"\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"\""), std::string::npos);
  MetricsRegistry reg;
  reg.counter("x").add(1);
  const Snapshot snap = reg.scrape();
  expect_snapshots_equal(snap, parse_jsonl(to_jsonl(snap, m)));
  expect_snapshots_equal(snap, parse_prometheus(to_prometheus(snap, m)));
  EXPECT_FALSE(summary_text(snap, m).empty());
}

TEST(TracerTest, SpansMergeInPhaseShardSeqOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  // Record from multiple threads in scrambled shard order: drain must
  // come back sorted by (phase, shard, seq) regardless.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < 3; ++i) {
        ScopedSpan span("phase-" + std::to_string(t % 2), "work",
                        static_cast<std::uint64_t>(10 - i), &tracer);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 12u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const bool ordered =
        std::tie(spans[i - 1].phase, spans[i - 1].shard_key, spans[i - 1].seq) <=
        std::tie(spans[i].phase, spans[i].shard_key, spans[i].seq);
    EXPECT_TRUE(ordered) << "span " << i << " out of order";
  }
  // Drain emptied the buffers.
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // disabled by default
  {
    ScopedSpan span("p", "n", 0, &tracer);
  }
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(TracerTest, SpanRoundTripThroughJsonl) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span("mlab.campaign", "starlink", 3, &tracer);
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  const auto parsed = parse_spans_jsonl(spans_jsonl(spans));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].phase, "mlab.campaign");
  EXPECT_EQ(parsed[0].name, "starlink");
  EXPECT_EQ(parsed[0].shard_key, 3u);
  EXPECT_DOUBLE_EQ(parsed[0].start_ms, spans[0].start_ms);
  EXPECT_DOUBLE_EQ(parsed[0].duration_ms, spans[0].duration_ms);
}

TEST(TracerTest, GlobalRegistryAndTracerCoexist) {
  // The global objects are what the instrumented layers use; make sure
  // the singletons are stable across calls.
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
  EXPECT_EQ(&Tracer::global(), &Tracer::global());
}

}  // namespace
}  // namespace satnet::obs
